// Package wire implements the Orpheus binary tensor wire format — the
// compact, validated encoding the serving plane (and, later, the sharded
// pipeline) uses instead of JSON for tensor payloads. Parsing a JSON body
// of a few thousand floats costs hundreds of microseconds per request; at
// millions-of-users QPS that dominates over a ~25 ms model. The binary
// format decodes the same sample in a few microseconds, straight into
// batcher staging, with zero steady-state allocations.
//
// # Byte layout (version 1)
//
// All integers and floats are little-endian. One encoded tensor is a
// fixed 16-byte prefix, a dims table, and the row-major data:
//
//	offset  size  field
//	0       4     magic "ORPT" (0x4F 0x52 0x50 0x54)
//	4       1     version (0x01)
//	5       1     dtype   (0x01 = float32, IEEE-754)
//	6       2     rank    uint16, ≤ MaxRank (8); 0 encodes a scalar
//	8       8     dataLen uint64 — exact byte length of the data section;
//	              MUST equal volume(dims) × dtype size
//	16      4×r   dims    uint32 each, row-major order
//	16+4r   dataLen       data, row-major, dtype-encoded
//
// The header is length-prefixed: a reader knows the full message size
// after 16+4×rank bytes, before touching the payload. dataLen is
// redundant with the shape — deliberately, so a decoder can verify the
// two against each other and reject truncated or padded payloads without
// heuristics.
//
// # Validation contract
//
// Decoding NEVER trusts the input: magic, version, dtype and rank are
// checked first; the shape product is computed in 64 bits with an
// explicit overflow guard; dataLen must equal the product exactly; and
// the total allocation is bounded by the decode limit (DefaultMaxBytes,
// or the caller's own via DecodeLimit) before any data is read. Arbitrary
// bytes therefore cannot panic the decoder or make it over-allocate —
// FuzzWireDecode pins this. All validation failures wrap ErrFormat (or
// ErrTooLarge for limit violations), so callers branch with errors.Is.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"orpheus/internal/tensor"
)

// Format constants of version 1. The magic bytes spell "ORPT" (ORPheus
// Tensor); bumping Version is a wire-breaking change and requires new
// golden fixtures.
const (
	// Version is the format version this package encodes and decodes.
	Version = 1
	// MaxRank bounds the dims table; no Orpheus graph value exceeds it.
	MaxRank = 8
	// FixedHeaderLen is the byte length of the fixed prefix (through
	// dataLen); the dims table follows it.
	FixedHeaderLen = 16
	// DefaultMaxBytes bounds a Decode's total data allocation (256 MiB) —
	// far above any real request tensor, far below an allocation bomb.
	DefaultMaxBytes = 256 << 20
)

// Magic is the 4-byte format tag leading every encoded tensor.
var Magic = [4]byte{'O', 'R', 'P', 'T'}

// DType identifies the element encoding of the data section.
type DType uint8

// Element dtypes of version 1. Float32 is what the runtime executes; U8
// is the quantized transfer encoding the sharded pipeline streams between
// stages (DEFER-style activation compression) — it joined without a
// version bump because the dtype field was sized for it from the start.
const (
	// Float32 is little-endian IEEE-754 binary32.
	Float32 DType = 1
	// U8 is affine-quantized uint8: value = Scale × (q − Zero), with the
	// scale and zero point carried in an 8-byte header extension after
	// the dims table (see U8ExtLen). Decoding dequantizes to float32.
	U8 DType = 2
)

// U8ExtLen is the byte length of the U8 header extension that follows the
// dims table: scale (float32 LE), zero point (uint8), then 3 reserved
// bytes that MUST be zero (the encoding stays canonical, so every
// well-formed message re-encodes byte-exactly).
const U8ExtLen = 8

// Size returns the byte width of one element, or 0 for an unknown dtype.
func (d DType) Size() int {
	switch d {
	case Float32:
		return 4
	case U8:
		return 1
	}
	return 0
}

// String names the dtype for error messages.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case U8:
		return "uint8"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// extLen returns the byte length of the dtype's header extension.
func (d DType) extLen() int {
	if d == U8 {
		return U8ExtLen
	}
	return 0
}

// Typed sentinel errors of the decode path; every validation failure
// wraps one of them, so callers branch with errors.Is (the HTTP layer
// maps ErrFormat to 400).
var (
	// ErrFormat marks bytes that are not a well-formed version-1 tensor:
	// bad magic, unknown version or dtype, rank over MaxRank, a dims/
	// dataLen mismatch, or a truncated header or payload.
	ErrFormat = errors.New("wire: malformed tensor")

	// ErrTooLarge marks a tensor whose declared payload exceeds the
	// decode limit (the shape product overflowing 64 bits counts too).
	// The limit is checked before any allocation.
	ErrTooLarge = errors.New("wire: tensor exceeds decode limit")
)

// Header is the decoded, validated header of one wire tensor. It is a
// plain value with a fixed-size dims array, so parsing allocates nothing.
type Header struct {
	// DType is the element encoding of the data section.
	DType DType
	// Rank is the number of dimensions (0 = scalar).
	Rank int
	// Dims holds the first Rank dimensions; use Shape for the live slice.
	Dims [MaxRank]int
	// DataLen is the exact byte length of the data section.
	DataLen int
	// Scale and Zero are the U8 affine-quantization parameters from the
	// header extension (value = Scale × (q − Zero)); zero for Float32.
	Scale float32
	// Zero is the U8 zero point.
	Zero uint8
}

// Shape returns the dims as a slice aliasing the header (no allocation).
func (h *Header) Shape() []int { return h.Dims[:h.Rank] }

// Volume returns the element count (product of dims; 1 for a scalar).
func (h *Header) Volume() int { return h.DataLen / h.DType.Size() }

// HeaderLen returns the encoded header length for the header's rank and
// dtype (the U8 extension included).
func (h *Header) HeaderLen() int { return FixedHeaderLen + 4*h.Rank + h.DType.extLen() }

// HeaderSize returns the encoded header length for a tensor of the given
// rank: the fixed prefix plus one uint32 per dimension.
func HeaderSize(rank int) int { return FixedHeaderLen + 4*rank }

// EncodedSize returns the total encoded byte length of a float32 tensor
// with the given shape.
func EncodedSize(shape []int) int {
	return HeaderSize(len(shape)) + 4*tensor.Volume(shape)
}

// ParseHeader validates and decodes the header at the start of b,
// returning the header and its encoded length. The payload (hdr.DataLen
// bytes) follows at b[n:]; ParseHeader does not require it to be present
// yet — callers streaming from a socket check that separately. maxBytes
// bounds the declared payload (≤ 0 selects DefaultMaxBytes). The call
// performs no allocation.
func ParseHeader(b []byte, maxBytes int64) (hdr Header, n int, err error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if len(b) < FixedHeaderLen {
		return hdr, 0, fmt.Errorf("%w: %d-byte input shorter than the %d-byte fixed header", ErrFormat, len(b), FixedHeaderLen)
	}
	if b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return hdr, 0, fmt.Errorf("%w: bad magic %q", ErrFormat, string(b[:4]))
	}
	if b[4] != Version {
		return hdr, 0, fmt.Errorf("%w: unsupported version %d (this decoder speaks %d)", ErrFormat, b[4], Version)
	}
	hdr.DType = DType(b[5])
	esize := hdr.DType.Size()
	if esize == 0 {
		return hdr, 0, fmt.Errorf("%w: unknown dtype %d", ErrFormat, b[5])
	}
	rank := int(binary.LittleEndian.Uint16(b[6:8]))
	if rank > MaxRank {
		return hdr, 0, fmt.Errorf("%w: rank %d exceeds MaxRank %d", ErrFormat, rank, MaxRank)
	}
	hdr.Rank = rank
	declared := binary.LittleEndian.Uint64(b[8:16])
	n = FixedHeaderLen + 4*rank
	if len(b) < n {
		return hdr, 0, fmt.Errorf("%w: header truncated: rank %d needs %d bytes, have %d", ErrFormat, rank, n, len(b))
	}
	// The shape product is accumulated in uint64 against the decode
	// limit, so a hostile shape cannot overflow into a small allocation
	// (e.g. 2^32 × 2^32 wrapping to 0) or a huge one. The element bound
	// divides by the decoded (float32) width, not the wire width, so a
	// U8 payload cannot expand 4× past the limit on dequantization —
	// the limit caps what decoding materialises, not what the wire
	// carried.
	maxElems := uint64(maxBytes) / 4
	vol := uint64(1)
	for i := 0; i < rank; i++ {
		d := uint64(binary.LittleEndian.Uint32(b[FixedHeaderLen+4*i:]))
		hdr.Dims[i] = int(d)
		if d == 0 {
			vol = 0
			continue
		}
		if vol > maxElems/d {
			// The message names the product bound, not the shape: slicing
			// hdr.Dims here would make every ParseHeader call heap-allocate
			// the header, and this path must stay cold-only.
			return hdr, 0, fmt.Errorf("%w: shape product exceeds %d bytes", ErrTooLarge, maxBytes)
		}
		vol *= d
	}
	if declared > uint64(maxBytes) {
		return hdr, 0, fmt.Errorf("%w: declared payload %d bytes exceeds limit %d", ErrTooLarge, declared, maxBytes)
	}
	if declared != vol*uint64(esize) {
		return hdr, 0, fmt.Errorf("%w: dataLen %d does not match the %d-element shape (%d bytes expected)",
			ErrFormat, declared, vol, vol*uint64(esize))
	}
	hdr.DataLen = int(declared)
	if ext := hdr.DType.extLen(); ext > 0 {
		if len(b) < n+ext {
			return hdr, 0, fmt.Errorf("%w: header truncated: %s extension needs %d bytes, have %d", ErrFormat, hdr.DType, n+ext, len(b))
		}
		hdr.Scale = math.Float32frombits(binary.LittleEndian.Uint32(b[n:]))
		hdr.Zero = b[n+4]
		if b[n+5] != 0 || b[n+6] != 0 || b[n+7] != 0 {
			return hdr, 0, fmt.Errorf("%w: nonzero reserved bytes in %s extension", ErrFormat, hdr.DType)
		}
		n += ext
	}
	return hdr, n, nil
}

// ParseMessage validates one complete encoded tensor occupying exactly b:
// the header (ParseHeader's contract) plus precisely DataLen payload
// bytes. It returns the header and the payload aliasing b, allocating
// nothing — the raw access path the shard protocol and the fuzz
// round-trip use for non-float32 dtypes.
func ParseMessage(b []byte, maxBytes int64) (Header, []byte, error) {
	hdr, n, err := ParseHeader(b, maxBytes)
	if err != nil {
		return hdr, nil, err
	}
	if len(b) != n+hdr.DataLen {
		return hdr, nil, fmt.Errorf("%w: message is %d bytes, header declares %d", ErrFormat, len(b), n+hdr.DataLen)
	}
	return hdr, b[n : n+hdr.DataLen], nil
}

// AppendHeader appends the encoded header for a float32 tensor of the
// given shape to dst and returns the extended slice. Shape dims must fit
// uint32 and rank must be ≤ MaxRank; violations panic, as malformed
// encode arguments are programmer errors (decode never panics).
func AppendHeader(dst []byte, shape []int) []byte {
	if len(shape) > MaxRank {
		panic(fmt.Sprintf("wire: rank %d exceeds MaxRank %d", len(shape), MaxRank))
	}
	vol := uint64(1)
	for _, d := range shape {
		if d < 0 || uint64(d) > math.MaxUint32 {
			panic(fmt.Sprintf("wire: dimension %d does not fit the format", d))
		}
		vol *= uint64(d)
	}
	dst = append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, byte(Float32))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(shape)))
	dst = binary.LittleEndian.AppendUint64(dst, vol*4)
	for _, d := range shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	return dst
}

// AppendTensor appends the full encoding (header + data) of a float32
// tensor to dst and returns the extended slice. With dst capacity ≥
// EncodedSize(shape) the call performs no allocation — the serving plane
// reuses one response buffer per request slot this way. len(data) must
// equal the shape volume.
func AppendTensor(dst []byte, data []float32, shape []int) []byte {
	if len(data) != tensor.Volume(shape) {
		panic(fmt.Sprintf("wire: %d data values do not match shape %v", len(data), shape))
	}
	dst = AppendHeader(dst, shape)
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// AppendTensorU8 appends the full encoding (header + extension + data) of
// an affine-quantized uint8 tensor to dst and returns the extended slice:
// each stored byte q represents the value scale × (q − zero). len(data)
// must equal the shape volume. The sharded pipeline uses this to halve-
// to-quarter boundary activation traffic in flight (-int8-wire).
func AppendTensorU8(dst []byte, data []byte, shape []int, scale float32, zero uint8) []byte {
	if len(data) != tensor.Volume(shape) {
		panic(fmt.Sprintf("wire: %d data values do not match shape %v", len(data), shape))
	}
	if len(shape) > MaxRank {
		panic(fmt.Sprintf("wire: rank %d exceeds MaxRank %d", len(shape), MaxRank))
	}
	for _, d := range shape {
		if d < 0 || uint64(d) > math.MaxUint32 {
			panic(fmt.Sprintf("wire: dimension %d does not fit the format", d))
		}
	}
	dst = append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, byte(U8))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(shape)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(data)))
	for _, d := range shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(scale))
	dst = append(dst, zero, 0, 0, 0)
	return append(dst, data...)
}

// EncodedSizeU8 returns the total encoded byte length of a uint8 tensor
// with the given shape.
func EncodedSizeU8(shape []int) int {
	return HeaderSize(len(shape)) + U8ExtLen + tensor.Volume(shape)
}

// QuantizeU8 affine-quantizes data into q (which must be the same
// length), returning the scale and zero point that AppendTensorU8 needs:
// scale = (max−min)/255 over the data with the range widened to include
// 0 (so the zero point is exactly representable), zero = the point
// mapping the range minimum to 0. All-equal data reconstructs exactly.
// The maximum absolute reconstruction error is scale/2 per element.
func QuantizeU8(q []byte, data []float32) (scale float32, zero uint8) {
	if len(q) != len(data) {
		panic(fmt.Sprintf("wire: quantize destination holds %d values, data has %d", len(q), len(data)))
	}
	if len(data) == 0 {
		return 0, 0
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		// Constant data: encode every element as q=1 with scale = the
		// value, so scale × (1 − 0) reconstructs it exactly (including 0).
		for i := range q {
			q[i] = 1
		}
		return lo, 0
	}
	// The quantized range must include zero, so the zero point is exactly
	// representable and lands in [0, 255] without clamping. Without this,
	// all-positive data computes a negative zero point, the clamp forces
	// it to 0, and the top of the range saturates (4.0 in {0.5..4} would
	// decode as 3.5).
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	scale = (hi - lo) / 255
	inv := 1 / scale
	zp := math.Round(float64(-lo * inv))
	if zp < 0 {
		zp = 0
	} else if zp > 255 {
		zp = 255
	}
	zero = uint8(zp)
	for i, v := range data {
		r := math.Round(float64(v*inv)) + zp
		if r < 0 {
			r = 0
		} else if r > 255 {
			r = 255
		}
		q[i] = uint8(r)
	}
	return scale, zero
}

// DequantizeU8Into decodes an affine-quantized uint8 payload into dst
// without allocating: dst[i] = scale × (payload[i] − zero). len(payload)
// must equal len(dst).
func DequantizeU8Into(dst []float32, payload []byte, scale float32, zero uint8) error {
	if len(payload) != len(dst) {
		return fmt.Errorf("%w: payload is %d bytes, destination wants %d", ErrFormat, len(payload), len(dst))
	}
	z := int32(zero)
	for i := range dst {
		dst[i] = scale * float32(int32(payload[i])-z)
	}
	return nil
}

// Float32Into decodes a little-endian float32 payload into dst without
// allocating. len(payload) must be exactly 4×len(dst).
func Float32Into(dst []float32, payload []byte) error {
	if len(payload) != 4*len(dst) {
		return fmt.Errorf("%w: payload is %d bytes, destination wants %d", ErrFormat, len(payload), 4*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return nil
}

// Encode writes the full encoding of t to w.
func Encode(w io.Writer, t *tensor.Tensor) error {
	return EncodeFloat32(w, t.Data(), t.Shape())
}

// EncodeFloat32 writes the full encoding of a float32 tensor to w. It
// buffers the message and issues a single Write, so the encoding is
// atomic on packet-oriented writers.
func EncodeFloat32(w io.Writer, data []float32, shape []int) error {
	buf := AppendTensor(make([]byte, 0, EncodedSize(shape)), data, shape)
	_, err := w.Write(buf)
	return err
}

// Decode reads one tensor from r under the DefaultMaxBytes limit.
func Decode(r io.Reader) (*tensor.Tensor, error) {
	return DecodeLimit(r, DefaultMaxBytes)
}

// DecodeLimit reads one encoded tensor from r, rejecting any tensor whose
// data section exceeds maxBytes (≤ 0 selects DefaultMaxBytes) before
// allocating for it. It reads exactly the encoded bytes and no more, so
// tensors can be streamed back to back on one connection.
func DecodeLimit(r io.Reader, maxBytes int64) (*tensor.Tensor, error) {
	var hb [FixedHeaderLen + 4*MaxRank + U8ExtLen]byte
	if _, err := io.ReadFull(r, hb[:FixedHeaderLen]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrFormat, err)
	}
	rank := int(binary.LittleEndian.Uint16(hb[6:8]))
	if rank > MaxRank {
		return nil, fmt.Errorf("%w: rank %d exceeds MaxRank %d", ErrFormat, rank, MaxRank)
	}
	n := FixedHeaderLen + 4*rank + DType(hb[5]).extLen()
	if n > FixedHeaderLen {
		if _, err := io.ReadFull(r, hb[FixedHeaderLen:n]); err != nil {
			return nil, fmt.Errorf("%w: reading dims: %v", ErrFormat, err)
		}
	}
	hdr, _, err := ParseHeader(hb[:n], maxBytes)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if hdr.DataLen > 0 {
		payload = make([]byte, hdr.DataLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: payload truncated: %v", ErrFormat, err)
		}
	}
	return decodePayload(&hdr, payload)
}

// decodePayload materialises the float32 tensor a validated (header,
// payload) pair describes, dequantizing U8 data on the way in.
func decodePayload(hdr *Header, payload []byte) (*tensor.Tensor, error) {
	data := make([]float32, hdr.Volume())
	var err error
	switch hdr.DType {
	case U8:
		err = DequantizeU8Into(data, payload, hdr.Scale, hdr.Zero)
	default:
		err = Float32Into(data, payload)
	}
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(data, hdr.Shape()...), nil
}

// DecodeBytes decodes one tensor from b, which must contain exactly one
// encoded tensor and nothing else (trailing bytes are rejected — the
// framing a length-prefixed format promises).
func DecodeBytes(b []byte, maxBytes int64) (*tensor.Tensor, error) {
	hdr, payload, err := ParseMessage(b, maxBytes)
	if err != nil {
		return nil, err
	}
	return decodePayload(&hdr, payload)
}
