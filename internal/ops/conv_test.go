package ops

import (
	"testing"
	"testing/quick"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

func TestConvDirectKnownValues(t *testing.T) {
	// 1x1x3x3 input, single 2x2 all-ones kernel, no pad, stride 1:
	// each output is the sum of a 2x2 window.
	x := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w := tensor.Full(1, 1, 1, 2, 2)
	out := runKernel(t, "conv.direct", "Conv", graph.Attrs{}, x, w)
	want := []float32{12, 16, 24, 28}
	if !tensor.ShapeEq(out.Shape(), []int{1, 1, 2, 2}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConvDirectIdentityKernel(t *testing.T) {
	// A centred 3x3 delta kernel with pad 1 reproduces the input.
	r := tensor.NewRNG(1)
	x := tensor.Rand(r, -1, 1, 1, 1, 5, 5)
	w := tensor.New(1, 1, 3, 3)
	w.Set(1, 0, 0, 1, 1)
	out := runKernel(t, "conv.direct", "Conv",
		graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w)
	if tensor.MaxAbsDiff(out, x) != 0 {
		t.Fatal("delta-kernel conv should be identity")
	}
}

func TestConvBias(t *testing.T) {
	x := tensor.Full(0, 1, 1, 3, 3)
	w := tensor.Full(1, 2, 1, 1, 1)
	b := tensor.FromSlice([]float32{1.5, -2}, 2)
	out := runKernel(t, "conv.direct", "Conv", graph.Attrs{}, x, w, b)
	if out.At(0, 0, 1, 1) != 1.5 || out.At(0, 1, 2, 2) != -2 {
		t.Fatalf("bias not applied: %v", out.Data())
	}
}

func TestConvFusedActivations(t *testing.T) {
	x := tensor.FromSlice([]float32{-2, 8}, 1, 1, 1, 2)
	w := tensor.Full(1, 1, 1, 1, 1)
	for _, k := range []string{"conv.direct", "conv.im2col", "conv.spatialpack"} {
		relu := runKernel(t, k, "Conv", graph.Attrs{"activation": "relu"}, x, w)
		if relu.At(0, 0, 0, 0) != 0 || relu.At(0, 0, 0, 1) != 8 {
			t.Fatalf("%s relu wrong: %v", k, relu.Data())
		}
		relu6 := runKernel(t, k, "Conv", graph.Attrs{"activation": "relu6"}, x, w)
		if relu6.At(0, 0, 0, 0) != 0 || relu6.At(0, 0, 0, 1) != 6 {
			t.Fatalf("%s relu6 wrong: %v", k, relu6.Data())
		}
		leaky := runKernel(t, k, "Conv", graph.Attrs{"activation": "leakyrelu", "alpha": 0.1}, x, w)
		if !tensor.AllClose(leaky, tensor.FromSlice([]float32{-0.2, 8}, 1, 1, 1, 2), 1e-6) {
			t.Fatalf("%s leakyrelu wrong: %v", k, leaky.Data())
		}
	}
}

// TestConvKernelEquivalence is the heart of the operator test suite: every
// conv algorithm must agree with the direct reference on every geometry it
// claims to support.
func TestConvKernelEquivalence(t *testing.T) {
	// Every registered fp32 Conv kernel joins the matrix automatically;
	// quantized kernels are excluded explicitly — they are numerically
	// different implementations held to a quantization tolerance by
	// TestConvInt8WithinQuantTolerance, not to fp32 bit-closeness.
	var algos []string
	for _, k := range ForOp("Conv") {
		if k.Name() == "conv.direct" || IsQuantized(k) {
			continue
		}
		algos = append(algos, k.Name())
	}
	for _, tc := range convMatrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			inputs := tc.tensors(tensor.SeedFromString(tc.name))
			ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
			n := buildNode(t, "Conv", tc.attrs(), inputs...)
			for _, name := range algos {
				k := ByName(name)
				if !k.Supports(n) {
					continue
				}
				got := runKernel(t, name, "Conv", tc.attrs(), inputs...)
				if !tensor.AllClose(got, ref, tensor.DefaultTolerance) {
					t.Errorf("%s diverges from conv.direct on %s: max diff %g",
						name, tc.name, tensor.MaxAbsDiff(got, ref))
				}
			}
		})
	}
}

func TestConvKernelSupportMatrix(t *testing.T) {
	dwCase := convMatrix[8] // depthwise
	n := buildNode(t, "Conv", dwCase.attrs(), dwCase.tensors(1)...)
	if !ByName("conv.depthwise").Supports(n) {
		t.Fatal("conv.depthwise should support depthwise node")
	}
	if ByName("conv.spatialpack").Supports(n) {
		t.Fatal("conv.spatialpack should reject grouped conv")
	}
	if ByName("conv.winograd").Supports(n) {
		t.Fatal("conv.winograd should reject grouped conv")
	}

	plain := convMatrix[1] // 3x3 pad1 stride1
	n = buildNode(t, "Conv", plain.attrs(), plain.tensors(2)...)
	if !ByName("conv.winograd").Supports(n) {
		t.Fatal("conv.winograd should support 3x3 s1 conv")
	}
	if ByName("conv.depthwise").Supports(n) {
		t.Fatal("conv.depthwise should reject dense conv")
	}
	if ByName("conv.group_im2col").Supports(n) {
		t.Fatal("conv.group_im2col should reject ungrouped conv")
	}

	strided := convMatrix[2]
	n = buildNode(t, "Conv", strided.attrs(), strided.tensors(3)...)
	if ByName("conv.winograd").Supports(n) {
		t.Fatal("conv.winograd should reject stride-2 conv")
	}
}

func TestPropConvIm2colMatchesDirect(t *testing.T) {
	f := func(seed uint64, chb, cob, kb, sb, pb uint8) bool {
		cin := int(chb%4) + 1
		cout := int(cob%4) + 1
		k := []int{1, 3, 5}[kb%3]
		s := int(sb%2) + 1
		pad := int(pb % 2)
		h := 8
		if h+2*pad < k {
			return true
		}
		tc := convCase{n: 1, cin: cin, h: h, w: h, cout: cout, kh: k, kw: k,
			sh: s, sw: s, padT: pad, padL: pad, padB: pad, padR: pad, dh: 1, dw: 1, groups: 1}
		inputs := tc.tensors(seed)
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
		got := runKernel(t, "conv.im2col", "Conv", tc.attrs(), inputs...)
		return tensor.AllClose(got, ref, tensor.DefaultTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvSpatialPackMatchesDirect(t *testing.T) {
	f := func(seed uint64, chb, cob, kb uint8) bool {
		cin := int(chb%5) + 1
		cout := int(cob%5) + 1
		k := []int{1, 3}[kb%2]
		pad := k / 2
		tc := convCase{n: 1, cin: cin, h: 7, w: 9, cout: cout, kh: k, kw: k,
			sh: 1, sw: 1, padT: pad, padL: pad, padB: pad, padR: pad, dh: 1, dw: 1, groups: 1}
		inputs := tc.tensors(seed)
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
		got := runKernel(t, "conv.spatialpack", "Conv", tc.attrs(), inputs...)
		return tensor.AllClose(got, ref, tensor.DefaultTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvWinogradMatchesDirect(t *testing.T) {
	f := func(seed uint64, chb, cob, hb uint8) bool {
		cin := int(chb%4) + 1
		cout := int(cob%4) + 1
		h := int(hb%6) + 4 // 4..9, exercises odd sizes and edge tiles
		tc := convCase{n: 1, cin: cin, h: h, w: h + 1, cout: cout, kh: 3, kw: 3,
			sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1, bias: true}
		inputs := tc.tensors(seed)
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
		got := runKernel(t, "conv.winograd", "Conv", tc.attrs(), inputs...)
		return tensor.AllClose(got, ref, 5e-4) // Winograd loses ~1 bit to transforms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDepthwiseMatchesDirect(t *testing.T) {
	f := func(seed uint64, cb, sb uint8) bool {
		c := int(cb%8) + 2 // >= 2: a 1-channel conv has groups == 1 and is not depthwise
		s := int(sb%2) + 1
		tc := convCase{n: 1, cin: c, h: 8, w: 8, cout: c, kh: 3, kw: 3,
			sh: s, sw: s, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: c, bias: true}
		inputs := tc.tensors(seed)
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
		got := runKernel(t, "conv.depthwise", "Conv", tc.attrs(), inputs...)
		return tensor.AllClose(got, ref, tensor.DefaultTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvShapeInference(t *testing.T) {
	tc := convMatrix[2] // stride 2, 9x9 -> 5x5
	n := buildNode(t, "Conv", tc.attrs(), tc.tensors(1)...)
	if !tensor.ShapeEq(n.Outputs[0].Shape, []int{2, 6, 5, 5}) {
		t.Fatalf("inferred %v", n.Outputs[0].Shape)
	}
}

func TestConvShapeErrors(t *testing.T) {
	g := graph.New("bad")
	x, _ := g.Input("x", []int{1, 3, 8, 8})
	w, _ := g.Const("w", tensor.New(4, 2, 3, 3)) // wrong cin
	y, _ := g.Add("Conv", "c", graph.Attrs{}, x, w)
	_ = g.MarkOutput(y)
	if err := g.Finalize(); err == nil {
		t.Fatal("channel mismatch not caught")
	}

	g2 := graph.New("bad2")
	x2, _ := g2.Input("x", []int{1, 4, 8, 8})
	w2, _ := g2.Const("w", tensor.New(6, 2, 3, 3))
	y2, _ := g2.Add("Conv", "c", graph.Attrs{"group": 3}, x2, w2) // 4 % 3 != 0
	_ = g2.MarkOutput(y2)
	if err := g2.Finalize(); err == nil {
		t.Fatal("bad group count not caught")
	}

	g3 := graph.New("bad3")
	x3, _ := g3.Input("x", []int{1, 1, 2, 2})
	w3, _ := g3.Const("w", tensor.New(1, 1, 5, 5)) // kernel larger than input
	y3, _ := g3.Add("Conv", "c", graph.Attrs{}, x3, w3)
	_ = g3.MarkOutput(y3)
	if err := g3.Finalize(); err == nil {
		t.Fatal("non-positive output not caught")
	}
}

func TestConvFlopsCount(t *testing.T) {
	tc := convCase{n: 1, cin: 2, h: 4, w: 4, cout: 3, kh: 3, kw: 3,
		sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1}
	n := buildNode(t, "Conv", tc.attrs(), tc.tensors(1)...)
	p, err := resolveConv(n)
	if err != nil {
		t.Fatal(err)
	}
	// 2 * (cin*kh*kw) * (cout*oh*ow) = 2*18*48 = 1728.
	if p.flops() != 1728 {
		t.Fatalf("flops = %d, want 1728", p.flops())
	}
}

func TestGroupIm2colMatchesDirectOnGroups(t *testing.T) {
	for _, idx := range []int{7, 8, 9} { // grouped and depthwise cases
		tc := convMatrix[idx]
		inputs := tc.tensors(42)
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
		got := runKernel(t, "conv.group_im2col", "Conv", tc.attrs(), inputs...)
		if !tensor.AllClose(got, ref, tensor.DefaultTolerance) {
			t.Fatalf("group_im2col diverges on %s: %g", tc.name, tensor.MaxAbsDiff(got, ref))
		}
	}
}
