// Benchmark harness regenerating the paper's evaluation.
//
// One benchmark family per published result:
//
//   - BenchmarkFig2/<model>/<framework> — Figure 2: single-thread
//     inference time of the five models under each framework backend.
//     DarkNet runs only on the ResNets and TF-Lite is absent, as in the
//     paper. Reported ns/op is one full inference on the host CPU; the
//     shape (who wins per model) is what reproduces the figure.
//   - BenchmarkTableI — Table I: regenerates the framework comparison and
//     reports the derived Performance ratings as metrics.
//   - BenchmarkConvAlgosSweep (A1), BenchmarkPassesAblation (A2),
//     BenchmarkMemoryPlanner (A3), BenchmarkLayerwise (A4),
//     BenchmarkAutotune (A5) — the ablation studies from DESIGN.md.
//
// Run: go test -bench=. -benchmem   (add -benchtime=1x for a quick pass)
package orpheus

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"

	"orpheus/internal/backend"
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/harness"
	"orpheus/internal/ops"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// modelCache builds each zoo model once per bench binary run.
var modelCache sync.Map

func cachedModel(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := modelCache.Load(name); ok {
		return g.(*graph.Graph)
	}
	g, err := zoo.Build(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	modelCache.Store(name, g)
	return g
}

// fig2Cells enumerates the (model, backend) pairs of the figure. The two
// largest models are benchmarked on the three main frameworks; DarkNet
// joins for the ResNets exactly as the paper reports.
var fig2Cells = []struct{ model, backendName string }{
	{"wrn-40-2", "orpheus"},
	{"wrn-40-2", "tvm-sim"},
	{"wrn-40-2", "torch-sim"},
	{"mobilenet-v1", "orpheus"},
	{"mobilenet-v1", "tvm-sim"},
	{"mobilenet-v1", "torch-sim"},
	{"resnet-18", "orpheus"},
	{"resnet-18", "tvm-sim"},
	{"resnet-18", "torch-sim"},
	{"resnet-18", "darknet-sim"},
	{"inception-v3", "orpheus"},
	{"inception-v3", "tvm-sim"},
	{"inception-v3", "torch-sim"},
	{"resnet-50", "orpheus"},
	{"resnet-50", "tvm-sim"},
	{"resnet-50", "torch-sim"},
	{"resnet-50", "darknet-sim"},
}

func BenchmarkFig2(b *testing.B) {
	for _, cell := range fig2Cells {
		cell := cell
		b.Run(cell.model+"/"+cell.backendName, func(b *testing.B) {
			g := cachedModel(b, cell.model)
			be, err := backend.ByName(cell.backendName)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := be.Prepare(g, 1)
			if err != nil {
				b.Fatal(err)
			}
			sess := runtime.NewSession(plan)
			x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
			in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
			if _, err := sess.Run(context.Background(), in); err != nil { // warm-up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(context.Background(), in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableI regenerates Table I's derived Performance row. The
// benchmark measures the full derivation (five models through the A73
// cost model) and reports the ratings as metrics.
func BenchmarkTableI(b *testing.B) {
	var ratings map[string]int
	for i := 0; i < b.N; i++ {
		var err error
		ratings, err = harness.DerivePerformanceRatings(&harness.Config{Mode: harness.ModeSim})
		if err != nil {
			b.Fatal(err)
		}
	}
	for fw, r := range ratings {
		b.ReportMetric(float64(r), "rating-"+fw)
	}
}

// BenchmarkConvAlgosSweep (A1) times each conv algorithm on a small and a
// large layer, exposing the GEMM/spatial-pack crossover.
func BenchmarkConvAlgosSweep(b *testing.B) {
	shapes := []struct{ c, hw int }{{16, 16}, {32, 32}, {64, 28}, {128, 14}, {256, 14}}
	for _, sh := range shapes {
		r := tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("bench-%d-%d", sh.c, sh.hw)))
		g := graph.New("sweep")
		xv, _ := g.Input("x", []int{1, sh.c, sh.hw, sh.hw})
		wv, _ := g.Const("w", tensor.HeNormal(r, sh.c, sh.c, 3, 3))
		_, err := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}}, xv, wv)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.InferShapes(); err != nil {
			b.Fatal(err)
		}
		n := g.Nodes[0]
		x := tensor.Rand(r, -1, 1, 1, sh.c, sh.hw, sh.hw)
		for _, kname := range []string{"conv.direct", "conv.im2col", "conv.spatialpack", "conv.winograd"} {
			k := ops.ByName(kname)
			if !k.Supports(n) {
				continue
			}
			b.Run(fmt.Sprintf("%dx%dx%d/%s", sh.c, sh.hw, sh.hw, kname), func(b *testing.B) {
				ctx := ops.NewCtx(1)
				out := tensor.New(n.Outputs[0].Shape...)
				ins := []*tensor.Tensor{x, wv.Const}
				outs := []*tensor.Tensor{out}
				b.SetBytes(int64(ops.NodeFlops(n)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := k.Run(ctx, n, ins, outs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPassesAblation (A2) compares raw vs optimised execution of
// WRN-40-2.
func BenchmarkPassesAblation(b *testing.B) {
	for _, optimised := range []bool{false, true} {
		name := "raw"
		if optimised {
			name = "optimised"
		}
		b.Run(name, func(b *testing.B) {
			g := cachedModel(b, "wrn-40-2").Clone()
			if err := g.Finalize(); err != nil {
				b.Fatal(err)
			}
			if optimised {
				if _, err := passes.Default().Run(g); err != nil {
					b.Fatal(err)
				}
			}
			be, _ := backend.ByName("orpheus")
			policy := be.NewPolicy()
			plan, err := runtime.Compile(g, runtime.Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			sess := runtime.NewSession(plan)
			x := tensor.Rand(tensor.NewRNG(2), -1, 1, g.Inputs[0].Shape...)
			in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
			if _, err := sess.Run(context.Background(), in); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(context.Background(), in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryPlanner (A3) measures plan compilation and reports the
// arena footprint vs the no-reuse footprint for ResNet-18.
func BenchmarkMemoryPlanner(b *testing.B) {
	g := cachedModel(b, "resnet-18")
	be, _ := backend.ByName("orpheus")
	var plan *runtime.Plan
	var err error
	for i := 0; i < b.N; i++ {
		plan, err = be.Prepare(g, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.ArenaBytes())/(1<<20), "arena-MB")
	b.ReportMetric(float64(plan.NoReuseBytes())/(1<<20), "noreuse-MB")
}

// BenchmarkLayerwise (A4) measures a fully profiled run (per-layer
// timestamps enabled) of WRN-40-2.
func BenchmarkLayerwise(b *testing.B) {
	g := cachedModel(b, "wrn-40-2")
	be, _ := backend.ByName("orpheus")
	plan, err := be.Prepare(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(3), -1, 1, g.Inputs[0].Shape...)
	in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
	if _, err := sess.Run(context.Background(), in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.RunProfiled(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutotune (A5) measures WRN-40-2 under the empirically tuned
// policy (tuning happens during Prepare, outside the timed loop).
func BenchmarkAutotune(b *testing.B) {
	g := cachedModel(b, "wrn-40-2")
	be, _ := backend.ByName("orpheus-tuned")
	plan, err := be.Prepare(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(4), -1, 1, g.Inputs[0].Shape...)
	in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
	if _, err := sess.Run(context.Background(), in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictConcurrent measures saturated multi-request throughput
// through the pooled Predict path: GOMAXPROCS goroutines share one
// compiled plan (and its packed weights) while each in-flight request
// borrows a private session. Compare ns/op here against the matching
// BenchmarkFig2 single-session latency to see the scaling; the seed
// serialised requests on a single session.
func BenchmarkPredictConcurrent(b *testing.B) {
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		b.Run(model, func(b *testing.B) {
			m := FromGraph(cachedModel(b, model))
			sess, err := m.Compile()
			if err != nil {
				b.Fatal(err)
			}
			x := RandomTensor(1, m.InputShape()...)
			if _, err := sess.Predict(context.Background(), x); err != nil { // warm-up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := sess.Predict(context.Background(), x); err != nil {
						// Fatal must not be called from RunParallel body
						// goroutines.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkBatch measures batch-native execution: one Session.Run over a
// batch of n samples on a MaxBatch-8 plan. ns/op is the whole batch;
// inf/s is the derived per-sample throughput — the number that shows the
// amortisation win as n grows (packed weight panels are read once per
// batch instead of once per sample). The CI bench-smoke step records this
// family into BENCH_pr2.json via cmd/orpheus-benchjson.
func BenchmarkBatch(b *testing.B) {
	benchBatch(b, 1, []int{1, 4, 8})
}

// BenchmarkBatchParallel is BenchmarkBatch at the full core budget
// (workers = GOMAXPROCS): the regime where batch-native execution pays on
// multi-core hosts. At n=1 the late small-spatial GEMMs offer only one or
// two macro-tiles, so extra cores idle; at n=8 the pool schedules
// batch×tile, keeping every core fed. On a single-core host this
// degenerates to BenchmarkBatch.
func BenchmarkBatchParallel(b *testing.B) {
	benchBatch(b, goruntime.GOMAXPROCS(0), []int{1, 8})
}

// benchBatch is the shared measurement protocol of the batch families:
// one MaxBatch-8 plan per model, one warm-up Run per batch size (binds n,
// grows scratch, packs weights), then timed whole-batch runs with derived
// per-sample throughput.
func benchBatch(b *testing.B, workers int, ns []int) {
	const maxBatch = 8
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		g := cachedModel(b, model)
		be, err := backend.ByName("orpheus")
		if err != nil {
			b.Fatal(err)
		}
		plan, err := be.PrepareBatched(g, workers, maxBatch)
		if err != nil {
			b.Fatal(err)
		}
		sess := runtime.NewSession(plan)
		for _, n := range ns {
			b.Run(fmt.Sprintf("%s/n%d", model, n), func(b *testing.B) {
				shape := plan.InputShapeAt(0, n)
				x := tensor.Rand(tensor.NewRNG(uint64(n)), -1, 1, shape...)
				in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(float64(n)*1e9/perOp, "inf/s")
				if workers > 1 {
					b.ReportMetric(float64(workers), "workers")
				}
			})
		}
	}
}

// BenchmarkParallelGEMM sweeps the worker-pool GEMM over a conv-shaped
// matrix (small M, wide N) to expose macro-tile scaling.
func BenchmarkParallelGEMM(b *testing.B) {
	const m, n, k = 64, 12544, 576 // resnet-ish 3x3 conv at 112x112
	r := tensor.NewRNG(5)
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = r.Uniform(-1, 1)
	}
	for i := range bb {
		bb[i] = r.Uniform(-1, 1)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var ctx gemm.Context
			pool := gemm.Shared()
			// Warm-up grows the packing scratch so the timed loop is
			// steady-state.
			pool.Run(&ctx, gemm.Call{A: a, B: bb, C: c, M: m, N: n, K: k, Store: true}, workers)
			b.SetBytes(int64(2 * m * n * k))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.Run(&ctx, gemm.Call{A: a, B: bb, C: c, M: m, N: n, K: k, Store: true}, workers)
			}
		})
	}
}
