package gemm

import (
	"fmt"
	"math"
	"testing"

	"orpheus/internal/tensor"
)

// Tests for the virtual B operand (Call.BPack) and the fused epilogue
// (BiasRow/BiasCol/Act): both must be invisible at the numbers level —
// a BPack wrapping a dense matrix must reproduce the explicit-B result
// bit for bit, and the epilogue must match a separate post-GEMM sweep —
// on every selectable kernel, through Context.Run and the pool path.

// matrixSrc adapts a materialised strided batch of B matrices to the
// PackSrc interface; it is the semantic reference for panel packing.
type matrixSrc struct {
	b       []float32
	k, n    int
	strideB int
}

func (s *matrixSrc) PackPanel(dst []float32, img, pp, jj, kc, nc, nr int) {
	packB(dst, s.b[img*s.strideB:], pp, jj, kc, nc, s.n, nr)
}

func TestBPackMatchesExplicitB(t *testing.T) {
	for _, kn := range KernelNames() {
		for _, dc := range diffCases {
			if dc.k == 0 {
				continue // a BPack call with K == 0 packs nothing
			}
			for _, workers := range []int{0, 3} {
				for _, store := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/workers=%d/store=%v", kn, dc, workers, store)
					t.Run(name, func(t *testing.T) {
						withKernel(t, kn, func() {
							a, b, cInit := diffBuffers(dc, uint64(dc.m+dc.n+dc.k+7))
							want := runDiffCall(dc, variant{workers: workers}, a, b, cInit, store)

							c := Call{M: dc.m, N: dc.n, K: dc.k, Store: store}
							strideB := 0
							if dc.batch > 1 {
								c.Batch = dc.batch
								strideB = dc.k*dc.n + dc.padB
								c.StrideC = dc.m*dc.n + dc.padC
							}
							c.A = a
							c.BPack = &matrixSrc{b: b, k: dc.k, n: dc.n, strideB: strideB}
							c.C = append([]float32(nil), cInit...)
							var ctx Context
							if workers > 0 {
								Shared().Run(&ctx, c, workers)
							} else {
								ctx.Run(c)
							}
							for i := range want {
								if c.C[i] != want[i] {
									t.Fatalf("BPack diverges at C[%d]: got %v want %v", i, c.C[i], want[i])
								}
							}
						})
					})
				}
			}
		}
	}
}

// epilogueRef applies the epilogue the slow explicit way over a full
// strided batch result.
func epilogueRef(c []float32, m, n, images, strideC int, biasRow, biasCol []float32, act Activation, alpha float32) {
	for img := 0; img < images; img++ {
		for r := 0; r < m; r++ {
			for j := 0; j < n; j++ {
				v := c[img*strideC+r*n+j]
				// The epilogue adds both biases as one pre-summed term;
				// mirror that so the comparison is exact.
				var badd float32
				if biasRow != nil {
					badd += biasRow[r]
				}
				if biasCol != nil {
					badd += biasCol[j]
				}
				v += badd
				switch act {
				case ActReLU:
					if v < 0 {
						v = 0
					}
				case ActReLU6:
					v = float32(math.Min(math.Max(float64(v), 0), 6))
				case ActLeakyReLU:
					if v < 0 {
						v = alpha * v
					}
				}
				c[img*strideC+r*n+j] = v
			}
		}
	}
}

func TestEpilogueMatchesPostSweep(t *testing.T) {
	acts := []Activation{ActNone, ActReLU, ActReLU6, ActLeakyReLU}
	for _, kn := range KernelNames() {
		for _, dc := range diffCases {
			for _, workers := range []int{0, 3} {
				for ai, act := range acts {
					name := fmt.Sprintf("%s/%s/workers=%d/act=%d", kn, dc, workers, ai)
					t.Run(name, func(t *testing.T) {
						withKernel(t, kn, func() {
							images := dc.batch
							if images < 2 {
								images = 1
							}
							a, b, cInit := diffBuffers(dc, uint64(dc.m*31+dc.n*7+dc.k))
							r := tensor.NewRNG(99)
							biasRow := make([]float32, dc.m)
							biasCol := make([]float32, dc.n)
							for i := range biasRow {
								biasRow[i] = r.Uniform(-1, 1)
							}
							for i := range biasCol {
								biasCol[i] = r.Uniform(-1, 1)
							}
							// Reference: plain store GEMM + explicit sweep.
							want := runDiffCall(dc, variant{}, a, b, cInit, true)
							strideC := dc.m * dc.n
							if dc.batch > 1 {
								strideC += dc.padC
							}
							epilogueRef(want, dc.m, dc.n, images, strideC, biasRow, biasCol, act, 0.125)

							c := Call{A: a, B: b, M: dc.m, N: dc.n, K: dc.k, Store: true,
								BiasRow: biasRow, BiasCol: biasCol, Act: act, Alpha: 0.125}
							if dc.batch > 1 {
								c.Batch = dc.batch
								c.StrideB = dc.k*dc.n + dc.padB
								c.StrideC = dc.m*dc.n + dc.padC
							}
							c.C = append([]float32(nil), cInit...)
							var ctx Context
							if workers > 0 {
								Shared().Run(&ctx, c, workers)
							} else {
								ctx.Run(c)
							}
							for i := range want {
								if c.C[i] != want[i] {
									t.Fatalf("epilogue diverges at C[%d]: got %v want %v", i, c.C[i], want[i])
								}
							}
						})
					})
				}
			}
		}
	}
}

// TestEpilogueZeroK pins the K == 0 store case: C is zeroed and the
// epilogue still applies (bias + activation over zeros).
func TestEpilogueZeroK(t *testing.T) {
	const m, n = 5, 9
	biasRow := []float32{1, -2, 3, -4, 5}
	c := make([]float32, m*n)
	for i := range c {
		c[i] = 42
	}
	var ctx Context
	ctx.Run(Call{C: c, M: m, N: n, K: 0, Store: true, BiasRow: biasRow, Act: ActReLU})
	for r := 0; r < m; r++ {
		want := biasRow[r]
		if want < 0 {
			want = 0
		}
		for j := 0; j < n; j++ {
			if c[r*n+j] != want {
				t.Fatalf("C[%d][%d] = %v, want %v", r, j, c[r*n+j], want)
			}
		}
	}
}

func TestPoolSweep(t *testing.T) {
	r := tensor.NewRNG(7)
	const rows, rowLen = 37, 53
	bias := make([]float32, 5)
	for i := range bias {
		bias[i] = r.Uniform(-1, 1)
	}
	data := make([]float32, rows*rowLen)
	for i := range data {
		data[i] = r.Uniform(-3, 3)
	}
	want := append([]float32(nil), data...)
	for rr := 0; rr < rows; rr++ {
		for j := 0; j < rowLen; j++ {
			v := want[rr*rowLen+j] + bias[rr%len(bias)]
			if v < 0 {
				v = 0
			}
			want[rr*rowLen+j] = v
		}
	}
	for _, workers := range []int{1, 4} {
		got := append([]float32(nil), data...)
		Shared().Sweep(got, bias, rows, rowLen, ActReLU, 0, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sweep diverges at [%d]: got %v want %v", workers, i, got[i], want[i])
			}
		}
	}
}
