package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// conv.winograd — Winograd F(2x2, 3x3) convolution for stride-1 3x3
// layers. Each 2x2 output tile costs 16 multiplies instead of 36; the
// channel reductions become 16 independent GEMMs over the transformed
// domain. This is one of the "alternative algorithms" the paper's
// programming model is designed to host; the auto-tuning policy and the
// layer-wise experiments exercise it.
//
// Transform matrices (Lavin & Gray, 2016):
//
//	B^T = | 1  0 -1  0 |   G = | 1    0    0  |   A^T = | 1 1  1  0 |
//	      | 0  1  1  0 |       | 1/2  1/2  1/2|         | 0 1 -1 -1 |
//	      | 0 -1  1  0 |       | 1/2 -1/2  1/2|
//	      | 0  1  0 -1 |       | 0    0    1  |
func init() {
	// Every output pixel is written by the output transform, so the kernel
	// overwrites and the runtime skips the arena zero-fill.
	Register(NewOverwritingKernel("conv.winograd", "Conv", supportsWinograd, runConvWinograd))
}

func supportsWinograd(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == "" && p.kh == 3 && p.kw == 3 && p.sh == 1 && p.sw == 1 &&
		p.dh == 1 && p.dw == 1 && p.groups == 1
}

func runConvWinograd(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	th := (p.oh + 1) / 2 // tile rows
	tw := (p.ow + 1) / 2 // tile cols
	ntiles := th * tw

	// Weight transform U[pos][oc][ic] (weights are constant during
	// inference). On the production path only the 16 prepacked GEMM
	// A-panels are cached — the raw transform is a local stepping stone —
	// so the constant cache holds one copy of the derived weights, not
	// two. The per-call-allocation simulation caches the raw transform
	// instead (the seed behaviour) and repacks per run.
	perPos := gemm.PackedASize(p.cout, p.cin)
	var u, pu []float32
	if ctx.DisableScratchReuse {
		u = ctx.Cache("conv.winograd/U", n)
		if u == nil {
			u = transformWinogradWeights(in[1].Data(), p.cout, p.cin)
			ctx.PutCache("conv.winograd/U", n, u)
		}
	} else {
		pu = ctx.Cache("conv.winograd/pU", n)
		if pu == nil {
			u = transformWinogradWeights(in[1].Data(), p.cout, p.cin)
			pu = make([]float32, 16*perPos)
			for pos := 0; pos < 16; pos++ {
				gemm.PrepackAInto(pu[pos*perPos:], u[pos*p.cout*p.cin:(pos+1)*p.cout*p.cin], p.cout, p.cin)
			}
			ctx.PutCache("conv.winograd/pU", n, pu)
		}
	}

	// Both transform domains are fully written every run: V by the input
	// transform, M by the overwriting GEMMs below.
	v := ctx.ScratchUninit("conv.winograd/V", n, 16*p.cin*ntiles)
	m := ctx.ScratchUninit("conv.winograd/M", n, 16*p.cout*ntiles)

	for b := 0; b < p.n; b++ {
		// Input transform: V[pos][ic][tile] = (B^T d B)[pos].
		var d [16]float32
		for ic := 0; ic < p.cin; ic++ {
			plane := x[(b*p.cin+ic)*p.h*p.w:]
			for ty := 0; ty < th; ty++ {
				for tx := 0; tx < tw; tx++ {
					iy0 := 2*ty - p.padT
					ix0 := 2*tx - p.padL
					for dy := 0; dy < 4; dy++ {
						iy := iy0 + dy
						for dx := 0; dx < 4; dx++ {
							ix := ix0 + dx
							if iy < 0 || iy >= p.h || ix < 0 || ix >= p.w {
								d[dy*4+dx] = 0
							} else {
								d[dy*4+dx] = plane[iy*p.w+ix]
							}
						}
					}
					var t, vv [16]float32
					// t = B^T d
					for j := 0; j < 4; j++ {
						t[0*4+j] = d[0*4+j] - d[2*4+j]
						t[1*4+j] = d[1*4+j] + d[2*4+j]
						t[2*4+j] = -d[1*4+j] + d[2*4+j]
						t[3*4+j] = d[1*4+j] - d[3*4+j]
					}
					// vv = t B
					for i := 0; i < 4; i++ {
						vv[i*4+0] = t[i*4+0] - t[i*4+2]
						vv[i*4+1] = t[i*4+1] + t[i*4+2]
						vv[i*4+2] = -t[i*4+1] + t[i*4+2]
						vv[i*4+3] = t[i*4+1] - t[i*4+3]
					}
					tile := ty*tw + tx
					for pos := 0; pos < 16; pos++ {
						v[(pos*p.cin+ic)*ntiles+tile] = vv[pos]
					}
				}
			}
		}
		// 16 batched GEMMs: M[pos] = U[pos] (cout×cin) · V[pos] (cin×ntiles),
		// in overwrite mode so M needs no zero-fill between runs.
		for pos := 0; pos < 16; pos++ {
			call := gemm.Call{
				B: v[pos*p.cin*ntiles : (pos+1)*p.cin*ntiles],
				C: m[pos*p.cout*ntiles : (pos+1)*p.cout*ntiles],
				M: p.cout, N: ntiles, K: p.cin, Store: true,
			}
			if pu != nil {
				call.PackedA = pu[pos*perPos : (pos+1)*perPos]
			} else {
				call.A = u[pos*p.cout*p.cin : (pos+1)*p.cout*p.cin]
			}
			ctx.GEMM(call)
		}
		// Output transform: Y tile = A^T M A.
		for oc := 0; oc < p.cout; oc++ {
			var bv float32
			if bias != nil {
				bv = bias[oc]
			}
			dst := y[(b*p.cout+oc)*p.oh*p.ow:]
			for ty := 0; ty < th; ty++ {
				for tx := 0; tx < tw; tx++ {
					tile := ty*tw + tx
					var mm [16]float32
					for pos := 0; pos < 16; pos++ {
						mm[pos] = m[(pos*p.cout+oc)*ntiles+tile]
					}
					// t = A^T m (2x4)
					var t [8]float32
					for j := 0; j < 4; j++ {
						t[0*4+j] = mm[0*4+j] + mm[1*4+j] + mm[2*4+j]
						t[1*4+j] = mm[1*4+j] - mm[2*4+j] - mm[3*4+j]
					}
					// yTile = t A (2x2)
					var yt [4]float32
					for i := 0; i < 2; i++ {
						yt[i*2+0] = t[i*4+0] + t[i*4+1] + t[i*4+2]
						yt[i*2+1] = t[i*4+1] - t[i*4+2] - t[i*4+3]
					}
					for dy := 0; dy < 2; dy++ {
						oy := 2*ty + dy
						if oy >= p.oh {
							continue
						}
						for dx := 0; dx < 2; dx++ {
							ox := 2*tx + dx
							if ox >= p.ow {
								continue
							}
							dst[oy*p.ow+ox] = yt[dy*2+dx] + bv
						}
					}
				}
			}
		}
	}
	ctx.Sweep(y, nil, p.n*p.cout, p.oh*p.ow, p.activation, p.alpha)
	return nil
}

// transformWinogradWeights computes U[pos][oc][ic] = (G g G^T)[pos] for
// every filter pair.
func transformWinogradWeights(w []float32, cout, cin int) []float32 {
	u := make([]float32, 16*cout*cin)
	for oc := 0; oc < cout; oc++ {
		for ic := 0; ic < cin; ic++ {
			g := w[(oc*cin+ic)*9 : (oc*cin+ic)*9+9]
			// t = G g (4x3)
			var t [12]float32
			for j := 0; j < 3; j++ {
				t[0*3+j] = g[0*3+j]
				t[1*3+j] = 0.5 * (g[0*3+j] + g[1*3+j] + g[2*3+j])
				t[2*3+j] = 0.5 * (g[0*3+j] - g[1*3+j] + g[2*3+j])
				t[3*3+j] = g[2*3+j]
			}
			// uu = t G^T (4x4)
			var uu [16]float32
			for i := 0; i < 4; i++ {
				uu[i*4+0] = t[i*3+0]
				uu[i*4+1] = 0.5 * (t[i*3+0] + t[i*3+1] + t[i*3+2])
				uu[i*4+2] = 0.5 * (t[i*3+0] - t[i*3+1] + t[i*3+2])
				uu[i*4+3] = t[i*3+2]
			}
			for pos := 0; pos < 16; pos++ {
				u[(pos*cout+oc)*cin+ic] = uu[pos]
			}
		}
	}
	return u
}
