package ops

import (
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Pooling kernels: MaxPool, AveragePool (with optional count_include_pad)
// and GlobalAveragePool.
func init() {
	Register(NewOverwritingKernel("maxpool.direct", "MaxPool", nil, runMaxPool))
	Register(NewOverwritingKernel("avgpool.direct", "AveragePool", nil, runAvgPool))
	Register(NewOverwritingKernel("globalavgpool.direct", "GlobalAveragePool", nil, runGlobalAvgPool))
}

func runMaxPool(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolvePoolRT(n, in)
	if err != nil {
		return err
	}
	x, y := in[0].Data(), out[0].Data()
	if p.layout == "nhwc" {
		// Channel-innermost: one output pixel is a C-vector, reduced
		// vector-wise over the window taps.
		for b := 0; b < p.n; b++ {
			for oy := 0; oy < p.oh; oy++ {
				for ox := 0; ox < p.ow; ox++ {
					base := ((b*p.oh+oy)*p.ow + ox) * p.c
					dst := y[base : base+p.c]
					for i := range dst {
						dst[i] = float32(math.Inf(-1))
					}
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.sh - p.padT + ky
						if iy < 0 || iy >= p.h {
							continue
						}
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.sw - p.padL + kx
							if ix < 0 || ix >= p.w {
								continue
							}
							src := x[((b*p.h+iy)*p.w+ix)*p.c:][:p.c]
							for i, v := range src {
								if v > dst[i] {
									dst[i] = v
								}
							}
						}
					}
				}
			}
		}
		return nil
	}
	for b := 0; b < p.n; b++ {
		for c := 0; c < p.c; c++ {
			src := x[(b*p.c+c)*p.h*p.w:]
			dst := y[(b*p.c+c)*p.oh*p.ow:]
			for oy := 0; oy < p.oh; oy++ {
				for ox := 0; ox < p.ow; ox++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.sh - p.padT + ky
						if iy < 0 || iy >= p.h {
							continue
						}
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.sw - p.padL + kx
							if ix < 0 || ix >= p.w {
								continue
							}
							if v := src[iy*p.w+ix]; v > best {
								best = v
							}
						}
					}
					dst[oy*p.ow+ox] = best
				}
			}
		}
	}
	return nil
}

func runAvgPool(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolvePoolRT(n, in)
	if err != nil {
		return err
	}
	x, y := in[0].Data(), out[0].Data()
	if p.layout == "nhwc" {
		for b := 0; b < p.n; b++ {
			for oy := 0; oy < p.oh; oy++ {
				for ox := 0; ox < p.ow; ox++ {
					base := ((b*p.oh+oy)*p.ow + ox) * p.c
					dst := y[base : base+p.c]
					for i := range dst {
						dst[i] = 0
					}
					count := 0
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.sh - p.padT + ky
						if iy < 0 || iy >= p.h {
							continue
						}
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.sw - p.padL + kx
							if ix < 0 || ix >= p.w {
								continue
							}
							src := x[((b*p.h+iy)*p.w+ix)*p.c:][:p.c]
							for i, v := range src {
								dst[i] += v
							}
							count++
						}
					}
					if p.includePad {
						count = p.kh * p.kw
					}
					if count > 0 {
						inv := 1 / float32(count)
						for i := range dst {
							dst[i] *= inv
						}
					}
				}
			}
		}
		return nil
	}
	for b := 0; b < p.n; b++ {
		for c := 0; c < p.c; c++ {
			src := x[(b*p.c+c)*p.h*p.w:]
			dst := y[(b*p.c+c)*p.oh*p.ow:]
			for oy := 0; oy < p.oh; oy++ {
				for ox := 0; ox < p.ow; ox++ {
					var sum float32
					count := 0
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.sh - p.padT + ky
						if iy < 0 || iy >= p.h {
							continue
						}
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.sw - p.padL + kx
							if ix < 0 || ix >= p.w {
								continue
							}
							sum += src[iy*p.w+ix]
							count++
						}
					}
					if p.includePad {
						count = p.kh * p.kw
					}
					if count == 0 {
						dst[oy*p.ow+ox] = 0
					} else {
						dst[oy*p.ow+ox] = sum / float32(count)
					}
				}
			}
		}
	}
	return nil
}

func runGlobalAvgPool(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x := in[0]
	s := x.Shape()
	xd, yd := x.Data(), out[0].Data()
	if n.Attrs.Str("layout", "") == "nhwc" {
		nb, spatial, c := s[0], s[1]*s[2], s[3]
		inv := 1 / float32(spatial)
		for b := 0; b < nb; b++ {
			img := xd[b*spatial*c:]
			for ch := 0; ch < c; ch++ {
				var sum float64
				for sp := 0; sp < spatial; sp++ {
					sum += float64(img[sp*c+ch])
				}
				yd[b*c+ch] = float32(sum) * inv
			}
		}
		return nil
	}
	nb, c, spatial := s[0], s[1], s[2]*s[3]
	inv := 1 / float32(spatial)
	for b := 0; b < nb; b++ {
		for ch := 0; ch < c; ch++ {
			var sum float64
			plane := xd[(b*c+ch)*spatial : (b*c+ch+1)*spatial]
			for _, v := range plane {
				sum += float64(v)
			}
			yd[b*c+ch] = float32(sum) * inv
		}
	}
	return nil
}
