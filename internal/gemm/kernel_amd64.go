//go:build amd64 && !noasm

package gemm

// AVX2/FMA and AVX-512 dispatch for amd64. Three assembly micro-kernels:
//
//   - avx2: the 8x8 tile in eight YMM accumulators, one row each.
//   - avx2-6x16: a 6x16 tile in twelve YMM accumulators (two per row).
//     Each A broadcast feeds two FMAs and each k step loads two B strips
//     for six broadcasts, so the FLOP-per-load ratio beats 8x8; preferred
//     on AVX2-only hosts.
//   - avx512: a 14x32 tile in twenty-eight ZMM accumulators (two 16-wide
//     registers per row), registered only when the CPU and OS support the
//     AVX-512F state; preferred where available.
//
// Feature detection is a hand-rolled CPUID/XGETBV probe (no external
// dependency), so the portable kernel remains the default everywhere else.

func init() {
	if hasAVX2FMA() {
		registerKernel(newKernel("avx2", 8, 8,
			adaptAsmKernel(microKernel8x8AVX2, 8, 8)))
		registerKernel(newKernel("avx2-6x16", 6, 16,
			adaptAsmKernel(microKernel6x16AVX2, 6, 16)))
	}
	if hasAVX512() {
		registerKernel(newKernel("avx512", 14, 32,
			adaptAsmKernel(microKernel14x32AVX512, 14, 32)))
	}
}

// microKernel8x8AVX2 computes one 8x8 block: C[r][cc] (+)= sum_p
// pa[p*8+r]*pb[p*8+cc], with ldc the row stride of c in elements and kc
// ≥ 1. Implemented in kernel_amd64.s.
//
//go:noescape
func microKernel8x8AVX2(pa, pb, c *float32, kc, ldc int64, store bool)

// microKernel6x16AVX2 computes one 6x16 block: C[r][cc] (+)= sum_p
// pa[p*6+r]*pb[p*16+cc], with ldc the row stride of c in elements and kc
// ≥ 1. Implemented in kernel_amd64.s.
//
//go:noescape
func microKernel6x16AVX2(pa, pb, c *float32, kc, ldc int64, store bool)

// microKernel14x32AVX512 computes one 14x32 block: C[r][cc] (+)= sum_p
// pa[p*14+r]*pb[p*32+cc], with ldc the row stride of c in elements and kc
// ≥ 1. Implemented in kernel_amd64.s.
//
//go:noescape
func microKernel14x32AVX512(pa, pb, c *float32, kc, ldc int64, store bool)

// cpuid executes the CPUID instruction for (eaxIn, ecxIn).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled XSAVE state).
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether this CPU and OS support the AVX2 kernel:
// CPUID must advertise OSXSAVE+AVX+FMA and AVX2, and XCR0 must show the
// OS saving both XMM and YMM register state across context switches.
func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	const xmmYmm = 1<<1 | 1<<2
	if xlo, _ := xgetbv(); xlo&xmmYmm != xmmYmm {
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2 != 0
}

// hasAVX512 reports whether this CPU and OS support the AVX-512 kernel:
// the AVX2/FMA baseline, CPUID leaf 7 advertising AVX512F, and XCR0
// showing the OS saving the opmask, ZMM-high and high-16-ZMM state.
func hasAVX512() bool {
	if !hasAVX2FMA() {
		return false
	}
	const avx512f = 1 << 16
	_, ebx7, _, _ := cpuid(7, 0)
	if ebx7&avx512f == 0 {
		return false
	}
	// XCR0: SSE|AVX|opmask|zmm_hi256|hi16_zmm all OS-enabled.
	const zmmState = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	xlo, _ := xgetbv()
	return xlo&zmmState == zmmState
}
