//go:build amd64 && !noasm

package gemm

// Vectorised row helpers for amd64. FMARow backs the NHWC depthwise
// convolution kernel, whose inner loop is a straight elementwise FMA over
// the channel axis.

// vecAVX2 gates the assembly row helpers on the same probe as the AVX2
// GEMM kernel.
var vecAVX2 = hasAVX2FMA()

// FMARow computes dst[i] += a[i]*b[i] for i in [0, len(dst)). a and b must
// be at least as long as dst.
func FMARow(dst, a, b []float32) {
	n := len(dst)
	if vecAVX2 && n >= 8 {
		q := n &^ 7
		fmaRowAVX2(&dst[0], &a[0], &b[0], int64(q))
		dst, a, b = dst[q:n], a[q:n], b[q:n]
	}
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

// fmaRowAVX2 computes dst[i] += a[i]*b[i] for i in [0, n); n must be a
// positive multiple of 8. Implemented in vec_amd64.s.
//
//go:noescape
func fmaRowAVX2(dst, a, b *float32, n int64)
