package ops

import (
	"fmt"
	"testing"

	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Differential battery for implicit-GEMM convolution: conv.im2col (the
// virtual B-pack plus fused epilogue) must match conv.im2col_explicit
// (materialised unfold, separate bias/activation sweeps) at ≤ 1e-5
// relative tolerance on every geometry either path claims to support —
// odd shapes, asymmetric padding, stride, dilation, groups, batches —
// under every selectable micro-kernel, single-threaded and through the
// worker pool. The explicit path itself is pinned to conv.direct by
// TestConvKernelEquivalence, so agreement here pins the whole chain.

const implicitTol = 1e-5

// withGemmKernel pins the named micro-kernel for fn, restoring afterwards.
func withGemmKernel(t testing.TB, name string, fn func()) {
	t.Helper()
	prev := gemm.KernelName()
	if err := gemm.SetKernel(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := gemm.SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

// runConvWorkers executes the named conv kernel on a fresh Ctx with the
// given worker budget (a fresh Ctx also means a fresh prepack cache, so
// panels are always packed under the active micro-kernel).
func runConvWorkers(t testing.TB, kernelName string, workers int, n *graph.Node, inputs []*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	k := ByName(kernelName)
	if k == nil {
		t.Fatalf("kernel %q not registered", kernelName)
	}
	out := tensor.New(n.Outputs[0].Shape...)
	ctx := NewCtx(workers)
	if err := k.Run(ctx, n, inputs, []*tensor.Tensor{out}); err != nil {
		t.Fatalf("kernel %q: %v", kernelName, err)
	}
	return out
}

// relClose reports the first index where got and want differ by more than
// tol relative to max(1, |got|, |want|), or -1.
func relClose(got, want []float32, tol float64) int {
	for i := range want {
		d := float64(got[i]) - float64(want[i])
		if d < 0 {
			d = -d
		}
		scale := 1.0
		for _, v := range []float64{float64(got[i]), float64(want[i])} {
			if v < 0 {
				v = -v
			}
			if v > scale {
				scale = v
			}
		}
		if d > tol*scale {
			return i
		}
	}
	return -1
}

// implicitCases extends the shared convMatrix with geometries that stress
// the implicit pack source specifically: panel boundaries in kdim and
// cols, stride+dilation+asymmetric-padding combinations, grouped batches.
var implicitCases = []convCase{
	{name: "deep-kdim", n: 1, cin: 32, h: 10, w: 10, cout: 9, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1, bias: true},
	{name: "wide-cols", n: 1, cin: 3, h: 26, w: 30, cout: 5, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1},
	{name: "stride-dilate-asym", n: 2, cin: 5, h: 13, w: 11, cout: 7, kh: 3, kw: 2, sh: 2, sw: 3, padT: 2, padL: 0, padB: 1, padR: 3, dh: 2, dw: 1, groups: 1, bias: true},
	{name: "grouped-batch", n: 3, cin: 12, h: 9, w: 7, cout: 8, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 4, bias: true},
	{name: "pointwise-batch", n: 4, cin: 6, h: 5, w: 5, cout: 10, kh: 1, kw: 1, sh: 1, sw: 1, dh: 1, dw: 1, groups: 1, bias: true},
	{name: "tall-stride", n: 1, cin: 2, h: 40, w: 3, cout: 3, kh: 5, kw: 1, sh: 3, sw: 1, padT: 2, padL: 0, padB: 2, padR: 0, dh: 1, dw: 1, groups: 1},
}

func implicitBattery() []convCase {
	return append(append([]convCase(nil), convMatrix...), implicitCases...)
}

func TestConvImplicitMatchesExplicit(t *testing.T) {
	for _, kn := range gemm.KernelNames() {
		for _, tc := range implicitBattery() {
			for _, workers := range []int{1, 3} {
				for _, act := range []string{"", "relu"} {
					tc, act := tc, act
					name := fmt.Sprintf("%s/%s/workers=%d/act=%s", kn, tc.name, workers, act)
					t.Run(name, func(t *testing.T) {
						withGemmKernel(t, kn, func() {
							attrs := tc.attrs()
							if act != "" {
								attrs["activation"] = act
							}
							inputs := tc.tensors(tensor.SeedFromString(tc.name))
							n := buildNode(t, "Conv", attrs, inputs...)
							want := runConvWorkers(t, "conv.im2col_explicit", 1, n, inputs)
							got := runConvWorkers(t, "conv.im2col", workers, n, inputs)
							if i := relClose(got.Data(), want.Data(), implicitTol); i >= 0 {
								t.Fatalf("implicit diverges from explicit at [%d]: got %v want %v",
									i, got.Data()[i], want.Data()[i])
							}
						})
					})
				}
			}
		}
	}
}

// TestConvImplicitRuntimeBatchSlices mirrors how sessions bind batched
// plans: the node declares Nmax while the bound tensors carry any
// 1 ≤ n ≤ Nmax, and the kernel must follow the tensors.
func TestConvImplicitRuntimeBatchSlices(t *testing.T) {
	const nmax = 4
	tc := convCase{name: "rtbatch", n: nmax, cin: 5, h: 9, w: 8, cout: 6, kh: 3, kw: 3,
		sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1, bias: true}
	full := tc.tensors(77)
	node := buildNode(t, "Conv", tc.attrs(), full...)
	perImage := tc.cin * tc.h * tc.w
	for n := 1; n <= nmax; n++ {
		x := tensor.FromSlice(full[0].Data()[:n*perImage], n, tc.cin, tc.h, tc.w)
		inputs := []*tensor.Tensor{x, full[1], full[2]}
		outShape := append([]int(nil), node.Outputs[0].Shape...)
		outShape[0] = n
		want := tensor.New(outShape...)
		got := tensor.New(outShape...)
		if err := ByName("conv.im2col_explicit").Run(NewCtx(1), node, inputs, []*tensor.Tensor{want}); err != nil {
			t.Fatal(err)
		}
		if err := ByName("conv.im2col").Run(NewCtx(3), node, inputs, []*tensor.Tensor{got}); err != nil {
			t.Fatal(err)
		}
		if i := relClose(got.Data(), want.Data(), implicitTol); i >= 0 {
			t.Fatalf("batch %d: implicit diverges at [%d]: got %v want %v", n, i, got.Data()[i], want.Data()[i])
		}
	}
}

// FuzzConvImplicitVsExplicit explores conv geometry beyond the fixed
// battery: random shapes, strides, dilations, asymmetric padding, group
// counts, batch sizes, bias and fused activations, through both the
// single-threaded and pool paths of every selectable kernel.
func FuzzConvImplicitVsExplicit(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(4), uint8(8), uint8(8), uint8(3), uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), true, uint8(1))
	f.Add(uint64(9), uint8(8), uint8(8), uint8(9), uint8(7), uint8(3), uint8(2), uint8(2), uint8(3), uint8(2), uint8(0), uint8(2), uint8(1), uint8(2), false, uint8(3))
	f.Add(uint64(5), uint8(6), uint8(6), uint8(12), uint8(5), uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(1), uint8(1), uint8(6), true, uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, cinB, coutB, hB, wB, khB, kwB, shB, swB, padA, padC, dhB, dwB, groupB uint8, bias bool, nB uint8) {
		tc := convCase{
			n:    int(nB%4) + 1,
			cin:  int(cinB%12) + 1,
			h:    int(hB%20) + 1,
			w:    int(wB%20) + 1,
			cout: int(coutB%12) + 1,
			kh:   int(khB%5) + 1,
			kw:   int(kwB%5) + 1,
			sh:   int(shB%3) + 1,
			sw:   int(swB%3) + 1,
			padT: int(padA % 3), padL: int(padC % 3),
			padB: int(padC % 2), padR: int(padA % 2),
			dh: int(dhB%2) + 1, dw: int(dwB%2) + 1,
			groups: 1,
			bias:   bias,
		}
		// Snap channels onto a valid group count.
		g := int(groupB%4) + 1
		tc.cin, tc.cout = tc.cin*g, tc.cout*g
		tc.groups = g
		if (tc.kh-1)*tc.dh+1 > tc.h+tc.padT+tc.padB || (tc.kw-1)*tc.dw+1 > tc.w+tc.padL+tc.padR {
			t.Skip("kernel exceeds padded input")
		}
		attrs := tc.attrs()
		if seed%3 == 0 {
			attrs["activation"] = []string{"relu", "relu6", "leakyrelu"}[(seed/3)%3]
			attrs["alpha"] = 0.1
		}
		inputs := tc.tensors(seed)
		n := buildNode(t, "Conv", attrs, inputs...)
		want := runConvWorkers(t, "conv.im2col_explicit", 1, n, inputs)
		for _, kn := range gemm.KernelNames() {
			withGemmKernel(t, kn, func() {
				for _, workers := range []int{1, 3} {
					got := runConvWorkers(t, "conv.im2col", workers, n, inputs)
					if i := relClose(got.Data(), want.Data(), implicitTol); i >= 0 {
						t.Fatalf("kernel %s workers %d: implicit diverges at [%d]: got %v want %v (case %+v)",
							kn, workers, i, got.Data()[i], want.Data()[i], tc)
					}
				}
			})
		}
	})
}
