package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden fixtures instead of checking against
// them: go test ./internal/wire -run TestGolden -update. Only a
// deliberate, reviewed format change may ever run it.
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// TestGoldenFixtures is the conformance battery: each checked-in .bin
// fixture must byte-exactly equal a fresh encode of its reference tensor,
// and must decode back to it. The fixtures pin the format itself — any
// silent drift (field order, endianness, header width, dataLen
// derivation) fails here before it can ship, because the comparison is
// against bytes produced by a previous version of the encoder, not by
// the current one.
func TestGoldenFixtures(t *testing.T) {
	refs := testTensors()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, ref := range refs {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".bin")
			var buf bytes.Buffer
			if err := Encode(&buf, ref); err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update after a deliberate format change): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("encoding of %q drifted from its golden fixture:\n got: %x\nwant: %x", name, buf.Bytes(), want)
			}
			// And the fixture decodes back to the reference tensor.
			dec, err := DecodeBytes(want, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.SameShape(ref) {
				t.Fatalf("decoded shape %v, want %v", dec.Shape(), ref.Shape())
			}
			dd, rd := dec.Data(), ref.Data()
			for i := range rd {
				if dd[i] != rd[i] {
					t.Fatalf("decoded data[%d] = %v, want %v", i, dd[i], rd[i])
				}
			}
		})
	}
	// Every fixture on disk must have a reference — a stray file means
	// the battery no longer covers the whole corpus.
	files, err := filepath.Glob(filepath.Join("testdata", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		name := filepath.Base(f)
		if _, ok := refs[name[:len(name)-len(".bin")]]; !ok {
			t.Errorf("fixture %s has no reference tensor in testTensors()", f)
		}
	}
}
