package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/quant"
	"orpheus/internal/tensor"
)

// conv.im2col_int8 — quantized implicit-GEMM convolution.
//
// The structure mirrors conv.im2col exactly — per-group strided batched
// GEMM over a virtual B packed straight from the NCHW input — but the
// arithmetic runs on the int8 tier: weights are quantized per output
// channel at first use (symmetric, |q| ≤ quant.QMaxGemm) and cached
// prepacked in the plan's ConstCache; activations are quantized to uint8
// per image into kernel-private scratch (never a graph tensor) and the
// pack walk copies bytes from it — a kh·kw-fold saving over quantizing
// inside the walk, where each input pixel is revisited once per kernel
// tap; the int32→fp32 requantize, zero-point compensation, bias and
// activation all ride the GEMM tile-store epilogue.
//
// The kernel registers as quantized: policies only select it when the
// plan opted into int8 execution, and the equivalence tests hold it to a
// quantization tolerance instead of fp32 bit-closeness.
func init() {
	RegisterQuantized(NewOverwritingKernel("conv.im2col_int8", "Conv", supportsConvInt8, runConvIm2colInt8))
}

// maxInt8K bounds the reduction depth of an int8 GEMM so the int32
// accumulator is exact: |Σ a·(b−z)| ≤ K·63·255, and 2^17·63·255 < 2^31.
// Real model layers sit orders of magnitude below this.
const maxInt8K = 1 << 17

func supportsConvInt8(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	if len(n.Inputs) < 2 || !n.Inputs[1].IsConst() {
		return false
	}
	// Depthwise convolutions have K = kh*kw per group — far too little
	// arithmetic per packed byte for the GEMM tier to pay off.
	kdim := (p.cin / p.groups) * p.kh * p.kw
	return p.layout == "" && !p.isDepthwise() && kdim <= maxInt8K
}

// int8ConvWeights returns the node's cached quantized weight panels,
// building them on first use: per-output-channel symmetric quantization
// over all cout rows, then one prepacked A-panel buffer per group
// (PackedAInt8Size(coutG, kdim) bytes each, back to back).
func int8ConvWeights(ctx *Ctx, n *graph.Node, w []float32, groups, coutG, kdim int) *Int8Weights {
	if wq := ctx.CacheInt8("conv.im2col_int8/pw", n); wq != nil {
		return wq
	}
	rows := groups * coutG
	data := make([]int8, rows*kdim)
	scales := make([]float32, rows)
	quant.QuantizeRowsInto(data, scales, w, rows, kdim, quant.QMaxGemm)
	sums := make([]int32, rows)
	gemm.RowSumsInt8(sums, data, rows, kdim)
	per := gemm.PackedAInt8Size(coutG, kdim)
	packed := make([]int8, groups*per)
	for g := 0; g < groups; g++ {
		gemm.PrepackAInt8Into(packed[g*per:], data[g*coutG*kdim:(g+1)*coutG*kdim], coutG, kdim)
	}
	wq := &Int8Weights{Packed: packed, Scales: scales, RowSums: sums}
	ctx.PutCacheInt8("conv.im2col_int8/pw", n, wq)
	return wq
}

func runConvIm2colInt8(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	coutG := p.cout / p.groups
	kdim := (p.cin / p.groups) * p.kh * p.kw
	cols := p.oh * p.ow
	act := gemmActivation(p.activation)

	wq := int8ConvWeights(ctx, n, w, p.groups, coutG, kdim)
	perGroup := gemm.PackedAInt8Size(coutG, kdim)

	src := &ctx.convSrc8
	src.quantizeBatch(x, p.n, p.cin*p.h*p.w)
	for g := 0; g < p.groups; g++ {
		src.init(x, &p, g)
		var bg []float32
		if bias != nil {
			bg = bias[g*coutG : (g+1)*coutG]
		}
		ctx.GEMM8(gemm.CallInt8{
			PackedA: wq.Packed[g*perGroup : (g+1)*perGroup],
			B:       src, C: y[g*coutG*cols:],
			M: coutG, N: cols, K: kdim,
			Batch: p.n, StrideC: p.cout * cols,
			ScaleA: wq.Scales[g*coutG:], RowSum: wq.RowSums[g*coutG:],
			BScale: src.scales, BZero: src.zeros,
			BiasRow: bg, Act: act, Alpha: p.alpha})
	}
	return nil
}

// quantRange derives the asymmetric uint8 parameters for values in
// [lo, hi]: the range is widened to include zero so fp32 0 (implicit
// padding) quantizes exactly to the zero point, a degenerate range maps
// to (scale 1, zero 0), and the zero point is clamped to [0, 255].
func quantRange(lo, hi float32) (scale float32, zero int32) {
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		return 1, 0
	}
	scale = (hi - lo) / 255
	z := int32(-lo/scale + 0.5)
	if z < 0 {
		z = 0
	} else if z > 255 {
		z = 255
	}
	return scale, z
}

func growF32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU8(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// convPackSrc8 is the quantizing counterpart of convPackSrc: a
// gemm.PackSrc8 that packs receptive-field bytes from a uint8 copy of
// the NCHW input built once per conv call. Quantizing inside the pack
// walk would redo the float math once per kernel tap (~9x for a 3x3),
// which on small-K layers costs more than the int8 GEMM itself; a bulk
// vectorised pre-pass makes the walk pure byte moves. Padding emits the
// image's zero-point byte so it dequantizes to exactly zero after
// compensation. Read-only during a call, so pool workers may pack panels
// concurrently.
type convPackSrc8 struct {
	geo convPackSrc

	// q8 is the quantized batch input (same NCHW indexing as the fp32
	// tensor); scales/zeros are the per-image parameters the requantize
	// epilogue needs.
	q8     []byte
	scales []float32
	zeros  []int32
}

// quantizeBatch scans each image of the batch (stride elements apiece),
// derives its quantization parameters and converts it to uint8 in q8.
// The buffers are reused across calls, so the steady state allocates
// nothing.
func (s *convPackSrc8) quantizeBatch(x []float32, images, stride int) {
	s.scales = growF32(s.scales, images)
	s.zeros = growI32(s.zeros, images)
	s.q8 = growU8(s.q8, images*stride)
	for img := 0; img < images; img++ {
		xi := x[img*stride : (img+1)*stride]
		lo, hi := gemm.MinMaxF32(xi)
		scale, zero := quantRange(lo, hi)
		s.scales[img] = scale
		s.zeros[img] = zero
		gemm.QuantizeU8(s.q8[img*stride:], xi, 1/scale, float32(zero)+0.5)
	}
}

// init points the source at group g of the convolution described by p.
// quantizeBatch must already have run for the batch.
func (s *convPackSrc8) init(x []float32, p *convParams, g int) {
	s.geo.init(x, p, g)
}

// PackPanel8 implements gemm.PackSrc8 with the same run-walk structure as
// convPackSrc.PackPanel: rows decode to (channel, ky, kx), columns walk
// output pixels in runs within one output row, and the stride-1 interior
// is a bounds-free byte copy from the pre-quantized input. The k-quad
// layout makes a row's bytes land 4 apart within the strip.
//
// Two hoists keep integer division off the per-byte path: each row's
// (channel offset, tap offsets) are decoded once per panel into stack
// tables instead of once per strip, and the (oy, ox) output coordinate is
// carried incrementally through the run walk instead of re-divided per
// run. On a 3x3/stride-1 layer these divisions were the largest single
// pack cost after the quantize pre-pass.
func (s *convPackSrc8) PackPanel8(dst []byte, img, pp, jj, kc, nc, nr int) {
	g := &s.geo
	khw := g.kh * g.kw
	plane := g.h * g.w
	imgBase := (img*g.cin + g.chan0) * plane
	zb := byte(s.zeros[img])
	kcq4 := (kc + 3) &^ 3
	var chOff, rowDy, rowDx [gemm.MaxPanelK]int32
	for p := 0; p < kc; p++ {
		kd := pp + p
		ic := kd / khw
		rem := kd - ic*khw
		ky := rem / g.kw
		kx := rem - ky*g.kw
		chOff[p] = int32(ic * plane)
		rowDy[p] = int32(ky*g.dh - g.padT) // iy = oy*sh + dy
		rowDx[p] = int32(kx*g.dw - g.padL) // ix = ox*sw + dx
	}
	for j := 0; j < nc; j += nr {
		cols := min(nr, nc-j)
		strip := dst[(j/nr)*nr*kcq4:]
		col0 := jj + j
		oy0 := col0 / g.ow
		ox0 := col0 - oy0*g.ow
		for p := 0; p < kc; p++ {
			qc := s.q8[imgBase+int(chOff[p]) : imgBase+int(chOff[p])+plane]
			dy := int(rowDy[p])
			dx := int(rowDx[p])
			row := strip[(p>>2)*nr*4+(p&3):]
			oy, ox := oy0, ox0
			cc := 0
			for cc < cols {
				run := min(g.ow-ox, cols-cc)
				iy := oy*g.sh + dy
				if iy < 0 || iy >= g.h {
					for i := 0; i < run; i++ {
						row[(cc+i)*4] = zb
					}
				} else {
					qrow := qc[iy*g.w : (iy+1)*g.w]
					ix := ox*g.sw + dx
					if g.sw == 1 {
						lo, hi := 0, run
						if ix < 0 {
							lo = min(-ix, run)
						}
						if ix+run > g.w {
							hi = g.w - ix
						}
						if hi < lo {
							hi = lo
						}
						for i := 0; i < lo; i++ {
							row[(cc+i)*4] = zb
						}
						for i := lo; i < hi; i++ {
							row[(cc+i)*4] = qrow[ix+i]
						}
						for i := hi; i < run; i++ {
							row[(cc+i)*4] = zb
						}
					} else {
						for i := 0; i < run; i++ {
							if ix >= 0 && ix < g.w {
								row[(cc+i)*4] = qrow[ix]
							} else {
								row[(cc+i)*4] = zb
							}
							ix += g.sw
						}
					}
				}
				cc += run
				ox += run
				if ox == g.ow {
					ox = 0
					oy++
				}
			}
			// Columns beyond nc are geometric padding (their products are
			// discarded), zeroed per the PackSrc8 contract.
			for i := cols; i < nr; i++ {
				row[i*4] = 0
			}
		}
		// Quad-tail rows beyond kc multiply A's zero k-padding; zero them.
		for p := kc; p < kcq4; p++ {
			row := strip[(p>>2)*nr*4+(p&3):]
			for i := 0; i < nr; i++ {
				row[i*4] = 0
			}
		}
	}
}
