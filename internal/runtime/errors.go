package runtime

import (
	"errors"
	"fmt"
)

// Typed sentinel errors of the inference request lifecycle. Every error the
// runtime (and the facade above it) returns for these conditions wraps one
// of the sentinels with %w, so callers branch with errors.Is instead of
// matching message strings:
//
//	if errors.Is(err, runtime.ErrShapeMismatch) { /* 400, not 500 */ }
//
// The sentinels deliberately carry no request detail themselves — the
// wrapping error holds the shapes, names and limits — so they stay stable
// comparison anchors across releases.
var (
	// ErrShapeMismatch marks an input (or destination) tensor whose shape
	// or volume does not match what the compiled plan expects.
	ErrShapeMismatch = errors.New("shape mismatch")

	// ErrUnknownInput marks a named input that the graph does not declare,
	// or a declared graph input missing from the request.
	ErrUnknownInput = errors.New("unknown input")

	// ErrUnknownOutput marks a request for an output name the graph does
	// not produce.
	ErrUnknownOutput = errors.New("unknown output")

	// ErrBatchTooLarge marks a request whose batch exceeds the MaxBatch the
	// plan was compiled for.
	ErrBatchTooLarge = errors.New("batch exceeds plan MaxBatch")

	// ErrClosed marks a request submitted after Close: the session,
	// batcher or server has drained and no longer accepts work.
	ErrClosed = errors.New("closed")

	// ErrNoOutput marks a graph that produced no output tensor (a model
	// hosting error, not a request error).
	ErrNoOutput = errors.New("model has no outputs")

	// ErrOverloaded marks a request shed by admission control: the
	// batcher's queue or the server's in-flight limit is at capacity and
	// the request was rejected immediately instead of queueing unboundedly.
	// The HTTP layer maps it to 429 with a Retry-After estimate.
	ErrOverloaded = errors.New("overloaded")

	// ErrPlanPanic marks a request whose plan step panicked. The panic is
	// recovered at the step boundary, only the affected request (or batch)
	// fails, and the session it ran on is quarantined rather than pooled;
	// the process stays up. The concrete error is a *PlanPanicError
	// carrying the step name.
	ErrPlanPanic = errors.New("plan step panicked")
)

// PlanPanicError is the error Run returns when a plan step panics: the
// panic value plus the step (node) it was recovered at. It wraps
// ErrPlanPanic, so callers branch with errors.Is and introspect with
// errors.As when they need the step identity.
type PlanPanicError struct {
	// Model is the graph name, Node the panicking step's node name and Op
	// its operator.
	Model, Node, Op string
	// Value is the recovered panic value.
	Value any
}

// Error formats the panic with its step identity.
func (e *PlanPanicError) Error() string {
	return fmt.Sprintf("runtime: node %q (%s) in %s panicked: %v: %v", e.Node, e.Op, e.Model, e.Value, ErrPlanPanic)
}

// Unwrap ties the error into the sentinel taxonomy.
func (e *PlanPanicError) Unwrap() error { return ErrPlanPanic }
