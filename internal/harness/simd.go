package harness

import (
	"fmt"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// SIMD micro-kernel ablation: the same GEMM Call stream and the same
// models, executed once per selectable micro-kernel (pure-Go fallback,
// then each SIMD kernel this CPU dispatches to). This is the experiment
// that turns "the batched-throughput win is conditioned on other hardware"
// into same-host numbers: everything above the micro-kernel — packing,
// prepack cache, pool scheduling, plans — is identical across columns, so
// the column ratio is purely the kernel.
func init() {
	register(&Experiment{
		ID:    "simd",
		Title: "GEMM micro-kernel ablation: pure-Go vs SIMD on the same Call stream",
		Run:   runSIMDAblation,
	})
}

// simdGEMMShapes is the fixed Call stream of the GEMM-level section: the
// dominant convolution GEMM shapes of the zoo models (M = output channels,
// N = output pixels, K = cin·kh·kw), all in the production configuration
// (prepacked constant A, overwrite semantics).
var simdGEMMShapes = []struct {
	name    string
	m, n, k int
}{
	{"wrn early 3x3 (16x1024x144)", 16, 1024, 144},
	{"wrn mid 3x3 (64x256x576)", 64, 256, 576},
	{"wrn late 3x3 (128x64x1152)", 128, 64, 1152},
	{"mobilenet pointwise (128x784x64)", 128, 784, 64},
	{"resnet stem-ish (64x3136x147)", 64, 3136, 147},
	{"square reference (256x256x256)", 256, 256, 256},
}

func runSIMDAblation(cfg *Config) (*Report, error) {
	cfg.fill()
	kernels := gemm.KernelNames()
	prev := gemm.KernelName()
	defer gemm.SetKernel(prev)

	rep := &Report{ID: "simd", Title: "GEMM micro-kernel ablation (host-measured)"}
	header := []string{"workload"}
	for _, k := range kernels {
		header = append(header, k)
	}
	best := kernels[len(kernels)-1]
	header = append(header, best+" vs go")
	rep.Header = header

	// The whole experiment is host measurement — the A73 cost model has no
	// kernel dimension — so in sim mode (the default all-experiments run,
	// documented as instant) it reports nothing rather than quietly timing
	// the host and switching kernels mid-run.
	if cfg.Mode == ModeSim {
		rep.AddNote("the kernel ablation measures this host; run with -mode measure")
		rep.AddNote("kernels selectable on this host: %v (default %s)", kernels, prev)
		return rep, nil
	}

	// Section 1: the shared GEMM Call stream, GFLOP/s per kernel.
	for _, sh := range simdGEMMShapes {
		row := []any{"gemm " + sh.name + " GFLOP/s"}
		var rates []float64
		for _, kn := range kernels {
			if err := gemm.SetKernel(kn); err != nil {
				return nil, err
			}
			rates = append(rates, gemmStreamRate(sh.m, sh.n, sh.k, cfg.Workers))
		}
		for _, r := range rates {
			row = append(row, fmt.Sprintf("%.2f", r))
		}
		row = append(row, ratioCell(rates[len(rates)-1], rates[0]))
		rep.AddRow(row...)
	}

	// Section 2: end-to-end model latency per kernel. Plans are rebuilt
	// under each kernel so the prepack cache carries that kernel's panel
	// geometry.
	be, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		row := []any{"model " + modelName + " ms"}
		var times []float64
		for _, kn := range kernels {
			if err := gemm.SetKernel(kn); err != nil {
				return nil, err
			}
			ms, err := modelLatencyMs(cfg, be, g, modelName)
			if err != nil {
				return nil, fmt.Errorf("harness: simd %s under %s: %w", modelName, kn, err)
			}
			times = append(times, ms)
		}
		for _, t := range times {
			row = append(row, fmt.Sprintf("%.2f", t))
		}
		row = append(row, ratioCell(times[0], times[len(times)-1])) // lower is better
		rep.AddRow(row...)
	}
	rep.AddNote("active default kernel on this host: %s; force a column process-wide with %s=<name>", prev, gemm.KernelEnv)
	rep.AddNote("gemm rows: prepacked-A overwrite Calls, workers=%d, identical buffers per column", cfg.Workers)
	return rep, nil
}

// ratioCell formats num/den as a speedup column, guarding zero.
func ratioCell(num, den float64) string {
	if den <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", num/den)
}

// gemmStreamRate measures sustained GFLOP/s of one production-shaped Call
// (prepacked constant A, Store semantics) under the active kernel, running
// the same buffers repeatedly for a minimum wall-time window.
func gemmStreamRate(m, n, k, workers int) float64 {
	r := tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("simd-%d-%d-%d", m, n, k)))
	a := make([]float32, m*k)
	for i := range a {
		a[i] = r.Uniform(-1, 1)
	}
	b := make([]float32, k*n)
	for i := range b {
		b[i] = r.Uniform(-1, 1)
	}
	c := make([]float32, m*n)
	pa := gemm.PrepackA(a, m, k)
	call := gemm.Call{PackedA: pa, B: b, C: c, M: m, N: n, K: k, Store: true}
	var ctx gemm.Context
	pool := gemm.Shared()
	run := func() {
		if workers > 1 {
			pool.Run(&ctx, call, workers)
		} else {
			ctx.Run(call)
		}
	}
	run() // warm-up: grows packing scratch, faults pages
	const window = 60 * time.Millisecond
	var iters int
	start := time.Now()
	for time.Since(start) < window {
		run()
		iters++
	}
	secs := time.Since(start).Seconds()
	return 2 * float64(m) * float64(n) * float64(k) * float64(iters) / secs / 1e9
}

// modelLatencyMs measures median single-sample inference latency of one
// model under the active kernel, compiling a fresh plan so all prepacked
// panels carry the active kernel's geometry.
func modelLatencyMs(cfg *Config, be *backend.Backend, g *graph.Graph, modelName string) (float64, error) {
	plan, err := be.Prepare(g, cfg.Workers)
	if err != nil {
		return 0, err
	}
	sess := runtime.NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString("simd-"+modelName)), -1, 1, g.Inputs[0].Shape...)
	stats, err := runtime.Measure(cfg.Ctx, sess, map[string]*tensor.Tensor{g.Inputs[0].Name: x}, cfg.Warmup, cfg.Reps)
	if err != nil {
		return 0, err
	}
	return float64(stats.Median) / 1e6, nil
}
