package orpheus

import (
	"context"
	"testing"

	"orpheus/internal/backend"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// TestSessionRunSteadyStateAllocFree asserts the PR's core perf invariant:
// after warm-up (scratch grown, constant weights packed), Session.Run in
// the planned-arena configuration performs zero heap allocations — the
// marginal cost of an inference is kernels, not bookkeeping.
func TestSessionRunSteadyStateAllocFree(t *testing.T) {
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		t.Run(model, func(t *testing.T) {
			g, err := zoo.Build(model, 1)
			if err != nil {
				t.Fatal(err)
			}
			be, err := backend.ByName("orpheus")
			if err != nil {
				t.Fatal(err)
			}
			plan, err := be.Prepare(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			sess := runtime.NewSession(plan)
			x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
			in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
			for i := 0; i < 2; i++ { // warm-up: grow scratch, pack weights
				if _, err := sess.Run(context.Background(), in); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(3, func() {
				if _, err := sess.Run(context.Background(), in); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Session.Run allocates %.1f times per run, want 0", avg)
			}
		})
	}
}

// TestBatchedSessionRunAllocFree extends the invariant to batch-native
// plans: once a batch size's bindings exist (first run at that n), every
// later Session.Run at that n — including at the full MaxBatch — does zero
// heap allocations.
func TestBatchedSessionRunAllocFree(t *testing.T) {
	const maxBatch = 8
	g, err := zoo.Build("wrn-40-2", 1)
	if err != nil {
		t.Fatal(err)
	}
	be, err := backend.ByName("orpheus")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := be.PrepareBatched(g, 1, maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	for _, n := range []int{maxBatch, 3} {
		x := tensor.Rand(tensor.NewRNG(uint64(n)), -1, 1, n, 3, 32, 32)
		in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
		for i := 0; i < 2; i++ { // warm-up: bind batch n, grow scratch, pack weights
			if _, err := sess.Run(context.Background(), in); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(3, func() {
			if _, err := sess.Run(context.Background(), in); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("steady-state batched Session.Run (n=%d) allocates %.1f times per run, want 0", n, avg)
		}
	}
}

// TestPredictIntoAllocFree asserts the facade fix rides the same
// invariant: PredictInto and PredictBatchInto with reused destinations do
// zero steady-state heap allocations (the seed facade paid 4 allocs/op
// copying in and out of the pooled session).
func TestPredictIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; pool-backed alloc counts are not meaningful")
	}
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Compile(WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(1, m.InputShape()...)
	dst, err := sess.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PredictInto(context.Background(), dst, x); err != nil { // warm-up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := sess.PredictInto(context.Background(), dst, x); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state PredictInto allocates %.1f times per run, want 0", avg)
	}

	inputs := []*Tensor{x, RandomTensor(2, m.InputShape()...)}
	dsts, err := sess.PredictBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PredictBatchInto(context.Background(), dsts, inputs); err != nil { // warm-up
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(3, func() {
		if _, err := sess.PredictBatchInto(context.Background(), dsts, inputs); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state PredictBatchInto allocates %.1f times per run, want 0", avg)
	}
}
