package runtime

import "orpheus/internal/graph"

// IODesc describes one graph input or output at the API boundary: its
// name, its single-sample shape, its element type and whether its leading
// dimension carries the runtime batch. It is the metadata callers need to
// drive the named-tensor Run path — including multi-input/multi-output
// graphs — without reaching into the IR.
type IODesc struct {
	// Name is the value name the Run input/output maps are keyed by.
	Name string
	// Shape is the value's shape at batch 1 (one sample). For batched
	// values the leading dimension scales with the runtime batch n, up to
	// the plan's MaxBatch.
	Shape []int
	// DType is the element type; every Orpheus tensor is "float32" today,
	// but the descriptor carries it so mixed-precision plans stay
	// representable.
	DType string
	// Batched reports whether one of Shape's dimensions scales with the
	// runtime batch under this plan: the caller may multiply it by any
	// 1 ≤ n ≤ MaxBatch. Always false on plans compiled at MaxBatch 1,
	// which accept exactly the planned shapes.
	Batched bool
}

// InputDescs describes the plan's graph inputs in declaration order.
func (p *Plan) InputDescs() []IODesc {
	descs := make([]IODesc, len(p.g.Inputs))
	for i, v := range p.g.Inputs {
		descs[i] = p.descFor(v)
	}
	return descs
}

// OutputDescs describes the plan's graph outputs in declaration order.
func (p *Plan) OutputDescs() []IODesc {
	descs := make([]IODesc, len(p.g.Outputs))
	for i, v := range p.g.Outputs {
		descs[i] = p.descFor(v)
	}
	return descs
}

// descFor builds the descriptor of one graph value, reporting its shape
// at batch 1 regardless of the plan's MaxBatch.
func (p *Plan) descFor(v *graph.Value) IODesc {
	m := p.metaFor(v)
	return IODesc{
		Name:    v.Name,
		Shape:   append([]int(nil), m.base...),
		DType:   "float32",
		Batched: m.dim >= 0,
	}
}
