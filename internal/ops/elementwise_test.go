package ops

import (
	"math"
	"testing"
	"testing/quick"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

func TestBatchNormAffine(t *testing.T) {
	// With mean=0, var=1, eps=0: y = scale*x + bias.
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 1, 2)
	scale := tensor.FromSlice([]float32{2, 3}, 2)
	bias := tensor.FromSlice([]float32{1, -1}, 2)
	mean := tensor.New(2)
	variance := tensor.FromSlice([]float32{1, 1}, 2)
	out := runKernel(t, "batchnorm.direct", "BatchNorm", graph.Attrs{"epsilon": 0.0}, x, scale, bias, mean, variance)
	want := []float32{3, 5, 8, 11}
	for i, v := range out.Data() {
		if d := float64(v - want[i]); math.Abs(d) > 1e-5 {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestBatchNormNormalises(t *testing.T) {
	// scale=1, bias=0: y = (x-mean)/sqrt(var+eps).
	x := tensor.FromSlice([]float32{10, 20}, 1, 1, 1, 2)
	one := tensor.Full(1, 1)
	zero := tensor.New(1)
	mean := tensor.FromSlice([]float32{15}, 1)
	variance := tensor.FromSlice([]float32{25}, 1)
	out := runKernel(t, "batchnorm.direct", "BatchNorm", graph.Attrs{"epsilon": 0.0}, x, one, zero, mean, variance)
	if math.Abs(float64(out.At(0, 0, 0, 0)+1)) > 1e-5 || math.Abs(float64(out.At(0, 0, 0, 1)-1)) > 1e-5 {
		t.Fatalf("normalised = %v", out.Data())
	}
}

func TestBatchNormShapeErrors(t *testing.T) {
	g := graph.New("bad")
	x, _ := g.Input("x", []int{1, 3, 2, 2})
	s, _ := g.Const("s", tensor.New(2)) // wrong channel count
	b, _ := g.Const("b", tensor.New(3))
	m, _ := g.Const("m", tensor.New(3))
	v, _ := g.Const("v", tensor.New(3))
	y, _ := g.Add("BatchNorm", "bn", nil, x, s, b, m, v)
	_ = g.MarkOutput(y)
	if err := g.Finalize(); err == nil {
		t.Fatal("BatchNorm channel mismatch not caught")
	}
}

func TestActivations(t *testing.T) {
	x := tensor.FromSlice([]float32{-3, -0.5, 0, 2, 7}, 5)
	relu := runKernel(t, "relu.direct", "Relu", nil, x)
	if !tensor.AllClose(relu, tensor.FromSlice([]float32{0, 0, 0, 2, 7}, 5), 0) {
		t.Fatalf("relu = %v", relu.Data())
	}
	relu6 := runKernel(t, "relu6.direct", "Relu6", nil, x)
	if !tensor.AllClose(relu6, tensor.FromSlice([]float32{0, 0, 0, 2, 6}, 5), 0) {
		t.Fatalf("relu6 = %v", relu6.Data())
	}
	leaky := runKernel(t, "leakyrelu.direct", "LeakyRelu", graph.Attrs{"alpha": 0.5}, x)
	if !tensor.AllClose(leaky, tensor.FromSlice([]float32{-1.5, -0.25, 0, 2, 7}, 5), 1e-6) {
		t.Fatalf("leaky = %v", leaky.Data())
	}
	sig := runKernel(t, "sigmoid.direct", "Sigmoid", nil, tensor.FromSlice([]float32{0}, 1))
	if math.Abs(float64(sig.At(0))-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", sig.At(0))
	}
}

func TestAddMulExact(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 2)
	b := tensor.FromSlice([]float32{10, 20}, 2)
	sum := runKernel(t, "add.direct", "Add", nil, a, b)
	if !tensor.AllClose(sum, tensor.FromSlice([]float32{11, 22}, 2), 0) {
		t.Fatalf("add = %v", sum.Data())
	}
	prod := runKernel(t, "mul.direct", "Mul", nil, a, b)
	if !tensor.AllClose(prod, tensor.FromSlice([]float32{10, 40}, 2), 0) {
		t.Fatalf("mul = %v", prod.Data())
	}
}

func TestAddScalarBroadcast(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3}, 3)
	s := tensor.Scalar(10)
	sum := runKernel(t, "add.direct", "Add", nil, a, s)
	if !tensor.AllClose(sum, tensor.FromSlice([]float32{11, 12, 13}, 3), 0) {
		t.Fatalf("scalar add = %v", sum.Data())
	}
}

func TestBinaryShapeMismatchRejected(t *testing.T) {
	g := graph.New("bad")
	a, _ := g.Input("a", []int{2, 3})
	b, _ := g.Input("b", []int{3, 2})
	y, _ := g.Add("Add", "add", nil, a, b)
	_ = g.MarkOutput(y)
	if err := g.Finalize(); err == nil {
		t.Fatal("incompatible Add shapes not caught")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed uint64, cb uint8) bool {
		c := int(cb%16) + 2
		x := tensor.Rand(tensor.NewRNG(seed), -5, 5, 2, c)
		out := runKernel(t, "softmax.direct", "Softmax", nil, x)
		for b := 0; b < 2; b++ {
			var sum float64
			for j := 0; j < c; j++ {
				v := out.At(b, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	x := tensor.FromSlice([]float32{1000, 1001}, 1, 2)
	out := runKernel(t, "softmax.direct", "Softmax", nil, x)
	if out.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
	if math.Abs(float64(out.At(0, 0)+out.At(0, 1))-1) > 1e-5 {
		t.Fatal("softmax does not sum to 1")
	}
}

func TestSoftmaxPreservesArgmax(t *testing.T) {
	x := tensor.Rand(tensor.NewRNG(77), -3, 3, 1, 10)
	out := runKernel(t, "softmax.direct", "Softmax", nil, x)
	_, wantArg := x.Max()
	_, gotArg := out.Max()
	if wantArg != gotArg {
		t.Fatal("softmax changed the argmax")
	}
}

func TestSoftmaxAxis(t *testing.T) {
	// Axis 0 over a [2,2]: columns must sum to 1.
	x := tensor.FromSlice([]float32{0, 10, 5, 0}, 2, 2)
	out := runKernel(t, "softmax.direct", "Softmax", graph.Attrs{"axis": 0}, x)
	for j := 0; j < 2; j++ {
		sum := float64(out.At(0, j) + out.At(1, j))
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("column %d sums to %v", j, sum)
		}
	}
}
