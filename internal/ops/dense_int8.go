package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/quant"
	"orpheus/internal/tensor"
)

// dense.gemm_int8 — quantized fully connected layer.
//
// The fp32 path computes Y[N,M] = X[N,K]·Wᵀ via a cached transposed
// weight; the int8 tier instead runs the transposed product Yᵀ[M,N] =
// W·Xᵀ with TransC storing straight into Y's row-major layout. That
// orientation puts W — the constant — on the A side, so its rows quantize
// per output feature directly (no transpose, and the per-row scales are
// exactly the per-feature scales the epilogue wants), and each sample
// becomes a B column quantized with its own parameters (ColQuant).
func init() {
	RegisterQuantized(NewOverwritingKernel("dense.gemm_int8", "Dense", supportsDenseInt8, runDenseGemmInt8))
}

func supportsDenseInt8(n *graph.Node) bool {
	if len(n.Inputs) < 2 || !n.Inputs[1].IsConst() {
		return false
	}
	ws := n.Inputs[1].Shape
	return len(ws) == 2 && ws[1] <= maxInt8K
}

func runDenseGemmInt8(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, w := in[0], in[1]
	batch, k := x.Shape()[0], x.Shape()[1]
	m := w.Shape()[0]
	wq := ctx.CacheInt8("dense.gemm_int8/pw", n)
	if wq == nil {
		data := make([]int8, m*k)
		scales := make([]float32, m)
		quant.QuantizeRowsInto(data, scales, w.Data(), m, k, quant.QMaxGemm)
		sums := make([]int32, m)
		gemm.RowSumsInt8(sums, data, m, k)
		wq = &Int8Weights{Packed: gemm.PrepackAInt8(data, m, k), Scales: scales, RowSums: sums}
		ctx.PutCacheInt8("dense.gemm_int8/pw", n, wq)
	}
	var bias []float32
	if len(in) == 3 {
		bias = in[2].Data()
	}
	src := &ctx.denseSrc8
	src.init(x.Data(), batch, k)
	ctx.GEMM8(gemm.CallInt8{
		PackedA: wq.Packed, B: src, C: out[0].Data(),
		M: m, N: batch, K: k,
		TransC: true, ColQuant: true,
		ScaleA: wq.Scales, RowSum: wq.RowSums,
		BScale: src.scales, BZero: src.zeros,
		BiasRow: bias,
		Act:     gemmActivation(n.Attrs.Str("activation", "")),
		Alpha:   float32(n.Attrs.Float("alpha", 0.01))})
	return nil
}

// densePackSrc8 presents the activation matrix X[N,K] as the virtual
// uint8 B of the transposed dense GEMM: B[p][j] = Q_j(X[j][p]), each
// sample column j quantized with its own parameters. init converts X to
// uint8 in one vectorised pass per sample, so the pack walk — which
// revisits a sample once per M-tile — is pure byte moves over one
// contiguous row.
type densePackSrc8 struct {
	k int

	// q8 is the quantized activation matrix; scales/zeros are the
	// per-sample parameters for the epilogue. Buffers reused across calls.
	q8     []byte
	scales []float32
	zeros  []int32
}

// init derives each sample's parameters and quantizes X into q8.
func (s *densePackSrc8) init(x []float32, samples, k int) {
	s.k = k
	s.scales = growF32(s.scales, samples)
	s.zeros = growI32(s.zeros, samples)
	s.q8 = growU8(s.q8, samples*k)
	for j := 0; j < samples; j++ {
		xj := x[j*k : (j+1)*k]
		lo, hi := gemm.MinMaxF32(xj)
		scale, zero := quantRange(lo, hi)
		s.scales[j] = scale
		s.zeros[j] = zero
		gemm.QuantizeU8(s.q8[j*k:], xj, 1/scale, float32(zero)+0.5)
	}
}

// PackPanel8 implements gemm.PackSrc8; img is always 0 (TransC calls are
// unbatched).
func (s *densePackSrc8) PackPanel8(dst []byte, img, pp, jj, kc, nc, nr int) {
	kcq4 := (kc + 3) &^ 3
	for j0 := 0; j0 < nc; j0 += nr {
		cols := min(nr, nc-j0)
		strip := dst[(j0/nr)*nr*kcq4:]
		for jl := 0; jl < cols; jl++ {
			col := jj + j0 + jl
			qr := s.q8[col*s.k+pp : col*s.k+pp+kc]
			base := jl * 4
			for p := 0; p < kc; p++ {
				strip[base+(p>>2)*nr*4+(p&3)] = qr[p]
			}
			for p := kc; p < kcq4; p++ {
				strip[base+(p>>2)*nr*4+(p&3)] = 0
			}
		}
		for jl := cols; jl < nr; jl++ {
			base := jl * 4
			for p := 0; p < kcq4; p++ {
				strip[base+(p>>2)*nr*4+(p&3)] = 0
			}
		}
	}
}
