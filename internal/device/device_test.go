package device

import (
	"testing"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

func convNode(t testing.TB, cin, cout, k, hw int) *graph.Node {
	t.Helper()
	r := tensor.NewRNG(1)
	g := graph.New("d")
	x, _ := g.Input("x", []int{1, cin, hw, hw})
	w, _ := g.Const("w", tensor.HeNormal(r, cout, cin, k, k))
	pad := k / 2
	_, err := g.Add("Conv", "c", graph.Attrs{"pads": []int{pad, pad, pad, pad}}, x, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	return g.Nodes[0]
}

func TestEstimatesPositiveAndMonotonic(t *testing.T) {
	d := HiKey970()
	small := convNode(t, 16, 16, 3, 14)
	big := convNode(t, 64, 64, 3, 56)
	for _, kernel := range []string{"conv.direct", "conv.im2col", "conv.spatialpack", "conv.winograd"} {
		ts := d.EstimateNode(small, kernel)
		tb := d.EstimateNode(big, kernel)
		if ts <= 0 || tb <= 0 {
			t.Fatalf("%s: non-positive estimate", kernel)
		}
		if tb <= ts {
			t.Errorf("%s: big layer (%v) not slower than small (%v)", kernel, tb, ts)
		}
	}
}

func TestDirectSlowerThanGemm(t *testing.T) {
	d := HiKey970()
	n := convNode(t, 64, 64, 3, 56)
	direct := d.EstimateNode(n, "conv.direct")
	gemm := d.EstimateNode(n, "conv.im2col")
	if direct < 4*gemm {
		t.Errorf("direct conv %v should be several times slower than GEMM %v", direct, gemm)
	}
}

func TestGemmSpatialPackCrossover(t *testing.T) {
	d := HiKey970()
	// Small K: spatial pack wins; large K: GEMM wins.
	small := convNode(t, 32, 32, 3, 32) // K = 288
	if d.EstimateNode(small, "conv.spatialpack") >= d.EstimateNode(small, "conv.im2col") {
		t.Error("spatial pack should win at K=288")
	}
	big := convNode(t, 256, 256, 3, 14) // K = 2304
	if d.EstimateNode(big, "conv.im2col") >= d.EstimateNode(big, "conv.spatialpack") {
		t.Error("im2col should win at K=2304")
	}
}

func TestPointwiseNearTie(t *testing.T) {
	d := HiKey970()
	pw := convNode(t, 512, 512, 1, 14)
	a := float64(d.EstimateNode(pw, "conv.im2col"))
	b := float64(d.EstimateNode(pw, "conv.spatialpack"))
	if a/b > 1.5 || b/a > 1.5 {
		t.Errorf("1x1 conv estimates should be close: im2col %v vs spatialpack %v", a, b)
	}
}

func TestEstimatePlanAddsDispatch(t *testing.T) {
	g, err := zoo.WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.ByName("orpheus")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := b.Prepare(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := HiKey970()
	base := d.EstimatePlan(plan, 0)
	withDispatch := d.EstimatePlan(plan, 10*time.Microsecond)
	wantExtra := time.Duration(len(plan.Steps())) * 10 * time.Microsecond
	if withDispatch-base != wantExtra {
		t.Errorf("dispatch accounting: got extra %v, want %v", withDispatch-base, wantExtra)
	}
	if base <= 0 {
		t.Error("plan estimate should be positive")
	}
}

func TestUnknownKernelUsesDefaultModel(t *testing.T) {
	d := HiKey970()
	n := convNode(t, 8, 8, 3, 8)
	if d.EstimateNode(n, "conv.someday") <= 0 {
		t.Error("unknown kernel should fall back to the default model")
	}
}
