package gemm

// Packing + micro-kernel GEMM. This is the "production" tier: panels of A
// and B are repacked into contiguous strips sized for the register-blocked
// micro-kernel, which computes one mr×nr block of C per inner iteration.
// The micro-kernel (and with it the mr×nr geometry) is selected at runtime
// by CPU-feature dispatch — see kernel.go; the pure-Go 4x8 kernel below is
// the portable fallback and the correctness reference for the SIMD ones.
//
// The general entry point is Call executed through Context.Run (or a Pool
// for the parallel tiers): it supports both accumulating (C += A·B) and
// overwriting (C = A·B) semantics, and either operand may be supplied
// prepacked (see prepack.go) so run-invariant weights are packed once per
// model instead of once per inference.

const (
	mcBlock = 128 // rows of A per packed panel
	kcBlock = 256 // shared dimension per panel
	ncBlock = 512 // cols of B per packed panel

	// MaxPanelK re-exports the k-blocking factor: no PackPanel/PackPanel8
	// request ever has kc > MaxPanelK, so pack sources may size per-panel
	// stack tables (e.g. hoisted row-decode results) with it.
	MaxPanelK = kcBlock
)

// Call describes one GEMM invocation: C = A·B when Store is set,
// C += A·B otherwise. A is M×K, B is K×N, C is M×N, all row-major dense.
//
// PackedA/PackedB, when non-nil, are panel buffers produced by
// PrepackA/PrepackB and replace the corresponding raw operand, which may
// then be nil. Store with K == 0 zeroes C (a BLAS beta=0 product with an
// empty shared dimension).
//
// Batch > 1 describes a strided batch of GEMMs sharing one A (or PackedA)
// operand: image i multiplies B[i*StrideB:] into C[i*StrideC:]. This is
// the shape of batched inference through a constant weight matrix — the
// packed weight panels are loaded once and reused across the whole batch,
// and a worker Pool spreads its macro-tiles across batch×tile. PackedB is
// unsupported for batched calls (each image would need its own panels).
//
// BPack, when non-nil, replaces the B operand entirely: the packed tier
// asks the source for each kc×nc panel instead of re-packing a
// materialised matrix, so B may be nil and StrideB is ignored — batched
// calls hand the image index to the source. Implicit-GEMM convolution
// packs panels straight from the NCHW input this way. BPack cannot be
// combined with PackedB.
//
// APack is the A-side mirror of BPack: a virtual A operand packed panel by
// panel, replacing A/PackedA. Unlike BPack it composes with PackedB and
// with batching — this is the shape of NHWC implicit-GEMM convolution,
// where the constant weight panels are the (prepacked, batch-shared) B
// operand and the per-image receptive fields are gathered as A. Batched
// APack calls share B/PackedB across images (StrideB is ignored) and hand
// the image index to the source.
//
// Ldc, when non-zero, is the row stride of C in elements (Ldc ≥ N): C is an
// M×N window of a wider row-major matrix. Grouped convolution writes each
// group's output-channel slice in place this way. Zero means dense (Ldc=N).
//
// BiasRow, BiasCol, Act and Alpha describe a fused epilogue applied once
// per output element as its micro-tile's final k-panel is stored (see
// epilogue.go): BiasRow[i] is added to every element of row i (convolution
// output channels), BiasCol[j] to every element of column j (dense output
// features), then Act runs, replacing the separate post-GEMM bias and
// activation sweeps.
type Call struct {
	A, B, C []float32
	M, N, K int
	PackedA []float32
	PackedB []float32
	Store   bool

	Ldc int // row stride of C in elements; 0 means N (dense)

	Batch            int // number of strided images; 0 and 1 mean a single GEMM
	StrideB, StrideC int // element offsets between consecutive images

	BPack PackSrc  // virtual B operand; replaces B/PackedB when non-nil
	APack PackSrcA // virtual A operand; replaces A/PackedA when non-nil

	BiasRow []float32  // optional per-row epilogue bias, len ≥ M
	BiasCol []float32  // optional per-column epilogue bias, len ≥ N
	Act     Activation // epilogue activation, applied after the bias add
	Alpha   float32    // LeakyReLU slope

	img int // image index handed to BPack when Run splits a batch itself
}

// images returns the batch count, treating the zero value as 1.
func (c *Call) images() int {
	if c.Batch < 2 {
		return 1
	}
	return c.Batch
}

// ldc returns the effective row stride of C.
func (c *Call) ldc() int {
	if c.Ldc != 0 {
		return c.Ldc
	}
	return c.N
}

// validate panics if the described buffers cannot hold the matrices.
// Packed-operand sizes are checked against the active kernel's geometry,
// which must match the geometry the panels were packed under.
func (c *Call) validate() {
	if c.M < 0 || c.N < 0 || c.K < 0 {
		panicf("gemm: negative dimension m=%d n=%d k=%d", c.M, c.N, c.K)
	}
	if c.M == 0 || c.N == 0 {
		return
	}
	images := c.images()
	if c.BPack != nil && c.PackedB != nil {
		panicf("gemm: BPack cannot be combined with PackedB")
	}
	if c.APack != nil && c.BPack != nil {
		panicf("gemm: APack cannot be combined with BPack")
	}
	if c.APack != nil && (c.A != nil || c.PackedA != nil) {
		panicf("gemm: APack cannot be combined with A/PackedA")
	}
	ldc := c.ldc()
	if ldc < c.N {
		panicf("gemm: Ldc %d narrower than n=%d", ldc, c.N)
	}
	if c.BiasRow != nil && len(c.BiasRow) < c.M {
		panicf("gemm: BiasRow %d too short for m=%d", len(c.BiasRow), c.M)
	}
	if c.BiasCol != nil && len(c.BiasCol) < c.N {
		panicf("gemm: BiasCol %d too short for n=%d", len(c.BiasCol), c.N)
	}
	rowsC := (c.M-1)*ldc + c.N // extent of one image's C window
	if images > 1 {
		// APack batches share the B operand (constant weights) across
		// images, so PackedB is allowed and StrideB is ignored there.
		if c.PackedB != nil && c.APack == nil {
			panicf("gemm: batched call cannot use PackedB")
		}
		// Image windows must not overlap: tiles of different images are
		// scheduled concurrently and assume disjoint C regions.
		if c.StrideC < rowsC {
			panicf("gemm: batch C stride %d overlaps %dx%d images", c.StrideC, c.M, c.N)
		}
		if c.BPack == nil && c.APack == nil && c.K > 0 && c.StrideB < c.K*c.N {
			panicf("gemm: batch B stride %d overlaps %dx%d images", c.StrideB, c.K, c.N)
		}
	}
	lastB := (images - 1) * c.StrideB
	if c.APack != nil {
		lastB = 0
	}
	lastC := (images - 1) * c.StrideC
	if len(c.C) < lastC+rowsC {
		panicf("gemm: C buffer %d too small for %dx%d × %d images", len(c.C), c.M, c.N, images)
	}
	if c.K == 0 {
		return
	}
	if c.APack == nil {
		if c.PackedA != nil {
			if len(c.PackedA) < PackedASize(c.M, c.K) {
				panicf("gemm: PackedA %d too small for m=%d k=%d", len(c.PackedA), c.M, c.K)
			}
		} else if len(c.A) < c.M*c.K {
			panicf("gemm: A buffer %d too small for %dx%d", len(c.A), c.M, c.K)
		}
	}
	if c.BPack != nil {
		return
	}
	if c.PackedB != nil {
		if len(c.PackedB) < PackedBSize(c.K, c.N) {
			panicf("gemm: PackedB %d too small for k=%d n=%d", len(c.PackedB), c.K, c.N)
		}
	} else if len(c.B) < lastB+c.K*c.N {
		panicf("gemm: B buffer %d too small for %dx%d × %d images", len(c.B), c.K, c.N, images)
	}
}

// Context holds the packing scratch buffers for packed GEMM so repeated
// calls (the common case during inference) do not reallocate. The zero
// value is ready to use. A Context is not safe for concurrent use.
type Context struct {
	packA []float32
	packB []float32
	// tail is the edge-tile staging buffer. It lives here rather than on
	// the macro-kernel's stack because the micro-kernel is dispatched
	// through a function pointer, which would force a per-call heap
	// escape of a stack buffer — and the steady-state Run path must not
	// allocate.
	tail [maxMR * maxNR]float32

	// Int8-tier scratch (int8.go): quantized panel buffers and the int32
	// accumulator tile. Grown lazily so fp32-only processes never pay for
	// them.
	packA8 []int8
	packB8 []byte
	acc32  []int32
}

// Run executes the call single-threaded. Hot inference paths should hold a
// long-lived Context so the packing buffers are reused across calls.
// Batched calls run image by image over the shared A operand.
func (ctx *Context) Run(c Call) {
	c.validate()
	if c.M == 0 || c.N == 0 {
		return
	}
	if c.K == 0 {
		if c.Store {
			for img := 0; img < c.images(); img++ {
				zeroCWindow(c.C[img*c.StrideC:], c.M, c.N, c.ldc())
				if c.hasEpilogue() {
					c.applyEpilogueAll(c.C[img*c.StrideC:])
				}
			}
		}
		return
	}
	kern := activeKernel()
	if c.images() > 1 {
		sub := c
		sub.Batch, sub.StrideB, sub.StrideC = 0, 0, 0
		for img := 0; img < c.images(); img++ {
			if c.BPack != nil || c.APack != nil {
				// The pack source reads its own image; B panels are shared.
				sub.img = img
			} else {
				sub.B = c.B[img*c.StrideB:]
			}
			sub.C = c.C[img*c.StrideC:]
			ctx.run(kern, sub)
		}
		return
	}
	ctx.run(kern, c)
}

// run executes one validated, unbatched call with the given kernel.
// (c.img selects the image a BPack source reads when the caller split a
// batch.)
func (ctx *Context) run(kern *kernel, c Call) {
	pm := roundUp(c.M, kern.mr)
	pn := roundUp(c.N, kern.nr)
	ldc := c.ldc()
	for pp := 0; pp < c.K; pp += kcBlock {
		kc := min(kcBlock, c.K-pp)
		st := c.Store && pp == 0
		// The epilogue fires exactly once per output element: with the
		// final k-panel's tile store, while the tile is cache-hot.
		var epi *Call
		if pp+kc == c.K && c.hasEpilogue() {
			epi = &c
		}
		for jj := 0; jj < c.N; jj += kern.nc {
			nc := min(kern.nc, c.N-jj)
			var pb []float32
			switch {
			case c.BPack != nil:
				ctx.growB()
				c.BPack.PackPanel(ctx.packB, c.img, pp, jj, kc, nc, kern.nr)
				pb = ctx.packB
			case c.PackedB != nil:
				pb = c.PackedB[pn*pp+jj*kc:]
			default:
				ctx.growB()
				packB(ctx.packB, c.B, pp, jj, kc, nc, c.N, kern.nr)
				pb = ctx.packB
			}
			for ii := 0; ii < c.M; ii += kern.mc {
				mc := min(kern.mc, c.M-ii)
				var pa []float32
				switch {
				case c.APack != nil:
					ctx.growA()
					c.APack.PackPanelA(ctx.packA, c.img, ii, pp, mc, kc, kern.mr)
					pa = ctx.packA
				case c.PackedA != nil:
					pa = c.PackedA[pm*pp+ii*kc:]
				default:
					ctx.growA()
					packA(ctx.packA, c.A, ii, pp, mc, kc, c.K, kern.mr)
					pa = ctx.packA
				}
				ctx.macroKernel(kern, pa, pb, c.C, ii, jj, mc, nc, kc, ldc, st)
				if epi != nil {
					epi.applyEpilogueTile(c.C, ii, jj, mc, nc, ldc)
				}
			}
		}
	}
}

// Packed computes C += A·B using panel packing and the active micro-kernel.
func (ctx *Context) Packed(a, b, c []float32, m, n, k int) {
	ctx.Run(Call{A: a, B: b, C: c, M: m, N: n, K: k})
}

// PackedStore computes C = A·B, overwriting C. Kernels that fully produce
// their output this way spare the runtime an arena zero-fill.
func (ctx *Context) PackedStore(a, b, c []float32, m, n, k int) {
	ctx.Run(Call{A: a, B: b, C: c, M: m, N: n, K: k, Store: true})
}

// zeroCWindow clears an m×n window with row stride ldc.
func zeroCWindow(c []float32, m, n, ldc int) {
	if ldc == n {
		c = c[:m*n]
		for i := range c {
			c[i] = 0
		}
		return
	}
	for r := 0; r < m; r++ {
		row := c[r*ldc : r*ldc+n]
		for i := range row {
			row[i] = 0
		}
	}
}

func (ctx *Context) growA() {
	// Packed panels are padded up to full micro-tiles; scratch is sized for
	// the widest registered kernel so it never depends on dispatch.
	const an = (mcBlock + maxMR) * kcBlock
	if cap(ctx.packA) < an {
		ctx.packA = make([]float32, an)
	}
	ctx.packA = ctx.packA[:cap(ctx.packA)]
}

func (ctx *Context) growB() {
	const bn = (ncBlock + maxNR) * kcBlock
	if cap(ctx.packB) < bn {
		ctx.packB = make([]float32, bn)
	}
	ctx.packB = ctx.packB[:cap(ctx.packB)]
}

// packA copies an mc×kc panel of A (row ii, col pp) into strips of mr rows,
// stored column-major within each strip so the micro-kernel reads
// contiguously. Rows beyond mc are zero-padded.
func packA(dst, a []float32, ii, pp, mc, kc, lda, mr int) {
	di := 0
	for i := 0; i < mc; i += mr {
		rows := min(mr, mc-i)
		for p := 0; p < kc; p++ {
			for r := 0; r < rows; r++ {
				dst[di] = a[(ii+i+r)*lda+pp+p]
				di++
			}
			for r := rows; r < mr; r++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// packB copies a kc×nc panel of B (row pp, col jj) into strips of nr
// columns, row-major within each strip. Columns beyond nc are zero-padded.
func packB(dst, b []float32, pp, jj, kc, nc, ldb, nr int) {
	di := 0
	for j := 0; j < nc; j += nr {
		cols := min(nr, nc-j)
		for p := 0; p < kc; p++ {
			base := (pp+p)*ldb + jj + j
			for cc := 0; cc < cols; cc++ {
				dst[di] = b[base+cc]
				di++
			}
			for cc := cols; cc < nr; cc++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// macroKernel multiplies the packed panels into C with kern's micro-kernel.
// store selects overwrite (C = panel product) over accumulate for this
// panel's contribution. The receiver supplies the edge-tile staging buffer.
// Any fused epilogue is applied by the caller after the macro-tile's final
// k-panel (see run/runTile), so it runs exactly once per output element.
func (ctx *Context) macroKernel(kern *kernel, pa, pb, c []float32, ii, jj, mc, nc, kc, ldc int, store bool) {
	mr, nr := kern.mr, kern.nr
	for i := 0; i < mc; i += mr {
		rows := min(mr, mc-i)
		aStrip := pa[(i/mr)*kc*mr:]
		for j := 0; j < nc; j += nr {
			cols := min(nr, nc-j)
			bStrip := pb[(j/nr)*kc*nr:]
			if rows == mr && cols == nr {
				kern.micro(aStrip, bStrip, c[(ii+i)*ldc+jj+j:], kc, ldc, store)
				continue
			}
			// Edge tile: accumulate into a temporary then merge the live part.
			t := ctx.tail[:mr*nr]
			for x := range t {
				t[x] = 0
			}
			kern.micro(aStrip, bStrip, t, kc, nr, true)
			for r := 0; r < rows; r++ {
				cRow := c[(ii+i+r)*ldc+jj+j:]
				if store {
					for cc := 0; cc < cols; cc++ {
						cRow[cc] = t[r*nr+cc]
					}
				} else {
					for cc := 0; cc < cols; cc++ {
						cRow[cc] += t[r*nr+cc]
					}
				}
			}
		}
	}
}

// microKernelGo is the portable 4x8 micro-kernel: C[r][cc] (+)= sum_p
// A[p][r]*B[p][cc] with the mr×nr block held in scalar registers. pa is
// packed as kc groups of 4 values; pb as kc groups of 8 values. ldc is the
// row stride of c; store overwrites C instead of accumulating.
func microKernelGo(pa, pb, c []float32, kc, ldc int, store bool) {
	const mr, nr = 4, 8
	var (
		c00, c01, c02, c03, c04, c05, c06, c07 float32
		c10, c11, c12, c13, c14, c15, c16, c17 float32
		c20, c21, c22, c23, c24, c25, c26, c27 float32
		c30, c31, c32, c33, c34, c35, c36, c37 float32
	)
	pa = pa[:kc*mr]
	pb = pb[:kc*nr]
	for p := 0; p < kc; p++ {
		a0 := pa[p*mr+0]
		a1 := pa[p*mr+1]
		a2 := pa[p*mr+2]
		a3 := pa[p*mr+3]
		b := pb[p*nr : p*nr+nr : p*nr+nr]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		b4, b5, b6, b7 := b[4], b[5], b[6], b[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	r0 := c[0*ldc : 0*ldc+nr]
	r1 := c[1*ldc : 1*ldc+nr]
	r2 := c[2*ldc : 2*ldc+nr]
	r3 := c[3*ldc : 3*ldc+nr]
	if store {
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
		r0[4], r0[5], r0[6], r0[7] = c04, c05, c06, c07
		r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
		r1[4], r1[5], r1[6], r1[7] = c14, c15, c16, c17
		r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
		r2[4], r2[5], r2[6], r2[7] = c24, c25, c26, c27
		r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
		r3[4], r3[5], r3[6], r3[7] = c34, c35, c36, c37
		return
	}
	r0[0] += c00
	r0[1] += c01
	r0[2] += c02
	r0[3] += c03
	r0[4] += c04
	r0[5] += c05
	r0[6] += c06
	r0[7] += c07
	r1[0] += c10
	r1[1] += c11
	r1[2] += c12
	r1[3] += c13
	r1[4] += c14
	r1[5] += c15
	r1[6] += c16
	r1[7] += c17
	r2[0] += c20
	r2[1] += c21
	r2[2] += c22
	r2[3] += c23
	r2[4] += c24
	r2[5] += c25
	r2[6] += c26
	r2[7] += c27
	r3[0] += c30
	r3[1] += c31
	r3[2] += c32
	r3[3] += c33
	r3[4] += c34
	r3[5] += c35
	r3[6] += c36
	r3[7] += c37
}

// Packed computes C += A·B with a throwaway Context. Prefer a long-lived
// Context in hot paths.
func Packed(a, b, c []float32, m, n, k int) {
	var ctx Context
	ctx.Packed(a, b, c, m, n, k)
}
