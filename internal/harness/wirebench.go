package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/serve"
	"orpheus/internal/wire"
)

// E4 "wire": end-to-end /predict latency of the two request body
// formats — JSON against the binary tensor wire format — through a real
// HTTP server hosting a nearly-free model with a wrn-40-2-sized input
// (3072 floats). With the kernels this cheap the serving plane dominates,
// so the measured delta is the wire format's own: body transport, parse,
// staging and response encode.
func init() {
	register(&Experiment{ID: "wire", Title: "E4: serving wire formats — JSON vs binary /predict latency", Run: runWire})
}

// wireWarmup and wireRequests size the latency sample per format.
const (
	wireWarmup   = 25
	wireRequests = 200
)

// wireShape is the benchmark input: the wrn-40-2 CIFAR sample.
var wireShape = []int{1, 3, 32, 32}

func runWire(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "wire", Title: "E4: JSON vs binary tensor /predict, end to end"}
	rep.Header = []string{"format", "body bytes", "median us", "p95 us", "req/s", "vs json"}

	g := graph.New("wirebench")
	x, err := g.Input("input", wireShape)
	if err != nil {
		return nil, err
	}
	gap, err := g.Add("GlobalAveragePool", "gap", nil, x)
	if err != nil {
		return nil, err
	}
	fl, err := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, gap)
	if err != nil {
		return nil, err
	}
	sm, err := g.Add("Softmax", "prob", nil, fl)
	if err != nil {
		return nil, err
	}
	if err := g.MarkOutput(sm); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}

	s := serve.New()
	if err := s.AddModel("wire", g, "orpheus", cfg.Workers); err != nil {
		return nil, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	input := make([]float32, 3*32*32)
	for i := range input {
		input[i] = float32(i%255) / 255
	}

	jsonShot := func() (int, error) {
		body, err := json.Marshal(map[string]any{"input": input})
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(ts.URL+"/predict/wire", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var out struct {
			Output []float32 `json:"output"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK || len(out.Output) != 3 {
			return 0, fmt.Errorf("json predict: status %d, %d outputs", resp.StatusCode, len(out.Output))
		}
		return len(body), nil
	}
	wireBuf := make([]byte, 0, wire.EncodedSize(wireShape))
	binShot := func() (int, error) {
		msg := wire.AppendTensor(wireBuf[:0], input, wireShape)
		req, err := http.NewRequest("POST", ts.URL+"/models/wire/predict", bytes.NewReader(msg))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", serve.ContentTypeTensor)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, err
		}
		out, err := wire.DecodeBytes(raw, 0)
		if err != nil || resp.StatusCode != http.StatusOK || out.Size() != 3 {
			return 0, fmt.Errorf("binary predict: status %d, decode %v", resp.StatusCode, err)
		}
		return len(msg), nil
	}

	type formatCase struct {
		name string
		shot func() (int, error)
	}
	formats := []formatCase{{"json", jsonShot}, {"binary", binShot}}
	if cfg.Wire {
		formats = formats[1:]
		rep.AddNote("-wire: binary format only (JSON baseline skipped)")
	}

	medians := map[string]float64{}
	for _, fc := range formats {
		var bodyBytes int
		for i := 0; i < wireWarmup; i++ {
			if bodyBytes, err = fc.shot(); err != nil {
				return nil, err
			}
		}
		lat := make([]float64, wireRequests)
		for i := range lat {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := fc.shot(); err != nil {
				return nil, err
			}
			lat[i] = float64(time.Since(start)) / 1e3 // µs
		}
		sort.Float64s(lat)
		median := lat[len(lat)/2]
		p95 := lat[len(lat)*95/100]
		medians[fc.name] = median
		vsJSON := "-"
		if j, ok := medians["json"]; ok && fc.name != "json" {
			vsJSON = fmt.Sprintf("%.2fx", j/median)
		} else if fc.name == "json" {
			vsJSON = "1.00x"
		}
		rep.AddRow(fc.name, fmt.Sprint(bodyBytes),
			fmt.Sprintf("%.1f", median), fmt.Sprintf("%.1f", p95),
			fmt.Sprintf("%.0f", 1e6/median), vsJSON)
	}
	rep.AddNote("model: GAP→Flatten→Softmax on a 1x3x32x32 input — serving-plane cost, not kernel cost")
	rep.AddNote("%d warm-up + %d timed requests per format over one live HTTP connection", wireWarmup, wireRequests)
	return rep, nil
}
