package backend

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// AutoTunePolicy selects kernels empirically: for each distinct
// (op, attributes, input-shapes) signature it times every supporting
// kernel on synthetic data and caches the fastest. This is the
// profile-guided flavour of the paper's "multiple implementations selected
// at runtime" and the subject of ablation A5.
//
// The policy is batch-aware (runtime.BatchPolicy): when a session of a
// MaxBatch plan binds a smaller batch n, SelectBatch re-tunes at the
// batch-n shapes, so a kernel that wins at the planned batch does not get
// blindly reused where a different one is faster. With AllowInt8 set the
// quantized kernels join the candidate pool and the tuner arbitrates
// fp32 vs int8 per (layer, batch) on measured time.
type AutoTunePolicy struct {
	// Repeats per kernel measurement (after one warm-up); default 3.
	Repeats int
	// AllowInt8 admits quantized kernels as candidates; the winner is
	// still decided purely on measured time. Leave false for bit-accurate
	// fp32 plans. Setting it also makes the policy an Int8Arbiter, so
	// Compile(Options{Int8: true}) leaves the tuner's per-layer decision
	// in charge instead of forcing int8 everywhere.
	AllowInt8 bool
	// Trace receives one line per tuning decision when non-nil.
	Trace func(sig, winner string, times map[string]time.Duration)

	// mu guards cache: Select runs at compile time, but SelectBatch is
	// called from session binding, potentially from many goroutines.
	mu sync.Mutex
	// cache maps signature → kernel name.
	cache map[string]string
}

// NewAutoTunePolicy returns an empty-cache tuner.
func NewAutoTunePolicy() *AutoTunePolicy {
	return &AutoTunePolicy{cache: make(map[string]string)}
}

// Name implements runtime.Policy.
func (p *AutoTunePolicy) Name() string { return "autotune" }

// ArbitratesInt8 implements runtime.Int8Arbiter: with AllowInt8 the tuner
// decides fp32 vs int8 per layer itself.
func (p *AutoTunePolicy) ArbitratesInt8() bool { return p.AllowInt8 }

// Select implements runtime.Policy, tuning at the node's planned shapes.
func (p *AutoTunePolicy) Select(n *graph.Node) (ops.Kernel, error) {
	in := make([][]int, len(n.Inputs))
	for i, v := range n.Inputs {
		in[i] = v.Shape
	}
	out := make([][]int, len(n.Outputs))
	for i, v := range n.Outputs {
		out[i] = v.Shape
	}
	return p.selectAt(n, in, out)
}

// SelectBatch implements runtime.BatchPolicy, tuning at the batch-n
// shapes a session is about to bind.
func (p *AutoTunePolicy) SelectBatch(n *graph.Node, batch int, inShapes, outShapes [][]int) (ops.Kernel, error) {
	return p.selectAt(n, inShapes, outShapes)
}

func (p *AutoTunePolicy) selectAt(n *graph.Node, inShapes, outShapes [][]int) (ops.Kernel, error) {
	sig := signatureAt(n, inShapes)
	p.mu.Lock()
	name, ok := p.cache[sig]
	p.mu.Unlock()
	if ok {
		return ops.ByName(name), nil
	}
	winner, times, err := p.tune(n, inShapes, outShapes, sig)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.cache[sig] = winner.Name()
	p.mu.Unlock()
	if p.Trace != nil {
		p.Trace(sig, winner.Name(), times)
	}
	return winner, nil
}

// tune benchmarks every supporting kernel on synthetic tensors of the
// given shapes (constants use their real tensors — quantized candidates
// need the actual weights).
func (p *AutoTunePolicy) tune(n *graph.Node, inShapes, outShapes [][]int, sig string) (ops.Kernel, map[string]time.Duration, error) {
	candidates := supportingKernels(n, p.AllowInt8)
	if len(candidates) == 0 {
		return nil, nil, fmt.Errorf("backend: no kernel supports node %q (%s)", n.Name, n.Op)
	}
	if len(candidates) == 1 {
		return candidates[0], nil, nil
	}
	reps := p.Repeats
	if reps <= 0 {
		reps = 3
	}
	in := make([]*tensor.Tensor, len(n.Inputs))
	r := tensor.NewRNG(tensor.SeedFromString(sig))
	for i, v := range n.Inputs {
		if v.IsConst() {
			in[i] = v.Const
		} else {
			in[i] = tensor.Rand(r, -1, 1, inShapes[i]...)
		}
	}
	out := make([]*tensor.Tensor, len(n.Outputs))
	for i := range n.Outputs {
		out[i] = tensor.New(outShapes[i]...)
	}
	times := make(map[string]time.Duration, len(candidates))
	var best ops.Kernel
	var bestTime time.Duration
	for _, k := range candidates {
		ctx := ops.NewCtx(1)
		if err := k.Run(ctx, n, in, out); err != nil { // warm-up + correctness gate
			continue
		}
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			if err := k.Run(ctx, n, in, out); err != nil {
				break
			}
		}
		elapsed := time.Since(start) / time.Duration(reps)
		times[k.Name()] = elapsed
		if best == nil || elapsed < bestTime {
			best, bestTime = k, elapsed
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("backend: every candidate kernel failed for node %q", n.Name)
	}
	return best, times, nil
}

// CacheSize returns the number of tuned signatures so far.
func (p *AutoTunePolicy) CacheSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}

// supportingKernels lists the registered kernels able to run n, in stable
// name order. Quantized kernels are candidates only when the caller
// opted into int8 — they are numerically different implementations, not
// interchangeable fp32 ones.
func supportingKernels(n *graph.Node, allowInt8 bool) []ops.Kernel {
	var out []ops.Kernel
	for _, k := range ops.ForOp(n.Op) {
		if !allowInt8 && ops.IsQuantized(k) {
			continue
		}
		if k.Supports(n) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// nodeSignature builds the tuning cache key at the node's planned shapes:
// op, attributes and input shapes (names excluded so identical layers
// share one entry).
func nodeSignature(n *graph.Node) string {
	in := make([][]int, len(n.Inputs))
	for i, v := range n.Inputs {
		in[i] = v.Shape
	}
	return signatureAt(n, in)
}

// signatureAt is nodeSignature with explicit input shapes, for batch-aware
// tuning keys.
func signatureAt(n *graph.Node, inShapes [][]int) string {
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sig := n.Op
	for _, k := range keys {
		sig += fmt.Sprintf("|%s=%v", k, n.Attrs[k])
	}
	for _, shape := range inShapes {
		sig += "|" + tensor.ShapeString(shape)
	}
	return sig
}

// interface checks
var _ runtime.Policy = (*AutoTunePolicy)(nil)
var _ runtime.BatchPolicy = (*AutoTunePolicy)(nil)
var _ runtime.Int8Arbiter = (*AutoTunePolicy)(nil)
var _ runtime.Policy = (*PreferencePolicy)(nil)
var _ runtime.Policy = (*HeuristicPolicy)(nil)
