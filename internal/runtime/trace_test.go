package runtime

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"orpheus/internal/tensor"
)

func TestWriteTrace(t *testing.T) {
	g := smallCNN(t)
	plan, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(8), -1, 1, 1, 3, 8, 8)
	_, timings, err := sess.RunProfiled(context.Background(), map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, timings); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(timings) {
		t.Fatalf("events = %d, want %d", len(doc.TraceEvents), len(timings))
	}
	// Events must be laid end to end: ts monotonically non-decreasing.
	prevEnd := -1.0
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" || e.TsMicros < prevEnd-1e-9 {
			t.Fatalf("event %q overlaps previous: ts=%v prevEnd=%v", e.Name, e.TsMicros, prevEnd)
		}
		prevEnd = e.TsMicros + e.DurMicro
	}
	// Conv events carry kernel and flops args.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Category == "Conv" {
			found = true
			if e.Args["kernel"] == "" || e.Args["mflops"] == nil {
				t.Fatalf("conv event args incomplete: %v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("no Conv event in trace")
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatal("empty trace missing traceEvents key")
	}
}
