//go:build !noasm

#include "textflag.h"

// func microKernel8x8AVX2(pa, pb, c *float32, kc, ldc int64, store bool)
//
// One 8x8 fp32 micro-tile of C in eight YMM accumulators (Y0..Y7, one row
// each). The k-loop is unrolled 2x: each iteration loads two consecutive
// B strip rows (Y9, Y10), prefetches the A/B strips 512 B — eight
// unrolled iterations, sixteen k-steps — ahead, and issues sixteen
// VBROADCASTSS/VFMADD231PS pairs — the
// broadcasts all target Y8 and rely on register renaming. pa and pb
// advance 16 floats per iteration (two packed groups each); an odd kc
// runs one single-step tail.
TEXT ·microKernel8x8AVX2(SB), NOSPLIT, $0-41
	MOVQ pa+0(FP), SI
	MOVQ pb+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ kc+24(FP), CX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8              // C row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	MOVQ CX, BX              // BX = kc; the low bit selects the tail step
	SHRQ $1, CX              // CX = pairs of k steps
	JZ   ktail

kloop2:
	VMOVUPS (DX), Y9         // B strip row, step 0
	VMOVUPS 32(DX), Y10      // B strip row, step 1
	PREFETCHT0 512(SI)       // next A strip pairs
	PREFETCHT0 512(DX)       // next B strip pairs
	VBROADCASTSS 0(SI), Y8
	VFMADD231PS Y9, Y8, Y0
	VBROADCASTSS 4(SI), Y8
	VFMADD231PS Y9, Y8, Y1
	VBROADCASTSS 8(SI), Y8
	VFMADD231PS Y9, Y8, Y2
	VBROADCASTSS 12(SI), Y8
	VFMADD231PS Y9, Y8, Y3
	VBROADCASTSS 16(SI), Y8
	VFMADD231PS Y9, Y8, Y4
	VBROADCASTSS 20(SI), Y8
	VFMADD231PS Y9, Y8, Y5
	VBROADCASTSS 24(SI), Y8
	VFMADD231PS Y9, Y8, Y6
	VBROADCASTSS 28(SI), Y8
	VFMADD231PS Y9, Y8, Y7
	VBROADCASTSS 32(SI), Y8
	VFMADD231PS Y10, Y8, Y0
	VBROADCASTSS 36(SI), Y8
	VFMADD231PS Y10, Y8, Y1
	VBROADCASTSS 40(SI), Y8
	VFMADD231PS Y10, Y8, Y2
	VBROADCASTSS 44(SI), Y8
	VFMADD231PS Y10, Y8, Y3
	VBROADCASTSS 48(SI), Y8
	VFMADD231PS Y10, Y8, Y4
	VBROADCASTSS 52(SI), Y8
	VFMADD231PS Y10, Y8, Y5
	VBROADCASTSS 56(SI), Y8
	VFMADD231PS Y10, Y8, Y6
	VBROADCASTSS 60(SI), Y8
	VFMADD231PS Y10, Y8, Y7
	ADDQ $64, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  kloop2

ktail:
	ANDQ $1, BX
	JZ   kdone
	VMOVUPS (DX), Y9         // odd kc: one last single step
	VBROADCASTSS 0(SI), Y8
	VFMADD231PS Y9, Y8, Y0
	VBROADCASTSS 4(SI), Y8
	VFMADD231PS Y9, Y8, Y1
	VBROADCASTSS 8(SI), Y8
	VFMADD231PS Y9, Y8, Y2
	VBROADCASTSS 12(SI), Y8
	VFMADD231PS Y9, Y8, Y3
	VBROADCASTSS 16(SI), Y8
	VFMADD231PS Y9, Y8, Y4
	VBROADCASTSS 20(SI), Y8
	VFMADD231PS Y9, Y8, Y5
	VBROADCASTSS 24(SI), Y8
	VFMADD231PS Y9, Y8, Y6
	VBROADCASTSS 28(SI), Y8
	VFMADD231PS Y9, Y8, Y7

kdone:
	MOVBLZX store+40(FP), AX
	TESTL AX, AX
	JNZ   overwrite

	// Accumulate: C row += accumulator, row by row.
	VADDPS (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y3, Y3
	VMOVUPS Y3, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y4, Y4
	VMOVUPS Y4, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y5, Y5
	VMOVUPS Y5, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y6, Y6
	VMOVUPS Y6, (DI)
	ADDQ R8, DI
	VADDPS (DI), Y7, Y7
	VMOVUPS Y7, (DI)
	VZEROUPPER
	RET

overwrite:
	VMOVUPS Y0, (DI)
	ADDQ R8, DI
	VMOVUPS Y1, (DI)
	ADDQ R8, DI
	VMOVUPS Y2, (DI)
	ADDQ R8, DI
	VMOVUPS Y3, (DI)
	ADDQ R8, DI
	VMOVUPS Y4, (DI)
	ADDQ R8, DI
	VMOVUPS Y5, (DI)
	ADDQ R8, DI
	VMOVUPS Y6, (DI)
	ADDQ R8, DI
	VMOVUPS Y7, (DI)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
