package orpheus

import (
	"context"
	"math"
	"strings"
	"testing"
)

// argmax returns the index of the largest value in v.
func argmax(v []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// relErr is ||a-b|| / ||b|| over the flattened outputs.
func relErr(a, b []float32) float64 {
	var num, den float64
	for i := range a {
		d := float64(a[i] - b[i])
		num += d * d
		den += float64(b[i]) * float64(b[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// TestInt8MatchesFP32OnZoo runs every zoo model under WithInt8 against
// the fp32 plan at every batch size 1 ≤ n ≤ MaxBatch and requires (a)
// top-1 agreement on every sample — the harness acceptance bar is ≥ 99%
// — and (b) a bounded relative error on the raw outputs. The error
// budget is loose by design: the zoo's random weights produce
// near-uniform softmax outputs whose relative error amplifies absolute
// logit noise, and inception-v3's ~94 quantized layers accumulate the
// most of it.
func TestInt8MatchesFP32OnZoo(t *testing.T) {
	const maxBatch = 2
	for _, model := range ZooModels() {
		model := model
		t.Run(model, func(t *testing.T) {
			if testing.Short() && model != "wrn-40-2" && model != "mobilenet-v1" {
				t.Skip("short mode: big models skipped")
			}
			m, err := BuildZooModel(model)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := m.Compile(WithMaxBatch(maxBatch))
			if err != nil {
				t.Fatal(err)
			}
			defer fp.Close()
			q, err := m.Compile(WithMaxBatch(maxBatch), WithInt8())
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()

			// The plan must actually select quantized kernels somewhere —
			// a silent fp32 fallback would pass any tolerance check.
			quantized := false
			for _, line := range q.PlanSummary() {
				if strings.Contains(line, "_int8") {
					quantized = true
					break
				}
			}
			if !quantized {
				t.Fatal("WithInt8 plan selected no quantized kernels")
			}

			for n := 1; n <= maxBatch; n++ {
				inputs := make([]*Tensor, n)
				for i := range inputs {
					inputs[i] = RandomTensor(uint64(7*n+i), m.InputShape()...)
				}
				fpOut, err := fp.PredictBatch(context.Background(), inputs)
				if err != nil {
					t.Fatal(err)
				}
				qOut, err := q.PredictBatch(context.Background(), inputs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range inputs {
					fd, qd := fpOut[i].Data(), qOut[i].Data()
					if af, aq := argmax(fd), argmax(qd); af != aq {
						t.Errorf("n=%d sample %d: top-1 disagrees (fp32 %d, int8 %d)", n, i, af, aq)
					}
					if re := relErr(qd, fd); re > 0.5 {
						t.Errorf("n=%d sample %d: rel error %.4f exceeds budget 0.5", n, i, re)
					}
				}
			}
		})
	}
}

// TestInt8WeightFootprint pins the tentpole's memory claim: the packed
// int8 constants of a conv/dense-heavy model occupy roughly a quarter of
// the fp32 packed panels they replace (int8 bytes vs float32, with
// per-row scale/rowsum metadata on top).
func TestInt8WeightFootprint(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	q, err := m.Compile(WithInt8())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	x := RandomTensor(1, m.InputShape()...)
	// Derived constants (packed panels) materialise lazily on first run.
	if _, err := fp.Predict(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Predict(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	fpBytes, qBytes := fp.ConstBytes(), q.ConstBytes()
	if fpBytes == 0 || qBytes == 0 {
		t.Fatalf("const footprints not populated: fp32 %d, int8 %d", fpBytes, qBytes)
	}
	ratio := float64(fpBytes) / float64(qBytes)
	if ratio < 3 || ratio > 5 {
		t.Errorf("fp32/int8 packed-constant ratio = %.2f (fp32 %d B, int8 %d B), want ~4x", ratio, fpBytes, qBytes)
	}
}

// TestInt8SessionRunAllocFree extends the steady-state zero-alloc
// invariant to quantized plans: activation quantization, panel packing
// and the requantize epilogue must all run out of reused buffers.
func TestInt8SessionRunAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; pool-backed alloc counts are not meaningful")
	}
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Compile(WithInt8())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	x := RandomTensor(1, m.InputShape()...)
	dst, err := sess.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PredictInto(context.Background(), dst, x); err != nil { // warm-up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := sess.PredictInto(context.Background(), dst, x); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state int8 PredictInto allocates %.1f times per run, want 0", avg)
	}
}
