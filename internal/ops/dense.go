package ops

import (
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Dense (fully connected) kernels.
//
//	inputs: X [N, K], W [M, K] (out×in, PyTorch convention), optional B [M]
//	output: Y [N, M] = X · Wᵀ + B
//
// dense.naive is the correctness reference; dense.gemm uses the packed
// GEMM on the transposed weight.
func init() {
	Register(NewKernel("dense.naive", "Dense", nil, runDenseNaive))
	Register(NewKernel("dense.gemm", "Dense", nil, runDenseGemm))
}

func runDenseNaive(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, w := in[0], in[1]
	batch, k := x.Shape()[0], x.Shape()[1]
	m := w.Shape()[0]
	var bias []float32
	if len(in) == 3 {
		bias = in[2].Data()
	}
	xd, wd, yd := x.Data(), w.Data(), out[0].Data()
	for b := 0; b < batch; b++ {
		for j := 0; j < m; j++ {
			var acc float32
			if bias != nil {
				acc = bias[j]
			}
			row := wd[j*k : (j+1)*k]
			xr := xd[b*k : (b+1)*k]
			for p := 0; p < k; p++ {
				acc += xr[p] * row[p]
			}
			yd[b*m+j] = acc
		}
	}
	applyActivation(yd, n.Attrs.Str("activation", ""), float32(n.Attrs.Float("alpha", 0.01)))
	return nil
}

func runDenseGemm(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, w := in[0], in[1]
	batch, k := x.Shape()[0], x.Shape()[1]
	m := w.Shape()[0]
	// Y[N,M] = X[N,K] · Wᵀ[K,M]. Transposing W once per call is cheap next
	// to the multiply; cache it since weights are run-invariant.
	key := "dense.gemm.wt:" + n.Name
	wt := ctx.Cache(key)
	if wt == nil {
		wt = make([]float32, k*m)
		wd := w.Data()
		for j := 0; j < m; j++ {
			for p := 0; p < k; p++ {
				wt[p*m+j] = wd[j*k+p]
			}
		}
		ctx.PutCache(key, wt)
	}
	yd := out[0].Data()
	ctx.Gemm.Packed(x.Data(), wt, yd, batch, m, k)
	if len(in) == 3 {
		bias := in[2].Data()
		for b := 0; b < batch; b++ {
			row := yd[b*m : (b+1)*m]
			for j := range row {
				row[j] += bias[j]
			}
		}
	}
	applyActivation(yd, n.Attrs.Str("activation", ""), float32(n.Attrs.Float("alpha", 0.01)))
	return nil
}
