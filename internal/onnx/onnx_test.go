package onnx

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// buildMixedGraph exercises every exportable op in one model.
func buildMixedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(31)
	g := graph.New("mixed")
	x, _ := g.Input("input", []int{1, 3, 12, 12})
	p0, _ := g.Add("Pad", "pad0", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x)
	w1, _ := g.Const("w1", tensor.HeNormal(r, 8, 3, 3, 3))
	b1, _ := g.Const("b1", tensor.Rand(r, -0.1, 0.1, 8))
	c1, _ := g.Add("Conv", "conv1", graph.Attrs{"strides": []int{1, 1}}, p0, w1, b1)
	s, _ := g.Const("bn.s", tensor.Rand(r, 0.8, 1.2, 8))
	bb, _ := g.Const("bn.b", tensor.Rand(r, -0.1, 0.1, 8))
	mm, _ := g.Const("bn.m", tensor.Rand(r, -0.1, 0.1, 8))
	vv, _ := g.Const("bn.v", tensor.Rand(r, 0.5, 1.5, 8))
	bn, _ := g.Add("BatchNorm", "bn1", graph.Attrs{"epsilon": 1e-5}, c1, s, bb, mm, vv)
	r6, _ := g.Add("Relu6", "relu6", nil, bn)
	wdw, _ := g.Const("wdw", tensor.HeNormal(r, 8, 1, 3, 3))
	dw, _ := g.Add("Conv", "dw", graph.Attrs{"pads": []int{1, 1, 1, 1}, "group": 8}, r6, wdw)
	lr, _ := g.Add("LeakyRelu", "leaky", graph.Attrs{"alpha": 0.1}, dw)
	mp, _ := g.Add("MaxPool", "pool", graph.Attrs{"kernel": []int{2, 2}, "strides": []int{2, 2}}, lr)
	ap, _ := g.Add("AveragePool", "apool", graph.Attrs{"kernel": []int{3, 3}, "strides": []int{1, 1}, "pads": []int{1, 1, 1, 1}}, mp)
	cat, _ := g.Add("Concat", "cat", graph.Attrs{"axis": 1}, mp, ap)
	sum, _ := g.Add("Add", "residual", nil, cat, cat)
	sig, _ := g.Add("Sigmoid", "sig", nil, sum)
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, sig)
	rs, _ := g.Add("Reshape", "reshape", graph.Attrs{"shape": []int{1, -1}}, gap)
	wf, _ := g.Const("wf", tensor.HeNormal(r, 5, 16))
	bf, _ := g.Const("bf", tensor.Rand(r, -0.1, 0.1, 5))
	fc, _ := g.Add("Dense", "fc", nil, rs, wf, bf)
	sm, _ := g.Add("Softmax", "prob", graph.Attrs{"axis": 1}, fc)
	_ = g.MarkOutput(sm)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func evalGraph(t testing.TB, g *graph.Graph, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	plan, err := runtime.Compile(g, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{g.Inputs[0].Name: x})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		return v.Clone()
	}
	t.Fatal("no output")
	return nil
}

func TestModelBytesRoundTrip(t *testing.T) {
	g := buildMixedGraph(t)
	m, err := Export(g)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Marshal()
	if len(data) == 0 {
		t.Fatal("empty serialisation")
	}
	m2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ProducerName != "orpheus" || m2.OpsetVersion != 11 {
		t.Fatalf("metadata lost: %+v", m2)
	}
	if len(m2.Graph.Nodes) != len(m.Graph.Nodes) {
		t.Fatalf("nodes: %d vs %d", len(m2.Graph.Nodes), len(m.Graph.Nodes))
	}
	if len(m2.Graph.Initializers) != len(m.Graph.Initializers) {
		t.Fatalf("initializers: %d vs %d", len(m2.Graph.Initializers), len(m.Graph.Initializers))
	}
}

func TestRoundTripNumericalIdentity(t *testing.T) {
	g := buildMixedGraph(t)
	x := tensor.Rand(tensor.NewRNG(7), -1, 1, 1, 3, 12, 12)
	want := evalGraph(t, g, x)

	m, err := Export(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	got := evalGraph(t, g2, x)
	if !tensor.AllClose(got, want, 1e-5) {
		t.Fatalf("round-tripped graph diverges: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := buildMixedGraph(t)
	path := filepath.Join(t.TempDir(), "mixed.onnx")
	if err := ExportFile(g, path); err != nil {
		t.Fatal(err)
	}
	g2, err := ImportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Rand(tensor.NewRNG(8), -1, 1, 1, 3, 12, 12)
	if !tensor.AllClose(evalGraph(t, g2, x), evalGraph(t, g, x), 1e-5) {
		t.Fatal("file round-trip diverges")
	}
}

func TestZooModelsRoundTrip(t *testing.T) {
	// Every Figure 2 model must survive export → import structurally.
	// (WRN gets a numerical check; the big ones are structure-only to keep
	// the suite fast.)
	for _, name := range zoo.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := zoo.Build(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Export(g)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := Import(m)
			if err != nil {
				t.Fatal(err)
			}
			if len(g2.Nodes) != len(g.Nodes) {
				t.Fatalf("node count %d vs %d", len(g2.Nodes), len(g.Nodes))
			}
			if g2.NumParams() != g.NumParams() {
				t.Fatalf("params %d vs %d", g2.NumParams(), g.NumParams())
			}
			if !tensor.ShapeEq(g2.Outputs[0].Shape, g.Outputs[0].Shape) {
				t.Fatalf("output shape %v vs %v", g2.Outputs[0].Shape, g.Outputs[0].Shape)
			}
		})
	}
}

func TestWRNRoundTripNumerical(t *testing.T) {
	if testing.Short() {
		t.Skip("WRN forward pass x2 is slow; run without -short")
	}
	g, err := zoo.WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Export(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Rand(tensor.NewRNG(9), -1, 1, 1, 3, 32, 32)
	want := evalGraph(t, g, x)
	got := evalGraph(t, g2, x)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("WRN round trip diverges: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestImportGemmTransBZero(t *testing.T) {
	// Gemm with transB=0 must transpose the weight initializer.
	m := &Model{IRVersion: 7, OpsetVersion: 11}
	m.Graph = Graph{
		Name:    "gemmt",
		Inputs:  []ValueInfo{{Name: "x", ElemType: TensorFloat, Shape: []int64{1, 2}}},
		Outputs: []ValueInfo{{Name: "y", ElemType: TensorFloat, Shape: []int64{1, 3}}},
		Initializers: []Tensor{{
			Name: "w", Dims: []int64{2, 3}, DataType: TensorFloat,
			FloatData: []float32{1, 2, 3, 4, 5, 6}, // [K=2, M=3]
		}},
		Nodes: []Node{{
			Name: "gemm", OpType: "Gemm", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
			Attributes: []Attribute{{Name: "transB", Type: AttrInt, I: 0}},
		}},
	}
	g, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	out := evalGraph(t, g, x)
	want := []float32{5, 7, 9} // column sums of w
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestImportRejectsUnsupported(t *testing.T) {
	mk := func(mutate func(*Model)) error {
		m := &Model{IRVersion: 7, OpsetVersion: 11}
		m.Graph = Graph{
			Name:    "bad",
			Inputs:  []ValueInfo{{Name: "x", ElemType: TensorFloat, Shape: []int64{1, 1, 4, 4}}},
			Outputs: []ValueInfo{{Name: "y", ElemType: TensorFloat, Shape: []int64{1, 1, 4, 4}}},
			Nodes:   []Node{{Name: "n", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"y"}}},
		}
		mutate(m)
		_, err := Import(m)
		return err
	}
	if err := mk(func(m *Model) { m.Graph.Nodes[0].OpType = "LSTM" }); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("unsupported op not rejected: %v", err)
	}
	if err := mk(func(m *Model) { m.Graph.Inputs[0].Shape = []int64{-1, 1, 4, 4} }); err == nil || !strings.Contains(err.Error(), "dynamic") {
		t.Fatalf("dynamic dim not rejected: %v", err)
	}
	if err := mk(func(m *Model) { m.Graph.Nodes[0].Inputs = []string{"ghost"} }); err == nil {
		t.Fatal("unknown value not rejected")
	}
	if err := mk(func(m *Model) { m.Graph.Outputs[0].Name = "ghost" }); err == nil {
		t.Fatal("unproduced output not rejected")
	}
}

func TestImportClipVariants(t *testing.T) {
	// Clip as attrs (legacy) and as const inputs (opset 11+) both map to
	// Relu6; other bounds are rejected.
	base := func() *Model {
		m := &Model{IRVersion: 7, OpsetVersion: 11}
		m.Graph = Graph{
			Name:    "clip",
			Inputs:  []ValueInfo{{Name: "x", ElemType: TensorFloat, Shape: []int64{1, 4}}},
			Outputs: []ValueInfo{{Name: "y", ElemType: TensorFloat, Shape: []int64{1, 4}}},
		}
		return m
	}
	m := base()
	m.Graph.Nodes = []Node{{Name: "c", OpType: "Clip", Inputs: []string{"x"}, Outputs: []string{"y"},
		Attributes: []Attribute{{Name: "min", Type: AttrFloat, F: 0}, {Name: "max", Type: AttrFloat, F: 6}}}}
	g, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	out := evalGraph(t, g, tensor.FromSlice([]float32{-1, 3, 7, 6}, 1, 4))
	want := []float32{0, 3, 6, 6}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("clip-attr out[%d] = %v", i, v)
		}
	}

	m = base()
	m.Graph.Initializers = []Tensor{
		{Name: "lo", Dims: nil, DataType: TensorFloat, FloatData: []float32{0}},
		{Name: "hi", Dims: nil, DataType: TensorFloat, FloatData: []float32{6}},
	}
	m.Graph.Nodes = []Node{{Name: "c", OpType: "Clip", Inputs: []string{"x", "lo", "hi"}, Outputs: []string{"y"}}}
	if _, err := Import(m); err != nil {
		t.Fatalf("const-input clip rejected: %v", err)
	}

	m = base()
	m.Graph.Nodes = []Node{{Name: "c", OpType: "Clip", Inputs: []string{"x"}, Outputs: []string{"y"},
		Attributes: []Attribute{{Name: "min", Type: AttrFloat, F: -1}, {Name: "max", Type: AttrFloat, F: 1}}}}
	if _, err := Import(m); err == nil {
		t.Fatal("generic clip should be rejected")
	}
}

func TestExportFusedActivationExpands(t *testing.T) {
	r := tensor.NewRNG(41)
	g := graph.New("fused")
	x, _ := g.Input("x", []int{1, 2, 4, 4})
	w, _ := g.Const("w", tensor.HeNormal(r, 2, 2, 1, 1))
	c, _ := g.Add("Conv", "conv", graph.Attrs{"activation": "relu"}, x, w)
	_ = g.MarkOutput(c)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m, err := Export(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Graph.Nodes) != 2 || m.Graph.Nodes[1].OpType != "Relu" {
		t.Fatalf("fused conv should export as Conv+Relu, got %d nodes", len(m.Graph.Nodes))
	}
	g2, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	xs := tensor.Rand(tensor.NewRNG(42), -1, 1, 1, 2, 4, 4)
	if !tensor.AllClose(evalGraph(t, g2, xs), evalGraph(t, g, xs), 1e-5) {
		t.Fatal("fused-activation export/import diverges")
	}
}
