package passes

import "orpheus/internal/graph"

// EliminateIdentity removes Identity and Dropout nodes (Dropout is the
// identity during inference), rewiring consumers to the node's input.
func EliminateIdentity() Pass {
	return newPass("eliminate-identity", func(g *graph.Graph) (bool, error) {
		changed := false
		for {
			var victim *graph.Node
			for _, n := range g.Nodes {
				if n.Op == "Identity" || n.Op == "Dropout" {
					victim = n
					break
				}
			}
			if victim == nil {
				return changed, nil
			}
			g.ReplaceUses(victim.Outputs[0], victim.Inputs[0])
			if err := g.RemoveNode(victim); err != nil {
				return changed, err
			}
			changed = true
		}
	})
}

// EliminateDead removes nodes none of whose outputs are consumed or marked
// as graph outputs. It iterates so chains of dead nodes disappear in one
// pass execution.
func EliminateDead() Pass {
	return newPass("eliminate-dead", func(g *graph.Graph) (bool, error) {
		changed := false
		for {
			consumers := g.Consumers()
			var victim *graph.Node
			for _, n := range g.Nodes {
				dead := true
				for _, out := range n.Outputs {
					if len(consumers[out]) > 0 || isGraphOutput(g, out) {
						dead = false
						break
					}
				}
				if dead {
					victim = n
					break
				}
			}
			if victim == nil {
				return changed, nil
			}
			if err := g.RemoveNode(victim); err != nil {
				return changed, err
			}
			changed = true
		}
	})
}

// FusePad merges a zero-valued Pad node into the padding attributes of the
// Conv that consumes it, removing one full tensor materialisation.
func FusePad() Pass {
	return newPass("fuse-pad", func(g *graph.Graph) (bool, error) {
		changed := false
		for {
			consumers := g.Consumers()
			var pad *graph.Node
			var conv *graph.Node
			for _, n := range g.Nodes {
				if n.Op != "Pad" || n.Attrs.Float("value", 0) != 0 {
					continue
				}
				c := soleConsumer(g, consumers, n.Outputs[0])
				if c == nil || c.Op != "Conv" || c.Inputs[0] != n.Outputs[0] {
					continue
				}
				pad, conv = n, c
				break
			}
			if pad == nil {
				return changed, nil
			}
			pp := pad.Attrs.Ints("pads", []int{0, 0, 0, 0})
			cp := conv.Attrs.Ints("pads", []int{0, 0, 0, 0})
			conv.Attrs = conv.Attrs.Clone()
			conv.Attrs["pads"] = []int{cp[0] + pp[0], cp[1] + pp[1], cp[2] + pp[2], cp[3] + pp[3]}
			conv.Inputs[0] = pad.Inputs[0]
			if err := g.RemoveNode(pad); err != nil {
				return changed, err
			}
			changed = true
		}
	})
}
