// Package tensor provides the dense float32 tensor type used throughout
// Orpheus. Tensors are always contiguous and row-major; convolutional data
// uses the NCHW layout (batch, channels, height, width).
//
// The package is deliberately small: it supplies construction, indexing,
// shape manipulation, elementwise math, simple reductions and the data
// rearrangements (padding, transposition, im2col) that the operator kernels
// in internal/ops are built from.
//
// Constructors panic on structurally invalid arguments (negative dimensions,
// mismatched data lengths); these are programmer errors, analogous to
// make([]T, -1). All model-level validation in Orpheus happens at graph
// construction time, before any tensor code runs.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
// A Tensor with an empty shape is a scalar holding exactly one element.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: cloneInts(shape), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied), so the caller must not alias it unexpectedly.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: cloneInts(shape), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: nil, data: []float32{v}}
}

// checkShape validates dims and returns the volume.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func cloneInts(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	c := make([]int, len(s))
	copy(c, s)
	return c
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i. Negative i counts from the end,
// so Dim(-1) is the innermost dimension.
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor; kernels rely on this for zero-copy access.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// offset converts a multi-dimensional index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: cloneInts(t.shape), data: d}
}

// Reshape returns a view of the same data with a new shape. Exactly one
// dimension may be -1, in which case it is inferred. It panics if the
// volumes disagree.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := cloneInts(shape)
	infer := -1
	n := 1
	for i, d := range out {
		switch {
		case d == -1:
			if infer >= 0 {
				panic(fmt.Sprintf("tensor: Reshape with multiple -1 dims in %v", shape))
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		default:
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer -1 in reshape %v from volume %d", shape, len(t.data)))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v volume %d does not match tensor volume %d", shape, n, len(t.data)))
	}
	return &Tensor{shape: out, data: t.data}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short human-readable description (shape and a few
// leading values), suitable for logs and error messages.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if show < n {
		fmt.Fprintf(&b, " … +%d", n-show)
	}
	b.WriteString("]")
	return b.String()
}

// Volume returns the product of the dimensions in shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShapeString formats a shape like "1x64x56x56".
func ShapeString(shape []int) string {
	if len(shape) == 0 {
		return "scalar"
	}
	parts := make([]string, len(shape))
	for i, d := range shape {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}
