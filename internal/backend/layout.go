package backend

import (
	"context"

	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// Layout arbitration: like the tuner's fp32-vs-int8 decision, the
// NCHW-vs-NHWC choice is made empirically per model. Depthwise-heavy
// networks gain a lot from channel-innermost vectorisation; networks the
// pass cannot convert cleanly keep the NCHW plan. AutoLayout compiles the
// model both ways, times a few single-sample inferences of each, and
// keeps the measured winner.

// autoLayoutReps is the per-plan measurement budget: one warm-up run
// (packing constants) plus this many timed runs, median decides.
const autoLayoutReps = 3

// AutoLayout compiles g under both layouts, measures each briefly and
// returns the faster plan plus the layout it executes in ("nchw" or
// "nhwc"). When the NHWC conversion or its measurement fails, the NCHW
// plan wins by default — layout is an optimisation, never a requirement.
// o.Layout is ignored; o.LayoutStats receives the conversion counters
// regardless of which plan wins.
func (b *Backend) AutoLayout(g *graph.Graph, o PrepareOpts) (*runtime.Plan, string, error) {
	o.Layout = ""
	nchw, err := b.PrepareWith(g, o)
	if err != nil {
		return nil, "", err
	}
	o.Layout = "nhwc"
	nhwc, err := b.PrepareWith(g, o)
	if err != nil {
		return nchw, "nchw", nil
	}
	ctx := context.Background()
	in := make(map[string]*tensor.Tensor, len(g.Inputs))
	r := tensor.NewRNG(tensor.SeedFromString("autolayout-" + g.Name))
	for _, v := range g.Inputs {
		in[v.Name] = tensor.Rand(r, -1, 1, v.Shape...)
	}
	nchwStats, err := runtime.Measure(ctx, runtime.NewSession(nchw), in, 1, autoLayoutReps)
	if err != nil {
		return nchw, "nchw", nil
	}
	nhwcStats, err := runtime.Measure(ctx, runtime.NewSession(nhwc), in, 1, autoLayoutReps)
	if err != nil {
		return nchw, "nchw", nil
	}
	if nhwcStats.Median < nchwStats.Median {
		return nhwc, "nhwc", nil
	}
	return nchw, "nchw", nil
}
