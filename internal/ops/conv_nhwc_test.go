package ops

import (
	"fmt"
	"testing"

	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// permute4 returns a copy of the rank-4 tensor with axes permuted:
// out shape[i] = in shape[perm[i]].
func permute4(t *tensor.Tensor, perm []int) *tensor.Tensor {
	s := t.Shape()
	out := tensor.New(s[perm[0]], s[perm[1]], s[perm[2]], s[perm[3]])
	var idx [4]int
	for a := 0; a < s[0]; a++ {
		for b := 0; b < s[1]; b++ {
			for c := 0; c < s[2]; c++ {
				for d := 0; d < s[3]; d++ {
					idx = [4]int{a, b, c, d}
					out.Set(t.At(a, b, c, d), idx[perm[0]], idx[perm[1]], idx[perm[2]], idx[perm[3]])
				}
			}
		}
	}
	return out
}

func nchwToNHWC(t *tensor.Tensor) *tensor.Tensor { return permute4(t, []int{0, 2, 3, 1}) }
func nhwcToNCHW(t *tensor.Tensor) *tensor.Tensor { return permute4(t, []int{0, 3, 1, 2}) }

// nhwcTol is the acceptance bound for the layout differential: NHWC and
// NCHW accumulate in different orders, so bit-equality is out, but both
// are fp32 sums of the same terms.
const nhwcTol = 1e-5

// TestConvNHWCMatchesNCHW is the layout differential battery: every NHWC
// conv kernel must agree with the NCHW conv.direct reference on every
// geometry it supports — across the full conv matrix, every selectable
// GEMM micro-kernel, and worker budgets 1 and 3.
func TestConvNHWCMatchesNCHW(t *testing.T) {
	for _, kn := range gemm.KernelNames() {
		for _, tc := range implicitBattery() {
			for _, workers := range []int{1, 3} {
				for _, act := range []string{"", "relu"} {
					tc, act, workers := tc, act, workers
					name := fmt.Sprintf("%s/%s/workers=%d/act=%s", kn, tc.name, workers, act)
					t.Run(name, func(t *testing.T) {
						withGemmKernel(t, kn, func() {
							attrs := tc.attrs()
							if act != "" {
								attrs["activation"] = act
							}
							inputs := tc.tensors(tensor.SeedFromString("nhwc-" + tc.name))
							ref := runKernel(t, "conv.direct", "Conv", attrs, inputs...)

							nhwcAttrs := tc.attrs()
							nhwcAttrs["layout"] = "nhwc"
							if act != "" {
								nhwcAttrs["activation"] = act
							}
							nhwcIn := append([]*tensor.Tensor{nchwToNHWC(inputs[0])}, inputs[1:]...)
							n := buildNode(t, "Conv", nhwcAttrs, nhwcIn...)
							for _, k := range ForOp("Conv") {
								if IsQuantized(k) || !k.Supports(n) {
									continue
								}
								got := nhwcToNCHW(runConvWorkers(t, k.Name(), workers, n, nhwcIn))
								if i := relClose(got.Data(), ref.Data(), nhwcTol); i >= 0 {
									t.Errorf("%s diverges from NCHW conv.direct at %d: got %g want %g",
										k.Name(), i, got.Data()[i], ref.Data()[i])
								}
							}
						})
					})
				}
			}
		}
	}
}

// TestConvNHWCSrcNCHW exercises the folded-boundary-transpose form: the
// node computes an NHWC output while its input stays NCHW in memory
// (src_layout "nchw"), the shape a fold at the layout frontier produces.
func TestConvNHWCSrcNCHW(t *testing.T) {
	for _, tc := range implicitBattery() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			inputs := tc.tensors(tensor.SeedFromString("srcnchw-" + tc.name))
			ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)

			attrs := tc.attrs()
			attrs["layout"] = "nhwc"
			attrs["src_layout"] = "nchw"
			n := buildNode(t, "Conv", attrs, inputs...)
			ran := 0
			for _, k := range ForOp("Conv") {
				if IsQuantized(k) || !k.Supports(n) {
					continue
				}
				got := nhwcToNCHW(runConvWorkers(t, k.Name(), 1, n, inputs))
				if i := relClose(got.Data(), ref.Data(), nhwcTol); i >= 0 {
					t.Errorf("%s diverges at %d: got %g want %g",
						k.Name(), i, got.Data()[i], ref.Data()[i])
				}
				ran++
			}
			if ran == 0 {
				t.Fatal("no kernel supports src_layout=nchw node")
			}
		})
	}
}

// TestConvNHWCScratchReuseOff pins the DisableScratchReuse path (raw
// weight matrices instead of cached prepacked panels).
func TestConvNHWCScratchReuseOff(t *testing.T) {
	for _, tc := range []convCase{convMatrix[1], convMatrix[7], convMatrix[8], implicitCases[3]} {
		inputs := tc.tensors(tensor.SeedFromString("nhwc-noreuse-" + tc.name))
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
		attrs := tc.attrs()
		attrs["layout"] = "nhwc"
		nhwcIn := append([]*tensor.Tensor{nchwToNHWC(inputs[0])}, inputs[1:]...)
		n := buildNode(t, "Conv", attrs, nhwcIn...)
		for _, kn := range []string{"conv.im2col_nhwc", "conv.depthwise_nhwc"} {
			k := ByName(kn)
			if !k.Supports(n) {
				continue
			}
			out := tensor.New(n.Outputs[0].Shape...)
			ctx := NewCtx(1)
			ctx.DisableScratchReuse = true
			if err := k.Run(ctx, n, nhwcIn, []*tensor.Tensor{out}); err != nil {
				t.Fatalf("%s/%s: %v", kn, tc.name, err)
			}
			got := nhwcToNCHW(out)
			if i := relClose(got.Data(), ref.Data(), nhwcTol); i >= 0 {
				t.Errorf("%s/%s diverges at %d: got %g want %g",
					kn, tc.name, i, got.Data()[i], ref.Data()[i])
			}
		}
	}
}

// TestConvNHWCSupportMatrix pins the NHWC kernel routing: depthwise NHWC
// nodes go to conv.depthwise_nhwc, dense ones to conv.im2col_nhwc, and
// every NCHW-only kernel refuses NHWC nodes.
func TestConvNHWCSupportMatrix(t *testing.T) {
	dw := convMatrix[8] // depthwise
	attrs := dw.attrs()
	attrs["layout"] = "nhwc"
	in := dw.tensors(7)
	in[0] = nchwToNHWC(in[0])
	n := buildNode(t, "Conv", attrs, in...)
	if !ByName("conv.depthwise_nhwc").Supports(n) {
		t.Fatal("conv.depthwise_nhwc should support depthwise NHWC node")
	}
	if ByName("conv.im2col_nhwc").Supports(n) {
		t.Fatal("conv.im2col_nhwc should reject depthwise NHWC node")
	}
	for _, kn := range []string{"conv.im2col", "conv.im2col_explicit", "conv.depthwise",
		"conv.group_im2col", "conv.spatialpack", "conv.winograd", "conv.im2col_int8"} {
		if ByName(kn).Supports(n) {
			t.Fatalf("%s should reject NHWC node", kn)
		}
	}

	plain := convMatrix[1] // 3x3 pad1 stride1 ungrouped
	attrs = plain.attrs()
	attrs["layout"] = "nhwc"
	in = plain.tensors(8)
	in[0] = nchwToNHWC(in[0])
	n = buildNode(t, "Conv", attrs, in...)
	if !ByName("conv.im2col_nhwc").Supports(n) {
		t.Fatal("conv.im2col_nhwc should support dense NHWC node")
	}
	if ByName("conv.depthwise_nhwc").Supports(n) {
		t.Fatal("conv.depthwise_nhwc should reject dense NHWC node")
	}
}

// TestPoolPadNHWCMatchesNCHW runs the layout differential over the
// non-conv NHWC kernels: pooling, global pooling and padding.
func TestPoolPadNHWCMatchesNCHW(t *testing.T) {
	r := tensor.NewRNG(11)
	x := tensor.Rand(r, -1, 1, 2, 5, 9, 8) // NCHW
	xh := nchwToNHWC(x)

	cases := []struct {
		op, kernel string
		attrs      graph.Attrs
	}{
		{"MaxPool", "maxpool.direct", graph.Attrs{"kernel": []int{3, 3}, "strides": []int{2, 2}, "pads": []int{1, 1, 1, 1}}},
		{"MaxPool", "maxpool.direct", graph.Attrs{"kernel": []int{2, 2}, "strides": []int{2, 2}, "pads": []int{0, 0, 0, 0}}},
		{"AveragePool", "avgpool.direct", graph.Attrs{"kernel": []int{3, 3}, "strides": []int{1, 1}, "pads": []int{1, 1, 1, 1}}},
		{"AveragePool", "avgpool.direct", graph.Attrs{"kernel": []int{3, 3}, "strides": []int{2, 2}, "pads": []int{1, 1, 1, 1}, "count_include_pad": true}},
		{"GlobalAveragePool", "globalavgpool.direct", graph.Attrs{}},
		{"Pad", "pad.copy", graph.Attrs{"pads": []int{1, 2, 3, 0}}},
		{"Pad", "pad.copy", graph.Attrs{"pads": []int{0, 1, 0, 1}, "value": 2.5}},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/%v", tc.kernel, tc.attrs)
		ref := runKernel(t, tc.kernel, tc.op, tc.attrs, x)
		nhwcAttrs := graph.Attrs{"layout": "nhwc"}
		for k, v := range tc.attrs {
			nhwcAttrs[k] = v
		}
		got := nhwcToNCHW(runKernel(t, tc.kernel, tc.op, nhwcAttrs, xh))
		if i := relClose(got.Data(), ref.Data(), nhwcTol); i >= 0 {
			t.Errorf("%s diverges at %d: got %g want %g", name, i, got.Data()[i], ref.Data()[i])
		}
	}
}

func TestTransposeCopy(t *testing.T) {
	// Known values: [1,2,2,2] NCHW→NHWC.
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 1, 2, 2, 2)
	got := runKernel(t, "transpose.copy", "Transpose", graph.Attrs{"perm": []int{0, 2, 3, 1}}, x)
	want := []float32{1, 5, 2, 6, 3, 7, 4, 8}
	if !tensor.ShapeEq(got.Shape(), []int{1, 2, 2, 2}) {
		t.Fatalf("shape = %v", got.Shape())
	}
	for i, v := range got.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}

	// Rank-4 round trip against the reference permute helper.
	r := tensor.NewRNG(3)
	x = tensor.Rand(r, -1, 1, 2, 3, 4, 5)
	fw := runKernel(t, "transpose.copy", "Transpose", graph.Attrs{"perm": []int{0, 2, 3, 1}}, x)
	if tensor.MaxAbsDiff(fw, nchwToNHWC(x)) != 0 {
		t.Fatal("NCHW->NHWC transpose mismatch")
	}
	bk := runKernel(t, "transpose.copy", "Transpose", graph.Attrs{"perm": []int{0, 3, 1, 2}}, fw)
	if tensor.MaxAbsDiff(bk, x) != 0 {
		t.Fatal("transpose round trip not identity")
	}

	// Rank-2 matrix transpose (strided inner axis).
	m := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	mt := runKernel(t, "transpose.copy", "Transpose", graph.Attrs{"perm": []int{1, 0}}, m)
	wantMT := []float32{1, 4, 2, 5, 3, 6}
	if !tensor.ShapeEq(mt.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v", mt.Shape())
	}
	for i, v := range mt.Data() {
		if v != wantMT[i] {
			t.Fatalf("mt[%d] = %v, want %v", i, v, wantMT[i])
		}
	}
}

// FuzzLayoutDifferential drives randomized conv geometries through the
// NHWC tier and checks them against the NCHW direct reference.
func FuzzLayoutDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(4), uint8(1), uint8(0), uint8(1), uint8(0))
	f.Add(uint64(2), uint8(6), uint8(6), uint8(2), uint8(1), uint8(0), uint8(1))
	f.Add(uint64(3), uint8(8), uint8(8), uint8(0), uint8(0), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, chb, cob, kb, sb, pb, gb uint8) {
		cin := int(chb%8) + 1
		cout := int(cob%8) + 1
		k := []int{1, 2, 3, 5}[kb%4]
		s := int(sb%3) + 1
		pad := int(pb % 3)
		groups := 1
		switch gb % 3 {
		case 1: // depthwise
			cout = cin
			groups = cin
		case 2: // grouped
			cin, cout = cin*2, cout*2
			groups = 2
		}
		h := 9
		if h+2*pad < k {
			t.Skip()
		}
		tc := convCase{n: 2, cin: cin, h: h, w: h + 1, cout: cout, kh: k, kw: k,
			sh: s, sw: s, padT: pad, padL: pad, padB: pad, padR: pad,
			dh: 1, dw: 1, groups: groups, bias: true}
		inputs := tc.tensors(seed)
		ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)

		attrs := tc.attrs()
		attrs["layout"] = "nhwc"
		nhwcIn := append([]*tensor.Tensor{nchwToNHWC(inputs[0])}, inputs[1:]...)
		n := buildNode(t, "Conv", attrs, nhwcIn...)
		for _, kn := range []string{"conv.im2col_nhwc", "conv.depthwise_nhwc", "conv.direct"} {
			k := ByName(kn)
			if !k.Supports(n) {
				continue
			}
			got := nhwcToNCHW(runConvWorkers(t, kn, 1, n, nhwcIn))
			if i := relClose(got.Data(), ref.Data(), nhwcTol); i >= 0 {
				t.Errorf("%s diverges at %d: got %g want %g", kn, i, got.Data()[i], ref.Data()[i])
			}
		}
	})
}
