// Backends: the paper's core workflow — run the same model under
// different backends (kernel-selection policies) and compare both the
// chosen implementations and the resulting inference time. This is
// Figure 2 in miniature.
//
//	go run ./examples/backends
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"orpheus"
)

func main() {
	model, err := orpheus.BuildZooModel("wrn-40-2")
	if err != nil {
		log.Fatal(err)
	}
	input := orpheus.RandomTensor(11, model.InputShape()...)
	ctx := context.Background()

	fmt.Printf("%s\n\n", model.Summary())
	fmt.Printf("%-18s %-14s %s\n", "backend", "median", "conv kernels selected")
	fmt.Println(strings.Repeat("-", 78))

	for _, name := range []string{"orpheus", "orpheus-heuristic", "tvm-sim", "torch-sim", "darknet-sim"} {
		// darknet-sim refuses non-ResNet zoo models by name, mirroring the
		// paper; compile the raw graph to show the error handling.
		sess, err := model.Compile(orpheus.WithBackend(name))
		if err != nil {
			fmt.Printf("%-18s %v\n", name, err)
			continue
		}
		stats, err := sess.Benchmark(ctx, input, 1, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-14v %s\n", name, stats.Median.Round(100_000), convKernels(sess))
	}

	fmt.Println("\nExpected: tvm-sim (spatial pack) wins this small model, as in the")
	fmt.Println("paper's Figure 2; orpheus (GEMM) wins the larger ResNets.")
}

// convKernels summarises which conv implementation the backend picked.
func convKernels(sess *orpheus.Session) string {
	counts := map[string]int{}
	for _, line := range sess.PlanSummary() {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[1] == "Conv" {
			counts[fields[2]]++
		}
	}
	var parts []string
	for k, n := range counts {
		parts = append(parts, fmt.Sprintf("%s×%d", k, n))
	}
	return strings.Join(parts, " ")
}
