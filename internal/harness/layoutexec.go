package harness

import (
	"fmt"

	"orpheus/internal/backend"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// E4 "layout": NHWC layout planning against the NCHW baseline, per zoo
// model — measured latency both ways, speedup, output relative error, the
// ConvertLayout counters (how many transposes the pass inserted and then
// removed, how many materialised), and what the auto arbiter picks. The
// companion of the int8 experiment: where "quant" changes the arithmetic,
// "layout" changes the element order the same arithmetic walks.
func init() {
	register(&Experiment{ID: "layout", Title: "E4: NHWC layout planning vs NCHW (speed, equivalence, fold counters)", Run: runLayoutExec})
}

func runLayoutExec(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "layout", Title: "E4: NHWC layout planning vs NCHW per model"}
	rep.Header = []string{"model", "nchw ms", "nhwc ms", "speedup", "rel err", "nhwc nodes", "folded", "left", "auto"}
	measured := cfg.Mode != ModeSim
	if !measured {
		rep.AddNote("timing columns require -mode measure; the A73 cost model is layout-blind")
	}
	b, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		nchwPlan, err := b.PrepareWith(g, backend.PrepareOpts{Workers: cfg.Workers, MaxBatch: 1})
		if err != nil {
			return nil, err
		}
		stats := &passes.LayoutStats{}
		nhwcPlan, err := b.PrepareWith(g, backend.PrepareOpts{Workers: cfg.Workers, MaxBatch: 1, Layout: "nhwc", LayoutStats: stats})
		if err != nil {
			return nil, err
		}
		nchwSess := runtime.NewSession(nchwPlan)
		nhwcSess := runtime.NewSession(nhwcPlan)
		inName, outName := g.Inputs[0].Name, g.Outputs[0].Name

		x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString("layout-"+modelName)), -1, 1, g.Inputs[0].Shape...)
		in := map[string]*tensor.Tensor{inName: x}
		nchwOut, err := nchwSess.Run(cfg.Ctx, in)
		if err != nil {
			return nil, err
		}
		ref := nchwOut[outName].Clone().Data()
		nhwcOut, err := nhwcSess.Run(cfg.Ctx, in)
		if err != nil {
			return nil, err
		}
		rel := relErr32(nhwcOut[outName].Data(), ref)

		nchwMs, nhwcMs, speedup, auto := "-", "-", "-", "-"
		if measured {
			nchwStats, err := runtime.Measure(cfg.Ctx, nchwSess, in, cfg.Warmup, cfg.Reps)
			if err != nil {
				return nil, err
			}
			nhwcStats, err := runtime.Measure(cfg.Ctx, nhwcSess, in, cfg.Warmup, cfg.Reps)
			if err != nil {
				return nil, err
			}
			n := float64(nchwStats.Median) / 1e6
			h := float64(nhwcStats.Median) / 1e6
			nchwMs, nhwcMs = fmtMs(n), fmtMs(h)
			speedup = fmt.Sprintf("%.2fx", n/h)
			// What PrepareOpts{Layout: "auto"} would keep, read off the
			// same medians the table shows.
			auto = "nchw"
			if h < n {
				auto = "nhwc"
			}
		}

		rep.AddRow(modelName, nchwMs, nhwcMs, speedup,
			fmt.Sprintf("%.2e", rel),
			fmt.Sprintf("%d", stats.NHWCNodes),
			fmt.Sprintf("%d", stats.Cancelled+stats.Elided+stats.Folded),
			fmt.Sprintf("%d", stats.Remaining), auto)
	}
	rep.AddNote("nhwc path: layout-assignment pass + channel-innermost conv/depthwise kernels; transposes only at unfoldable frontiers")
	rep.AddNote("folded = frontier transposes removed (pair-cancelled + elided + folded into conv gathers); left = materialised Transpose nodes")
	return rep, nil
}
