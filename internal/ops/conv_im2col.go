package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// conv.im2col — GEMM convolution. The input is unfolded into a column
// matrix (im2col) and multiplied by the reshaped weight matrix with the
// packed GEMM. This is the Orpheus production path: the paper notes
// "Orpheus uses GEMM convolution, which pays off for big matrices".
//
// The weight matrix is a graph constant, so its packed A-panels are built
// once (first use, cached in the plan-shared ConstCache) and every later
// run skips the packing pass entirely. The GEMM runs in overwrite (beta=0)
// mode, which both lets the runtime skip the arena zero-fill for this
// kernel and keeps repeated runs correct without it.
//
// Groups are handled per (batch, group) block; a pure depthwise conv is
// better served by conv.depthwise (this kernel still computes it
// correctly, just slowly).
func init() {
	Register(NewOverwritingKernel("conv.im2col", "Conv", nil, runConvIm2col))
}

// packedConvWeights returns the cached prepacked per-group weight panels
// for the node, packing them on first use: groups consecutive buffers of
// PackedASize(coutG, kdim) values each. Returns nil (pack per call, the
// seed behaviour) when scratch reuse is disabled.
func packedConvWeights(ctx *Ctx, n *graph.Node, w []float32, groups, coutG, kdim int) []float32 {
	if ctx.DisableScratchReuse {
		return nil
	}
	if buf := ctx.Cache("conv.im2col/pw", n); buf != nil {
		return buf
	}
	per := gemm.PackedASize(coutG, kdim)
	buf := make([]float32, groups*per)
	for g := 0; g < groups; g++ {
		gemm.PrepackAInto(buf[g*per:], w[g*coutG*kdim:(g+1)*coutG*kdim], coutG, kdim)
	}
	ctx.PutCache("conv.im2col/pw", n, buf)
	return buf
}

// runConvIm2col implements conv.im2col; parallelism follows ctx.Workers
// through the shared GEMM worker pool. (The deliberately slow per-group
// naive variant lives in conv.group_im2col.)
func runConvIm2col(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	kdim := cinG * p.kh * p.kw
	cols := p.oh * p.ow

	// Pointwise fast path: a 1x1 stride-1 unpadded convolution is exactly
	// C[cout×HW] = W[cout×cin] · X[cin×HW]; the unfold would be a copy.
	// The whole batch goes down as one strided GEMM call, so the packed
	// weight panels are loaded once per batch and the worker pool spreads
	// macro-tiles across batch×tile.
	if p.kh == 1 && p.kw == 1 && p.sh == 1 && p.sw == 1 && p.dh == 1 && p.dw == 1 &&
		p.padT == 0 && p.padL == 0 && p.padB == 0 && p.padR == 0 && p.groups == 1 {
		pw := packedConvWeights(ctx, n, w, 1, p.cout, p.cin)
		ctx.GEMM(gemm.Call{A: w, PackedA: pw, B: x, C: y,
			M: p.cout, N: cols, K: p.cin, Store: true,
			Batch: p.n, StrideB: p.cin * cols, StrideC: p.cout * cols})
		if bias != nil {
			addBiasNCHW(y, bias, p.n, p.cout, cols)
		}
		applyActivation(y, p.activation, p.alpha)
		return nil
	}

	// The unfold writes every element (padding included), so the scratch
	// needs no zero-fill.
	colBuf := ctx.ScratchUninit("conv.im2col/col", n, kdim*cols)

	perGroup := gemm.PackedASize(coutG, kdim)
	packedW := packedConvWeights(ctx, n, w, p.groups, coutG, kdim)

	for b := 0; b < p.n; b++ {
		for g := 0; g < p.groups; g++ {
			// The group's input channels are contiguous within one batch
			// image: offset (b*cin + g*cinG)*h*w.
			src := x[(b*p.cin+g*cinG)*p.h*p.w:]
			tensor.Im2ColInto(colBuf, src, 1, cinG, p.h, p.w,
				p.kh, p.kw, p.sh, p.sw, p.padT, p.padL, p.dh, p.dw, p.oh, p.ow)
			// Weight rows for this group are contiguous: [coutG, kdim].
			wg := w[g*coutG*kdim : (g+1)*coutG*kdim]
			dst := y[(b*p.cout+g*coutG)*cols : (b*p.cout+(g+1)*coutG)*cols]
			var pa []float32
			if packedW != nil {
				pa = packedW[g*perGroup : (g+1)*perGroup]
			}
			ctx.GEMM(gemm.Call{A: wg, PackedA: pa, B: colBuf, C: dst,
				M: coutG, N: cols, K: kdim, Store: true})
		}
	}
	if bias != nil {
		addBiasNCHW(y, bias, p.n, p.cout, cols)
	}
	applyActivation(y, p.activation, p.alpha)
	return nil
}

// addBiasNCHW adds bias[c] to every spatial element of channel c.
func addBiasNCHW(y, bias []float32, n, c, spatial int) {
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			bv := bias[ch]
			row := y[(b*c+ch)*spatial : (b*c+ch+1)*spatial]
			for i := range row {
				row[i] += bv
			}
		}
	}
}
