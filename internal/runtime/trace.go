package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TraceEvent is one entry of the Chrome trace-event format ("X" complete
// events), so profiled runs can be inspected in chrome://tracing or
// Perfetto.
type TraceEvent struct {
	Name     string         `json:"name"`
	Category string         `json:"cat"`
	Phase    string         `json:"ph"`
	TsMicros float64        `json:"ts"`
	DurMicro float64        `json:"dur"`
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

// WriteTrace serialises per-layer timings as a Chrome trace. Events are
// laid end to end on one timeline (profiled execution is sequential), so
// the visual width of each slice is the layer's share of inference time.
func WriteTrace(w io.Writer, timings []LayerTiming) error {
	events := make([]TraceEvent, 0, len(timings))
	var cursor time.Duration
	for _, lt := range timings {
		args := map[string]any{
			"op":     lt.Node.Op,
			"kernel": lt.Kernel,
		}
		if lt.Flops > 0 {
			args["mflops"] = float64(lt.Flops) / 1e6
			if lt.Duration > 0 {
				args["gflops_per_s"] = float64(lt.Flops) / float64(lt.Duration.Nanoseconds())
			}
		}
		events = append(events, TraceEvent{
			Name:     lt.Node.Name,
			Category: lt.Node.Op,
			Phase:    "X",
			TsMicros: float64(cursor) / 1e3,
			DurMicro: float64(lt.Duration) / 1e3,
			PID:      1,
			TID:      1,
			Args:     args,
		})
		cursor += lt.Duration
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]any{"traceEvents": events}); err != nil {
		return fmt.Errorf("runtime: encoding trace: %w", err)
	}
	return nil
}
