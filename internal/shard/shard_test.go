package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/faultinject"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// stageModel builds a small CNN with enough layers to split three ways
// after optimisation, cheap enough for stress loops.
func stageModel(t testing.TB, name string) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(61)
	g := graph.New(name)
	x, _ := g.Input("input", []int{1, 3, 8, 8})
	w1, _ := g.Const("w1", tensor.HeNormal(r, 8, 3, 3, 3))
	c1, _ := g.Add("Conv", "conv1", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w1)
	r1, _ := g.Add("Relu", "relu1", nil, c1)
	w2, _ := g.Const("w2", tensor.HeNormal(r, 8, 8, 3, 3))
	c2, _ := g.Add("Conv", "conv2", graph.Attrs{"pads": []int{1, 1, 1, 1}}, r1, w2)
	r2, _ := g.Add("Relu", "relu2", nil, c2)
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, r2)
	fl, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, gap)
	wf, _ := g.Const("wf", tensor.HeNormal(r, 4, 8))
	fc, _ := g.Add("Dense", "fc", nil, fl, wf)
	sm, _ := g.Add("Softmax", "prob", nil, fc)
	_ = g.MarkOutput(sm)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

// startStages builds and serves an n-stage pipeline for g on loopback,
// returning the servers in pipeline order and their addresses. mod, when
// non-nil, adjusts each stage's Config before New.
func startStages(t testing.TB, g *graph.Graph, n int, mod func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		cfg := Config{Graph: g, Index: i, Count: n}
		if i < n-1 {
			cfg.Next = addrs[i+1]
		}
		if mod != nil {
			mod(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		ln := lns[i]
		go func() { _ = s.Serve(ln) }()
		t.Cleanup(func() { _ = s.Close() })
	}
	return servers, addrs
}

// refRun executes g single-process and returns its sole output.
func refRun(t testing.TB, g *graph.Graph, input []float32) []float32 {
	t.Helper()
	be, err := backend.ByName("orpheus")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := be.Prepare(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	tin := tensor.New(g.Inputs[0].Shape...)
	copy(tin.Data(), input)
	outs, err := sess.Run(context.Background(), map[string]*tensor.Tensor{g.Inputs[0].Name: tin})
	if err != nil {
		t.Fatal(err)
	}
	return append([]float32(nil), outs[g.Outputs[0].Name].Data()...)
}

func sampleInput(vol int, seed int) []float32 {
	in := make([]float32, vol)
	for i := range in {
		in[i] = float32((i*7+seed*13)%23)*0.1 - 1.1
	}
	return in
}

func volume(shape []int) int {
	v := 1
	for _, s := range shape {
		v *= s
	}
	return v
}

func argmax(v []float32) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// TestPipelineEqualityTiny pins the core contract on a small model:
// outputs through 2- and 3-stage pipelines equal single-process outputs
// at tolerance 0, across several distinct inputs.
func TestPipelineEqualityTiny(t *testing.T) {
	g := stageModel(t, "tiny-eq")
	vol := volume(g.Inputs[0].Shape)
	for _, stages := range []int{2, 3} {
		t.Run(fmt.Sprintf("%d-stage", stages), func(t *testing.T) {
			_, addrs := startStages(t, g, stages, nil)
			p, err := Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = p.Close() })
			for seed := 0; seed < 4; seed++ {
				input := sampleInput(vol, seed)
				want := refRun(t, g, input)
				got, err := p.Predict(context.Background(), input)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("output length %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d: output[%d] = %v, want %v (tolerance 0)", seed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestPipelineInt8Wire pins the quantized transport: boundary
// activations cross as u8 frames and the pipeline's top-1 class agrees
// with single-process fp32.
func TestPipelineInt8Wire(t *testing.T) {
	g := stageModel(t, "tiny-int8")
	vol := volume(g.Inputs[0].Shape)
	_, addrs := startStages(t, g, 2, func(i int, cfg *Config) { cfg.Int8Wire = true })
	p, err := Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	for seed := 0; seed < 4; seed++ {
		input := sampleInput(vol, seed)
		want := refRun(t, g, input)
		got, err := p.Predict(context.Background(), input)
		if err != nil {
			t.Fatal(err)
		}
		if argmax(got) != argmax(want) {
			t.Fatalf("seed %d: int8-wire top-1 %d, fp32 top-1 %d", seed, argmax(got), argmax(want))
		}
	}
}

// TestPipelineEqualityZoo is the acceptance battery: every zoo model,
// split two ways, must produce single-process outputs at tolerance 0
// over fp32 frames and top-1-equal outputs over int8 frames.
func TestPipelineEqualityZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo equality battery is slow; run without -short")
	}
	for _, name := range zoo.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := zoo.Build(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			vol := volume(g.Inputs[0].Shape)
			input := sampleInput(vol, 3)
			want := refRun(t, g, input)

			_, addrs := startStages(t, g, 2, nil)
			p, err := Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs})
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Predict(context.Background(), input)
			if err != nil {
				t.Fatal(err)
			}
			_ = p.Close()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fp32 output[%d] = %v, want %v (tolerance 0)", i, got[i], want[i])
				}
			}

			_, addrs = startStages(t, g, 2, func(i int, cfg *Config) { cfg.Int8Wire = true })
			p, err = Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs})
			if err != nil {
				t.Fatal(err)
			}
			got, err = p.Predict(context.Background(), input)
			if err != nil {
				t.Fatal(err)
			}
			_ = p.Close()
			if argmax(got) != argmax(want) {
				t.Fatalf("int8-wire top-1 %d, fp32 top-1 %d", argmax(got), argmax(want))
			}
		})
	}
}

// TestPipelineOverlap pins the point of the pipeline: with one op per
// stage slowed by an injected delay (so compute dominates and stages
// are balanced), depth ≥ nstages must beat depth 1 by a clear margin —
// the stages genuinely overlap rather than taking turns.
func TestPipelineOverlap(t *testing.T) {
	g := stageModel(t, "tiny-overlap")
	vol := volume(g.Inputs[0].Shape)
	servers, addrs := startStages(t, g, 3, nil)
	// Balance the stages by construction: each stage owns exactly one of
	// these ops (conv1 / fc / prob), so every request costs one 10ms
	// delay per stage and the ideal overlap is ~3x.
	delayOps := []string{"Conv", "Dense", "Softmax"}
	for i, s := range servers {
		s.Plan().SetFault(faultinject.New(1, &faultinject.Rule{
			Op: delayOps[i], Action: faultinject.ActDelay, Delay: 10 * time.Millisecond,
		}))
	}
	input := sampleInput(vol, 1)
	const n = 12

	run := func(depth int, concurrent bool) time.Duration {
		p, err := Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if _, err := p.Predict(context.Background(), input); err != nil { // warm the links
			t.Fatal(err)
		}
		start := time.Now()
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := p.Predict(context.Background(), input); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < n; i++ {
				if _, err := p.Predict(context.Background(), input); err != nil {
					t.Fatal(err)
				}
			}
		}
		return time.Since(start)
	}

	sequential := run(1, false)
	overlapped := run(6, true)
	// Three roughly balanced stages give ~3× steady-state headroom;
	// require 1.5× so the assertion survives loaded CI boxes.
	if overlapped >= sequential*2/3 {
		t.Fatalf("depth 6 took %v vs %v at depth 1 — stages do not overlap", overlapped, sequential)
	}
	t.Logf("sequential %v, overlapped %v (%.1fx)", sequential, overlapped,
		float64(sequential)/float64(overlapped))
	for i, s := range servers {
		if got := s.Stats().Processed; got < int64(n) {
			t.Fatalf("stage %d processed %d requests, want ≥ %d", i, got, n)
		}
	}
}

// TestPipelineStressRace hammers a 3-stage pipeline with concurrent
// submits while the middle stage panics probabilistically and both
// driver links get severed mid-flight. Every request must resolve — an
// output or a typed error — with no deadlock and no race (-race pins
// the latter).
func TestPipelineStressRace(t *testing.T) {
	g := stageModel(t, "tiny-stress")
	vol := volume(g.Inputs[0].Shape)
	servers, addrs := startStages(t, g, 3, func(i int, cfg *Config) {
		cfg.StageTimeout = 5 * time.Second
	})
	// The middle stage panics on ~10% of its conv steps.
	servers[1].Plan().SetFault(faultinject.New(7, &faultinject.Rule{
		Op: "Conv", Probability: 0.1, Action: faultinject.ActPanic,
	}))
	p, err := Dial(context.Background(), PipelineConfig{
		Model: g.Name, Addrs: addrs, Depth: 6, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })

	const workers, perWorker = 8, 15
	var ok, remote, transport atomic64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				input := sampleInput(vol, w*perWorker+i)
				_, err := p.Predict(context.Background(), input)
				switch {
				case err == nil:
					ok.add(1)
				case errors.Is(err, ErrRemote):
					remote.add(1)
					var re *RemoteError
					if !errors.As(err, &re) || re.Shard != 1 || re.Code != "panic" {
						t.Errorf("remote error not attributed to stage 1 panic: %v", err)
					}
				case errors.Is(err, ErrPeerClosed) || errors.Is(err, ErrDraining) || errors.Is(err, context.DeadlineExceeded):
					transport.add(1)
				default:
					t.Errorf("untyped pipeline error: %v", err)
				}
			}
		}()
	}
	// Sever both driver links mid-stress; send() and recvLoop must
	// reconnect and later requests succeed.
	time.Sleep(50 * time.Millisecond)
	p.mu.Lock()
	if p.feed != nil {
		_ = p.feed.c.Close()
	}
	if p.collect != nil {
		_ = p.collect.c.Close()
	}
	p.mu.Unlock()
	wg.Wait()

	if ok.load() == 0 {
		t.Fatal("no request succeeded under fault injection")
	}
	if remote.load() == 0 {
		t.Fatal("injected panics never surfaced as remote errors")
	}
	t.Logf("ok=%d remote=%d transport=%d reconnects=%d quarantined stage1=%d",
		ok.load(), remote.load(), transport.load(), p.Stats().Reconnects, servers[1].Stats().Errors)
}

// atomic64 is a tiny counter wrapper keeping the stress test readable.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestHandshakeRejections drives the pairing rules: wrong model, wrong
// stage count, wrong version and a collect against a non-terminal stage
// must all be refused with a handshake error naming the cause.
func TestHandshakeRejections(t *testing.T) {
	g := stageModel(t, "tiny-hs")
	_, addrs := startStages(t, g, 2, nil)
	cases := []struct {
		name string
		h    hello
		addr string
	}{
		{"wrong-model", hello{Version: ProtocolVersion, Model: "other", Role: "feed", Count: 2}, addrs[0]},
		{"wrong-count", hello{Version: ProtocolVersion, Model: g.Name, Role: "feed", Count: 3}, addrs[0]},
		{"wrong-version", hello{Version: 99, Model: g.Name, Role: "feed", Count: 2}, addrs[0]},
		{"bad-role", hello{Version: ProtocolVersion, Model: g.Name, Role: "observe", Count: 2}, addrs[0]},
		{"collect-on-nonterminal", hello{Version: ProtocolVersion, Model: g.Name, Role: "collect", Count: 2}, addrs[0]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := net.Dial("tcp", tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			fc := newFrameConn(c, 0)
			h := tc.h
			if err := handshake(fc, &h, nil); !errors.Is(err, ErrHandshake) {
				t.Fatalf("handshake error = %v, want ErrHandshake", err)
			}
		})
	}
	// And the happy path still works after all those refusals.
	p, err := Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
}

// TestPipelineDrain pins graceful shutdown: Close refuses new work with
// ErrDraining and in-flight requests resolve.
func TestPipelineDrain(t *testing.T) {
	g := stageModel(t, "tiny-drain")
	vol := volume(g.Inputs[0].Shape)
	_, addrs := startStages(t, g, 2, nil)
	p, err := Dial(context.Background(), PipelineConfig{Model: g.Name, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(context.Background(), sampleInput(vol, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(context.Background(), sampleInput(vol, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Predict error = %v, want ErrDraining", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestFrameValidation pins the frame layer's canonical-encoding rules.
func TestFrameValidation(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	fc := newFrameConn(server, 1024)
	errCh := make(chan error, 1)
	readOne := func() error {
		_, _, err := fc.readFrame()
		return err
	}
	// Bad magic.
	go func() { errCh <- readOne() }()
	_, _ = client.Write([]byte{'X', 'R', 'P', 'F', 1, 0, 0, 0, 0, 0, 0, 0})
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad magic error = %v, want ErrProtocol", err)
	}
}
