package orpheus

// Kernel-vs-kernel benchmarks behind BENCH_pr3.json: the same GEMM Call
// and the same models executed under every selectable micro-kernel
// (gemm.KernelNames: the pure-Go fallback plus the SIMD kernels this CPU
// dispatches to). Everything above the micro-kernel is identical across
// sub-benchmarks, so ns/op ratios isolate the kernel itself. CI records
// both families, plus BenchmarkBatch, into BENCH_pr3.json via
// cmd/orpheus-benchjson.
//
//	go test -run '^$' -bench 'BenchmarkKernel' -benchmem .

import (
	"context"
	"fmt"
	"testing"

	"orpheus/internal/backend"
	"orpheus/internal/gemm"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// restoreKernel returns a cleanup restoring the current kernel selection.
func restoreKernel(b *testing.B) func() {
	prev := gemm.KernelName()
	return func() {
		if err := gemm.SetKernel(prev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelGEMM times one production-shaped GEMM (prepacked constant
// A, overwrite semantics, single worker) per micro-kernel. SetBytes
// reports 2·M·N·K "bytes" so the MB/s column reads as FLOP/s.
func BenchmarkKernelGEMM(b *testing.B) {
	defer restoreKernel(b)()
	shapes := []struct{ m, n, k int }{
		{64, 256, 576},   // wrn-40-2 mid 3x3 conv GEMM
		{128, 784, 64},   // mobilenet pointwise
		{256, 256, 256},  // square reference
		{64, 12544, 576}, // resnet-ish wide conv
	}
	for _, sh := range shapes {
		r := tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("kb-%d-%d-%d", sh.m, sh.n, sh.k)))
		a := make([]float32, sh.m*sh.k)
		for i := range a {
			a[i] = r.Uniform(-1, 1)
		}
		bb := make([]float32, sh.k*sh.n)
		for i := range bb {
			bb[i] = r.Uniform(-1, 1)
		}
		c := make([]float32, sh.m*sh.n)
		for _, kn := range gemm.KernelNames() {
			b.Run(fmt.Sprintf("%dx%dx%d/%s", sh.m, sh.n, sh.k, kn), func(b *testing.B) {
				if err := gemm.SetKernel(kn); err != nil {
					b.Fatal(err)
				}
				// Prepack under the kernel that will consume the panels.
				pa := gemm.PrepackA(a, sh.m, sh.k)
				call := gemm.Call{PackedA: pa, B: bb, C: c, M: sh.m, N: sh.n, K: sh.k, Store: true}
				var ctx gemm.Context
				ctx.Run(call) // warm-up grows packing scratch
				b.SetBytes(2 * int64(sh.m) * int64(sh.n) * int64(sh.k))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx.Run(call)
				}
			})
		}
	}
}

// BenchmarkKernelModel times one full single-sample inference per
// micro-kernel for the two PR-trajectory models. The plan is rebuilt under
// each kernel so the constant-weight prepack cache carries that kernel's
// panel geometry — exactly what a process restart under
// ORPHEUS_GEMM_KERNEL would produce.
func BenchmarkKernelModel(b *testing.B) {
	defer restoreKernel(b)()
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		g := cachedModel(b, model)
		for _, kn := range gemm.KernelNames() {
			b.Run(model+"/"+kn, func(b *testing.B) {
				if err := gemm.SetKernel(kn); err != nil {
					b.Fatal(err)
				}
				be, err := backend.ByName("orpheus")
				if err != nil {
					b.Fatal(err)
				}
				plan, err := be.Prepare(g, 1)
				if err != nil {
					b.Fatal(err)
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
				in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil { // warm-up packs weights
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConvImplicit times full single-sample inference with the GEMM
// convolution path flipped between the production implicit form
// (conv.im2col: virtual B-pack + fused epilogue) and the explicit form
// (conv.im2col_explicit: materialised kdim×cols unfold, separate
// bias/activation sweeps) — the PR-5 before/after pair behind
// BENCH_pr5.json. The scratch-B/run metric reports the per-session kernel
// scratch footprint, which carries the unfold buffers the implicit path
// deletes.
func BenchmarkConvImplicit(b *testing.B) {
	for _, model := range []string{"wrn-40-2", "resnet-18", "mobilenet-v1"} {
		g := cachedModel(b, model)
		for _, kernel := range []string{"conv.im2col", "conv.im2col_explicit"} {
			label := "implicit"
			if kernel == "conv.im2col_explicit" {
				label = "explicit"
			}
			b.Run(model+"/"+label, func(b *testing.B) {
				work := g.Clone()
				if err := work.Finalize(); err != nil {
					b.Fatal(err)
				}
				if _, err := passes.Default().Run(work); err != nil {
					b.Fatal(err)
				}
				plan, err := runtime.Compile(work, runtime.Options{
					Policy: &backend.PreferencePolicy{
						PolicyName: "bench-" + label,
						Prefs: map[string][]string{
							"Conv":  {"conv.depthwise", kernel},
							"Dense": {"dense.gemm"},
						},
					},
					Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, work.Inputs[0].Shape...)
				in := map[string]*tensor.Tensor{work.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil { // warm-up packs weights
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(sess.CtxScratchBytes()), "scratch-B/run")
			})
		}
	}
}
