package tensor

import "math"

// DefaultTolerance is the absolute+relative tolerance used by tests and the
// cross-kernel equivalence checks when no explicit tolerance is given.
// Float32 convolution reductions over thousands of terms accumulate error of
// roughly this magnitude.
const DefaultTolerance = 1e-4

// AllClose reports whether a and b have the same shape and every pair of
// elements satisfies |x-y| <= tol + tol*|y|.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		if math.IsNaN(x) || math.IsNaN(y) {
			return false
		}
		if math.Abs(x-y) > tol+tol*math.Abs(y) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference between a
// and b, which must have identical shapes.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.SameShape(b) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// RelError returns ||a-b|| / (||b|| + eps), a scale-free difference measure
// used by the integration tests.
func RelError(a, b *Tensor) float64 {
	if !a.SameShape(b) {
		panic("tensor: RelError shape mismatch")
	}
	var num, den float64
	for i := range a.data {
		d := float64(a.data[i]) - float64(b.data[i])
		num += d * d
		den += float64(b.data[i]) * float64(b.data[i])
	}
	return math.Sqrt(num) / (math.Sqrt(den) + 1e-12)
}

// HasNaN reports whether the tensor contains any NaN or infinity.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}
