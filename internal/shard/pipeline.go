package shard

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PipelineConfig parameterises a driver over a chain of stages.
type PipelineConfig struct {
	// Model must match the model every stage serves.
	Model string
	// Addrs lists the stage addresses in pipeline order; the driver
	// feeds Addrs[0] and collects from Addrs[len-1]. Intermediate hops
	// are stage-to-stage and never touch the driver.
	Addrs []string
	// Depth bounds requests in flight. Stages only overlap when depth is
	// at least the stage count; <=0 means 2×len(Addrs).
	Depth int
	// Timeout bounds one request end to end, on top of the caller's
	// context (<=0: no driver-side deadline).
	Timeout time.Duration
	// DialTimeout bounds each dial attempt (<=0: 5s).
	DialTimeout time.Duration
	// DialBackoff is the initial reconnect backoff, doubling to 32× per
	// retry (<=0: 50ms).
	DialBackoff time.Duration
	// MaxFrame bounds one frame's payload (<=0: DefaultMaxFrame).
	MaxFrame int
}

// PipelineStats is a point-in-time snapshot of driver counters.
type PipelineStats struct {
	// Submitted counts requests accepted by Run.
	Submitted int64
	// Completed counts requests that returned outputs.
	Completed int64
	// Failed counts requests that returned an error.
	Failed int64
	// Reconnects counts feed/collect re-dials after a lost peer.
	Reconnects int64
}

// outcome resolves one in-flight request.
type outcome struct {
	outs map[string][]float32
	err  error
}

// Pipeline is the driver end of a sharded pipeline: it streams
// activation frames into the first stage, receives results from the
// last, and keeps up to Depth requests in flight so every stage
// computes concurrently. Run is safe for concurrent callers.
type Pipeline struct {
	cfg PipelineConfig
	in  []TensorDesc
	out []TensorDesc

	mu      sync.Mutex
	feed    *frameConn
	collect *frameConn
	pending map[uint64]chan outcome

	seq      atomic.Uint64
	sem      chan struct{}
	inflight atomic.Int64
	closed   atomic.Bool
	quit     chan struct{}
	recv     sync.WaitGroup

	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	reconnects atomic.Int64

	encPool sync.Pool
}

// Dial connects a driver to a stage chain: a feed handshake with the
// first stage (which also reveals the model's input descriptors) and a
// collect handshake with the last. It does not dial intermediate
// stages — those link to each other on demand.
func Dial(ctx context.Context, cfg PipelineConfig) (*Pipeline, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%w: no stage addresses", ErrHandshake)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2 * len(cfg.Addrs)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	p := &Pipeline{
		cfg:     cfg,
		pending: make(map[uint64]chan outcome),
		sem:     make(chan struct{}, cfg.Depth),
		quit:    make(chan struct{}),
	}
	feed, w, err := p.dialStage(ctx, cfg.Addrs[0], "feed")
	if err != nil {
		return nil, err
	}
	p.feed = feed
	p.in = w.Inputs
	collect, wc, err := p.dialStage(ctx, cfg.Addrs[len(cfg.Addrs)-1], "collect")
	if err != nil {
		_ = feed.Close()
		return nil, err
	}
	p.collect = collect
	p.out = wc.Outputs
	p.recv.Add(1)
	go p.recvLoop()
	return p, nil
}

// Inputs returns the model's input descriptors, learned from the first
// stage's welcome.
func (p *Pipeline) Inputs() []TensorDesc { return p.in }

// Outputs returns the model's output descriptors, learned from the
// terminal stage's welcome.
func (p *Pipeline) Outputs() []TensorDesc { return p.out }

// Stats snapshots the driver counters.
func (p *Pipeline) Stats() PipelineStats {
	return PipelineStats{
		Submitted:  p.submitted.Load(),
		Completed:  p.completed.Load(),
		Failed:     p.failed.Load(),
		Reconnects: p.reconnects.Load(),
	}
}

// dialStage dials one stage and handshakes in the given role.
func (p *Pipeline) dialStage(ctx context.Context, addr, role string) (*frameConn, *welcome, error) {
	d := net.Dialer{Timeout: p.cfg.DialTimeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: dialing %s: %v", ErrPeerClosed, addr, err)
	}
	fc := newFrameConn(c, p.cfg.MaxFrame)
	h := hello{
		Version: ProtocolVersion, Model: p.cfg.Model, Role: role,
		Shard: -1, Count: len(p.cfg.Addrs),
	}
	var w welcome
	if err := handshake(fc, &h, &w); err != nil {
		_ = fc.Close()
		return nil, nil, err
	}
	return fc, &w, nil
}

// Run executes one request through the pipeline: inputs keyed by the
// model's input names, outputs keyed by its output names (both per
// Inputs/Outputs). It blocks while Depth requests are already in
// flight — that bound, not the caller's concurrency, sets the pipeline
// occupancy.
func (p *Pipeline) Run(ctx context.Context, inputs map[string][]float32) (map[string][]float32, error) {
	if p.closed.Load() {
		return nil, ErrDraining
	}
	if p.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.Timeout)
		defer cancel()
	}
	tensors := make([][]float32, len(p.in))
	shapes := make([][]int, len(p.in))
	for i, d := range p.in {
		data, ok := inputs[d.Name]
		if !ok {
			return nil, fmt.Errorf("shard: missing input %q", d.Name)
		}
		vol := 1
		for _, s := range d.Shape {
			vol *= s
		}
		if len(data) != vol {
			return nil, fmt.Errorf("shard: input %q has %d values, want %d", d.Name, len(data), vol)
		}
		tensors[i] = data
		shapes[i] = d.Shape
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.quit:
		return nil, ErrDraining
	}
	p.inflight.Add(1)
	defer func() {
		<-p.sem
		p.inflight.Add(-1)
	}()

	seq := p.seq.Add(1)
	ch := make(chan outcome, 1)
	p.mu.Lock()
	p.pending[seq] = ch
	p.mu.Unlock()
	p.submitted.Add(1)
	defer func() {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
	}()

	enc, _ := p.encPool.Get().([]byte)
	enc, _ = appendActivations(enc[:0], seq, tensors, shapes, false, nil)
	err := p.send(ctx, enc)
	p.encPool.Put(enc) //nolint:staticcheck // slice reuse, value semantics are fine here
	if err != nil {
		p.failed.Add(1)
		return nil, err
	}

	select {
	case out := <-ch:
		if out.err != nil {
			p.failed.Add(1)
			return nil, out.err
		}
		p.completed.Add(1)
		return out.outs, nil
	case <-ctx.Done():
		p.failed.Add(1)
		return nil, ctx.Err()
	case <-p.quit:
		p.failed.Add(1)
		return nil, ErrDraining
	}
}

// Predict is the single-input single-output convenience over Run.
func (p *Pipeline) Predict(ctx context.Context, input []float32) ([]float32, error) {
	if len(p.in) != 1 || len(p.out) != 1 {
		return nil, fmt.Errorf("shard: Predict needs exactly one input and output, model has %d/%d (use Run)",
			len(p.in), len(p.out))
	}
	outs, err := p.Run(ctx, map[string][]float32{p.in[0].Name: input})
	if err != nil {
		return nil, err
	}
	return outs[p.out[0].Name], nil
}

// send writes one activation frame to the feed stage, re-dialing with
// backoff on a lost connection until the context expires.
func (p *Pipeline) send(ctx context.Context, frame []byte) error {
	backoff := p.cfg.DialBackoff
	for {
		p.mu.Lock()
		fc := p.feed
		p.mu.Unlock()
		if fc != nil {
			if err := fc.writeFrame(ftActivations, frame); err == nil {
				return nil
			}
			p.mu.Lock()
			if p.feed == fc {
				p.feed = nil
			}
			p.mu.Unlock()
			_ = fc.Close()
		}
		if p.closed.Load() {
			return ErrDraining
		}
		nfc, w, err := p.dialStage(ctx, p.cfg.Addrs[0], "feed")
		if err == nil {
			if !descsEqual(w.Inputs, p.in) {
				_ = nfc.Close()
				return fmt.Errorf("%w: stage inputs changed across reconnect", ErrHandshake)
			}
			p.reconnects.Add(1)
			p.mu.Lock()
			p.feed = nfc
			p.mu.Unlock()
			continue
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: feed stage unreachable: %v", ErrPeerClosed, ctx.Err())
		case <-p.quit:
			return ErrDraining
		case <-time.After(backoff):
		}
		if backoff < 32*p.cfg.DialBackoff {
			backoff *= 2
		}
	}
}

// recvLoop owns the collect connection: it dispatches result and error
// frames to their pending requests by sequence id, and re-dials with
// backoff when the terminal stage drops the link. Requests in flight
// across a drop fail with ErrPeerClosed — the frames that would have
// resolved them may be gone with the connection.
func (p *Pipeline) recvLoop() {
	defer p.recv.Done()
	for {
		p.mu.Lock()
		fc := p.collect
		p.mu.Unlock()
		if fc == nil {
			if !p.redialCollect() {
				return
			}
			continue
		}
		ft, payload, err := fc.readFrame()
		if err != nil {
			p.mu.Lock()
			if p.collect == fc {
				p.collect = nil
			}
			p.mu.Unlock()
			_ = fc.Close()
			if p.closed.Load() {
				return
			}
			p.failPending(fmt.Errorf("%w: collect link lost: %v", ErrPeerClosed, err))
			continue
		}
		switch ft {
		case ftResult:
			seq, outs, derr := p.decodeResult(payload)
			if derr != nil {
				// A result that fails to decode means the payload — and
				// its sequence id — can't be trusted: drop the link and
				// re-handshake rather than resolve the wrong request.
				p.mu.Lock()
				if p.collect == fc {
					p.collect = nil
				}
				p.mu.Unlock()
				_ = fc.Close()
				p.failPending(fmt.Errorf("%w: undecodable result: %v", ErrProtocol, derr))
				continue
			}
			p.deliver(seq, outcome{outs: outs})
		case ftError:
			seq, re, derr := decodeError(payload)
			if derr != nil {
				continue
			}
			p.deliver(seq, outcome{err: re})
		case ftDrain:
			// The terminal stage is going away; pending requests will
			// resolve or fail when the connection actually drops.
		}
	}
}

// redialCollect re-establishes the collect link, backing off between
// attempts. Returns false when the pipeline closed instead.
func (p *Pipeline) redialCollect() bool {
	backoff := p.cfg.DialBackoff
	for {
		if p.closed.Load() {
			return false
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.DialTimeout)
		fc, w, err := p.dialStage(ctx, p.cfg.Addrs[len(p.cfg.Addrs)-1], "collect")
		cancel()
		if err == nil {
			if !descsEqual(w.Outputs, p.out) {
				_ = fc.Close()
				p.failPending(fmt.Errorf("%w: stage outputs changed across reconnect", ErrHandshake))
				return false
			}
			p.reconnects.Add(1)
			p.mu.Lock()
			p.collect = fc
			p.mu.Unlock()
			return true
		}
		select {
		case <-p.quit:
			return false
		case <-time.After(backoff):
		}
		if backoff < 32*p.cfg.DialBackoff {
			backoff *= 2
		}
	}
}

// decodeResult parses a result frame into freshly allocated output
// slices keyed by output name.
func (p *Pipeline) decodeResult(payload []byte) (uint64, map[string][]float32, error) {
	dst := make([][]float32, len(p.out))
	outs := make(map[string][]float32, len(p.out))
	for i, d := range p.out {
		vol := 1
		for _, s := range d.Shape {
			vol *= s
		}
		dst[i] = make([]float32, vol)
		outs[d.Name] = dst[i]
	}
	seq, err := decodeActivations(payload, p.out, dst)
	if err != nil {
		return seq, nil, err
	}
	return seq, outs, nil
}

// deliver resolves the pending request for seq, dropping frames whose
// request already gave up (deadline, cancel).
func (p *Pipeline) deliver(seq uint64, out outcome) {
	p.mu.Lock()
	ch := p.pending[seq]
	delete(p.pending, seq)
	p.mu.Unlock()
	if ch != nil {
		ch <- out
	}
}

// failPending resolves every in-flight request with err.
func (p *Pipeline) failPending(err error) {
	p.mu.Lock()
	chans := make([]chan outcome, 0, len(p.pending))
	for seq, ch := range p.pending {
		chans = append(chans, ch)
		delete(p.pending, seq)
	}
	p.mu.Unlock()
	for _, ch := range chans {
		ch <- outcome{err: err}
	}
}

// Close drains the driver: new Runs are refused, in-flight requests get
// up to 5 seconds to resolve, then the stage links close. Safe to call
// more than once.
func (p *Pipeline) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	p.mu.Lock()
	if p.feed != nil {
		_ = p.feed.writeFrame(ftDrain, nil)
	}
	for _, fc := range []*frameConn{p.feed, p.collect} {
		if fc != nil {
			_ = fc.Close()
		}
	}
	p.feed, p.collect = nil, nil
	p.mu.Unlock()
	close(p.quit)
	p.failPending(ErrDraining)
	p.recv.Wait()
	return nil
}
