package gemm

import (
	"testing"
	"testing/quick"

	"orpheus/internal/tensor"
)

func randMat(r *tensor.RNG, m, n int) []float32 {
	d := make([]float32, m*n)
	for i := range d {
		d[i] = r.Uniform(-1, 1)
	}
	return d
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func TestNaiveIdentity(t *testing.T) {
	// A · I = A.
	const n = 7
	r := tensor.NewRNG(1)
	a := randMat(r, n, n)
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]float32, n*n)
	Naive(a, id, c, n, n, n)
	if maxDiff(a, c) != 0 {
		t.Fatal("A*I != A")
	}
}

func TestNaiveKnownValues(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	Naive(a, b, c, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestNaiveAccumulates(t *testing.T) {
	a := []float32{1}
	b := []float32{2}
	c := []float32{10}
	Naive(a, b, c, 1, 1, 1)
	if c[0] != 12 {
		t.Fatalf("GEMM should accumulate into C: got %v", c[0])
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized buffer did not panic")
		}
	}()
	Naive(make([]float32, 3), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func TestBlockedMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {64, 64, 64}, {65, 33, 129}, {128, 200, 96}} {
		m, n, k := dims[0], dims[1], dims[2]
		r := tensor.NewRNG(uint64(m*n + k))
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Naive(a, b, want, m, n, k)
		Blocked(a, b, got, m, n, k)
		if d := maxDiff(want, got); d > 1e-4 {
			t.Fatalf("Blocked differs from Naive for %v: %v", dims, d)
		}
	}
}

func TestPackedMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {4, 8, 4}, {5, 9, 3}, {64, 64, 64}, {63, 65, 127}, {130, 258, 300}, {200, 12, 500}} {
		m, n, k := dims[0], dims[1], dims[2]
		r := tensor.NewRNG(uint64(1000 + m + n + k))
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Naive(a, b, want, m, n, k)
		Packed(a, b, got, m, n, k)
		if d := maxDiff(want, got); d > 1e-3 {
			t.Fatalf("Packed differs from Naive for %v: %v", dims, d)
		}
	}
}

func TestPackedContextReuse(t *testing.T) {
	var ctx Context
	r := tensor.NewRNG(9)
	for trial := 0; trial < 3; trial++ {
		m, n, k := 33+trial, 47+trial, 29+trial
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Naive(a, b, want, m, n, k)
		ctx.Packed(a, b, got, m, n, k)
		if d := maxDiff(want, got); d > 1e-3 {
			t.Fatalf("trial %d: context-reused Packed differs: %v", trial, d)
		}
	}
}

func TestPackedZeroDims(t *testing.T) {
	// Must not panic or write anything.
	Packed(nil, nil, nil, 0, 5, 3)
	Packed(nil, nil, nil, 4, 0, 3)
	c := []float32{1, 2, 3, 4}
	Packed(nil, nil, c, 2, 2, 0)
	if c[0] != 1 || c[3] != 4 {
		t.Fatal("k=0 GEMM should leave C unchanged")
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		m, n, k := 97, 83, 61
		r := tensor.NewRNG(uint64(workers))
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Naive(a, b, want, m, n, k)
		Parallel(a, b, got, m, n, k, workers)
		if d := maxDiff(want, got); d > 1e-3 {
			t.Fatalf("Parallel(%d) differs from Naive: %v", workers, d)
		}
	}
}

func TestParallelMoreWorkersThanRows(t *testing.T) {
	m, n, k := 3, 4, 5
	r := tensor.NewRNG(77)
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	want := make([]float32, m*n)
	got := make([]float32, m*n)
	Naive(a, b, want, m, n, k)
	Parallel(a, b, got, m, n, k, 16)
	if d := maxDiff(want, got); d > 1e-4 {
		t.Fatalf("tiny Parallel differs: %v", d)
	}
}

func TestPropPackedAssociativeWithScaling(t *testing.T) {
	// (sA)·B == s(A·B) for the packed kernel.
	f := func(seed uint64, sb uint8) bool {
		s := float32(sb%7) + 1
		m, n, k := 17, 23, 19
		r := tensor.NewRNG(seed)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		sa := make([]float32, len(a))
		for i := range a {
			sa[i] = s * a[i]
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		Packed(sa, b, c1, m, n, k)
		Packed(a, b, c2, m, n, k)
		for i := range c2 {
			c2[i] *= s
		}
		return maxDiff(c1, c2) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPackedDistributes(t *testing.T) {
	// A·(B+C) == A·B + A·C.
	f := func(seed uint64) bool {
		m, n, k := 13, 11, 9
		r := tensor.NewRNG(seed)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		c := randMat(r, k, n)
		bc := make([]float32, k*n)
		for i := range bc {
			bc[i] = b[i] + c[i]
		}
		lhs := make([]float32, m*n)
		Packed(a, bc, lhs, m, n, k)
		rhs := make([]float32, m*n)
		Packed(a, b, rhs, m, n, k)
		Packed(a, c, rhs, m, n, k)
		return maxDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
