package gemm

import "sync"

// Parallel computes C += A·B splitting rows of A across workers goroutines,
// each using its own packing Context. workers <= 1 degenerates to the
// single-threaded packed implementation.
//
// Orpheus experiments default to one worker to match the paper's
// single-core HiKey 970 evaluation, but the runtime exposes this knob.
func Parallel(a, b, c []float32, m, n, k, workers int) {
	validate(a, b, c, m, n, k)
	if workers <= 1 || m < 2*mr {
		var ctx Context
		ctx.Packed(a, b, c, m, n, k)
		return
	}
	if workers > m {
		workers = m
	}
	// Split on micro-tile boundaries so no two workers share a C row.
	rowsPer := (m/workers + mr - 1) / mr * mr
	if rowsPer == 0 {
		rowsPer = mr
	}
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += rowsPer {
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var ctx Context
			ctx.Packed(a[lo*k:hi*k], b, c[lo*n:hi*n], hi-lo, n, k)
		}(lo, hi)
	}
	wg.Wait()
}
