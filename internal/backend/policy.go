// Package backend defines execution backends: named bundles of a
// kernel-selection policy plus runtime options. This is the seam the paper
// describes for integrating "different backends such as OpenCL kernels or
// third party libraries" — a backend only has to register kernels and a
// policy.
//
// Besides the native Orpheus backends, the package provides simulations of
// the comparator frameworks from the paper's evaluation (TVM, PyTorch,
// DarkNet, TF-Lite). Each emulates the characteristic algorithmic choices
// the paper credits for that framework's performance profile — spatial-pack
// convolution for TVM, per-group im2col depthwise plus per-call allocation
// for PyTorch, direct convolution for DarkNet, mandatory multi-threading
// for TF-Lite. No artificial delays are injected anywhere: every
// performance difference comes from executing different real code.
package backend

import (
	"fmt"
	"strings"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/runtime"
)

// PreferencePolicy selects the first kernel in an ordered preference list
// that supports the node, falling back to the op's reference kernel.
type PreferencePolicy struct {
	// PolicyName identifies the policy in reports.
	PolicyName string
	// Prefs maps op type to kernel names in preference order.
	Prefs map[string][]string
}

// Name implements runtime.Policy.
func (p *PreferencePolicy) Name() string { return p.PolicyName }

// Select implements runtime.Policy.
func (p *PreferencePolicy) Select(n *graph.Node) (ops.Kernel, error) {
	for _, name := range p.Prefs[n.Op] {
		k := ops.ByName(name)
		if k == nil {
			return nil, fmt.Errorf("backend %s: preference lists unknown kernel %q", p.PolicyName, name)
		}
		if k.Op() == n.Op && k.Supports(n) {
			return k, nil
		}
	}
	return runtime.ReferencePolicy{}.Select(n)
}

// HeuristicPolicy picks convolution kernels by layer geometry, the way the
// Orpheus paper describes its runtime choosing implementations per layer:
// dedicated depthwise path; spatial-pack for small GEMM-equivalent
// matrices where packing overhead dominates; packed-GEMM im2col otherwise.
type HeuristicPolicy struct {
	// SmallGemmThreshold is the M*N*K product below which spatial pack is
	// preferred. The default (DefaultSmallGemmThreshold) was chosen from
	// the conv-sweep ablation (experiment A1).
	SmallGemmThreshold int64
}

// DefaultSmallGemmThreshold is the crossover point measured by the A1
// sweep on the development machine.
const DefaultSmallGemmThreshold = 1 << 21 // ~2.1e6 MACs

// Name implements runtime.Policy.
func (p *HeuristicPolicy) Name() string { return "heuristic" }

// Select implements runtime.Policy.
func (p *HeuristicPolicy) Select(n *graph.Node) (ops.Kernel, error) {
	if n.Op != "Conv" {
		return (&PreferencePolicy{PolicyName: "heuristic", Prefs: nativePrefs}).Select(n)
	}
	// NHWC nodes (layout-converted plans) have their own kernel pair;
	// these reject NCHW nodes, so the checks cost nothing otherwise.
	if k := ops.ByName("conv.depthwise_nhwc"); k.Supports(n) {
		return k, nil
	}
	if k := ops.ByName("conv.im2col_nhwc"); k.Supports(n) {
		return k, nil
	}
	if k := ops.ByName("conv.depthwise"); k.Supports(n) {
		return k, nil
	}
	threshold := p.SmallGemmThreshold
	if threshold <= 0 {
		threshold = DefaultSmallGemmThreshold
	}
	// flops = 2*M*N*K of the equivalent GEMM.
	if sp := ops.ByName("conv.spatialpack"); sp.Supports(n) && ops.NodeFlops(n) < 2*threshold {
		return sp, nil
	}
	if k := ops.ByName("conv.im2col"); k.Supports(n) {
		return k, nil
	}
	return runtime.ReferencePolicy{}.Select(n)
}

// nativePrefs is the non-conv preference table shared by the Orpheus
// policies.
var nativePrefs = map[string][]string{
	"Dense": {"dense.gemm"},
}

// KernelSummary formats which kernel each op resolves to under a policy,
// for plan listings ("conv.im2col x12, conv.depthwise x13, ...").
func KernelSummary(steps []runtime.PlannedStep) string {
	counts := map[string]int{}
	var order []string
	for _, st := range steps {
		if counts[st.Kernel] == 0 {
			order = append(order, st.Kernel)
		}
		counts[st.Kernel]++
	}
	parts := make([]string, len(order))
	for i, k := range order {
		parts[i] = fmt.Sprintf("%s×%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}
