// Package zoo constructs the five DNN models of the paper's Figure 2 —
// WRN-40-2, MobileNetV1, ResNet-18, Inception-v3 and ResNet-50 — as
// Orpheus graphs with deterministic synthetic weights.
//
// The paper evaluates pre-trained models exported to ONNX; inference time
// does not depend on weight values, so synthetic He-initialised weights
// (seeded per tensor name) preserve the measured behaviour while keeping
// the repository self-contained. The ONNX exporter/importer round-trips
// these graphs to exercise the paper's model-loading path.
package zoo

import (
	"fmt"

	"orpheus/internal/graph"
	_ "orpheus/internal/ops" // register operator shape functions
	"orpheus/internal/tensor"
)

// netBuilder accumulates layers into a graph, deferring error handling so
// model definitions read like architecture descriptions. The first error
// sticks and surfaces from finish().
type netBuilder struct {
	g     *graph.Graph
	model string
	err   error
}

func newNet(model string) *netBuilder {
	return &netBuilder{g: graph.New(model), model: model}
}

// rng returns a deterministic generator for the named parameter.
func (b *netBuilder) rng(name string) *tensor.RNG {
	return tensor.NewRNG(tensor.SeedFromString(b.model + "/" + name))
}

func (b *netBuilder) input(name string, shape []int) *graph.Value {
	if b.err != nil {
		return nil
	}
	v, err := b.g.Input(name, shape)
	b.err = err
	return v
}

func (b *netBuilder) weight(name string, shape ...int) *graph.Value {
	if b.err != nil {
		return nil
	}
	v, err := b.g.Const(name, tensor.HeNormal(b.rng(name), shape...))
	b.err = err
	return v
}

func (b *netBuilder) node(op, name string, attrs graph.Attrs, ins ...*graph.Value) *graph.Value {
	if b.err != nil {
		return nil
	}
	v, err := b.g.Add(op, name, attrs, ins...)
	b.err = err
	return v
}

// conv adds a Conv (no bias; models here follow the conv+BN idiom).
// pad applies symmetrically.
func (b *netBuilder) conv(name string, x *graph.Value, cin, cout, kh, kw, stride, padH, padW, group int) *graph.Value {
	w := b.weight(name+".weight", cout, cin/group, kh, kw)
	return b.node("Conv", name, graph.Attrs{
		"strides": []int{stride, stride},
		"pads":    []int{padH, padW, padH, padW},
		"group":   group,
	}, x, w)
}

// bn adds an inference BatchNorm with plausible running statistics: scale
// near 1, small shifts, variance near 1 — keeps activations in a sane
// range through deep stacks.
func (b *netBuilder) bn(name string, x *graph.Value, c int) *graph.Value {
	if b.err != nil {
		return nil
	}
	r := b.rng(name)
	mk := func(suffix string, lo, hi float32) *graph.Value {
		if b.err != nil {
			return nil
		}
		v, err := b.g.Const(name+suffix, tensor.Rand(r, lo, hi, c))
		b.err = err
		return v
	}
	scale := mk(".scale", 0.8, 1.2)
	beta := mk(".bias", -0.1, 0.1)
	mean := mk(".mean", -0.1, 0.1)
	variance := mk(".var", 0.5, 1.5)
	return b.node("BatchNorm", name, graph.Attrs{"epsilon": 1e-5}, x, scale, beta, mean, variance)
}

func (b *netBuilder) relu(name string, x *graph.Value) *graph.Value {
	return b.node("Relu", name, nil, x)
}

// convBNRelu is the ubiquitous conv → BN → ReLU block.
func (b *netBuilder) convBNRelu(name string, x *graph.Value, cin, cout, k, stride, pad int) *graph.Value {
	c := b.conv(name, x, cin, cout, k, k, stride, pad, pad, 1)
	n := b.bn(name+".bn", c, cout)
	return b.relu(name+".relu", n)
}

func (b *netBuilder) maxPool(name string, x *graph.Value, k, stride, pad int) *graph.Value {
	return b.node("MaxPool", name, graph.Attrs{
		"kernel": []int{k, k}, "strides": []int{stride, stride}, "pads": []int{pad, pad, pad, pad},
	}, x)
}

func (b *netBuilder) avgPool(name string, x *graph.Value, k, stride, pad int) *graph.Value {
	return b.node("AveragePool", name, graph.Attrs{
		"kernel": []int{k, k}, "strides": []int{stride, stride}, "pads": []int{pad, pad, pad, pad},
	}, x)
}

func (b *netBuilder) add(name string, x, y *graph.Value) *graph.Value {
	return b.node("Add", name, nil, x, y)
}

func (b *netBuilder) concat(name string, ins ...*graph.Value) *graph.Value {
	return b.node("Concat", name, graph.Attrs{"axis": 1}, ins...)
}

// classifierHead adds GlobalAveragePool → Flatten → Dense → Softmax.
func (b *netBuilder) classifierHead(x *graph.Value, features, classes int) *graph.Value {
	gap := b.node("GlobalAveragePool", "gap", nil, x)
	flat := b.node("Flatten", "flatten", graph.Attrs{"axis": 1}, gap)
	w := b.weight("fc.weight", classes, features)
	var bias *graph.Value
	if b.err == nil {
		t := tensor.Rand(b.rng("fc.bias"), -0.05, 0.05, classes)
		bias, b.err = b.g.Const("fc.bias", t)
	}
	fc := b.node("Dense", "fc", nil, flat, w, bias)
	return b.node("Softmax", "prob", nil, fc)
}

// finish marks the output and finalises the graph.
func (b *netBuilder) finish(out *graph.Value) (*graph.Graph, error) {
	if b.err != nil {
		return nil, fmt.Errorf("zoo: building %s: %w", b.model, b.err)
	}
	if err := b.g.MarkOutput(out); err != nil {
		return nil, err
	}
	if err := b.g.Finalize(); err != nil {
		return nil, fmt.Errorf("zoo: finalising %s: %w", b.model, err)
	}
	return b.g, nil
}
