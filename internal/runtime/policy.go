// Package runtime executes Orpheus graphs: it selects a kernel for every
// node according to a Policy, plans buffer reuse from value liveness, and
// runs inference with optional per-layer profiling.
package runtime

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
)

// Policy chooses which registered kernel executes a node. Backends
// (internal/backend) supply policies that emulate different frameworks'
// algorithm choices; the default policy picks each op's reference kernel.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the kernel to run for n.
	Select(n *graph.Node) (ops.Kernel, error)
}

// BatchPolicy is an optional Policy extension for batch-aware selection:
// when a plan compiled at MaxBatch runs a smaller batch n, sessions ask
// SelectBatch for the kernel to bind at that batch, with the node's input
// and output shapes recomputed for n (constants keep their static
// shapes). The kernel choice that wins at the planned batch is not
// necessarily the winner at n — packing overheads amortise differently —
// and for quantized tiers the fp32/int8 crossover itself moves with n.
// Implementations must be safe for concurrent use (sessions bind lazily
// from many goroutines) and should fall back to a plain Select-style
// decision on unknown shapes. Errors are advisory: the session keeps the
// plan's compile-time kernel.
type BatchPolicy interface {
	Policy
	SelectBatch(n *graph.Node, batch int, inShapes, outShapes [][]int) (ops.Kernel, error)
}

// Int8Arbiter is implemented by policies that decide between fp32 and
// quantized kernels themselves (the auto-tuner with int8 enabled). When
// Options.Int8 is set and the policy arbitrates, Compile leaves it
// unwrapped; otherwise the policy is wrapped in Int8Policy, which forces
// quantized kernels wherever one supports the node.
type Int8Arbiter interface {
	ArbitratesInt8() bool
}

// Int8Policy prefers quantized kernels: Select returns the first
// registered quantized kernel supporting the node, delegating to Base
// for everything else (ops without a quantized implementation, nodes a
// quantized kernel cannot handle — non-constant weights, depthwise
// convolutions). Compile installs it automatically for Options.Int8.
type Int8Policy struct {
	Base Policy
}

// Name implements Policy.
func (p Int8Policy) Name() string { return p.Base.Name() + "+int8" }

// Select implements Policy.
func (p Int8Policy) Select(n *graph.Node) (ops.Kernel, error) {
	for _, k := range ops.ForOp(n.Op) {
		if ops.IsQuantized(k) && k.Supports(n) {
			return k, nil
		}
	}
	return p.Base.Select(n)
}

// ReferencePolicy selects every op's reference kernel (the simplest
// correct implementation). It is the fallback when no backend is given.
type ReferencePolicy struct{}

// Name implements Policy.
func (ReferencePolicy) Name() string { return "reference" }

// Select implements Policy.
func (ReferencePolicy) Select(n *graph.Node) (ops.Kernel, error) {
	k := ops.Reference(n.Op)
	if k == nil {
		return nil, fmt.Errorf("runtime: no kernel registered for op %q", n.Op)
	}
	if !k.Supports(n) {
		return nil, fmt.Errorf("runtime: reference kernel %q does not support node %q", k.Name(), n.Name)
	}
	return k, nil
}
