// Package serve embeds Orpheus behind an HTTP/JSON API — the deployment
// role the paper assigns to its Python bindings ("embedding in other
// experimental workflows"), done the Go way with net/http. A Server hosts
// one or more compiled sessions and exposes:
//
//	GET  /healthz          liveness
//	GET  /readyz           readiness: drain state and queue saturation
//	GET  /models           loaded models with shapes and footprints
//	POST /predict/{model}  {"input": [...]} → {"output": [...], "topk": ...}
//	POST /profile/{model}  same input → per-layer timing breakdown
//
// Inputs are flat row-major float32 arrays matching one sample of the
// model's input shape; the handler validates length so malformed clients
// get a 400, not a panic. Error statuses are uniform across endpoints and
// derived from the runtime's typed error set with errors.Is (see
// statusFor): unknown model → 404, malformed body or input → 400,
// shed by admission control → 429 with a Retry-After estimate, graceful
// shutdown → 503 with Retry-After, execution failure (including a
// recovered plan-step panic) → 500.
//
// The server degrades instead of falling over: WithQueueDepth bounds each
// model's batching queue, WithMaxInflight caps concurrent executions
// server-wide, WithRequestTimeout bounds execution time (not just queue
// wait), and a plan step that panics fails only its own request — the
// poisoned session is quarantined, never pooled, and the process stays
// up. See docs/SERVE.md ("Overload behaviour").
//
// Servers created with WithMaxBatch(n > 1) batch dynamically: concurrent
// /predict requests to one model are coalesced into a single batched
// Session.Run by a runtime.Batcher (flushing when the batch is full or
// after a small deadline, default 2ms), so under load every packed weight
// panel is read once per batch instead of once per request. Requests can
// cap their own wait with "wait_ms"; each request's queue slot is tied to
// its http.Request context, so a disconnected client is dropped before
// its sample is ever staged. /profile always runs solo, since its
// per-layer timings describe a single inference.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// DefaultFlushDeadline is how long a lone request waits for batch peers
// before the batcher flushes it through on its own.
const DefaultFlushDeadline = runtime.DefaultFlushDeadline

// Entry is one hosted model. Requests are served concurrently: each
// in-flight request (or batch of requests) borrows a session from the
// entry's pool, so N clients hitting one model get private arenas over one
// shared plan (and one shared set of packed weights) instead of queueing
// on a mutex.
type Entry struct {
	Name     string
	Backend  string
	graph    *graph.Graph
	sessions *runtime.SessionPool

	inName   string
	outName  string
	inShape1 []int // input shape of a single sample
	perVol   int   // values per sample
	batcher  *runtime.Batcher
}

// Server hosts compiled models behind an http.Handler.
type Server struct {
	mu      sync.RWMutex
	entries map[string]*Entry

	maxBatch   int
	flush      time.Duration
	flushSet   bool
	queueDepth int
	reqTimeout time.Duration
	int8       bool

	// inflight is the server-wide admission semaphore (nil when
	// WithMaxInflight is unset): each /predict and /profile holds one slot
	// for its execution; a request arriving with no slot free is shed with
	// a 429 instead of stacking another goroutine behind a saturated
	// model.
	inflight chan struct{}

	// draining flips once Close begins; admission then rejects new
	// requests with ErrClosed (→ 503 + Retry-After) so load balancers
	// stop routing to a node that is shutting down.
	draining atomic.Bool

	shed   atomic.Int64 // requests rejected with 429 (queue or in-flight cap)
	panics atomic.Int64 // requests failed by a recovered plan-step panic
}

// Option configures a Server.
type Option func(*Server)

// WithMaxBatch sets the dynamic-batching width: models are compiled for up
// to n samples per run and concurrent /predict requests are coalesced into
// batches of up to n. n <= 1 disables batching (the default).
func WithMaxBatch(n int) Option {
	return func(s *Server) { s.maxBatch = n }
}

// WithFlushDeadline sets how long a pending request waits for batch peers
// before being flushed. Exactly 0 selects immediate-flush mode: every
// request executes as soon as the collector sees it, batched only with
// requests already queued at that instant. Negative values select the
// default (DefaultFlushDeadline).
func WithFlushDeadline(d time.Duration) Option {
	return func(s *Server) { s.flush, s.flushSet = d, true }
}

// WithQueueDepth bounds each model's batching queue: a /predict request
// arriving while n requests are already queued (submitted but not yet
// claimed by a batch) is shed immediately with 429 and a Retry-After
// estimate instead of joining an unbounded goroutine pile-up. n <= 0
// (the default) leaves queues unbounded. Only batching servers
// (WithMaxBatch > 1) have queues; on unbatched servers use
// WithMaxInflight.
func WithQueueDepth(n int) Option {
	return func(s *Server) { s.queueDepth = n }
}

// WithMaxInflight caps concurrent request executions server-wide (both
// /predict and /profile, across all models): requests beyond the cap are
// shed with 429. n <= 0 (the default) disables the limiter.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.inflight = make(chan struct{}, n)
		} else {
			s.inflight = nil
		}
	}
}

// WithRequestTimeout bounds a request's execution time, not just its
// queue wait: solo runs execute under a context deadline enforced at
// plan-step boundaries, and batched runs get the same bound as the
// batcher's RunTimeout. Requests over the deadline fail with
// context.DeadlineExceeded (→ 500). d <= 0 (the default) disables the
// bound.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithInt8 compiles hosted models onto the int8 quantized execution tier
// (see internal/README.md): conv and dense layers run u8×s8 GEMMs with
// plan-time-quantized weights wherever a quantized kernel supports them.
// The wire contract is unchanged — inputs and outputs stay float32 —
// but outputs carry quantization noise relative to an fp32 server.
func WithInt8() Option {
	return func(s *Server) { s.int8 = true }
}

// New returns an empty server.
func New(opts ...Option) *Server {
	s := &Server{entries: make(map[string]*Entry), maxBatch: 1, flush: DefaultFlushDeadline}
	for _, o := range opts {
		o(s)
	}
	if s.maxBatch < 1 {
		s.maxBatch = 1
	}
	if !s.flushSet || s.flush < 0 {
		s.flush = DefaultFlushDeadline
	}
	return s
}

// AddModel compiles g under the named backend and hosts it as name. The
// HTTP wire contract is single-I/O (one flat input array, one output
// array), so multi-input/multi-output graphs are rejected.
func (s *Server) AddModel(name string, g *graph.Graph, backendName string, workers int) error {
	be, err := backend.ByName(backendName)
	if err != nil {
		return err
	}
	plan, err := be.PrepareWith(g, backend.PrepareOpts{Workers: workers, MaxBatch: s.maxBatch, Int8: s.int8})
	if err != nil {
		return fmt.Errorf("serve: compiling %s: %w", name, err)
	}
	ins, outs := plan.InputDescs(), plan.OutputDescs()
	if len(ins) != 1 || len(outs) != 1 {
		return fmt.Errorf("serve: model %q has %d inputs and %d outputs; the HTTP contract serves single-input single-output models", name, len(ins), len(outs))
	}
	e := &Entry{
		Name:     name,
		Backend:  backendName,
		graph:    g,
		sessions: runtime.NewSessionPool(plan),
		inName:   ins[0].Name,
		outName:  outs[0].Name,
		inShape1: plan.InputShapeAt(0, 1),
	}
	e.perVol = tensor.Volume(e.inShape1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("serve: model %q already hosted", name)
	}
	if s.maxBatch > 1 {
		e.batcher, err = runtime.NewBatcher(e.sessions, runtime.BatcherOptions{
			FlushDeadline: s.flush,
			Immediate:     s.flush == 0,
			QueueDepth:    s.queueDepth,
			RunTimeout:    s.reqTimeout,
		})
		if err != nil {
			return fmt.Errorf("serve: batching %s: %w", name, err)
		}
	}
	s.entries[name] = e
	return nil
}

// Close drains the server gracefully: the draining flag flips first, so
// new requests are rejected with ErrClosed (→ 503 + Retry-After, which
// tells load balancers to take the node out of rotation), then the
// batchers drain — requests already handed to a collector execute to
// completion and Close returns once in-flight batches have delivered.
// The batcher pointers themselves are immutable after AddModel (handlers
// read them without the lock), so Close only drains the batchers.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.batcher != nil {
			e.batcher.Close()
		}
	}
}

// Draining reports whether Close has begun; /readyz exposes it.
func (s *Server) Draining() bool { return s.draining.Load() }

// ShedCount reports how many requests the server rejected with 429
// (queue-depth or in-flight cap). cmd/orpheus-serve logs it on shutdown.
func (s *Server) ShedCount() int64 { return s.shed.Load() }

// PanicCount reports how many requests failed on a recovered plan-step
// panic (each also quarantined its session).
func (s *Server) PanicCount() int64 { return s.panics.Load() }

// admit performs server-level admission: a draining server rejects with
// ErrClosed, and a full in-flight limiter sheds with ErrOverloaded. On
// success the caller must invoke the returned release when its execution
// finishes.
func (s *Server) admit() (release func(), err error) {
	if s.draining.Load() {
		return nil, fmt.Errorf("serve: draining: %w", runtime.ErrClosed)
	}
	if s.inflight == nil {
		return func() {}, nil
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, nil
	default:
		return nil, fmt.Errorf("serve: %d requests in flight (cap %d): %w",
			len(s.inflight), cap(s.inflight), runtime.ErrOverloaded)
	}
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("POST /predict/{model}", s.handlePredict)
	mux.HandleFunc("POST /profile/{model}", s.handleProfile)
	return mux
}

// modelInfo is the /models response element. Batcher is present only on
// batching servers and snapshots the model's runtime.BatcherStats — the
// counters an operator watches to tune MaxBatch and the flush deadline.
type modelInfo struct {
	Name       string            `json:"name"`
	Backend    string            `json:"backend"`
	InputShape []int             `json:"input_shape"`
	MaxBatch   int               `json:"max_batch"`
	Nodes      int               `json:"nodes"`
	ParamBytes int64             `json:"param_bytes"`
	ArenaBytes int64             `json:"arena_bytes"`
	Batcher    *batcherStatsJSON `json:"batcher,omitempty"`
}

// batcherStatsJSON mirrors runtime.BatcherStats on the wire; the
// cumulative queued wait is reported in milliseconds.
type batcherStatsJSON struct {
	QueueDepth     int64   `json:"queue_depth"`
	Runs           int64   `json:"runs"`
	Requests       int64   `json:"requests"`
	FlushFull      int64   `json:"flush_full"`
	FlushDeadline  int64   `json:"flush_deadline"`
	FlushImmediate int64   `json:"flush_immediate"`
	FlushExplicit  int64   `json:"flush_explicit"`
	FlushClose     int64   `json:"flush_close"`
	QueuedWaitMs   float64 `json:"queued_wait_ms"`
	Rejected       int64   `json:"rejected"`
	Cancelled      int64   `json:"cancelled"`
	// WaitHistogramMs pairs each bucket's upper bound in milliseconds
	// (the final bucket, bound 0, is the unbounded overflow) with its
	// count — the latency shape behind the queued_wait_ms mean.
	WaitHistogramMs []waitBucketJSON `json:"wait_histogram_ms"`
}

// waitBucketJSON is one queued-wait histogram bucket on the wire.
type waitBucketJSON struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// waitHistogramJSON renders the fixed-bucket histogram with its bounds.
func waitHistogramJSON(hist [runtime.WaitBuckets]int64) []waitBucketJSON {
	out := make([]waitBucketJSON, runtime.WaitBuckets)
	for i, n := range hist {
		le := 0.0 // overflow bucket: no upper bound
		if i < len(runtime.WaitBucketBounds) {
			le = float64(runtime.WaitBucketBounds[i]) / 1e6
		}
		out[i] = waitBucketJSON{LeMs: le, Count: n}
	}
	return out
}

func batcherStats(b *runtime.Batcher) *batcherStatsJSON {
	if b == nil {
		return nil
	}
	st := b.Stats()
	return &batcherStatsJSON{
		QueueDepth:      st.QueueDepth,
		Runs:            st.Runs,
		Requests:        st.Requests,
		FlushFull:       st.FlushFull,
		FlushDeadline:   st.FlushDeadline,
		FlushImmediate:  st.FlushImmediate,
		FlushExplicit:   st.FlushExplicit,
		FlushClose:      st.FlushClose,
		QueuedWaitMs:    float64(st.QueuedWait) / 1e6,
		Rejected:        st.Rejected,
		Cancelled:       st.Cancelled,
		WaitHistogramMs: waitHistogramJSON(st.WaitHistogram),
	}
}

// readyModel is one model's readiness row: queue depth against its cap
// (0 = unbounded) and whether the queue is saturated right now.
type readyModel struct {
	Name       string `json:"name"`
	QueueDepth int64  `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Saturated  bool   `json:"saturated"`
}

// handleReadyz is the readiness probe: 200 while the server is accepting
// and no model's queue is saturated, 503 once Close has begun (drain) or
// any bounded queue is full. Liveness (/healthz) stays 200 through both —
// a draining or saturated process is still alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	models := make([]readyModel, 0, len(s.entries))
	saturated := false
	for _, e := range s.entries {
		rm := readyModel{Name: e.Name, QueueCap: s.queueDepth}
		if e.batcher != nil {
			rm.QueueDepth = e.batcher.Stats().QueueDepth
			rm.Saturated = s.queueDepth > 0 && rm.QueueDepth >= int64(s.queueDepth)
		}
		saturated = saturated || rm.Saturated
		models = append(models, rm)
	}
	s.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case saturated:
		status, code = "overloaded", http.StatusServiceUnavailable
	}
	if code != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"draining": s.draining.Load(),
		"models":   models,
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]modelInfo, 0, len(s.entries))
	for _, e := range s.entries {
		infos = append(infos, modelInfo{
			Name:       e.Name,
			Backend:    e.Backend,
			InputShape: e.inShape1,
			MaxBatch:   e.sessions.Plan().MaxBatch(),
			Nodes:      len(e.graph.Nodes),
			ParamBytes: e.sessions.Plan().WeightBytes(),
			ArenaBytes: e.sessions.Plan().ArenaBytes(),
			Batcher:    batcherStats(e.batcher),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// BatcherStats returns the named model's batcher counters, or false when
// the model is not hosted or the server does not batch. cmd/orpheus-serve
// logs these on shutdown.
func (s *Server) BatcherStats(model string) (runtime.BatcherStats, bool) {
	e, ok := s.entry(model)
	if !ok || e.batcher == nil {
		return runtime.BatcherStats{}, false
	}
	return e.batcher.Stats(), true
}

// Quarantined returns how many poisoned sessions the named model's pool
// has dropped after plan-step panics, or false when the model is not
// hosted. cmd/orpheus-serve logs this on shutdown.
func (s *Server) Quarantined(model string) (int64, bool) {
	e, ok := s.entry(model)
	if !ok {
		return 0, false
	}
	return e.sessions.Quarantined(), true
}

// ModelNames lists the hosted models, sorted.
func (s *Server) ModelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// predictRequest is the /predict and /profile request body. WaitMs caps
// how long the request waits to be batched with peers (0 means the server
// default flush deadline); it is ignored on unbatched servers and by
// /profile.
type predictRequest struct {
	Input  []float32 `json:"input"`
	TopK   int       `json:"topk,omitempty"`
	WaitMs float64   `json:"wait_ms,omitempty"`
}

// predictResponse is the /predict response body. BatchSize reports how
// many requests shared the run that produced this output (1 when
// unbatched).
type predictResponse struct {
	Output    []float32 `json:"output"`
	Shape     []int     `json:"shape"`
	TopK      []int     `json:"topk,omitempty"`
	BatchSize int       `json:"batch_size,omitempty"`
	LatencyMs float64   `json:"latency_ms"`
}

// layerTimingJSON is one /profile breakdown row.
type layerTimingJSON struct {
	Layer    string  `json:"layer"`
	Op       string  `json:"op"`
	Kernel   string  `json:"kernel"`
	Ms       float64 `json:"ms"`
	GFlopsPS float64 `json:"gflops_per_s"`
}

func (s *Server) entry(name string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	return e, ok
}

// statusFor maps an execution error onto the wire contract with
// errors.Is over the runtime's typed error set: request-shaped failures
// are the client's fault (400), shedding by admission control is 429
// (retry the same node later), graceful shutdown is 503 (retry another
// node — the load-balancer signal that this one is draining), and
// everything else — a recovered plan-step panic, a cancelled request
// context, kernel failures — is a 500 the same way any aborted execution
// is. Unknown models are mapped to 404 before execution, in
// lookupAndDecode.
func statusFor(err error) int {
	switch {
	case errors.Is(err, runtime.ErrShapeMismatch),
		errors.Is(err, runtime.ErrBatchTooLarge),
		errors.Is(err, runtime.ErrUnknownInput),
		errors.Is(err, runtime.ErrUnknownOutput):
		return http.StatusBadRequest
	case errors.Is(err, runtime.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, runtime.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		// runtime.ErrPlanPanic, runtime.ErrNoOutput, context.Canceled (the
		// client is gone and never reads the status) and kernel failures.
		return http.StatusInternalServerError
	}
}

// writeFailure maps err through statusFor and writes it, with the
// overload niceties: 429 and 503 carry a Retry-After (derived from the
// model's live batcher wait statistics when available), sheds and panics
// bump the server counters.
func (s *Server) writeFailure(w http.ResponseWriter, e *Entry, err error) {
	code := statusFor(err)
	switch code {
	case http.StatusTooManyRequests:
		s.shed.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(e))
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	if errors.Is(err, runtime.ErrPlanPanic) {
		s.panics.Add(1)
	}
	writeError(w, code, err)
}

// retryAfterSeconds turns the model's live queue-wait estimate into the
// integer seconds the Retry-After header wants, with a floor of 1 — the
// smallest honest hint the header can express.
func retryAfterSeconds(e *Entry) string {
	if e == nil || e.batcher == nil {
		return "1"
	}
	secs := int64((e.batcher.EstimateWait() + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// lookupAndDecode resolves the request's model and body with the uniform
// status mapping: unknown model → 404, malformed body → 400. It writes the
// error response itself and returns ok=false when the request is done.
func (s *Server) lookupAndDecode(w http.ResponseWriter, r *http.Request) (*Entry, predictRequest, bool) {
	e, ok := s.entry(r.PathValue("model"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not hosted", r.PathValue("model")))
		return nil, predictRequest{}, false
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return nil, predictRequest{}, false
	}
	if len(req.Input) != e.perVol {
		writeError(w, http.StatusBadRequest, fmt.Errorf("input has %d values, model %s wants %d (%s): %w",
			len(req.Input), e.Name, e.perVol, tensor.ShapeString(e.inShape1), runtime.ErrShapeMismatch))
		return nil, predictRequest{}, false
	}
	return e, req, true
}

// requestCtx derives a request's execution context: the client's context,
// additionally bounded by WithRequestTimeout when set — so a wedged or
// slow run is cancelled at the next plan-step boundary instead of holding
// its session (and admission slot) forever.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.reqTimeout)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit()
	if err != nil {
		// Shed before decoding: a saturated server must not spend CPU
		// parsing bodies it will reject anyway.
		e, _ := s.entry(r.PathValue("model"))
		s.writeFailure(w, e, err)
		return
	}
	defer release()
	e, req, ok := s.lookupAndDecode(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	var (
		data  []float32
		shape []int
		batch = 1
	)
	if e.batcher != nil {
		res, err := e.batcher.Submit(ctx, req.Input, time.Duration(req.WaitMs*float64(time.Millisecond)))
		if err != nil {
			s.writeFailure(w, e, err)
			return
		}
		data, shape, batch = res.Output, res.Shape, res.BatchSize
	} else {
		sess := e.sessions.Get()
		outs, err := sess.Run(ctx, map[string]*tensor.Tensor{e.inName: tensor.FromSlice(req.Input, e.inShape1...)})
		if err == nil {
			if out := outs[e.outName]; out != nil {
				data = append([]float32(nil), out.Data()...)
				shape = out.Shape()
			} else {
				err = fmt.Errorf("model %q produced no output: %w", e.Name, runtime.ErrNoOutput)
			}
		}
		e.sessions.Put(sess)
		if err != nil {
			s.writeFailure(w, e, err)
			return
		}
	}
	resp := predictResponse{
		Output:    data,
		Shape:     shape,
		BatchSize: batch,
		LatencyMs: float64(time.Since(start)) / 1e6,
	}
	if req.TopK > 0 {
		resp.TopK = tensor.FromSlice(data, shape...).TopK(req.TopK)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit()
	if err != nil {
		e, _ := s.entry(r.PathValue("model"))
		s.writeFailure(w, e, err)
		return
	}
	defer release()
	e, req, ok := s.lookupAndDecode(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	sess := e.sessions.Get()
	_, timings, err := sess.RunProfiled(ctx, map[string]*tensor.Tensor{e.inName: tensor.FromSlice(req.Input, e.inShape1...)})
	e.sessions.Put(sess)
	if err != nil {
		s.writeFailure(w, e, err)
		return
	}
	rows := make([]layerTimingJSON, len(timings))
	for i, lt := range timings {
		var gf float64
		if lt.Duration > 0 {
			gf = float64(lt.Flops) / float64(lt.Duration.Nanoseconds())
		}
		rows[i] = layerTimingJSON{
			Layer:    lt.Node.Name,
			Op:       lt.Node.Op,
			Kernel:   lt.Kernel,
			Ms:       float64(lt.Duration) / 1e6,
			GFlopsPS: gf,
		}
	}
	writeJSON(w, http.StatusOK, rows)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := err.Error()
	// Keep internal prefixes out of client-facing messages.
	msg = strings.TrimPrefix(msg, "serve: ")
	writeJSON(w, code, map[string]string{"error": msg})
}
