package ops

// NHWC implicit-GEMM convolution support: a gemm.PackSrcA that packs A
// panels straight from the input image.
//
// Under NHWC the GEMM transposes relative to the NCHW tier: each group's
// output window [oh*ow × coutG] is the product of the unfolded input rows
// [oh*ow × kdim] and the reshaped weight matrix [kdim × coutG]. The
// per-image receptive fields are therefore the *A* operand — one row per
// output pixel — while the constant weights ride as a prepacked B shared
// across the whole batch (gemm.Call.APack). The row dimension kd decodes
// with the channel innermost, kd = (ky*kw + kx)*cinG + c, so every
// (ky, kx) tap covers a contiguous NHWC channel run: the gather is a
// contiguous read fanned out with stride mr, the transpose of the pack
// strips conv.im2col's NCHW source writes.
//
// When a boundary NCHW→NHWC transpose has been folded into the conv
// (src_layout "nchw"), the input stays NCHW in memory and the same walk
// reads channel runs with stride h*w instead — the permutation costs a
// strided gather inside a pack pass that already existed, not a
// materialised transpose.

// convPackSrcA describes the virtual A matrix of one convolution group:
// A[row][kd] = x[img][iy][ix][chan0+c] with (oy, ox) = row decoded over
// the output raster, iy = oy*sh - padT + ky*dh, ix = ox*sw - padL + kx*dw,
// zero outside the input. It is read-only during a gemm call, so the pool
// may pack panels from several workers at once.
type convPackSrcA struct {
	x       []float32 // whole input batch (NHWC, or NCHW when srcNCHW)
	srcNCHW bool      // folded boundary transpose: gather from NCHW memory
	cin     int       // channels per image (image stride is cin*h*w)
	h, w    int
	chan0   int // first input channel of this group
	cinG    int // channels per group (run length of one (ky,kx) tap)

	kh, kw, sh, sw, padT, padL, dh, dw int
	oh, ow                             int
}

// init points the source at group g of the convolution described by p.
func (s *convPackSrcA) init(x []float32, p *convParams, g int) {
	s.x = x
	s.srcNCHW = p.srcNCHW
	s.cin, s.h, s.w = p.cin, p.h, p.w
	s.cinG = p.cin / p.groups
	s.chan0 = g * s.cinG
	s.kh, s.kw, s.sh, s.sw = p.kh, p.kw, p.sh, p.sw
	s.padT, s.padL, s.dh, s.dw = p.padT, p.padL, p.dh, p.dw
	s.oh, s.ow = p.oh, p.ow
}

// PackPanelA implements gemm.PackSrcA: the mc×kc panel at (ii, pp) of
// image img's unfold matrix, written as strips of mr rows, column-major
// within each strip, rows beyond mc zero-padded. Each row is one output
// pixel; its kc columns are walked as (ky, kx) taps of cinG-channel runs,
// decoded incrementally instead of dividing per element.
func (s *convPackSrcA) PackPanelA(dst []float32, img, ii, pp, mc, kc, mr int) {
	plane := s.h * s.w
	for i := 0; i < mc; i += mr {
		strip := dst[(i/mr)*kc*mr:]
		rows := min(mr, mc-i)
		for r := 0; r < rows; r++ {
			rowIdx := ii + i + r
			oy := rowIdx / s.ow
			ox := rowIdx - oy*s.ow
			iy0 := oy*s.sh - s.padT
			ix0 := ox*s.sw - s.padL
			row := strip[r:]
			// Decode kd = pp once, then step (c, kx, ky) across the panel.
			c := pp % s.cinG
			t := pp / s.cinG
			kx := t % s.kw
			ky := t / s.kw
			for p := 0; p < kc; {
				run := min(s.cinG-c, kc-p)
				iy := iy0 + ky*s.dh
				ix := ix0 + kx*s.dw
				if iy >= 0 && iy < s.h && ix >= 0 && ix < s.w {
					if s.srcNCHW {
						src := s.x[img*s.cin*plane+(s.chan0+c)*plane+iy*s.w+ix:]
						for q := 0; q < run; q++ {
							row[(p+q)*mr] = src[q*plane]
						}
					} else {
						src := s.x[((img*s.h+iy)*s.w+ix)*s.cin+s.chan0+c:]
						for q := 0; q < run; q++ {
							row[(p+q)*mr] = src[q]
						}
					}
				} else {
					for q := 0; q < run; q++ {
						row[(p+q)*mr] = 0
					}
				}
				p += run
				c += run
				if c == s.cinG {
					c = 0
					if kx++; kx == s.kw {
						kx = 0
						ky++
					}
				}
			}
		}
		// Edge strips must stay full: zero the rows past the panel.
		for r := rows; r < mr; r++ {
			row := strip[r:]
			for p := 0; p < kc; p++ {
				row[p*mr] = 0
			}
		}
	}
}
