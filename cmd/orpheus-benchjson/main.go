// orpheus-benchjson converts `go test -bench` text output into a JSON
// benchmark artifact, so the perf trajectory of the repository is
// machine-readable across PRs. CI pipes the bench-smoke step through it:
//
//	go test -run '^$' -bench BenchmarkBatch -benchmem -benchtime 3x . \
//	    | orpheus-benchjson -out BENCH_pr2.json
//
// Every benchmark line becomes one record with ns/op, allocs/op, B/op and
// any custom metrics (e.g. inf/s) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// record is one parsed benchmark result.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsPer  float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// artifact is the emitted document.
type artifact struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Cores      int      `json:"cores"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	note := flag.String("note", "", "free-form environment note embedded in the artifact")
	flag.Parse()

	art, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orpheus-benchjson:", err)
		os.Exit(1)
	}
	art.Cores = runtime.NumCPU()
	art.Note = *note
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "orpheus-benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "orpheus-benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(art.Benchmarks), *out)
}

// parse reads `go test -bench` text and collects benchmark lines. Input is
// echoed to stderr so the tool can sit in a pipeline without hiding the
// human-readable output.
func parse(r io.Reader) (*artifact, error) {
	art := &artifact{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			art.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		rec, ok := parseLine(line)
		if ok {
			art.Benchmarks = append(art.Benchmarks, rec)
		}
	}
	return art, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  v unit  v unit ..." line.
func parseLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPer = v
		default:
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[unit] = v
		}
	}
	return rec, true
}
