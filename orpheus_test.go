package orpheus

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeZooCompilePredict(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Summary(), "wrn-40-2") {
		t.Fatalf("summary = %q", m.Summary())
	}
	sess, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(1, m.InputShape()...)
	out, err := sess.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Shape()) != 2 || out.Shape()[1] != 10 {
		t.Fatalf("output shape %v", out.Shape())
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestFacadeBackendsProduceSameAnswer(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(2, m.InputShape()...)
	var ref *Tensor
	for _, be := range []string{"orpheus", "tvm-sim"} {
		sess, err := m.Compile(WithBackend(be))
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.Predict(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		for i, v := range out.Data() {
			if d := float64(v - ref.Data()[i]); d > 1e-3 || d < -1e-3 {
				t.Fatalf("backend %s diverges at %d: %v vs %v", be, i, v, ref.Data()[i])
			}
		}
	}
}

func TestFacadeONNXRoundTrip(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wrn.onnx")
	if err := m.SaveONNX(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadONNX(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Graph().NumParams() != m.Graph().NumParams() {
		t.Fatal("params changed across ONNX round trip")
	}
}

func TestFacadeProfiledAndPlan(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Compile(WithBackend("orpheus"), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(3, m.InputShape()...)
	_, timings, err := sess.PredictProfiled(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) == 0 {
		t.Fatal("no layer timings")
	}
	plan := sess.PlanSummary()
	if len(plan) != len(timings) {
		t.Fatalf("plan %d lines vs %d timings", len(plan), len(timings))
	}
	joined := strings.Join(plan, "\n")
	if !strings.Contains(joined, "conv.im2col") {
		t.Fatalf("plan summary missing kernels:\n%s", joined)
	}
	w, a := sess.MemoryFootprint()
	if w <= 0 || a <= 0 {
		t.Fatalf("footprint %d/%d", w, a)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := BuildZooModel("vgg-16"); err == nil {
		t.Fatal("unknown zoo model accepted")
	}
	if _, err := LoadONNX("/nonexistent/model.onnx"); err == nil {
		t.Fatal("missing file accepted")
	}
	m, _ := BuildZooModel("wrn-40-2")
	if _, err := m.Compile(WithBackend("caffe")); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if len(Backends()) < 5 || len(ZooModels()) != 5 {
		t.Fatal("registries look wrong")
	}
}

func TestFacadeBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark loop is slow; run without -short")
	}
	m, _ := BuildZooModel("wrn-40-2")
	sess, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sess.Benchmark(context.Background(), RandomTensor(4, m.InputShape()...), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 3 || stats.Median <= 0 {
		t.Fatalf("stats %+v", stats)
	}
}
