//go:build amd64 && !noasm

package gemm

// Int8 kernel dispatch for amd64. Two assembly micro-kernels register when
// the CPU supports them:
//
//   - "avx2" (8x8): one VPMADDUBSW (u8×s8 pair products, saturating int16)
//     + VPMADDWD against a ones vector (pair-sum to int32) + VPADDD per
//     row per k-quad — 32 multiply-adds per 4-instruction group, twice
//     the fp32 kernel's arithmetic density. The quantization contract
//     (|weight| ≤ 63) keeps every VPMADDUBSW intermediate below int16
//     saturation, so the result is exact.
//
//   - "vnni" (8x16): AVX-512 VNNI collapses the whole reduction into one
//     VPDPBUSD per row per k-quad, with the signed weight quad embedded
//     as a 32-bit broadcast memory operand — 64 multiply-adds per
//     instruction into ZMM int32 accumulators.
//
// Both share the fp32 tier's CPUID/XGETBV probing; VNNI additionally
// requires the OS to save opmask and ZMM state.

func init() {
	if hasAVX2FMA() {
		registerKernel8(&kernel8{name: "avx2", mr: 8, nr: 8,
			micro: adaptAsmKernel8(microKernel8x8I8AVX2, 8, 8)})
	}
	if hasAVX512VNNI() {
		registerKernel8(&kernel8{name: "vnni", mr: 8, nr: 16,
			micro: adaptAsmKernel8(microKernel8x16VNNI, 8, 16)})
	}
}

// microKernel8x8I8AVX2 computes one 8x8 int32 accumulator block from
// packed int8 panels, kq ≥ 1 k-quads deep. Implemented in
// kernel8_amd64.s.
//
//go:noescape
func microKernel8x8I8AVX2(pa *int8, pb *byte, acc *int32, kq, ldc int64, store bool)

// microKernel8x16VNNI computes one 8x16 int32 accumulator block with
// AVX-512 VNNI VPDPBUSD, kq ≥ 1 k-quads deep. Implemented in
// kernel8_amd64.s.
//
//go:noescape
func microKernel8x16VNNI(pa *int8, pb *byte, acc *int32, kq, ldc int64, store bool)

// hasAVX512VNNI reports whether this CPU and OS support the VNNI kernel:
// CPUID must advertise OSXSAVE+AVX, AVX-512F and AVX-512 VNNI, and XCR0
// must show the OS saving XMM, YMM, opmask and full ZMM register state.
func hasAVX512VNNI() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(osxsave|avx) != osxsave|avx {
		return false
	}
	const xstate = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xlo, _ := xgetbv(); xlo&xstate != xstate {
		return false
	}
	const (
		avx512f    = 1 << 16 // EBX
		avx512vnni = 1 << 11 // ECX
	)
	_, ebx7, ecx7, _ := cpuid(7, 0)
	return ebx7&avx512f != 0 && ecx7&avx512vnni != 0
}
