package gemm

// Micro-kernel dispatch.
//
// The packed tier is parameterised by a micro-kernel: the register-blocked
// inner loop that computes one mr×nr block of C per invocation, plus the
// mr/nr geometry that the packing routines (packA/packB), the prepacked
// panel layout (PackedASize/PackedBSize) and the macro-kernel edge handling
// are all derived from. The portable pure-Go 4x8 kernel always exists;
// architecture files register wider SIMD kernels (AVX2/FMA 8x8 on amd64,
// NEON 8x8 on arm64) at init when the CPU supports them, and the best
// registered kernel becomes the process default.
//
// Selection order:
//
//  1. The ORPHEUS_GEMM_KERNEL environment variable, when set to a known
//     kernel name ("go", "avx2", "avx2-6x16", "avx512", "neon"), pins the
//     choice — the A/B knob for same-host kernel comparisons. A recognised
//     kernel family that is not available on this CPU warns and falls
//     through to the default; unknown names are ignored with a warning,
//     GODEBUG-style.
//  2. Otherwise the widest registered SIMD kernel for this CPU.
//  3. Otherwise (non-amd64/arm64, the noasm build tag, or a CPU without
//     the required features) the pure-Go kernel.
//
// Prepacked panels bake in the active kernel's geometry, so SetKernel
// invalidates buffers produced by earlier PrepackA/PrepackB calls; switch
// kernels only between plans, never while GEMMs are in flight.

import (
	"fmt"
	"os"
	"sync/atomic"
)

// microKernelFunc computes a full mr×nr block of C from packed panels:
// C[r][cc] (+)= sum_p pa[p*mr+r] * pb[p*nr+cc]. ldc is the row stride of c
// in elements; store overwrites C instead of accumulating.
type microKernelFunc func(pa, pb, c []float32, kc, ldc int, store bool)

// kernel bundles a micro-kernel with the packing geometry it consumes.
// mc/nc are the macro-panel blocking factors, derived from mcBlock/ncBlock
// rounded down to a multiple of the micro-tile so every interior panel is a
// whole number of strips (tiles wider than 8, like the 14x32 AVX-512
// kernel, do not divide the shared 128x512 macro block evenly).
type kernel struct {
	name   string
	mr, nr int // micro-tile rows and columns
	mc, nc int // macro-panel rows and columns (multiples of mr/nr)
	micro  microKernelFunc
}

// newKernel derives the macro geometry for a micro-tile. The derived mc/nc
// keep the PackedASize/PackedBSize panel formulas exact: with mc ≡ 0
// (mod mr), roundUp(M, mr) splits as full panels of mc plus the rounded
// remainder, so panel offsets pm*pp + ii*kc stay valid.
func newKernel(name string, mr, nr int, micro microKernelFunc) *kernel {
	return &kernel{
		name: name, mr: mr, nr: nr,
		mc: mcBlock - mcBlock%mr, nc: ncBlock - ncBlock%nr,
		micro: micro,
	}
}

// Micro-tile geometry bounds. Shared scratch (the macro-kernel edge-tile
// buffer, the packing contexts) is sized for the largest registered kernel.
const (
	maxMR = 16
	maxNR = 32
)

// goKernel is the portable pure-Go micro-kernel; always selectable as "go".
var goKernel = newKernel("go", 4, 8, microKernelGo)

// simdKernels holds the architecture kernels usable on this CPU, appended
// by arch-specific init functions in ascending preference order.
var simdKernels []*kernel

// kernelFamilies names every fp32 kernel the dispatch layer knows about on
// any architecture. A recognised name that is not selectable on this CPU
// (avx512 on a non-avx512 host, neon on amd64) falls through to the default
// with a warning instead of being treated as a typo.
var kernelFamilies = map[string]bool{
	"go":        true,
	"avx2":      true,
	"avx2-6x16": true,
	"avx512":    true,
	"neon":      true,
}

// registerKernel adds a SIMD kernel to the dispatch table. Called only
// from package init, before any GEMM runs.
func registerKernel(k *kernel) {
	if k.mr > maxMR || k.nr > maxNR {
		panicf("gemm: kernel %s tile %dx%d exceeds max %dx%d", k.name, k.mr, k.nr, maxMR, maxNR)
	}
	if k.mc <= 0 || k.nc <= 0 || k.mc%k.mr != 0 || k.nc%k.nr != 0 {
		panicf("gemm: kernel %s macro panel %dx%d is not a multiple of tile %dx%d",
			k.name, k.mc, k.nc, k.mr, k.nr)
	}
	if k.mc > mcBlock || k.nc > ncBlock {
		panicf("gemm: kernel %s macro panel %dx%d exceeds scratch block %dx%d",
			k.name, k.mc, k.nc, mcBlock, ncBlock)
	}
	if !kernelFamilies[k.name] {
		panicf("gemm: kernel %s missing from kernelFamilies", k.name)
	}
	simdKernels = append(simdKernels, k)
}

// active is the kernel all packing, prepacking and macro-kernel calls use.
// It is resolved lazily on first use (after all init registration) and
// replaced only by SetKernel.
var active atomic.Pointer[kernel]

// KernelEnv is the environment variable that pins the micro-kernel choice
// at process start, e.g. ORPHEUS_GEMM_KERNEL=go to force the portable
// fallback when A/B-testing the SIMD kernels on the same host.
const KernelEnv = "ORPHEUS_GEMM_KERNEL"

// activeKernel returns the kernel in effect, resolving the default on
// first use.
func activeKernel() *kernel {
	if k := active.Load(); k != nil {
		return k
	}
	active.CompareAndSwap(nil, defaultKernel())
	return active.Load()
}

// defaultKernel applies the selection order documented at the top of this
// file.
func defaultKernel() *kernel {
	k, warn := resolveKernel(os.Getenv(KernelEnv))
	if warn != "" {
		fmt.Fprintln(os.Stderr, warn)
	}
	return k
}

// resolveKernel maps an ORPHEUS_GEMM_KERNEL value to the kernel to use plus
// a warning to emit (empty when the request was honoured or absent). A name
// from a known kernel family that this CPU cannot run — e.g. avx512 on a
// non-avx512 host, or any SIMD name under the noasm tag — falls through to
// the best available kernel with a warning rather than erroring, so one
// deployment config can span heterogeneous hosts. Unknown names are
// ignored with the GODEBUG-style typo warning.
func resolveKernel(name string) (k *kernel, warn string) {
	best := goKernel
	if n := len(simdKernels); n > 0 {
		best = simdKernels[n-1]
	}
	if name == "" {
		return best, ""
	}
	if k := lookupKernel(name); k != nil {
		return k, ""
	}
	if kernelFamilies[name] {
		return best, fmt.Sprintf("gemm: %s=%q not available on this CPU; falling back to %q", KernelEnv, name, best.name)
	}
	return best, fmt.Sprintf("gemm: ignoring %s=%q (known kernels: %v)", KernelEnv, name, KernelNames())
}

// lookupKernel returns the named kernel, or nil.
func lookupKernel(name string) *kernel {
	if name == goKernel.name {
		return goKernel
	}
	for _, k := range simdKernels {
		if k.name == name {
			return k
		}
	}
	return nil
}

// KernelName reports the name of the micro-kernel the packed tier
// currently dispatches to ("go", "avx2", "neon", ...).
func KernelName() string { return activeKernel().name }

// KernelNames lists the micro-kernels selectable on this CPU, the portable
// "go" kernel first, then registered SIMD kernels in ascending preference
// order. The last entry is the default absent an override.
func KernelNames() []string {
	names := []string{goKernel.name}
	for _, k := range simdKernels {
		names = append(names, k.name)
	}
	return names
}

// asmKernelFunc is the common signature of the architecture assembly
// micro-kernels: pointers into the packed panels and C, with kc ≥ 1.
type asmKernelFunc func(pa, pb, c *float32, kc, ldc int64, store bool)

// adaptAsmKernel wraps an assembly kernel (whose k-loop requires at least
// one iteration) into a microKernelFunc, handling the kc == 0 store case
// — a BLAS beta=0 product with an empty shared dimension — in Go. The
// macro-kernel only calls micro-kernels on full mr×nr tiles, so the
// slices are non-empty whenever kc > 0.
func adaptAsmKernel(asm asmKernelFunc, mr, nr int) microKernelFunc {
	return func(pa, pb, c []float32, kc, ldc int, store bool) {
		if kc == 0 {
			if store {
				zeroTile(c, mr, nr, ldc)
			}
			return
		}
		asm(&pa[0], &pb[0], &c[0], int64(kc), int64(ldc), store)
	}
}

// zeroTile clears an mr×nr tile of c.
func zeroTile(c []float32, mr, nr, ldc int) {
	for r := 0; r < mr; r++ {
		row := c[r*ldc : r*ldc+nr]
		for i := range row {
			row[i] = 0
		}
	}
}

// SetKernel selects the named micro-kernel for all subsequent packed-tier
// calls and returns an error for names not selectable on this CPU.
//
// Switching kernels changes the packed-panel geometry: buffers produced by
// PrepackA/PrepackB under the previous kernel are invalid afterwards and
// must be re-packed (plan-level caches rebuild them on the next plan).
// SetKernel must not race in-flight GEMMs; it exists for harness ablations
// and tests that compare kernels within one process.
func SetKernel(name string) error {
	k := lookupKernel(name)
	if k == nil {
		return fmt.Errorf("gemm: unknown kernel %q (known: %v)", name, KernelNames())
	}
	active.Store(k)
	return nil
}
