package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64).
// Orpheus uses it everywhere synthetic weights or inputs are needed so that
// every experiment and test is reproducible bit-for-bit, independent of the
// Go runtime's seeded sources.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// SeedFromString returns a deterministic seed derived from s (FNV-1a),
// used to give every named weight tensor its own stream.
func SeedFromString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Uniform returns a uniform float32 in [lo, hi).
func (r *RNG) Uniform(lo, hi float32) float32 {
	return lo + (hi-lo)*r.Float32()
}

// Normal returns a standard normal float32 (Box–Muller).
func (r *RNG) Normal() float32 {
	// Avoid log(0) by offsetting into (0,1].
	u1 := float64(r.Uint64()>>11)/float64(1<<53) + 1e-12
	u2 := float64(r.Uint64()>>11) / float64(1<<53)
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// Rand returns a tensor of the given shape filled with uniform values in
// [lo, hi).
func Rand(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Uniform(lo, hi)
	}
	return t
}

// RandNormal returns a tensor filled with normal(0, stddev) values.
func RandNormal(r *RNG, stddev float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = stddev * r.Normal()
	}
	return t
}

// HeNormal fills a convolution/dense weight tensor using He initialisation:
// normal with stddev sqrt(2/fanIn). fanIn is the product of all dimensions
// except the first (output channels).
func HeNormal(r *RNG, shape ...int) *Tensor {
	fanIn := 1
	for _, d := range shape[1:] {
		fanIn *= d
	}
	if fanIn == 0 {
		fanIn = 1
	}
	std := float32(math.Sqrt(2 / float64(fanIn)))
	return RandNormal(r, std, shape...)
}
