package harness

import (
	"context"
	"fmt"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/quant"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Extension experiments beyond the paper's published results:
//
//   - threads: worker scaling 1→N. The paper could not fix TF-Lite to one
//     thread; this experiment runs the multi-thread regime where TF-Lite
//     *does* participate, completing the comparison the paper had to
//     truncate.
//   - quantize: weight-only int8 post-training quantisation — footprint
//     and numerical drift per model (the compression-style study the
//     paper's introduction motivates via Turner et al.).
func init() {
	register(&Experiment{ID: "threads", Title: "E1: thread scaling (multi-thread regime incl. TF-Lite)", Run: runThreads})
	register(&Experiment{ID: "quantize", Title: "E2: int8 weight quantisation footprint and drift", Run: runQuantize})
}

func runThreads(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "threads", Title: "E1: measured inference time vs worker count"}
	rep.Header = []string{"model", "backend", "1 thread", "2 threads", "4 threads"}
	if cfg.Mode == ModeSim {
		// The A73 cost model is single-core; thread scaling is a measured
		// experiment by nature.
		rep.AddNote("threads experiment requires -mode measure; cost model is single-core")
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		for _, bname := range []string{"orpheus", "tflite-sim"} {
			b, err := backend.ByName(bname)
			if err != nil {
				return nil, err
			}
			if b.SupportsModel != nil && b.SupportsModel(modelName) != nil {
				continue
			}
			row := []any{modelName, b.Paper}
			for _, workers := range []int{1, 2, 4} {
				plan, err := b.Prepare(g, workers)
				if err != nil {
					row = append(row, "n/a")
					continue
				}
				if cfg.Mode == ModeSim {
					row = append(row, "-")
					continue
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
				stats, err := runtime.Measure(cfg.Ctx, sess, map[string]*tensor.Tensor{g.Inputs[0].Name: x}, cfg.Warmup, cfg.Reps)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtMs(float64(stats.Median)/1e6))
			}
			rep.AddRow(row...)
		}
	}
	rep.AddNote("tflite-sim refuses 1 thread (paper's exclusion) but participates at 2+")
	return rep, nil
}

func runQuantize(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "quantize", Title: "E2: int8 weight quantisation per model"}
	rep.Header = []string{"model", "weights fp32 MB", "weights int8 MB", "compression", "worst weight rel err", "max prob drift"}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString("quant-"+modelName)), -1, 1, g.Inputs[0].Shape...)
		before, err := runOnce(g, x)
		if err != nil {
			return nil, err
		}
		qrep, err := quant.QuantizeGraph(g)
		if err != nil {
			return nil, err
		}
		after, err := runOnce(g, x)
		if err != nil {
			return nil, err
		}
		rep.AddRow(modelName,
			fmt.Sprintf("%.2f", float64(qrep.FloatBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(qrep.QuantBytes)/(1<<20)),
			fmt.Sprintf("%.2fx", qrep.Compression()),
			fmt.Sprintf("%.4f", qrep.WorstRelError),
			fmt.Sprintf("%.4f", tensor.MaxAbsDiff(before, after)))
	}
	rep.AddNote("weight-only per-channel symmetric int8; activations stay fp32")
	rep.AddNote("prob drift = max |softmax_fp32 - softmax_int8| on one input")
	return rep, nil
}

// runOnce executes a graph once under the orpheus backend and returns the
// (cloned) output.
func runOnce(g *graph.Graph, x *tensor.Tensor) (*tensor.Tensor, error) {
	b, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	plan, err := b.Prepare(g, 1)
	if err != nil {
		return nil, err
	}
	sess := runtime.NewSession(plan)
	outs, err := sess.Run(context.Background(), map[string]*tensor.Tensor{g.Inputs[0].Name: x})
	if err != nil {
		return nil, err
	}
	for _, v := range outs {
		return v.Clone(), nil
	}
	return nil, fmt.Errorf("harness: graph %s produced no outputs", g.Name)
}
