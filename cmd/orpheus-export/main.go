// orpheus-export writes the built-in model zoo (the paper's five
// evaluation networks) to ONNX files, standing in for "models exported
// from other training frameworks". The emitted files round-trip through
// any ONNX tooling and through orpheus-run / orpheus-inspect.
//
// Usage:
//
//	orpheus-export -dir models/                 # all five models
//	orpheus-export -dir models/ -models wrn-40-2,resnet-18
//	orpheus-export -dir models/ -models wrn-40-2 -verify   # re-import and compare outputs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"orpheus"
	"orpheus/internal/onnx"
	"orpheus/internal/zoo"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "output directory")
		models = flag.String("models", "", "comma-separated subset (default: all)")
		verify = flag.Bool("verify", false, "re-import each exported file, run one inference and compare against the in-memory graph")
	)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	names := zoo.Names()
	if *models != "" {
		names = strings.Split(*models, ",")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		g, err := zoo.Build(name, 1)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*dir, name+".onnx")
		if err := onnx.ExportFile(g, path); err != nil {
			fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %-28s %7.2f MB  (%d nodes, %.2fM params)\n",
			path, float64(info.Size())/(1<<20), len(g.Nodes), float64(g.NumParams())/1e6)
		if *verify {
			if err := verifyRoundTrip(ctx, path, name); err != nil {
				fatal(fmt.Errorf("verify %s: %w", name, err))
			}
			fmt.Printf("  verified: re-imported file matches in-memory graph\n")
		}
	}
}

// verifyRoundTrip re-imports an exported file and checks one inference
// against the same zoo model built in memory, using the ctx-based facade
// so Ctrl-C interrupts the (potentially large) model cleanly.
func verifyRoundTrip(ctx context.Context, path, name string) error {
	orig, err := orpheus.BuildZooModel(name)
	if err != nil {
		return err
	}
	imported, err := orpheus.LoadONNX(path)
	if err != nil {
		return err
	}
	x := orpheus.RandomTensor(1, orig.InputShape()...)
	var outs [2]*orpheus.Tensor
	for i, m := range []*orpheus.Model{orig, imported} {
		sess, err := m.Compile()
		if err != nil {
			return err
		}
		out, err := sess.Predict(ctx, x)
		if err != nil {
			return err
		}
		outs[i] = out
		_ = sess.Close()
	}
	for i := range outs[0].Data() {
		d := outs[0].Data()[i] - outs[1].Data()[i]
		if d > 1e-5 || d < -1e-5 {
			return fmt.Errorf("outputs diverge at %d: %v vs %v", i, outs[0].Data()[i], outs[1].Data()[i])
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orpheus-export:", err)
	os.Exit(1)
}
