//go:build !noasm

#include "textflag.h"

// func microKernel8x8NEON(pa, pb, c *float32, kc, ldc int64, store bool)
//
// One 8x8 fp32 micro-tile of C in V0..V15 (row r in V(2r)/V(2r+1), four
// columns each). The accumulate path preloads C into the accumulators
// instead of adding at the end, so both modes share one store epilogue
// (the Go arm64 assembler has FMLA but no vector FADD). Per packed k
// step: one 8-wide B strip load (V16/V17), one 8-wide A group load
// (V18/V19), then eight VDUP lane broadcasts feeding sixteen FMLAs.
TEXT ·microKernel8x8NEON(SB), NOSPLIT, $0-41
	MOVD pa+0(FP), R1
	MOVD pb+8(FP), R2
	MOVD c+16(FP), R3
	MOVD kc+24(FP), R4
	MOVD ldc+32(FP), R5
	MOVBU store+40(FP), R6
	LSL  $2, R5, R5          // C row stride in bytes

	CBZ R6, preload

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	B kloop

preload:
	MOVD R3, R7
	VLD1 (R7), [V0.S4, V1.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V2.S4, V3.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V4.S4, V5.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V6.S4, V7.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V8.S4, V9.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V10.S4, V11.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V12.S4, V13.S4]
	ADD  R5, R7, R7
	VLD1 (R7), [V14.S4, V15.S4]

kloop:
	VLD1.P 32(R2), [V16.S4, V17.S4]  // B strip row: 8 columns
	VLD1.P 32(R1), [V18.S4, V19.S4]  // A group: 8 rows
	VDUP  V18.S[0], V20.S4
	VFMLA V16.S4, V20.S4, V0.S4
	VFMLA V17.S4, V20.S4, V1.S4
	VDUP  V18.S[1], V20.S4
	VFMLA V16.S4, V20.S4, V2.S4
	VFMLA V17.S4, V20.S4, V3.S4
	VDUP  V18.S[2], V20.S4
	VFMLA V16.S4, V20.S4, V4.S4
	VFMLA V17.S4, V20.S4, V5.S4
	VDUP  V18.S[3], V20.S4
	VFMLA V16.S4, V20.S4, V6.S4
	VFMLA V17.S4, V20.S4, V7.S4
	VDUP  V19.S[0], V20.S4
	VFMLA V16.S4, V20.S4, V8.S4
	VFMLA V17.S4, V20.S4, V9.S4
	VDUP  V19.S[1], V20.S4
	VFMLA V16.S4, V20.S4, V10.S4
	VFMLA V17.S4, V20.S4, V11.S4
	VDUP  V19.S[2], V20.S4
	VFMLA V16.S4, V20.S4, V12.S4
	VFMLA V17.S4, V20.S4, V13.S4
	VDUP  V19.S[3], V20.S4
	VFMLA V16.S4, V20.S4, V14.S4
	VFMLA V17.S4, V20.S4, V15.S4
	SUBS  $1, R4, R4
	BNE   kloop

	VST1 [V0.S4, V1.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V2.S4, V3.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V4.S4, V5.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V6.S4, V7.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V8.S4, V9.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V10.S4, V11.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V12.S4, V13.S4], (R3)
	ADD  R5, R3, R3
	VST1 [V14.S4, V15.S4], (R3)
	RET
