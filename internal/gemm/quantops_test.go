package gemm

import (
	"math/rand"
	"testing"
)

// TestMinMaxF32MatchesScalar pins the dispatched MinMaxF32 (AVX2 where
// available) to the portable reduction across lengths straddling the
// 8-lane body/tail split.
func TestMinMaxF32MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 31, 33, 100, 1024, 1027} {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(r.NormFloat64() * 10)
		}
		lo, hi := MinMaxF32(v)
		var wantLo, wantHi float32
		if n > 0 {
			wantLo, wantHi = minMaxF32Go(v)
		}
		if lo != wantLo || hi != wantHi {
			t.Errorf("n=%d: MinMaxF32 = (%g, %g), scalar = (%g, %g)", n, lo, hi, wantLo, wantHi)
		}
	}
}

// TestQuantizeU8MatchesScalar pins the dispatched QuantizeU8 to the
// portable loop byte for byte, including out-of-range values that must
// clamp and lengths straddling the 32-element body/tail split.
func TestQuantizeU8MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 100, 1024, 1029} {
		src := make([]float32, n)
		for i := range src {
			switch i % 5 {
			case 0:
				src[i] = float32(r.NormFloat64() * 100) // mostly in range
			case 1:
				src[i] = float32(r.NormFloat64() * 10000) // often clamps
			default:
				src[i] = float32(r.Float64()*300 - 50)
			}
		}
		inv, zf := float32(0.73), float32(128.5)
		got := make([]byte, n)
		want := make([]byte, n)
		QuantizeU8(got, src, inv, zf)
		quantizeU8Go(want, src, inv, zf)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: QuantizeU8[%d] = %d, scalar = %d (src %g)", n, i, got[i], want[i], src[i])
			}
		}
	}
}
