// Package orpheus is the public facade of the Orpheus deep-learning
// inference framework: a Go reproduction of "Orpheus: A New Deep Learning
// Framework for Easy Deployment and Evaluation of Edge Inference"
// (Gibson & Cano, ISPASS 2020).
//
// The facade wraps the internal subsystems behind a small API:
//
//	model, _ := orpheus.LoadONNX("mobilenet.onnx")     // or orpheus.BuildZooModel("mobilenet-v1")
//	sess, _ := model.Compile(orpheus.WithBackend("orpheus"))
//	out, _ := sess.Predict(input)                       // *orpheus.Tensor, NCHW float32
//
// Layers are first-class citizens with multiple registered kernels;
// Compile selects one implementation per layer through the chosen
// backend's policy (fixed preference, size heuristic, or empirical
// auto-tuning), mirrors the paper's design, and plans an arena for
// intermediate activations.
package orpheus

import (
	"fmt"
	"io"
	"sync"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/onnx"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Tensor is the dense float32 NCHW tensor type used at the API boundary.
type Tensor = tensor.Tensor

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data (not copied) in a tensor of the given shape.
func TensorFromSlice(data []float32, shape ...int) *Tensor {
	return tensor.FromSlice(data, shape...)
}

// RandomTensor returns a deterministic uniform[-1,1) tensor, seeded by
// seed — handy for benchmarks and examples.
func RandomTensor(seed uint64, shape ...int) *Tensor {
	return tensor.Rand(tensor.NewRNG(seed), -1, 1, shape...)
}

// Model is a loaded (not yet compiled) network.
type Model struct {
	g *graph.Graph
}

// LoadONNX reads an ONNX file into a Model.
func LoadONNX(path string) (*Model, error) {
	g, err := onnx.ImportFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{g: g}, nil
}

// FromGraph wraps an already-built graph (advanced use; see internal/zoo
// for builder examples).
func FromGraph(g *graph.Graph) *Model { return &Model{g: g} }

// BuildZooModel constructs one of the paper's five evaluation networks by
// name: "wrn-40-2", "mobilenet-v1", "resnet-18", "inception-v3",
// "resnet-50".
func BuildZooModel(name string) (*Model, error) {
	g, err := zoo.Build(name, 1)
	if err != nil {
		return nil, err
	}
	return &Model{g: g}, nil
}

// ZooModels lists the available built-in model names in the paper's
// Figure 2 order.
func ZooModels() []string { return zoo.Names() }

// SaveONNX writes the model to an ONNX file.
func (m *Model) SaveONNX(path string) error { return onnx.ExportFile(m.g, path) }

// Graph exposes the underlying IR (read-mostly; Compile clones before
// optimising).
func (m *Model) Graph() *graph.Graph { return m.g }

// InputName returns the model's (single) input value name.
func (m *Model) InputName() string { return m.g.Inputs[0].Name }

// InputShape returns the model's input shape.
func (m *Model) InputShape() []int { return m.g.Inputs[0].Shape }

// Summary returns a one-line description of the model.
func (m *Model) Summary() string {
	return fmt.Sprintf("%s: %d nodes, %.2fM params, input %s",
		m.g.Name, len(m.g.Nodes), float64(m.g.NumParams())/1e6, tensor.ShapeString(m.g.Inputs[0].Shape))
}

// Optimize runs the graph-simplification pipeline in place on the model
// (Compile does this automatically for optimising backends; call this to
// inspect or export the optimised graph).
func (m *Model) Optimize() error {
	_, err := passes.Default().Run(m.g)
	return err
}

// compileConfig collects Compile options.
type compileConfig struct {
	backendName string
	workers     int
	maxBatch    int
}

// CompileOption configures Compile.
type CompileOption func(*compileConfig)

// WithBackend selects the execution backend: "orpheus" (default),
// "orpheus-heuristic", "orpheus-tuned", or the framework simulations
// "tvm-sim", "torch-sim", "darknet-sim", "tflite-sim".
func WithBackend(name string) CompileOption {
	return func(c *compileConfig) { c.backendName = name }
}

// WithWorkers sets the kernel thread budget (default 1, the paper's
// single-core configuration).
func WithWorkers(n int) CompileOption {
	return func(c *compileConfig) { c.workers = n }
}

// WithMaxBatch compiles the session for runtime batching: arena slots are
// sized for up to n samples, and Predict/PredictBatch/Run accept any batch
// 1 ≤ b ≤ n per call. Larger n trades arena memory (see MemoryFootprint)
// for amortised weight traffic per sample. Default 1.
func WithMaxBatch(n int) CompileOption {
	return func(c *compileConfig) { c.maxBatch = n }
}

// Backends lists the registered backend names.
func Backends() []string { return backend.Names() }

// Session is a compiled, executable model. It is safe for concurrent use:
// any number of goroutines may call Predict/PredictBatch/Run at once. Each
// in-flight call borrows a runtime session (private arena, scratch and
// staging buffers) from an internal sync.Pool, so concurrent requests
// share the compiled plan and its packed weights but never share mutable
// state.
type Session struct {
	model    *Model
	sessions *runtime.SessionPool
	maxBatch int
	inName   string
	inShape1 []int // model input shape at batch 1
	perVol   int   // elements per sample
	states   sync.Pool
}

// predictState is the reusable staging of the Predict paths: the
// input-binding map, the batch staging buffer and its per-batch-size
// views. Runtime sessions come from the session pool shared with Run;
// pooling the staging alongside keeps steady-state PredictInto /
// PredictBatchInto at zero heap allocations without a second set of
// arenas.
type predictState struct {
	in    map[string]*Tensor
	stage []float32
	views []*Tensor // views[n] = [n, ...] tensor over stage
}

// Compile plans and allocates an executable session for the model.
func (m *Model) Compile(opts ...CompileOption) (*Session, error) {
	cfg := compileConfig{backendName: "orpheus", workers: 1, maxBatch: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	be, err := backend.ByName(cfg.backendName)
	if err != nil {
		return nil, err
	}
	plan, err := be.PrepareBatched(m.g, cfg.workers, cfg.maxBatch)
	if err != nil {
		return nil, err
	}
	s := &Session{
		model:    m,
		sessions: runtime.NewSessionPool(plan),
		maxBatch: plan.MaxBatch(),
		inName:   m.InputName(),
		inShape1: plan.InputShapeAt(0, 1),
	}
	s.perVol = tensor.Volume(s.inShape1)
	s.states.New = func() any {
		return &predictState{in: make(map[string]*Tensor, 1)}
	}
	return s, nil
}

// MaxBatch returns the largest batch a single Predict/Run call accepts
// (set by WithMaxBatch; default 1).
func (s *Session) MaxBatch() int { return s.maxBatch }

// stageView returns the state's staging view for batch n, growing the
// staging buffer on first use.
func (st *predictState) stageView(s *Session, n int) *Tensor {
	if st.stage == nil {
		st.stage = make([]float32, s.maxBatch*s.perVol)
		st.views = make([]*Tensor, s.maxBatch+1)
	}
	if st.views[n] == nil {
		shape := append([]int(nil), s.inShape1...)
		shape[0] *= n
		st.views[n] = tensor.FromSlice(st.stage[:n*s.perVol], shape...)
	}
	return st.views[n]
}

// Predict runs inference on a single input tensor and returns a copy of
// the model's (single) output. The copy is freshly allocated; latency-
// critical callers should reuse an output tensor via PredictInto.
func (s *Session) Predict(input *Tensor) (*Tensor, error) {
	return s.PredictInto(nil, input)
}

// PredictInto is Predict with a caller-owned destination: the output is
// copied into dst (which must hold exactly the model's output volume) and
// dst is returned. A nil dst allocates a fresh output tensor. With a
// reused dst the whole facade path — staging, session run, output copy —
// performs zero steady-state heap allocations.
func (s *Session) PredictInto(dst, input *Tensor) (*Tensor, error) {
	st := s.states.Get().(*predictState)
	st.in[s.inName] = input
	dst, err := s.runState(st, dst)
	s.states.Put(st)
	return dst, err
}

// runState executes the state's bound inputs on a pooled runtime session
// and copies the single output into dst (allocating when dst is nil).
func (s *Session) runState(st *predictState, dst *Tensor) (*Tensor, error) {
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	outs, err := rs.Run(st.in)
	if err != nil {
		return nil, err
	}
	var out *Tensor
	for _, v := range outs {
		out = v
	}
	if out == nil {
		return nil, fmt.Errorf("orpheus: model has no outputs")
	}
	if dst == nil {
		return out.Clone(), nil
	}
	if dst.Size() != out.Size() {
		return nil, fmt.Errorf("orpheus: destination holds %d values, output needs %d", dst.Size(), out.Size())
	}
	copy(dst.Data(), out.Data())
	return dst, nil
}

// PredictBatch runs one batched inference over up to MaxBatch independent
// single-sample inputs and returns one output copy per input. The whole
// batch flows through the graph as a single leading-dimension-n execution,
// so constant weights (and their packed GEMM panels) are read once per
// batch instead of once per sample.
func (s *Session) PredictBatch(inputs []*Tensor) ([]*Tensor, error) {
	return s.PredictBatchInto(make([]*Tensor, len(inputs)), inputs)
}

// PredictBatchInto is PredictBatch with caller-owned destinations: dsts
// must have one (possibly nil, then allocated) tensor per input, each
// holding exactly one sample's output volume. With reused destinations the
// batched facade path performs zero steady-state heap allocations.
func (s *Session) PredictBatchInto(dsts, inputs []*Tensor) ([]*Tensor, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("orpheus: PredictBatch needs at least one input")
	}
	if n > s.maxBatch {
		return nil, fmt.Errorf("orpheus: batch %d exceeds the session's max batch %d (compile with WithMaxBatch)", n, s.maxBatch)
	}
	if len(dsts) != n {
		return nil, fmt.Errorf("orpheus: %d destinations for %d inputs", len(dsts), n)
	}
	st := s.states.Get().(*predictState)
	defer s.states.Put(st)
	view := st.stageView(s, n)
	buf := view.Data()
	for i, in := range inputs {
		if in.Size() != s.perVol {
			return nil, fmt.Errorf("orpheus: input %d has %d values, model wants %d (%s)", i, in.Size(), s.perVol, tensor.ShapeString(s.inShape1))
		}
		copy(buf[i*s.perVol:(i+1)*s.perVol], in.Data())
	}
	st.in[s.inName] = view
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	outs, err := rs.Run(st.in)
	if err != nil {
		return nil, err
	}
	var out *Tensor
	for _, v := range outs {
		out = v
	}
	if out == nil {
		return nil, fmt.Errorf("orpheus: model has no outputs")
	}
	if out.Size()%n != 0 || out.Rank() == 0 || out.Dim(0)%n != 0 {
		return nil, fmt.Errorf("orpheus: output %s does not split across batch %d", tensor.ShapeString(out.Shape()), n)
	}
	rowVol := out.Size() / n
	od := out.Data()
	for i := range dsts {
		if dsts[i] == nil {
			shape := append([]int(nil), out.Shape()...)
			shape[0] /= n
			dsts[i] = tensor.New(shape...)
		} else if dsts[i].Size() != rowVol {
			return nil, fmt.Errorf("orpheus: destination %d holds %d values, output row needs %d", i, dsts[i].Size(), rowVol)
		}
		copy(dsts[i].Data(), od[i*rowVol:(i+1)*rowVol])
	}
	return dsts, nil
}

// Run executes the graph on named inputs and returns copies of all
// outputs by name. Run is batch-aware: inputs whose leading dimension
// carries 1 ≤ n ≤ MaxBatch samples execute as one batched pass.
func (s *Session) Run(inputs map[string]*Tensor) (map[string]*Tensor, error) {
	return s.sessions.Run(inputs)
}

// LayerTiming mirrors runtime.LayerTiming at the public boundary.
type LayerTiming = runtime.LayerTiming

// PredictProfiled runs inference and returns per-layer timings alongside
// the output.
func (s *Session) PredictProfiled(input *Tensor) (*Tensor, []LayerTiming, error) {
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	outs, timings, err := rs.RunProfiled(map[string]*Tensor{s.model.InputName(): input})
	if err != nil {
		return nil, nil, err
	}
	for _, v := range outs {
		return v.Clone(), timings, nil
	}
	return nil, nil, fmt.Errorf("orpheus: model has no outputs")
}

// BenchStats mirrors runtime.Stats at the public boundary.
type BenchStats = runtime.Stats

// WriteTrace serialises per-layer timings from PredictProfiled as a
// Chrome trace-event JSON document viewable in chrome://tracing.
func WriteTrace(w io.Writer, timings []LayerTiming) error {
	return runtime.WriteTrace(w, timings)
}

// Benchmark times repeated inference (warm-up + reps) on the given input,
// holding one pooled session for the whole measurement.
func (s *Session) Benchmark(input *Tensor, warmup, reps int) (BenchStats, error) {
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	return runtime.Measure(rs, map[string]*Tensor{s.model.InputName(): input}, warmup, reps)
}

// PlanSummary describes the compiled plan: one line per layer with the
// selected kernel, for the paper's "independently altered and assayed"
// workflow.
func (s *Session) PlanSummary() []string {
	steps := s.sessions.Plan().Steps()
	out := make([]string, len(steps))
	for i, st := range steps {
		out[i] = fmt.Sprintf("%-30s %-12s %s", st.Node.Name, st.Node.Op, st.Kernel)
	}
	return out
}

// MemoryFootprint reports the planned memory use in bytes.
func (s *Session) MemoryFootprint() (weights, arena int64) {
	return s.sessions.Plan().WeightBytes(), s.sessions.Plan().ArenaBytes()
}
