package passes

import (
	"fmt"
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// FoldBatchNorm folds an inference-mode BatchNorm into the Conv or Dense
// node that feeds it:
//
//	BN(W·x + b) = a ⊙ (W·x + b - μ) + β  with a = γ/√(σ²+ε)
//	            = (a ⊙ W)·x + (a ⊙ (b - μ) + β)
//
// The producing node gets rescaled weights and a new bias; the BatchNorm
// node disappears. This is both a latency and a memory win and is the
// single most profitable simplification on BN-heavy models (all five
// models in Figure 2 use BN after almost every convolution).
func FoldBatchNorm() Pass {
	return newPass("fold-batchnorm", func(g *graph.Graph) (bool, error) {
		changed := false
		for {
			bn, prod := findFoldableBN(g)
			if bn == nil {
				return changed, nil
			}
			if err := foldBN(g, bn, prod); err != nil {
				return changed, err
			}
			changed = true
		}
	})
}

func findFoldableBN(g *graph.Graph) (bn, producer *graph.Node) {
	consumers := g.Consumers()
	for _, n := range g.Nodes {
		if n.Op != "BatchNorm" {
			continue
		}
		prod := n.Inputs[0].Producer
		if prod == nil || (prod.Op != "Conv" && prod.Op != "Dense") {
			continue
		}
		if soleConsumer(g, consumers, prod.Outputs[0]) != n {
			continue
		}
		// All BN params and the producer weights must be constant, and the
		// producer must not already carry a fused activation (folding a BN
		// through an activation would change semantics).
		if prod.Attrs.Str("activation", "") != "" {
			continue
		}
		constOK := prod.Inputs[1].IsConst()
		if len(prod.Inputs) == 3 {
			constOK = constOK && prod.Inputs[2].IsConst()
		}
		for _, p := range n.Inputs[1:] {
			constOK = constOK && p.IsConst()
		}
		if !constOK {
			continue
		}
		return n, prod
	}
	return nil, nil
}

func foldBN(g *graph.Graph, bn, prod *graph.Node) error {
	scale := bn.Inputs[1].Const.Data()
	beta := bn.Inputs[2].Const.Data()
	mean := bn.Inputs[3].Const.Data()
	variance := bn.Inputs[4].Const.Data()
	eps := bn.Attrs.Float("epsilon", 1e-5)

	w := prod.Inputs[1].Const
	cout := w.Shape()[0]
	if cout != len(scale) {
		return fmt.Errorf("fold-batchnorm: %d output channels vs %d BN channels", cout, len(scale))
	}

	// a[oc] = γ/√(σ²+ε); W'[oc] = a[oc]·W[oc]; b'[oc] = a[oc]·(b[oc]-μ[oc]) + β[oc].
	a := make([]float32, cout)
	for i := range a {
		a[i] = scale[i] / float32(math.Sqrt(float64(variance[i])+eps))
	}
	neww := w.Clone()
	wd := neww.Data()
	per := neww.Size() / cout
	for oc := 0; oc < cout; oc++ {
		row := wd[oc*per : (oc+1)*per]
		for i := range row {
			row[i] *= a[oc]
		}
	}
	newb := tensor.New(cout)
	bd := newb.Data()
	var oldBias []float32
	if len(prod.Inputs) == 3 {
		oldBias = prod.Inputs[2].Const.Data()
	}
	for oc := 0; oc < cout; oc++ {
		var b float32
		if oldBias != nil {
			b = oldBias[oc]
		}
		bd[oc] = a[oc]*(b-mean[oc]) + beta[oc]
	}

	wv, err := g.Const(freshName(g, prod.Name+".bnfold_w"), neww)
	if err != nil {
		return err
	}
	bv, err := g.Const(freshName(g, prod.Name+".bnfold_b"), newb)
	if err != nil {
		return err
	}
	prod.Inputs[1] = wv
	if len(prod.Inputs) == 3 {
		prod.Inputs[2] = bv
	} else {
		prod.Inputs = append(prod.Inputs, bv)
	}
	g.ReplaceUses(bn.Outputs[0], prod.Outputs[0])
	return g.RemoveNode(bn)
}

// freshName returns base, or base#k for the first k that is unused.
func freshName(g *graph.Graph, base string) string {
	if g.Value(base) == nil {
		return base
	}
	for k := 2; ; k++ {
		name := fmt.Sprintf("%s#%d", base, k)
		if g.Value(name) == nil {
			return name
		}
	}
}
