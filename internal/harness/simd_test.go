package harness

import (
	"strings"
	"testing"

	"orpheus/internal/gemm"
)

// TestSIMDAblationSim pins sim-mode behavior: the kernel ablation is host
// measurement, so the default (instant) sim run must produce no measured
// rows, only the pointer note — and must not leave a different kernel
// selected.
func TestSIMDAblationSim(t *testing.T) {
	before := gemm.KernelName()
	e, err := ByID("simd")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(simCfg("wrn-40-2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := gemm.KernelName(); got != before {
		t.Fatalf("experiment left kernel %q selected, want %q restored", got, before)
	}
	if len(rep.Rows) != 0 {
		t.Fatalf("sim mode produced %d measured rows, want 0 (host-only experiment)", len(rep.Rows))
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "-mode measure") {
		t.Fatalf("sim mode notes %v should point at -mode measure", rep.Notes)
	}
}

// TestSIMDAblationMeasured runs the experiment for real on one model: one
// GEMM-rate row per Call-stream shape plus one model row, one column per
// selectable kernel, parseable ratio cells, kernel selection restored.
func TestSIMDAblationMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("host measurement")
	}
	before := gemm.KernelName()
	e, err := ByID("simd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Mode: ModeMeasure, Models: []string{"wrn-40-2"}, Reps: 1, Warmup: 1}
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := gemm.KernelName(); got != before {
		t.Fatalf("experiment left kernel %q selected, want %q restored", got, before)
	}
	wantCols := 1 + len(gemm.KernelNames()) + 1
	if len(rep.Header) != wantCols {
		t.Fatalf("header %v has %d columns, want %d (workload + kernels + ratio)", rep.Header, len(rep.Header), wantCols)
	}
	if want := len(simdGEMMShapes) + 1; len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d (gemm shapes + 1 model)", len(rep.Rows), want)
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row %v does not match header %v", row, rep.Header)
		}
		last := row[len(row)-1]
		if !strings.HasSuffix(last, "x") && last != "n/a" {
			t.Errorf("ratio cell %q not a ratio", last)
		}
	}
}
