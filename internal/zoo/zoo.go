package zoo

import (
	"fmt"
	"sort"

	"orpheus/internal/graph"
)

// Model describes one zoo entry.
type Model struct {
	// Name is the canonical model identifier used by the CLI and the
	// experiment harness.
	Name string
	// InputShape is the NCHW input shape for batch 1.
	InputShape []int
	// Classes is the classifier width.
	Classes int
	// ApproxParams is the expected parameter count (for sanity checks and
	// reports), in millions.
	ApproxParams float64
	// Build constructs the graph for the given batch size.
	Build func(batch int) (*graph.Graph, error)
}

// models is ordered as in the paper's Figure 2 (left to right).
var models = []Model{
	{Name: "wrn-40-2", InputShape: []int{1, 3, 32, 32}, Classes: 10, ApproxParams: 2.2, Build: WRN40_2},
	{Name: "mobilenet-v1", InputShape: []int{1, 3, 224, 224}, Classes: 1000, ApproxParams: 4.2, Build: MobileNetV1},
	{Name: "resnet-18", InputShape: []int{1, 3, 224, 224}, Classes: 1000, ApproxParams: 11.7, Build: ResNet18},
	{Name: "inception-v3", InputShape: []int{1, 3, 299, 299}, Classes: 1000, ApproxParams: 25.1, Build: InceptionV3},
	{Name: "resnet-50", InputShape: []int{1, 3, 224, 224}, Classes: 1000, ApproxParams: 25.6, Build: ResNet50},
}

// Models returns the Figure 2 model list in paper order.
func Models() []Model { return append([]Model(nil), models...) }

// Names returns the model names in paper order.
func Names() []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name
	}
	return out
}

// ByName returns the model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range models {
		if m.Name == name {
			return m, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Model{}, fmt.Errorf("zoo: unknown model %q (known: %v)", name, known)
}

// Build constructs a named model for the given batch size.
func Build(name string, batch int) (*graph.Graph, error) {
	m, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return m.Build(batch)
}
