package gemm

import (
	"fmt"
	"testing"

	"orpheus/internal/tensor"
)

// Differential tests for the A-side virtual operand (Call.APack) and the
// strided-C path (Call.Ldc): a matrix-backed PackSrcA must reproduce the
// explicit-A result bit-for-bit modulo float reassociation, across every
// selectable kernel, batched calls sharing a prepacked B, embedded C
// windows and the fused bias/activation epilogue.

// matSrcA serves dense row-major per-image A matrices through the
// PackPanelA contract — the simplest possible implementation, used as the
// oracle counterpart of the implicit-GEMM convolution gathers.
type matSrcA struct {
	data []float32 // images back to back, each m*k
	m, k int
}

func (s *matSrcA) PackPanelA(dst []float32, img, ii, pp, mc, kc, mr int) {
	a := s.data[img*s.m*s.k:]
	for i := 0; i < mc; i += mr {
		strip := dst[(i/mr)*kc*mr:]
		rows := mc - i
		if rows > mr {
			rows = mr
		}
		for p := 0; p < kc; p++ {
			col := strip[p*mr:]
			for r := 0; r < rows; r++ {
				col[r] = a[(ii+i+r)*s.k+pp+p]
			}
			for r := rows; r < mr; r++ {
				col[r] = 0
			}
		}
	}
}

type apackCase struct {
	m, n, k int
	batch   int // 0/1 = unbatched
}

var apackCases = []apackCase{
	{m: 1, n: 1, k: 1},
	{m: 4, n: 8, k: 4},                // one go-kernel tile
	{m: 7, n: 9, k: 5},                // tails on both edges
	{m: 16, n: 24, k: 32},             // full tiles
	{m: 63, n: 65, k: 127},            // crosses tile boundaries everywhere
	{m: 130, n: 36, k: 300, batch: 1}, // crosses the macro blocks
	{m: 5, n: 6, k: 9, batch: 3},
	{m: 33, n: 17, k: 40, batch: 2},
	{m: 130, n: 12, k: 70, batch: 2}, // multi-macro-panel batched
}

func TestAPackMatchesExplicitA(t *testing.T) {
	const tol = 1e-5
	for _, kn := range KernelNames() {
		for _, tc := range apackCases {
			images := tc.batch
			if images < 1 {
				images = 1
			}
			for _, packedB := range []bool{false, true} {
				for _, workers := range []int{0, 3} {
					name := fmt.Sprintf("%s/m%d_n%d_k%d_b%d/packedB=%v/w%d",
						kn, tc.m, tc.n, tc.k, images, packedB, workers)
					t.Run(name, func(t *testing.T) {
						withKernel(t, kn, func() {
							r := tensor.NewRNG(uint64(tc.m*1000 + tc.n*10 + tc.k))
							a := make([]float32, images*tc.m*tc.k)
							for i := range a {
								a[i] = r.Uniform(-1, 1)
							}
							b := randMat(r, tc.k, tc.n)

							// Explicit-A reference, one image at a time.
							want := make([]float32, images*tc.m*tc.n)
							for img := 0; img < images; img++ {
								var ctx Context
								ctx.Run(Call{
									A: a[img*tc.m*tc.k:], B: b,
									C: want[img*tc.m*tc.n:],
									M: tc.m, N: tc.n, K: tc.k, Store: true,
								})
							}

							c := Call{
								APack: &matSrcA{data: a, m: tc.m, k: tc.k},
								C:     make([]float32, images*tc.m*tc.n),
								M:     tc.m, N: tc.n, K: tc.k, Store: true,
							}
							if packedB {
								c.PackedB = PrepackB(b, tc.k, tc.n)
							} else {
								c.B = b
							}
							if images > 1 {
								c.Batch = images
								c.StrideC = tc.m * tc.n
							}
							var ctx Context
							if workers > 0 {
								Shared().Run(&ctx, c, workers)
							} else {
								ctx.Run(c)
							}
							if i := relDiffOK(c.C, want, tol); i >= 0 {
								t.Fatalf("APack diverges at C[%d]: got %v want %v", i, c.C[i], want[i])
							}
						})
					})
				}
			}
		}
	}
}

// TestLdcEmbeddedC writes each output image into a window of a wider
// buffer — the grouped-convolution layout where every group owns an
// output-channel slice of the same rows. Gap columns must stay untouched.
func TestLdcEmbeddedC(t *testing.T) {
	const tol = 1e-5
	const m, n, k, pad, images = 13, 9, 21, 5, 2
	ldc := n + pad
	for _, kn := range KernelNames() {
		for _, workers := range []int{0, 3} {
			t.Run(fmt.Sprintf("%s/w%d", kn, workers), func(t *testing.T) {
				withKernel(t, kn, func() {
					r := tensor.NewRNG(99)
					a := make([]float32, images*m*k)
					for i := range a {
						a[i] = r.Uniform(-1, 1)
					}
					b := randMat(r, k, n)
					want := make([]float32, images*m*n)
					for img := 0; img < images; img++ {
						var ctx Context
						ctx.Run(Call{
							A: a[img*m*k:], B: b, C: want[img*m*n:],
							M: m, N: n, K: k, Store: true,
						})
					}

					const sentinel = float32(-123.5)
					cbuf := make([]float32, images*m*ldc)
					for i := range cbuf {
						cbuf[i] = sentinel
					}
					c := Call{
						APack: &matSrcA{data: a, m: m, k: k},
						B:     b, C: cbuf,
						M: m, N: n, K: k, Ldc: ldc, Store: true,
						Batch: images, StrideC: m * ldc,
					}
					var ctx Context
					if workers > 0 {
						Shared().Run(&ctx, c, workers)
					} else {
						ctx.Run(c)
					}
					for img := 0; img < images; img++ {
						for row := 0; row < m; row++ {
							got := cbuf[img*m*ldc+row*ldc:]
							ref := want[img*m*n+row*n:]
							if i := relDiffOK(got[:n], ref[:n], tol); i >= 0 {
								t.Fatalf("img %d row %d col %d: got %v want %v",
									img, row, i, got[i], ref[i])
							}
							for i := n; i < ldc; i++ {
								if got[i] != sentinel {
									t.Fatalf("img %d row %d gap col %d clobbered: %v",
										img, row, i, got[i])
								}
							}
						}
					}
				})
			})
		}
	}
}

// TestAPackBiasColEpilogue pins the fused per-column bias + activation on
// the APack path against a manual post-pass over the plain product.
func TestAPackBiasColEpilogue(t *testing.T) {
	const tol = 1e-5
	const m, n, k = 17, 11, 23
	for _, kn := range KernelNames() {
		t.Run(kn, func(t *testing.T) {
			withKernel(t, kn, func() {
				r := tensor.NewRNG(7)
				a := make([]float32, m*k)
				for i := range a {
					a[i] = r.Uniform(-1, 1)
				}
				b := randMat(r, k, n)
				bias := make([]float32, n)
				for i := range bias {
					bias[i] = r.Uniform(-2, 2)
				}

				want := make([]float32, m*n)
				var ctx Context
				ctx.Run(Call{A: a, B: b, C: want, M: m, N: n, K: k, Store: true})
				for row := 0; row < m; row++ {
					for col := 0; col < n; col++ {
						v := want[row*n+col] + bias[col]
						if v < 0 {
							v = 0
						}
						want[row*n+col] = v
					}
				}

				got := make([]float32, m*n)
				ctx.Run(Call{
					APack: &matSrcA{data: a, m: m, k: k},
					B:     b, C: got,
					M: m, N: n, K: k, Store: true,
					BiasCol: bias, Act: ActReLU,
				})
				if i := relDiffOK(got, want, tol); i >= 0 {
					t.Fatalf("fused epilogue diverges at C[%d]: got %v want %v", i, got[i], want[i])
				}
			})
		})
	}
}
