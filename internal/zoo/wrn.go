package zoo

import (
	"fmt"

	"orpheus/internal/graph"
)

// WRN40_2 builds a Wide Residual Network WRN-40-2 (Zagoruyko & Komodakis)
// for 32x32 CIFAR-10 inputs: depth 40 → 6 basic blocks per stage, widen
// factor 2 → stage widths 32/64/128, pre-activation residual blocks,
// ~2.2M parameters. The smallest Figure 2 model, and the one where TVM's
// spatial-pack convolution beats GEMM in the paper.
func WRN40_2(batch int) (*graph.Graph, error) {
	const (
		depth  = 40
		widen  = 2
		stages = 3
	)
	n := (depth - 4) / 6 // blocks per stage
	widths := []int{16, 16 * widen, 32 * widen, 64 * widen}

	b := newNet("wrn-40-2")
	x := b.input("input", []int{batch, 3, 32, 32})
	cur := b.conv("conv1", x, 3, widths[0], 3, 3, 1, 1, 1, 1)
	cin := widths[0]
	for s := 0; s < stages; s++ {
		stride := 1
		if s > 0 {
			stride = 2
		}
		cout := widths[s+1]
		for blk := 0; blk < n; blk++ {
			name := fmt.Sprintf("stage%d.block%d", s+1, blk)
			blockStride := 1
			if blk == 0 {
				blockStride = stride
			}
			cur = b.wrnBlock(name, cur, cin, cout, blockStride)
			cin = cout
		}
	}
	bn := b.bn("bn_final", cur, cin)
	act := b.relu("relu_final", bn)
	out := b.classifierHead(act, cin, 10)
	return b.finish(out)
}

// wrnBlock is a pre-activation basic block:
//
//	out = conv2(relu(bn2(conv1(relu(bn1(x)))))) + shortcut
//
// The shortcut is identity when shapes match, otherwise a 1x1 strided conv
// applied to the pre-activated input.
func (b *netBuilder) wrnBlock(name string, x *graph.Value, cin, cout, stride int) *graph.Value {
	pre := b.relu(name+".relu1", b.bn(name+".bn1", x, cin))
	conv1 := b.conv(name+".conv1", pre, cin, cout, 3, 3, stride, 1, 1, 1)
	mid := b.relu(name+".relu2", b.bn(name+".bn2", conv1, cout))
	conv2 := b.conv(name+".conv2", mid, cout, cout, 3, 3, 1, 1, 1, 1)
	shortcut := x
	if cin != cout || stride != 1 {
		shortcut = b.conv(name+".shortcut", pre, cin, cout, 1, 1, stride, 0, 0, 1)
	}
	return b.add(name+".add", conv2, shortcut)
}
