package serve

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/wire"
)

// ErrNotHosted marks an operation on a model name the registry does not
// hold (Remove of an unknown model; the HTTP layer maps lookup misses to
// 404 before execution).
var ErrNotHosted = fmt.Errorf("serve: model not hosted")

// config is the server-wide serving policy, fixed at New time. Per-model
// options override the queue depth and request timeout; everything else
// applies uniformly.
type config struct {
	maxBatch    int
	flush       time.Duration
	flushSet    bool
	queueDepth  int
	reqTimeout  time.Duration
	int8        bool
	inflightCap int
}

// Option configures a Server (and the Registry inside it) at New time.
type Option func(*config)

// WithMaxBatch sets the dynamic-batching width: models are compiled for up
// to n samples per run and concurrent /predict requests are coalesced into
// batches of up to n. n <= 1 disables batching (the default).
func WithMaxBatch(n int) Option {
	return func(c *config) { c.maxBatch = n }
}

// WithFlushDeadline sets how long a pending request waits for batch peers
// before being flushed. Exactly 0 selects immediate-flush mode: every
// request executes as soon as the collector sees it, batched only with
// requests already queued at that instant. Negative values select the
// default (DefaultFlushDeadline).
func WithFlushDeadline(d time.Duration) Option {
	return func(c *config) { c.flush, c.flushSet = d, true }
}

// WithQueueDepth bounds each model's batching queue: a /predict request
// arriving while n requests are already queued (submitted but not yet
// claimed by a batch) is shed immediately with 429 and a Retry-After
// estimate instead of joining an unbounded goroutine pile-up. n <= 0
// (the default) leaves queues unbounded. WithModelQueueDepth overrides
// the value per model. Only batching servers (WithMaxBatch > 1) have
// queues; on unbatched servers use WithMaxInflight.
func WithQueueDepth(n int) Option {
	return func(c *config) { c.queueDepth = n }
}

// WithMaxInflight caps concurrent request executions server-wide (both
// /predict and /profile, across all models): requests beyond the cap are
// shed with 429. When hosted models carry distinct priorities
// (WithModelPriority), the cap is tiered — see the Registry docs — so
// low-priority models are shed first as the server fills. n <= 0 (the
// default) disables the limiter.
func WithMaxInflight(n int) Option {
	return func(c *config) { c.inflightCap = n }
}

// WithRequestTimeout bounds a request's execution time, not just its
// queue wait: solo runs execute under a context deadline enforced at
// plan-step boundaries, and batched runs get the same bound as the
// batcher's RunTimeout. Requests over the deadline fail with
// context.DeadlineExceeded (→ 500). WithModelTimeout overrides the value
// per model. d <= 0 (the default) disables the bound.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.reqTimeout = d }
}

// WithInt8 compiles hosted models onto the int8 quantized execution tier
// (see internal/README.md): conv and dense layers run u8×s8 GEMMs with
// plan-time-quantized weights wherever a quantized kernel supports them.
// The wire contract is unchanged — inputs and outputs stay float32 —
// but outputs carry quantization noise relative to an fp32 server.
func WithInt8() Option {
	return func(c *config) { c.int8 = true }
}

// modelSettings is the resolved per-model policy a ModelOption edits.
type modelSettings struct {
	priority   int
	queueDepth int
	queueSet   bool
	timeout    time.Duration
	timeoutSet bool
}

// ModelOption configures one hosted model at Add time, overriding the
// server-wide defaults for that model only.
type ModelOption func(*modelSettings)

// WithModelPriority assigns the model's shedding priority (default 0;
// higher is more important). Priorities only matter relative to each
// other and only under WithMaxInflight: when the server fills up,
// models in lower priority classes hit their admission limit — and shed
// with 429 — before higher classes do. See Registry for the exact
// tiering.
func WithModelPriority(p int) ModelOption {
	return func(m *modelSettings) { m.priority = p }
}

// WithModelQueueDepth bounds this model's batching queue, overriding
// WithQueueDepth. n <= 0 leaves the queue unbounded.
func WithModelQueueDepth(n int) ModelOption {
	return func(m *modelSettings) { m.queueDepth, m.queueSet = n, true }
}

// WithModelTimeout bounds this model's request execution time, overriding
// WithRequestTimeout. d <= 0 disables the bound for this model.
func WithModelTimeout(d time.Duration) ModelOption {
	return func(m *modelSettings) { m.timeout, m.timeoutSet = d, true }
}

// Registry holds the hosted models of one serving process: per-model
// compiled plans, session pools, batchers and serving policy, behind a
// lock cheap enough to take on every request. Models can be added and
// removed while the server is accepting traffic; removal drains the
// model's batcher, so requests already queued on it complete (or fail
// with a typed error), they are never silently dropped.
//
// # Priority tiers
//
// Under a server-wide in-flight cap C (WithMaxInflight), models are
// ranked by their priority class. With n distinct classes, the class at
// rank r from the top admits new work only while fewer than C−C·r/n
// requests are in flight (floor 1). The top class may always fill the
// whole server; the bottom class is shed first as the server fills. With
// a single class (the default) every model admits up to C — the flat
// behaviour of a priority-less server. Limits are recomputed whenever
// the model set changes.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	cfg     config
}

// NewRegistry returns an empty registry with the given serving policy.
func NewRegistry(opts ...Option) *Registry {
	cfg := config{maxBatch: 1, flush: DefaultFlushDeadline}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxBatch < 1 {
		cfg.maxBatch = 1
	}
	if !cfg.flushSet || cfg.flush < 0 {
		cfg.flush = DefaultFlushDeadline
	}
	return &Registry{entries: make(map[string]*Entry), cfg: cfg}
}

// Add compiles g under the named backend and hosts it as name. The HTTP
// wire contract is single-I/O (one flat input array, one output array),
// so multi-input/multi-output graphs are rejected. Add may run while the
// server is accepting traffic; the model serves as soon as Add returns.
func (reg *Registry) Add(name string, g *graph.Graph, backendName string, workers int, opts ...ModelOption) error {
	ms := modelSettings{queueDepth: reg.cfg.queueDepth, timeout: reg.cfg.reqTimeout}
	for _, o := range opts {
		o(&ms)
	}
	if !ms.queueSet {
		ms.queueDepth = reg.cfg.queueDepth
	}
	if !ms.timeoutSet {
		ms.timeout = reg.cfg.reqTimeout
	}
	be, err := backend.ByName(backendName)
	if err != nil {
		return err
	}
	plan, err := be.PrepareWith(g, backend.PrepareOpts{Workers: workers, MaxBatch: reg.cfg.maxBatch, Int8: reg.cfg.int8})
	if err != nil {
		return fmt.Errorf("serve: compiling %s: %w", name, err)
	}
	ins, outs := plan.InputDescs(), plan.OutputDescs()
	if len(ins) != 1 || len(outs) != 1 {
		return fmt.Errorf("serve: model %q has %d inputs and %d outputs; the HTTP contract serves single-input single-output models", name, len(ins), len(outs))
	}
	e := &Entry{
		Name:     name,
		Backend:  backendName,
		graph:    g,
		sessions: runtime.NewSessionPool(plan),
		inName:   ins[0].Name,
		outName:  outs[0].Name,
		inShape1: plan.InputShapeAt(0, 1),
		priority: ms.priority,
		queueCap: ms.queueDepth,
		timeout:  ms.timeout,
	}
	e.perVol = tensor.Volume(e.inShape1)
	e.maxWireLen = wire.HeaderSize(wire.MaxRank) + 4*e.perVol
	if reg.cfg.maxBatch > 1 {
		e.batcher, err = runtime.NewBatcher(e.sessions, runtime.BatcherOptions{
			FlushDeadline: reg.cfg.flush,
			Immediate:     reg.cfg.flush == 0,
			QueueDepth:    ms.queueDepth,
			RunTimeout:    ms.timeout,
		})
		if err != nil {
			return fmt.Errorf("serve: batching %s: %w", name, err)
		}
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.entries[name]; dup {
		if e.batcher != nil {
			e.batcher.Close()
		}
		return fmt.Errorf("serve: model %q already hosted", name)
	}
	reg.entries[name] = e
	reg.recomputeAdmitLocked()
	return nil
}

// Remove unhosts the named model. The model disappears from lookup
// first (new requests get 404), then its batcher drains: requests
// already queued execute to completion, requests racing the removal get
// a typed ErrClosed (→ 503). Remove returns ErrNotHosted for unknown
// names.
func (reg *Registry) Remove(name string) error {
	reg.mu.Lock()
	e, ok := reg.entries[name]
	if !ok {
		reg.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotHosted, name)
	}
	delete(reg.entries, name)
	reg.recomputeAdmitLocked()
	reg.mu.Unlock()
	if e.batcher != nil {
		e.batcher.Close()
	}
	return nil
}

// Names lists the hosted models, sorted.
func (reg *Registry) Names() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	names := make([]string, 0, len(reg.entries))
	for name := range reg.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports how many models the registry currently hosts.
func (reg *Registry) Len() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return len(reg.entries)
}

// lookup resolves a model name to its live entry.
func (reg *Registry) lookup(name string) (*Entry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.entries[name]
	return e, ok
}

// snapshot returns the current entries, unordered.
func (reg *Registry) snapshot() []*Entry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	es := make([]*Entry, 0, len(reg.entries))
	for _, e := range reg.entries {
		es = append(es, e)
	}
	return es
}

// close drains every hosted batcher; requests already queued execute to
// completion before it returns.
func (reg *Registry) close() {
	for _, e := range reg.snapshot() {
		if e.batcher != nil {
			e.batcher.Close()
		}
	}
}

// recomputeAdmitLocked derives each entry's admission limit from the
// in-flight cap and the current priority classes (see the Registry doc
// comment for the tiering rule). Limits live in per-entry atomics so the
// hot admission path never takes the registry lock for them.
func (reg *Registry) recomputeAdmitLocked() {
	capN := reg.cfg.inflightCap
	if capN <= 0 {
		for _, e := range reg.entries {
			e.admitLimit.Store(math.MaxInt64)
		}
		return
	}
	classes := make([]int, 0, len(reg.entries))
	for _, e := range reg.entries {
		if !slices.Contains(classes, e.priority) {
			classes = append(classes, e.priority)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	n := len(classes)
	for _, e := range reg.entries {
		rank := slices.Index(classes, e.priority)
		limit := capN - capN*rank/n
		if limit < 1 {
			limit = 1
		}
		e.admitLimit.Store(int64(limit))
	}
}
