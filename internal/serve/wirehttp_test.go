package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"orpheus/internal/wire"
)

// postWire posts one binary-encoded sample. query is appended verbatim
// ("?topk=2"); hdrs overrides/extends the headers (Content-Type defaults
// to the tensor type).
func postWire(t *testing.T, url string, input []float32, shape []int, query string, hdrs map[string]string) *http.Response {
	t.Helper()
	body := wire.AppendTensor(nil, input, shape)
	req, err := http.NewRequest("POST", url+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeTensor)
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestBinaryPredict drives the binary round trip on both the unbatched
// and the batched server: the tensor-typed request decodes, executes and
// returns a tensor-typed response whose output matches the JSON path
// bit-for-bit, with the metadata moved into X-Orpheus-* headers.
func TestBinaryPredict(t *testing.T) {
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.02 * float32(i%9)
	}
	want := referenceOutput(t, input)

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"unbatched", nil},
		{"batched", []Option{WithMaxBatch(4), WithFlushDeadline(time.Millisecond)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, ts := newTestServer(t, mode.opts...)
			for _, path := range []string{"/predict/tiny", "/models/tiny/predict"} {
				resp := postWire(t, ts.URL+path, input, []int{1, 3, 8, 8}, "?topk=2", nil)
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					t.Fatalf("%s = %d (%s), want 200", path, resp.StatusCode, body)
				}
				if ct := resp.Header.Get("Content-Type"); ct != ContentTypeTensor {
					t.Fatalf("response Content-Type = %q, want %q", ct, ContentTypeTensor)
				}
				raw, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				out, err := wire.DecodeBytes(raw, 0)
				if err != nil {
					t.Fatalf("response is not one well-framed wire tensor: %v", err)
				}
				if out.Size() != len(want) {
					t.Fatalf("output size %d, want %d", out.Size(), len(want))
				}
				for i, v := range out.Data() {
					if v != want[i] {
						t.Fatalf("%s output[%d] = %v, want %v (JSON reference)", path, i, v, want[i])
					}
				}
				if bs := resp.Header.Get("X-Orpheus-Batch-Size"); bs == "" || bs == "0" {
					t.Fatalf("X-Orpheus-Batch-Size = %q", bs)
				}
				if resp.Header.Get("X-Orpheus-Latency-Ms") == "" {
					t.Fatal("X-Orpheus-Latency-Ms missing")
				}
				topk := resp.Header.Get("X-Orpheus-TopK")
				if len(strings.Split(topk, ",")) != 2 {
					t.Fatalf("X-Orpheus-TopK = %q, want two indices", topk)
				}
			}
		})
	}
}

// TestContentTypeConformance is the negotiation conformance table: every
// (Content-Type, Accept, body) combination maps to the documented status
// and response format. Mismatched and garbage content types are rejected
// up front (415), malformed binary bodies with the correct type are the
// client's fault (400), and the response format follows Accept when it
// names a supported type, mirroring the request otherwise.
func TestContentTypeConformance(t *testing.T) {
	okInput := make([]float32, 3*8*8)
	jsonBody, _ := json.Marshal(map[string]any{"input": okInput})
	wireBody := wire.AppendTensor(nil, okInput, []int{1, 3, 8, 8})
	shortWire := wire.AppendTensor(nil, make([]float32, 7), []int{7})
	bigWire := wire.AppendTensor(nil, make([]float32, 3*8*8*50), []int{50, 3, 8, 8})

	cases := []struct {
		name       string
		path       string // default /predict/tiny
		ct, accept string
		body       []byte
		want       int
		wantCT     string // response Content-Type when 200
	}{
		{name: "json-to-json", ct: "application/json", body: jsonBody,
			want: http.StatusOK, wantCT: "application/json"},
		{name: "json-charset-param", ct: "application/json; charset=utf-8", body: jsonBody,
			want: http.StatusOK, wantCT: "application/json"},
		{name: "no-content-type-defaults-json", ct: "", body: jsonBody,
			want: http.StatusOK, wantCT: "application/json"},
		{name: "binary-to-binary", ct: ContentTypeTensor, body: wireBody,
			want: http.StatusOK, wantCT: ContentTypeTensor},
		{name: "binary-accepting-json", ct: ContentTypeTensor, accept: "application/json", body: wireBody,
			want: http.StatusOK, wantCT: "application/json"},
		{name: "json-accepting-binary", ct: "application/json", accept: ContentTypeTensor, body: jsonBody,
			want: http.StatusOK, wantCT: ContentTypeTensor},
		{name: "wildcard-accept-mirrors-request", ct: ContentTypeTensor, accept: "*/*", body: wireBody,
			want: http.StatusOK, wantCT: ContentTypeTensor},
		{name: "garbage-content-type", ct: "application/x-protobuf", body: wireBody,
			want: http.StatusUnsupportedMediaType},
		{name: "form-content-type", ct: "application/x-www-form-urlencoded", body: jsonBody,
			want: http.StatusUnsupportedMediaType},
		{name: "unparseable-content-type", ct: "not a media type;;;", body: jsonBody,
			want: http.StatusUnsupportedMediaType},
		{name: "json-body-labelled-binary", ct: ContentTypeTensor, body: jsonBody,
			want: http.StatusBadRequest},
		{name: "binary-body-labelled-json", ct: "application/json", body: wireBody,
			want: http.StatusBadRequest},
		{name: "binary-truncated", ct: ContentTypeTensor, body: wireBody[:len(wireBody)-3],
			want: http.StatusBadRequest},
		{name: "binary-wrong-volume", ct: ContentTypeTensor, body: shortWire,
			want: http.StatusBadRequest},
		{name: "binary-oversized", ct: ContentTypeTensor, body: bigWire,
			want: http.StatusBadRequest},
		{name: "binary-garbage-bytes", ct: ContentTypeTensor, body: []byte("ORPTxxxxxxxxxxxxxxxxxxxx"),
			want: http.StatusBadRequest},
		{name: "binary-bad-topk", ct: ContentTypeTensor, body: wireBody,
			path: "/predict/tiny?topk=banana", want: http.StatusBadRequest},
		{name: "binary-bad-wait", ct: ContentTypeTensor, body: wireBody,
			path: "/predict/tiny?wait_ms=-4", want: http.StatusBadRequest},
		{name: "profile-rejects-binary", ct: ContentTypeTensor, body: wireBody,
			path: "/profile/tiny", want: http.StatusUnsupportedMediaType},
		{name: "rest-path-binary", ct: ContentTypeTensor, body: wireBody,
			path: "/models/tiny/predict", want: http.StatusOK, wantCT: ContentTypeTensor},
		{name: "rest-path-unknown-model", ct: ContentTypeTensor, body: wireBody,
			path: "/models/nope/predict", want: http.StatusNotFound},
	}
	_, ts := newTestServer(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tc.path
			if path == "" {
				path = "/predict/tiny"
			}
			req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.ct != "" {
				req.Header.Set("Content-Type", tc.ct)
			}
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, body, tc.want)
			}
			if tc.want == http.StatusOK {
				if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
					t.Fatalf("response Content-Type = %q, want %q", ct, tc.wantCT)
				}
				return
			}
			// Errors are always JSON with a non-empty message.
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("error body missing or not JSON (%v)", err)
			}
		})
	}
}

// TestPriorityShedOrdering pins the tiered admission contract end to
// end: with the server partially full, a low-priority model is already
// past its admission limit (429) while the high-priority model still
// admits — and the 429 names the limit so operators can see the tiering
// act.
func TestPriorityShedOrdering(t *testing.T) {
	s := New(WithMaxInflight(4))
	if err := s.AddModel("hi", tinyModel(t), "orpheus", 1, WithModelPriority(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("lo", tinyModel(t), "orpheus", 1, WithModelPriority(0)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := newHTTPServer(t, s)

	// Two distinct classes over cap 4: hi admits to 4, lo only to 2.
	hi, _ := s.entry("hi")
	lo, _ := s.entry("lo")
	if got := hi.admitLimit.Load(); got != 4 {
		t.Fatalf("hi admit limit = %d, want 4", got)
	}
	if got := lo.admitLimit.Load(); got != 2 {
		t.Fatalf("lo admit limit = %d, want 2", got)
	}

	// Occupy two slots; the server is half full.
	for i := 0; i < 2; i++ {
		release, err := s.admit(hi)
		if err != nil {
			t.Fatal(err)
		}
		defer release()
	}

	loResp := postJSON(t, ts.URL+"/predict/lo", map[string]any{"input": sampleInput()})
	if loResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("low-priority predict at half load = %d, want 429", loResp.StatusCode)
	}
	if loResp.Header.Get("Retry-After") == "" {
		t.Fatal("priority shed carries no Retry-After")
	}
	var e map[string]string
	_ = json.NewDecoder(loResp.Body).Decode(&e)
	if !strings.Contains(e["error"], "admission limit") {
		t.Fatalf("429 body %q does not name the admission limit", e["error"])
	}

	hiResp := postJSON(t, ts.URL+"/predict/hi", map[string]any{"input": sampleInput()})
	if hiResp.StatusCode != http.StatusOK {
		t.Fatalf("high-priority predict at half load = %d, want 200", hiResp.StatusCode)
	}
	if s.ShedCount() < 1 {
		t.Fatalf("ShedCount = %d, want >= 1", s.ShedCount())
	}
}

// TestBinaryPredictAllocFree pins the decode-to-staging path the binary
// handler composes — header validation against the model and payload
// decode into a staging row — at zero allocations per request, the
// property that makes the binary format worth its bytes.
func TestBinaryPredictAllocFree(t *testing.T) {
	s := New()
	if err := s.AddModel("tiny", tinyModel(t), "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	e, _ := s.entry("tiny")

	input := make([]float32, e.perVol)
	for i := range input {
		input[i] = float32(i%5) * 0.3
	}
	msg := wire.AppendTensor(nil, input, []int{1, 3, 8, 8})
	dst := make([]float32, e.perVol)
	allocs := testing.AllocsPerRun(500, func() {
		payload, err := validateWireBody(e, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.Float32Into(dst, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode-to-staging allocs/op = %v, want 0", allocs)
	}
	for i := range dst {
		if dst[i] != input[i] {
			t.Fatalf("staged[%d] = %v, want %v", i, dst[i], input[i])
		}
	}
}

// TestBinaryPredictRejectsU8 pins the dtype guard: a u8 wire message
// (legal on the shard transport) whose element count matches the model
// must still be rejected — the HTTP path stages float32 only, and
// without the guard the body would predict on garbage.
func TestBinaryPredictRejectsU8(t *testing.T) {
	s := New()
	if err := s.AddModel("tiny", tinyModel(t), "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	e, _ := s.entry("tiny")

	q := make([]byte, e.perVol)
	msg := wire.AppendTensorU8(nil, q, []int{1, 3, 8, 8}, 0.5, 128)
	if _, err := validateWireBody(e, msg); !errors.Is(err, wire.ErrFormat) {
		t.Fatalf("u8 body error = %v, want wire.ErrFormat", err)
	}
}
