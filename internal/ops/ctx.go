package ops

import "orpheus/internal/gemm"

// Ctx carries per-session execution state into kernels: the worker count,
// the GEMM packing context and a keyed scratch-buffer pool.
//
// Scratch buffers let kernels such as im2col reuse their unfold buffers
// across inference runs instead of reallocating. The torch-sim backend sets
// DisableScratchReuse to model a framework that allocates per operator
// call; the memory-planner ablation (experiment A3) measures the cost of
// that choice.
type Ctx struct {
	// Workers is the number of goroutines kernels may use. 1 reproduces
	// the paper's single-core evaluation.
	Workers int

	// DisableScratchReuse forces a fresh allocation on every Scratch call.
	DisableScratchReuse bool

	// Gemm is the shared packing context for GEMM-based kernels.
	Gemm gemm.Context

	scratch map[string][]float32
	cache   map[string][]float32

	// ScratchBytes accumulates the bytes handed out by Scratch, for the
	// memory-footprint experiments.
	ScratchBytes int64
}

// Cache returns the persistent buffer stored under key, or nil. Unlike
// Scratch buffers, cached buffers keep their contents between calls;
// kernels use them for run-invariant precomputation such as Winograd
// weight transforms.
func (c *Ctx) Cache(key string) []float32 { return c.cache[key] }

// PutCache stores buf persistently under key.
func (c *Ctx) PutCache(key string, buf []float32) {
	if c.cache == nil {
		c.cache = make(map[string][]float32)
	}
	c.cache[key] = buf
	c.ScratchBytes += int64(len(buf)) * 4
}

// NewCtx returns a context with the given worker count (minimum 1).
func NewCtx(workers int) *Ctx {
	if workers < 1 {
		workers = 1
	}
	return &Ctx{Workers: workers, scratch: make(map[string][]float32)}
}

// Scratch returns a zeroed float32 buffer of length n, reused across calls
// with the same key unless DisableScratchReuse is set.
func (c *Ctx) Scratch(key string, n int) []float32 {
	if c.DisableScratchReuse {
		c.ScratchBytes += int64(n) * 4
		return make([]float32, n)
	}
	if c.scratch == nil {
		c.scratch = make(map[string][]float32)
	}
	buf := c.scratch[key]
	if cap(buf) < n {
		buf = make([]float32, n)
		c.scratch[key] = buf
		c.ScratchBytes += int64(n) * 4
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PeakScratchBytes returns the total bytes currently retained by the
// scratch pool.
func (c *Ctx) PeakScratchBytes() int64 {
	var total int64
	for _, b := range c.scratch {
		total += int64(cap(b)) * 4
	}
	return total
}
