package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"orpheus/internal/tensor"
)

// Batcher coalesces concurrent single-sample predict requests over one
// SessionPool into batched Session.Run calls — dynamic batching as a
// library primitive any Go embedder can use, not an HTTP-server internal.
//
// A collector goroutine gathers requests until the batch is full (the
// plan's MaxBatch) or the earliest pending request's deadline expires,
// then hands the batch to a fresh goroutine that borrows a pooled
// session, stages the samples into one [n, ...] tensor, runs once, and
// fans the output rows back out. Collection continues while batches
// execute, and every executing batch holds its own pooled session, so
// batching stacks on top of — not instead of — the session pool's
// request concurrency.
//
// The request lifecycle is context-first:
//
//   - A context cancelled while the request is queued aborts it before it
//     is staged: Submit returns ctx.Err() and the sample never reaches a
//     Session.Run.
//   - Once a batch has claimed the request, completed work is not
//     discarded: Submit delivers the result even if the context expires
//     while the batch executes.
//   - Close drains gracefully: requests already handed to the collector
//     run to completion; later Submits fail with ErrClosed.
type Batcher struct {
	pool     *SessionPool
	inName   string
	outName  string
	inShape1 []int
	perVol   int
	max      int
	defWait  time.Duration
	immed    bool
	adaptive bool
	maxDepth int           // admission cap on queued requests (0 = unbounded)
	runLimit time.Duration // deadline on each batched Session.Run (0 = none)

	reqs      chan *batchReq
	flushNow  chan struct{}
	stop      chan struct{}
	collected chan struct{}
	batches   sync.WaitGroup
	closeOnce sync.Once
	runs      atomic.Int64

	// Observability counters (see Stats). All are plain atomics so the
	// hot path pays a handful of uncontended adds, never a lock.
	depth          atomic.Int64 // requests submitted but not yet claimed or abandoned
	served         atomic.Int64 // requests claimed into an executed batch
	flushFull      atomic.Int64
	flushDeadline  atomic.Int64
	flushImmediate atomic.Int64
	flushExplicit  atomic.Int64
	flushClose     atomic.Int64
	waitNs         atomic.Int64 // cumulative submit→launch wait of claimed requests
	rejected       atomic.Int64 // requests shed at admission (queue full or closed)
	cancelledReqs  atomic.Int64 // requests abandoned by their context while queued
	adaptiveCuts   atomic.Int64 // requests whose flush deadline load-shrunk
	waitHist       [WaitBuckets]atomic.Int64
}

// WaitBuckets is the number of fixed buckets in the queued-wait
// histogram: eight bounded latency bands plus one unbounded overflow.
const WaitBuckets = 9

// WaitBucketBounds holds the inclusive upper bounds of the histogram's
// first WaitBuckets-1 buckets; waits above the last bound land in the
// overflow bucket. The bands bracket the default 2ms flush deadline so
// the histogram separates "flushed early by a full batch" from "waited
// out the deadline" from "stuck behind a backlog".
var WaitBucketBounds = [WaitBuckets - 1]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
}

// waitBucket maps a queued wait to its histogram bucket index.
func waitBucket(d time.Duration) int {
	for i, hi := range WaitBucketBounds {
		if d <= hi {
			return i
		}
	}
	return WaitBuckets - 1
}

// BatcherStats is a point-in-time snapshot of a Batcher's counters.
// Flush counts classify every launched batch by what ended its gather:
// the batch filling to MaxBatch, the earliest member deadline expiring,
// immediate-flush mode, an explicit Flush call, or the Close drain.
// QueuedWait accumulates, over all claimed requests, the time from Submit
// to the moment their batch was handed off for execution — divide by
// Requests for the mean queueing latency.
type BatcherStats struct {
	// QueueDepth is the number of requests currently submitted but not
	// yet claimed by an executing batch (or abandoned by cancellation).
	QueueDepth int64
	// Runs is the number of batched Session.Run executions launched.
	Runs int64
	// Requests is the number of requests claimed into executed batches.
	Requests int64
	// FlushFull counts batches launched because they reached MaxBatch.
	FlushFull int64
	// FlushDeadline counts batches flushed by a member's deadline.
	FlushDeadline int64
	// FlushImmediate counts immediate-mode launches.
	FlushImmediate int64
	// FlushExplicit counts batches flushed by an explicit Flush call.
	FlushExplicit int64
	// FlushClose counts batches flushed by the Close drain.
	FlushClose int64
	// QueuedWait is the cumulative submit→launch wait of claimed requests.
	// Rejected and cancelled requests never contribute, so QueuedWait /
	// Requests is an unskewed mean queueing latency even under shedding.
	QueuedWait time.Duration
	// Rejected counts requests shed at admission: the queue-depth cap was
	// hit, or the batcher was already closed. They never occupied a queue
	// slot and are excluded from QueuedWait.
	Rejected int64
	// Cancelled counts requests abandoned by their own context while
	// queued — before any batch claimed them.
	Cancelled int64
	// AdaptiveCuts counts requests whose flush deadline was shortened by
	// Adaptive mode because peers were already queued at admission.
	AdaptiveCuts int64
	// WaitHistogram buckets every claimed request's submit→launch wait
	// into the fixed latency bands of WaitBucketBounds (the final bucket
	// is the unbounded overflow). Same population as QueuedWait, so the
	// histogram exposes the shape — tail and all — behind that mean.
	WaitHistogram [WaitBuckets]int64
}

// Stats returns a snapshot of the batcher's observability counters. It is
// safe to call concurrently with Submit/Flush/Close; the fields are read
// individually, so a snapshot taken mid-burst may be off by in-flight
// requests.
func (b *Batcher) Stats() BatcherStats {
	var hist [WaitBuckets]int64
	for i := range hist {
		hist[i] = b.waitHist[i].Load()
	}
	return BatcherStats{
		WaitHistogram:  hist,
		QueueDepth:     b.depth.Load(),
		Runs:           b.runs.Load(),
		Requests:       b.served.Load(),
		FlushFull:      b.flushFull.Load(),
		FlushDeadline:  b.flushDeadline.Load(),
		FlushImmediate: b.flushImmediate.Load(),
		FlushExplicit:  b.flushExplicit.Load(),
		FlushClose:     b.flushClose.Load(),
		QueuedWait:     time.Duration(b.waitNs.Load()),
		Rejected:       b.rejected.Load(),
		Cancelled:      b.cancelledReqs.Load(),
		AdaptiveCuts:   b.adaptiveCuts.Load(),
	}
}

// EstimateWait predicts how long a request admitted right now would wait
// before its batch launches: the mean historical queueing latency scaled
// by the current queue depth (relative to one batch width), floored at
// the flush deadline. The serve layer turns this into Retry-After for
// shed (429) responses; it is an estimate from live counters, not a
// guarantee.
func (b *Batcher) EstimateWait() time.Duration {
	st := b.Stats()
	if st.Requests == 0 {
		return b.defWait
	}
	mean := st.QueuedWait / time.Duration(st.Requests)
	est := mean
	if batches := (st.QueueDepth + int64(b.max) - 1) / int64(b.max); batches > 1 {
		est = mean * time.Duration(batches)
	}
	if est < b.defWait {
		est = b.defWait
	}
	return est
}

// BatcherOptions configures NewBatcher.
type BatcherOptions struct {
	// FlushDeadline is how long a lone request waits for batch peers
	// before the batcher flushes it through on its own (each Submit may
	// shorten it per request). Zero or negative selects DefaultFlushDeadline.
	FlushDeadline time.Duration

	// Immediate selects immediate-flush mode: every request executes as
	// soon as the collector sees it, batched only with requests that are
	// already queued at that instant. FlushDeadline is ignored.
	Immediate bool

	// QueueDepth caps how many requests may be queued (submitted but not
	// yet claimed by an executing batch) at once. A Submit that would
	// exceed the cap is rejected immediately with ErrOverloaded instead of
	// joining an unbounded pile-up — bounded admission for overload
	// resilience. 0 (the default) leaves the queue unbounded.
	QueueDepth int

	// RunTimeout bounds the execution time of each batched Session.Run
	// (not the queue wait — FlushDeadline and per-request waits govern
	// that). The run is cancelled at the next plan-step boundary when the
	// deadline passes, failing the batch's requests with
	// context.DeadlineExceeded. 0 (the default) leaves runs unbounded.
	RunTimeout time.Duration

	// Adaptive scales each request's flush deadline down with the
	// instantaneous queue depth: a request admitted with d peers already
	// queued waits at most wait/(1+d) for further batch mates. A lone
	// request on an idle batcher keeps the full deadline (nothing else
	// may be coming, so the wait buys batching headroom); under a
	// backlog the wait shrinks toward zero — peers are already queued,
	// so lingering only adds latency. The deadline restores itself as
	// the queue empties because the scale is recomputed per request.
	Adaptive bool
}

// DefaultFlushDeadline is the default per-request wait for batch peers.
const DefaultFlushDeadline = 2 * time.Millisecond

// batchReq states: a request is pending until either an executing batch
// claims (stages) it or a cancelled submitter abandons it; the CAS
// decides races between the two.
const (
	reqPending int32 = iota
	reqStaged
	reqAbandoned
)

// batchReq is one request in flight through the batcher. Exactly one of
// input and stage is set: input is a caller-owned sample copied into the
// batch, stage is a callback that writes the sample straight into the
// batch's staging row (the zero-copy path binary requests ride).
type batchReq struct {
	ctx     context.Context
	input   []float32
	stage   func(dst []float32)
	flushBy time.Time
	enq     time.Time // when Submit handed the request to the collector
	state   atomic.Int32
	done    chan batchOutcome
}

// batchOutcome carries one request's result or the batch's error.
type batchOutcome struct {
	res BatchResult
	err error
}

// BatchResult is one request's slice of a batched run.
type BatchResult struct {
	// Output holds one sample's output values (private to the request).
	Output []float32
	// Shape is the single-sample output shape.
	Shape []int
	// BatchSize reports how many requests shared the Session.Run that
	// produced this output.
	BatchSize int
}

// NewBatcher builds a dynamic batcher over the pool's plan. The plan must
// have exactly one input and one output (the flat-sample staging contract;
// multi-I/O graphs run through Session.Run directly) and is used at its
// compiled MaxBatch.
func NewBatcher(pool *SessionPool, opts BatcherOptions) (*Batcher, error) {
	ins, outs := pool.Plan().InputDescs(), pool.Plan().OutputDescs()
	if len(ins) != 1 || len(outs) != 1 {
		return nil, fmt.Errorf("runtime: batcher needs a single-input single-output plan, got %d inputs and %d outputs", len(ins), len(outs))
	}
	if opts.FlushDeadline <= 0 {
		opts.FlushDeadline = DefaultFlushDeadline
	}
	b := &Batcher{
		pool:      pool,
		inName:    ins[0].Name,
		outName:   outs[0].Name,
		inShape1:  ins[0].Shape,
		perVol:    tensor.Volume(ins[0].Shape),
		max:       pool.Plan().MaxBatch(),
		defWait:   opts.FlushDeadline,
		immed:     opts.Immediate,
		adaptive:  opts.Adaptive,
		maxDepth:  opts.QueueDepth,
		runLimit:  opts.RunTimeout,
		reqs:      make(chan *batchReq),
		flushNow:  make(chan struct{}, 1),
		stop:      make(chan struct{}),
		collected: make(chan struct{}),
	}
	go b.collect()
	return b, nil
}

// MaxBatch returns the largest batch one run coalesces (the plan's
// MaxBatch).
func (b *Batcher) MaxBatch() int { return b.max }

// Runs reports how many batched Session.Run executions the batcher has
// launched — observability for tests and load diagnostics.
func (b *Batcher) Runs() int64 { return b.runs.Load() }

// Submit enqueues one flat row-major sample (exactly the plan's
// single-sample input volume) and blocks until its outcome. wait caps how
// long the request lingers waiting for batch peers (≤ 0 means the
// batcher's FlushDeadline); ctx cancellation aborts the request while it
// is queued, but a request already claimed by an executing batch delivers
// its completed result regardless.
func (b *Batcher) Submit(ctx context.Context, sample []float32, wait time.Duration) (BatchResult, error) {
	if len(sample) != b.perVol {
		return BatchResult{}, fmt.Errorf("runtime: batcher sample has %d values, plan input %q wants %d: %w",
			len(sample), b.inName, b.perVol, ErrShapeMismatch)
	}
	return b.submit(ctx, sample, nil, wait)
}

// SubmitStaged is Submit for callers that materialise the sample straight
// into the batch — the zero-copy staging hook the binary wire protocol
// rides. Instead of handing over a []float32 (which the batch would copy
// into its staging tensor), the caller hands a stage callback; if the
// request is claimed by a batch, stage is called exactly once, on the
// executing batch's goroutine, with the request's staging row as dst
// (exactly SampleVolume values), and must fill all of it. A request
// cancelled while queued never has stage called. Any buffers stage reads
// from must stay valid until SubmitStaged returns.
func (b *Batcher) SubmitStaged(ctx context.Context, stage func(dst []float32), wait time.Duration) (BatchResult, error) {
	if stage == nil {
		return BatchResult{}, fmt.Errorf("runtime: batcher: nil stage callback: %w", ErrShapeMismatch)
	}
	return b.submit(ctx, nil, stage, wait)
}

// SampleVolume returns the flat value count of one sample — the length of
// the dst slice a SubmitStaged callback receives.
func (b *Batcher) SampleVolume() int { return b.perVol }

// submit is the shared enqueue path behind Submit and SubmitStaged.
func (b *Batcher) submit(ctx context.Context, sample []float32, stage func(dst []float32), wait time.Duration) (BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if wait <= 0 {
		wait = b.defWait
	}
	now := time.Now()
	r := &batchReq{
		ctx:     ctx,
		input:   sample,
		stage:   stage,
		flushBy: now.Add(wait),
		enq:     now,
		done:    make(chan batchOutcome, 1),
	}
	// Bounded admission: the queue-depth gauge is bumped optimistically
	// and rolled back when over the cap, so concurrent Submits can never
	// all squeeze past a nearly-full queue. Shed requests fail fast with
	// the typed ErrOverloaded — the caller (or the HTTP layer above it)
	// backs off instead of piling onto a saturated model.
	d := b.depth.Add(1)
	if b.maxDepth > 0 && d > int64(b.maxDepth) {
		b.depth.Add(-1)
		b.rejected.Add(1)
		return BatchResult{}, fmt.Errorf("runtime: batcher queue full (%d queued, cap %d): %w", d-1, b.maxDepth, ErrOverloaded)
	}
	// Load-adaptive flush: with peers already queued, batch mates are
	// here, not hypothetical — shrink this request's deadline in
	// proportion so a backlog flushes promptly, and let the full deadline
	// restore itself as the queue empties (the scale is per request, so
	// there is no sticky state to decay).
	if b.adaptive && d > 1 {
		r.flushBy = now.Add(wait / time.Duration(d))
		b.adaptiveCuts.Add(1)
	}
	select {
	case b.reqs <- r:
	case <-b.stop:
		b.depth.Add(-1)
		b.rejected.Add(1)
		return BatchResult{}, fmt.Errorf("runtime: batcher: %w", ErrClosed)
	case <-ctx.Done():
		b.depth.Add(-1)
		b.cancelledReqs.Add(1)
		return BatchResult{}, ctx.Err()
	}
	select {
	case o := <-r.done:
		return o.res, o.err
	case <-ctx.Done():
		// Queued requests abandon cleanly; the CAS loses only against a
		// batch that already claimed the request, and claimed work is
		// delivered, not discarded. Whichever side wins the CAS owns the
		// queue-depth decrement, so every request leaves the gauge once.
		if r.state.CompareAndSwap(reqPending, reqAbandoned) {
			b.depth.Add(-1)
			b.cancelledReqs.Add(1)
			return BatchResult{}, ctx.Err()
		}
		o := <-r.done
		return o.res, o.err
	}
}

// Flush asks the collector to execute whatever is queued right now
// instead of waiting out the flush deadline. When nothing is gathering,
// the signal applies to the next batch. Flush never blocks.
func (b *Batcher) Flush() {
	select {
	case b.flushNow <- struct{}{}:
	default:
	}
}

// Close stops the batcher and drains it: requests already handed to the
// collector execute to completion, queued-but-unreceived and future
// Submits fail with ErrClosed, and Close returns only after every
// in-flight batch has delivered its results. Safe to call more than once
// and from multiple goroutines.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.stop) })
	<-b.collected
	b.batches.Wait()
}

// collect is the batching loop: one batch at a time is gathered, then
// executed asynchronously while the next gathers.
func (b *Batcher) collect() {
	defer close(b.collected)
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	for {
		var first *batchReq
		select {
		case first = <-b.reqs:
		case <-b.stop:
			return
		}
		batch := append(make([]*batchReq, 0, b.max), first)
		if b.immed {
			// Immediate mode: batch only what is already queued, without
			// waiting for anyone.
		drain:
			for len(batch) < b.max {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				default:
					break drain
				}
			}
			b.flushImmediate.Add(1)
		} else {
			cause := &b.flushFull // reached only by filling to b.max
			flushBy := first.flushBy
			timer.Reset(time.Until(flushBy))
		gather:
			for len(batch) < b.max {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
					// The batch flushes at the earliest deadline any member
					// carries, so one impatient request caps everyone's wait.
					if r.flushBy.Before(flushBy) {
						flushBy = r.flushBy
						timer.Reset(time.Until(flushBy))
					}
				case <-timer.C:
					cause = &b.flushDeadline
					break gather
				case <-b.flushNow:
					cause = &b.flushExplicit
					break gather
				case <-b.stop:
					// Graceful drain: run what is already gathered.
					stopTimer(timer)
					b.flushClose.Add(1)
					b.launch(batch)
					return
				}
			}
			stopTimer(timer)
			cause.Add(1)
		}
		b.launch(batch)
	}
}

// stopTimer stops t and clears any pending expiry, leaving it ready for
// Reset.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// launch hands a gathered batch to its own goroutine, tracked so Close
// can wait for in-flight work.
func (b *Batcher) launch(batch []*batchReq) {
	b.batches.Add(1)
	go func() {
		defer b.batches.Done()
		b.runBatch(batch)
	}()
}

// runBatch claims the batch's live requests, executes them as one
// Session.Run and fans results out. Staging and per-request row copies
// are allocated per batch: the rows must outlive the session borrow, so
// pooling here would complicate ownership for noise-level savings — the
// allocation-free batched path is PredictBatchInto at the facade.
func (b *Batcher) runBatch(batch []*batchReq) {
	// Claim phase: requests cancelled while queued are dropped before
	// staging, so their plans never run. A successful claim owns the
	// queue-depth decrement (abandoners decrement on their own CAS win).
	launched := time.Now()
	claimed := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() == nil && r.state.CompareAndSwap(reqPending, reqStaged) {
			claimed = append(claimed, r)
			b.depth.Add(-1)
			w := launched.Sub(r.enq)
			b.waitNs.Add(int64(w))
			b.waitHist[waitBucket(w)].Add(1)
		}
	}
	n := len(claimed)
	if n == 0 {
		return
	}
	b.runs.Add(1)
	b.served.Add(int64(n))
	staging := make([]float32, n*b.perVol)
	for i, r := range claimed {
		row := staging[i*b.perVol : (i+1)*b.perVol]
		if r.stage != nil {
			r.stage(row)
		} else {
			copy(row, r.input)
		}
	}
	shape := append([]int(nil), b.inShape1...)
	shape[0] *= n
	in := tensor.FromSlice(staging, shape...)

	// The batch runs detached from any single caller's context: it serves
	// every claimed request, and one caller's deadline must not discard
	// peers' work. RunTimeout is the batch-level bound — an execution
	// deadline covering the run itself, enforced at step boundaries.
	runCtx := context.Background()
	if b.runLimit > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, b.runLimit)
		defer cancel()
	}
	sess := b.pool.Get()
	outs, err := sess.Run(runCtx, map[string]*tensor.Tensor{b.inName: in})
	var out *tensor.Tensor
	if err == nil {
		if out = outs[b.outName]; out == nil {
			err = fmt.Errorf("runtime: batcher output %q missing: %w", b.outName, ErrNoOutput)
		}
	}
	if err == nil && (out.Rank() == 0 || out.Dim(0)%n != 0) {
		err = fmt.Errorf("runtime: batcher output %v does not split across batch %d: %w", out.Shape(), n, ErrShapeMismatch)
	}
	if err != nil {
		b.pool.Put(sess)
		for _, r := range claimed {
			r.done <- batchOutcome{err: err}
		}
		return
	}
	rowVol := out.Size() / n
	rowShape := append([]int(nil), out.Shape()...)
	rowShape[0] /= n
	od := out.Data()
	for i, r := range claimed {
		row := make([]float32, rowVol)
		copy(row, od[i*rowVol:(i+1)*rowVol])
		r.done <- batchOutcome{res: BatchResult{Output: row, Shape: rowShape, BatchSize: n}}
	}
	// Results are copied out above, so the session (whose arena the output
	// aliases) can go back to the pool only now.
	b.pool.Put(sess)
}
