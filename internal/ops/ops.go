// Package ops implements the Orpheus neural-network operator library.
//
// The package embodies the paper's central design idea: layers are first
// class citizens with multiple interchangeable implementations ("kernels")
// that are selected at runtime. Every operator registers one or more
// Kernels keyed by operator type; a backend policy (internal/backend) picks
// which kernel executes each node. Every operator also registers a shape
// inference function with internal/graph.
//
// Kernel naming follows "<op-family>.<algorithm>", e.g. "conv.im2col",
// "conv.spatialpack", "dense.gemm". The first kernel registered for an op
// is its correctness reference; the cross-kernel equivalence tests compare
// every other kernel against it.
package ops

import (
	"fmt"
	"sort"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Kernel is one concrete implementation of an operator.
type Kernel interface {
	// Name uniquely identifies the implementation, e.g. "conv.winograd".
	Name() string
	// Op is the operator type this kernel executes, e.g. "Conv".
	Op() string
	// Supports reports whether the kernel can execute this node (some
	// algorithms only handle a subset of attribute combinations).
	Supports(n *graph.Node) bool
	// Run executes the node. in and out are the node's input and output
	// tensors, pre-allocated with the inferred shapes. Out tensors are
	// zero-filled by the runtime unless the kernel declares that it fully
	// overwrites them (see KernelOverwrites).
	Run(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error
}

// Overwriter is optionally implemented by kernels that report whether they
// write every element of every output tensor before Run returns. The
// runtime skips the per-run arena zero-fill for such kernels; accumulating
// kernels (anything built on C += A·B, or Pad relying on a zeroed border)
// must not claim it.
type Overwriter interface {
	Overwrites(n *graph.Node) bool
}

// KernelOverwrites reports whether k fully overwrites its outputs when
// executing n. Kernels that do not implement Overwriter are conservatively
// assumed to need zero-filled outputs.
func KernelOverwrites(k Kernel, n *graph.Node) bool {
	if o, ok := k.(Overwriter); ok {
		return o.Overwrites(n)
	}
	return false
}

// kernelFunc adapts plain functions to the Kernel interface.
type kernelFunc struct {
	name, op   string
	supports   func(n *graph.Node) bool
	overwrites bool
	run        func(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error
}

func (k *kernelFunc) Name() string { return k.name }
func (k *kernelFunc) Op() string   { return k.op }
func (k *kernelFunc) Supports(n *graph.Node) bool {
	if k.supports == nil {
		return true
	}
	return k.supports(n)
}
func (k *kernelFunc) Overwrites(n *graph.Node) bool { return k.overwrites }
func (k *kernelFunc) Run(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	return k.run(ctx, n, in, out)
}

// NewKernel builds a Kernel from functions. supports may be nil (always
// supported). The kernel is assumed to need zero-filled outputs; use
// NewOverwritingKernel when it writes every output element itself.
func NewKernel(name, op string,
	supports func(n *graph.Node) bool,
	run func(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error) Kernel {
	return &kernelFunc{name: name, op: op, supports: supports, run: run}
}

// NewOverwritingKernel is NewKernel for kernels that write every element of
// every output tensor, letting the runtime skip the arena zero-fill.
func NewOverwritingKernel(name, op string,
	supports func(n *graph.Node) bool,
	run func(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error) Kernel {
	return &kernelFunc{name: name, op: op, supports: supports, overwrites: true, run: run}
}

var (
	kernelsByOp   = map[string][]Kernel{}
	kernelsByName = map[string]Kernel{}
	referenceFor  = map[string]Kernel{}
	refExplicit   = map[string]bool{}
	quantizedSet  = map[string]bool{}
)

// Register adds a kernel to the registry. Unless RegisterReference names
// another kernel explicitly, the first kernel registered for an op becomes
// that op's correctness reference. Duplicate kernel names panic (two
// implementations claiming one identity is a programming error).
func Register(k Kernel) {
	if _, dup := kernelsByName[k.Name()]; dup {
		panic(fmt.Sprintf("ops: duplicate kernel %q", k.Name()))
	}
	kernelsByName[k.Name()] = k
	kernelsByOp[k.Op()] = append(kernelsByOp[k.Op()], k)
	if _, ok := referenceFor[k.Op()]; !ok {
		referenceFor[k.Op()] = k
	}
}

// RegisterQuantized registers k and marks it as a reduced-precision
// implementation: numerically useful but not bit-comparable to the op's
// fp32 kernels. Backend policies skip quantized kernels unless the plan
// opted into them, and the cross-kernel equivalence tests compare them
// under a quantization tolerance rather than the fp32 one.
func RegisterQuantized(k Kernel) {
	Register(k)
	quantizedSet[k.Name()] = true
}

// IsQuantized reports whether k was registered as a reduced-precision
// kernel.
func IsQuantized(k Kernel) bool {
	return k != nil && quantizedSet[k.Name()]
}

// RegisterReference registers k and marks it as the op's correctness
// reference, regardless of file-init order. At most one kernel per op may
// do this.
func RegisterReference(k Kernel) {
	Register(k)
	if refExplicit[k.Op()] {
		panic(fmt.Sprintf("ops: op %q already has an explicit reference kernel", k.Op()))
	}
	refExplicit[k.Op()] = true
	referenceFor[k.Op()] = k
}

// ForOp returns the kernels registered for op, in registration order. The
// returned slice must not be modified.
func ForOp(op string) []Kernel { return kernelsByOp[op] }

// ByName returns the kernel with the given name, or nil.
func ByName(name string) Kernel { return kernelsByName[name] }

// Reference returns the correctness-reference kernel for op, or nil.
func Reference(op string) Kernel { return referenceFor[op] }

// Ops returns every operator type with at least one kernel, sorted.
func Ops() []string {
	out := make([]string, 0, len(kernelsByOp))
	for op := range kernelsByOp {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// KernelNames returns every registered kernel name, sorted.
func KernelNames() []string {
	out := make([]string, 0, len(kernelsByName))
	for name := range kernelsByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
