package gemm

import (
	"sync"
	"sync/atomic"
)

// Pooled execution of quantized GEMMs. task8 mirrors task: the call is
// split into (image, macro-tile) units claimed from a shared counter, and
// each claimed tile runs runTile8 — full-K accumulation into the worker's
// own int32 scratch followed by the requantize store — so caller- and
// helper-executed tiles finish identically and no two tiles touch the same
// C element.
type task8 struct {
	call         CallInt8
	kern         *kernel8
	tileM, tileN int
	next         atomic.Int64
	wg           sync.WaitGroup
	failure      panicSlot
}

// finish implements poolWork.
func (t *task8) finish() { t.wg.Done() }

// fail implements poolWork.
func (t *task8) fail(r any) { t.failure.set(r) }

// drain implements poolWork: claim and execute tiles until the grid is
// exhausted.
func (t *task8) drain(ctx *Context) {
	tiles := int64(t.tileM) * int64(t.tileN) * int64(t.call.images())
	grid := t.tileM * t.tileN
	for {
		i := t.next.Add(1) - 1
		if i >= tiles {
			return
		}
		idx := int(i)
		img := idx / grid
		idx %= grid
		ii := (idx / t.tileN) * mcBlock
		jj := (idx % t.tileN) * ncBlock
		ctx.runTile8(t.kern, &t.call, img, ii, jj)
	}
}

var task8Pool = sync.Pool{New: func() any { return new(task8) }}

// RunInt8 executes the quantized call using up to workers goroutines, the
// caller included, with the same recruitment and panic-containment rules
// as Run. ctx supplies the caller's packing and accumulator scratch.
func (p *Pool) RunInt8(ctx *Context, c CallInt8, workers int) {
	c.validate()
	if c.M == 0 || c.N == 0 {
		return
	}
	tm := (c.M + mcBlock - 1) / mcBlock
	tn := (c.N + ncBlock - 1) / ncBlock
	tiles := tm * tn * c.images()
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 {
		ctx.RunInt8(c)
		return
	}
	t := task8Pool.Get().(*task8)
	t.call = c
	t.kern = activeKernel8()
	t.tileM, t.tileN = tm, tn
	t.next.Store(0)
	helpers := workers - 1
	if helpers > p.workers {
		helpers = p.workers
	}
	for i := 0; i < helpers; i++ {
		t.wg.Add(1)
		select {
		case p.tasks <- t:
		default:
			// No worker idle right now; the caller keeps this share.
			t.wg.Done()
		}
	}
	drainRecover(t, ctx)
	t.wg.Wait()
	r := t.failure.take()
	t.call = CallInt8{}
	t.kern = nil
	task8Pool.Put(t)
	if r != nil {
		// Re-raise on the submitting goroutine, like Run.
		panic(r)
	}
}
