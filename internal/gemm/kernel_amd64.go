//go:build amd64 && !noasm

package gemm

// AVX2/FMA dispatch for amd64. The 8x8 assembly micro-kernel holds the
// full micro-tile in eight YMM accumulators (one row of eight float32s
// each) and issues eight fused multiply-adds per packed k step — four
// 8-wide FMAs per pure-Go scalar's worth of work. Feature detection is a
// hand-rolled CPUID/XGETBV probe (no external dependency): the kernel
// registers only when the CPU reports AVX2 and FMA and the OS saves the
// YMM state, so the portable kernel remains the default everywhere else.

func init() {
	if hasAVX2FMA() {
		registerKernel(&kernel{name: "avx2", mr: 8, nr: 8,
			micro: adaptAsmKernel(microKernel8x8AVX2, 8, 8)})
	}
}

// microKernel8x8AVX2 computes one 8x8 block: C[r][cc] (+)= sum_p
// pa[p*8+r]*pb[p*8+cc], with ldc the row stride of c in elements and kc
// ≥ 1. Implemented in kernel_amd64.s.
//
//go:noescape
func microKernel8x8AVX2(pa, pb, c *float32, kc, ldc int64, store bool)

// cpuid executes the CPUID instruction for (eaxIn, ecxIn).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled XSAVE state).
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether this CPU and OS support the AVX2 kernel:
// CPUID must advertise OSXSAVE+AVX+FMA and AVX2, and XCR0 must show the
// OS saving both XMM and YMM register state across context switches.
func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	const xmmYmm = 1<<1 | 1<<2
	if xlo, _ := xgetbv(); xlo&xmmYmm != xmmYmm {
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2 != 0
}
