package tensor

import (
	"math"
	"testing"
)

func TestAddMulInPlace(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	a.AddInPlace(b)
	want := []float32{11, 22, 33, 44}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, v, want[i])
		}
	}
	a.MulInPlace(b)
	if a.At(1, 1) != 44*40 {
		t.Fatalf("MulInPlace = %v", a.At(1, 1))
	}
}

func TestAddInPlaceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	New(2, 2).AddInPlace(New(4))
}

func TestScaleFillZero(t *testing.T) {
	a := Full(2, 3)
	a.Scale(1.5)
	if a.At(0) != 3 {
		t.Fatalf("Scale = %v", a.At(0))
	}
	a.Fill(-1)
	if a.Sum() != -3 {
		t.Fatalf("Fill/Sum = %v", a.Sum())
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestSumMean(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	if a.Sum() != 10 || a.Mean() != 2.5 {
		t.Fatalf("Sum=%v Mean=%v", a.Sum(), a.Mean())
	}
	empty := New(0)
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestMaxMinArg(t *testing.T) {
	a := FromSlice([]float32{3, -5, 7, 1}, 4)
	v, i := a.Max()
	if v != 7 || i != 2 {
		t.Fatalf("Max = %v@%d", v, i)
	}
	v, i = a.Min()
	if v != -5 || i != 1 {
		t.Fatalf("Min = %v@%d", v, i)
	}
}

func TestAbsMaxL2(t *testing.T) {
	a := FromSlice([]float32{3, -4}, 2)
	if a.AbsMax() != 4 {
		t.Fatalf("AbsMax = %v", a.AbsMax())
	}
	if math.Abs(float64(a.L2Norm())-5) > 1e-6 {
		t.Fatalf("L2Norm = %v, want 5", a.L2Norm())
	}
}

func TestTopK(t *testing.T) {
	a := FromSlice([]float32{0.1, 0.9, 0.3, 0.7, 0.5}, 5)
	got := a.TopK(3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(a.TopK(100)) != 5 {
		t.Fatal("TopK should clamp k")
	}
	if a.TopK(0) != nil {
		t.Fatal("TopK(0) should be nil")
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2, 3.00001}, 3)
	if !AllClose(a, b, 1e-4) {
		t.Fatal("AllClose should accept tiny diff")
	}
	c := FromSlice([]float32{1, 2, 4}, 3)
	if AllClose(a, c, 1e-4) {
		t.Fatal("AllClose should reject large diff")
	}
	if AllClose(a, New(4), 1) {
		t.Fatal("AllClose should reject shape mismatch")
	}
	nan := FromSlice([]float32{float32(math.NaN()), 2, 3}, 3)
	if AllClose(nan, nan, 1) {
		t.Fatal("AllClose should reject NaN")
	}
}

func TestMaxAbsDiffRelError(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.5, 2}, 2)
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if RelError(a, a) > 1e-9 {
		t.Fatal("RelError of identical tensors should be ~0")
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if a.HasNaN() {
		t.Fatal("clean tensor reported NaN")
	}
	a.Set(float32(math.Inf(1)), 0)
	if !a.HasNaN() {
		t.Fatal("Inf not detected")
	}
}
