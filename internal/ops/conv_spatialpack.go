package ops

import (
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// conv.spatialpack — spatial-pack convolution in the style of TVM's ARM
// CPU schedule, which the paper credits for TVM's wins on small models.
//
// Instead of materialising the full im2col matrix, the output is processed
// in small spatial tiles. For each tile the receptive fields are gathered
// once into an L1-resident patch buffer, then all output channels are
// accumulated over it with an unrolled inner loop. The working set stays
// in cache, so small layers (small channel counts / spatial dims) avoid
// the packing and memory traffic that full GEMM pays; on large layers the
// repeated weight traversal per tile loses to packed GEMM. That asymmetry
// is exactly the crossover Figure 2 of the paper shows.
func init() {
	Register(NewOverwritingKernel("conv.spatialpack", "Conv", supportsSpatialPack, runConvSpatialPack))
}

func supportsSpatialPack(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == "" && p.groups == 1 && p.dh == 1 && p.dw == 1
}

// Tile geometry: 32 output pixels per tile keeps patch buffers within L1
// for typical kernel sizes.
const spTile = 32

func runConvSpatialPack(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data() // [cout][cin*kh*kw], rows contiguous
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	kdim := p.cin * p.kh * p.kw
	// The gather writes every patch element (tail positions included),
	// so the scratch needs no zero-fill.
	patch := ctx.ScratchUninit("conv.spatialpack/patch", n, kdim*spTile)
	spatial := p.oh * p.ow

	for b := 0; b < p.n; b++ {
		xb := x[b*p.cin*p.h*p.w:]
		yb := y[b*p.cout*spatial:]
		for t0 := 0; t0 < spatial; t0 += spTile {
			tn := spatial - t0
			if tn > spTile {
				tn = spTile
			}
			// Gather: patch[kd][t] = input value feeding output pixel t0+t
			// through weight element kd.
			for ic := 0; ic < p.cin; ic++ {
				plane := xb[ic*p.h*p.w:]
				for ky := 0; ky < p.kh; ky++ {
					for kx := 0; kx < p.kw; kx++ {
						kd := (ic*p.kh+ky)*p.kw + kx
						row := patch[kd*spTile : kd*spTile+spTile]
						for t := 0; t < tn; t++ {
							op := t0 + t
							oy := op / p.ow
							ox := op % p.ow
							iy := oy*p.sh - p.padT + ky
							ix := ox*p.sw - p.padL + kx
							if iy < 0 || iy >= p.h || ix < 0 || ix >= p.w {
								row[t] = 0
							} else {
								row[t] = plane[iy*p.w+ix]
							}
						}
						for t := tn; t < spTile; t++ {
							row[t] = 0
						}
					}
				}
			}
			// Accumulate all output channels over the packed patch.
			for oc := 0; oc < p.cout; oc++ {
				var acc [spTile]float32
				wRow := w[oc*kdim : (oc+1)*kdim]
				for kd, wv := range wRow {
					if wv == 0 {
						continue
					}
					row := patch[kd*spTile : kd*spTile+spTile : kd*spTile+spTile]
					acc[0] += wv * row[0]
					acc[1] += wv * row[1]
					acc[2] += wv * row[2]
					acc[3] += wv * row[3]
					acc[4] += wv * row[4]
					acc[5] += wv * row[5]
					acc[6] += wv * row[6]
					acc[7] += wv * row[7]
					acc[8] += wv * row[8]
					acc[9] += wv * row[9]
					acc[10] += wv * row[10]
					acc[11] += wv * row[11]
					acc[12] += wv * row[12]
					acc[13] += wv * row[13]
					acc[14] += wv * row[14]
					acc[15] += wv * row[15]
					acc[16] += wv * row[16]
					acc[17] += wv * row[17]
					acc[18] += wv * row[18]
					acc[19] += wv * row[19]
					acc[20] += wv * row[20]
					acc[21] += wv * row[21]
					acc[22] += wv * row[22]
					acc[23] += wv * row[23]
					acc[24] += wv * row[24]
					acc[25] += wv * row[25]
					acc[26] += wv * row[26]
					acc[27] += wv * row[27]
					acc[28] += wv * row[28]
					acc[29] += wv * row[29]
					acc[30] += wv * row[30]
					acc[31] += wv * row[31]
				}
				var bv float32
				if bias != nil {
					bv = bias[oc]
				}
				dst := yb[oc*spatial+t0:]
				for t := 0; t < tn; t++ {
					dst[t] = acc[t] + bv
				}
			}
		}
	}
	ctx.Sweep(y, nil, p.n*p.cout, p.oh*p.ow, p.activation, p.alpha)
	return nil
}
