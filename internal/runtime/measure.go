package runtime

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"orpheus/internal/tensor"
)

// Stats summarises repeated inference timings.
type Stats struct {
	Runs   int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	Stddev time.Duration
}

// String formats the stats compactly for experiment tables.
func (s Stats) String() string {
	return fmt.Sprintf("median %s (min %s, mean %s ± %s, n=%d)",
		s.Median, s.Min, s.Mean, s.Stddev, s.Runs)
}

// Measure runs warm-up iterations followed by timed repetitions of the
// whole graph and returns the distribution. This mirrors the paper's
// experiment infrastructure for "evaluating full networks". A cancelled
// ctx aborts the measurement at the next plan-step boundary, so long
// sweeps stay interruptible.
func Measure(ctx context.Context, s *Session, inputs map[string]*tensor.Tensor, warmup, reps int) (Stats, error) {
	if reps < 1 {
		return Stats{}, fmt.Errorf("runtime: Measure needs at least 1 rep, got %d", reps)
	}
	for i := 0; i < warmup; i++ {
		if _, err := s.Run(ctx, inputs); err != nil {
			return Stats{}, err
		}
	}
	durations := make([]time.Duration, reps)
	for i := range durations {
		start := time.Now()
		if _, err := s.Run(ctx, inputs); err != nil {
			return Stats{}, err
		}
		durations[i] = time.Since(start)
	}
	return Summarise(durations), nil
}

// Summarise computes distribution statistics over raw durations.
func Summarise(durations []time.Duration) Stats {
	if len(durations) == 0 {
		return Stats{}
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, sq float64
	for _, d := range sorted {
		f := float64(d)
		sum += f
		sq += f * f
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{
		Runs:   len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Median: sorted[len(sorted)/2],
		Stddev: time.Duration(math.Sqrt(variance)),
	}
}
