package tensor

import (
	"testing"
	"testing/quick"
)

// Property tests (testing/quick) over the core data-structure invariants.

func TestPropReshapePreservesData(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		h := int(a%8) + 1
		w := int(b%8) + 1
		x := Rand(NewRNG(seed), -1, 1, h, w)
		y := x.Reshape(w, h).Reshape(h, w)
		return AllClose(x, y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeRoundTrip(t *testing.T) {
	f := func(seed uint64, a, b, c uint8) bool {
		d0, d1, d2 := int(a%5)+1, int(b%5)+1, int(c%5)+1
		x := Rand(NewRNG(seed), -1, 1, d0, d1, d2)
		y := x.Transpose(1, 2, 0).Transpose(2, 0, 1)
		return AllClose(x, y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropConcatSliceInverse(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		n1 := int(a%4) + 1
		n2 := int(b%4) + 1
		r := NewRNG(seed)
		x := Rand(r, -1, 1, n1, 3)
		y := Rand(r, -1, 1, n2, 3)
		c := Concat(0, x, y)
		if !ShapeEq(c.Shape(), []int{n1 + n2, 3}) {
			return false
		}
		for i := 0; i < n1; i++ {
			if !AllClose(c.SliceDim0(i), x.SliceDim0(i), 0) {
				return false
			}
		}
		for i := 0; i < n2; i++ {
			if !AllClose(c.SliceDim0(n1+i), y.SliceDim0(i), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPadThenCropIsIdentity(t *testing.T) {
	f := func(seed uint64, p uint8) bool {
		pad := int(p % 4)
		x := Rand(NewRNG(seed), -1, 1, 1, 2, 5, 5)
		y := x.Pad2D(pad, pad, pad, pad, 0)
		// Crop back by indexing.
		for c := 0; c < 2; c++ {
			for i := 0; i < 5; i++ {
				for j := 0; j < 5; j++ {
					if y.At(0, c, i+pad, j+pad) != x.At(0, c, i, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSumLinear(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		x := Rand(r, -1, 1, 64)
		y := Rand(r, -1, 1, 64)
		sx, sy := x.Sum(), y.Sum()
		x.AddInPlace(y)
		diff := float64(x.Sum() - (sx + sy))
		return diff < 1e-3 && diff > -1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIm2ColVolumeAndFinite(t *testing.T) {
	f := func(seed uint64, kb, sb uint8) bool {
		k := int(kb%3) + 1 // kernel 1..3
		s := int(sb%2) + 1 // stride 1..2
		x := Rand(NewRNG(seed), -1, 1, 1, 2, 8, 8)
		pad := k / 2
		oh := (8+2*pad-k)/s + 1
		ow := oh
		cols := Im2Col(x, k, k, s, s, pad, pad, 1, 1, oh, ow)
		if !ShapeEq(cols.Shape(), []int{2 * k * k, oh * ow}) {
			return false
		}
		return !cols.HasNaN()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
