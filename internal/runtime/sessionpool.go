package runtime

import (
	"context"
	"sync"

	"orpheus/internal/tensor"
)

// SessionPool serves concurrent inference over one compiled Plan. Sessions
// are not safe for concurrent use — each owns a mutable arena and kernel
// scratch — so the pool hands every in-flight request its own session via
// sync.Pool: N concurrent callers get N sessions, idle sessions are
// reclaimed by the GC under memory pressure, and all sessions share the
// plan's constant cache, so weights are packed once per plan rather than
// once per request or per session.
type SessionPool struct {
	plan *Plan
	pool sync.Pool
}

// NewSessionPool returns a pool over the plan. Sessions are created
// lazily, on first concurrent demand.
func NewSessionPool(plan *Plan) *SessionPool {
	sp := &SessionPool{plan: plan}
	sp.pool.New = func() any { return NewSession(plan) }
	return sp
}

// Plan returns the compiled plan the pool serves.
func (sp *SessionPool) Plan() *Plan { return sp.plan }

// Get borrows a session. The caller must return it with Put, and must
// finish reading any Run results (which alias the session's arena) before
// doing so.
func (sp *SessionPool) Get() *Session { return sp.pool.Get().(*Session) }

// Put returns a borrowed session to the pool.
func (sp *SessionPool) Put(s *Session) { sp.pool.Put(s) }

// Run borrows a session, executes the graph and returns cloned outputs
// that remain valid after the session goes back to the pool. It is safe
// for any number of concurrent callers. Cancellation via ctx is honoured
// at plan-step boundaries, exactly as in Session.Run.
func (sp *SessionPool) Run(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	s := sp.Get()
	outs, err := s.Run(ctx, inputs)
	if err != nil {
		sp.Put(s)
		return nil, err
	}
	copied := make(map[string]*tensor.Tensor, len(outs))
	for k, v := range outs {
		copied[k] = v.Clone()
	}
	sp.Put(s)
	return copied, nil
}
