// Package serve embeds Orpheus behind an HTTP/JSON API — the deployment
// role the paper assigns to its Python bindings ("embedding in other
// experimental workflows"), done the Go way with net/http. A Server hosts
// one or more compiled sessions and exposes:
//
//	GET  /healthz          liveness
//	GET  /models           loaded models with shapes and footprints
//	POST /predict/{model}  {"input": [...]} → {"output": [...], "topk": ...}
//	POST /profile/{model}  same input → per-layer timing breakdown
//
// Inputs are flat row-major float32 arrays matching the model's input
// shape; the handler validates length so malformed clients get a 400, not
// a panic.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// Entry is one hosted model. Requests are served concurrently: each
// in-flight request borrows a session from the entry's pool, so N clients
// hitting one model get N private arenas over one shared plan (and one
// shared set of packed weights) instead of queueing on a mutex.
type Entry struct {
	Name     string
	Backend  string
	graph    *graph.Graph
	sessions *runtime.SessionPool
}

// Server hosts compiled models behind an http.Handler.
type Server struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// New returns an empty server.
func New() *Server {
	return &Server{entries: make(map[string]*Entry)}
}

// AddModel compiles g under the named backend and hosts it as name.
func (s *Server) AddModel(name string, g *graph.Graph, backendName string, workers int) error {
	be, err := backend.ByName(backendName)
	if err != nil {
		return err
	}
	plan, err := be.Prepare(g, workers)
	if err != nil {
		return fmt.Errorf("serve: compiling %s: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("serve: model %q already hosted", name)
	}
	s.entries[name] = &Entry{
		Name:     name,
		Backend:  backendName,
		graph:    g,
		sessions: runtime.NewSessionPool(plan),
	}
	return nil
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("POST /predict/{model}", s.handlePredict)
	mux.HandleFunc("POST /profile/{model}", s.handleProfile)
	return mux
}

// modelInfo is the /models response element.
type modelInfo struct {
	Name       string `json:"name"`
	Backend    string `json:"backend"`
	InputShape []int  `json:"input_shape"`
	Nodes      int    `json:"nodes"`
	ParamBytes int64  `json:"param_bytes"`
	ArenaBytes int64  `json:"arena_bytes"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]modelInfo, 0, len(s.entries))
	for _, e := range s.entries {
		infos = append(infos, modelInfo{
			Name:       e.Name,
			Backend:    e.Backend,
			InputShape: e.graph.Inputs[0].Shape,
			Nodes:      len(e.graph.Nodes),
			ParamBytes: e.sessions.Plan().WeightBytes(),
			ArenaBytes: e.sessions.Plan().ArenaBytes(),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// predictRequest is the /predict and /profile request body.
type predictRequest struct {
	Input []float32 `json:"input"`
	TopK  int       `json:"topk,omitempty"`
}

// predictResponse is the /predict response body.
type predictResponse struct {
	Output    []float32 `json:"output"`
	Shape     []int     `json:"shape"`
	TopK      []int     `json:"topk,omitempty"`
	LatencyMs float64   `json:"latency_ms"`
}

// layerTimingJSON is one /profile breakdown row.
type layerTimingJSON struct {
	Layer    string  `json:"layer"`
	Op       string  `json:"op"`
	Kernel   string  `json:"kernel"`
	Ms       float64 `json:"ms"`
	GFlopsPS float64 `json:"gflops_per_s"`
}

func (s *Server) entry(name string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	return e, ok
}

// decodeInput parses and validates the request body against the model's
// input shape.
func (e *Entry) decodeInput(r *http.Request) (*tensor.Tensor, int, error) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, 0, fmt.Errorf("invalid JSON: %w", err)
	}
	shape := e.graph.Inputs[0].Shape
	want := tensor.Volume(shape)
	if len(req.Input) != want {
		return nil, 0, fmt.Errorf("input has %d values, model %s wants %d (%s)",
			len(req.Input), e.Name, want, tensor.ShapeString(shape))
	}
	return tensor.FromSlice(req.Input, shape...), req.TopK, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(r.PathValue("model"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not hosted", r.PathValue("model")))
		return
	}
	in, topK, err := e.decodeInput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess := e.sessions.Get()
	start := time.Now()
	outs, err := sess.Run(map[string]*tensor.Tensor{e.graph.Inputs[0].Name: in})
	elapsed := time.Since(start)
	var out *tensor.Tensor
	for _, v := range outs {
		out = v.Clone()
	}
	e.sessions.Put(sess)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := predictResponse{
		Output:    out.Data(),
		Shape:     out.Shape(),
		LatencyMs: float64(elapsed) / 1e6,
	}
	if topK > 0 {
		resp.TopK = out.TopK(topK)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(r.PathValue("model"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not hosted", r.PathValue("model")))
		return
	}
	in, _, err := e.decodeInput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess := e.sessions.Get()
	_, timings, err := sess.RunProfiled(map[string]*tensor.Tensor{e.graph.Inputs[0].Name: in})
	e.sessions.Put(sess)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	rows := make([]layerTimingJSON, len(timings))
	for i, lt := range timings {
		var gf float64
		if lt.Duration > 0 {
			gf = float64(lt.Flops) / float64(lt.Duration.Nanoseconds())
		}
		rows[i] = layerTimingJSON{
			Layer:    lt.Node.Name,
			Op:       lt.Node.Op,
			Kernel:   lt.Kernel,
			Ms:       float64(lt.Duration) / 1e6,
			GFlopsPS: gf,
		}
	}
	writeJSON(w, http.StatusOK, rows)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := err.Error()
	// Keep internal prefixes out of client-facing messages.
	msg = strings.TrimPrefix(msg, "serve: ")
	writeJSON(w, code, map[string]string{"error": msg})
}
