package gemm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of GEMM worker goroutines. The seed spawned a
// fresh goroutine per row split on every Parallel call; a Pool instead
// parks its workers on a channel for the life of the process and splits
// each GEMM into macro-tiles (mcBlock×ncBlock blocks of C) that the
// submitting goroutine and any idle workers claim from a shared atomic
// counter until the grid is drained. Submitting costs a few atomic
// operations, never a goroutine spawn, and tiling over both dimensions of
// C means small-M convolution GEMMs (few output channels, many pixels)
// still fan out across cores.
//
// Each worker owns a private packing Context, so panel scratch is reused
// across every GEMM the worker ever touches. A Pool may serve concurrent
// Run calls from many sessions; tasks are independent.
//
// Besides GEMMs the pool also executes row sweeps (Sweep): flat
// bias+activation passes over an output tensor, claimed from the same
// shared-counter grid, so kernels that cannot fuse their epilogue into a
// GEMM still spread the sweep across cores without spawning goroutines.
type Pool struct {
	workers int
	tasks   chan poolWork
}

// poolWork is one unit a pool worker executes: a tiled GEMM task or a row
// sweep. drain claims and runs work shares until exhausted; finish signals
// the submitter that this helper is done; fail records a panic recovered
// while draining so the submitter can re-raise it on its own goroutine.
type poolWork interface {
	drain(ctx *Context)
	finish()
	fail(r any)
}

// drainRecover runs one share of w behind the pool's panic barrier: a
// panicking kernel tile is recorded on the task (first panic wins) instead
// of unwinding the goroutine. Workers survive poisoned tasks, and the
// submitter re-raises the panic after every helper has checked in, so the
// fault surfaces exactly once, on the goroutine that owns the request.
func drainRecover(w poolWork, ctx *Context) {
	defer func() {
		if r := recover(); r != nil {
			w.fail(r)
		}
	}()
	w.drain(ctx)
}

// task is one tiled GEMM in flight. Tiles are claimed via next; wg tracks
// the helpers that received the task so Run can return only when every
// claimed tile has been written. kern is the micro-kernel resolved at
// submission, so every tile of one call — caller- and helper-executed —
// packs and computes with the same geometry.
type task struct {
	call         Call
	kern         *kernel
	tileM, tileN int
	next         atomic.Int64
	wg           sync.WaitGroup
	failure      panicSlot
}

// finish implements poolWork.
func (t *task) finish() { t.wg.Done() }

// fail implements poolWork.
func (t *task) fail(r any) { t.failure.set(r) }

// panicSlot stores the first panic recovered across a task's helpers.
// set is called only on the (cold) panic path; take is called by the
// submitter after wg.Wait, which orders it after every set.
type panicSlot struct {
	mu sync.Mutex
	r  any
}

func (s *panicSlot) set(r any) {
	s.mu.Lock()
	if s.r == nil {
		s.r = r
	}
	s.mu.Unlock()
}

// take returns and clears the stored panic.
func (s *panicSlot) take() any {
	r := s.r
	s.r = nil
	return r
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// NewPool starts a pool with the given number of persistent workers
// (minimum 1). Workers park on an unbuffered channel when idle.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan poolWork)}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	var ctx Context
	for w := range p.tasks {
		drainRecover(w, &ctx)
		w.finish()
	}
}

// Workers returns the number of persistent worker goroutines.
func (p *Pool) Workers() int { return p.workers }

// Close terminates the pool's workers. No Run may be in flight or issued
// afterwards; the shared pool is never closed.
func (p *Pool) Close() { close(p.tasks) }

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS and created on
// first use. Sessions without a dedicated pool draw their GEMM parallelism
// from here, so the total worker-thread count stays bounded no matter how
// many sessions serve traffic.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Run executes c using up to workers goroutines, the caller included. The
// caller always participates (so progress never depends on pool
// availability) and ctx supplies its packing scratch; helpers are
// recruited only from workers idle at submission time. Run returns when C
// is fully written.
//
// Batched calls (c.Batch > 1) tile across batch×tile: every (image,
// macro-tile) pair is an independent unit of work claimed from the shared
// counter, so small per-image GEMMs still fan out across cores when the
// batch is deep.
func (p *Pool) Run(ctx *Context, c Call, workers int) {
	c.validate()
	if c.M == 0 || c.N == 0 {
		return
	}
	if c.K == 0 {
		if c.Store {
			for img := 0; img < c.images(); img++ {
				zeroCWindow(c.C[img*c.StrideC:], c.M, c.N, c.ldc())
				if c.hasEpilogue() {
					c.applyEpilogueAll(c.C[img*c.StrideC:])
				}
			}
		}
		return
	}
	kern := activeKernel()
	tm := (c.M + kern.mc - 1) / kern.mc
	tn := (c.N + kern.nc - 1) / kern.nc
	tiles := tm * tn * c.images()
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 {
		ctx.Run(c)
		return
	}
	t := taskPool.Get().(*task)
	t.call = c
	t.kern = kern
	t.tileM, t.tileN = tm, tn
	t.next.Store(0)
	helpers := workers - 1
	if helpers > p.workers {
		helpers = p.workers
	}
	for i := 0; i < helpers; i++ {
		t.wg.Add(1)
		select {
		case p.tasks <- t:
		default:
			// No worker idle right now; the caller keeps this share.
			t.wg.Done()
		}
	}
	drainRecover(t, ctx)
	t.wg.Wait()
	r := t.failure.take()
	t.call = Call{}
	t.kern = nil
	taskPool.Put(t)
	if r != nil {
		// Re-raise on the submitting goroutine: the runtime's step barrier
		// converts it to a typed error and quarantines the session.
		panic(r)
	}
}

// sweepTask is one parallel row sweep in flight: rows×rowLen elements of
// data get bias[row%len(bias)] added (when bias is non-nil) and act
// applied, with chunks of rows claimed from the shared counter. It backs
// Pool.Sweep for kernels whose epilogue cannot fuse into a GEMM tile
// store (direct, Winograd and depthwise convolution activations).
type sweepTask struct {
	data, bias   []float32
	rows, rowLen int
	chunk        int // rows per claimed share
	act          Activation
	alpha        float32
	next         atomic.Int64
	wg           sync.WaitGroup
	failure      panicSlot
}

// fail implements poolWork.
func (t *sweepTask) fail(r any) { t.failure.set(r) }

var sweepPool = sync.Pool{New: func() any { return new(sweepTask) }}

// drain implements poolWork: claim row chunks until the sweep is done.
func (t *sweepTask) drain(ctx *Context) {
	chunks := int64((t.rows + t.chunk - 1) / t.chunk)
	for {
		i := t.next.Add(1) - 1
		if i >= chunks {
			return
		}
		lo := int(i) * t.chunk
		hi := min(lo+t.chunk, t.rows)
		sweepRows(t.data, t.bias, lo, hi, t.rowLen, t.act, t.alpha)
	}
}

// finish implements poolWork.
func (t *sweepTask) finish() { t.wg.Done() }

// SweepRows is the serial form of Pool.Sweep: row r of the rows×rowLen
// region gets bias[r%len(bias)] added (bias may be nil) and act applied.
func SweepRows(data, bias []float32, rows, rowLen int, act Activation, alpha float32) {
	sweepRows(data, bias, 0, rows, rowLen, act, alpha)
}

// sweepRows applies the bias+activation pass to rows [lo, hi).
func sweepRows(data, bias []float32, lo, hi, rowLen int, act Activation, alpha float32) {
	for r := lo; r < hi; r++ {
		row := data[r*rowLen : (r+1)*rowLen]
		var bv float32
		if bias != nil {
			bv = bias[r%len(bias)]
		}
		if bv != 0 {
			for i := range row {
				row[i] += bv
			}
		}
		applyActivationRow(row, act, alpha)
	}
}

// Sweep applies a fused bias-add and activation over a rows×rowLen
// row-major region of data, in parallel across the pool: row r gets
// bias[r%len(bias)] added to every element (bias may be nil for an
// activation-only sweep), then act applied. This is the epilogue shape of
// an NCHW tensor — rows are (batch, channel) planes, len(bias) the
// channel count. The caller participates like Run; workers <= 1 (or a
// small sweep) runs inline. No goroutines are spawned and nothing
// allocates on the steady-state path.
func (p *Pool) Sweep(data, bias []float32, rows, rowLen int, act Activation, alpha float32, workers int) {
	if rows <= 0 || rowLen <= 0 || (bias == nil && act == ActNone) {
		return
	}
	// Claim enough rows per share to amortise the atomic (≥ ~4096
	// elements) and cap helper count at the chunk count.
	chunk := 1
	if rowLen < 4096 {
		chunk = (4096 + rowLen - 1) / rowLen
	}
	chunks := (rows + chunk - 1) / chunk
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		sweepRows(data, bias, 0, rows, rowLen, act, alpha)
		return
	}
	t := sweepPool.Get().(*sweepTask)
	t.data, t.bias = data, bias
	t.rows, t.rowLen, t.chunk = rows, rowLen, chunk
	t.act, t.alpha = act, alpha
	t.next.Store(0)
	helpers := workers - 1
	if helpers > p.workers {
		helpers = p.workers
	}
	for i := 0; i < helpers; i++ {
		t.wg.Add(1)
		select {
		case p.tasks <- t:
		default:
			// No worker idle right now; the caller keeps this share.
			t.wg.Done()
		}
	}
	drainRecover(t, nil)
	t.wg.Wait()
	r := t.failure.take()
	t.data, t.bias = nil, nil
	sweepPool.Put(t)
	if r != nil {
		panic(r)
	}
}

// drain claims and executes tiles until the grid is exhausted.
func (t *task) drain(ctx *Context) {
	tiles := int64(t.tileM) * int64(t.tileN) * int64(t.call.images())
	for {
		i := t.next.Add(1) - 1
		if i >= tiles {
			return
		}
		t.runTile(ctx, int(i))
	}
}

// runTile computes one mc×nc macro block of one image's C across the
// full K extent. Tiles split C on micro-tile boundaries, so no two tiles
// touch the same element; batched calls lay images out as consecutive
// tile grids over their strided B/C windows. The task's call carries any
// BPack/APack source and epilogue, so caller- and worker-executed tiles
// pack and finish identically.
func (t *task) runTile(ctx *Context, idx int) {
	c := &t.call
	kern := t.kern
	grid := t.tileM * t.tileN
	img := idx / grid
	idx %= grid
	var cb []float32
	if c.BPack == nil && c.APack == nil && c.B != nil {
		cb = c.B[img*c.StrideB:]
	} else {
		cb = c.B // shared weights (APack batches) or unused (BPack/PackedB)
	}
	cc := c.C[img*c.StrideC:]
	ldc := c.ldc()
	ii := (idx / t.tileN) * kern.mc
	jj := (idx % t.tileN) * kern.nc
	mc := min(kern.mc, c.M-ii)
	nc := min(kern.nc, c.N-jj)
	pm := roundUp(c.M, kern.mr)
	pn := roundUp(c.N, kern.nr)
	for pp := 0; pp < c.K; pp += kcBlock {
		kc := min(kcBlock, c.K-pp)
		var epi *Call
		if pp+kc == c.K && c.hasEpilogue() {
			epi = c
		}
		var pa, pb []float32
		switch {
		case c.APack != nil:
			ctx.growA()
			c.APack.PackPanelA(ctx.packA, img, ii, pp, mc, kc, kern.mr)
			pa = ctx.packA
		case c.PackedA != nil:
			pa = c.PackedA[pm*pp+ii*kc:]
		default:
			ctx.growA()
			packA(ctx.packA, c.A, ii, pp, mc, kc, c.K, kern.mr)
			pa = ctx.packA
		}
		switch {
		case c.BPack != nil:
			ctx.growB()
			c.BPack.PackPanel(ctx.packB, img, pp, jj, kc, nc, kern.nr)
			pb = ctx.packB
		case c.PackedB != nil:
			pb = c.PackedB[pn*pp+jj*kc:]
		default:
			ctx.growB()
			packB(ctx.packB, cb, pp, jj, kc, nc, c.N, kern.nr)
			pb = ctx.packB
		}
		ctx.macroKernel(kern, pa, pb, cc, ii, jj, mc, nc, kc, ldc, c.Store && pp == 0)
		if epi != nil {
			epi.applyEpilogueTile(cc, ii, jj, mc, nc, ldc)
		}
	}
}
