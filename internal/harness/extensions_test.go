package harness

import (
	"strings"
	"testing"
)

func TestQuantizeExperiment(t *testing.T) {
	e, err := ByID("quantize")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(simCfg("wrn-40-2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.HasSuffix(rep.Rows[0][3], "x") {
		t.Fatalf("compression cell = %q", rep.Rows[0][3])
	}
}

func TestThreadsExperimentMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("threads experiment measures real inference; run without -short")
	}
	e, err := ByID("threads")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(&Config{Mode: ModeMeasure, Models: []string{"wrn-40-2"}, Warmup: 0, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// orpheus row + tflite-sim row; tflite 1-thread cell must be n/a.
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d: %v", len(rep.Rows), rep.Rows)
	}
	for _, row := range rep.Rows {
		if row[1] == "TF-Lite" && row[2] != "n/a" {
			t.Fatalf("TF-Lite 1-thread cell = %q, want n/a", row[2])
		}
	}
}
