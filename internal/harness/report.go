// Package harness implements the Orpheus experiment infrastructure: the
// paper's Figure 2 and Table I plus the ablation studies listed in
// DESIGN.md, each producing a formatted report (text table and CSV).
package harness

import (
	"fmt"
	"strings"
)

// Report is one experiment's tabular result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying each cell.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// AddNote appends a footnote line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders an aligned text table with title and notes.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (r *Report) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}
