package runtime

import (
	"fmt"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// Session executes a compiled Plan. It owns the buffer arena and the
// kernel context (scratch pools, GEMM packing buffers), so repeated Run
// calls are allocation-free on the planned path. A Session is not safe for
// concurrent use; create one per goroutine.
type Session struct {
	plan *Plan
	ctx  *ops.Ctx

	// slots are the arena buffers (nil when NoBufferReuse).
	slots [][]float32
}

// NewSession prepares an executable session from a plan, allocating the
// arena up front.
func NewSession(plan *Plan) *Session {
	s := &Session{plan: plan, ctx: ops.NewCtx(plan.opts.Workers)}
	s.ctx.DisableScratchReuse = plan.opts.DisableScratchReuse
	if !plan.opts.NoBufferReuse {
		s.slots = make([][]float32, len(plan.slotSize))
		for i, size := range plan.slotSize {
			s.slots[i] = make([]float32, size)
		}
	}
	return s
}

// LayerTiming records one node execution during a profiled run.
type LayerTiming struct {
	Node     *graph.Node
	Kernel   string
	Duration time.Duration
	Flops    int64
}

// Run executes the graph on the given named inputs and returns the graph
// outputs keyed by value name. Output tensors alias arena storage and are
// only valid until the next Run; Clone them to keep results.
func (s *Session) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	outs, _, err := s.run(inputs, false)
	return outs, err
}

// RunProfiled is Run plus per-layer wall-clock timings.
func (s *Session) RunProfiled(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, []LayerTiming, error) {
	return s.run(inputs, true)
}

func (s *Session) run(inputs map[string]*tensor.Tensor, profile bool) (map[string]*tensor.Tensor, []LayerTiming, error) {
	bound := make(map[*graph.Value]*tensor.Tensor, len(s.plan.slotOf)+len(inputs))
	for _, in := range s.plan.g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return nil, nil, fmt.Errorf("runtime: missing input %q", in.Name)
		}
		if !tensor.ShapeEq(t.Shape(), in.Shape) {
			return nil, nil, fmt.Errorf("runtime: input %q has shape %v, want %v", in.Name, t.Shape(), in.Shape)
		}
		bound[in] = t
	}

	var timings []LayerTiming
	if profile {
		timings = make([]LayerTiming, 0, len(s.plan.steps))
	}
	for _, st := range s.plan.steps {
		in := make([]*tensor.Tensor, len(st.node.Inputs))
		for i, v := range st.node.Inputs {
			t, err := s.tensorFor(bound, v)
			if err != nil {
				return nil, nil, err
			}
			in[i] = t
		}
		out := make([]*tensor.Tensor, len(st.node.Outputs))
		for i, v := range st.node.Outputs {
			out[i] = s.allocOutput(bound, v)
		}
		start := time.Time{}
		if profile {
			start = time.Now()
		}
		if err := st.kernel.Run(s.ctx, st.node, in, out); err != nil {
			return nil, nil, fmt.Errorf("runtime: node %q (%s, kernel %s): %w", st.node.Name, st.node.Op, st.kernel.Name(), err)
		}
		if profile {
			timings = append(timings, LayerTiming{
				Node:     st.node,
				Kernel:   st.kernel.Name(),
				Duration: time.Since(start),
				Flops:    ops.NodeFlops(st.node),
			})
		}
	}

	results := make(map[string]*tensor.Tensor, len(s.plan.g.Outputs))
	for _, o := range s.plan.g.Outputs {
		t, err := s.tensorFor(bound, o)
		if err != nil {
			return nil, nil, err
		}
		results[o.Name] = t
	}
	return results, timings, nil
}

// tensorFor resolves the tensor currently bound to v.
func (s *Session) tensorFor(bound map[*graph.Value]*tensor.Tensor, v *graph.Value) (*tensor.Tensor, error) {
	if t := bound[v]; t != nil {
		return t, nil
	}
	if v.IsConst() {
		return v.Const, nil
	}
	return nil, fmt.Errorf("runtime: value %q read before being produced", v.Name)
}

// allocOutput binds v to storage: an arena slot view under the planner, or
// a fresh tensor when buffer reuse is disabled.
func (s *Session) allocOutput(bound map[*graph.Value]*tensor.Tensor, v *graph.Value) *tensor.Tensor {
	size := tensor.Volume(v.Shape)
	var t *tensor.Tensor
	if s.slots != nil {
		buf := s.slots[s.plan.slotOf[v]][:size]
		for i := range buf {
			buf[i] = 0
		}
		t = tensor.FromSlice(buf, v.Shape...)
	} else {
		t = tensor.New(v.Shape...)
	}
	bound[v] = t
	return t
}

// Plan returns the session's compiled plan.
func (s *Session) Plan() *Plan { return s.plan }

// CtxScratchBytes reports the kernel scratch footprint accumulated so far
// (im2col buffers, Winograd transforms, cached weights).
func (s *Session) CtxScratchBytes() int64 { return s.ctx.ScratchBytes }
