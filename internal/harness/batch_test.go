package harness

import (
	"strings"
	"testing"
)

// TestBatchSweepSim runs the batch experiment on the cost model: one row
// per model, throughput columns for every sweep batch size, and a
// parseable speedup column.
func TestBatchSweepSim(t *testing.T) {
	e, err := ByID("batch")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(simCfg("wrn-40-2", "mobilenet-v1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row %v does not match header %v", row, rep.Header)
		}
		if !strings.HasSuffix(row[len(row)-1], "x") {
			t.Errorf("speedup cell %q not a ratio", row[len(row)-1])
		}
	}
}
