package gemm

// Prepacking of run-invariant GEMM operands.
//
// Convolution and dense-layer weights are graph constants, yet the seed
// implementation repacked their panels on every inference. PrepackA and
// PrepackB produce, once, the exact panel layout the macro-kernel consumes;
// Call.PackedA / Call.PackedB then skip that side's per-call packing
// entirely. The layout mirrors the blocked loop nest: k-panels (kcBlock
// columns) outermost, then mc-row (or nc-column) macro panels within each,
// so panel (pp, ii) of A starts at roundUp(m,mr)*pp + ii*kc — exact for any
// kernel because mc/nc are multiples of the micro-tile.
//
// The panel layout bakes in the active micro-kernel's mr×nr geometry
// (kernel.go): buffers prepacked under one kernel are invalid after
// SetKernel switches to a kernel with a different tile shape, and the
// Size functions must be consulted under the same kernel that will run
// the Call.

func roundUp(x, q int) int { return (x + q - 1) / q * q }

// PackedASize returns the buffer length PrepackAInto requires for an m×k
// matrix under the active kernel: every row panel is padded up to a
// multiple of mr rows.
func PackedASize(m, k int) int { return roundUp(m, activeKernel().mr) * k }

// PackedBSize returns the buffer length PrepackBInto requires for a k×n
// matrix under the active kernel: every column panel is padded up to a
// multiple of nr columns.
func PackedBSize(k, n int) int { return roundUp(n, activeKernel().nr) * k }

// PrepackAInto packs the whole m×k matrix a into dst, which must hold
// PackedASize(m, k) values.
func PrepackAInto(dst, a []float32, m, k int) {
	kern := activeKernel()
	pm := roundUp(m, kern.mr)
	for pp := 0; pp < k; pp += kcBlock {
		kc := min(kcBlock, k-pp)
		for ii := 0; ii < m; ii += kern.mc {
			mc := min(kern.mc, m-ii)
			packA(dst[pm*pp+ii*kc:], a, ii, pp, mc, kc, k, kern.mr)
		}
	}
}

// PrepackA allocates and fills the packed-panel form of the m×k matrix a.
func PrepackA(a []float32, m, k int) []float32 {
	dst := make([]float32, PackedASize(m, k))
	PrepackAInto(dst, a, m, k)
	return dst
}

// PrepackBInto packs the whole k×n matrix b into dst, which must hold
// PackedBSize(k, n) values.
func PrepackBInto(dst, b []float32, k, n int) {
	kern := activeKernel()
	pn := roundUp(n, kern.nr)
	for pp := 0; pp < k; pp += kcBlock {
		kc := min(kcBlock, k-pp)
		for jj := 0; jj < n; jj += kern.nc {
			nc := min(kern.nc, n-jj)
			packB(dst[pn*pp+jj*kc:], b, pp, jj, kc, nc, n, kern.nr)
		}
	}
}

// PrepackB allocates and fills the packed-panel form of the k×n matrix b.
func PrepackB(b []float32, k, n int) []float32 {
	dst := make([]float32, PackedBSize(k, n))
	PrepackBInto(dst, b, k, n)
	return dst
}
