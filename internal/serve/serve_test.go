package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// tinyModel: conv -> relu -> gap -> flatten -> dense -> softmax on 8x8.
func tinyModel(t testing.TB) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(61)
	g := graph.New("tiny")
	x, _ := g.Input("input", []int{1, 3, 8, 8})
	w, _ := g.Const("w", tensor.HeNormal(r, 8, 3, 3, 3))
	c, _ := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w)
	rl, _ := g.Add("Relu", "relu", nil, c)
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, rl)
	fl, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, gap)
	wf, _ := g.Const("wf", tensor.HeNormal(r, 4, 8))
	fc, _ := g.Add("Dense", "fc", nil, fl, wf)
	sm, _ := g.Add("Softmax", "prob", nil, fc)
	_ = g.MarkOutput(sm)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts...)
	if err := s.AddModel("tiny", tinyModel(t), "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// newHTTPServer wraps an already-configured Server in an httptest server.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestModelsListing(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0]["name"] != "tiny" || infos[0]["backend"] != "orpheus" {
		t.Fatalf("models = %v", infos)
	}
	if infos[0]["param_bytes"].(float64) <= 0 {
		t.Fatal("param_bytes missing")
	}
}

func TestPredict(t *testing.T) {
	_, ts := newTestServer(t)
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = float32(i%7) * 0.1
	}
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": input, "topk": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d", resp.StatusCode)
	}
	var out struct {
		Output    []float32 `json:"output"`
		Shape     []int     `json:"shape"`
		TopK      []int     `json:"topk"`
		LatencyMs float64   `json:"latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Output) != 4 || len(out.TopK) != 2 {
		t.Fatalf("response: %+v", out)
	}
	var sum float32
	for _, v := range out.Output {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if out.LatencyMs <= 0 {
		t.Fatal("latency missing")
	}
}

func TestPredictValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// Wrong input length → 400.
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": []float32{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input = %d, want 400", resp.StatusCode)
	}
	var e map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&e)
	if e["error"] == "" {
		t.Fatal("error body missing")
	}
	// Unknown model → 404.
	resp = postJSON(t, ts.URL+"/predict/nope", map[string]any{"input": []float32{}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model = %d, want 404", resp.StatusCode)
	}
	// Invalid JSON → 400.
	r2, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", r2.StatusCode)
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	input := make([]float32, 3*8*8)
	resp := postJSON(t, ts.URL+"/profile/tiny", map[string]any{"input": input})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile = %d", resp.StatusCode)
	}
	var rows []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	// The orpheus backend fuses relu into the conv: conv+relu, gap,
	// flatten, dense, softmax.
	if len(rows) != 5 {
		t.Fatalf("profile rows = %d, want 5", len(rows))
	}
	if rows[0]["kernel"] == "" {
		t.Fatal("kernel name missing in profile")
	}
}

func TestConcurrentPredicts(t *testing.T) {
	// Sessions are serialised per entry; concurrent requests must all
	// succeed and produce identical outputs for identical inputs.
	_, ts := newTestServer(t)
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.01 * float32(i%13)
	}
	var wg sync.WaitGroup
	outs := make([][]float32, 8)
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"input": input})
			resp, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Output []float32 `json:"output"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			outs[i] = out.Output
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for j := range outs[i] {
			if outs[i][j] != outs[0][j] {
				t.Fatalf("request %d diverged", i)
			}
		}
	}
}

// TestHandlerStatusTable audits the error statuses of every endpoint in
// one table: all lookup failures are 404, all malformed bodies 400,
// regardless of which handler fields the request.
func TestHandlerStatusTable(t *testing.T) {
	_, ts := newTestServer(t)
	okInput := make([]float32, 3*8*8)
	okBody, _ := json.Marshal(map[string]any{"input": okInput})
	shortBody, _ := json.Marshal(map[string]any{"input": []float32{1, 2, 3}})
	cases := []struct {
		name, method, path string
		body               string
		want               int
	}{
		{"predict ok", "POST", "/predict/tiny", string(okBody), http.StatusOK},
		{"profile ok", "POST", "/profile/tiny", string(okBody), http.StatusOK},
		{"predict unknown model", "POST", "/predict/nope", string(okBody), http.StatusNotFound},
		{"profile unknown model", "POST", "/profile/nope", string(okBody), http.StatusNotFound},
		{"predict bad JSON", "POST", "/predict/tiny", "{nope", http.StatusBadRequest},
		{"profile bad JSON", "POST", "/profile/tiny", "{nope", http.StatusBadRequest},
		{"predict short input", "POST", "/predict/tiny", string(shortBody), http.StatusBadRequest},
		{"profile short input", "POST", "/profile/tiny", string(shortBody), http.StatusBadRequest},
		{"predict empty body", "POST", "/predict/tiny", "", http.StatusBadRequest},
		{"profile empty body", "POST", "/profile/tiny", "", http.StatusBadRequest},
		{"predict wrong method", "GET", "/predict/tiny", "", http.StatusMethodNotAllowed},
		{"profile wrong method", "GET", "/profile/tiny", "", http.StatusMethodNotAllowed},
		{"models ok", "GET", "/models", "", http.StatusOK},
		{"healthz ok", "GET", "/healthz", "", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			if tc.want >= 400 && tc.want != http.StatusMethodNotAllowed {
				var e map[string]string
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
					t.Errorf("%s %s: error body missing (%v)", tc.method, tc.path, err)
				}
			}
		})
	}
}

// referenceOutput computes the unbatched ground truth for one input.
func referenceOutput(t *testing.T, input []float32) []float32 {
	t.Helper()
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": input})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference predict = %d", resp.StatusCode)
	}
	var out struct {
		Output []float32 `json:"output"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Output
}

// TestBatchedPredictCoalesces checks that a batching server under
// concurrent fire produces the same outputs as the unbatched path and
// actually coalesces requests (at least one response reports a batch
// size > 1).
func TestBatchedPredictCoalesces(t *testing.T) {
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.05 * float32(i%11)
	}
	want := referenceOutput(t, input)

	_, ts := newTestServer(t, WithMaxBatch(4), WithFlushDeadline(25*time.Millisecond))
	// Warm one request through so the session pool is primed (the first
	// inference packs weights and is slow, which would otherwise let the
	// deadline lapse before peers arrive).
	_ = postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": input})

	const clients = 8
	var wg sync.WaitGroup
	batchSizes := make([]int, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"input": input})
			resp, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var out struct {
				Output    []float32 `json:"output"`
				BatchSize int       `json:"batch_size"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			batchSizes[i] = out.BatchSize
			for j := range out.Output {
				if out.Output[j] != want[j] {
					errs[i] = fmt.Errorf("output[%d] = %v, want %v", j, out.Output[j], want[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	coalesced := false
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if batchSizes[i] > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Log("no request was coalesced (timing-dependent); outputs still verified")
	}
}

// TestBatcherMixedDeadlinesStress hammers a batching server from many
// goroutines using a spread of per-request wait_ms deadlines and distinct
// inputs, checking every response against its per-input reference. Run
// with -race: this is the batcher's data-race and cross-request-bleed
// gauntlet.
func TestBatcherMixedDeadlinesStress(t *testing.T) {
	const inputsN = 3
	inputs := make([][]float32, inputsN)
	wants := make([][]float32, inputsN)
	for k := 0; k < inputsN; k++ {
		in := make([]float32, 3*8*8)
		for i := range in {
			in[i] = 0.01 * float32((i*(k+3))%17)
		}
		inputs[k] = in
		wants[k] = referenceOutput(t, in)
	}

	_, ts := newTestServer(t, WithMaxBatch(3), WithFlushDeadline(2*time.Millisecond))
	waits := []float64{0, 0.5, 2, 10} // ms; 0 = server default
	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % inputsN
				body := map[string]any{"input": inputs[k], "wait_ms": waits[(g*iters+i)%len(waits)]}
				b, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				var out struct {
					Output []float32 `json:"output"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				for j := range out.Output {
					if out.Output[j] != wants[k][j] {
						errc <- fmt.Errorf("goroutine %d iter %d: output diverged from reference for input %d", g, i, k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestAddModelErrors(t *testing.T) {
	s := New()
	g := tinyModel(t)
	if err := s.AddModel("m", g, "no-such-backend", 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := s.AddModel("m", g, "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("m", g, "orpheus", 1); err == nil {
		t.Fatal("duplicate model name accepted")
	}
	if err := s.AddModel("m2", g, "tflite-sim", 1); err == nil {
		t.Fatal("tflite-sim single-thread should fail compile")
	}
	_ = fmt.Sprint() // keep fmt for future expansion
}

// TestStatusForTypedErrors pins the errors.Is-based status derivation:
// request-shaped failures map to 400, overload to 429, shutdown to 503,
// everything else to 500, regardless of how deeply the sentinel is
// wrapped.
func TestStatusForTypedErrors(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err)) }
	cases := []struct {
		err  error
		want int
	}{
		{wrap(runtime.ErrShapeMismatch), http.StatusBadRequest},
		{wrap(runtime.ErrBatchTooLarge), http.StatusBadRequest},
		{wrap(runtime.ErrUnknownInput), http.StatusBadRequest},
		{wrap(runtime.ErrUnknownOutput), http.StatusBadRequest},
		{wrap(runtime.ErrOverloaded), http.StatusTooManyRequests},
		{wrap(runtime.ErrClosed), http.StatusServiceUnavailable},
		{wrap(runtime.ErrNoOutput), http.StatusInternalServerError},
		{wrap(runtime.ErrPlanPanic), http.StatusInternalServerError},
		{&runtime.PlanPanicError{Model: "m", Node: "n", Op: "Conv", Value: "boom"}, http.StatusInternalServerError},
		{context.Canceled, http.StatusInternalServerError},
		{fmt.Errorf("kernel exploded"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestImmediateFlushMode checks WithFlushDeadline(0): the server batches
// opportunistically (only what is already queued) and still produces
// reference-identical outputs under concurrent fire.
func TestImmediateFlushMode(t *testing.T) {
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.03 * float32(i%7)
	}
	want := referenceOutput(t, input)

	_, ts := newTestServer(t, WithMaxBatch(4), WithFlushDeadline(0))
	// A lone request must not wait for peers that never come.
	start := time.Now()
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": input})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lone immediate predict = %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone immediate predict took %v", elapsed)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"input": input})
			r, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer r.Body.Close()
			var out struct {
				Output    []float32 `json:"output"`
				BatchSize int       `json:"batch_size"`
			}
			if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			if out.BatchSize < 1 || out.BatchSize > 4 {
				errs[i] = fmt.Errorf("batch_size %d outside 1..4", out.BatchSize)
				return
			}
			for j := range out.Output {
				if out.Output[j] != want[j] {
					errs[i] = fmt.Errorf("output diverged at %d", j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

// TestCloseDrainsBatchedRequests asserts the graceful-drain contract of
// Server.Close over the runtime batcher: requests racing the shutdown
// either complete with correct outputs or fail with the 503 the contract
// maps shutdown to — never hang, never return garbage.
func TestCloseDrainsBatchedRequests(t *testing.T) {
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.02 * float32(i%5)
	}
	want := referenceOutput(t, input)

	s, ts := newTestServer(t, WithMaxBatch(4), WithFlushDeadline(5*time.Millisecond))
	const clients = 8
	var wg sync.WaitGroup
	type result struct {
		status int
		out    []float32
	}
	results := make([]result, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"input": input})
			r, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer r.Body.Close()
			results[i].status = r.StatusCode
			var out struct {
				Output []float32 `json:"output"`
			}
			_ = json.NewDecoder(r.Body).Decode(&out)
			results[i].out = out.Output
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: transport error %v", i, errs[i])
		}
		switch results[i].status {
		case http.StatusOK:
			for j := range results[i].out {
				if results[i].out[j] != want[j] {
					t.Errorf("client %d: drained output diverged at %d", i, j)
				}
			}
		case http.StatusServiceUnavailable:
			// Arrived after the drain: typed ErrClosed → 503 per contract.
		default:
			t.Errorf("client %d: status %d, want 200 or 503", i, results[i].status)
		}
	}
}

// TestAddModelRejectsMultiIO pins the single-I/O contract of the HTTP
// wire format.
func TestAddModelRejectsMultiIO(t *testing.T) {
	g := graph.New("two-out")
	x, _ := g.Input("input", []int{1, 4})
	a, _ := g.Add("Relu", "a", nil, x)
	m, _ := g.Add("Softmax", "b", nil, x)
	_ = g.MarkOutput(a)
	_ = g.MarkOutput(m)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	s := New()
	if err := s.AddModel("two-out", g, "orpheus", 1); err == nil {
		t.Fatal("multi-output model accepted by the single-I/O HTTP contract")
	}
}
