package zoo

import (
	"fmt"

	"orpheus/internal/graph"
)

// MobileNetV1 builds the 1.0x MobileNet (Howard et al.) for 224x224
// ImageNet inputs: a 3x3/2 stem then 13 depthwise-separable blocks,
// ~4.2M parameters. Figure 2's stress test for depthwise convolution —
// the layer the paper says PyTorch executes "inefficiently".
func MobileNetV1(batch int) (*graph.Graph, error) {
	b := newNet("mobilenet-v1")
	x := b.input("input", []int{batch, 3, 224, 224})
	cur := b.convBNRelu("stem", x, 3, 32, 3, 2, 1)

	// (output channels, stride) per depthwise-separable block.
	blocks := []struct{ cout, stride int }{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	cin := 32
	for i, blk := range blocks {
		name := fmt.Sprintf("block%d", i+1)
		cur = b.depthwiseSeparable(name, cur, cin, blk.cout, blk.stride)
		cin = blk.cout
	}
	out := b.classifierHead(cur, cin, 1000)
	return b.finish(out)
}

// depthwiseSeparable is dw3x3 → BN → ReLU → pw1x1 → BN → ReLU.
func (b *netBuilder) depthwiseSeparable(name string, x *graph.Value, cin, cout, stride int) *graph.Value {
	dw := b.conv(name+".dw", x, cin, cin, 3, 3, stride, 1, 1, cin)
	dwAct := b.relu(name+".dw.relu", b.bn(name+".dw.bn", dw, cin))
	pw := b.conv(name+".pw", dwAct, cin, cout, 1, 1, 1, 0, 0, 1)
	return b.relu(name+".pw.relu", b.bn(name+".pw.bn", pw, cout))
}
