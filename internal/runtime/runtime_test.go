package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// smallCNN builds conv(3x3) -> relu -> maxpool -> flatten -> dense -> softmax.
func smallCNN(t testing.TB) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(1)
	g := graph.New("smallcnn")
	x, err := g.Input("x", []int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := g.Const("w1", tensor.HeNormal(r, 4, 3, 3, 3))
	b1, _ := g.Const("b1", tensor.Rand(r, -0.1, 0.1, 4))
	c1, _ := g.Add("Conv", "conv1", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w1, b1)
	a1, _ := g.Add("Relu", "relu1", nil, c1)
	p1, _ := g.Add("MaxPool", "pool1", graph.Attrs{"kernel": []int{2, 2}, "strides": []int{2, 2}}, a1)
	f1, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, p1)
	wd, _ := g.Const("wd", tensor.HeNormal(r, 10, 4*4*4))
	bd, _ := g.Const("bd", tensor.Rand(r, -0.1, 0.1, 10))
	d1, _ := g.Add("Dense", "fc", nil, f1, wd, bd)
	sm, _ := g.Add("Softmax", "prob", nil, d1)
	if err := g.MarkOutput(sm); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func runGraph(t testing.TB, g *graph.Graph, opts Options, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	plan, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(plan)
	out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{g.Inputs[0].Name: x})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs = %d, want 1", len(out))
	}
	for _, v := range out {
		return v.Clone()
	}
	return nil
}

func TestSessionRunsSmallCNN(t *testing.T) {
	g := smallCNN(t)
	x := tensor.Rand(tensor.NewRNG(2), -1, 1, 1, 3, 8, 8)
	out := runGraph(t, g, Options{}, x)
	if !tensor.ShapeEq(out.Shape(), []int{1, 10}) {
		t.Fatalf("output shape = %v", out.Shape())
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestBufferReuseMatchesNoReuse(t *testing.T) {
	g := smallCNN(t)
	x := tensor.Rand(tensor.NewRNG(3), -1, 1, 1, 3, 8, 8)
	a := runGraph(t, g, Options{}, x)
	b := runGraph(t, g, Options{NoBufferReuse: true, DisableScratchReuse: true}, x)
	if !tensor.AllClose(a, b, 1e-6) {
		t.Fatalf("arena execution differs from fresh-alloc execution: %g", tensor.MaxAbsDiff(a, b))
	}
}

func TestRepeatedRunsAreDeterministic(t *testing.T) {
	g := smallCNN(t)
	plan, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(4), -1, 1, 1, 3, 8, 8)
	in := map[string]*tensor.Tensor{"x": x}
	out1, err := sess.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	first := out1["prob_out"].Clone()
	for i := 0; i < 3; i++ {
		out, err := sess.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(out["prob_out"], first, 0) {
			t.Fatalf("run %d differs from first run", i)
		}
	}
}

func TestArenaSmallerThanNoReuse(t *testing.T) {
	g := smallCNN(t)
	plan, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaBytes() >= plan.NoReuseBytes() {
		t.Fatalf("arena %d >= no-reuse %d: planner found no reuse in a chain graph",
			plan.ArenaBytes(), plan.NoReuseBytes())
	}
	if plan.WeightBytes() != g.NumParams()*4 {
		t.Fatal("WeightBytes inconsistent with graph params")
	}
}

func TestMissingAndMisshapenInputs(t *testing.T) {
	g := smallCNN(t)
	plan, _ := Compile(g, Options{})
	sess := NewSession(plan)
	if _, err := sess.Run(context.Background(), map[string]*tensor.Tensor{}); err == nil || !strings.Contains(err.Error(), "missing input") {
		t.Fatalf("missing input not reported: %v", err)
	}
	bad := tensor.New(1, 3, 4, 4)
	if _, err := sess.Run(context.Background(), map[string]*tensor.Tensor{"x": bad}); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch not reported: %v", err)
	}
}

func TestRunProfiledCoversAllNodes(t *testing.T) {
	g := smallCNN(t)
	plan, _ := Compile(g, Options{})
	sess := NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(5), -1, 1, 1, 3, 8, 8)
	_, timings, err := sess.RunProfiled(context.Background(), map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != len(g.Nodes) {
		t.Fatalf("timings for %d nodes, want %d", len(timings), len(g.Nodes))
	}
	var convFlops int64
	for _, lt := range timings {
		if lt.Node.Op == "Conv" {
			convFlops = lt.Flops
		}
	}
	// conv1: 2 * (3*3*3) * (4*8*8) = 13824.
	if convFlops != 13824 {
		t.Fatalf("conv flops = %d, want 13824", convFlops)
	}
}

// namedPolicy forces a specific kernel for one op.
type namedPolicy struct{ op, kernel string }

func (p namedPolicy) Name() string { return "test-" + p.kernel }
func (p namedPolicy) Select(n *graph.Node) (ops.Kernel, error) {
	if n.Op == p.op {
		return ops.ByName(p.kernel), nil
	}
	return ReferencePolicy{}.Select(n)
}

func TestPolicySelectsRequestedKernel(t *testing.T) {
	g := smallCNN(t)
	plan, err := Compile(g, Options{Policy: namedPolicy{op: "Conv", kernel: "conv.im2col"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range plan.Steps() {
		if st.Node.Op == "Conv" && st.Kernel == "conv.im2col" {
			found = true
		}
	}
	if !found {
		t.Fatal("policy did not select conv.im2col")
	}
	// Numerical equivalence across policies.
	x := tensor.Rand(tensor.NewRNG(6), -1, 1, 1, 3, 8, 8)
	ref := runGraph(t, g, Options{}, x)
	got := runGraph(t, g, Options{Policy: namedPolicy{op: "Conv", kernel: "conv.im2col"}}, x)
	if !tensor.AllClose(ref, got, 1e-5) {
		t.Fatal("im2col policy diverges from reference policy")
	}
}

func TestPolicyRejectsUnsupportedKernel(t *testing.T) {
	g := smallCNN(t) // conv1 is not depthwise
	_, err := Compile(g, Options{Policy: namedPolicy{op: "Conv", kernel: "conv.depthwise"}})
	if err == nil {
		t.Fatal("unsupported kernel selection not rejected at compile time")
	}
}

func TestDiamondLivenessNoAliasing(t *testing.T) {
	// x -> a(relu), x -> b(relu); out = a + b. The planner must not give a
	// and b the same slot even though both die at the Add.
	g := graph.New("diamond")
	x, _ := g.Input("x", []int{1, 16})
	a, _ := g.Add("Relu", "a", nil, x)
	b, _ := g.Add("LeakyRelu", "b", graph.Attrs{"alpha": 0.5}, x)
	s, _ := g.Add("Add", "sum", nil, a, b)
	_ = g.MarkOutput(s)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	xs := tensor.Full(-2, 1, 16)
	out := runGraph(t, g, Options{}, xs)
	// relu(-2) + leaky(-2, 0.5) = 0 + (-1) = -1.
	for _, v := range out.Data() {
		if v != -1 {
			t.Fatalf("diamond result = %v, want -1 (slot aliasing?)", v)
		}
	}
}

func TestMeasureStats(t *testing.T) {
	g := smallCNN(t)
	plan, _ := Compile(g, Options{})
	sess := NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(7), -1, 1, 1, 3, 8, 8)
	stats, err := Measure(context.Background(), sess, map[string]*tensor.Tensor{"x": x}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 5 || stats.Min <= 0 || stats.Median < stats.Min || stats.Max < stats.Median {
		t.Fatalf("implausible stats: %+v", stats)
	}
	if _, err := Measure(context.Background(), sess, map[string]*tensor.Tensor{"x": x}, 0, 0); err == nil {
		t.Fatal("Measure with 0 reps should error")
	}
}

func TestSummariseKnownValues(t *testing.T) {
	s := Summarise(nil)
	if s.Runs != 0 {
		t.Fatal("empty summarise should be zero")
	}
	s = Summarise([]time.Duration{4, 2, 8, 6})
	if s.Min != 2 || s.Max != 8 || s.Mean != 5 || s.Median != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "median") {
		t.Fatal("String should mention median")
	}
}
