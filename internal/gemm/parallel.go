package gemm

// Parallel computes C += A·B across up to workers goroutines drawn from
// the shared persistent pool; no goroutines are spawned per call. The
// caller participates, so workers <= 1 is exactly the single-threaded
// packed implementation.
//
// Orpheus experiments default to one worker to match the paper's
// single-core HiKey 970 evaluation, but the runtime exposes this knob.
// Hot paths should prefer Pool.Run with a long-lived Context (as ops.Ctx
// does) so the caller's packing scratch persists across calls.
func Parallel(a, b, c []float32, m, n, k, workers int) {
	var ctx Context
	Shared().Run(&ctx, Call{A: a, B: b, C: c, M: m, N: n, K: k}, workers)
}
