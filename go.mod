module orpheus

go 1.24
