// Classify: an edge image-classification pipeline — decode an image into
// a CHW tensor, normalise it, run MobileNetV1 and report top-5. Since the
// repository ships no binary assets, the "image" is generated in memory
// (a deterministic gradient-with-noise pattern), then preprocessed
// exactly as a camera frame would be.
//
//	go run ./examples/classify
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"orpheus"
)

const (
	imgH, imgW = 224, 224
)

// capture synthesises an RGB "photo": smooth gradients plus structured
// noise, values in [0, 255], mimicking a camera frame.
func capture(seed uint64) []uint8 {
	px := make([]uint8, 3*imgH*imgW)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 27)
	}
	for c := 0; c < 3; c++ {
		for y := 0; y < imgH; y++ {
			for x := 0; x < imgW; x++ {
				base := (x + y + c*37) % 256
				noise := int(next() % 64)
				v := base + noise
				if v > 255 {
					v = 255
				}
				px[(c*imgH+y)*imgW+x] = uint8(v)
			}
		}
	}
	return px
}

// preprocess converts a uint8 CHW frame to a normalised NCHW tensor using
// the standard ImageNet mean/stddev.
func preprocess(px []uint8) *orpheus.Tensor {
	mean := [3]float32{0.485, 0.456, 0.406}
	std := [3]float32{0.229, 0.224, 0.225}
	data := make([]float32, len(px))
	plane := imgH * imgW
	for c := 0; c < 3; c++ {
		for i := 0; i < plane; i++ {
			v := float32(px[c*plane+i]) / 255
			data[c*plane+i] = (v - mean[c]) / std[c]
		}
	}
	return orpheus.TensorFromSlice(data, 1, 3, imgH, imgW)
}

func main() {
	model, err := orpheus.BuildZooModel("mobilenet-v1")
	if err != nil {
		log.Fatal(err)
	}
	sess, err := model.Compile(orpheus.WithBackend("orpheus"))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Println(model.Summary())

	// A camera pipeline has a frame budget: give each frame a deadline,
	// and a frame that cannot make it is dropped at the next layer
	// boundary instead of blocking the pipeline.
	const frameBudget = 10 * time.Second

	for frame := uint64(0); frame < 3; frame++ {
		img := capture(frame)
		input := preprocess(img)
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), frameBudget)
		probs, err := sess.Predict(ctx, input)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		top := probs.TopK(5)
		fmt.Printf("\nframe %d (%v):\n", frame, elapsed.Round(time.Millisecond))
		for rank, idx := range top {
			fmt.Printf("  #%d class %4d  p=%.4f\n", rank+1, idx, probs.Data()[idx])
		}
	}
}
