package zoo

import (
	"fmt"

	"orpheus/internal/graph"
)

// ResNet18 builds ResNet-18 (He et al.) for 224x224 ImageNet inputs:
// 7x7/2 stem, 3x3/2 max-pool, four stages of two basic blocks
// (64/128/256/512 channels), ~11.7M parameters.
func ResNet18(batch int) (*graph.Graph, error) {
	return buildResNet("resnet-18", batch, []int{2, 2, 2, 2}, false)
}

// ResNet50 builds ResNet-50: four stages of [3,4,6,3] bottleneck blocks
// with 4x channel expansion, ~25.6M parameters. The largest Figure 2
// model.
func ResNet50(batch int) (*graph.Graph, error) {
	return buildResNet("resnet-50", batch, []int{3, 4, 6, 3}, true)
}

func buildResNet(name string, batch int, layers []int, bottleneck bool) (*graph.Graph, error) {
	b := newNet(name)
	x := b.input("input", []int{batch, 3, 224, 224})
	cur := b.convBNRelu("stem", x, 3, 64, 7, 2, 3)
	cur = b.maxPool("stem.pool", cur, 3, 2, 1)

	widths := []int{64, 128, 256, 512}
	expansion := 1
	if bottleneck {
		expansion = 4
	}
	cin := 64
	for s, blocks := range layers {
		cout := widths[s]
		for blk := 0; blk < blocks; blk++ {
			stride := 1
			if s > 0 && blk == 0 {
				stride = 2
			}
			bname := fmt.Sprintf("stage%d.block%d", s+1, blk)
			if bottleneck {
				cur = b.bottleneckBlock(bname, cur, cin, cout, stride, expansion)
			} else {
				cur = b.basicBlock(bname, cur, cin, cout, stride)
			}
			cin = cout * expansion
		}
	}
	out := b.classifierHead(cur, cin, 1000)
	return b.finish(out)
}

// basicBlock: conv3x3 → BN → ReLU → conv3x3 → BN, plus a (possibly
// projected) shortcut, then ReLU.
func (b *netBuilder) basicBlock(name string, x *graph.Value, cin, cout, stride int) *graph.Value {
	c1 := b.conv(name+".conv1", x, cin, cout, 3, 3, stride, 1, 1, 1)
	a1 := b.relu(name+".relu1", b.bn(name+".bn1", c1, cout))
	c2 := b.conv(name+".conv2", a1, cout, cout, 3, 3, 1, 1, 1, 1)
	n2 := b.bn(name+".bn2", c2, cout)
	shortcut := x
	if cin != cout || stride != 1 {
		sc := b.conv(name+".down", x, cin, cout, 1, 1, stride, 0, 0, 1)
		shortcut = b.bn(name+".down.bn", sc, cout)
	}
	sum := b.add(name+".add", n2, shortcut)
	return b.relu(name+".relu2", sum)
}

// bottleneckBlock: conv1x1 → conv3x3 → conv1x1(×expansion) with BN+ReLU
// between, plus shortcut.
func (b *netBuilder) bottleneckBlock(name string, x *graph.Value, cin, cmid, stride, expansion int) *graph.Value {
	cout := cmid * expansion
	c1 := b.conv(name+".conv1", x, cin, cmid, 1, 1, 1, 0, 0, 1)
	a1 := b.relu(name+".relu1", b.bn(name+".bn1", c1, cmid))
	c2 := b.conv(name+".conv2", a1, cmid, cmid, 3, 3, stride, 1, 1, 1)
	a2 := b.relu(name+".relu2", b.bn(name+".bn2", c2, cmid))
	c3 := b.conv(name+".conv3", a2, cmid, cout, 1, 1, 1, 0, 0, 1)
	n3 := b.bn(name+".bn3", c3, cout)
	shortcut := x
	if cin != cout || stride != 1 {
		sc := b.conv(name+".down", x, cin, cout, 1, 1, stride, 0, 0, 1)
		shortcut = b.bn(name+".down.bn", sc, cout)
	}
	sum := b.add(name+".add", n3, shortcut)
	return b.relu(name+".relu3", sum)
}
