// Quickstart: build one of the paper's models, compile it with the
// default Orpheus backend and classify a (synthetic) image.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"orpheus"
)

func main() {
	// 1. Load a model. Here we use the built-in WRN-40-2 (CIFAR-10);
	//    orpheus.LoadONNX("model.onnx") works the same way for files
	//    exported from training frameworks.
	model, err := orpheus.BuildZooModel("wrn-40-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.Summary())

	// 2. Compile: graph simplification (BN folding, activation fusion),
	//    kernel selection and arena planning happen here.
	sess, err := model.Compile(orpheus.WithBackend("orpheus"), orpheus.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close() // graceful drain: waits for in-flight requests
	weights, arena := sess.MemoryFootprint()
	fmt.Printf("compiled: %.2f MB weights, %.2f MB activation arena\n",
		float64(weights)/(1<<20), float64(arena)/(1<<20))

	// 3. Run inference on a deterministic synthetic image. Every predict
	//    path takes a context: cancellation aborts the run at the next
	//    layer boundary (use context.WithTimeout for a latency budget).
	ctx := context.Background()
	input := orpheus.RandomTensor(7, model.InputShape()...)
	probs, err := sess.Predict(ctx, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-3 classes:")
	for _, idx := range probs.TopK(3) {
		fmt.Printf("  class %d: p=%.4f\n", idx, probs.Data()[idx])
	}

	// 4. Time it the way the paper's experiments do (warm-up + repeats).
	stats, err := sess.Benchmark(ctx, input, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-thread inference: %s\n", stats)
}
