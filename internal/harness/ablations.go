package harness

import (
	"fmt"
	"sort"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Ablation experiments A1–A5 (see DESIGN.md §4). They interrogate the
// design choices the paper motivates: per-layer algorithm choice, graph
// simplification, arena memory planning and empirical tuning.
func init() {
	register(&Experiment{ID: "sweep", Title: "A1: conv algorithm crossover vs layer size", Run: runSweep})
	register(&Experiment{ID: "passes", Title: "A2: graph-pass contribution", Run: runPassesAblation})
	register(&Experiment{ID: "memory", Title: "A3: memory planner footprint", Run: runMemoryAblation})
	register(&Experiment{ID: "layerwise", Title: "A4: per-layer breakdown", Run: runLayerwise})
	register(&Experiment{ID: "autotune", Title: "A5: kernel auto-tuning", Run: runAutotuneAblation})
}

// sweepShapes are square conv layers (cin=cout, 3x3, pad 1) spanning the
// small→large spectrum Figure 2's models cover.
var sweepShapes = []struct{ c, hw int }{
	{8, 8}, {16, 16}, {32, 16}, {32, 32}, {64, 28}, {128, 28}, {128, 56}, {256, 14},
}

// SweepKernels are the conv algorithms compared in A1.
var SweepKernels = []string{"conv.direct", "conv.im2col", "conv.spatialpack", "conv.winograd"}

func sweepNode(c, hw int) (*graph.Node, []*tensor.Tensor, error) {
	r := tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("sweep-%d-%d", c, hw)))
	g := graph.New("sweep")
	x, err := g.Input("x", []int{1, c, hw, hw})
	if err != nil {
		return nil, nil, err
	}
	w, err := g.Const("w", tensor.HeNormal(r, c, c, 3, 3))
	if err != nil {
		return nil, nil, err
	}
	if _, err := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w); err != nil {
		return nil, nil, err
	}
	if err := g.InferShapes(); err != nil {
		return nil, nil, err
	}
	n := g.Nodes[0]
	ins := []*tensor.Tensor{tensor.Rand(r, -1, 1, 1, c, hw, hw), w.Const}
	return n, ins, nil
}

func runSweep(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "sweep", Title: "A1: conv kernel time vs layer size (3x3, pad 1, batch 1)"}
	rep.Header = []string{"shape", "MFLOPs"}
	rep.Header = append(rep.Header, SweepKernels...)
	rep.Header = append(rep.Header, "fastest")
	for _, sh := range sweepShapes {
		n, ins, err := sweepNode(sh.c, sh.hw)
		if err != nil {
			return nil, err
		}
		row := []any{fmt.Sprintf("%dx%dx%d", sh.c, sh.hw, sh.hw), float64(ops.NodeFlops(n)) / 1e6}
		bestName, bestMs := "", 0.0
		for _, kname := range SweepKernels {
			k := ops.ByName(kname)
			if !k.Supports(n) {
				row = append(row, "n/a")
				continue
			}
			var ms float64
			if cfg.Mode == ModeMeasure || cfg.Mode == ModeBoth {
				ms = measureKernelMs(k, n, ins, cfg.Reps)
			} else {
				ms = float64(cfg.Device.EstimateNode(n, kname)) / 1e6
			}
			row = append(row, fmt.Sprintf("%.3f", ms))
			if bestName == "" || ms < bestMs {
				bestName, bestMs = kname, ms
			}
		}
		row = append(row, bestName)
		rep.AddRow(row...)
	}
	rep.AddNote("times in ms; spatial pack should win small layers, im2col/winograd large ones")
	return rep, nil
}

func measureKernelMs(k ops.Kernel, n *graph.Node, ins []*tensor.Tensor, reps int) float64 {
	out := tensor.New(n.Outputs[0].Shape...)
	ctx := ops.NewCtx(1)
	_ = k.Run(ctx, n, ins, []*tensor.Tensor{out}) // warm-up
	if reps < 1 {
		reps = 3
	}
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		_ = k.Run(ctx, n, ins, []*tensor.Tensor{out})
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / 1e6
}

func runPassesAblation(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "passes", Title: "A2: inference time and node count, raw vs optimised graph"}
	rep.Header = []string{"model", "nodes raw", "nodes opt", "ms raw", "ms opt", "speedup"}
	b, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	raw := *b
	raw.Optimize = false
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		rawRes := runModelBackend(cfg, g, modelName, &raw)
		optRes := runModelBackend(cfg, g, modelName, b)
		if rawRes.excluded != "" || optRes.excluded != "" {
			rep.AddRow(modelName, "n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		optG := g.Clone()
		if err := optG.Finalize(); err != nil {
			return nil, err
		}
		if _, err := passes.Default().Run(optG); err != nil {
			return nil, err
		}
		rawMs, optMs := rawRes.ms(cfg.Mode), optRes.ms(cfg.Mode)
		rep.AddRow(modelName, len(g.Nodes), len(optG.Nodes), fmtMs(rawMs), fmtMs(optMs),
			fmt.Sprintf("%.2fx", rawMs/optMs))
	}
	return rep, nil
}

func runMemoryAblation(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "memory", Title: "A3: activation memory, arena planner vs per-value buffers"}
	rep.Header = []string{"model", "weights MB", "arena MB", "no-reuse MB", "saving"}
	b, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		plan, err := b.Prepare(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		mb := func(x int64) string { return fmt.Sprintf("%.2f", float64(x)/(1<<20)) }
		rep.AddRow(modelName, mb(plan.WeightBytes()), mb(plan.ArenaBytes()), mb(plan.NoReuseBytes()),
			fmt.Sprintf("%.1fx", float64(plan.NoReuseBytes())/float64(plan.ArenaBytes())))
	}
	rep.AddNote("arena = liveness-planned intermediate buffers; saving = no-reuse / arena")
	return rep, nil
}

func runLayerwise(cfg *Config) (*Report, error) {
	cfg.fill()
	modelName := cfg.Models[0]
	g, err := zoo.Build(modelName, 1)
	if err != nil {
		return nil, err
	}
	b, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	plan, err := b.Prepare(g, cfg.Workers)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "layerwise", Title: fmt.Sprintf("A4: per-layer breakdown of %s (top 12 by time)", modelName)}

	type entry struct {
		name, op, kernel string
		ms               float64
		mflops           float64
	}
	var entries []entry
	if cfg.Mode == ModeMeasure || cfg.Mode == ModeBoth {
		sess := runtime.NewSession(plan)
		x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
		in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
		if _, err := sess.Run(cfg.Ctx, in); err != nil { // warm-up
			return nil, err
		}
		_, timings, err := sess.RunProfiled(cfg.Ctx, in)
		if err != nil {
			return nil, err
		}
		for _, lt := range timings {
			entries = append(entries, entry{lt.Node.Name, lt.Node.Op, lt.Kernel,
				float64(lt.Duration) / 1e6, float64(lt.Flops) / 1e6})
		}
	} else {
		for _, st := range plan.Steps() {
			entries = append(entries, entry{st.Node.Name, st.Node.Op, st.Kernel,
				float64(cfg.Device.EstimateNode(st.Node, st.Kernel)) / 1e6,
				float64(ops.NodeFlops(st.Node)) / 1e6})
		}
	}
	var totalMs float64
	for _, e := range entries {
		totalMs += e.ms
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ms > entries[j].ms })
	if len(entries) > 12 {
		entries = entries[:12]
	}
	rep.Header = []string{"layer", "op", "kernel", "ms", "MFLOPs", "% of total"}
	for _, e := range entries {
		rep.AddRow(e.name, e.op, e.kernel, fmt.Sprintf("%.3f", e.ms),
			fmt.Sprintf("%.1f", e.mflops), fmt.Sprintf("%.1f%%", 100*e.ms/totalMs))
	}
	rep.AddNote("total %s: %s ms over %d layers", modelName, fmtMs(totalMs), len(plan.Steps()))
	return rep, nil
}

func runAutotuneAblation(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "autotune", Title: "A5: fixed policy vs size heuristic vs auto-tuning"}
	rep.Header = []string{"model", "orpheus ms", "heuristic ms", "tuned ms", "best"}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		row := []any{modelName}
		bestName, bestMs := "", 0.0
		for _, bname := range []string{"orpheus", "orpheus-heuristic", "orpheus-tuned"} {
			b, err := backend.ByName(bname)
			if err != nil {
				return nil, err
			}
			res := runModelBackend(cfg, g, modelName, b)
			if res.excluded != "" {
				row = append(row, "n/a")
				continue
			}
			ms := res.ms(cfg.Mode)
			row = append(row, fmtMs(ms))
			if bestName == "" || ms < bestMs {
				bestName, bestMs = bname, ms
			}
		}
		row = append(row, bestName)
		rep.AddRow(row...)
	}
	rep.AddNote("auto-tuning measures every registered kernel per layer signature and caches the winner")
	return rep, nil
}
