package harness

import (
	"fmt"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Batch-size sweep: throughput (inferences/sec) of the native backend at
// batch n ∈ {1, 4, 8}, per model. This extends the paper's single-sample
// Figure 2 regime to the serving regime the ROADMAP targets: one batched
// pass amortises every packed weight panel across the batch, so the
// throughput ratio n=8 vs n=1 is the amortisation win.
func init() {
	register(&Experiment{
		ID:    "batch",
		Title: "Batched inference throughput (inf/s) at n = 1, 4, 8",
		Run:   runBatchSweep,
	})
}

// batchSweepNs are the batch sizes of the sweep columns.
var batchSweepNs = []int{1, 4, 8}

func runBatchSweep(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "batch", Title: "Batched inference throughput, orpheus backend"}
	rep.Header = []string{"model", "n=1 inf/s", "n=4 inf/s", "n=8 inf/s", "n=8 vs n=1"}
	be, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		row := []any{modelName}
		rates := make([]float64, 0, len(batchSweepNs))
		for _, n := range batchSweepNs {
			infps, err := batchThroughput(cfg, be, g, n)
			if err != nil {
				return nil, fmt.Errorf("harness: batch sweep %s n=%d: %w", modelName, n, err)
			}
			rates = append(rates, infps)
			row = append(row, fmt.Sprintf("%.2f", infps))
		}
		if rates[0] > 0 {
			row = append(row, fmt.Sprintf("%.2fx", rates[len(rates)-1]/rates[0]))
		} else {
			row = append(row, "n/a")
		}
		rep.AddRow(row...)
	}
	if cfg.Mode == ModeSim {
		rep.AddNote("simulated on the A73 cost model; run with -mode measure for host throughput")
	}
	rep.AddNote("each column is one batched Session.Run over n samples; inf/s = n / batch time")
	return rep, nil
}

// batchThroughput returns inferences/sec for one model at batch n: the
// graph is compiled for MaxBatch n (so the cost model sees batch-n node
// shapes) and timed — simulated on the device cost model or measured on
// the host, per cfg.Mode.
func batchThroughput(cfg *Config, be *backend.Backend, g *graph.Graph, n int) (float64, error) {
	plan, err := be.PrepareBatched(g, cfg.Workers, n)
	if err != nil {
		return 0, err
	}
	var perBatch time.Duration
	if cfg.Mode == ModeMeasure {
		sess := runtime.NewSession(plan)
		x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("batch-%s-%d", g.Name, n))),
			-1, 1, plan.InputShapeAt(0, n)...)
		stats, err := runtime.Measure(cfg.Ctx, sess, map[string]*tensor.Tensor{g.Inputs[0].Name: x}, cfg.Warmup, cfg.Reps)
		if err != nil {
			return 0, err
		}
		perBatch = stats.Median
	} else {
		perBatch = cfg.Device.EstimatePlan(plan, time.Duration(be.SimDispatchNs))
	}
	if perBatch <= 0 {
		return 0, fmt.Errorf("non-positive batch time %v", perBatch)
	}
	return float64(n) / perBatch.Seconds(), nil
}
