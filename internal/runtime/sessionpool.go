package runtime

import (
	"context"
	"sync"
	"sync/atomic"

	"orpheus/internal/tensor"
)

// SessionPool serves concurrent inference over one compiled Plan. Sessions
// are not safe for concurrent use — each owns a mutable arena and kernel
// scratch — so the pool hands every in-flight request its own session via
// sync.Pool: N concurrent callers get N sessions, idle sessions are
// reclaimed by the GC under memory pressure, and all sessions share the
// plan's constant cache, so weights are packed once per plan rather than
// once per request or per session.
type SessionPool struct {
	plan *Plan
	pool sync.Pool

	// quarantined counts sessions dropped by Put because a plan step
	// panicked on them — a poisoned arena must never serve another
	// request. Operators watch this alongside the serve-layer panic
	// counter.
	quarantined atomic.Int64
}

// NewSessionPool returns a pool over the plan. Sessions are created
// lazily, on first concurrent demand.
func NewSessionPool(plan *Plan) *SessionPool {
	sp := &SessionPool{plan: plan}
	sp.pool.New = func() any { return NewSession(plan) }
	return sp
}

// Plan returns the compiled plan the pool serves.
func (sp *SessionPool) Plan() *Plan { return sp.plan }

// Get borrows a session. The caller must return it with Put, and must
// finish reading any Run results (which alias the session's arena) before
// doing so.
func (sp *SessionPool) Get() *Session { return sp.pool.Get().(*Session) }

// Put returns a borrowed session to the pool. A session poisoned by a
// plan-step panic is quarantined instead — dropped for the GC, never
// recycled — so one corrupted arena cannot bleed into later requests; a
// fresh session is built on the next Get that misses the pool.
func (sp *SessionPool) Put(s *Session) {
	if s.Poisoned() {
		sp.quarantined.Add(1)
		return
	}
	sp.pool.Put(s)
}

// Quarantined reports how many poisoned sessions Put has dropped.
func (sp *SessionPool) Quarantined() int64 { return sp.quarantined.Load() }

// Run borrows a session, executes the graph and returns cloned outputs
// that remain valid after the session goes back to the pool. It is safe
// for any number of concurrent callers. Cancellation via ctx is honoured
// at plan-step boundaries, exactly as in Session.Run.
func (sp *SessionPool) Run(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	s := sp.Get()
	outs, err := s.Run(ctx, inputs)
	if err != nil {
		sp.Put(s)
		return nil, err
	}
	copied := make(map[string]*tensor.Tensor, len(outs))
	for k, v := range outs {
		copied[k] = v.Clone()
	}
	sp.Put(s)
	return copied, nil
}
