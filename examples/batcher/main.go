// Batcher: the embeddable dynamic batcher — the same request coalescing
// the HTTP server uses, driven directly from Go. Concurrent goroutines
// submit single samples; the batcher packs whatever arrives within a
// small flush window into one batched run, so under load every packed
// weight panel is read once per batch instead of once per request. The
// example also demonstrates the request lifecycle: a per-request
// deadline, a cancelled request that never executes, and a graceful
// close that drains in-flight work.
//
//	go run ./examples/batcher
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"orpheus"
)

func main() {
	model, err := orpheus.BuildZooModel("wrn-40-2")
	if err != nil {
		log.Fatal(err)
	}
	// WithMaxBatch sizes the arena for up to 8 samples per run; the
	// batcher coalesces up to that many concurrent requests.
	sess, err := model.Compile(orpheus.WithMaxBatch(8))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	batcher, err := sess.NewBatcher(orpheus.WithFlushDeadline(5 * time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.Summary())

	// Warm one request through so weight packing does not distort the
	// batch sizes below.
	if _, err := batcher.Predict(context.Background(), orpheus.RandomTensor(0, model.InputShape()...)); err != nil {
		log.Fatal(err)
	}

	// 16 concurrent clients, 8-wide batcher: requests coalesce into a
	// handful of batched runs instead of 16 solo inferences.
	const clients = 16
	var wg sync.WaitGroup
	results := make([]string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			input := orpheus.RandomTensor(uint64(c), model.InputShape()...)
			// Each request carries its own deadline; the batch flushes at
			// the earliest deadline any member carries.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			out, err := batcher.Predict(ctx, input)
			if err != nil {
				results[c] = fmt.Sprintf("client %2d: %v", c, err)
				return
			}
			results[c] = fmt.Sprintf("client %2d: top class %d", c, out.TopK(1)[0])
		}(c)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	// Lifecycle: a context cancelled while the request is queued aborts
	// it before the plan ever runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := batcher.Predict(ctx, orpheus.RandomTensor(99, model.InputShape()...)); errors.Is(err, context.Canceled) {
		fmt.Println("\ncancelled-while-queued request aborted without executing ✓")
	}

	// Graceful drain: Close stops the batcher, finishes in-flight
	// batches, and later submissions fail fast with a typed error.
	batcher.Close()
	if _, err := batcher.Predict(context.Background(), orpheus.RandomTensor(7, model.InputShape()...)); errors.Is(err, orpheus.ErrClosed) {
		fmt.Println("closed batcher rejects new work with orpheus.ErrClosed ✓")
	}
}
