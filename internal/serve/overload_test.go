package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"orpheus/internal/faultinject"
)

// injectFaults installs a fault injector on the hosted model's plan. It
// must run before the first request, which is when sessions are first
// created from the plan.
func injectFaults(t *testing.T, s *Server, model string, fi *faultinject.Injector) {
	t.Helper()
	e, ok := s.entry(model)
	if !ok {
		t.Fatalf("model %q not hosted", model)
	}
	e.sessions.Plan().SetFault(fi)
}

func sampleInput() []float32 {
	in := make([]float32, 3*8*8)
	for i := range in {
		in[i] = float32(i%7) * 0.1
	}
	return in
}

// TestReadyzStates pins the readiness probe's three states on one
// batching server: ready (200) while accepting, overloaded (503) while a
// bounded queue is saturated, and draining (503) once Close begins —
// while /healthz stays 200 throughout, because a degraded process is
// still alive.
func TestReadyzStates(t *testing.T) {
	s, ts := newTestServer(t,
		WithMaxBatch(4), WithQueueDepth(2), WithFlushDeadline(200*time.Millisecond))

	getReady := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
			Models []struct {
				Name       string `json:"name"`
				QueueDepth int64  `json:"queue_depth"`
				QueueCap   int    `json:"queue_cap"`
				Saturated  bool   `json:"saturated"`
			} `json:"models"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if len(body.Models) != 1 || body.Models[0].Name != "tiny" || body.Models[0].QueueCap != 2 {
			t.Fatalf("readyz models = %+v", body.Models)
		}
		return resp.StatusCode, body.Status
	}

	if code, status := getReady(); code != http.StatusOK || status != "ready" {
		t.Fatalf("idle readyz = %d %q, want 200 ready", code, status)
	}

	// Fill the bounded queue: two requests gather for the 200ms flush
	// deadline, holding QueueDepth at its cap of 2.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("queued predict = %d, want 200", resp.StatusCode)
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, ok := s.BatcherStats("tiny"); ok && st.QueueDepth >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never reached its cap")
		}
		time.Sleep(time.Millisecond)
	}
	if code, status := getReady(); code != http.StatusServiceUnavailable || status != "overloaded" {
		t.Fatalf("saturated readyz = %d %q, want 503 overloaded", code, status)
	}

	// A request over the cap is shed immediately: 429 + Retry-After.
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap predict = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if s.ShedCount() < 1 {
		t.Fatalf("ShedCount = %d, want >= 1", s.ShedCount())
	}
	wg.Wait()

	// Drain: readyz flips to draining, healthz stays 200.
	s.Close()
	if code, status := getReady(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 draining", code, status)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", hz.StatusCode)
	}
}

// TestPanicReturns500AndServerSurvives drives an injected plan-step panic
// through /predict and pins the containment chain: the request gets a 500
// naming the panic (never a dropped connection), the panic counter and
// the session quarantine advance, and the very next request succeeds on a
// fresh session.
func TestPanicReturns500AndServerSurvives(t *testing.T) {
	s, ts := newTestServer(t)
	injectFaults(t, s, "tiny",
		faultinject.New(1, &faultinject.Rule{Step: "fc", Action: faultinject.ActPanic, Times: 1}))

	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned predict = %d, want 500", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "panicked") {
		t.Fatalf("500 body %q does not name the panic", body)
	}
	if s.PanicCount() != 1 {
		t.Fatalf("PanicCount = %d, want 1", s.PanicCount())
	}
	if q, ok := s.Quarantined("tiny"); !ok || q != 1 {
		t.Fatalf("Quarantined = %d (%v), want 1", q, ok)
	}

	resp = postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after contained panic = %d, want 200", resp.StatusCode)
	}
}

// TestDrainingMapsTo503 pins the shutdown contract at the HTTP boundary:
// once Close begins, /predict and /profile are rejected with 503 +
// Retry-After — the load-balancer signal to retry on another node — not
// the 500 of a real failure.
func TestDrainingMapsTo503(t *testing.T) {
	s, ts := newTestServer(t)
	s.Close()
	for _, ep := range []string{"/predict/tiny", "/profile/tiny"} {
		resp := postJSON(t, ts.URL+ep, map[string]any{"input": sampleInput()})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining = %d, want 503", ep, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") != "1" {
			t.Errorf("%s 503 Retry-After = %q, want \"1\"", ep, resp.Header.Get("Retry-After"))
		}
	}
}

// TestMaxInflightSheds pins the server-wide limiter: with one execution
// slot and a slow request holding it, a second request is shed with 429
// instead of queueing behind it.
func TestMaxInflightSheds(t *testing.T) {
	s, ts := newTestServer(t, WithMaxInflight(1))
	injectFaults(t, s, "tiny",
		faultinject.New(1, &faultinject.Rule{Step: "fc", Action: faultinject.ActDelay,
			Delay: 300 * time.Millisecond, Times: 1}))

	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
		done <- resp.StatusCode
	}()
	// Wait for the slow request to occupy the only slot, then fire the one
	// that must be shed.
	deadline := time.Now().Add(2 * time.Second)
	for s.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second predict = %d, want 429", resp.StatusCode)
	}
	if got := <-done; got != http.StatusOK {
		t.Fatalf("slow predict = %d, want 200", got)
	}
	// The slot is released; the server accepts again.
	resp = postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after release = %d, want 200", resp.StatusCode)
	}
}

// TestRequestTimeoutBoundsExecution pins WithRequestTimeout on the solo
// path: a run held past the deadline by injected latency is cancelled at
// a step boundary and surfaces as a 500, and an unfaulted request on the
// same server completes inside the budget.
func TestRequestTimeoutBoundsExecution(t *testing.T) {
	s, ts := newTestServer(t, WithRequestTimeout(50*time.Millisecond))
	injectFaults(t, s, "tiny",
		faultinject.New(1, &faultinject.Rule{Step: "fc", Action: faultinject.ActDelay,
			Delay: 80 * time.Millisecond, Times: 1}))

	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("overlong predict = %d, want 500", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("timeout body %q does not name the deadline", body)
	}
	resp = postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast predict = %d, want 200", resp.StatusCode)
	}
}

// TestStatusTableAcrossEndpoints drives every row of the wire status
// contract through real HTTP requests — the end-to-end companion of
// TestStatusForTypedErrors's unit table: 200 success, 400 malformed
// input, 404 unknown model, 429 overload, 500 contained panic, 503
// drain.
func TestStatusTableAcrossEndpoints(t *testing.T) {
	cases := []struct {
		name string
		want int
		run  func(t *testing.T) int
	}{
		{"200-ok", http.StatusOK, func(t *testing.T) int {
			_, ts := newTestServer(t)
			return postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()}).StatusCode
		}},
		{"400-short-input", http.StatusBadRequest, func(t *testing.T) int {
			_, ts := newTestServer(t)
			return postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": []float32{1, 2, 3}}).StatusCode
		}},
		{"404-unknown-model", http.StatusNotFound, func(t *testing.T) int {
			_, ts := newTestServer(t)
			return postJSON(t, ts.URL+"/predict/nosuch", map[string]any{"input": sampleInput()}).StatusCode
		}},
		{"429-inflight-cap", http.StatusTooManyRequests, func(t *testing.T) int {
			s, ts := newTestServer(t, WithMaxInflight(1))
			// Occupy the only slot from inside the test goroutine: admit
			// directly, then observe the wire rejection.
			release, err := s.admit(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer release()
			return postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()}).StatusCode
		}},
		{"500-plan-panic", http.StatusInternalServerError, func(t *testing.T) int {
			s, ts := newTestServer(t)
			injectFaults(t, s, "tiny",
				faultinject.New(1, &faultinject.Rule{Step: "fc", Action: faultinject.ActPanic, Times: 1}))
			return postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()}).StatusCode
		}},
		{"503-draining", http.StatusServiceUnavailable, func(t *testing.T) int {
			s, ts := newTestServer(t)
			s.Close()
			return postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": sampleInput()}).StatusCode
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(t); got != tc.want {
				t.Errorf("status = %d, want %d", got, tc.want)
			}
		})
	}
}
