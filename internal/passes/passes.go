// Package passes implements the Orpheus graph-simplification pipeline that
// runs between model import and execution ("apply simplifications to the
// computation graph", §I of the paper).
//
// Available passes:
//
//   - EliminateIdentity: drops Identity and inference-mode Dropout nodes.
//   - FusePad: merges zero-valued Pad nodes into the following Conv's
//     padding attributes.
//   - FoldBatchNorm: folds inference BatchNorm into the preceding Conv or
//     Dense weights and bias.
//   - FuseActivation: attaches Relu/Relu6/LeakyRelu to the producing Conv,
//     Dense or Add node as a fused epilogue.
//   - FoldConstants: evaluates nodes whose inputs are all constant.
//   - EliminateDead: removes nodes whose results are never used.
//
// Pipeline runs a pass list to a fixed point. Default() returns the
// standard Orpheus pipeline in dependency order.
package passes

import (
	"fmt"

	"orpheus/internal/graph"
)

// Pass is a single graph-to-graph rewrite.
type Pass interface {
	// Name identifies the pass in logs and experiment reports.
	Name() string
	// Run mutates g in place and reports whether anything changed.
	Run(g *graph.Graph) (bool, error)
}

type passFunc struct {
	name string
	run  func(g *graph.Graph) (bool, error)
}

func (p passFunc) Name() string                     { return p.name }
func (p passFunc) Run(g *graph.Graph) (bool, error) { return p.run(g) }
func newPass(name string, run func(g *graph.Graph) (bool, error)) Pass {
	return passFunc{name: name, run: run}
}

// Pipeline applies passes repeatedly until none reports a change, then
// re-finalises the graph (validation + shape inference).
type Pipeline struct {
	Passes []Pass
	// MaxIterations bounds the fixed-point loop; the default 10 comfortably
	// covers real models (one or two rounds settle them).
	MaxIterations int
}

// Default returns the standard Orpheus optimisation pipeline.
func Default() *Pipeline {
	return &Pipeline{Passes: []Pass{
		EliminateIdentity(),
		FusePad(),
		FoldBatchNorm(),
		FuseActivation(),
		FoldConstants(),
		EliminateDead(),
	}}
}

// Run optimises g in place and returns the per-pass change counts in
// application order (one entry per pass execution that changed the graph).
func (p *Pipeline) Run(g *graph.Graph) ([]string, error) {
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}
	var applied []string
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, pass := range p.Passes {
			c, err := pass.Run(g)
			if err != nil {
				return applied, fmt.Errorf("pass %s: %w", pass.Name(), err)
			}
			if c {
				changed = true
				applied = append(applied, pass.Name())
			}
		}
		if !changed {
			break
		}
	}
	if err := g.Finalize(); err != nil {
		return applied, fmt.Errorf("graph invalid after optimisation: %w", err)
	}
	return applied, nil
}

// isGraphOutput reports whether v is one of g's outputs.
func isGraphOutput(g *graph.Graph, v *graph.Value) bool {
	for _, o := range g.Outputs {
		if o == v {
			return true
		}
	}
	return false
}

// soleConsumer returns the single node consuming v, or nil if v has zero or
// multiple consumers or is a graph output.
func soleConsumer(g *graph.Graph, consumers map[*graph.Value][]*graph.Node, v *graph.Value) *graph.Node {
	if isGraphOutput(g, v) {
		return nil
	}
	c := consumers[v]
	if len(c) != 1 {
		return nil
	}
	return c[0]
}
