package harness

import (
	"fmt"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Implicit-vs-explicit GEMM convolution ablation: the same models, the
// same policy shape (depthwise kernel for depthwise layers, GEMM
// convolution everywhere else), with the GEMM path flipped between the
// production implicit form (conv.im2col: virtual B-pack plus fused
// bias/activation epilogue) and the explicit form (conv.im2col_explicit:
// materialised kdim×cols unfold, separate sweeps). Everything else —
// passes, prepack cache, worker pool, micro-kernel — is identical, so the
// column ratio isolates the unfold traffic and the extra sweeps, and the
// scratch column shows the arena reservation the implicit path deletes.
func init() {
	register(&Experiment{
		ID:    "conv",
		Title: "GEMM convolution ablation: implicit (virtual B-pack) vs explicit im2col",
		Run:   runConvAblation,
	})
}

// convVariantPlan compiles g with the orpheus pass pipeline and a policy
// preferring the given GEMM conv kernel.
func convVariantPlan(g *graph.Graph, kernel string, workers int) (*runtime.Plan, error) {
	work := g.Clone()
	if err := work.Finalize(); err != nil {
		return nil, err
	}
	if _, err := passes.Default().Run(work); err != nil {
		return nil, err
	}
	return runtime.Compile(work, runtime.Options{
		Policy: &backend.PreferencePolicy{
			PolicyName: "conv-" + kernel,
			Prefs: map[string][]string{
				"Conv":  {"conv.depthwise", kernel},
				"Dense": {"dense.gemm"},
			},
		},
		Workers: workers,
	})
}

// convVariantResult measures one (model, conv kernel) variant: median
// single-sample latency plus the session's kernel-scratch footprint.
type convVariantResult struct {
	ms        float64
	scratchMB float64
}

func measureConvVariant(cfg *Config, g *graph.Graph, modelName, kernel string) (convVariantResult, error) {
	plan, err := convVariantPlan(g, kernel, cfg.Workers)
	if err != nil {
		return convVariantResult{}, err
	}
	sess := runtime.NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString("conv-"+modelName)), -1, 1, g.Inputs[0].Shape...)
	stats, err := runtime.Measure(cfg.Ctx, sess, map[string]*tensor.Tensor{g.Inputs[0].Name: x}, cfg.Warmup, cfg.Reps)
	if err != nil {
		return convVariantResult{}, err
	}
	return convVariantResult{
		ms:        float64(stats.Median) / 1e6,
		scratchMB: float64(sess.CtxScratchBytes()) / (1 << 20),
	}, nil
}

func runConvAblation(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "conv", Title: "GEMM convolution: implicit vs explicit im2col (host-measured)"}
	rep.Header = []string{"model", "implicit ms", "explicit ms", "speedup", "implicit scratch MB", "explicit scratch MB"}
	// Both columns run the same host code path; the A73 cost model has no
	// implicit/explicit dimension, so sim mode only explains itself.
	if cfg.Mode == ModeSim {
		rep.AddNote("the conv ablation measures this host; run with -mode measure")
		return rep, nil
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		imp, err := measureConvVariant(cfg, g, modelName, "conv.im2col")
		if err != nil {
			return nil, fmt.Errorf("harness: conv %s implicit: %w", modelName, err)
		}
		exp, err := measureConvVariant(cfg, g, modelName, "conv.im2col_explicit")
		if err != nil {
			return nil, fmt.Errorf("harness: conv %s explicit: %w", modelName, err)
		}
		rep.AddRow(modelName,
			fmt.Sprintf("%.2f", imp.ms), fmt.Sprintf("%.2f", exp.ms),
			ratioCell(exp.ms, imp.ms),
			fmt.Sprintf("%.2f", imp.scratchMB), fmt.Sprintf("%.2f", exp.scratchMB))
	}
	rep.AddNote("identical plans apart from the GEMM conv kernel; scratch = per-session kernel scratch (the explicit column carries the kdim×cols unfold buffers)")
	rep.AddNote("medians over %d reps after %d warm-ups, workers=%d", cfg.Reps, cfg.Warmup, cfg.Workers)
	return rep, nil
}
