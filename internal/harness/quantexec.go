package harness

import (
	"fmt"
	"math"

	"orpheus/internal/backend"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// E3 "quant": the int8 execution tier against the fp32 baseline, per zoo
// model — measured latency and speedup, top-1 agreement and output
// relative error over a battery of inputs, and the packed-weight
// footprint both ways. Where E2 ("quantize") studies weight-only storage
// quantisation with fp32 arithmetic, this experiment runs the full
// quantized path: u8×s8 GEMM kernels, on-the-fly activation
// quantization, fused requantize epilogue.
func init() {
	register(&Experiment{ID: "quant", Title: "E3: int8 execution tier vs fp32 (speed, agreement, footprint)", Run: runQuantExec})
}

// quantAgreeInputs is the accuracy battery size per model.
const quantAgreeInputs = 8

func runQuantExec(cfg *Config) (*Report, error) {
	cfg.fill()
	rep := &Report{ID: "quant", Title: "E3: int8 execution tier vs fp32 per model"}
	rep.Header = []string{"model", "fp32 ms", "int8 ms", "speedup", "top-1 agree", "rel err", "packed fp32 MB", "packed int8 MB"}
	measured := cfg.Mode != ModeSim
	if !measured {
		rep.AddNote("timing columns require -mode measure; the A73 cost model has no int8 tier")
	}
	b, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, err
		}
		fpPlan, err := b.Prepare(g, 1)
		if err != nil {
			return nil, err
		}
		qPlan, err := b.PrepareWith(g, backend.PrepareOpts{Workers: 1, MaxBatch: 1, Int8: true})
		if err != nil {
			return nil, err
		}
		fpSess := runtime.NewSession(fpPlan)
		qSess := runtime.NewSession(qPlan)
		inName, outName := g.Inputs[0].Name, g.Outputs[0].Name

		// Accuracy battery: agreement and relative error over fresh inputs.
		agree := 0
		var relSum float64
		var x *tensor.Tensor
		for i := 0; i < quantAgreeInputs; i++ {
			x = tensor.Rand(tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("quant-%s-%d", modelName, i))), -1, 1, g.Inputs[0].Shape...)
			in := map[string]*tensor.Tensor{inName: x}
			fpOut, err := fpSess.Run(cfg.Ctx, in)
			if err != nil {
				return nil, err
			}
			fd := fpOut[outName].Clone().Data()
			qOut, err := qSess.Run(cfg.Ctx, in)
			if err != nil {
				return nil, err
			}
			qd := qOut[outName].Data()
			if argmax32(fd) == argmax32(qd) {
				agree++
			}
			relSum += relErr32(qd, fd)
		}

		fpMs, qMs := "-", "-"
		speedup := "-"
		if measured {
			in := map[string]*tensor.Tensor{inName: x}
			fpStats, err := runtime.Measure(cfg.Ctx, fpSess, in, cfg.Warmup, cfg.Reps)
			if err != nil {
				return nil, err
			}
			qStats, err := runtime.Measure(cfg.Ctx, qSess, in, cfg.Warmup, cfg.Reps)
			if err != nil {
				return nil, err
			}
			f := float64(fpStats.Median) / 1e6
			q := float64(qStats.Median) / 1e6
			fpMs, qMs = fmtMs(f), fmtMs(q)
			speedup = fmt.Sprintf("%.2fx", f/q)
		}

		rep.AddRow(modelName, fpMs, qMs, speedup,
			fmt.Sprintf("%d/%d", agree, quantAgreeInputs),
			fmt.Sprintf("%.4f", relSum/quantAgreeInputs),
			fmt.Sprintf("%.2f", float64(fpPlan.ConstBytes())/(1<<20)),
			fmt.Sprintf("%.2f", float64(qPlan.ConstBytes())/(1<<20)))
	}
	rep.AddNote("int8 path: per-channel s8 weights, per-image u8 activations, fused requantize epilogue")
	rep.AddNote("rel err is the L2 relative error of the final output (softmax amplifies logit-level noise)")
	rep.AddNote("packed MB = derived constants after warm-up: fp32 panels vs int8 panels + scale/rowsum metadata")
	return rep, nil
}

// argmax32 returns the index of the largest element.
func argmax32(v []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// relErr32 is ||a-b|| / ||b||.
func relErr32(a, b []float32) float64 {
	var num, den float64
	for i := range a {
		d := float64(a[i] - b[i])
		num += d * d
		den += float64(b[i]) * float64(b[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
