package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Depthwise convolution kernels. MobileNetV1's performance hinges on how a
// framework executes groups == Cin convolutions:
//
//   - conv.depthwise: a dedicated per-channel direct loop — the efficient
//     path Orpheus uses.
//   - conv.group_im2col: the pathological treatment the paper blames for
//     PyTorch's MobileNetV1 collapse — every group (one channel!) gets its
//     own im2col unfold plus a 1-row GEMM, so per-call overhead dominates.
func init() {
	Register(NewOverwritingKernel("conv.depthwise", "Conv", supportsDepthwise, runConvDepthwise))
	Register(NewKernel("conv.group_im2col", "Conv", supportsGroupIm2col, runConvGroupIm2col))
}

func supportsDepthwise(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == "" && p.isDepthwise()
}

func runConvDepthwise(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data() // [c][1][kh][kw]
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	for b := 0; b < p.n; b++ {
		for c := 0; c < p.cin; c++ {
			src := x[(b*p.cin+c)*p.h*p.w:]
			dst := y[(b*p.cin+c)*p.oh*p.ow:]
			wc := w[c*p.kh*p.kw : (c+1)*p.kh*p.kw]
			var bv float32
			if bias != nil {
				bv = bias[c]
			}
			for oy := 0; oy < p.oh; oy++ {
				iy0 := oy*p.sh - p.padT
				for ox := 0; ox < p.ow; ox++ {
					ix0 := ox*p.sw - p.padL
					acc := bv
					for ky := 0; ky < p.kh; ky++ {
						iy := iy0 + ky*p.dh
						if iy < 0 || iy >= p.h {
							continue
						}
						rowW := wc[ky*p.kw:]
						rowX := src[iy*p.w:]
						for kx := 0; kx < p.kw; kx++ {
							ix := ix0 + kx*p.dw
							if ix < 0 || ix >= p.w {
								continue
							}
							acc += rowX[ix] * rowW[kx]
						}
					}
					dst[oy*p.ow+ox] = acc
				}
			}
		}
	}
	ctx.Sweep(y, nil, p.n*p.cin, p.oh*p.ow, p.activation, p.alpha)
	return nil
}

func supportsGroupIm2col(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == "" && p.groups > 1
}

// runConvGroupIm2col deliberately mirrors a generic grouped-conv lowering:
// per batch and per group it allocates (when scratch reuse is off) and
// fills an unfold buffer, then performs a tiny naive GEMM. Correct, but
// with per-channel overhead — the behaviour Figure 2 shows for PyTorch on
// MobileNetV1.
func runConvGroupIm2col(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	return convIm2colPerGroupNaive(ctx, n, in, out)
}

func convIm2colPerGroupNaive(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	kdim := cinG * p.kh * p.kw
	cols := p.oh * p.ow
	for b := 0; b < p.n; b++ {
		for g := 0; g < p.groups; g++ {
			// A fresh unfold per (batch, group): the overhead under study.
			colBuf := ctx.Scratch("conv.group_im2col/col", n, kdim*cols)
			src := x[(b*p.cin+g*cinG)*p.h*p.w:]
			tensor.Im2ColInto(colBuf, src, 1, cinG, p.h, p.w,
				p.kh, p.kw, p.sh, p.sw, p.padT, p.padL, p.dh, p.dw, p.oh, p.ow)
			wg := w[g*coutG*kdim : (g+1)*coutG*kdim]
			dst := y[(b*p.cout+g*coutG)*cols : (b*p.cout+(g+1)*coutG)*cols]
			gemm.Naive(wg, colBuf, dst, coutG, cols, kdim)
		}
	}
	if bias != nil {
		addBiasNCHW(y, bias, p.n, p.cout, cols)
	}
	applyActivation(y, p.activation, p.alpha)
	return nil
}
