package ops

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Transpose — materialised axis permutation. The layout-assignment pass
// inserts these only at layout frontiers it cannot cancel or fold away
// (e.g. an NHWC interior feeding an NCHW graph output), so on all-NHWC
// models the steady-state plan carries none. The kernel is rank-generic;
// the innermost output axis is copied as a run when it is contiguous in
// the source (true for NCHW→NHWC's channel gather reverse, [0,3,1,2]).
func init() {
	Register(NewOverwritingKernel("transpose.copy", "Transpose", nil, runTransposeCopy))
}

// maxTransposeRank bounds the index bookkeeping so the hot path uses
// fixed-size stack arrays — Transpose must not allocate per run.
const maxTransposeRank = 8

func runTransposeCopy(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	perm := n.Attrs.Ints("perm", nil)
	rank := in[0].Rank()
	if rank == 0 || rank > maxTransposeRank || len(perm) != rank {
		return fmt.Errorf("Transpose perm %v invalid for rank-%d input", perm, rank)
	}
	var ishape, istr, oshape, ostr [maxTransposeRank]int
	for i := 0; i < rank; i++ {
		ishape[i] = in[0].Dim(i)
	}
	istr[rank-1] = 1
	for i := rank - 2; i >= 0; i-- {
		istr[i] = istr[i+1] * ishape[i+1]
	}
	total := 1
	for i := 0; i < rank; i++ {
		oshape[i] = ishape[perm[i]]
		ostr[i] = istr[perm[i]] // source stride of output axis i
		total *= ishape[i]
	}
	x, y := in[0].Data(), out[0].Data()
	inner := oshape[rank-1]
	innerStr := ostr[rank-1]
	var idx [maxTransposeRank]int
	for di := 0; di < total; di += inner {
		off := 0
		for i := 0; i < rank-1; i++ {
			off += idx[i] * ostr[i]
		}
		row := y[di : di+inner]
		if innerStr == 1 {
			copy(row, x[off:off+inner])
		} else {
			for j := range row {
				row[j] = x[off]
				off += innerStr
			}
		}
		for i := rank - 2; i >= 0; i-- {
			if idx[i]++; idx[i] < oshape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return nil
}
