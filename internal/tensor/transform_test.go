package tensor

import "testing"

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose(1, 0)
	if !ShapeEq(y.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(2, 0) != 3 || y.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", y.Data())
	}
}

func TestTransposeIdentity(t *testing.T) {
	r := NewRNG(1)
	x := Rand(r, -1, 1, 2, 3, 4)
	y := x.Transpose(0, 1, 2)
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("identity transpose changed data")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(2)
	x := Rand(r, -1, 1, 3, 4, 5)
	y := x.Transpose(2, 0, 1).Transpose(1, 2, 0)
	if !AllClose(x, y, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestTransposePanicsOnBadPerm(t *testing.T) {
	x := New(2, 3)
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("perm %v did not panic", perm)
				}
			}()
			x.Transpose(perm...)
		}()
	}
}

func TestPad2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := x.Pad2D(1, 1, 1, 1, 0)
	if !ShapeEq(y.Shape(), []int{1, 1, 4, 4}) {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(0, 0, 0, 0) != 0 || y.At(0, 0, 1, 1) != 1 || y.At(0, 0, 2, 2) != 4 {
		t.Fatalf("padding wrong: %v", y.Data())
	}
}

func TestPad2DAsymmetricValue(t *testing.T) {
	x := Full(1, 1, 2, 1, 1)
	y := x.Pad2D(0, 1, 2, 0, 9)
	if !ShapeEq(y.Shape(), []int{1, 2, 2, 3}) {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(0, 0, 0, 0) != 9 || y.At(0, 0, 0, 2) != 1 || y.At(0, 1, 1, 0) != 9 {
		t.Fatalf("asymmetric pad wrong: %v", y.Data())
	}
}

func TestPad2DZeroPadIsCopy(t *testing.T) {
	r := NewRNG(3)
	x := Rand(r, -1, 1, 2, 3, 5, 4)
	y := x.Pad2D(0, 0, 0, 0, 0)
	if !AllClose(x, y, 0) {
		t.Fatal("zero padding should copy exactly")
	}
}

func TestConcatAxis1(t *testing.T) {
	a := Full(1, 1, 2, 2, 2)
	b := Full(2, 1, 3, 2, 2)
	c := Concat(1, a, b)
	if !ShapeEq(c.Shape(), []int{1, 5, 2, 2}) {
		t.Fatalf("shape = %v", c.Shape())
	}
	if c.At(0, 1, 0, 0) != 1 || c.At(0, 2, 0, 0) != 2 || c.At(0, 4, 1, 1) != 2 {
		t.Fatalf("concat values wrong")
	}
}

func TestConcatAxis0AndNegative(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4}, 1, 2)
	c := Concat(0, a, b)
	if !ShapeEq(c.Shape(), []int{2, 2}) || c.At(1, 0) != 3 {
		t.Fatalf("concat axis0 wrong: %v %v", c.Shape(), c.Data())
	}
	d := Concat(-1, a, b)
	if !ShapeEq(d.Shape(), []int{1, 4}) {
		t.Fatalf("concat axis -1 shape = %v", d.Shape())
	}
}

func TestConcatPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched concat did not panic")
		}
	}()
	Concat(0, New(1, 2), New(1, 3))
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no padding: im2col is just a reshape.
	r := NewRNG(4)
	x := Rand(r, -1, 1, 1, 3, 4, 4)
	cols := Im2Col(x, 1, 1, 1, 1, 0, 0, 1, 1, 4, 4)
	if !ShapeEq(cols.Shape(), []int{3, 16}) {
		t.Fatalf("shape = %v", cols.Shape())
	}
	if MaxAbsDiff(cols.Reshape(1, 3, 4, 4), x) != 0 {
		t.Fatal("1x1 im2col should equal input")
	}
}

func TestIm2Col3x3Values(t *testing.T) {
	// 1x1x3x3 input, 3x3 kernel, pad 1: centre column equals the input.
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	cols := Im2Col(x, 3, 3, 1, 1, 1, 1, 1, 1, 3, 3)
	if !ShapeEq(cols.Shape(), []int{9, 9}) {
		t.Fatalf("shape = %v", cols.Shape())
	}
	// Row 4 (ky=1,kx=1) is the unshifted input.
	for i := 0; i < 9; i++ {
		if cols.At(4, i) != float32(i+1) {
			t.Fatalf("centre row wrong at %d: %v", i, cols.At(4, i))
		}
	}
	// Row 0 (ky=0,kx=0) is input shifted down-right with zero fill.
	if cols.At(0, 0) != 0 || cols.At(0, 4) != 1 || cols.At(0, 8) != 5 {
		t.Fatal("corner row wrong")
	}
}

func TestIm2ColStrideDilation(t *testing.T) {
	x := FromSlice([]float32{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	}, 1, 1, 4, 4)
	// 2x2 kernel, stride 2 -> 2x2 output, no pad.
	cols := Im2Col(x, 2, 2, 2, 2, 0, 0, 1, 1, 2, 2)
	if !ShapeEq(cols.Shape(), []int{4, 4}) {
		t.Fatalf("shape = %v", cols.Shape())
	}
	// First output (0,0) patch = [0,1,4,5]; read down the first column.
	want := []float32{0, 1, 4, 5}
	for r := 0; r < 4; r++ {
		if cols.At(r, 0) != want[r] {
			t.Fatalf("stride patch wrong: row %d = %v, want %v", r, cols.At(r, 0), want[r])
		}
	}
	// Dilation 2 with 2x2 kernel samples corners of a 3x3 region.
	cols = Im2Col(x, 2, 2, 1, 1, 0, 0, 2, 2, 2, 2)
	want = []float32{0, 2, 8, 10}
	for r := 0; r < 4; r++ {
		if cols.At(r, 0) != want[r] {
			t.Fatalf("dilated patch wrong: row %d = %v, want %v", r, cols.At(r, 0), want[r])
		}
	}
}

func TestSliceDim0(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	s := x.SliceDim0(1)
	if !ShapeEq(s.Shape(), []int{2}) || s.At(0) != 3 || s.At(1) != 4 {
		t.Fatalf("SliceDim0 = %v %v", s.Shape(), s.Data())
	}
	s.Set(99, 0)
	if x.At(1, 0) == 99 {
		t.Fatal("SliceDim0 should copy")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Rand(NewRNG(42), -1, 1, 100)
	b := Rand(NewRNG(42), -1, 1, 100)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed should give identical streams")
	}
	c := Rand(NewRNG(43), -1, 1, 100)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
		u := r.Uniform(-2, 3)
		if u < -2 || u >= 3 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		n := r.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := float64(r.Normal())
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestHeNormalStddev(t *testing.T) {
	w := HeNormal(NewRNG(5), 64, 32, 3, 3)
	// fanIn = 32*9 = 288 -> stddev ~ sqrt(2/288) ~ 0.0833.
	var sq float64
	for _, v := range w.Data() {
		sq += float64(v) * float64(v)
	}
	std := sq / float64(w.Size())
	if std < 0.8*2.0/288 || std > 1.2*2.0/288 {
		t.Fatalf("He variance = %v, want ~%v", std, 2.0/288)
	}
}

func TestSeedFromStringStable(t *testing.T) {
	if SeedFromString("conv1.weight") != SeedFromString("conv1.weight") {
		t.Fatal("SeedFromString not deterministic")
	}
	if SeedFromString("a") == SeedFromString("b") {
		t.Fatal("SeedFromString collision on trivial inputs")
	}
}
