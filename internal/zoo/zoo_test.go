package zoo

import (
	"context"
	"math"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"wrn-40-2", "mobilenet-v1", "resnet-18", "inception-v3", "resnet-50"}
	if len(names) != len(want) {
		t.Fatalf("models = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("model order %v, want %v (paper Figure 2 order)", names, want)
		}
	}
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Build("nope", 1); err == nil {
		t.Fatal("Build of unknown model accepted")
	}
}

// TestModelStructure builds every model and checks parameter counts,
// output shapes and structural signatures. Construction is cheap compared
// to inference, so all five run even with -short.
func TestModelStructure(t *testing.T) {
	for _, m := range Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			g, err := m.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(g.Inputs) != 1 || !tensor.ShapeEq(g.Inputs[0].Shape, m.InputShape) {
				t.Fatalf("input shape %v, want %v", g.Inputs[0].Shape, m.InputShape)
			}
			if len(g.Outputs) != 1 || !tensor.ShapeEq(g.Outputs[0].Shape, []int{1, m.Classes}) {
				t.Fatalf("output shape %v, want [1 %d]", g.Outputs[0].Shape, m.Classes)
			}
			gotM := float64(g.NumParams()) / 1e6
			if math.Abs(gotM-m.ApproxParams) > 0.35*m.ApproxParams {
				t.Fatalf("params %.2fM, expected ~%.1fM", gotM, m.ApproxParams)
			}
		})
	}
}

func TestModelOpInventory(t *testing.T) {
	type signature struct {
		model    string
		convs    int
		adds     int
		concats  int
		min, max int // total node count bounds
	}
	sigs := []signature{
		{model: "wrn-40-2", convs: 1 + 18*2 + 3, adds: 18, concats: 0, min: 100, max: 200},
		{model: "mobilenet-v1", convs: 1 + 13*2, adds: 0, concats: 0, min: 80, max: 130},
		{model: "resnet-18", convs: 1 + 8*2 + 3, adds: 8, concats: 0, min: 60, max: 110},
		{model: "resnet-50", convs: 1 + 16*3 + 4, adds: 16, concats: 0, min: 150, max: 260},
		{model: "inception-v3", convs: 94, adds: 0, concats: 11 + 4, min: 300, max: 450},
	}
	for _, sig := range sigs {
		g, err := Build(sig.model, 1)
		if err != nil {
			t.Fatalf("%s: %v", sig.model, err)
		}
		counts := g.OpCounts()
		if counts["Conv"] != sig.convs {
			t.Errorf("%s: %d convs, want %d", sig.model, counts["Conv"], sig.convs)
		}
		if counts["Add"] != sig.adds {
			t.Errorf("%s: %d adds, want %d", sig.model, counts["Add"], sig.adds)
		}
		if counts["Concat"] != sig.concats {
			t.Errorf("%s: %d concats, want %d", sig.model, counts["Concat"], sig.concats)
		}
		if n := len(g.Nodes); n < sig.min || n > sig.max {
			t.Errorf("%s: %d nodes, want %d..%d", sig.model, n, sig.min, sig.max)
		}
		// One BatchNorm per conv, except WRN's pre-activation design:
		// 2 BNs per block (36) + the final BN = 37, while shortcut convs
		// and conv1 carry none.
		wantBN := counts["Conv"]
		if sig.model == "wrn-40-2" {
			wantBN = 37
		}
		if counts["BatchNorm"] != wantBN {
			t.Errorf("%s: %d BNs, want %d", sig.model, counts["BatchNorm"], wantBN)
		}
	}
}

func TestWeightsDeterministic(t *testing.T) {
	g1, err := WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	v1 := g1.Value("conv1.weight")
	v2 := g2.Value("conv1.weight")
	if v1 == nil || v2 == nil {
		t.Fatal("conv1.weight missing")
	}
	if tensor.MaxAbsDiff(v1.Const, v2.Const) != 0 {
		t.Fatal("two builds produced different weights")
	}
}

func TestBatchDimension(t *testing.T) {
	g, err := WRN40_2(4)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(g.Outputs[0].Shape, []int{4, 10}) {
		t.Fatalf("batch-4 output shape %v", g.Outputs[0].Shape)
	}
}

// runModel optimises and executes a model once, returning the output.
func runModel(t *testing.T, g *graph.Graph) *tensor.Tensor {
	t.Helper()
	if _, err := passes.Default().Run(g); err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.Compile(g, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	x := tensor.Rand(tensor.NewRNG(99), -1, 1, g.Inputs[0].Shape...)
	out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{g.Inputs[0].Name: x})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		return v.Clone()
	}
	t.Fatal("no output")
	return nil
}

func TestWRNForwardProducesDistribution(t *testing.T) {
	g, err := WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	out := runModel(t, g)
	if out.HasNaN() {
		t.Fatal("WRN forward produced NaN")
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestMobileNetForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full MobileNetV1 inference is slow; run without -short")
	}
	g, err := MobileNetV1(1)
	if err != nil {
		t.Fatal(err)
	}
	out := runModel(t, g)
	if out.HasNaN() {
		t.Fatal("MobileNetV1 forward produced NaN")
	}
}

func TestResNet18Forward(t *testing.T) {
	if testing.Short() {
		t.Skip("full ResNet-18 inference is slow; run without -short")
	}
	g, err := ResNet18(1)
	if err != nil {
		t.Fatal(err)
	}
	out := runModel(t, g)
	if out.HasNaN() {
		t.Fatal("ResNet-18 forward produced NaN")
	}
}

func TestOptimisationFoldsBatchNorms(t *testing.T) {
	// Post-activation nets (conv→BN) fold every BatchNorm. WRN-40-2 is
	// pre-activation (BN→ReLU→conv), so only the 19 conv→BN pairs fold
	// (18 block bn1 nodes follow an Add and must survive).
	for _, tc := range []struct {
		model   string
		wantBNs int
	}{
		{"resnet-18", 0},
		{"mobilenet-v1", 0},
		{"wrn-40-2", 18},
	} {
		g, err := Build(tc.model, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := passes.Default().Run(g); err != nil {
			t.Fatal(err)
		}
		counts := g.OpCounts()
		if counts["BatchNorm"] != tc.wantBNs {
			t.Errorf("%s: %d BatchNorms survive optimisation, want %d", tc.model, counts["BatchNorm"], tc.wantBNs)
		}
	}
}
