package ops

import (
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

func TestMaxPoolKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := runKernel(t, "maxpool.direct", "MaxPool",
		graph.Attrs{"kernel": []int{2, 2}, "strides": []int{2, 2}}, x)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMaxPoolWithPadding(t *testing.T) {
	// 3x3 window, pad 1, stride 2 on 4x4: padded cells never win because
	// they are skipped, not treated as zero (matters for negative inputs).
	x := tensor.Full(-5, 1, 1, 4, 4)
	out := runKernel(t, "maxpool.direct", "MaxPool",
		graph.Attrs{"kernel": []int{3, 3}, "strides": []int{2, 2}, "pads": []int{1, 1, 1, 1}}, x)
	for _, v := range out.Data() {
		if v != -5 {
			t.Fatalf("padding leaked into max: %v", out.Data())
		}
	}
}

func TestAvgPoolExcludePad(t *testing.T) {
	x := tensor.Full(4, 1, 1, 2, 2)
	// 2x2 window, stride 1, pad 1 -> 3x3 out. Corner windows see one real
	// element; with count_include_pad=false the average is still 4.
	out := runKernel(t, "avgpool.direct", "AveragePool",
		graph.Attrs{"kernel": []int{2, 2}, "strides": []int{1, 1}, "pads": []int{1, 1, 1, 1}}, x)
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("exclude-pad corner = %v, want 4", out.At(0, 0, 0, 0))
	}
	// With count_include_pad=true the corner divides by 4: 4/4 = 1.
	out = runKernel(t, "avgpool.direct", "AveragePool",
		graph.Attrs{"kernel": []int{2, 2}, "strides": []int{1, 1}, "pads": []int{1, 1, 1, 1},
			"count_include_pad": true}, x)
	if out.At(0, 0, 0, 0) != 1 {
		t.Fatalf("include-pad corner = %v, want 1", out.At(0, 0, 0, 0))
	}
}

func TestAvgPoolMatchesManual(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := runKernel(t, "avgpool.direct", "AveragePool",
		graph.Attrs{"kernel": []int{2, 2}}, x)
	if !tensor.ShapeEq(out.Shape(), []int{1, 1, 1, 1}) || out.At(0, 0, 0, 0) != 2.5 {
		t.Fatalf("avg = %v", out.Data())
	}
}

func TestGlobalAvgPool(t *testing.T) {
	r := tensor.NewRNG(3)
	x := tensor.Rand(r, -1, 1, 2, 3, 5, 7)
	out := runKernel(t, "globalavgpool.direct", "GlobalAveragePool", nil, x)
	if !tensor.ShapeEq(out.Shape(), []int{2, 3, 1, 1}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	// Channel (1,2) mean computed independently.
	var sum float32
	for y := 0; y < 5; y++ {
		for z := 0; z < 7; z++ {
			sum += x.At(1, 2, y, z)
		}
	}
	want := sum / 35
	if d := out.At(1, 2, 0, 0) - want; d > 1e-5 || d < -1e-5 {
		t.Fatalf("global avg = %v, want %v", out.At(1, 2, 0, 0), want)
	}
}

func TestPoolShapeInference(t *testing.T) {
	x := tensor.New(1, 8, 224, 224)
	n := buildNode(t, "MaxPool", graph.Attrs{"kernel": []int{3, 3}, "strides": []int{2, 2}, "pads": []int{1, 1, 1, 1}}, x)
	if !tensor.ShapeEq(n.Outputs[0].Shape, []int{1, 8, 112, 112}) {
		t.Fatalf("inferred %v", n.Outputs[0].Shape)
	}
}

func TestPoolShapeErrors(t *testing.T) {
	g := graph.New("bad")
	x, _ := g.Input("x", []int{1, 1, 4, 4})
	y, _ := g.Add("MaxPool", "p", graph.Attrs{"kernel": []int{9, 9}}, x)
	_ = g.MarkOutput(y)
	if err := g.Finalize(); err == nil {
		t.Fatal("oversized pool window not caught")
	}
	g2 := graph.New("bad2")
	x2, _ := g2.Input("x", []int{1, 1, 4, 4})
	y2, _ := g2.Add("AveragePool", "p", graph.Attrs{}, x2) // kernel missing
	_ = g2.MarkOutput(y2)
	if err := g2.Finalize(); err == nil {
		t.Fatal("missing kernel attr not caught")
	}
}
