package ops

import (
	"fmt"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// buildNode constructs a one-node graph over the given input tensors and
// returns the node with shapes inferred.
func buildNode(t testing.TB, op string, attrs graph.Attrs, inputs ...*tensor.Tensor) *graph.Node {
	t.Helper()
	g := graph.New("test")
	vals := make([]*graph.Value, len(inputs))
	for i, in := range inputs {
		v, err := g.Const(fmt.Sprintf("in%d", i), in)
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = v
	}
	out, err := g.Add(op, "node", attrs, vals...)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MarkOutput(out); err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	return g.Nodes[0]
}

// runKernel executes the named kernel on a one-node graph and returns the
// output tensor.
func runKernel(t testing.TB, kernelName, op string, attrs graph.Attrs, inputs ...*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	n := buildNode(t, op, attrs, inputs...)
	k := ByName(kernelName)
	if k == nil {
		t.Fatalf("kernel %q not registered", kernelName)
	}
	if k.Op() != op {
		t.Fatalf("kernel %q is for op %q, not %q", kernelName, k.Op(), op)
	}
	if !k.Supports(n) {
		t.Fatalf("kernel %q does not support node %v", kernelName, n.Attrs)
	}
	out := tensor.New(n.Outputs[0].Shape...)
	ctx := NewCtx(1)
	if err := k.Run(ctx, n, inputs, []*tensor.Tensor{out}); err != nil {
		t.Fatalf("kernel %q: %v", kernelName, err)
	}
	return out
}

// convCase describes one convolution geometry for the equivalence matrix.
type convCase struct {
	name                   string
	n, cin, h, w           int
	cout, kh, kw           int
	sh, sw                 int
	padT, padL, padB, padR int
	dh, dw                 int
	groups                 int
	bias                   bool
}

func (c convCase) attrs() graph.Attrs {
	return graph.Attrs{
		"strides":   []int{c.sh, c.sw},
		"pads":      []int{c.padT, c.padL, c.padB, c.padR},
		"dilations": []int{c.dh, c.dw},
		"group":     c.groups,
	}
}

func (c convCase) tensors(seed uint64) []*tensor.Tensor {
	r := tensor.NewRNG(seed)
	x := tensor.Rand(r, -1, 1, c.n, c.cin, c.h, c.w)
	w := tensor.Rand(r, -1, 1, c.cout, c.cin/c.groups, c.kh, c.kw)
	if !c.bias {
		return []*tensor.Tensor{x, w}
	}
	b := tensor.Rand(r, -1, 1, c.cout)
	return []*tensor.Tensor{x, w, b}
}

var convMatrix = []convCase{
	{name: "1x1", n: 1, cin: 4, h: 6, w: 6, cout: 8, kh: 1, kw: 1, sh: 1, sw: 1, dh: 1, dw: 1, groups: 1},
	{name: "3x3-pad1", n: 1, cin: 3, h: 8, w: 8, cout: 5, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1, bias: true},
	{name: "3x3-stride2", n: 2, cin: 4, h: 9, w: 9, cout: 6, kh: 3, kw: 3, sh: 2, sw: 2, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1},
	{name: "5x5", n: 1, cin: 2, h: 12, w: 10, cout: 3, kh: 5, kw: 5, sh: 1, sw: 1, padT: 2, padL: 2, padB: 2, padR: 2, dh: 1, dw: 1, groups: 1, bias: true},
	{name: "asym-pad", n: 1, cin: 3, h: 7, w: 7, cout: 4, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 0, padB: 0, padR: 1, dh: 1, dw: 1, groups: 1},
	{name: "rect-kernel", n: 1, cin: 2, h: 9, w: 11, cout: 4, kh: 1, kw: 3, sh: 1, sw: 1, padT: 0, padL: 1, padB: 0, padR: 1, dh: 1, dw: 1, groups: 1},
	{name: "dilated", n: 1, cin: 2, h: 10, w: 10, cout: 3, kh: 3, kw: 3, sh: 1, sw: 1, padT: 2, padL: 2, padB: 2, padR: 2, dh: 2, dw: 2, groups: 1},
	{name: "grouped", n: 1, cin: 8, h: 6, w: 6, cout: 8, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 2, bias: true},
	{name: "depthwise", n: 1, cin: 6, h: 8, w: 8, cout: 6, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 6, bias: true},
	{name: "depthwise-s2", n: 2, cin: 4, h: 9, w: 9, cout: 4, kh: 3, kw: 3, sh: 2, sw: 2, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 4},
	{name: "batch3", n: 3, cin: 3, h: 6, w: 6, cout: 4, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1},
	{name: "wide", n: 1, cin: 16, h: 5, w: 5, cout: 24, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, dh: 1, dw: 1, groups: 1, bias: true},
}
