package ops

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Shape inference for every operator, registered with internal/graph.
//
// Every rule treats the leading batch dimension N symbolically: it is read
// from the (already inferred) input shapes and propagated, never assumed to
// be 1. graph.Rebatch relies on this to re-derive the whole graph's shapes
// for a new batch size from the inputs alone; the runtime compiles plans at
// a maximum batch and executes any 1 ≤ n ≤ Nmax against them.

func init() {
	graph.RegisterShapeFn("Conv", convShape)
	for _, op := range []string{"Relu", "Relu6", "LeakyRelu", "Sigmoid", "Softmax", "Identity", "Dropout"} {
		graph.RegisterShapeFn(op, sameShape)
	}
	graph.RegisterShapeFn("BatchNorm", batchNormShape)
	graph.RegisterShapeFn("MaxPool", poolShape)
	graph.RegisterShapeFn("AveragePool", poolShape)
	graph.RegisterShapeFn("GlobalAveragePool", globalPoolShape)
	graph.RegisterShapeFn("Dense", denseShape)
	graph.RegisterShapeFn("Add", binaryShape)
	graph.RegisterShapeFn("Mul", binaryShape)
	graph.RegisterShapeFn("Concat", concatShape)
	graph.RegisterShapeFn("Flatten", flattenShape)
	graph.RegisterShapeFn("Reshape", reshapeShape)
	graph.RegisterShapeFn("Pad", padShape)
	graph.RegisterShapeFn("Transpose", transposeShape)
}

func sameShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("%s wants 1 input, got %d", n.Op, len(n.Inputs))
	}
	return [][]int{append([]int(nil), n.Inputs[0].Shape...)}, nil
}

func convShape(n *graph.Node) ([][]int, error) {
	p, err := resolveConv(n)
	if err != nil {
		return nil, err
	}
	if p.layout == "nhwc" {
		return [][]int{{p.n, p.oh, p.ow, p.cout}}, nil
	}
	return [][]int{{p.n, p.cout, p.oh, p.ow}}, nil
}

// transposeShape permutes the input shape by the "perm" attribute:
// out[i] = in[perm[i]]. The layout pass only emits rank-4 NCHW↔NHWC
// permutations, but the rule is rank-generic.
func transposeShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("Transpose wants 1 input, got %d", len(n.Inputs))
	}
	s := n.Inputs[0].Shape
	perm := n.Attrs.Ints("perm", nil)
	if len(perm) != len(s) {
		return nil, fmt.Errorf("Transpose perm %v does not match input rank %d", perm, len(s))
	}
	out := make([]int, len(s))
	seen := make([]bool, len(s))
	for i, p := range perm {
		if p < 0 || p >= len(s) || seen[p] {
			return nil, fmt.Errorf("Transpose perm %v is not a permutation of 0..%d", perm, len(s)-1)
		}
		seen[p] = true
		out[i] = s[p]
	}
	return [][]int{out}, nil
}

func batchNormShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 5 {
		return nil, fmt.Errorf("BatchNorm wants 5 inputs (x, scale, bias, mean, var), got %d", len(n.Inputs))
	}
	x := n.Inputs[0].Shape
	if len(x) < 2 {
		return nil, fmt.Errorf("BatchNorm input must have a channel dim, got %v", x)
	}
	c := x[1]
	if n.Attrs.Str("layout", "") == "nhwc" {
		c = x[len(x)-1]
	}
	for i := 1; i < 5; i++ {
		s := n.Inputs[i].Shape
		if len(s) != 1 || s[0] != c {
			return nil, fmt.Errorf("BatchNorm param %d has shape %v, want [%d]", i, s, c)
		}
	}
	return [][]int{append([]int(nil), x...)}, nil
}

// poolParams mirrors convParams for pooling windows.
type poolParams struct {
	n, c, h, w             int
	kh, kw, sh, sw         int
	padT, padL, padB, padR int
	oh, ow                 int
	includePad             bool
	layout                 string // "" (NCHW) or "nhwc"
}

func resolvePool(n *graph.Node) (poolParams, error) {
	var p poolParams
	if len(n.Inputs) != 1 {
		return p, fmt.Errorf("%s wants 1 input, got %d", n.Op, len(n.Inputs))
	}
	x := n.Inputs[0].Shape
	if len(x) != 4 {
		return p, fmt.Errorf("%s input must be 4-D, got %v", n.Op, x)
	}
	switch p.layout = n.Attrs.Str("layout", ""); p.layout {
	case "":
		p.n, p.c, p.h, p.w = x[0], x[1], x[2], x[3]
	case "nhwc":
		p.n, p.h, p.w, p.c = x[0], x[1], x[2], x[3]
	default:
		return p, fmt.Errorf("%s layout %q invalid (want \"\" or nhwc)", n.Op, p.layout)
	}
	kernel := n.Attrs.Ints("kernel", nil)
	if len(kernel) != 2 || kernel[0] < 1 || kernel[1] < 1 {
		return p, fmt.Errorf("%s kernel %v invalid", n.Op, kernel)
	}
	p.kh, p.kw = kernel[0], kernel[1]
	strides := n.Attrs.Ints("strides", kernel)
	if len(strides) != 2 || strides[0] < 1 || strides[1] < 1 {
		return p, fmt.Errorf("%s strides %v invalid", n.Op, strides)
	}
	p.sh, p.sw = strides[0], strides[1]
	pads := n.Attrs.Ints("pads", defaultPads)
	if len(pads) != 4 {
		return p, fmt.Errorf("%s pads %v invalid", n.Op, pads)
	}
	p.padT, p.padL, p.padB, p.padR = pads[0], pads[1], pads[2], pads[3]
	numH := p.h + p.padT + p.padB - p.kh
	numW := p.w + p.padL + p.padR - p.kw
	if numH < 0 || numW < 0 {
		return p, fmt.Errorf("%s window %dx%d exceeds padded input %dx%d",
			n.Op, p.kh, p.kw, p.h+p.padT+p.padB, p.w+p.padL+p.padR)
	}
	p.oh = numH/p.sh + 1
	p.ow = numW/p.sw + 1
	p.includePad = n.Attrs.Bool("count_include_pad", false)
	return p, nil
}

func poolShape(n *graph.Node) ([][]int, error) {
	p, err := resolvePool(n)
	if err != nil {
		return nil, err
	}
	if p.layout == "nhwc" {
		return [][]int{{p.n, p.oh, p.ow, p.c}}, nil
	}
	return [][]int{{p.n, p.c, p.oh, p.ow}}, nil
}

func globalPoolShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("GlobalAveragePool wants 1 input, got %d", len(n.Inputs))
	}
	x := n.Inputs[0].Shape
	if len(x) != 4 {
		return nil, fmt.Errorf("GlobalAveragePool input must be 4-D, got %v", x)
	}
	if n.Attrs.Str("layout", "") == "nhwc" {
		return [][]int{{x[0], 1, 1, x[3]}}, nil
	}
	return [][]int{{x[0], x[1], 1, 1}}, nil
}

func denseShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) < 2 || len(n.Inputs) > 3 {
		return nil, fmt.Errorf("Dense wants 2 or 3 inputs, got %d", len(n.Inputs))
	}
	x, w := n.Inputs[0].Shape, n.Inputs[1].Shape
	if len(x) != 2 {
		return nil, fmt.Errorf("Dense input must be 2-D [N,K], got %v", x)
	}
	if len(w) != 2 {
		return nil, fmt.Errorf("Dense weight must be 2-D [M,K], got %v", w)
	}
	if x[1] != w[1] {
		return nil, fmt.Errorf("Dense: input features %d != weight features %d", x[1], w[1])
	}
	if len(n.Inputs) == 3 {
		b := n.Inputs[2].Shape
		if len(b) != 1 || b[0] != w[0] {
			return nil, fmt.Errorf("Dense bias shape %v, want [%d]", b, w[0])
		}
	}
	return [][]int{{x[0], w[0]}}, nil
}

func binaryShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 2 {
		return nil, fmt.Errorf("%s wants 2 inputs, got %d", n.Op, len(n.Inputs))
	}
	a, b := n.Inputs[0].Shape, n.Inputs[1].Shape
	if tensor.ShapeEq(a, b) {
		return [][]int{append([]int(nil), a...)}, nil
	}
	// Scalar broadcast: second operand with volume 1.
	if tensor.Volume(b) == 1 {
		return [][]int{append([]int(nil), a...)}, nil
	}
	return nil, fmt.Errorf("%s shapes %v and %v incompatible (only exact match or scalar broadcast)", n.Op, a, b)
}

func concatShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) == 0 {
		return nil, fmt.Errorf("Concat wants at least 1 input")
	}
	axis := n.Attrs.Int("axis", 1)
	first := n.Inputs[0].Shape
	if axis < 0 {
		axis += len(first)
	}
	if axis < 0 || axis >= len(first) {
		return nil, fmt.Errorf("Concat axis %d out of range for rank %d", axis, len(first))
	}
	out := append([]int(nil), first...)
	for _, in := range n.Inputs[1:] {
		s := in.Shape
		if len(s) != len(first) {
			return nil, fmt.Errorf("Concat rank mismatch: %v vs %v", s, first)
		}
		for i := range s {
			if i != axis && s[i] != first[i] {
				return nil, fmt.Errorf("Concat dim %d mismatch: %v vs %v", i, s, first)
			}
		}
		out[axis] += s[axis]
	}
	return [][]int{out}, nil
}

func flattenShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("Flatten wants 1 input, got %d", len(n.Inputs))
	}
	axis := n.Attrs.Int("axis", 1)
	s := n.Inputs[0].Shape
	if axis < 0 || axis > len(s) {
		return nil, fmt.Errorf("Flatten axis %d out of range for rank %d", axis, len(s))
	}
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= s[i]
	}
	for i := axis; i < len(s); i++ {
		inner *= s[i]
	}
	return [][]int{{outer, inner}}, nil
}

func reshapeShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("Reshape wants 1 input, got %d", len(n.Inputs))
	}
	want := n.Attrs.Ints("shape", nil)
	if len(want) == 0 {
		return nil, fmt.Errorf("Reshape requires a 'shape' attribute")
	}
	vol := tensor.Volume(n.Inputs[0].Shape)
	out := append([]int(nil), want...)
	infer, prod := -1, 1
	for i, d := range out {
		switch {
		case d == -1:
			if infer >= 0 {
				return nil, fmt.Errorf("Reshape shape %v has multiple -1", want)
			}
			infer = i
		case d == 0: // ONNX semantics: copy the input dimension
			if i >= len(n.Inputs[0].Shape) {
				return nil, fmt.Errorf("Reshape dim 0 at %d beyond input rank", i)
			}
			out[i] = n.Inputs[0].Shape[i]
			prod *= out[i]
		case d < 0:
			return nil, fmt.Errorf("Reshape shape %v has invalid dim", want)
		default:
			prod *= d
		}
	}
	if infer >= 0 {
		// Batch fallback for inferred targets: exporters bake the build-time
		// batch (1, by convention) into the leading target dim of
		// flatten-style reshapes ([1, -1]), and a strict inference would
		// silently fold the runtime batch into the inferred dim after
		// graph.Rebatch ([1, n·C·H·W] — wrong per-sample outputs). Read a
		// literal leading 1 batch-relatively when the input actually carries
		// a batch: the leading dim follows the input's batch and -1 infers
		// the per-sample remainder. The gate is deliberately tight — only a
		// baked batch of exactly 1 qualifies, so ordinary regrouping targets
		// like [2, -1] over an unbatched input keep their strict ONNX
		// semantics, and a mistyped target still fails the volume check.
		if infer > 0 && len(n.Inputs[0].Shape) > 0 && out[0] == 1 {
			if in0 := n.Inputs[0].Shape[0]; in0 > 1 && prod > 0 && vol%(prod*in0) == 0 {
				prod *= in0
				out[0] = in0
			}
		}
		if prod == 0 || vol%prod != 0 {
			return nil, fmt.Errorf("Reshape cannot infer -1: volume %d vs partial %d", vol, prod)
		}
		out[infer] = vol / prod
		prod *= out[infer]
	}
	if prod != vol {
		// Batch fallback: exporters bake the graph's build-time batch into
		// the leading target dim, so after graph.Rebatch the declared
		// volume no longer matches. Read the leading dim as batch-relative
		// only when the corrected dim equals the input's actual leading
		// dim — the signature of a batch resize. Mistyped targets keep
		// failing with the volume error (their corrected dim does not
		// match the input batch), and graphs whose shapes satisfy the
		// declared target never reach here.
		if infer < 0 && len(out) > 0 && out[0] >= 1 && len(n.Inputs[0].Shape) > 0 {
			rest := prod / out[0]
			if rest > 0 && vol%rest == 0 && vol/rest == n.Inputs[0].Shape[0] {
				out[0] = vol / rest
				return [][]int{out}, nil
			}
		}
		return nil, fmt.Errorf("Reshape volume mismatch: %v (%d) vs input %v (%d)", out, prod, n.Inputs[0].Shape, vol)
	}
	return [][]int{out}, nil
}

func padShape(n *graph.Node) ([][]int, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("Pad wants 1 input, got %d", len(n.Inputs))
	}
	x := n.Inputs[0].Shape
	if len(x) != 4 {
		return nil, fmt.Errorf("Pad input must be 4-D, got %v", x)
	}
	pads := n.Attrs.Ints("pads", nil)
	if len(pads) != 4 || pads[0] < 0 || pads[1] < 0 || pads[2] < 0 || pads[3] < 0 {
		return nil, fmt.Errorf("Pad pads %v invalid (want [top,left,bottom,right])", pads)
	}
	if n.Attrs.Str("layout", "") == "nhwc" {
		return [][]int{{x[0], x[1] + pads[0] + pads[2], x[2] + pads[1] + pads[3], x[3]}}, nil
	}
	return [][]int{{x[0], x[1], x[2] + pads[0] + pads[2], x[3] + pads[1] + pads[3]}}, nil
}
