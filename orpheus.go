// Package orpheus is the public facade of the Orpheus deep-learning
// inference framework: a Go reproduction of "Orpheus: A New Deep Learning
// Framework for Easy Deployment and Evaluation of Edge Inference"
// (Gibson & Cano, ISPASS 2020).
//
// The facade wraps the internal subsystems behind a small, context-first
// API designed for the serving path:
//
//	model, _ := orpheus.LoadONNX("mobilenet.onnx")     // or orpheus.BuildZooModel("mobilenet-v1")
//	sess, _ := model.Compile(orpheus.WithBackend("orpheus"))
//	defer sess.Close()                                  // graceful drain
//	out, _ := sess.Predict(ctx, input)                  // *orpheus.Tensor, NCHW float32
//
// Every predict path takes a context.Context: cancellation aborts a
// request while it waits in a batcher queue and interrupts a running plan
// at the next step boundary. Errors wrap the typed sentinels
// (ErrShapeMismatch, ErrClosed, ...) so callers branch with errors.Is.
// Multi-input/multi-output graphs run through the named-tensor Run path,
// described by the Inputs and Outputs descriptors. See docs/API.md for
// the full request lifecycle.
//
// Layers are first-class citizens with multiple registered kernels;
// Compile selects one implementation per layer through the chosen
// backend's policy (fixed preference, size heuristic, or empirical
// auto-tuning), mirrors the paper's design, and plans an arena for
// intermediate activations.
package orpheus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/onnx"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Tensor is the dense float32 NCHW tensor type used at the API boundary.
type Tensor = tensor.Tensor

// IODesc describes one model input or output at the API boundary: name,
// single-sample shape, element type and whether the shape scales with the
// runtime batch. It is the metadata needed to drive Run on
// multi-input/multi-output graphs without reaching into the IR.
type IODesc = runtime.IODesc

// Typed sentinel errors of the request lifecycle, re-exported from the
// runtime so embedders switch on errors.Is without importing internals.
// Context cancellation surfaces as context.Canceled /
// context.DeadlineExceeded, not as a package sentinel.
var (
	// ErrShapeMismatch marks an input or destination tensor whose shape or
	// volume does not match the compiled plan.
	ErrShapeMismatch = runtime.ErrShapeMismatch
	// ErrUnknownInput marks a named input the graph does not declare, or a
	// declared input missing from a Run request.
	ErrUnknownInput = runtime.ErrUnknownInput
	// ErrUnknownOutput marks a request for an output name the graph does
	// not produce.
	ErrUnknownOutput = runtime.ErrUnknownOutput
	// ErrBatchTooLarge marks a batch larger than the session's MaxBatch.
	ErrBatchTooLarge = runtime.ErrBatchTooLarge
	// ErrClosed marks a request submitted after Close.
	ErrClosed = runtime.ErrClosed
	// ErrNoOutput marks a graph that produced no output tensor.
	ErrNoOutput = runtime.ErrNoOutput
	// ErrOverloaded marks a request rejected at admission because a bounded
	// batcher queue (WithQueueDepth) was full. Overload rejections are
	// immediate — the request never waits — so callers can retry after a
	// short backoff.
	ErrOverloaded = runtime.ErrOverloaded
	// ErrPlanPanic marks a request that failed because a plan step panicked.
	// The panic is contained: only the affected request (or batch) fails,
	// the poisoned session is quarantined, and the process keeps serving.
	// Inspect the full *runtime.PlanPanicError with errors.As for the
	// model, node and recovered value.
	ErrPlanPanic = runtime.ErrPlanPanic
	// ErrMultiIO marks a single-tensor convenience call (Predict,
	// PredictBatch, Benchmark, ...) on a model with more than one input or
	// output; use Run with named tensors instead.
	ErrMultiIO = errors.New("model has multiple inputs/outputs; use Run with named tensors")
)

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data (not copied) in a tensor of the given shape.
func TensorFromSlice(data []float32, shape ...int) *Tensor {
	return tensor.FromSlice(data, shape...)
}

// RandomTensor returns a deterministic uniform[-1,1) tensor, seeded by
// seed — handy for benchmarks and examples.
func RandomTensor(seed uint64, shape ...int) *Tensor {
	return tensor.Rand(tensor.NewRNG(seed), -1, 1, shape...)
}

// Model is a loaded (not yet compiled) network.
type Model struct {
	g *graph.Graph
}

// LoadONNX reads an ONNX file into a Model.
func LoadONNX(path string) (*Model, error) {
	g, err := onnx.ImportFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{g: g}, nil
}

// FromGraph wraps an already-built graph (advanced use; see internal/zoo
// for builder examples).
func FromGraph(g *graph.Graph) *Model { return &Model{g: g} }

// BuildZooModel constructs one of the paper's five evaluation networks by
// name: "wrn-40-2", "mobilenet-v1", "resnet-18", "inception-v3",
// "resnet-50".
func BuildZooModel(name string) (*Model, error) {
	g, err := zoo.Build(name, 1)
	if err != nil {
		return nil, err
	}
	return &Model{g: g}, nil
}

// ZooModels lists the available built-in model names in the paper's
// Figure 2 order.
func ZooModels() []string { return zoo.Names() }

// SaveONNX writes the model to an ONNX file.
func (m *Model) SaveONNX(path string) error { return onnx.ExportFile(m.g, path) }

// Graph exposes the underlying IR (read-mostly; Compile clones before
// optimising).
func (m *Model) Graph() *graph.Graph { return m.g }

// InputName returns the model's first input value name (models with more
// than one input are described by Session.Inputs).
func (m *Model) InputName() string { return m.g.Inputs[0].Name }

// InputShape returns the model's first input shape.
func (m *Model) InputShape() []int { return m.g.Inputs[0].Shape }

// Summary returns a one-line description of the model.
func (m *Model) Summary() string {
	return fmt.Sprintf("%s: %d nodes, %.2fM params, input %s",
		m.g.Name, len(m.g.Nodes), float64(m.g.NumParams())/1e6, tensor.ShapeString(m.g.Inputs[0].Shape))
}

// Optimize runs the graph-simplification pipeline in place on the model
// (Compile does this automatically for optimising backends; call this to
// inspect or export the optimised graph).
func (m *Model) Optimize() error {
	_, err := passes.Default().Run(m.g)
	return err
}

// compileConfig collects Compile options.
type compileConfig struct {
	backendName string
	workers     int
	maxBatch    int
	int8        bool
}

// CompileOption configures Compile.
type CompileOption func(*compileConfig)

// WithBackend selects the execution backend: "orpheus" (default),
// "orpheus-heuristic", "orpheus-tuned", or the framework simulations
// "tvm-sim", "torch-sim", "darknet-sim", "tflite-sim".
func WithBackend(name string) CompileOption {
	return func(c *compileConfig) { c.backendName = name }
}

// WithWorkers sets the kernel thread budget (default 1, the paper's
// single-core configuration).
func WithWorkers(n int) CompileOption {
	return func(c *compileConfig) { c.workers = n }
}

// WithMaxBatch compiles the session for runtime batching: arena slots are
// sized for up to n samples, and Predict/PredictBatch/Run accept any batch
// 1 ≤ b ≤ n per call. Larger n trades arena memory (see MemoryFootprint)
// for amortised weight traffic per sample. Default 1.
func WithMaxBatch(n int) CompileOption {
	return func(c *compileConfig) { c.maxBatch = n }
}

// WithInt8 enables the quantized execution tier: convolution and dense
// layers with constant weights run as u8×s8 GEMMs with int32
// accumulation (AVX2 VPMADDUBSW / AVX-512 VNNI where available). Weights
// are quantized per output channel and prepacked once at first use
// (~4× smaller than the fp32 packed panels); activations are quantized
// on the fly at the GEMM pack boundary, and the int32→fp32 requantize,
// bias and activation fuse into the GEMM epilogue. Outputs differ from
// fp32 by the quantization error (typically well under 1% relative on
// the zoo models — validate for your model, e.g. with
// `orpheus-bench -experiment quant`). With the "orpheus-tuned" backend
// the auto-tuner instead arbitrates fp32 vs int8 per layer and batch
// size on measured time.
func WithInt8() CompileOption {
	return func(c *compileConfig) { c.int8 = true }
}

// Backends lists the registered backend names.
func Backends() []string { return backend.Names() }

// Session is a compiled, executable model. It is safe for concurrent use:
// any number of goroutines may call Predict/PredictBatch/Run at once. Each
// in-flight call borrows a runtime session (private arena, scratch and
// staging buffers) from an internal sync.Pool, so concurrent requests
// share the compiled plan and its packed weights but never share mutable
// state.
//
// Close drains the session: it waits for in-flight requests, shuts down
// any batchers created with NewBatcher, and makes subsequent requests
// fail with ErrClosed.
type Session struct {
	model    *Model
	sessions *runtime.SessionPool
	maxBatch int
	singleIO bool
	inName   string
	outName  string // single output name when singleIO
	inShape1 []int  // model input shape at batch 1
	perVol   int    // elements per sample
	states   sync.Pool

	// mu gates the request lifecycle: every request holds it shared for
	// its duration, Close takes it exclusively — so Close both drains
	// in-flight work and flips closed atomically with respect to new
	// requests. batchers lists the NewBatcher children Close must drain;
	// closeOnce/closeDone make every Close caller block until the full
	// drain (requests and batchers) has finished.
	mu        sync.RWMutex
	closed    bool
	batchers  []*Batcher
	closeOnce sync.Once
	closeDone chan struct{}
}

// predictState is the reusable staging of the Predict paths: the
// input-binding map, the batch staging buffer and its per-batch-size
// views. Runtime sessions come from the session pool shared with Run;
// pooling the staging alongside keeps steady-state PredictInto /
// PredictBatchInto at zero heap allocations without a second set of
// arenas.
type predictState struct {
	in    map[string]*Tensor
	stage []float32
	views []*Tensor // views[n] = [n, ...] tensor over stage
}

// Compile plans and allocates an executable session for the model.
func (m *Model) Compile(opts ...CompileOption) (*Session, error) {
	cfg := compileConfig{backendName: "orpheus", workers: 1, maxBatch: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	be, err := backend.ByName(cfg.backendName)
	if err != nil {
		return nil, err
	}
	plan, err := be.PrepareWith(m.g, backend.PrepareOpts{
		Workers: cfg.workers, MaxBatch: cfg.maxBatch, Int8: cfg.int8})
	if err != nil {
		return nil, err
	}
	s := &Session{
		model:     m,
		sessions:  runtime.NewSessionPool(plan),
		maxBatch:  plan.MaxBatch(),
		singleIO:  len(m.g.Inputs) == 1 && len(plan.OutputDescs()) == 1,
		inName:    m.InputName(),
		inShape1:  plan.InputShapeAt(0, 1),
		closeDone: make(chan struct{}),
	}
	if outs := plan.OutputDescs(); len(outs) == 1 {
		s.outName = outs[0].Name
	}
	s.perVol = tensor.Volume(s.inShape1)
	s.states.New = func() any {
		return &predictState{in: make(map[string]*Tensor, 1)}
	}
	return s, nil
}

// MaxBatch returns the largest batch a single Predict/Run call accepts
// (set by WithMaxBatch; default 1).
func (s *Session) MaxBatch() int { return s.maxBatch }

// Inputs describes the model's inputs: one descriptor per graph input,
// in declaration order, with single-sample shapes. Together with Outputs
// it is the contract for driving Run on any graph, including
// multi-input/multi-output ones.
func (s *Session) Inputs() []IODesc { return s.sessions.Plan().InputDescs() }

// Outputs describes the model's outputs, mirroring Inputs.
func (s *Session) Outputs() []IODesc { return s.sessions.Plan().OutputDescs() }

// acquire registers one in-flight request; it fails once the session is
// closed. The shared lock costs two atomic operations per request and no
// allocations on the steady-state path.
func (s *Session) acquire() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("orpheus: session: %w", ErrClosed)
	}
	return nil
}

// release ends an in-flight request.
func (s *Session) release() { s.mu.RUnlock() }

// Close drains the session gracefully: batchers created with NewBatcher
// stop accepting work and finish their in-flight batches, every predict
// already past its ErrClosed check completes, and only then does Close
// return. Subsequent predicts fail with ErrClosed. Close is idempotent
// and safe to call concurrently with requests.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		// Acquiring the write side waits out every in-flight request (they
		// hold the read side); setting closed under it makes the rejection
		// of new requests atomic with the drain.
		s.mu.Lock()
		s.closed = true
		batchers := s.batchers
		s.batchers = nil
		s.mu.Unlock()
		for _, b := range batchers {
			b.rb.Close() // blocks until the batcher's in-flight batches deliver
		}
		close(s.closeDone)
	})
	// Every caller — not just the first — returns only after the full
	// drain has finished.
	<-s.closeDone
	return nil
}

// stageView returns the state's staging view for batch n, growing the
// staging buffer on first use.
func (st *predictState) stageView(s *Session, n int) *Tensor {
	if st.stage == nil {
		st.stage = make([]float32, s.maxBatch*s.perVol)
		st.views = make([]*Tensor, s.maxBatch+1)
	}
	if st.views[n] == nil {
		shape := append([]int(nil), s.inShape1...)
		shape[0] *= n
		st.views[n] = tensor.FromSlice(st.stage[:n*s.perVol], shape...)
	}
	return st.views[n]
}

// Predict runs inference on a single input tensor and returns a copy of
// the model's (single) output. The copy is freshly allocated; latency-
// critical callers should reuse an output tensor via PredictInto. A
// cancelled ctx interrupts the running plan at the next step boundary.
func (s *Session) Predict(ctx context.Context, input *Tensor) (*Tensor, error) {
	return s.PredictInto(ctx, nil, input)
}

// PredictInto is Predict with a caller-owned destination: the output is
// copied into dst (which must hold exactly the model's output volume) and
// dst is returned. A nil dst allocates a fresh output tensor. With a
// reused dst the whole facade path — staging, session run, output copy —
// performs zero steady-state heap allocations.
func (s *Session) PredictInto(ctx context.Context, dst, input *Tensor) (*Tensor, error) {
	if err := s.acquire(); err != nil {
		return nil, err
	}
	defer s.release()
	if !s.singleIO {
		return nil, fmt.Errorf("orpheus: Predict: %w", ErrMultiIO)
	}
	st := s.states.Get().(*predictState)
	st.in[s.inName] = input
	dst, err := s.runState(ctx, st, dst)
	s.states.Put(st)
	return dst, err
}

// runState executes the state's bound inputs on a pooled runtime session
// and copies the single output into dst (allocating when dst is nil).
func (s *Session) runState(ctx context.Context, st *predictState, dst *Tensor) (*Tensor, error) {
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	outs, err := rs.Run(ctx, st.in)
	if err != nil {
		return nil, err
	}
	out := outs[s.outName]
	if out == nil {
		return nil, fmt.Errorf("orpheus: %w", ErrNoOutput)
	}
	if dst == nil {
		return out.Clone(), nil
	}
	if dst.Size() != out.Size() {
		return nil, fmt.Errorf("orpheus: destination holds %d values, output needs %d: %w", dst.Size(), out.Size(), ErrShapeMismatch)
	}
	copy(dst.Data(), out.Data())
	return dst, nil
}

// PredictBatch runs one batched inference over up to MaxBatch independent
// single-sample inputs and returns one output copy per input. The whole
// batch flows through the graph as a single leading-dimension-n execution,
// so constant weights (and their packed GEMM panels) are read once per
// batch instead of once per sample.
func (s *Session) PredictBatch(ctx context.Context, inputs []*Tensor) ([]*Tensor, error) {
	return s.PredictBatchInto(ctx, make([]*Tensor, len(inputs)), inputs)
}

// PredictBatchInto is PredictBatch with caller-owned destinations: dsts
// must have one (possibly nil, then allocated) tensor per input, each
// holding exactly one sample's output volume. With reused destinations the
// batched facade path performs zero steady-state heap allocations.
func (s *Session) PredictBatchInto(ctx context.Context, dsts, inputs []*Tensor) ([]*Tensor, error) {
	if err := s.acquire(); err != nil {
		return nil, err
	}
	defer s.release()
	if !s.singleIO {
		return nil, fmt.Errorf("orpheus: PredictBatch: %w", ErrMultiIO)
	}
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("orpheus: PredictBatch needs at least one input: %w", ErrShapeMismatch)
	}
	if n > s.maxBatch {
		return nil, fmt.Errorf("orpheus: batch %d exceeds the session's max batch %d (compile with WithMaxBatch): %w", n, s.maxBatch, ErrBatchTooLarge)
	}
	if len(dsts) != n {
		return nil, fmt.Errorf("orpheus: %d destinations for %d inputs: %w", len(dsts), n, ErrShapeMismatch)
	}
	st := s.states.Get().(*predictState)
	defer s.states.Put(st)
	view := st.stageView(s, n)
	buf := view.Data()
	for i, in := range inputs {
		if in.Size() != s.perVol {
			return nil, fmt.Errorf("orpheus: input %d has %d values, model wants %d (%s): %w", i, in.Size(), s.perVol, tensor.ShapeString(s.inShape1), ErrShapeMismatch)
		}
		copy(buf[i*s.perVol:(i+1)*s.perVol], in.Data())
	}
	st.in[s.inName] = view
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	outs, err := rs.Run(ctx, st.in)
	if err != nil {
		return nil, err
	}
	out := outs[s.outName]
	if out == nil {
		return nil, fmt.Errorf("orpheus: %w", ErrNoOutput)
	}
	if out.Size()%n != 0 || out.Rank() == 0 || out.Dim(0)%n != 0 {
		return nil, fmt.Errorf("orpheus: output %s does not split across batch %d: %w", tensor.ShapeString(out.Shape()), n, ErrShapeMismatch)
	}
	rowVol := out.Size() / n
	od := out.Data()
	for i := range dsts {
		if dsts[i] == nil {
			shape := append([]int(nil), out.Shape()...)
			shape[0] /= n
			dsts[i] = tensor.New(shape...)
		} else if dsts[i].Size() != rowVol {
			return nil, fmt.Errorf("orpheus: destination %d holds %d values, output row needs %d: %w", i, dsts[i].Size(), rowVol, ErrShapeMismatch)
		}
		copy(dsts[i].Data(), od[i*rowVol:(i+1)*rowVol])
	}
	return dsts, nil
}

// Run executes the graph on named inputs and returns copies of all
// outputs by name — the general path for multi-input/multi-output graphs
// (see Inputs/Outputs for the contract). Run is batch-aware: inputs whose
// leading dimension carries 1 ≤ n ≤ MaxBatch samples execute as one
// batched pass. A cancelled ctx interrupts the plan at the next step
// boundary.
func (s *Session) Run(ctx context.Context, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	if err := s.acquire(); err != nil {
		return nil, err
	}
	defer s.release()
	return s.sessions.Run(ctx, inputs)
}

// LayerTiming mirrors runtime.LayerTiming at the public boundary.
type LayerTiming = runtime.LayerTiming

// PredictProfiled runs inference and returns per-layer timings alongside
// the output.
func (s *Session) PredictProfiled(ctx context.Context, input *Tensor) (*Tensor, []LayerTiming, error) {
	if err := s.acquire(); err != nil {
		return nil, nil, err
	}
	defer s.release()
	if !s.singleIO {
		return nil, nil, fmt.Errorf("orpheus: PredictProfiled: %w", ErrMultiIO)
	}
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	outs, timings, err := rs.RunProfiled(ctx, map[string]*Tensor{s.inName: input})
	if err != nil {
		return nil, nil, err
	}
	out := outs[s.outName]
	if out == nil {
		return nil, nil, fmt.Errorf("orpheus: %w", ErrNoOutput)
	}
	return out.Clone(), timings, nil
}

// BenchStats mirrors runtime.Stats at the public boundary.
type BenchStats = runtime.Stats

// WriteTrace serialises per-layer timings from PredictProfiled as a
// Chrome trace-event JSON document viewable in chrome://tracing.
func WriteTrace(w io.Writer, timings []LayerTiming) error {
	return runtime.WriteTrace(w, timings)
}

// Benchmark times repeated inference (warm-up + reps) on the given input,
// holding one pooled session for the whole measurement. A cancelled ctx
// aborts the sweep at the next plan-step boundary.
func (s *Session) Benchmark(ctx context.Context, input *Tensor, warmup, reps int) (BenchStats, error) {
	if err := s.acquire(); err != nil {
		return BenchStats{}, err
	}
	defer s.release()
	if !s.singleIO {
		return BenchStats{}, fmt.Errorf("orpheus: Benchmark: %w", ErrMultiIO)
	}
	rs := s.sessions.Get()
	defer s.sessions.Put(rs)
	return runtime.Measure(ctx, rs, map[string]*Tensor{s.inName: input}, warmup, reps)
}

// PlanSummary describes the compiled plan: one line per layer with the
// selected kernel, for the paper's "independently altered and assayed"
// workflow.
func (s *Session) PlanSummary() []string {
	steps := s.sessions.Plan().Steps()
	out := make([]string, len(steps))
	for i, st := range steps {
		out[i] = fmt.Sprintf("%-30s %-12s %s", st.Node.Name, st.Node.Op, st.Kernel)
	}
	return out
}

// MemoryFootprint reports the planned memory use in bytes.
func (s *Session) MemoryFootprint() (weights, arena int64) {
	return s.sessions.Plan().WeightBytes(), s.sessions.Plan().ArenaBytes()
}

// ConstBytes reports the footprint of the plan's derived constants —
// the packed weight panels kernels cache per layer (under WithInt8, the
// int8 panels plus their per-channel scale and row-sum metadata, about a
// quarter of the fp32 panels they replace). Panels pack lazily on first
// use, so measure after a warm-up Predict.
func (s *Session) ConstBytes() int64 { return s.sessions.Plan().ConstBytes() }

// Batcher coalesces concurrent single-sample Predict calls into batched
// runs — the dynamic batching the HTTP server uses, as an embeddable
// library primitive. Create one per Session with NewBatcher; see
// runtime.Batcher for the collection semantics.
type Batcher struct {
	s  *Session
	rb *runtime.Batcher
}

// BatcherOption configures NewBatcher.
type BatcherOption func(*runtime.BatcherOptions)

// WithFlushDeadline sets how long a lone queued request waits for batch
// peers before executing anyway (default 2 ms).
func WithFlushDeadline(d time.Duration) BatcherOption {
	return func(o *runtime.BatcherOptions) { o.FlushDeadline = d }
}

// WithImmediateFlush makes every request execute as soon as the batcher
// sees it, coalescing only requests already queued at that instant —
// lowest latency, opportunistic batching.
func WithImmediateFlush() BatcherOption {
	return func(o *runtime.BatcherOptions) { o.Immediate = true }
}

// WithQueueDepth bounds the batcher's admission queue: once n requests
// are queued or running, further Predicts fail immediately with
// ErrOverloaded instead of queueing without limit. 0 (the default) means
// unbounded. Bounding the queue keeps latency predictable under overload
// — work is shed at the door, not after it has waited.
func WithQueueDepth(n int) BatcherOption {
	return func(o *runtime.BatcherOptions) { o.QueueDepth = n }
}

// WithAdaptiveFlush makes the flush deadline load-adaptive: a request
// admitted with d peers already queued waits at most FlushDeadline/(1+d)
// for further batch mates. Idle batchers keep the full deadline (the
// wait buys batching headroom); backlogged ones flush promptly, and the
// deadline restores itself as the queue empties.
func WithAdaptiveFlush() BatcherOption {
	return func(o *runtime.BatcherOptions) { o.Adaptive = true }
}

// WithRunTimeout bounds each batched run's execution time (queue wait is
// governed separately, by the caller's ctx). A run over budget is
// cancelled at the next plan-step boundary and every request in the batch
// fails with context.DeadlineExceeded. 0 (the default) means no limit.
func WithRunTimeout(d time.Duration) BatcherOption {
	return func(o *runtime.BatcherOptions) { o.RunTimeout = d }
}

// NewBatcher creates a dynamic batcher over the session. Up to MaxBatch
// concurrent Predict calls coalesce into one batched run (compile with
// WithMaxBatch to widen it). The session must be single-input
// single-output. Session.Close drains the batcher; closing the batcher
// alone leaves the session usable.
func (s *Session) NewBatcher(opts ...BatcherOption) (*Batcher, error) {
	if !s.singleIO {
		return nil, fmt.Errorf("orpheus: NewBatcher: %w", ErrMultiIO)
	}
	var o runtime.BatcherOptions
	for _, opt := range opts {
		opt(&o)
	}
	// Setup-time call: take the write side outright, so registration
	// cannot race Close's drain of the batcher list.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("orpheus: session: %w", ErrClosed)
	}
	rb, err := runtime.NewBatcher(s.sessions, o)
	if err != nil {
		return nil, err
	}
	b := &Batcher{s: s, rb: rb}
	s.batchers = append(s.batchers, b)
	return b, nil
}

// Predict submits one input to the batcher and blocks until its batch
// executes (or ctx is cancelled while the request is queued; once a batch
// has claimed the request, its completed result is delivered even if ctx
// expires mid-run). The input must stay unmodified until Predict returns.
func (b *Batcher) Predict(ctx context.Context, input *Tensor) (*Tensor, error) {
	res, err := b.rb.Submit(ctx, input.Data(), 0)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(res.Output, res.Shape...), nil
}

// PredictWait is Predict with a per-request cap on how long the request
// waits for batch peers (≤ 0 means the batcher's flush deadline).
func (b *Batcher) PredictWait(ctx context.Context, input *Tensor, wait time.Duration) (*Tensor, error) {
	res, err := b.rb.Submit(ctx, input.Data(), wait)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(res.Output, res.Shape...), nil
}

// Flush executes whatever is queued right now instead of waiting out the
// flush deadline.
func (b *Batcher) Flush() { b.rb.Flush() }

// BatcherStats mirrors runtime.BatcherStats at the public boundary: queue
// depth, launched runs, flush causes and cumulative queued wait.
type BatcherStats = runtime.BatcherStats

// Stats snapshots the batcher's observability counters.
func (b *Batcher) Stats() BatcherStats { return b.rb.Stats() }

// Close stops the batcher and drains its in-flight batches; subsequent
// Predicts on the batcher fail with ErrClosed. The owning Session stays
// usable, and the batcher is unregistered from it so long-lived sessions
// that churn batchers do not accumulate dead ones.
func (b *Batcher) Close() {
	s := b.s
	s.mu.Lock()
	for i, x := range s.batchers {
		if x == b {
			s.batchers = append(s.batchers[:i], s.batchers[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	b.rb.Close()
}
