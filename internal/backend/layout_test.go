package backend

import (
	"context"
	"strings"
	"testing"

	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// countTransposeSteps counts materialised Transpose steps in a plan.
func countTransposeSteps(p *runtime.Plan) int {
	n := 0
	for _, st := range p.Steps() {
		if st.Node.Op == "Transpose" {
			n++
		}
	}
	return n
}

func TestNHWCPlanMatchesNCHW(t *testing.T) {
	g := convNet(t)
	x := tensor.Rand(tensor.NewRNG(5), -1, 1, 1, 4, 16, 16)
	for _, name := range []string{"orpheus", "orpheus-heuristic", "orpheus-tuned"} {
		t.Run(name, func(t *testing.T) {
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ref := runBackend(t, b, g, x)

			stats := &passes.LayoutStats{}
			plan, err := b.PrepareWith(g, PrepareOpts{Workers: 1, MaxBatch: 1, Layout: "nhwc", LayoutStats: stats})
			if err != nil {
				t.Fatal(err)
			}
			if stats.NHWCNodes == 0 {
				t.Fatal("nothing converted to NHWC")
			}
			if n := countTransposeSteps(plan); n != 0 {
				t.Fatalf("NHWC plan carries %d Transpose steps, want 0 (stats %+v)", n, stats)
			}
			// The tuned backend measures candidates, so on hosts where a
			// non-NHWC kernel genuinely wins a layer (e.g. the pure-Go
			// build, where direct conv beats implicit GEMM at this size)
			// it may pick it; only the preference-ordered policies are
			// required to land on the NHWC tier.
			if name != "orpheus-tuned" {
				summary := KernelSummary(plan.Steps())
				if !strings.Contains(summary, "conv.im2col_nhwc") || !strings.Contains(summary, "conv.depthwise_nhwc") {
					t.Fatalf("NHWC plan did not select the NHWC kernel tier: %s", summary)
				}
			}
			sess := runtime.NewSession(plan)
			out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{"input": x})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range out {
				if !tensor.AllClose(v, ref, 1e-5) {
					t.Fatalf("NHWC plan diverges: max diff %g", tensor.MaxAbsDiff(v, ref))
				}
			}
		})
	}
}

// TestNHWCZooPlans is the backend-level acceptance check on real models:
// the converted plan carries zero Transpose steps and reproduces the NCHW
// answer through the full policy/runtime stack.
func TestNHWCZooPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b, err := ByName("orpheus")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		t.Run(model, func(t *testing.T) {
			g, err := zoo.Build(model, 1)
			if err != nil {
				t.Fatal(err)
			}
			x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString(model)), -1, 1, g.Inputs[0].Shape...)
			ref := runBackend(t, b, g, x)

			stats := &passes.LayoutStats{}
			plan, err := b.PrepareWith(g, PrepareOpts{Workers: 1, MaxBatch: 1, Layout: "nhwc", LayoutStats: stats})
			if err != nil {
				t.Fatal(err)
			}
			if n := countTransposeSteps(plan); n != 0 {
				t.Fatalf("%s NHWC plan carries %d Transpose steps (stats %+v)", model, n, stats)
			}
			sess := runtime.NewSession(plan)
			in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
			out, err := sess.Run(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			var got *tensor.Tensor
			for _, v := range out {
				got = v.Clone()
			}
			if !tensor.AllClose(got, ref, 1e-5) {
				t.Fatalf("%s NHWC plan diverges: max diff %g", model, tensor.MaxAbsDiff(got, ref))
			}

			// Steady state must stay allocation-free, like the NCHW tier.
			if avg := testing.AllocsPerRun(10, func() {
				if _, err := sess.Run(context.Background(), in); err != nil {
					t.Fatal(err)
				}
			}); avg > 0 {
				t.Fatalf("%s NHWC steady-state allocates %.1f allocs/run, want 0", model, avg)
			}
		})
	}
}

func TestAutoLayoutPicksAndRuns(t *testing.T) {
	b, err := ByName("orpheus")
	if err != nil {
		t.Fatal(err)
	}
	g := convNet(t)
	stats := &passes.LayoutStats{}
	plan, layout, err := b.AutoLayout(g, PrepareOpts{Workers: 1, MaxBatch: 1, LayoutStats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if layout != "nchw" && layout != "nhwc" {
		t.Fatalf("AutoLayout chose %q", layout)
	}
	if stats.NHWCNodes == 0 {
		t.Fatal("AutoLayout never attempted the NHWC conversion")
	}
	x := tensor.Rand(tensor.NewRNG(5), -1, 1, 1, 4, 16, 16)
	sess := runtime.NewSession(plan)
	if _, err := sess.Run(context.Background(), map[string]*tensor.Tensor{"input": x}); err != nil {
		t.Fatalf("AutoLayout %s plan fails to run: %v", layout, err)
	}
	// PrepareWith(Layout: "auto") is the same arbitration behind the
	// plain options API.
	if _, err := b.PrepareWith(g, PrepareOpts{Workers: 1, MaxBatch: 1, Layout: "auto"}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutOptionValidation(t *testing.T) {
	g := convNet(t)
	torch, err := ByName("torch-sim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torch.PrepareWith(g, PrepareOpts{Layout: "nhwc"}); err == nil {
		t.Fatal("non-optimising backend accepted layout nhwc")
	}
	orpheus, err := ByName("orpheus")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orpheus.PrepareWith(g, PrepareOpts{Layout: "bogus"}); err == nil {
		t.Fatal("unknown layout accepted")
	}
	for _, l := range []string{"", "nchw"} {
		if _, err := orpheus.PrepareWith(g, PrepareOpts{Layout: l}); err != nil {
			t.Fatalf("layout %q rejected: %v", l, err)
		}
	}
}
