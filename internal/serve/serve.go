// Package serve embeds Orpheus behind an HTTP/JSON API — the deployment
// role the paper assigns to its Python bindings ("embedding in other
// experimental workflows"), done the Go way with net/http. A Server hosts
// one or more compiled sessions and exposes:
//
//	GET  /healthz          liveness
//	GET  /models           loaded models with shapes and footprints
//	POST /predict/{model}  {"input": [...]} → {"output": [...], "topk": ...}
//	POST /profile/{model}  same input → per-layer timing breakdown
//
// Inputs are flat row-major float32 arrays matching one sample of the
// model's input shape; the handler validates length so malformed clients
// get a 400, not a panic. Error statuses are uniform across endpoints and
// derived from the runtime's typed error set with errors.Is (see
// statusFor): unknown model → 404, malformed body or input → 400,
// execution failure or shutdown → 500.
//
// Servers created with WithMaxBatch(n > 1) batch dynamically: concurrent
// /predict requests to one model are coalesced into a single batched
// Session.Run by a runtime.Batcher (flushing when the batch is full or
// after a small deadline, default 2ms), so under load every packed weight
// panel is read once per batch instead of once per request. Requests can
// cap their own wait with "wait_ms"; each request's queue slot is tied to
// its http.Request context, so a disconnected client is dropped before
// its sample is ever staged. /profile always runs solo, since its
// per-layer timings describe a single inference.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// DefaultFlushDeadline is how long a lone request waits for batch peers
// before the batcher flushes it through on its own.
const DefaultFlushDeadline = runtime.DefaultFlushDeadline

// Entry is one hosted model. Requests are served concurrently: each
// in-flight request (or batch of requests) borrows a session from the
// entry's pool, so N clients hitting one model get private arenas over one
// shared plan (and one shared set of packed weights) instead of queueing
// on a mutex.
type Entry struct {
	Name     string
	Backend  string
	graph    *graph.Graph
	sessions *runtime.SessionPool

	inName   string
	outName  string
	inShape1 []int // input shape of a single sample
	perVol   int   // values per sample
	batcher  *runtime.Batcher
}

// Server hosts compiled models behind an http.Handler.
type Server struct {
	mu      sync.RWMutex
	entries map[string]*Entry

	maxBatch int
	flush    time.Duration
	flushSet bool
}

// Option configures a Server.
type Option func(*Server)

// WithMaxBatch sets the dynamic-batching width: models are compiled for up
// to n samples per run and concurrent /predict requests are coalesced into
// batches of up to n. n <= 1 disables batching (the default).
func WithMaxBatch(n int) Option {
	return func(s *Server) { s.maxBatch = n }
}

// WithFlushDeadline sets how long a pending request waits for batch peers
// before being flushed. Exactly 0 selects immediate-flush mode: every
// request executes as soon as the collector sees it, batched only with
// requests already queued at that instant. Negative values select the
// default (DefaultFlushDeadline).
func WithFlushDeadline(d time.Duration) Option {
	return func(s *Server) { s.flush, s.flushSet = d, true }
}

// New returns an empty server.
func New(opts ...Option) *Server {
	s := &Server{entries: make(map[string]*Entry), maxBatch: 1, flush: DefaultFlushDeadline}
	for _, o := range opts {
		o(s)
	}
	if s.maxBatch < 1 {
		s.maxBatch = 1
	}
	if !s.flushSet || s.flush < 0 {
		s.flush = DefaultFlushDeadline
	}
	return s
}

// AddModel compiles g under the named backend and hosts it as name. The
// HTTP wire contract is single-I/O (one flat input array, one output
// array), so multi-input/multi-output graphs are rejected.
func (s *Server) AddModel(name string, g *graph.Graph, backendName string, workers int) error {
	be, err := backend.ByName(backendName)
	if err != nil {
		return err
	}
	plan, err := be.PrepareBatched(g, workers, s.maxBatch)
	if err != nil {
		return fmt.Errorf("serve: compiling %s: %w", name, err)
	}
	ins, outs := plan.InputDescs(), plan.OutputDescs()
	if len(ins) != 1 || len(outs) != 1 {
		return fmt.Errorf("serve: model %q has %d inputs and %d outputs; the HTTP contract serves single-input single-output models", name, len(ins), len(outs))
	}
	e := &Entry{
		Name:     name,
		Backend:  backendName,
		graph:    g,
		sessions: runtime.NewSessionPool(plan),
		inName:   ins[0].Name,
		outName:  outs[0].Name,
		inShape1: plan.InputShapeAt(0, 1),
	}
	e.perVol = tensor.Volume(e.inShape1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("serve: model %q already hosted", name)
	}
	if s.maxBatch > 1 {
		e.batcher, err = runtime.NewBatcher(e.sessions, runtime.BatcherOptions{
			FlushDeadline: s.flush,
			Immediate:     s.flush == 0,
		})
		if err != nil {
			return fmt.Errorf("serve: batching %s: %w", name, err)
		}
	}
	s.entries[name] = e
	return nil
}

// Close drains the server's batchers gracefully: requests already handed
// to a collector execute to completion, queued and future batched
// requests fail with runtime.ErrClosed, and Close returns once in-flight
// batches have delivered. The plain per-request path keeps working. The
// batcher pointers themselves are immutable after AddModel (handlers read
// them without the lock), so Close only drains the batchers.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.batcher != nil {
			e.batcher.Close()
		}
	}
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("POST /predict/{model}", s.handlePredict)
	mux.HandleFunc("POST /profile/{model}", s.handleProfile)
	return mux
}

// modelInfo is the /models response element. Batcher is present only on
// batching servers and snapshots the model's runtime.BatcherStats — the
// counters an operator watches to tune MaxBatch and the flush deadline.
type modelInfo struct {
	Name       string            `json:"name"`
	Backend    string            `json:"backend"`
	InputShape []int             `json:"input_shape"`
	MaxBatch   int               `json:"max_batch"`
	Nodes      int               `json:"nodes"`
	ParamBytes int64             `json:"param_bytes"`
	ArenaBytes int64             `json:"arena_bytes"`
	Batcher    *batcherStatsJSON `json:"batcher,omitempty"`
}

// batcherStatsJSON mirrors runtime.BatcherStats on the wire; the
// cumulative queued wait is reported in milliseconds.
type batcherStatsJSON struct {
	QueueDepth     int64   `json:"queue_depth"`
	Runs           int64   `json:"runs"`
	Requests       int64   `json:"requests"`
	FlushFull      int64   `json:"flush_full"`
	FlushDeadline  int64   `json:"flush_deadline"`
	FlushImmediate int64   `json:"flush_immediate"`
	FlushExplicit  int64   `json:"flush_explicit"`
	FlushClose     int64   `json:"flush_close"`
	QueuedWaitMs   float64 `json:"queued_wait_ms"`
}

func batcherStats(b *runtime.Batcher) *batcherStatsJSON {
	if b == nil {
		return nil
	}
	st := b.Stats()
	return &batcherStatsJSON{
		QueueDepth:     st.QueueDepth,
		Runs:           st.Runs,
		Requests:       st.Requests,
		FlushFull:      st.FlushFull,
		FlushDeadline:  st.FlushDeadline,
		FlushImmediate: st.FlushImmediate,
		FlushExplicit:  st.FlushExplicit,
		FlushClose:     st.FlushClose,
		QueuedWaitMs:   float64(st.QueuedWait) / 1e6,
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]modelInfo, 0, len(s.entries))
	for _, e := range s.entries {
		infos = append(infos, modelInfo{
			Name:       e.Name,
			Backend:    e.Backend,
			InputShape: e.inShape1,
			MaxBatch:   e.sessions.Plan().MaxBatch(),
			Nodes:      len(e.graph.Nodes),
			ParamBytes: e.sessions.Plan().WeightBytes(),
			ArenaBytes: e.sessions.Plan().ArenaBytes(),
			Batcher:    batcherStats(e.batcher),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// BatcherStats returns the named model's batcher counters, or false when
// the model is not hosted or the server does not batch. cmd/orpheus-serve
// logs these on shutdown.
func (s *Server) BatcherStats(model string) (runtime.BatcherStats, bool) {
	e, ok := s.entry(model)
	if !ok || e.batcher == nil {
		return runtime.BatcherStats{}, false
	}
	return e.batcher.Stats(), true
}

// ModelNames lists the hosted models, sorted.
func (s *Server) ModelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// predictRequest is the /predict and /profile request body. WaitMs caps
// how long the request waits to be batched with peers (0 means the server
// default flush deadline); it is ignored on unbatched servers and by
// /profile.
type predictRequest struct {
	Input  []float32 `json:"input"`
	TopK   int       `json:"topk,omitempty"`
	WaitMs float64   `json:"wait_ms,omitempty"`
}

// predictResponse is the /predict response body. BatchSize reports how
// many requests shared the run that produced this output (1 when
// unbatched).
type predictResponse struct {
	Output    []float32 `json:"output"`
	Shape     []int     `json:"shape"`
	TopK      []int     `json:"topk,omitempty"`
	BatchSize int       `json:"batch_size,omitempty"`
	LatencyMs float64   `json:"latency_ms"`
}

// layerTimingJSON is one /profile breakdown row.
type layerTimingJSON struct {
	Layer    string  `json:"layer"`
	Op       string  `json:"op"`
	Kernel   string  `json:"kernel"`
	Ms       float64 `json:"ms"`
	GFlopsPS float64 `json:"gflops_per_s"`
}

func (s *Server) entry(name string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	return e, ok
}

// statusFor maps an execution error onto the wire contract with
// errors.Is over the runtime's typed error set: request-shaped failures
// are the client's fault (400), everything else — including shutdown and
// a cancelled request context — is a 500 the same way any aborted
// execution is. Unknown models are mapped to 404 before execution, in
// lookupAndDecode.
func statusFor(err error) int {
	switch {
	case errors.Is(err, runtime.ErrShapeMismatch),
		errors.Is(err, runtime.ErrBatchTooLarge),
		errors.Is(err, runtime.ErrUnknownInput),
		errors.Is(err, runtime.ErrUnknownOutput):
		return http.StatusBadRequest
	default:
		// runtime.ErrClosed, runtime.ErrNoOutput, context.Canceled (the
		// client is gone and never reads the status) and kernel failures.
		return http.StatusInternalServerError
	}
}

// lookupAndDecode resolves the request's model and body with the uniform
// status mapping: unknown model → 404, malformed body → 400. It writes the
// error response itself and returns ok=false when the request is done.
func (s *Server) lookupAndDecode(w http.ResponseWriter, r *http.Request) (*Entry, predictRequest, bool) {
	e, ok := s.entry(r.PathValue("model"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not hosted", r.PathValue("model")))
		return nil, predictRequest{}, false
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return nil, predictRequest{}, false
	}
	if len(req.Input) != e.perVol {
		writeError(w, http.StatusBadRequest, fmt.Errorf("input has %d values, model %s wants %d (%s): %w",
			len(req.Input), e.Name, e.perVol, tensor.ShapeString(e.inShape1), runtime.ErrShapeMismatch))
		return nil, predictRequest{}, false
	}
	return e, req, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	e, req, ok := s.lookupAndDecode(w, r)
	if !ok {
		return
	}
	start := time.Now()
	var (
		data  []float32
		shape []int
		batch = 1
	)
	if e.batcher != nil {
		res, err := e.batcher.Submit(r.Context(), req.Input, time.Duration(req.WaitMs*float64(time.Millisecond)))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		data, shape, batch = res.Output, res.Shape, res.BatchSize
	} else {
		sess := e.sessions.Get()
		outs, err := sess.Run(r.Context(), map[string]*tensor.Tensor{e.inName: tensor.FromSlice(req.Input, e.inShape1...)})
		if err == nil {
			if out := outs[e.outName]; out != nil {
				data = append([]float32(nil), out.Data()...)
				shape = out.Shape()
			} else {
				err = fmt.Errorf("model %q produced no output: %w", e.Name, runtime.ErrNoOutput)
			}
		}
		e.sessions.Put(sess)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
	}
	resp := predictResponse{
		Output:    data,
		Shape:     shape,
		BatchSize: batch,
		LatencyMs: float64(time.Since(start)) / 1e6,
	}
	if req.TopK > 0 {
		resp.TopK = tensor.FromSlice(data, shape...).TopK(req.TopK)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	e, req, ok := s.lookupAndDecode(w, r)
	if !ok {
		return
	}
	sess := e.sessions.Get()
	_, timings, err := sess.RunProfiled(r.Context(), map[string]*tensor.Tensor{e.inName: tensor.FromSlice(req.Input, e.inShape1...)})
	e.sessions.Put(sess)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	rows := make([]layerTimingJSON, len(timings))
	for i, lt := range timings {
		var gf float64
		if lt.Duration > 0 {
			gf = float64(lt.Flops) / float64(lt.Duration.Nanoseconds())
		}
		rows[i] = layerTimingJSON{
			Layer:    lt.Node.Name,
			Op:       lt.Node.Op,
			Kernel:   lt.Kernel,
			Ms:       float64(lt.Duration) / 1e6,
			GFlopsPS: gf,
		}
	}
	writeJSON(w, http.StatusOK, rows)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := err.Error()
	// Keep internal prefixes out of client-facing messages.
	msg = strings.TrimPrefix(msg, "serve: ")
	writeJSON(w, code, map[string]string{"error": msg})
}
