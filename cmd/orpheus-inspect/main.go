// orpheus-inspect prints the structure of an ONNX model file: metadata,
// inputs/outputs, operator inventory and (optionally) every node with its
// inferred shape — the quick "what is in this model?" tool.
//
// Usage:
//
//	orpheus-inspect model.onnx
//	orpheus-inspect -nodes -optimized model.onnx
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"orpheus/internal/graph"
	"orpheus/internal/onnx"
	"orpheus/internal/ops"
	"orpheus/internal/passes"
	"orpheus/internal/tensor"
)

func main() {
	var (
		showNodes = flag.Bool("nodes", false, "print every node")
		optimized = flag.Bool("optimized", false, "apply the optimisation pipeline before printing")
		layout    = flag.Bool("layout", false, "apply the NHWC layout-assignment pass (implies -optimized) and report per-op layouts plus fold counters")
		showCuts  = flag.Bool("cuts", false, "rank pipeline cut points by activation transfer bytes")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orpheus-inspect [-nodes] [-optimized] [-layout] [-cuts] <model.onnx>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	model, err := onnx.Unmarshal(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("file: %s (%.2f MB)\n", path, float64(len(data))/(1<<20))
	fmt.Printf("producer: %s, ir_version %d, opset %d\n", model.ProducerName, model.IRVersion, model.OpsetVersion)

	g, err := onnx.Import(model)
	if err != nil {
		fatal(err)
	}
	var layoutStats *passes.LayoutStats
	if *layout {
		layoutStats = &passes.LayoutStats{}
		if _, err := passes.LayoutPipeline(layoutStats).Run(g); err != nil {
			fatal(err)
		}
	} else if *optimized {
		if _, err := passes.Default().Run(g); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("graph: %s\n", g)
	// Mirrors the facade's Session.Inputs()/Outputs() descriptors: name,
	// shape, dtype, and whether the leading dim is a runtime batch.
	for _, in := range g.Inputs {
		batched := ""
		if in.Batched {
			batched = "  (leading dim batches)"
		}
		fmt.Printf("input:  %-20s %-16s float32%s\n", in.Name, tensor.ShapeString(in.Shape), batched)
	}
	for _, out := range g.Outputs {
		fmt.Printf("output: %-20s %-16s float32\n", out.Name, tensor.ShapeString(out.Shape))
	}

	counts := g.OpCounts()
	opsSorted := make([]string, 0, len(counts))
	for op := range counts {
		opsSorted = append(opsSorted, op)
	}
	sort.Strings(opsSorted)
	fmt.Println("\noperator inventory:")
	var totalFlops int64
	for _, n := range g.Nodes {
		totalFlops += ops.NodeFlops(n)
	}
	for _, op := range opsSorted {
		fmt.Printf("  %-20s x%d\n", op, counts[op])
	}
	fmt.Printf("total: %d nodes, %.1f MFLOPs per inference\n", len(g.Nodes), float64(totalFlops)/1e6)

	if layoutStats != nil {
		fmt.Printf("layout: %d nodes nhwc, %d transposes inserted, %d folded away (%d cancelled, %d elided, %d into conv gathers), %d materialised\n",
			layoutStats.NHWCNodes, layoutStats.Inserted,
			layoutStats.Cancelled+layoutStats.Elided+layoutStats.Folded,
			layoutStats.Cancelled, layoutStats.Elided, layoutStats.Folded,
			layoutStats.Remaining)
	}

	if *showNodes {
		fmt.Println("\nnodes (topological order):")
		for _, n := range g.Nodes {
			if *layout {
				fmt.Printf("  %-32s %-14s %-5s -> %s\n", n.Name, n.Op, nodeLayout(n), tensor.ShapeString(n.Outputs[0].Shape))
				continue
			}
			fmt.Printf("  %-32s %-14s -> %s\n", n.Name, n.Op, tensor.ShapeString(n.Outputs[0].Shape))
		}
	}

	if *showCuts {
		cuts, err := passes.PipelineCuts(g)
		if err != nil {
			fatal(err)
		}
		// Rank narrowest boundary first — the order a min-transfer
		// partition prefers — with the topological position kept visible
		// so the reader can map ranks back onto the graph.
		ranked := append([]graph.CutPoint(nil), cuts...)
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Bytes < ranked[j].Bytes })
		fmt.Println("\npipeline cut points (narrowest boundary first, positions in the optimised graph):")
		for rank, c := range ranked {
			fmt.Printf("  #%-3d after node %-4d %-32s %8.1f KiB  %d tensor(s)\n",
				rank+1, c.After, c.Node, float64(c.Bytes)/1024, len(c.Values))
		}
	}
}

// nodeLayout names the layout a node executes in after the layout pass:
// the assigned attribute where present, with a folded-NCHW-source conv
// shown distinctly since its gather does the permutation.
func nodeLayout(n *graph.Node) string {
	l := n.Attrs.Str("layout", "nchw")
	if l == "nhwc" && n.Attrs.Str("src_layout", "") == "nchw" {
		return "nhwc*"
	}
	return l
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orpheus-inspect:", err)
	os.Exit(1)
}
