package serve

import (
	"fmt"
	"sync"
	"time"

	"orpheus/internal/tensor"
)

// batcher coalesces concurrent single-sample predict requests for one
// hosted model into batched Session.Run calls — the serving-side half of
// batch-native execution. The collector goroutine gathers requests until
// the batch is full (the plan's MaxBatch) or the earliest pending
// request's deadline expires, then hands the batch to a fresh goroutine
// that borrows a pooled session, stages the inputs into one [n, ...]
// tensor, runs once, and fans the output rows back out. Collection
// continues while batches execute, and every executing batch holds its
// own pooled session, so the batcher adds batching on top of — not
// instead of — the session pool's request concurrency.
type batcher struct {
	entry    *Entry
	max      int           // plan MaxBatch
	defWait  time.Duration // default flush deadline per request
	reqs     chan *pendingPredict
	stop     chan struct{}
	stopOnce sync.Once
}

// pendingPredict is one request in flight through the batcher.
type pendingPredict struct {
	input   []float32 // one sample, entry.perVol values
	flushBy time.Time // latest time this request is willing to wait for peers
	done    chan predictOutcome
}

// predictOutcome carries one request's slice of the batched output (data
// is private to the request) or the batch's error.
type predictOutcome struct {
	data  []float32
	shape []int
	batch int // batch size the request was served in
	err   error
}

func newBatcher(e *Entry, maxBatch int, defWait time.Duration) *batcher {
	b := &batcher{
		entry:   e,
		max:     maxBatch,
		defWait: defWait,
		reqs:    make(chan *pendingPredict),
		stop:    make(chan struct{}),
	}
	go b.collect()
	return b
}

// submit enqueues one sample and blocks until its outcome. wait caps how
// long the request lingers waiting for batch peers (0 means the server
// default); cancel aborts the wait (the request's work may still be
// performed and discarded).
func (b *batcher) submit(input []float32, wait time.Duration, cancel <-chan struct{}) predictOutcome {
	if wait <= 0 {
		wait = b.defWait
	}
	p := &pendingPredict{
		input:   input,
		flushBy: time.Now().Add(wait),
		done:    make(chan predictOutcome, 1),
	}
	select {
	case b.reqs <- p:
	case <-b.stop:
		return predictOutcome{err: fmt.Errorf("server shutting down")}
	case <-cancel:
		return predictOutcome{err: fmt.Errorf("request cancelled")}
	}
	select {
	case out := <-p.done:
		return out
	case <-cancel:
		return predictOutcome{err: fmt.Errorf("request cancelled")}
	}
}

// collect is the batching loop: one batch at a time is gathered, then
// executed asynchronously while the next gathers.
func (b *batcher) collect() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *pendingPredict
		select {
		case first = <-b.reqs:
		case <-b.stop:
			return
		}
		batch := make([]*pendingPredict, 1, b.max)
		batch[0] = first
		flushBy := first.flushBy
		timer.Reset(time.Until(flushBy))
	gather:
		for len(batch) < b.max {
			select {
			case p := <-b.reqs:
				batch = append(batch, p)
				// The batch flushes at the earliest deadline any member
				// carries, so one impatient request caps everyone's wait.
				if p.flushBy.Before(flushBy) {
					flushBy = p.flushBy
					timer.Reset(time.Until(flushBy))
				}
			case <-timer.C:
				break gather
			case <-b.stop:
				for _, p := range batch {
					p.done <- predictOutcome{err: fmt.Errorf("server shutting down")}
				}
				return
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		go b.run(batch)
	}
}

// run executes one gathered batch on a pooled session and fans results
// out. Staging and per-request row copies are allocated per batch: each
// HTTP request already allocates its decoded JSON input (orders of
// magnitude more garbage than the staging), and the rows must outlive the
// session borrow, so pooling here would complicate ownership for noise-
// level savings. The allocation-free batched path is the library facade
// (PredictBatchInto).
func (b *batcher) run(batch []*pendingPredict) {
	e := b.entry
	n := len(batch)
	stage := make([]float32, n*e.perVol)
	for i, p := range batch {
		copy(stage[i*e.perVol:(i+1)*e.perVol], p.input)
	}
	shape := append([]int(nil), e.inShape1...)
	shape[0] *= n
	in := tensor.FromSlice(stage, shape...)

	sess := e.sessions.Get()
	outs, err := sess.Run(map[string]*tensor.Tensor{e.inName: in})
	var out *tensor.Tensor
	if err == nil {
		out = firstOutput(outs)
		if out == nil {
			err = fmt.Errorf("model %q produced no output", e.Name)
		}
	}
	if err == nil && (out.Rank() == 0 || out.Dim(0)%n != 0) {
		err = fmt.Errorf("model %q output %v does not split across batch %d", e.Name, out.Shape(), n)
	}
	if err != nil {
		e.sessions.Put(sess)
		for _, p := range batch {
			p.done <- predictOutcome{err: err}
		}
		return
	}
	rowVol := out.Size() / n
	rowShape := append([]int(nil), out.Shape()...)
	rowShape[0] /= n
	od := out.Data()
	for i, p := range batch {
		row := make([]float32, rowVol)
		copy(row, od[i*rowVol:(i+1)*rowVol])
		p.done <- predictOutcome{data: row, shape: rowShape, batch: n}
	}
	// Results are copied out above, so the session (whose arena the output
	// aliases) can go back to the pool only now.
	e.sessions.Put(sess)
}

// close stops the collector; queued and future submits fail fast. Safe to
// call more than once.
func (b *batcher) close() { b.stopOnce.Do(func() { close(b.stop) }) }

// firstOutput returns the single output tensor of a run (models served
// here have exactly one output; the map form is the runtime's API).
func firstOutput(outs map[string]*tensor.Tensor) *tensor.Tensor {
	for _, v := range outs {
		return v
	}
	return nil
}
