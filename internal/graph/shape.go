package graph

import (
	"fmt"
	"sort"
)

// ShapeFn infers a node's output shapes from its (already inferred) input
// shapes and attributes.
type ShapeFn func(n *Node) ([][]int, error)

// shapeFns is the operator shape-inference registry. internal/ops populates
// it from init functions so that graph remains independent of the kernels.
var shapeFns = map[string]ShapeFn{}

// RegisterShapeFn installs the shape-inference function for op. Registering
// the same op twice panics: it indicates two operators claiming one name.
func RegisterShapeFn(op string, fn ShapeFn) {
	if _, dup := shapeFns[op]; dup {
		panic(fmt.Sprintf("graph: duplicate shape function for op %q", op))
	}
	shapeFns[op] = fn
}

// ShapeFnFor returns the registered shape function for op, or nil.
func ShapeFnFor(op string) ShapeFn { return shapeFns[op] }

// RegisteredOps lists all ops with shape functions, sorted.
func RegisteredOps() []string {
	ops := make([]string, 0, len(shapeFns))
	for op := range shapeFns {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// InferShapes runs shape inference over the (topologically sorted) graph,
// filling in Value.Shape for every node output.
func (g *Graph) InferShapes() error {
	for _, n := range g.Nodes {
		fn := shapeFns[n.Op]
		if fn == nil {
			return fmt.Errorf("graph %q: no shape function registered for op %q (node %q)", g.Name, n.Op, n.Name)
		}
		for _, in := range n.Inputs {
			if in.Shape == nil {
				return fmt.Errorf("graph %q: node %q input %q has no shape", g.Name, n.Name, in.Name)
			}
		}
		shapes, err := fn(n)
		if err != nil {
			return fmt.Errorf("graph %q: node %q (%s): %w", g.Name, n.Name, n.Op, err)
		}
		if len(shapes) != len(n.Outputs) {
			return fmt.Errorf("graph %q: node %q (%s): shape fn returned %d shapes for %d outputs",
				g.Name, n.Name, n.Op, len(shapes), len(n.Outputs))
		}
		for i, out := range n.Outputs {
			out.Shape = copyShape(shapes[i])
		}
	}
	return nil
}
