package tensor

import (
	"strings"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewScalarShape(t *testing.T) {
	x := New()
	if x.Size() != 1 || x.Rank() != 0 {
		t.Fatalf("scalar tensor: size=%d rank=%d", x.Size(), x.Rank())
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, 3)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	d[0] = 42 // FromSlice aliases
	if x.At(0, 0) != 42 {
		t.Fatal("FromSlice should alias the input slice")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched FromSlice did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Flat layout check: offset = (2*4+1)*5+3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	x.At(2, 0)
}

func TestAtPanicsWrongRank(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-rank At did not panic")
		}
	}()
	x.At(1)
}

func TestDimNegativeIndex(t *testing.T) {
	x := New(2, 3, 4)
	if x.Dim(-1) != 4 || x.Dim(-3) != 2 || x.Dim(1) != 3 {
		t.Fatalf("Dim: got %d %d %d", x.Dim(-1), x.Dim(-3), x.Dim(1))
	}
}

func TestCloneIndependence(t *testing.T) {
	x := Full(3, 2, 2)
	y := x.Clone()
	y.Set(9, 0, 0)
	if x.At(0, 0) != 3 {
		t.Fatal("Clone shares data with original")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone changed shape")
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v, want 6", y.At(2, 1))
	}
	y.Set(-1, 0, 0)
	if x.At(0, 0) != -1 {
		t.Fatal("Reshape should be a view over the same data")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(2, 3, 4)
	y := x.Reshape(4, -1)
	if !ShapeEq(y.Shape(), []int{4, 6}) {
		t.Fatalf("inferred shape = %v, want [4 6]", y.Shape())
	}
}

func TestReshapePanicsOnBadVolume(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestReshapePanicsOnDoubleInfer(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("double -1 reshape did not panic")
		}
	}()
	x.Reshape(-1, -1)
}

func TestFullAndScalar(t *testing.T) {
	x := Full(2.5, 3)
	for _, v := range x.Data() {
		if v != 2.5 {
			t.Fatalf("Full element = %v", v)
		}
	}
	s := Scalar(7)
	if s.Size() != 1 || s.Data()[0] != 7 {
		t.Fatalf("Scalar: %v", s)
	}
}

func TestStringTruncates(t *testing.T) {
	x := New(100)
	s := x.String()
	if !strings.Contains(s, "…") {
		t.Fatalf("String of large tensor should truncate: %q", s)
	}
	if !strings.Contains(s, "[100]") {
		t.Fatalf("String should include shape: %q", s)
	}
}

func TestVolumeAndShapeHelpers(t *testing.T) {
	if Volume([]int{2, 3, 4}) != 24 {
		t.Fatal("Volume wrong")
	}
	if Volume(nil) != 1 {
		t.Fatal("Volume of empty shape should be 1 (scalar)")
	}
	if !ShapeEq([]int{1, 2}, []int{1, 2}) || ShapeEq([]int{1}, []int{1, 1}) {
		t.Fatal("ShapeEq wrong")
	}
	if ShapeString([]int{1, 3, 224, 224}) != "1x3x224x224" {
		t.Fatalf("ShapeString = %q", ShapeString([]int{1, 3, 224, 224}))
	}
	if ShapeString(nil) != "scalar" {
		t.Fatal("ShapeString(nil) should be scalar")
	}
}
