package wire

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"orpheus/internal/tensor"
)

// fuzzLimit bounds decode allocations during fuzzing: small enough that a
// hostile input cannot stall the fuzzer on allocation, large enough to
// exercise real request-sized tensors.
const fuzzLimit = 1 << 20

// FuzzWireDecode feeds arbitrary bytes to the decoder and pins the three
// format guarantees:
//
//  1. no input panics the decoder (the fuzz harness turns a panic into a
//     failure on its own);
//  2. no input makes it allocate past the decode limit — a successful
//     decode's volume is checked against the limit it was given;
//  3. every successful decode round-trips: re-encoding the tensor
//     reproduces the input bytes exactly, and the byte length matches the
//     header's declaration — so no two distinct well-formed encodings
//     decode to the same tensor.
//
// The seed corpus is the golden fixture set plus hand-picked malformed
// prefixes.
func FuzzWireDecode(f *testing.F) {
	// Golden fixtures seed the well-formed side of the corpus.
	files, _ := filepath.Glob("testdata/*.bin")
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Hand-picked malformed seeds: empty, bare magic, magic + garbage,
	// truncated header, rank over max.
	f.Add([]byte{})
	f.Add([]byte("ORPT"))
	f.Add([]byte("ORPT\x01\x01\xff\xff"))
	f.Add([]byte("ORPT\x01\x01\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(append([]byte("ORPT\x01\x01\x00\x00"), bytes.Repeat([]byte{0xff}, 32)...))
	// Well-formed u8 seeds: a quantized vector and a u8 message whose
	// reserved extension bytes are nonzero (must be rejected — canonical
	// encoding is what makes round-trips byte-exact).
	q := make([]byte, 6)
	scale, zero := QuantizeU8(q, []float32{-1, -0.5, 0, 0.25, 0.5, 1})
	u8msg := AppendTensorU8(nil, q, []int{2, 3}, scale, zero)
	f.Add(u8msg)
	bad := append([]byte(nil), u8msg...)
	bad[len(bad)-len(q)-1] = 0xff // last reserved extension byte
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeBytes(data, fuzzLimit)
		if err != nil {
			// Malformed input must be rejected with a typed error.
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Guarantee 2: the decoded volume respects the limit.
		if 4*dec.Size() > fuzzLimit {
			t.Fatalf("decode allocated %d bytes past the %d limit", 4*dec.Size(), fuzzLimit)
		}
		// Guarantee 3: byte-exact round-trip. Re-encode from the parsed
		// header's dtype — a u8 message round-trips through its raw
		// quantized payload, not through the dequantized floats.
		hdr, payload, perr := ParseMessage(data, fuzzLimit)
		if perr != nil {
			t.Fatalf("ParseMessage rejected what DecodeBytes accepted: %v", perr)
		}
		var re []byte
		switch hdr.DType {
		case U8:
			re = AppendTensorU8(nil, payload, hdr.Shape(), hdr.Scale, hdr.Zero)
		default:
			re = AppendTensor(nil, dec.Data(), dec.Shape())
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip diverged:\n in: %x\nout: %x", data, re)
		}
		// The streaming decoder must agree with the one-shot decoder.
		streamed, err := DecodeLimit(bytes.NewReader(data), fuzzLimit)
		if err != nil {
			t.Fatalf("DecodeLimit rejected what DecodeBytes accepted: %v", err)
		}
		if !streamed.SameShape(dec) {
			t.Fatalf("streamed shape %v != %v", streamed.Shape(), dec.Shape())
		}
		sd, dd := streamed.Data(), dec.Data()
		for i := range dd {
			if sd[i] != dd[i] && !(sd[i] != sd[i] && dd[i] != dd[i]) { // NaN-tolerant
				t.Fatalf("streamed data[%d] = %v, want %v", i, sd[i], dd[i])
			}
		}
	})
}

// FuzzWireRoundTrip drives the opposite direction: arbitrary (shape,
// data) pairs must encode and decode back to equality.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), []byte{1, 2, 3, 4})
	f.Add(uint8(0), uint8(0), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, d0, d1, d2 uint8, raw []byte) {
		shape := []int{int(d0)%5 + 1, int(d1)%5 + 1, int(d2)%5 + 1}
		vol := shape[0] * shape[1] * shape[2]
		data := make([]float32, vol)
		for i := range data {
			if len(raw) > 0 {
				data[i] = float32(int(raw[i%len(raw)])-128) * 0.25
			} else {
				data[i] = float32(i)
			}
		}
		enc := AppendTensor(nil, data, shape)
		dec, err := DecodeBytes(enc, 0)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !tensor.ShapeEq(dec.Shape(), shape) {
			t.Fatalf("shape %v, want %v", dec.Shape(), shape)
		}
		dd := dec.Data()
		for i := range data {
			if dd[i] != data[i] {
				t.Fatalf("data[%d] = %v, want %v", i, dd[i], data[i])
			}
		}
	})
}
