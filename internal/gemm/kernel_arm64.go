//go:build arm64 && !noasm

package gemm

// NEON dispatch for arm64. AdvSIMD is baseline on AArch64, so the 8x8
// kernel registers unconditionally (the noasm build tag and the
// ORPHEUS_GEMM_KERNEL=go override still select the portable fallback).
// The micro-tile lives in sixteen 128-bit vector accumulators (two 4-wide
// registers per row); each packed k step issues sixteen FMLA lane
// multiplies against one 8-wide B strip load.

func init() {
	registerKernel(newKernel("neon", 8, 8,
		adaptAsmKernel(microKernel8x8NEON, 8, 8)))
}

// microKernel8x8NEON computes one 8x8 block: C[r][cc] (+)= sum_p
// pa[p*8+r]*pb[p*8+cc], with ldc the row stride of c in elements and kc
// ≥ 1. Implemented in kernel_arm64.s.
//
//go:noescape
func microKernel8x8NEON(pa, pb, c *float32, kc, ldc int64, store bool)
