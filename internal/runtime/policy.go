// Package runtime executes Orpheus graphs: it selects a kernel for every
// node according to a Policy, plans buffer reuse from value liveness, and
// runs inference with optional per-layer profiling.
package runtime

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
)

// Policy chooses which registered kernel executes a node. Backends
// (internal/backend) supply policies that emulate different frameworks'
// algorithm choices; the default policy picks each op's reference kernel.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the kernel to run for n.
	Select(n *graph.Node) (ops.Kernel, error)
}

// ReferencePolicy selects every op's reference kernel (the simplest
// correct implementation). It is the fallback when no backend is given.
type ReferencePolicy struct{}

// Name implements Policy.
func (ReferencePolicy) Name() string { return "reference" }

// Select implements Policy.
func (ReferencePolicy) Select(n *graph.Node) (ops.Kernel, error) {
	k := ops.Reference(n.Op)
	if k == nil {
		return nil, fmt.Errorf("runtime: no kernel registered for op %q", n.Op)
	}
	if !k.Supports(n) {
		return nil, fmt.Errorf("runtime: reference kernel %q does not support node %q", k.Name(), n.Name)
	}
	return k, nil
}
