package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	f := func(v uint64, field uint8) bool {
		fd := int(field%100) + 1
		var e Encoder
		e.Varint(fd, v)
		d := NewDecoder(e.Encoded())
		gotF, wt, err := d.Next()
		if err != nil || gotF != fd || wt != TypeVarint {
			return false
		}
		got, err := d.Varint()
		return err == nil && got == v && !d.More()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64NegativeRoundTrip(t *testing.T) {
	for _, v := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -123456789} {
		var e Encoder
		e.Int64(3, v)
		d := NewDecoder(e.Encoded())
		if _, _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
		got, err := d.Int64()
		if err != nil || got != v {
			t.Fatalf("Int64(%d) round-trip = %d, %v", v, got, err)
		}
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	f := func(v float32) bool {
		var e Encoder
		e.Float32(2, v)
		d := NewDecoder(e.Encoded())
		_, wt, err := d.Next()
		if err != nil || wt != TypeI32 {
			return false
		}
		got, err := d.Float32()
		if err != nil {
			return false
		}
		return got == v || (math.IsNaN(float64(got)) && math.IsNaN(float64(v)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringBytesRoundTrip(t *testing.T) {
	var e Encoder
	e.String(1, "hello")
	e.Bytes(2, []byte{0, 1, 255})
	d := NewDecoder(e.Encoded())
	if _, _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	s, err := d.String()
	if err != nil || s != "hello" {
		t.Fatalf("string = %q, %v", s, err)
	}
	if _, _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	b, err := d.Bytes()
	if err != nil || len(b) != 3 || b[2] != 255 {
		t.Fatalf("bytes = %v, %v", b, err)
	}
}

func TestEmbeddedMessage(t *testing.T) {
	var e Encoder
	e.Message(7, func(sub *Encoder) {
		sub.Varint(1, 42)
		sub.String(2, "inner")
	})
	d := NewDecoder(e.Encoded())
	field, wt, err := d.Next()
	if err != nil || field != 7 || wt != TypeBytes {
		t.Fatalf("outer tag: %d %d %v", field, wt, err)
	}
	inner, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	sub := NewDecoder(inner)
	if _, _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}
	v, _ := sub.Varint()
	if v != 42 {
		t.Fatalf("inner varint = %d", v)
	}
}

func TestPackedFloat32RoundTrip(t *testing.T) {
	vs := []float32{1.5, -2.25, 0, float32(math.Pi)}
	var e Encoder
	e.PackedFloat32(4, vs)
	d := NewDecoder(e.Encoded())
	if _, _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := d.PackedFloat32()
	if err != nil || len(got) != len(vs) {
		t.Fatalf("packed floats: %v %v", got, err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("packed[%d] = %v, want %v", i, got[i], vs[i])
		}
	}
}

func TestPackedInt64RoundTrip(t *testing.T) {
	f := func(a, b, c int64) bool {
		vs := []int64{a, b, c}
		var e Encoder
		e.PackedInt64(1, vs)
		d := NewDecoder(e.Encoded())
		if _, _, err := d.Next(); err != nil {
			return false
		}
		got, err := d.PackedInt64()
		if err != nil || len(got) != 3 {
			return false
		}
		return got[0] == a && got[1] == b && got[2] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkipAllTypes(t *testing.T) {
	var e Encoder
	e.Varint(1, 5)
	e.Float32(2, 1.0)
	e.String(3, "skip me")
	e.Varint(4, 99)
	d := NewDecoder(e.Encoded())
	for i := 0; i < 3; i++ {
		_, wt, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Skip(wt); err != nil {
			t.Fatal(err)
		}
	}
	field, _, err := d.Next()
	if err != nil || field != 4 {
		t.Fatalf("after skips: field %d, %v", field, err)
	}
	v, _ := d.Varint()
	if v != 99 {
		t.Fatalf("final varint = %d", v)
	}
}

func TestDecoderErrors(t *testing.T) {
	// Truncated varint.
	d := NewDecoder([]byte{0x80})
	if _, err := d.Varint(); err == nil {
		t.Fatal("truncated varint not detected")
	}
	// Length-delimited longer than buffer.
	var e Encoder
	e.tag(1, TypeBytes)
	e.varint(100)
	d = NewDecoder(e.Encoded())
	_, _, _ = d.Next()
	if _, err := d.Bytes(); err == nil {
		t.Fatal("oversized length not detected")
	}
	// Field number 0 invalid.
	d = NewDecoder([]byte{0x00})
	if _, _, err := d.Next(); err == nil {
		t.Fatal("field 0 not rejected")
	}
	// Truncated fixed32.
	d = NewDecoder([]byte{0x15, 0x01})
	_, _, _ = d.Next()
	if _, err := d.Float32(); err == nil {
		t.Fatal("truncated fixed32 not detected")
	}
	// Unsupported wire type in Skip (3 = start-group).
	d = NewDecoder(nil)
	if err := d.Skip(3); err == nil {
		t.Fatal("group wire type should be unsupported")
	}
}

func TestVarintBoundary(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64} {
		var e Encoder
		e.Varint(1, v)
		d := NewDecoder(e.Encoded())
		_, _, _ = d.Next()
		got, err := d.Varint()
		if err != nil || got != v {
			t.Fatalf("varint %d -> %d, %v", v, got, err)
		}
	}
}
