// Package quant_test lives outside the package: the test exercises quant
// through the full runtime, and runtime's kernels themselves depend on
// quant (the int8 execution tier), so an in-package test would be an
// import cycle.
package quant_test

import (
	"context"
	"testing"
	"testing/quick"

	. "orpheus/internal/quant"

	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

func TestQuantizeRoundTripBounded(t *testing.T) {
	f := func(seed uint64, cb uint8) bool {
		c := int(cb%8) + 1
		w := tensor.RandNormal(tensor.NewRNG(seed), 0.2, c, 16)
		q, err := Quantize(w)
		if err != nil {
			return false
		}
		// Per-channel error bound: scale/2 (round-to-nearest).
		deq := q.Dequantize()
		for ch := 0; ch < c; ch++ {
			bound := float64(q.Scales[ch]) / 2 * 1.0001
			for i := 0; i < 16; i++ {
				d := float64(w.At(ch, i) - deq.At(ch, i))
				if d < 0 {
					d = -d
				}
				if d > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeExactValues(t *testing.T) {
	// Channel max 127 → scale 1 → integers survive exactly.
	w := tensor.FromSlice([]float32{127, -127, 64, 0}, 1, 4)
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	if q.Scales[0] != 1 {
		t.Fatalf("scale = %v", q.Scales[0])
	}
	if MaxError(w, q) != 0 {
		t.Fatal("integer weights should quantise exactly")
	}
}

func TestQuantizeZeroChannel(t *testing.T) {
	w := tensor.New(2, 3) // all zeros
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	if MaxError(w, q) != 0 {
		t.Fatal("zero tensor should round-trip exactly")
	}
}

func TestQuantizeRejectsEmpty(t *testing.T) {
	if _, err := Quantize(tensor.New(0, 4)); err == nil {
		t.Fatal("empty channel dim accepted")
	}
}

func TestBytesCompression(t *testing.T) {
	w := tensor.RandNormal(tensor.NewRNG(1), 0.1, 8, 64)
	q, _ := Quantize(w)
	// 512 int8 + 8 scales*4 = 544 vs 2048 float bytes ≈ 3.76x.
	if q.Bytes() != 512+32 {
		t.Fatalf("Bytes = %d", q.Bytes())
	}
}

func TestQuantizeGraphOnWRN(t *testing.T) {
	g, err := zoo.WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Rand(tensor.NewRNG(2), -1, 1, 1, 3, 32, 32)
	run := func() *tensor.Tensor {
		plan, err := runtime.Compile(g, runtime.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sess := runtime.NewSession(plan)
		out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{"input": x})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range out {
			return v.Clone()
		}
		return nil
	}
	before := run()
	rep, err := QuantizeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tensors != 40 { // one per conv; dense counted too -> 41
		if rep.Tensors != 41 {
			t.Fatalf("quantised %d tensors, want 40 convs + 1 dense", rep.Tensors)
		}
	}
	if rep.Compression() < 3.5 || rep.Compression() > 4.0 {
		t.Fatalf("compression = %.2fx, want ~3.9x", rep.Compression())
	}
	if rep.WorstRelError > 0.02 {
		t.Fatalf("worst weight relative error %.4f too high", rep.WorstRelError)
	}
	after := run()
	// Weight-only int8 should barely move the softmax output.
	if d := tensor.MaxAbsDiff(before, after); d > 0.2 {
		t.Fatalf("quantised network diverges: max prob diff %g", d)
	}
}

func TestQuantizeGraphIdempotentByteCount(t *testing.T) {
	g, err := zoo.WRN40_2(1)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := QuantizeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := QuantizeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Tensors != rep2.Tensors || rep1.FloatBytes != rep2.FloatBytes {
		t.Fatal("second quantisation saw different tensors")
	}
	// Second pass quantises already-quantised weights: error ~ 0.
	if rep2.WorstRelError > 1e-3 {
		t.Fatalf("re-quantisation error %g, want ~0", rep2.WorstRelError)
	}
}
