package ops

import (
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

func TestNodeFlopsDense(t *testing.T) {
	x := tensor.New(2, 64)
	w := tensor.New(10, 64)
	n := buildNode(t, "Dense", nil, x, w)
	// 2 * N * K * M = 2*2*64*10.
	if got := NodeFlops(n); got != 2560 {
		t.Fatalf("Dense flops = %d, want 2560", got)
	}
}

func TestNodeFlopsPooling(t *testing.T) {
	x := tensor.New(1, 4, 8, 8)
	n := buildNode(t, "MaxPool", graph.Attrs{"kernel": []int{2, 2}, "strides": []int{2, 2}}, x)
	// out 4x4x4 cells, 4 comparisons each: 4*16*4 = 256.
	if got := NodeFlops(n); got != 256 {
		t.Fatalf("MaxPool flops = %d, want 256", got)
	}
	g := buildNode(t, "GlobalAveragePool", nil, x)
	if got := NodeFlops(g); got != 4*64 {
		t.Fatalf("GAP flops = %d, want 256", got)
	}
}

func TestNodeFlopsElementwise(t *testing.T) {
	x := tensor.New(1, 10)
	n := buildNode(t, "Relu", nil, x)
	if got := NodeFlops(n); got != 10 {
		t.Fatalf("Relu flops = %d, want 10", got)
	}
	sm := buildNode(t, "Softmax", nil, x)
	if got := NodeFlops(sm); got != 40 {
		t.Fatalf("Softmax flops = %d, want 40", got)
	}
}

func TestNodeFlopsStructuralIsZero(t *testing.T) {
	x := tensor.New(1, 2, 4, 4)
	for _, tc := range []struct {
		op    string
		attrs graph.Attrs
	}{
		{"Flatten", graph.Attrs{"axis": 1}},
		{"Reshape", graph.Attrs{"shape": []int{1, -1}}},
		{"Identity", nil},
		{"Pad", graph.Attrs{"pads": []int{1, 1, 1, 1}}},
	} {
		n := buildNode(t, tc.op, tc.attrs, x)
		if got := NodeFlops(n); got != 0 {
			t.Errorf("%s flops = %d, want 0", tc.op, got)
		}
	}
}

func TestNodeBytesCountsAllOperands(t *testing.T) {
	a := tensor.New(1, 8)
	b := tensor.New(1, 8)
	n := buildNode(t, "Add", nil, a, b)
	// in 8 + in 8 + out 8 elements = 24 * 4 bytes.
	if got := NodeBytes(n); got != 96 {
		t.Fatalf("Add bytes = %d, want 96", got)
	}
}

func TestNodeFlopsGroupedConvScales(t *testing.T) {
	// Depthwise conv does groups-times less work than dense conv of the
	// same shape.
	mk := func(groups int) *graph.Node {
		r := tensor.NewRNG(1)
		x := tensor.Rand(r, -1, 1, 1, 8, 6, 6)
		w := tensor.Rand(r, -1, 1, 8, 8/groups, 3, 3)
		return buildNode(t, "Conv", graph.Attrs{"pads": []int{1, 1, 1, 1}, "group": groups}, x, w)
	}
	dense := NodeFlops(mk(1))
	dw := NodeFlops(mk(8))
	if dense != 8*dw {
		t.Fatalf("grouped conv flops: dense %d vs depthwise %d, want 8x ratio", dense, dw)
	}
}

func TestFlopsMatchProfilerView(t *testing.T) {
	// NodeFlops must agree with the convParams computation for convs.
	tc := convMatrix[1]
	n := buildNode(t, "Conv", tc.attrs(), tc.tensors(5)...)
	p, err := resolveConv(n)
	if err != nil {
		t.Fatal(err)
	}
	if NodeFlops(n) != p.flops() {
		t.Fatalf("NodeFlops %d != convParams.flops %d", NodeFlops(n), p.flops())
	}
}
