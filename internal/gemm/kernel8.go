package gemm

// Int8 micro-kernel dispatch.
//
// The int8 tier mirrors the fp32 dispatch in kernel.go but carries its own
// kernel table: geometry, packed layout and instruction mix all differ
// (u8×s8 dot products accumulate in int32 along k-quads of 4). The portable
// pure-Go 4x8 kernel always exists and is the bit-exactness reference for
// the SIMD kernels; architecture files register an AVX2
// VPMADDUBSW+VPMADDWD 8x8 kernel and an AVX-512 VNNI (VPDPBUSD) 8x16
// kernel on amd64 when the CPU supports them.
//
// Selection honours the same ORPHEUS_GEMM_KERNEL variable as the fp32
// tier: a name known to this table ("go", "avx2", "vnni") pins the int8
// choice. A name from the int8 kernel families that this CPU cannot run
// (e.g. "vnni" on a pre-VNNI host) warns and falls through to the widest
// registered int8 kernel; names the int8 tier never implements (fp32-only
// spellings like "avx512", "neon") stay quiet here — the fp32 dispatch
// already warns once for fully unknown names.
//
// All three kernels produce bit-identical int32 accumulators for operands
// within the tier's contract (weights in [-63, 63], activations in
// [0, 255]): int32 addition is associative, and the clamp keeps every
// VPMADDUBSW intermediate inside int16, so the saturating instruction can
// never actually saturate. See int8.go for the contract.

import (
	"fmt"
	"os"
	"sync/atomic"
)

// microKernel8Func computes a full mr×nr int32 accumulator block from
// packed int8/uint8 panels: acc[r][cc] (+)= sum over k-quads q and lanes t
// of pa[(q*mr+r)*4+t] * pb[(q*nr+cc)*4+t]. kq is the number of k-quads
// (groups of 4 k values); ldc is the row stride of acc in elements; store
// overwrites acc instead of accumulating.
type microKernel8Func func(pa []int8, pb []byte, acc []int32, kq, ldc int, store bool)

// kernel8 bundles an int8 micro-kernel with its packing geometry.
type kernel8 struct {
	name   string
	mr, nr int
	micro  microKernel8Func
}

// Int8 micro-tile geometry bounds; shared scratch is sized for the largest
// registered kernel.
const (
	maxMR8 = 8
	maxNR8 = 16
)

// go8Kernel is the portable pure-Go int8 micro-kernel; always selectable
// as "go" and the correctness reference for the SIMD kernels.
var go8Kernel = &kernel8{name: "go", mr: 4, nr: 8, micro: microKernel8Go}

// simd8Kernels holds the int8 architecture kernels usable on this CPU, in
// ascending preference order.
var simd8Kernels []*kernel8

// registerKernel8 adds an int8 SIMD kernel to the dispatch table. Called
// only from package init.
func registerKernel8(k *kernel8) {
	if k.mr > maxMR8 || k.nr > maxNR8 {
		panicf("gemm: int8 kernel %s tile %dx%d exceeds max %dx%d", k.name, k.mr, k.nr, maxMR8, maxNR8)
	}
	if mcBlock%k.mr != 0 || ncBlock%k.nr != 0 {
		panicf("gemm: int8 kernel %s tile %dx%d does not divide %dx%d macro blocks",
			k.name, k.mr, k.nr, mcBlock, ncBlock)
	}
	if !int8Families[k.name] {
		panicf("gemm: int8 kernel %s missing from int8Families", k.name)
	}
	simd8Kernels = append(simd8Kernels, k)
}

// active8 is the int8 kernel all packing and accumulation uses, resolved
// lazily like the fp32 active kernel.
var active8 atomic.Pointer[kernel8]

// activeKernel8 returns the int8 kernel in effect, resolving the default
// on first use.
func activeKernel8() *kernel8 {
	if k := active8.Load(); k != nil {
		return k
	}
	active8.CompareAndSwap(nil, defaultKernel8())
	return active8.Load()
}

// int8Families names every int8 kernel the dispatch layer knows about on
// any architecture — the set for which an unavailable-on-this-CPU request
// warns instead of being silently ignored.
var int8Families = map[string]bool{
	"go":   true,
	"avx2": true,
	"vnni": true,
}

// defaultKernel8 applies the selection order documented at the top of this
// file.
func defaultKernel8() *kernel8 {
	k, warn := resolveKernel8(os.Getenv(KernelEnv))
	if warn != "" {
		fmt.Fprintln(os.Stderr, warn)
	}
	return k
}

// resolveKernel8 maps an ORPHEUS_GEMM_KERNEL value to the int8 kernel to
// use plus a warning to emit (empty when the request was honoured, absent,
// or names a kernel outside the int8 families).
func resolveKernel8(name string) (k *kernel8, warn string) {
	best := go8Kernel
	if n := len(simd8Kernels); n > 0 {
		best = simd8Kernels[n-1]
	}
	if name == "" {
		return best, ""
	}
	if k := lookupKernel8(name); k != nil {
		return k, ""
	}
	if int8Families[name] {
		return best, fmt.Sprintf("gemm: int8 tier: %s=%q not available on this CPU; falling back to %q", KernelEnv, name, best.name)
	}
	// Unknown to the int8 tier; the fp32 dispatch warns for fully unknown
	// names, so stay quiet and use the best registered kernel.
	return best, ""
}

// lookupKernel8 returns the named int8 kernel, or nil.
func lookupKernel8(name string) *kernel8 {
	if name == go8Kernel.name {
		return go8Kernel
	}
	for _, k := range simd8Kernels {
		if k.name == name {
			return k
		}
	}
	return nil
}

// Kernel8Name reports the name of the int8 micro-kernel the quantized tier
// currently dispatches to ("go", "avx2", "vnni", ...).
func Kernel8Name() string { return activeKernel8().name }

// Kernel8Names lists the int8 micro-kernels selectable on this CPU, the
// portable "go" kernel first, then registered SIMD kernels in ascending
// preference order. The last entry is the default absent an override.
func Kernel8Names() []string {
	names := []string{go8Kernel.name}
	for _, k := range simd8Kernels {
		names = append(names, k.name)
	}
	return names
}

// SetKernel8 selects the named int8 micro-kernel for all subsequent
// quantized-tier calls. Like SetKernel, switching invalidates buffers
// produced by earlier PrepackAInt8 calls (the panel layout bakes in mr)
// and must not race in-flight GEMMs.
func SetKernel8(name string) error {
	k := lookupKernel8(name)
	if k == nil {
		return fmt.Errorf("gemm: unknown int8 kernel %q (known: %v)", name, Kernel8Names())
	}
	active8.Store(k)
	return nil
}

// asmKernel8Func is the common signature of the architecture int8 assembly
// micro-kernels: pointers into the packed panels and the int32 accumulator
// tile, with kq ≥ 1.
type asmKernel8Func func(pa *int8, pb *byte, acc *int32, kq, ldc int64, store bool)

// adaptAsmKernel8 wraps an int8 assembly kernel (whose k-loop requires at
// least one iteration) into a microKernel8Func, handling kq == 0 in Go.
func adaptAsmKernel8(asm asmKernel8Func, mr, nr int) microKernel8Func {
	return func(pa []int8, pb []byte, acc []int32, kq, ldc int, store bool) {
		if kq == 0 {
			if store {
				zeroTile32(acc, mr, nr, ldc)
			}
			return
		}
		asm(&pa[0], &pb[0], &acc[0], int64(kq), int64(ldc), store)
	}
}

// zeroTile32 clears an mr×nr tile of acc.
func zeroTile32(acc []int32, mr, nr, ldc int) {
	for r := 0; r < mr; r++ {
		row := acc[r*ldc : r*ldc+nr]
		for i := range row {
			row[i] = 0
		}
	}
}
