package graph

import (
	"reflect"
	"testing"
)

func init() {
	// Fixed-width projection ops so chain tests control each cut's
	// transfer bytes precisely.
	for _, w := range []int{2, 4, 8} {
		w := w
		RegisterShapeFn(testWidthOp(w), func(n *Node) ([][]int, error) {
			return [][]int{{n.Inputs[0].Shape[0], w}}, nil
		})
	}
}

func testWidthOp(w int) string {
	return map[int]string{2: "testW2", 4: "testW4", 8: "testW8"}[w]
}

// buildChain builds x → node per width, each node's output having the
// given width, last output marked.
func buildChain(t *testing.T, widths ...int) *Graph {
	t.Helper()
	g := New("chain")
	v, err := g.Input("x", []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range widths {
		v, err = g.Add(testWidthOp(w), nodeName(i), nil, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := g.MarkOutput(v); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func nodeName(i int) string { return string(rune('a' + i)) }

func TestCutPointsEnumeratesEveryPosition(t *testing.T) {
	g := buildChain(t, 8, 2, 4, 4)
	cuts, err := CutPoints(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != len(g.Nodes)-1 {
		t.Fatalf("%d candidates for %d nodes", len(cuts), len(g.Nodes))
	}
	wantBytes := []int64{32, 8, 16} // widths 8, 2, 4 × 4 bytes
	for i, c := range cuts {
		if c.After != i || c.Node != g.Nodes[i].Name {
			t.Fatalf("cut %d: After=%d Node=%q", i, c.After, c.Node)
		}
		if c.Bytes != wantBytes[i] {
			t.Fatalf("cut %d: %d bytes, want %d", i, c.Bytes, wantBytes[i])
		}
		if len(c.Values) != 1 || len(c.Shapes) != 1 {
			t.Fatalf("cut %d crossing %v", i, c.Values)
		}
	}
}

func TestPartitionPicksMinTransferCut(t *testing.T) {
	// Candidate cuts transfer 32, 8, 16 bytes; the 2-way split must take
	// the 8-byte boundary.
	g := buildChain(t, 8, 2, 4, 4)
	res, err := Partition(g, PartitionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 2 || len(res.Cuts) != 1 {
		t.Fatalf("shards=%d cuts=%d", len(res.Shards), len(res.Cuts))
	}
	if res.Cuts[0].After != 1 || res.TransferBytes != 8 {
		t.Fatalf("cut after %d (%d bytes), want after 1 (8 bytes)", res.Cuts[0].After, res.TransferBytes)
	}
	// The boundary contract: upstream outputs == downstream inputs, same
	// names, same order.
	up, down := res.Shards[0], res.Shards[1]
	if len(up.Outputs) != 1 || len(down.Inputs) != 1 || up.Outputs[0].Name != down.Inputs[0].Name {
		t.Fatalf("boundary mismatch: %v vs %v", up.Outputs, down.Inputs)
	}
	// First shard keeps the original input contract, last the outputs.
	if up.Inputs[0].Name != "x" || down.Outputs[0].Name != g.Outputs[0].Name {
		t.Fatalf("end contracts: in %q out %q", up.Inputs[0].Name, down.Outputs[0].Name)
	}
}

func TestPartitionHonoursBalanceCap(t *testing.T) {
	// Same chain; the min-transfer cut (after node 1) would put cost
	// 5+5=10 upstream against a cap of 1.5×12/2 = 9, so the balance
	// constraint must push the cut to position 0 despite its 32 bytes.
	g := buildChain(t, 8, 2, 4, 4)
	costs := map[string]int64{"a": 5, "b": 5, "c": 1, "d": 1}
	res, err := Partition(g, PartitionOptions{
		Shards:   2,
		NodeCost: func(n *Node) int64 { return costs[n.Name] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cuts[0].After != 0 || res.TransferBytes != 32 {
		t.Fatalf("cut after %d (%d bytes), want after 0 (32 bytes)", res.Cuts[0].After, res.TransferBytes)
	}
}

func TestPartitionRelaxesInfeasibleCap(t *testing.T) {
	// One node dominating the cost makes every split breach the default
	// cap; Partition must relax rather than fail.
	g := buildChain(t, 8, 2, 4, 4)
	res, err := Partition(g, PartitionOptions{
		Shards: 2,
		NodeCost: func(n *Node) int64 {
			if n.Name == "c" {
				return 1000
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("shards=%d", len(res.Shards))
	}
}

func TestPartitionThreadsEarlyOutputThrough(t *testing.T) {
	// An output produced in the first shard must be threaded through the
	// second as a passthrough (declared input, marked output).
	g := New("early-out")
	x, err := g.Input("x", []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	early, err := g.Add("testW4", "a", nil, x)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := g.Add("testW8", "b", nil, early)
	if err != nil {
		t.Fatal(err)
	}
	late, err := g.Add("testW2", "c", nil, mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MarkOutput(early); err != nil {
		t.Fatal(err)
	}
	if err := g.MarkOutput(late); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, PartitionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Shards[len(res.Shards)-1]
	var passthrough bool
	for _, in := range last.Inputs {
		if in.Name == early.Name {
			passthrough = true
		}
	}
	var reExported bool
	for _, out := range last.Outputs {
		if out.Name == early.Name {
			reExported = true
		}
	}
	if !passthrough || !reExported {
		t.Fatalf("early output not threaded through: inputs %v outputs %v", last.Inputs, last.Outputs)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := buildChain(t, 8, 2, 4, 4)
	a, err := Partition(g, PartitionOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, PartitionOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cuts, b.Cuts) {
		t.Fatalf("cuts differ across runs:\n%v\n%v", a.Cuts, b.Cuts)
	}
	for i := range a.Shards {
		if a.Shards[i].Name != b.Shards[i].Name {
			t.Fatalf("shard %d name %q vs %q", i, a.Shards[i].Name, b.Shards[i].Name)
		}
	}
}

func TestPartitionRejectsBadShardCounts(t *testing.T) {
	g := buildChain(t, 8, 2)
	if _, err := Partition(g, PartitionOptions{Shards: 0}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := Partition(g, PartitionOptions{Shards: 5}); err == nil {
		t.Fatal("more shards than nodes accepted")
	}
	// A single shard degenerates to the whole graph.
	res, err := Partition(g, PartitionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 1 || len(res.Cuts) != 0 || res.TransferBytes != 0 {
		t.Fatalf("1-shard partition: %d shards, %d cuts, %d bytes", len(res.Shards), len(res.Cuts), res.TransferBytes)
	}
}
