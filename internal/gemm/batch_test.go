package gemm

import (
	"fmt"
	"math/rand"
	"testing"
)

// refStridedBatch computes the batched call the obvious way: one naive
// GEMM per image over the strided windows.
func refStridedBatch(a, b, c []float32, m, n, k, batch, strideB, strideC int) {
	for img := 0; img < batch; img++ {
		Naive(a, b[img*strideB:], c[img*strideC:], m, n, k)
	}
}

// TestStridedBatchMatchesLooped checks Call{Batch, StrideB, StrideC}
// against per-image GEMMs for single-threaded, prepacked-A and pooled
// multi-worker execution, across shapes that cover single-tile and
// multi-tile grids.
func TestStridedBatchMatchesLooped(t *testing.T) {
	shapes := []struct{ m, n, k, batch int }{
		{4, 8, 4, 1},
		{16, 49, 32, 3},   // sub-tile N with edge strips
		{64, 196, 128, 8}, // pointwise-conv shaped
		{130, 520, 70, 2}, // crosses macro-tile boundaries in both dims
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("m%dn%dk%db%d", sh.m, sh.n, sh.k, sh.batch), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(sh.m*1000 + sh.n)))
			// Strides with slack beyond the dense matrix size.
			strideB := sh.k*sh.n + 3
			strideC := sh.m*sh.n + 5
			a := make([]float32, sh.m*sh.k)
			b := make([]float32, (sh.batch-1)*strideB+sh.k*sh.n)
			for i := range a {
				a[i] = r.Float32() - 0.5
			}
			for i := range b {
				b[i] = r.Float32() - 0.5
			}
			want := make([]float32, (sh.batch-1)*strideC+sh.m*sh.n)
			refStridedBatch(a, b, want, sh.m, sh.n, sh.k, sh.batch, strideB, strideC)

			check := func(label string, got []float32) {
				t.Helper()
				for i := range want {
					d := got[i] - want[i]
					if d < -1e-3 || d > 1e-3 {
						t.Fatalf("%s: C[%d] = %g, want %g", label, i, got[i], want[i])
					}
				}
			}
			call := Call{A: a, B: b, M: sh.m, N: sh.n, K: sh.k, Store: true,
				Batch: sh.batch, StrideB: strideB, StrideC: strideC}

			var ctx Context
			got := make([]float32, len(want))
			c1 := call
			c1.C = got
			ctx.Run(c1)
			check("context", got)

			pa := PrepackA(a, sh.m, sh.k)
			got2 := make([]float32, len(want))
			c2 := call
			c2.A, c2.PackedA, c2.C = nil, pa, got2
			ctx.Run(c2)
			check("prepacked", got2)

			for _, workers := range []int{2, 4} {
				got3 := make([]float32, len(want))
				c3 := call
				c3.C = got3
				Shared().Run(&ctx, c3, workers)
				check(fmt.Sprintf("pool-%d", workers), got3)
			}
		})
	}
}
