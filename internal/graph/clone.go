package graph

// Clone returns a deep copy of the graph structure. Constant tensors are
// shared (they are treated as immutable throughout Orpheus); nodes, values
// and attribute maps are copied, so passes run on the clone leave the
// original untouched. Experiments use this to compare optimised and raw
// variants of one model.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	vmap := make(map[*Value]*Value, len(g.values))
	for name, v := range g.values {
		nv := &Value{Name: name, Shape: append([]int(nil), v.Shape...), Const: v.Const, Batched: v.Batched}
		c.values[name] = nv
		vmap[v] = nv
	}
	for _, n := range g.Nodes {
		nn := &Node{Name: n.Name, Op: n.Op, Attrs: n.Attrs.Clone()}
		for _, in := range n.Inputs {
			nn.Inputs = append(nn.Inputs, vmap[in])
		}
		for _, out := range n.Outputs {
			nv := vmap[out]
			nv.Producer = nn
			nn.Outputs = append(nn.Outputs, nv)
		}
		c.Nodes = append(c.Nodes, nn)
	}
	for _, in := range g.Inputs {
		c.Inputs = append(c.Inputs, vmap[in])
	}
	for _, out := range g.Outputs {
		c.Outputs = append(c.Outputs, vmap[out])
	}
	return c
}
