// Package quant implements post-training int8 quantisation, an extension
// in the spirit of the paper's motivation (Turner et al.'s across-stack
// compression study): Orpheus exists so that optimisations like this can
// be prototyped and *measured at system level* instead of assumed.
//
// The scheme is per-output-channel symmetric weight quantisation:
//
//	w_q[i] = round(w[i] / scale_c),  scale_c = max|w_c| / 127
//
// Activations stay float32 (weight-only quantisation), so accuracy loss
// is bounded by weight rounding alone; the win is a 4x smaller weight
// footprint — the metric the memory experiment tracks — at a modest
// compute cost for dequantise-on-the-fly kernels.
package quant

import (
	"fmt"
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// QTensor is a per-channel symmetric int8 quantised tensor. Channel is
// the first dimension (Cout for conv weights, M for dense weights).
type QTensor struct {
	Shape  []int
	Data   []int8
	Scales []float32 // one per channel (dim 0)
}

// Quantize converts a float tensor to per-channel int8. The tensor must
// have rank >= 1; dimension 0 is the channel axis.
func Quantize(t *tensor.Tensor) (*QTensor, error) {
	shape := t.Shape()
	if len(shape) < 1 || shape[0] == 0 {
		return nil, fmt.Errorf("quant: cannot quantise shape %v", shape)
	}
	channels := shape[0]
	per := t.Size() / channels
	q := &QTensor{
		Shape:  append([]int(nil), shape...),
		Data:   make([]int8, t.Size()),
		Scales: make([]float32, channels),
	}
	src := t.Data()
	for c := 0; c < channels; c++ {
		row := src[c*per : (c+1)*per]
		var maxAbs float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1 // all-zero channel: any scale round-trips to zero
		}
		q.Scales[c] = scale
		inv := 1 / scale
		for i, v := range row {
			r := math.RoundToEven(float64(v * inv))
			if r > 127 {
				r = 127
			} else if r < -127 {
				r = -127
			}
			q.Data[c*per+i] = int8(r)
		}
	}
	return q, nil
}

// Dequantize reconstructs the float tensor.
func (q *QTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Shape...)
	channels := q.Shape[0]
	per := len(q.Data) / channels
	dst := out.Data()
	for c := 0; c < channels; c++ {
		s := q.Scales[c]
		for i := 0; i < per; i++ {
			dst[c*per+i] = float32(q.Data[c*per+i]) * s
		}
	}
	return out
}

// Bytes returns the quantised storage size (data + scales).
func (q *QTensor) Bytes() int64 {
	return int64(len(q.Data)) + int64(len(q.Scales))*4
}

// MaxError returns the largest |original - dequantised| element error;
// it is bounded by scale/2 per channel.
func MaxError(t *tensor.Tensor, q *QTensor) float64 {
	return tensor.MaxAbsDiff(t, q.Dequantize())
}

// Report summarises the effect of quantising every Conv/Dense weight in a
// graph.
type Report struct {
	Tensors       int
	FloatBytes    int64
	QuantBytes    int64
	WorstRelError float64 // max per-tensor ||w - deq(q(w))|| / ||w||
}

// Compression is the float/quant byte ratio.
func (r Report) Compression() float64 {
	if r.QuantBytes == 0 {
		return 0
	}
	return float64(r.FloatBytes) / float64(r.QuantBytes)
}

// QuantizeGraph rewrites g in place: every Conv and Dense weight constant
// is replaced by its quantise→dequantise image (weight-only fake-quant,
// the standard way to measure quantisation quality without dedicated
// int8 kernels), and returns the footprint report. Biases and BN
// parameters are left in float, as deployed int8 runtimes do.
func QuantizeGraph(g *graph.Graph) (Report, error) {
	var rep Report
	seen := map[*graph.Value]bool{}
	for _, n := range g.Nodes {
		if n.Op != "Conv" && n.Op != "Dense" {
			continue
		}
		if len(n.Inputs) < 2 {
			continue
		}
		w := n.Inputs[1]
		if !w.IsConst() || seen[w] {
			continue
		}
		seen[w] = true
		q, err := Quantize(w.Const)
		if err != nil {
			return rep, fmt.Errorf("quant: node %q: %w", n.Name, err)
		}
		deq := q.Dequantize()
		rel := tensor.RelError(deq, w.Const)
		if rel > rep.WorstRelError {
			rep.WorstRelError = rel
		}
		rep.Tensors++
		rep.FloatBytes += int64(w.Const.Size()) * 4
		rep.QuantBytes += q.Bytes()
		// Swap the constant contents in place so every consumer sees the
		// quantised weights.
		copy(w.Const.Data(), deq.Data())
	}
	return rep, nil
}
