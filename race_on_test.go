//go:build race

package orpheus

// raceEnabled reports that the race detector is active. Under it,
// sync.Pool intentionally drops a fraction of pooled items to widen the
// interleavings it can observe, so tests asserting pool-backed
// allocation counts must skip — the counts are meaningless there.
const raceEnabled = true
