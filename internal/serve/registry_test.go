package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orpheus/internal/wire"
)

// TestRegistryAddRemove pins the registry bookkeeping: names sort, adds
// reject duplicates, removes are typed for unknown models and the model
// disappears from lookup (404 on the wire) as soon as Remove returns.
func TestRegistryAddRemove(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	g := tinyModel(t)
	for _, name := range []string{"b", "a", "c"} {
		if err := s.AddModel(name, g, "orpheus", 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ModelNames(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("ModelNames = %v", got)
	}
	if s.Registry().Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Registry().Len())
	}
	if err := s.AddModel("a", g, "orpheus", 1); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := s.RemoveModel("nope"); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("Remove(nope) = %v, want ErrNotHosted", err)
	}
	if err := s.RemoveModel("b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.entry("b"); ok {
		t.Fatal("removed model still resolves")
	}
	ts := newHTTPServer(t, s)
	if resp := postJSON(t, ts.URL+"/predict/b", map[string]any{"input": sampleInput()}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict on removed model = %d, want 404", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/predict/a", map[string]any{"input": sampleInput()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on surviving model = %d, want 200", resp.StatusCode)
	}
}

// TestAdmitLimitTiering pins the limit derivation across adds and
// removes: C−C·rank/n over the distinct priority classes, floor 1, full
// cap for every model when priorities are uniform, and recomputation
// when the class structure changes.
func TestAdmitLimitTiering(t *testing.T) {
	s := New(WithMaxInflight(9))
	t.Cleanup(s.Close)
	g := tinyModel(t)
	limits := func(names ...string) []int64 {
		out := make([]int64, len(names))
		for i, n := range names {
			e, ok := s.entry(n)
			if !ok {
				t.Fatalf("model %q not hosted", n)
			}
			out[i] = e.admitLimit.Load()
		}
		return out
	}
	// One class: everyone admits to the full cap.
	if err := s.AddModel("a", g, "orpheus", 1, WithModelPriority(5)); err != nil {
		t.Fatal(err)
	}
	if got := limits("a"); got[0] != 9 {
		t.Fatalf("single-class limit = %d, want 9", got[0])
	}
	// Three classes over cap 9: 9, 6, 3.
	if err := s.AddModel("b", g, "orpheus", 1, WithModelPriority(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("c", g, "orpheus", 1, WithModelPriority(-2)); err != nil {
		t.Fatal(err)
	}
	if got := limits("a", "b", "c"); got[0] != 9 || got[1] != 6 || got[2] != 3 {
		t.Fatalf("three-class limits = %v, want [9 6 3]", got)
	}
	// Removing the middle class collapses to two: 9, 5 (9−9·1/2 rounding down).
	if err := s.RemoveModel("b"); err != nil {
		t.Fatal(err)
	}
	if got := limits("a", "c"); got[0] != 9 || got[1] != 5 {
		t.Fatalf("two-class limits = %v, want [9 5]", got)
	}
}

// TestAdmitLimitUncapped pins the no-cap configuration: without
// WithMaxInflight, priorities are inert and every model's limit is
// unbounded.
func TestAdmitLimitUncapped(t *testing.T) {
	s := New()
	t.Cleanup(s.Close)
	if err := s.AddModel("a", tinyModel(t), "orpheus", 1, WithModelPriority(7)); err != nil {
		t.Fatal(err)
	}
	e, _ := s.entry("a")
	if got := e.admitLimit.Load(); got != math.MaxInt64 {
		t.Fatalf("uncapped admit limit = %d, want MaxInt64", got)
	}
	if _, err := s.admit(e); err != nil {
		t.Fatalf("uncapped admit failed: %v", err)
	}
}

// TestPerModelOverrides pins WithModelQueueDepth and WithModelTimeout
// against the server-wide defaults: each model carries its own resolved
// policy.
func TestPerModelOverrides(t *testing.T) {
	s := New(WithMaxBatch(2), WithQueueDepth(8), WithRequestTimeout(time.Second))
	t.Cleanup(s.Close)
	g := tinyModel(t)
	if err := s.AddModel("default", g, "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("custom", g, "orpheus", 1,
		WithModelQueueDepth(3), WithModelTimeout(50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	d, _ := s.entry("default")
	c, _ := s.entry("custom")
	if d.queueCap != 8 || d.timeout != time.Second {
		t.Fatalf("default entry policy = (%d, %v), want (8, 1s)", d.queueCap, d.timeout)
	}
	if c.queueCap != 3 || c.timeout != 50*time.Millisecond {
		t.Fatalf("custom entry policy = (%d, %v), want (3, 50ms)", c.queueCap, c.timeout)
	}
}

// TestRegistryStress is the -race gauntlet of the multi-model registry:
// clients hammer four model names with a JSON/binary mix while one model
// is added mid-flight, another is removed mid-flight, and finally the
// server drains with requests outstanding. The contract under all that
// churn: every request completes (no deadlock), and every non-200 is one
// of the typed wire statuses with a JSON error body — no request is lost
// silently, no output is wrong.
func TestRegistryStress(t *testing.T) {
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.01 * float32(i%23)
	}
	want := referenceOutput(t, input)
	wireBody := wire.AppendTensor(nil, input, []int{1, 3, 8, 8})
	jsonBody, _ := json.Marshal(map[string]any{"input": input})

	s := New(WithMaxBatch(3), WithFlushDeadline(time.Millisecond), WithMaxInflight(32))
	g := tinyModel(t)
	// steady serves throughout; doomed is removed mid-test; late is added
	// mid-test; "ghost" never exists. Distinct priorities exercise the
	// tiering recompute under churn.
	if err := s.AddModel("steady", g, "orpheus", 1, WithModelPriority(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("doomed", g, "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("spare", g, "orpheus", 1, WithModelPriority(2)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := newHTTPServer(t, s)

	models := []string{"steady", "doomed", "spare", "late", "ghost"}
	const clients = 8
	const iters = 25
	var (
		wg       sync.WaitGroup
		ok200    atomic.Int64
		shed429  atomic.Int64
		gone404  atomic.Int64
		drain503 atomic.Int64
	)
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				model := models[(c+i)%len(models)]
				var (
					resp *http.Response
					err  error
				)
				if (c+i)%2 == 0 {
					resp, err = http.Post(ts.URL+"/predict/"+model, "application/json", bytes.NewReader(jsonBody))
				} else {
					req, _ := http.NewRequest("POST", ts.URL+"/models/"+model+"/predict", bytes.NewReader(wireBody))
					req.Header.Set("Content-Type", ContentTypeTensor)
					resp, err = http.DefaultClient.Do(req)
				}
				if err != nil {
					errc <- fmt.Errorf("client %d iter %d (%s): transport: %v", c, i, model, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					errc <- fmt.Errorf("client %d iter %d (%s): body: %v", c, i, model, rerr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					var out []float32
					if resp.Header.Get("Content-Type") == ContentTypeTensor {
						dec, derr := wire.DecodeBytes(body, 0)
						if derr != nil {
							errc <- fmt.Errorf("client %d iter %d (%s): bad wire response: %v", c, i, model, derr)
							return
						}
						out = dec.Data()
					} else {
						var jr struct {
							Output []float32 `json:"output"`
						}
						if jerr := json.Unmarshal(body, &jr); jerr != nil {
							errc <- fmt.Errorf("client %d iter %d (%s): bad JSON response: %v", c, i, model, jerr)
							return
						}
						out = jr.Output
					}
					for j := range want {
						if out[j] != want[j] {
							errc <- fmt.Errorf("client %d iter %d (%s): output[%d] = %v, want %v", c, i, model, j, out[j], want[j])
							return
						}
					}
				case http.StatusNotFound:
					gone404.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				case http.StatusServiceUnavailable:
					drain503.Add(1)
				default:
					errc <- fmt.Errorf("client %d iter %d (%s): status %d (%s) outside the typed contract", c, i, model, resp.StatusCode, body)
					return
				}
				if resp.StatusCode != http.StatusOK {
					var e map[string]string
					if jerr := json.Unmarshal(body, &e); jerr != nil || e["error"] == "" {
						errc <- fmt.Errorf("client %d iter %d (%s): %d without a JSON error body (%s)", c, i, model, resp.StatusCode, body)
						return
					}
				}
			}
		}(c)
	}

	// Churn the registry while the clients fire: a model joins, a model
	// leaves, and once traffic has flowed for a while the server drains.
	time.Sleep(10 * time.Millisecond)
	if err := s.AddModel("late", g, "orpheus", 1, WithModelPriority(3)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.RemoveModel("doomed"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	s.Close()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if ok200.Load() == 0 {
		t.Error("no request succeeded before the drain")
	}
	if gone404.Load() == 0 {
		t.Error("the never-hosted model never produced a 404")
	}
	t.Logf("stress: 200=%d 404=%d 429=%d 503=%d (add/remove/drain mid-flight)",
		ok200.Load(), gone404.Load(), shed429.Load(), drain503.Load())
}
