package graph

import "fmt"

// Attrs holds a node's operator attributes (stride, padding, axis, …).
// Values are int, float64, string, bool, []int or []float64; the typed
// getters return a default when the key is absent and panic on a type
// mismatch, which indicates a malformed graph-construction bug rather than
// a runtime condition.
type Attrs map[string]any

// Int returns the int attribute key, or def if absent.
func (a Attrs) Int(key string, def int) int {
	v, ok := a[key]
	if !ok {
		return def
	}
	i, ok := v.(int)
	if !ok {
		panic(fmt.Sprintf("attrs: %q is %T, want int", key, v))
	}
	return i
}

// Ints returns the []int attribute key, or def if absent. The returned
// slice must not be modified.
func (a Attrs) Ints(key string, def []int) []int {
	v, ok := a[key]
	if !ok {
		return def
	}
	s, ok := v.([]int)
	if !ok {
		panic(fmt.Sprintf("attrs: %q is %T, want []int", key, v))
	}
	return s
}

// Float returns the float64 attribute key, or def if absent. Int values
// are widened.
func (a Attrs) Float(key string, def float64) float64 {
	v, ok := a[key]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	}
	panic(fmt.Sprintf("attrs: %q is %T, want float64", key, a[key]))
}

// Str returns the string attribute key, or def if absent.
func (a Attrs) Str(key, def string) string {
	v, ok := a[key]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		panic(fmt.Sprintf("attrs: %q is %T, want string", key, v))
	}
	return s
}

// Bool returns the bool attribute key, or def if absent.
func (a Attrs) Bool(key string, def bool) bool {
	v, ok := a[key]
	if !ok {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		panic(fmt.Sprintf("attrs: %q is %T, want bool", key, v))
	}
	return b
}

// Has reports whether key is present.
func (a Attrs) Has(key string) bool {
	_, ok := a[key]
	return ok
}

// Clone returns a shallow copy (slice values are shared; passes treat
// attribute slices as immutable).
func (a Attrs) Clone() Attrs {
	c := make(Attrs, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}
