package orpheus

import (
	"testing"

	"orpheus/internal/backend"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// TestSessionRunSteadyStateAllocFree asserts the PR's core perf invariant:
// after warm-up (scratch grown, constant weights packed), Session.Run in
// the planned-arena configuration performs zero heap allocations — the
// marginal cost of an inference is kernels, not bookkeeping.
func TestSessionRunSteadyStateAllocFree(t *testing.T) {
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		t.Run(model, func(t *testing.T) {
			g, err := zoo.Build(model, 1)
			if err != nil {
				t.Fatal(err)
			}
			be, err := backend.ByName("orpheus")
			if err != nil {
				t.Fatal(err)
			}
			plan, err := be.Prepare(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			sess := runtime.NewSession(plan)
			x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
			in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
			for i := 0; i < 2; i++ { // warm-up: grow scratch, pack weights
				if _, err := sess.Run(in); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(3, func() {
				if _, err := sess.Run(in); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Session.Run allocates %.1f times per run, want 0", avg)
			}
		})
	}
}
