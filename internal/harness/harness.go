package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/device"
	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// Mode selects how times are obtained.
type Mode string

// Experiment execution modes. Sim evaluates the Cortex-A73 cost model
// (instant, reproduces the paper's board); Measure times real inference on
// the host CPU; Both reports the two side by side.
const (
	ModeSim     Mode = "sim"
	ModeMeasure Mode = "measure"
	ModeBoth    Mode = "both"
)

// Config controls an experiment run.
type Config struct {
	// Ctx cancels measured runs between plan steps (default
	// context.Background()); cancellation surfaces as the experiment's
	// error.
	Ctx context.Context
	// Mode selects simulated, measured, or both (default sim).
	Mode Mode
	// Warmup and Reps control measured timing (defaults 1 and 3).
	Warmup, Reps int
	// Workers is the thread count for measured runs (default 1, matching
	// the paper's single-core setup).
	Workers int
	// Models restricts the model set (default: all five Figure 2 models).
	Models []string
	// Device is the simulated target (default HiKey 970).
	Device *device.Device
	// Wire restricts the "wire" experiment's client to the binary tensor
	// format, skipping the JSON baseline (orpheus-bench -wire).
	Wire bool
	// Shards points the "shard" experiment at externally started
	// orpheus-shard stage processes (orpheus-bench -shards
	// host1:port,host2:port,... in pipeline order) instead of spinning
	// loopback stages in-process.
	Shards []string
}

func (c *Config) fill() {
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Mode == "" {
		c.Mode = ModeSim
	}
	if c.Warmup <= 0 {
		c.Warmup = 1
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if len(c.Models) == 0 {
		c.Models = zoo.Names()
	}
	if c.Device == nil {
		c.Device = device.HiKey970()
	}
}

// Experiment is one reproducible result from the paper or an ablation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg *Config) (*Report, error)
}

var experiments = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %q", e.ID))
	}
	experiments[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (*Experiment, error) {
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns every experiment sorted by id.
func All() []*Experiment {
	var out []*Experiment
	for _, id := range IDs() {
		out = append(out, experiments[id])
	}
	return out
}

// modelResult is one (model, backend) timing in milliseconds.
type modelResult struct {
	model, backendName string
	simMs              float64
	measuredMs         float64
	excluded           string // non-empty reason when n/a
}

// runModelBackend obtains timings for one model on one backend.
func runModelBackend(cfg *Config, g *graph.Graph, modelName string, b *backend.Backend) modelResult {
	res := modelResult{model: modelName, backendName: b.Name}
	if b.SupportsModel != nil {
		if err := b.SupportsModel(modelName); err != nil {
			res.excluded = err.Error()
			return res
		}
	}
	plan, err := b.Prepare(g, cfg.Workers)
	if err != nil {
		res.excluded = err.Error()
		return res
	}
	if cfg.Mode == ModeSim || cfg.Mode == ModeBoth {
		res.simMs = float64(cfg.Device.EstimatePlan(plan, time.Duration(b.SimDispatchNs))) / 1e6
	}
	if cfg.Mode == ModeMeasure || cfg.Mode == ModeBoth {
		sess := runtime.NewSession(plan)
		x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString(modelName)), -1, 1, g.Inputs[0].Shape...)
		stats, err := runtime.Measure(cfg.Ctx, sess, map[string]*tensor.Tensor{g.Inputs[0].Name: x}, cfg.Warmup, cfg.Reps)
		if err != nil {
			res.excluded = err.Error()
			return res
		}
		res.measuredMs = float64(stats.Median) / 1e6
	}
	return res
}

// ms returns the primary timing for ranking (simulated when available).
func (r modelResult) ms(mode Mode) float64 {
	if mode == ModeMeasure {
		return r.measuredMs
	}
	return r.simMs
}
