package passes

import (
	"fmt"

	"orpheus/internal/graph"
)

// ConvertLayout is the layout-assignment pass: it rewrites eligible
// subgraphs from the importer's NCHW convention to NHWC so the backend can
// select the channel-innermost kernel tier (conv.im2col_nhwc,
// conv.depthwise_nhwc, the NHWC pool/pad branches).
//
// The pass works in three phases:
//
//  1. Assignment. Every layout-capable node (Conv with constant weights,
//     the pooling ops, Pad, all-NHWC Concat over the channel axis) is
//     assigned layout "nhwc"; layout-agnostic elementwise nodes (Relu,
//     Add, ...) adopt the layout of the value flowing through them. The
//     externally visible contract — graph inputs and outputs — stays NCHW.
//
//  2. Frontiers. Wherever a value's layout disagrees with what its
//     consumer wants, an explicit Transpose is inserted (one per
//     (value, target), shared by all consumers needing it); NHWC values
//     reaching graph outputs get a closing NHWC→NCHW Transpose.
//
//  3. Folding. Frontier transposes are then removed wherever the data
//     movement is avoidable: adjacent pairs whose composition is the
//     identity cancel; permutations that do not reorder the underlying
//     elements (e.g. [N,1,1,C]→[N,C,1,1] after a global pool, feeding a
//     Flatten) are elided; and an NCHW→NHWC transpose consumed only by
//     NHWC GEMM convolutions is folded into their input gather
//     (src_layout "nchw" — the pack pass absorbs the permutation). On the
//     all-convolutional zoo models every materialised transpose folds
//     away and the steady-state plan carries zero Transpose steps.
//
// The pass is idempotent: converted nodes are recognised by their layout
// attribute and frontier checks find no mismatches on a second run.
func ConvertLayout(stats *LayoutStats) Pass {
	if stats == nil {
		stats = &LayoutStats{}
	}
	return newPass("convert-layout", func(g *graph.Graph) (bool, error) {
		return convertLayout(g, stats)
	})
}

// LayoutPipeline returns the standard pipeline with ConvertLayout
// appended: the structural simplifications (pad fusion, batch-norm
// folding, activation fusion) run on the NCHW form first, then the
// surviving graph is converted. stats may be nil.
func LayoutPipeline(stats *LayoutStats) *Pipeline {
	p := Default()
	p.Passes = append(p.Passes, ConvertLayout(stats))
	return p
}

// LayoutStats reports what ConvertLayout did, for the inspect tool and
// the layout experiment. Counters accumulate across pipeline iterations;
// NHWCNodes and Remaining reflect the final graph.
type LayoutStats struct {
	NHWCNodes int // nodes executing in NHWC layout
	Inserted  int // frontier Transposes inserted
	Cancelled int // adjacent inverse pairs cancelled
	Elided    int // order-preserving Transposes elided
	Folded    int // boundary Transposes folded into conv gathers
	Remaining int // materialised Transposes left in the graph
}

var (
	permToNHWC = []int{0, 2, 3, 1} // NCHW → NHWC
	permToNCHW = []int{0, 3, 1, 2} // NHWC → NCHW
)

func permEq(p, q []int) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

func rank(v *graph.Value) int { return len(v.Shape) }

// scalarConst reports whether v is a constant broadcasting to every
// element (size 1), which is layout-invariant.
func scalarConst(v *graph.Value) bool {
	if !v.IsConst() {
		return false
	}
	return v.Const.Size() == 1
}

func sameShape(a, b *graph.Value) bool {
	if rank(a) != rank(b) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// transposeOutLayout classifies the value a Transpose produces, so a
// re-run of the pass reconstructs layouts without extra bookkeeping.
func transposeOutLayout(n *graph.Node) string {
	if permEq(n.Attrs.Ints("perm", nil), permToNHWC) {
		return "nhwc"
	}
	return "nchw"
}

func convertLayout(g *graph.Graph, stats *LayoutStats) (bool, error) {
	changed := false

	// Phase 1: decide a layout for every value, walking in topo order so
	// producers are classified before consumers. Values default to "nchw"
	// (graph inputs, constants, outputs of unconverted nodes).
	if err := g.TopoSort(); err != nil {
		return false, err
	}
	layout := make(map[*graph.Value]string)
	nhwcNodes := 0
	markNHWC := func(n *graph.Node) {
		if _, has := n.Attrs["layout"]; !has {
			n.Attrs["layout"] = "nhwc"
			changed = true
		}
		layout[n.Outputs[0]] = "nhwc"
		nhwcNodes++
	}
	for _, n := range g.Nodes {
		switch n.Op {
		case "Conv":
			if rank(n.Inputs[0]) == 4 && len(n.Inputs) >= 2 && n.Inputs[1].IsConst() {
				markNHWC(n)
			}
		case "MaxPool", "AveragePool", "GlobalAveragePool", "Pad":
			if rank(n.Inputs[0]) == 4 {
				markNHWC(n)
			}
		case "BatchNorm":
			// Pre-activation BNs (WRN-style) survive FoldBatchNorm; the
			// kernel applies its per-channel affine on either layout.
			if rank(n.Inputs[0]) == 4 && layout[n.Inputs[0]] == "nhwc" {
				markNHWC(n)
			}
		case "Concat":
			// Convert only a channel concat whose operands are all
			// already NHWC — a mixed concat would trade one layout
			// frontier for several.
			axis := n.Attrs.Int("axis", 1)
			ok := axis == 1 || (axis == 3 && n.Attrs.Str("layout", "") == "nhwc")
			for _, in := range n.Inputs {
				if rank(in) != 4 || in.IsConst() || layout[in] != "nhwc" {
					ok = false
					break
				}
			}
			if ok {
				markNHWC(n)
				n.Attrs["axis"] = 3
			}
		case "Relu", "Relu6", "LeakyRelu", "Sigmoid", "Identity", "Dropout":
			if rank(n.Inputs[0]) == 4 && layout[n.Inputs[0]] == "nhwc" {
				layout[n.Outputs[0]] = "nhwc"
				nhwcNodes++
			}
		case "Add", "Mul":
			// Elementwise with a layout-invariant second operand: a
			// broadcast scalar constant, or a same-shape NHWC value.
			if rank(n.Inputs[0]) == 4 && layout[n.Inputs[0]] == "nhwc" && len(n.Inputs) == 2 {
				b := n.Inputs[1]
				if scalarConst(b) || (!b.IsConst() && sameShape(n.Inputs[0], b) && layout[b] == "nhwc") {
					layout[n.Outputs[0]] = "nhwc"
					nhwcNodes++
				}
			}
		case "Transpose":
			layout[n.Outputs[0]] = transposeOutLayout(n)
		}
	}

	// Phase 2: insert explicit Transposes at layout frontiers. One
	// transpose per (value, target layout), shared across consumers.
	inserted := make(map[*graph.Value]map[string]*graph.Value)
	frontier := func(v *graph.Value, target string) (*graph.Value, error) {
		if m := inserted[v]; m != nil && m[target] != nil {
			return m[target], nil
		}
		perm, suffix := permToNHWC, "nhwc"
		if target == "nchw" {
			perm, suffix = permToNCHW, "nchw"
		}
		out, err := g.Add("Transpose", fmt.Sprintf("%s_to_%s", v.Name, suffix),
			graph.Attrs{"perm": append([]int(nil), perm...)}, v)
		if err != nil {
			return nil, err
		}
		if inserted[v] == nil {
			inserted[v] = make(map[string]*graph.Value)
		}
		inserted[v][target] = out
		layout[out] = target
		stats.Inserted++
		changed = true
		return out, nil
	}
	for _, n := range g.Nodes {
		if n.Op == "Transpose" {
			continue
		}
		for i, in := range n.Inputs {
			if rank(in) != 4 || in.IsConst() {
				continue
			}
			have := layout[in]
			if have == "" {
				have = "nchw"
			}
			want := wantedLayout(n, i)
			if want == "" || want == have {
				continue
			}
			// Skip edges rule 2 below would immediately elide again: the
			// permutation only moves size-1 axes and the consumer reshapes
			// anyway, so no transpose is needed (and inserting one would
			// make the pass non-idempotent).
			if n.Op == "Flatten" || n.Op == "Reshape" {
				perm := permToNHWC
				if want == "nchw" {
					perm = permToNCHW
				}
				if orderPreserving(in.Shape, perm) {
					continue
				}
			}
			tv, err := frontier(in, want)
			if err != nil {
				return changed, err
			}
			n.Inputs[i] = tv
		}
	}
	for i, o := range g.Outputs {
		if rank(o) == 4 && layout[o] == "nhwc" {
			tv, err := frontier(o, "nchw")
			if err != nil {
				return changed, err
			}
			g.Outputs[i] = tv
		}
	}
	if changed {
		// Refresh shapes before folding: the fold rules below reason about
		// element order via the (now NHWC) value shapes.
		if err := g.TopoSort(); err != nil {
			return changed, err
		}
		if err := g.InferShapes(); err != nil {
			return changed, err
		}
	}

	// Phase 3: fold transposes to a fixed point.
	folded := false
	for {
		f, err := foldTransposes(g, stats)
		if err != nil {
			return changed, err
		}
		if !f {
			break
		}
		changed, folded = true, true
	}
	if folded {
		if err := g.TopoSort(); err != nil {
			return changed, err
		}
		if err := g.InferShapes(); err != nil {
			return changed, err
		}
	}

	stats.NHWCNodes = nhwcNodes
	stats.Remaining = 0
	for _, n := range g.Nodes {
		if n.Op == "Transpose" {
			stats.Remaining++
		}
	}
	return changed, nil
}

// wantedLayout returns the layout node n wants for input slot i, or "" if
// the slot is layout-indifferent (non-spatial operands).
func wantedLayout(n *graph.Node, i int) string {
	switch n.Op {
	case "Conv":
		if i != 0 {
			return ""
		}
		if n.Attrs.Str("layout", "") == "nhwc" {
			return n.Attrs.Str("src_layout", "nhwc")
		}
		return "nchw"
	case "MaxPool", "AveragePool", "GlobalAveragePool", "Pad", "Concat", "BatchNorm":
		if i > 0 {
			return "" // per-channel parameter vectors
		}
		if n.Attrs.Str("layout", "") == "nhwc" {
			return "nhwc"
		}
		return "nchw"
	case "Relu", "Relu6", "LeakyRelu", "Sigmoid", "Identity", "Dropout", "Add", "Mul":
		// Elementwise: runs on whatever layout flows in; frontiers never
		// split these edges. (Mixed Add operands were excluded in phase 1.)
		return ""
	}
	// Everything else (Dense, Flatten, Reshape, Softmax, BatchNorm, ...)
	// assumes the NCHW element order.
	return "nchw"
}

// foldTransposes applies one round of the transpose-removal rules and
// reports whether anything changed.
func foldTransposes(g *graph.Graph, stats *LayoutStats) (bool, error) {
	consumers := g.Consumers()
	for _, n := range g.Nodes {
		if n.Op != "Transpose" {
			continue
		}
		perm := n.Attrs.Ints("perm", nil)

		// Rule 1 — pair cancellation: this transpose undoes the transpose
		// producing its input, so both data movements vanish.
		if p := n.Inputs[0].Producer; p != nil && p.Op == "Transpose" {
			prev := p.Attrs.Ints("perm", nil)
			if len(prev) == len(perm) {
				identity := true
				for i := range perm {
					if prev[perm[i]] != i {
						identity = false
						break
					}
				}
				if identity {
					g.ReplaceUses(n.Outputs[0], p.Inputs[0])
					if err := g.RemoveNode(n); err != nil {
						return false, err
					}
					stats.Cancelled++
					removeIfDead(g, p)
					return true, nil
				}
			}
		}

		// Rule 2 — order-preserving elision: the permutation only moves
		// size-1 axes, so the flat element order is unchanged. Consumers
		// must be shape-flattening ops (the value's 4-D shape changes).
		if orderPreserving(n.Inputs[0].Shape, perm) && !isGraphOutput(g, n.Outputs[0]) {
			ok := len(consumers[n.Outputs[0]]) > 0
			for _, c := range consumers[n.Outputs[0]] {
				if c.Op != "Flatten" && c.Op != "Reshape" {
					ok = false
					break
				}
			}
			if ok {
				g.ReplaceUses(n.Outputs[0], n.Inputs[0])
				if err := g.RemoveNode(n); err != nil {
					return false, err
				}
				stats.Elided++
				return true, nil
			}
		}

		// Rule 3 — source fold: an NCHW→NHWC transpose feeding only NHWC
		// GEMM convolutions disappears into their implicit-GEMM gather
		// (src_layout "nchw" reads channel runs with a plane stride).
		if permEq(perm, permToNHWC) && !isGraphOutput(g, n.Outputs[0]) {
			ok := len(consumers[n.Outputs[0]]) > 0
			for _, c := range consumers[n.Outputs[0]] {
				if !foldableNHWCConv(c, n.Outputs[0]) {
					ok = false
					break
				}
			}
			if ok {
				for _, c := range consumers[n.Outputs[0]] {
					c.Attrs["src_layout"] = "nchw"
					c.Inputs[0] = n.Inputs[0]
				}
				if err := g.RemoveNode(n); err != nil {
					return false, err
				}
				stats.Folded++
				return true, nil
			}
		}
	}
	return false, nil
}

// orderPreserving reports whether applying perm to a tensor of the given
// shape leaves the flat element order unchanged — true exactly when the
// axes of size > 1 keep their relative order.
func orderPreserving(shape []int, perm []int) bool {
	if len(shape) != len(perm) {
		return false
	}
	last := -1
	for _, src := range perm {
		if shape[src] == 1 {
			continue
		}
		if src < last {
			return false
		}
		last = src
	}
	return true
}

// foldableNHWCConv reports whether node c is an NHWC convolution that can
// absorb an NCHW input through its gather: v must be its data input, the
// conv must not already carry a folded source, and it must not be
// depthwise (conv.depthwise_nhwc has no strided-gather form; the fold
// would demote it to conv.direct).
func foldableNHWCConv(c *graph.Node, v *graph.Value) bool {
	if c.Op != "Conv" || c.Attrs.Str("layout", "") != "nhwc" ||
		c.Attrs.Str("src_layout", "nhwc") != "nhwc" {
		return false
	}
	if len(c.Inputs) < 2 || c.Inputs[0] != v {
		return false
	}
	w := c.Inputs[1].Shape
	if len(w) != 4 {
		return false
	}
	groups := c.Attrs.Int("group", 1)
	cin, cout := w[1]*groups, w[0]
	depthwise := groups > 1 && groups == cin && cout == cin
	return !depthwise
}

// removeIfDead removes n when nothing consumes its outputs.
func removeIfDead(g *graph.Graph, n *graph.Node) {
	consumers := g.Consumers()
	for _, out := range n.Outputs {
		if len(consumers[out]) > 0 || isGraphOutput(g, out) {
			return
		}
	}
	_ = g.RemoveNode(n)
}
