package tensor

import "fmt"

// Transpose returns a new tensor with dimensions permuted by perm, which
// must be a permutation of [0, rank). The result is contiguous.
func (t *Tensor) Transpose(perm ...int) *Tensor {
	r := len(t.shape)
	if len(perm) != r {
		panic(fmt.Sprintf("tensor: Transpose perm %v does not match rank %d", perm, r))
	}
	seen := make([]bool, r)
	outShape := make([]int, r)
	for i, p := range perm {
		if p < 0 || p >= r || seen[p] {
			panic(fmt.Sprintf("tensor: Transpose perm %v is not a permutation", perm))
		}
		seen[p] = true
		outShape[i] = t.shape[p]
	}
	out := New(outShape...)
	if len(t.data) == 0 {
		return out
	}
	// Strides of the input in its own layout.
	inStride := make([]int, r)
	s := 1
	for i := r - 1; i >= 0; i-- {
		inStride[i] = s
		s *= t.shape[i]
	}
	// Walk the output in order, computing the corresponding input offset.
	idx := make([]int, r)
	for o := range out.data {
		in := 0
		for i := 0; i < r; i++ {
			in += idx[i] * inStride[perm[i]]
		}
		out.data[o] = t.data[in]
		for i := r - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < outShape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// Pad2D spatially pads a NCHW tensor with the constant value, adding
// top/bottom rows and left/right columns. It returns a new tensor of shape
// [N, C, H+top+bottom, W+left+right].
func (t *Tensor) Pad2D(top, bottom, left, right int, value float32) *Tensor {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: Pad2D requires a 4-D NCHW tensor, got shape %v", t.shape))
	}
	if top < 0 || bottom < 0 || left < 0 || right < 0 {
		panic("tensor: Pad2D with negative padding")
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	oh, ow := h+top+bottom, w+left+right
	out := New(n, c, oh, ow)
	if value != 0 {
		out.Fill(value)
	}
	for i := 0; i < n*c; i++ {
		src := t.data[i*h*w : (i+1)*h*w]
		dst := out.data[i*oh*ow : (i+1)*oh*ow]
		for y := 0; y < h; y++ {
			copy(dst[(y+top)*ow+left:(y+top)*ow+left+w], src[y*w:(y+1)*w])
		}
	}
	return out
}

// Concat concatenates tensors along the given axis. All inputs must agree on
// every other dimension.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	r := len(ts[0].shape)
	if axis < 0 {
		axis += r
	}
	if axis < 0 || axis >= r {
		panic(fmt.Sprintf("tensor: Concat axis %d out of range for rank %d", axis, r))
	}
	outShape := cloneInts(ts[0].shape)
	outShape[axis] = 0
	for _, t := range ts {
		if len(t.shape) != r {
			panic("tensor: Concat rank mismatch")
		}
		for i, d := range t.shape {
			if i != axis && d != outShape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch at dim %d: %v vs %v", i, t.shape, outShape))
			}
		}
		outShape[axis] += t.shape[axis]
	}
	out := New(outShape...)
	// outer = product of dims before axis; inner = product after.
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= outShape[i]
	}
	for i := axis + 1; i < r; i++ {
		inner *= outShape[i]
	}
	outRow := outShape[axis] * inner
	off := 0
	for _, t := range ts {
		rowLen := t.shape[axis] * inner
		for o := 0; o < outer; o++ {
			copy(out.data[o*outRow+off:o*outRow+off+rowLen], t.data[o*rowLen:(o+1)*rowLen])
		}
		off += rowLen
	}
	return out
}

// Im2Col unfolds a padded NCHW input into a column matrix for GEMM-based
// convolution. The result has shape [C*kh*kw, N*oh*ow] where each column is
// the receptive field of one output position. pads are (top, left); the
// bottom/right padding is implied by the output size.
func Im2Col(t *Tensor, kh, kw, strideH, strideW, padTop, padLeft, dilationH, dilationW, oh, ow int) *Tensor {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires 4-D input, got %v", t.shape))
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	rows := c * kh * kw
	cols := n * oh * ow
	out := New(rows, cols)
	Im2ColInto(out.data, t.data, n, c, h, w, kh, kw, strideH, strideW, padTop, padLeft, dilationH, dilationW, oh, ow)
	return out
}

// Im2ColInto is the allocation-free core of Im2Col, writing into dst which
// must have length c*kh*kw * n*oh*ow. It is exposed so kernels can reuse
// scratch buffers across runs.
func Im2ColInto(dst, src []float32, n, c, h, w, kh, kw, strideH, strideW, padTop, padLeft, dilationH, dilationW, oh, ow int) {
	cols := n * oh * ow
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				d := dst[row*cols:]
				col := 0
				for b := 0; b < n; b++ {
					base := (b*c + ch) * h * w
					for oy := 0; oy < oh; oy++ {
						iy := oy*strideH - padTop + ky*dilationH
						if iy < 0 || iy >= h {
							for ox := 0; ox < ow; ox++ {
								d[col] = 0
								col++
							}
							continue
						}
						rowBase := base + iy*w
						for ox := 0; ox < ow; ox++ {
							ix := ox*strideW - padLeft + kx*dilationW
							if ix < 0 || ix >= w {
								d[col] = 0
							} else {
								d[col] = src[rowBase+ix]
							}
							col++
						}
					}
				}
			}
		}
	}
}

// SliceDim0 returns a copy of the sub-tensor t[i] along the first dimension.
func (t *Tensor) SliceDim0(i int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: SliceDim0 of scalar")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: SliceDim0 index %d out of range %d", i, t.shape[0]))
	}
	inner := len(t.data) / t.shape[0]
	out := New(t.shape[1:]...)
	copy(out.data, t.data[i*inner:(i+1)*inner])
	return out
}
