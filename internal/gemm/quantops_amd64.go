//go:build amd64 && !noasm

package gemm

// AVX2 dispatch for the activation-quantization helpers. Both reuse the
// fp32 kernel's CPUID/XGETBV probe; the asm routines handle the aligned
// body and the Go wrappers finish the tail scalar-wise.

func init() {
	if hasAVX2FMA() {
		minMaxImpl = minMaxF32AVX2Wrap
		quantizeU8Impl = quantizeU8AVX2Wrap
	}
}

// minMaxF32AVX2 reduces n elements (n ≥ 8, any remainder beyond the last
// full 8-lane block is handled by the caller). Implemented in
// quantops_amd64.s.
//
//go:noescape
func minMaxF32AVX2(v *float32, n int64) (lo, hi float32)

// quantizeU8AVX2 quantizes n elements where n is a multiple of 32.
// Implemented in quantops_amd64.s.
//
//go:noescape
func quantizeU8AVX2(dst *byte, src *float32, n int64, inv, zf float32)

func minMaxF32AVX2Wrap(v []float32) (lo, hi float32) {
	n := len(v) &^ 7
	if n == 0 {
		return minMaxF32Go(v)
	}
	lo, hi = minMaxF32AVX2(&v[0], int64(n))
	for _, x := range v[n:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func quantizeU8AVX2Wrap(dst []byte, src []float32, inv, zf float32) {
	n := len(src) &^ 31
	if n > 0 {
		quantizeU8AVX2(&dst[0], &src[0], int64(n), inv, zf)
	}
	quantizeU8Go(dst[n:], src[n:], inv, zf)
}
