package ops

import (
	"testing"

	"orpheus/internal/tensor"
)

// quantCloseEnough compares an int8-tier output against the fp32
// reference on a quantization budget instead of fp32 bit-closeness: the
// max absolute divergence must stay within a small fraction of the
// reference's own dynamic range (symmetric s8 weights carry ~1/63
// relative error, u8 activations ~1/255 of their range, and errors
// accumulate sub-linearly over K).
func quantCloseEnough(t *testing.T, name string, got, ref *tensor.Tensor) {
	t.Helper()
	var amax float32
	for _, v := range ref.Data() {
		if v < 0 {
			v = -v
		}
		if v > amax {
			amax = v
		}
	}
	tol := 0.05*float64(amax) + 1e-3
	if d := tensor.MaxAbsDiff(got, ref); d > tol {
		t.Errorf("%s diverges from fp32 reference: max diff %g, quant budget %g (ref max %g)", name, d, tol, amax)
	}
}

// TestConvInt8WithinQuantTolerance runs conv.im2col_int8 over every
// geometry of the fp32 equivalence matrix it supports and holds it to a
// quantization tolerance against conv.direct — the int8 counterpart of
// TestConvKernelEquivalence, which excludes quantized kernels.
func TestConvInt8WithinQuantTolerance(t *testing.T) {
	k := ByName("conv.im2col_int8")
	if k == nil {
		t.Fatal("conv.im2col_int8 not registered")
	}
	if !IsQuantized(k) {
		t.Fatal("conv.im2col_int8 must register as quantized")
	}
	supported := 0
	for _, tc := range convMatrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			inputs := tc.tensors(tensor.SeedFromString(tc.name))
			n := buildNode(t, "Conv", tc.attrs(), inputs...)
			if !k.Supports(n) {
				t.Skip("geometry unsupported by the int8 tier")
			}
			supported++
			ref := runKernel(t, "conv.direct", "Conv", tc.attrs(), inputs...)
			got := runKernel(t, "conv.im2col_int8", "Conv", tc.attrs(), inputs...)
			quantCloseEnough(t, "conv.im2col_int8", got, ref)
		})
	}
}

// TestDenseInt8WithinQuantTolerance is the dense counterpart: the
// transposed int8 product must match dense.gemm on the quantization
// budget for single samples and batches, with and without bias.
func TestDenseInt8WithinQuantTolerance(t *testing.T) {
	k := ByName("dense.gemm_int8")
	if k == nil {
		t.Fatal("dense.gemm_int8 not registered")
	}
	if !IsQuantized(k) {
		t.Fatal("dense.gemm_int8 must register as quantized")
	}
	cases := []struct {
		name        string
		batch, m, n int
		bias        bool
		act         string
	}{
		{"single", 1, 10, 64, false, ""},
		{"single-bias", 1, 7, 33, true, ""},
		{"batch4-relu", 4, 16, 128, true, "relu"},
		{"batch3-odd", 3, 5, 100, false, ""},
		{"deep", 2, 12, 1024, true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tensor.NewRNG(tensor.SeedFromString(tc.name))
			x := tensor.Rand(r, -2, 2, tc.batch, tc.n)
			w := tensor.Rand(r, -1, 1, tc.m, tc.n)
			inputs := []*tensor.Tensor{x, w}
			if tc.bias {
				inputs = append(inputs, tensor.Rand(r, -1, 1, tc.m))
			}
			attrs := map[string]any{}
			if tc.act != "" {
				attrs["activation"] = tc.act
			}
			ref := runKernel(t, "dense.gemm", "Dense", attrs, inputs...)
			got := runKernel(t, "dense.gemm_int8", "Dense", attrs, inputs...)
			quantCloseEnough(t, "dense.gemm_int8", got, ref)
		})
	}
}
