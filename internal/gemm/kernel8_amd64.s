//go:build !noasm

#include "textflag.h"

// func microKernel8x8I8AVX2(pa *int8, pb *byte, acc *int32, kq, ldc int64, store bool)
//
// 8x8 int32 accumulator block from k-quad packed int8 panels. Per quad:
// Y8 holds the 8 columns' u8 quads (32 bytes); each row broadcasts its s8
// quad into a YMM, VPMADDUBSW forms the u8×s8 pair products (exact under
// the |weight| <= 63 contract), VPMADDWD against a ones vector pair-sums
// them into eight int32 lanes, and VPADDD folds them into the row's
// accumulator. Two temp pairs (Y9/Y10, Y11/Y13) interleave adjacent rows
// to hide the 3-op dependency chains.
TEXT ·microKernel8x8I8AVX2(SB), NOSPLIT, $0-41
	MOVQ pa+0(FP), SI
	MOVQ pb+8(FP), DX
	MOVQ acc+16(FP), DI
	MOVQ kq+24(FP), CX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8             // row stride in bytes

	// Y12 = sixteen int16 ones (VPMADDWD pair-sum operand).
	VPCMPEQW Y12, Y12, Y12
	VPSRLW   $15, Y12, Y12

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

i8loop:
	VMOVDQU (DX), Y8        // 8 columns x 4 k bytes
	PREFETCHT0 512(DX)
	PREFETCHT0 512(SI)

	VPBROADCASTD 0(SI), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y12, Y10, Y10
	VPADDD       Y10, Y0, Y0

	VPBROADCASTD 4(SI), Y11
	VPMADDUBSW   Y11, Y8, Y13
	VPMADDWD     Y12, Y13, Y13
	VPADDD       Y13, Y1, Y1

	VPBROADCASTD 8(SI), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y12, Y10, Y10
	VPADDD       Y10, Y2, Y2

	VPBROADCASTD 12(SI), Y11
	VPMADDUBSW   Y11, Y8, Y13
	VPMADDWD     Y12, Y13, Y13
	VPADDD       Y13, Y3, Y3

	VPBROADCASTD 16(SI), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y12, Y10, Y10
	VPADDD       Y10, Y4, Y4

	VPBROADCASTD 20(SI), Y11
	VPMADDUBSW   Y11, Y8, Y13
	VPMADDWD     Y12, Y13, Y13
	VPADDD       Y13, Y5, Y5

	VPBROADCASTD 24(SI), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y12, Y10, Y10
	VPADDD       Y10, Y6, Y6

	VPBROADCASTD 28(SI), Y11
	VPMADDUBSW   Y11, Y8, Y13
	VPMADDWD     Y12, Y13, Y13
	VPADDD       Y13, Y7, Y7

	ADDQ $32, SI
	ADDQ $32, DX
	DECQ CX
	JNZ  i8loop

	MOVBLZX store+40(FP), AX
	TESTB   AL, AL
	JZ      i8accum

	VMOVDQU Y0, (DI)
	ADDQ    R8, DI
	VMOVDQU Y1, (DI)
	ADDQ    R8, DI
	VMOVDQU Y2, (DI)
	ADDQ    R8, DI
	VMOVDQU Y3, (DI)
	ADDQ    R8, DI
	VMOVDQU Y4, (DI)
	ADDQ    R8, DI
	VMOVDQU Y5, (DI)
	ADDQ    R8, DI
	VMOVDQU Y6, (DI)
	ADDQ    R8, DI
	VMOVDQU Y7, (DI)
	VZEROUPPER
	RET

i8accum:
	VPADDD  (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y1, Y1
	VMOVDQU Y1, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y4, Y4
	VMOVDQU Y4, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y6, Y6
	VMOVDQU Y6, (DI)
	ADDQ    R8, DI
	VPADDD  (DI), Y7, Y7
	VMOVDQU Y7, (DI)
	VZEROUPPER
	RET

// func microKernel8x16VNNI(pa *int8, pb *byte, acc *int32, kq, ldc int64, store bool)
//
// 8x16 int32 accumulator block with AVX-512 VNNI. Per quad: Z8 holds the
// 16 columns' u8 quads (64 bytes) and each row issues a single
// VPDPBUSD.BCST — the row's s8 quad broadcast straight from the packed A
// panel as the signed operand — accumulating 64 multiply-adds per
// instruction.
TEXT ·microKernel8x16VNNI(SB), NOSPLIT, $0-41
	MOVQ pa+0(FP), SI
	MOVQ pb+8(FP), DX
	MOVQ acc+16(FP), DI
	MOVQ kq+24(FP), CX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8             // row stride in bytes

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

vnniloop:
	VMOVDQU64 (DX), Z8      // 16 columns x 4 k bytes
	PREFETCHT0 512(DX)
	PREFETCHT0 512(SI)

	VPDPBUSD.BCST 0(SI), Z8, Z0
	VPDPBUSD.BCST 4(SI), Z8, Z1
	VPDPBUSD.BCST 8(SI), Z8, Z2
	VPDPBUSD.BCST 12(SI), Z8, Z3
	VPDPBUSD.BCST 16(SI), Z8, Z4
	VPDPBUSD.BCST 20(SI), Z8, Z5
	VPDPBUSD.BCST 24(SI), Z8, Z6
	VPDPBUSD.BCST 28(SI), Z8, Z7

	ADDQ $32, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  vnniloop

	MOVBLZX store+40(FP), AX
	TESTB   AL, AL
	JZ      vnniaccum

	VMOVDQU32 Z0, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z1, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z2, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z3, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z4, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z5, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z6, (DI)
	ADDQ      R8, DI
	VMOVDQU32 Z7, (DI)
	VZEROUPPER
	RET

vnniaccum:
	VPADDD    (DI), Z0, Z0
	VMOVDQU32 Z0, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z1, Z1
	VMOVDQU32 Z1, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z2, Z2
	VMOVDQU32 Z2, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z3, Z3
	VMOVDQU32 Z3, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z4, Z4
	VMOVDQU32 Z4, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z5, Z5
	VMOVDQU32 Z5, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z6, Z6
	VMOVDQU32 Z6, (DI)
	ADDQ      R8, DI
	VPADDD    (DI), Z7, Z7
	VMOVDQU32 Z7, (DI)
	VZEROUPPER
	RET
