package ops

import (
	"fmt"
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Softmax over the given axis (default 1, the class dimension of [N, C]
// logits). Numerically stabilised by subtracting the row maximum.
func init() {
	Register(NewOverwritingKernel("softmax.direct", "Softmax", nil, runSoftmax))
}

func runSoftmax(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x := in[0]
	shape := x.Shape()
	axis := n.Attrs.Int("axis", 1)
	if axis < 0 {
		axis += len(shape)
	}
	if axis < 0 || axis >= len(shape) {
		return fmt.Errorf("Softmax axis %d out of range for shape %v", n.Attrs.Int("axis", 1), shape)
	}
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= shape[i]
	}
	for i := axis + 1; i < len(shape); i++ {
		inner *= shape[i]
	}
	c := shape[axis]
	xd, yd := x.Data(), out[0].Data()
	for o := 0; o < outer; o++ {
		for in0 := 0; in0 < inner; in0++ {
			base := o*c*inner + in0
			maxV := float32(math.Inf(-1))
			for j := 0; j < c; j++ {
				if v := xd[base+j*inner]; v > maxV {
					maxV = v
				}
			}
			var sum float64
			for j := 0; j < c; j++ {
				e := math.Exp(float64(xd[base+j*inner] - maxV))
				yd[base+j*inner] = float32(e)
				sum += e
			}
			invSum := float32(1 / sum)
			for j := 0; j < c; j++ {
				yd[base+j*inner] *= invSum
			}
		}
	}
	return nil
}
