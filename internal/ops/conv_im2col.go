package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// conv.im2col — GEMM convolution. The input is unfolded into a column
// matrix (im2col) and multiplied by the reshaped weight matrix with the
// packed GEMM. This is the Orpheus production path: the paper notes
// "Orpheus uses GEMM convolution, which pays off for big matrices".
//
// Groups are handled per (batch, group) block; a pure depthwise conv is
// better served by conv.depthwise (this kernel still computes it
// correctly, just slowly).
func init() {
	Register(NewKernel("conv.im2col", "Conv", nil, runConvIm2col))
}

func runConvIm2col(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	return convIm2col(ctx, n, in, out, false)
}

// convIm2col implements both conv.im2col (parallel=false honours
// ctx.Workers through gemm.Parallel) and the per-group path reused by
// conv.group_im2col.
func convIm2col(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor, forceNaiveGemm bool) error {
	p, err := resolveConv(n)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	kdim := cinG * p.kh * p.kw
	cols := p.oh * p.ow

	// Pointwise fast path: a 1x1 stride-1 unpadded convolution is exactly
	// C[cout×HW] = W[cout×cin] · X[cin×HW]; the unfold would be a copy.
	if p.kh == 1 && p.kw == 1 && p.sh == 1 && p.sw == 1 && p.dh == 1 && p.dw == 1 &&
		p.padT == 0 && p.padL == 0 && p.padB == 0 && p.padR == 0 && p.groups == 1 && !forceNaiveGemm {
		for b := 0; b < p.n; b++ {
			src := x[b*p.cin*cols : (b+1)*p.cin*cols]
			dst := y[b*p.cout*cols : (b+1)*p.cout*cols]
			if ctx.Workers > 1 {
				gemm.Parallel(w, src, dst, p.cout, cols, p.cin, ctx.Workers)
			} else {
				ctx.Gemm.Packed(w, src, dst, p.cout, cols, p.cin)
			}
		}
		if bias != nil {
			addBiasNCHW(y, bias, p.n, p.cout, cols)
		}
		applyActivation(y, p.activation, p.alpha)
		return nil
	}

	colBuf := ctx.Scratch("conv.im2col:"+n.Name, kdim*cols)

	for b := 0; b < p.n; b++ {
		for g := 0; g < p.groups; g++ {
			// The group's input channels are contiguous within one batch
			// image: offset (b*cin + g*cinG)*h*w.
			src := x[(b*p.cin+g*cinG)*p.h*p.w:]
			tensor.Im2ColInto(colBuf, src, 1, cinG, p.h, p.w,
				p.kh, p.kw, p.sh, p.sw, p.padT, p.padL, p.dh, p.dw, p.oh, p.ow)
			// Weight rows for this group are contiguous: [coutG, kdim].
			wg := w[g*coutG*kdim : (g+1)*coutG*kdim]
			dst := y[(b*p.cout+g*coutG)*cols : (b*p.cout+(g+1)*coutG)*cols]
			if forceNaiveGemm {
				gemm.Naive(wg, colBuf, dst, coutG, cols, kdim)
			} else if ctx.Workers > 1 {
				gemm.Parallel(wg, colBuf, dst, coutG, cols, kdim, ctx.Workers)
			} else {
				ctx.Gemm.Packed(wg, colBuf, dst, coutG, cols, kdim)
			}
		}
	}
	if bias != nil {
		addBiasNCHW(y, bias, p.n, p.cout, cols)
	}
	applyActivation(y, p.activation, p.alpha)
	return nil
}

// addBiasNCHW adds bias[c] to every spatial element of channel c.
func addBiasNCHW(y, bias []float32, n, c, spatial int) {
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			bv := bias[ch]
			row := y[(b*c+ch)*spatial : (b*c+ch+1)*spatial]
			for i := range row {
				row[i] += bv
			}
		}
	}
}
