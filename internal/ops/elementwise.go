package ops

import (
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Binary elementwise operators (residual additions, scaling). Shapes must
// match exactly, or the second operand may be a single-element tensor
// (scalar broadcast).
func init() {
	Register(NewOverwritingKernel("add.direct", "Add", nil, runAdd))
	Register(NewOverwritingKernel("mul.direct", "Mul", nil, runMul))
}

func runAdd(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	a, b, y := in[0].Data(), in[1].Data(), out[0].Data()
	if len(b) == 1 {
		s := b[0]
		for i, v := range a {
			y[i] = v + s
		}
	} else {
		for i, v := range a {
			y[i] = v + b[i]
		}
	}
	// The fusion pass folds a following activation into Add regardless of
	// operand shape, so the scalar-broadcast path must apply it too.
	applyActivation(y, n.Attrs.Str("activation", ""), float32(n.Attrs.Float("alpha", 0.01)))
	return nil
}

func runMul(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	a, b, y := in[0].Data(), in[1].Data(), out[0].Data()
	if len(b) == 1 {
		s := b[0]
		for i, v := range a {
			y[i] = v * s
		}
		return nil
	}
	for i, v := range a {
		y[i] = v * b[i]
	}
	return nil
}
