package passes

import (
	"context"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// convBNRelu builds x -> conv -> bn -> relu -> output, the canonical
// fusion target, with an optional Identity and Pad sprinkled in.
func convBNRelu(t testing.TB, withIdentity, withPad bool) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(11)
	g := graph.New("cbr")
	x, err := g.Input("x", []int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	cur := x
	if withPad {
		cur, _ = g.Add("Pad", "pad0", graph.Attrs{"pads": []int{1, 1, 1, 1}}, cur)
	}
	w, _ := g.Const("w", tensor.HeNormal(r, 8, 3, 3, 3))
	pads := []int{1, 1, 1, 1}
	if withPad {
		pads = []int{0, 0, 0, 0}
	}
	c, _ := g.Add("Conv", "conv", graph.Attrs{"pads": pads}, cur, w)
	scale, _ := g.Const("bn_s", tensor.Rand(r, 0.5, 1.5, 8))
	beta, _ := g.Const("bn_b", tensor.Rand(r, -0.5, 0.5, 8))
	mean, _ := g.Const("bn_m", tensor.Rand(r, -0.5, 0.5, 8))
	variance, _ := g.Const("bn_v", tensor.Rand(r, 0.5, 2, 8))
	bn, _ := g.Add("BatchNorm", "bn", graph.Attrs{"epsilon": 1e-5}, c, scale, beta, mean, variance)
	cur = bn
	if withIdentity {
		cur, _ = g.Add("Identity", "id0", nil, cur)
	}
	relu, _ := g.Add("Relu", "relu", nil, cur)
	if err := g.MarkOutput(relu); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func evaluate(t testing.TB, g *graph.Graph, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	plan, err := runtime.Compile(g, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{g.Inputs[0].Name: x})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		return v.Clone()
	}
	t.Fatal("no outputs")
	return nil
}

func TestDefaultPipelinePreservesSemantics(t *testing.T) {
	g := convBNRelu(t, true, true)
	x := tensor.Rand(tensor.NewRNG(1), -1, 1, 1, 3, 8, 8)
	want := evaluate(t, g, x)

	opt := g.Clone()
	if err := opt.Finalize(); err != nil {
		t.Fatal(err)
	}
	applied, err := Default().Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) == 0 {
		t.Fatal("pipeline applied no passes to an obviously optimisable graph")
	}
	got := evaluate(t, opt, x)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("optimised graph diverges: %g", tensor.MaxAbsDiff(got, want))
	}
	// Structure: pad, bn, identity and relu must all be gone; a single
	// fused conv remains.
	counts := opt.OpCounts()
	if counts["BatchNorm"] != 0 || counts["Identity"] != 0 || counts["Pad"] != 0 || counts["Relu"] != 0 {
		t.Fatalf("leftover nodes after optimisation: %v", counts)
	}
	if counts["Conv"] != 1 || len(opt.Nodes) != 1 {
		t.Fatalf("expected a single fused conv, got %v", counts)
	}
	conv := opt.Nodes[0]
	if conv.Attrs.Str("activation", "") != "relu" {
		t.Fatal("relu not fused into conv")
	}
	if got := conv.Attrs.Ints("pads", nil); got[0] != 1 || got[1] != 1 {
		t.Fatalf("pad not folded into conv: %v", got)
	}
	if len(conv.Inputs) != 3 {
		t.Fatal("BN fold should have introduced a conv bias")
	}
}

func TestFoldBatchNormNumericalIdentity(t *testing.T) {
	g := convBNRelu(t, false, false)
	x := tensor.Rand(tensor.NewRNG(2), -1, 1, 1, 3, 8, 8)
	want := evaluate(t, g, x)
	opt := g.Clone()
	_ = opt.Finalize()
	changed, err := FoldBatchNorm().Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("FoldBatchNorm found nothing to fold")
	}
	if err := opt.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := evaluate(t, opt, x)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("BN fold changed numerics: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestFoldBatchNormSkipsSharedConvOutput(t *testing.T) {
	// conv output feeds both BN and a second consumer: folding would
	// change the second consumer's view, so the pass must skip it.
	r := tensor.NewRNG(3)
	g := graph.New("shared")
	x, _ := g.Input("x", []int{1, 2, 4, 4})
	w, _ := g.Const("w", tensor.HeNormal(r, 2, 2, 1, 1))
	c, _ := g.Add("Conv", "conv", nil, x, w)
	scale, _ := g.Const("s", tensor.Full(1, 2))
	beta, _ := g.Const("b", tensor.New(2))
	mean, _ := g.Const("m", tensor.New(2))
	variance, _ := g.Const("v", tensor.Full(1, 2))
	bn, _ := g.Add("BatchNorm", "bn", nil, c, scale, beta, mean, variance)
	other, _ := g.Add("Relu", "other", nil, c)
	sum, _ := g.Add("Add", "sum", nil, bn, other)
	_ = g.MarkOutput(sum)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	changed, err := FoldBatchNorm().Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("FoldBatchNorm folded through a multiply-consumed conv output")
	}
}

func TestFuseActivationSkipsGraphOutputProducer(t *testing.T) {
	// conv output is itself a graph output: fusing relu into it would
	// change that output.
	r := tensor.NewRNG(4)
	g := graph.New("convout")
	x, _ := g.Input("x", []int{1, 2, 4, 4})
	w, _ := g.Const("w", tensor.HeNormal(r, 2, 2, 1, 1))
	c, _ := g.Add("Conv", "conv", nil, x, w)
	relu, _ := g.Add("Relu", "relu", nil, c)
	_ = g.MarkOutput(c)
	_ = g.MarkOutput(relu)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	changed, err := FuseActivation().Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("FuseActivation fused into a node whose output is a graph output")
	}
}

func TestFuseActivationOnAdd(t *testing.T) {
	g := graph.New("addrelu")
	a, _ := g.Input("a", []int{1, 4})
	b, _ := g.Input("b", []int{1, 4})
	s, _ := g.Add("Add", "sum", nil, a, b)
	relu, _ := g.Add("Relu", "relu", nil, s)
	_ = g.MarkOutput(relu)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	changed, err := FuseActivation().Run(g)
	if err != nil || !changed {
		t.Fatalf("Add+Relu not fused: changed=%v err=%v", changed, err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	plan, _ := runtime.Compile(g, runtime.Options{})
	sess := runtime.NewSession(plan)
	out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{
		"a": tensor.FromSlice([]float32{-1, 2, -3, 4}, 1, 4),
		"b": tensor.FromSlice([]float32{0, -5, 1, 1}, 1, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 5}
	for _, v := range out {
		for i, got := range v.Data() {
			if got != want[i] {
				t.Fatalf("fused add+relu[%d] = %v, want %v", i, got, want[i])
			}
		}
	}
}

func TestFoldConstants(t *testing.T) {
	// A const-only subgraph (relu of a const) collapses to a const.
	g := graph.New("constfold")
	x, _ := g.Input("x", []int{1, 2}) // also keep a live input path
	cval, _ := g.Const("c", tensor.FromSlice([]float32{-1, 3}, 1, 2))
	crelu, _ := g.Add("Relu", "crelu", nil, cval)
	sum, _ := g.Add("Add", "sum", nil, x, crelu)
	_ = g.MarkOutput(sum)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	changed, err := FoldConstants().Run(g)
	if err != nil || !changed {
		t.Fatalf("constants not folded: changed=%v err=%v", changed, err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.OpCounts()["Relu"] != 0 {
		t.Fatal("const relu not removed")
	}
	out := evaluate(t, g, tensor.FromSlice([]float32{10, 10}, 1, 2))
	want := []float32{10, 13} // relu(-1,3) = (0,3)
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("folded graph out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestEliminateDeadRemovesChains(t *testing.T) {
	g := graph.New("dead")
	x, _ := g.Input("x", []int{1, 4})
	live, _ := g.Add("Relu", "live", nil, x)
	d1, _ := g.Add("Relu", "dead1", nil, x)
	_, _ = g.Add("Relu", "dead2", nil, d1)
	_ = g.MarkOutput(live)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	changed, err := EliminateDead().Run(g)
	if err != nil || !changed {
		t.Fatalf("dead chain not removed: %v", err)
	}
	if len(g.Nodes) != 1 {
		t.Fatalf("nodes after dead elimination = %d, want 1", len(g.Nodes))
	}
}

func TestPipelineIdempotent(t *testing.T) {
	g := convBNRelu(t, true, true)
	if _, err := Default().Run(g); err != nil {
		t.Fatal(err)
	}
	before := len(g.Nodes)
	applied, err := Default().Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 {
		t.Fatalf("second pipeline run still applied: %v", applied)
	}
	if len(g.Nodes) != before {
		t.Fatal("second run changed node count")
	}
}

func TestFusePadRequiresZeroValue(t *testing.T) {
	r := tensor.NewRNG(5)
	g := graph.New("padval")
	x, _ := g.Input("x", []int{1, 1, 4, 4})
	p, _ := g.Add("Pad", "pad", graph.Attrs{"pads": []int{1, 1, 1, 1}, "value": 1.0}, x)
	w, _ := g.Const("w", tensor.HeNormal(r, 1, 1, 3, 3))
	c, _ := g.Add("Conv", "conv", nil, p, w)
	_ = g.MarkOutput(c)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	changed, err := FusePad().Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("non-zero Pad must not fold into Conv zero-padding")
	}
}
