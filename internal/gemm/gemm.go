// Package gemm implements single-precision general matrix multiply, the
// computational core of GEMM-based convolution and dense layers in
// Orpheus.
//
// Three implementations are provided, mirroring the tiers an edge inference
// framework typically carries:
//
//   - Naive: textbook triple loop; the correctness reference.
//   - Blocked: cache-blocked loop nest with an ikj inner order.
//   - Packed (Context.Run): panel packing plus a register-blocked
//     micro-kernel; the production path used by the Orpheus backend. It
//     supports overwrite (beta=0) semantics and prepacked constant
//     operands, and scales across a persistent worker Pool.
//
// The packed tier's micro-kernel is chosen at runtime by CPU-feature
// dispatch (see kernel.go): AVX2/FMA 8x8 assembly on amd64, NEON 8x8 on
// arm64, and a portable pure-Go 4x8 kernel as the fallback — also
// selectable via the noasm build tag or ORPHEUS_GEMM_KERNEL=go.
// KernelName, KernelNames and SetKernel expose the selection.
//
// All operate on row-major dense matrices described by flat []float32
// slices. Dimensions are validated by the exported entry points; the inner
// kernels assume valid arguments.
package gemm

import "fmt"

func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// validate panics if the slice lengths cannot hold the described matrices.
func validate(a, b, c []float32, m, n, k int) {
	if m < 0 || n < 0 || k < 0 {
		panicf("gemm: negative dimension m=%d n=%d k=%d", m, n, k)
	}
	if m == 0 || n == 0 || k == 0 {
		// Nothing to compute; empty buffers are fine.
		return
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panicf("gemm: buffer too small for m=%d n=%d k=%d (lenA=%d lenB=%d lenC=%d)",
			m, n, k, len(a), len(b), len(c))
	}
}

// Naive computes C += A·B with the textbook triple loop. A is m×k, B is
// k×n, C is m×n, all row-major.
func Naive(a, b, c []float32, m, n, k int) {
	validate(a, b, c, m, n, k)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] += s
		}
	}
}

// Blocked computes C += A·B using cache blocking with an i-k-j inner order,
// which streams B rows and keeps a C row hot. Block sizes match the packed
// tier's panel constants so the two tiers see the same cache working set.
// The inner loop is branch-free: inference matrices are dense, so skipping
// zero A values costs more in mispredictions than it saves in arithmetic.
func Blocked(a, b, c []float32, m, n, k int) {
	validate(a, b, c, m, n, k)
	for jj := 0; jj < n; jj += ncBlock {
		jmax := min(jj+ncBlock, n)
		for pp := 0; pp < k; pp += kcBlock {
			pmax := min(pp+kcBlock, k)
			for ii := 0; ii < m; ii += mcBlock {
				imax := min(ii+mcBlock, m)
				for i := ii; i < imax; i++ {
					ci := c[i*n : i*n+n]
					ai := a[i*k : i*k+k]
					for p := pp; p < pmax; p++ {
						av := ai[p]
						bp := b[p*n : p*n+n]
						for j := jj; j < jmax; j++ {
							ci[j] += av * bp[j]
						}
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
