package quant

// Quantization helpers for the executable int8 GEMM tier (internal/gemm's
// CallInt8), as opposed to the fake-quant measurement path in quant.go.

// QMaxGemm is the symmetric weight bound of the int8 GEMM tier. Weights
// are clamped to [-63, 63] (7 significant bits) rather than the full int8
// range so that every u8×s8 pair product the AVX2 VPMADDUBSW kernel forms
// stays within int16 (2·255·63 = 32130 < 32767): the saturating
// instruction can then never saturate, and the pure-Go, AVX2 and VNNI
// kernels all produce bit-identical int32 accumulators. The half-bit of
// extra weight rounding error is far below the activation quantization
// error.
const QMaxGemm = 63

// QuantizeRowsInto quantizes the rows×per float matrix w per-row symmetric
// into data (len ≥ rows*per) with one scale per row (scales len ≥ rows):
// data[r][i] = clamp(round(w[r][i]/scales[r]), ±qmax), scales[r] =
// max|w[r]|/qmax. All-zero rows get scale 1 so they round-trip to zero.
// Use QMaxGemm for weights destined for the int8 GEMM tier.
func QuantizeRowsInto(data []int8, scales []float32, w []float32, rows, per int, qmax int32) {
	fq := float32(qmax)
	for r := 0; r < rows; r++ {
		row := w[r*per : (r+1)*per]
		var maxAbs float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / fq
		if scale == 0 {
			scale = 1
		}
		scales[r] = scale
		inv := 1 / scale
		out := data[r*per : (r+1)*per]
		for i, v := range row {
			f := v * inv
			var q int32
			if f >= 0 {
				q = int32(f + 0.5)
			} else {
				q = -int32(0.5 - f)
			}
			if q > qmax {
				q = qmax
			} else if q < -qmax {
				q = -qmax
			}
			out[i] = int8(q)
		}
	}
}
