package orpheus

import (
	"context"
	"fmt"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// batchCells enumerates the batched-vs-looped equivalence sweep. Every zoo
// model runs on the native backend; the full backend matrix (framework
// simulations included, which exercise the dynamic-allocation and
// direct-conv paths) runs on the smallest model so the sweep stays within
// CI budget. The big ImageNet models get a trimmed n-sweep for the same
// reason — the batched code path is identical across n, only the runtime
// grows.
var batchCells = []struct {
	model, backendName string
	workers            int
	batches            []int
}{
	{"wrn-40-2", "orpheus", 1, []int{1, 2, 3, 8}},
	{"mobilenet-v1", "orpheus", 1, []int{1, 2, 3, 8}},
	{"resnet-18", "orpheus", 1, []int{1, 2}},
	{"inception-v3", "orpheus", 1, []int{1, 2}},
	{"resnet-50", "orpheus", 1, []int{1, 2}},
	{"wrn-40-2", "orpheus-heuristic", 1, []int{1, 2, 3, 8}},
	{"wrn-40-2", "orpheus-tuned", 1, []int{1, 2}},
	{"wrn-40-2", "tvm-sim", 1, []int{1, 2, 3, 8}},
	{"wrn-40-2", "torch-sim", 1, []int{1, 2, 3, 8}},
	{"wrn-40-2", "tflite-sim", 2, []int{1, 2, 3, 8}},
	{"resnet-18", "darknet-sim", 1, []int{1, 2}},
	{"wrn-40-2", "orpheus", 4, []int{1, 2, 3, 8}}, // multi-worker batch×tile path
}

// TestBatchedMatchesLooped asserts the tentpole invariant: a batched
// inference is numerically identical to the same samples predicted one by
// one through the same compiled session.
func TestBatchedMatchesLooped(t *testing.T) {
	for _, cell := range batchCells {
		cell := cell
		name := fmt.Sprintf("%s/%s", cell.model, cell.backendName)
		if cell.workers > 1 {
			name = fmt.Sprintf("%s/workers%d", name, cell.workers)
		}
		t.Run(name, func(t *testing.T) {
			if testing.Short() && cell.model != "wrn-40-2" {
				t.Skip("short mode: wrn-40-2 only")
			}
			maxN := 0
			for _, n := range cell.batches {
				if n > maxN {
					maxN = n
				}
			}
			m, err := BuildZooModel(cell.model)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := m.Compile(WithBackend(cell.backendName), WithWorkers(cell.workers), WithMaxBatch(maxN))
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]*Tensor, maxN)
			want := make([]*Tensor, maxN)
			for i := range inputs {
				inputs[i] = RandomTensor(uint64(100+i), m.InputShape()...)
				out, err := sess.Predict(context.Background(), inputs[i])
				if err != nil {
					t.Fatal(err)
				}
				want[i] = out
			}
			for _, n := range cell.batches {
				got, err := sess.PredictBatch(context.Background(), inputs[:n])
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				for i := 0; i < n; i++ {
					if !tensor.AllClose(got[i], want[i], 0) {
						t.Errorf("n=%d sample %d: batched output diverged from looped Predict (max diff %g)",
							n, i, tensor.MaxAbsDiff(got[i], want[i]))
					}
				}
			}
		})
	}
}

// TestBatchSizeInterleaving runs one session through a shuffled sequence
// of batch sizes and checks nothing bleeds between the per-batch-size
// prebound bindings.
func TestBatchSizeInterleaving(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Compile(WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*Tensor, 4)
	want := make([]*Tensor, 4)
	for i := range inputs {
		inputs[i] = RandomTensor(uint64(7+i), m.InputShape()...)
		out, err := sess.Predict(context.Background(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	for _, n := range []int{4, 1, 3, 4, 2, 1, 4} {
		got, err := sess.PredictBatch(context.Background(), inputs[:n])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if !tensor.AllClose(got[i], want[i], 0) {
				t.Fatalf("n=%d sample %d diverged after batch-size interleaving", n, i)
			}
		}
	}
}

// TestRebatchWithBakedReshape covers the ONNX-style graph whose Reshape
// target bakes the build-time batch into its leading dim ([1, C*H*W]):
// shape inference's batch fallback must reinterpret that dim as
// batch-relative when the graph is rebatched, and batched execution must
// still match looped prediction.
func TestRebatchWithBakedReshape(t *testing.T) {
	r := tensor.NewRNG(17)
	g := graph.New("baked-reshape")
	x, err := g.Input("x", []int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := g.Const("w", tensor.HeNormal(r, 6, 3, 3, 3))
	c, _ := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}, "activation": "relu"}, x, w)
	rs, _ := g.Add("Reshape", "reshape", graph.Attrs{"shape": []int{1, 6 * 8 * 8}}, c)
	wd, _ := g.Const("wd", tensor.HeNormal(r, 5, 6*8*8))
	d, _ := g.Add("Dense", "fc", nil, rs, wd)
	if err := g.MarkOutput(d); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	sess, err := FromGraph(g).Compile(WithMaxBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*Tensor, 3)
	want := make([]*Tensor, 3)
	for i := range inputs {
		inputs[i] = RandomTensor(uint64(50+i), 1, 3, 8, 8)
		out, err := sess.Predict(context.Background(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	got, err := sess.PredictBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !tensor.AllClose(got[i], want[i], 0) {
			t.Errorf("sample %d diverged through the rebatched Reshape", i)
		}
	}
}

// TestRebatchWithInferredFlatten covers the other exporter idiom: a
// flatten written as Reshape [1, -1]. A strict inference would silently
// fold the runtime batch into the inferred dim ([1, n·C·H·W] instead of
// [n, C·H·W]) under WithMaxBatch, producing wrong per-sample outputs; the
// inferred-dim batch fallback must keep the leading dim on the batch. The
// dense layer after the flatten makes the failure structural (its shape
// check rejects the folded form), and the numeric sweep pins per-sample
// equality.
func TestRebatchWithInferredFlatten(t *testing.T) {
	r := tensor.NewRNG(23)
	g := graph.New("inferred-flatten")
	x, err := g.Input("x", []int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := g.Const("w", tensor.HeNormal(r, 6, 3, 3, 3))
	c, _ := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}, "activation": "relu"}, x, w)
	rs, _ := g.Add("Reshape", "reshape", graph.Attrs{"shape": []int{1, -1}}, c)
	wd, _ := g.Const("wd", tensor.HeNormal(r, 5, 6*8*8))
	d, _ := g.Add("Dense", "fc", nil, rs, wd)
	if err := g.MarkOutput(d); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	sess, err := FromGraph(g).Compile(WithMaxBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*Tensor, 3)
	want := make([]*Tensor, 3)
	for i := range inputs {
		inputs[i] = RandomTensor(uint64(80+i), 1, 3, 8, 8)
		out, err := sess.Predict(context.Background(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	for _, n := range []int{3, 2} {
		got, err := sess.PredictBatch(context.Background(), inputs[:n])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if !tensor.AllClose(got[i], want[i], 0) {
				t.Errorf("n=%d sample %d diverged through the inferred-dim Reshape", n, i)
			}
		}
	}
}

// TestReshapeMistypeStillErrors pins down the Reshape batch fallback's
// gate: a genuinely wrong target volume on a plain batch-1 graph must
// keep failing shape inference, not be silently reinterpreted.
func TestReshapeMistypeStillErrors(t *testing.T) {
	g := graph.New("bad-reshape")
	x, err := g.Input("x", []int{1, 30})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := g.Add("Reshape", "reshape", graph.Attrs{"shape": []int{1, 10}}, x)
	if err := g.MarkOutput(rs); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err == nil {
		t.Fatal("mistyped Reshape target [1,10] over 30 elements accepted")
	}
}

// TestPredictBatchValidation covers the batch-limit and shape errors of
// the batched facade.
func TestPredictBatchValidation(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithMaxBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(1, m.InputShape()...)
	if _, err := sess.PredictBatch(context.Background(), nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := sess.PredictBatch(context.Background(), []*Tensor{x, x, x}); err == nil {
		t.Error("batch above MaxBatch accepted")
	}
	if _, err := sess.PredictBatch(context.Background(), []*Tensor{NewTensor(2, 2)}); err == nil {
		t.Error("wrong-volume input accepted")
	}
	if _, err := sess.PredictBatchInto(context.Background(), []*Tensor{nil}, []*Tensor{x, x}); err == nil {
		t.Error("mismatched destination count accepted")
	}
	if _, err := sess.PredictBatchInto(context.Background(), []*Tensor{NewTensor(3)}, []*Tensor{x}); err == nil {
		t.Error("wrong-volume destination accepted")
	}
	// Runtime-level: a raw Run above MaxBatch must be rejected too.
	big := RandomTensor(2, 3, m.InputShape()[1], m.InputShape()[2], m.InputShape()[3])
	if _, err := sess.Run(context.Background(), map[string]*Tensor{m.InputName(): big}); err == nil {
		t.Error("Run with batch above MaxBatch accepted")
	}
}
