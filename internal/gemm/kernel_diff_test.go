package gemm

import (
	"fmt"
	"testing"

	"orpheus/internal/tensor"
)

// Differential tests for the SIMD micro-kernels: every selectable kernel
// must match the portable pure-Go kernel at ≤ 1e-5 relative tolerance on
// the same Call, across odd shapes, edge tails, strided batched calls,
// store-vs-accumulate modes, prepacked operands and the pool path. The
// pure-Go kernel is itself checked against Naive elsewhere
// (TestPackedMatchesNaive), so agreement here pins the whole chain.

// withKernel runs fn with the named kernel active, restoring the previous
// selection afterwards.
func withKernel(t testing.TB, name string, fn func()) {
	t.Helper()
	prev := KernelName()
	if err := SetKernel(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

// simdKernelNames returns the selectable kernels other than the pure-Go
// reference, skipping the test when none exist (noasm build or an
// unsupported CPU).
func simdKernelNames(t testing.TB) []string {
	var names []string
	for _, n := range KernelNames() {
		if n != goKernel.name {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		t.Skip("no SIMD kernels selectable on this CPU/build")
	}
	return names
}

// diffCase is one Call shape in the differential battery.
type diffCase struct {
	m, n, k int
	batch   int // 0 = unbatched
	padB    int // extra elements between batched B images
	padC    int // extra elements between batched C images
}

var diffCases = []diffCase{
	{m: 1, n: 1, k: 1},
	{m: 3, n: 5, k: 7},    // everything smaller than a tile
	{m: 4, n: 8, k: 4},    // exactly one go-kernel tile
	{m: 8, n: 8, k: 8},    // exactly one SIMD tile
	{m: 7, n: 9, k: 5},    // tails on both tile edges
	{m: 9, n: 17, k: 3},   // one past tile boundaries
	{m: 16, n: 24, k: 32}, // multiple full tiles, no tails
	{m: 5, n: 8, k: 0},    // empty shared dimension
	{m: 63, n: 65, k: 127},
	{m: 33, n: 7, k: 129},
	{m: 130, n: 258, k: 300}, // crosses every macro-block boundary
	{m: 200, n: 12, k: 500},  // deep K, narrow N
	{m: 5, n: 6, k: 9, batch: 3},
	{m: 8, n: 8, k: 16, batch: 4, padB: 3, padC: 5},
	{m: 130, n: 36, k: 40, batch: 2, padC: 1},
}

func (dc diffCase) String() string {
	s := fmt.Sprintf("m%d_n%d_k%d", dc.m, dc.n, dc.k)
	if dc.batch > 1 {
		s += fmt.Sprintf("_b%d", dc.batch)
	}
	return s
}

// variant selects how the Call is executed and which operand is prepacked.
type variant struct {
	name    string
	packA   bool
	packB   bool
	workers int // 0 = Context.Run, else Pool.Run
}

var diffVariants = []variant{
	{name: "raw"},
	{name: "packedA", packA: true},
	{name: "packedB", packB: true},
	{name: "pool3", workers: 3},
	{name: "pool3-packedA", packA: true, workers: 3},
}

// runDiffCall executes one case+variant under the active kernel into a
// fresh copy of cInit, prepacking operands under that same kernel.
func runDiffCall(dc diffCase, v variant, a, b, cInit []float32, store bool) []float32 {
	images := dc.batch
	if images < 2 {
		images = 1
	}
	c := Call{M: dc.m, N: dc.n, K: dc.k, Store: store}
	if dc.batch > 1 {
		c.Batch = dc.batch
		c.StrideB = dc.k*dc.n + dc.padB
		c.StrideC = dc.m*dc.n + dc.padC
	}
	c.A, c.B = a, b
	c.C = append([]float32(nil), cInit...)
	if v.packA && dc.k > 0 {
		c.PackedA = PrepackA(a, dc.m, dc.k)
		c.A = nil
	}
	// PackedB is incompatible with batched calls; fall back to raw B.
	if v.packB && dc.k > 0 && dc.batch <= 1 {
		c.PackedB = PrepackB(b, dc.k, dc.n)
		c.B = nil
	}
	if v.workers > 0 {
		var ctx Context
		Shared().Run(&ctx, c, v.workers)
	} else {
		var ctx Context
		ctx.Run(c)
	}
	return c.C
}

// relDiffOK checks |got-want| ≤ tol·max(1, |got|, |want|) element-wise and
// returns the first offending index, or -1.
func relDiffOK(got, want []float32, tol float64) int {
	for i := range want {
		d := float64(got[i]) - float64(want[i])
		if d < 0 {
			d = -d
		}
		scale := 1.0
		if v := float64(want[i]); v > scale {
			scale = v
		} else if v < -scale {
			scale = -v
		}
		if g := float64(got[i]); g > scale {
			scale = g
		} else if g < -scale {
			scale = -g
		}
		if d > tol*scale {
			return i
		}
	}
	return -1
}

// diffBuffers builds shared random operands and a non-trivial initial C
// (exercising the accumulate path against pre-existing values).
func diffBuffers(dc diffCase, seed uint64) (a, b, cInit []float32) {
	images := dc.batch
	if images < 2 {
		images = 1
	}
	r := tensor.NewRNG(seed)
	a = randMat(r, dc.m, dc.k)
	lenB := dc.k * dc.n
	lenC := dc.m * dc.n
	if dc.batch > 1 {
		lenB = (images-1)*(dc.k*dc.n+dc.padB) + dc.k*dc.n
		lenC = (images-1)*(dc.m*dc.n+dc.padC) + dc.m*dc.n
	}
	b = make([]float32, lenB)
	for i := range b {
		b[i] = r.Uniform(-1, 1)
	}
	cInit = make([]float32, lenC)
	for i := range cInit {
		cInit[i] = r.Uniform(-1, 1)
	}
	return a, b, cInit
}

func TestKernelDifferential(t *testing.T) {
	const tol = 1e-5
	for _, simd := range simdKernelNames(t) {
		for _, dc := range diffCases {
			for _, v := range diffVariants {
				for _, store := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/%s/store=%v", simd, dc, v.name, store)
					t.Run(name, func(t *testing.T) {
						a, b, cInit := diffBuffers(dc, uint64(dc.m*1000+dc.n*10+dc.k))
						var want, got []float32
						withKernel(t, goKernel.name, func() {
							want = runDiffCall(dc, v, a, b, cInit, store)
						})
						withKernel(t, simd, func() {
							got = runDiffCall(dc, v, a, b, cInit, store)
						})
						if i := relDiffOK(got, want, tol); i >= 0 {
							t.Fatalf("kernel %s diverges from go at C[%d]: got %v want %v",
								simd, i, got[i], want[i])
						}
					})
				}
			}
		}
	}
}

// TestKernelSelection pins the dispatch API: "go" is always selectable,
// unknown names error without changing the selection, and SetKernel
// round-trips every advertised name.
func TestKernelSelection(t *testing.T) {
	prev := KernelName()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	names := KernelNames()
	if len(names) == 0 || names[0] != "go" {
		t.Fatalf("KernelNames() = %v, want \"go\" first", names)
	}
	for _, n := range names {
		if err := SetKernel(n); err != nil {
			t.Fatalf("SetKernel(%q): %v", n, err)
		}
		if got := KernelName(); got != n {
			t.Fatalf("KernelName() = %q after SetKernel(%q)", got, n)
		}
	}
	if err := SetKernel("no-such-kernel"); err == nil {
		t.Fatal("SetKernel with unknown name should error")
	}
	if got := KernelName(); got != names[len(names)-1] {
		t.Fatalf("failed SetKernel changed selection to %q", got)
	}
}

// FuzzKernelDifferential fuzzes shapes, seeds and modes through every SIMD
// kernel against the pure-Go reference. The seed corpus covers tile
// boundaries; the fuzzer explores tails and batch striding from there.
func FuzzKernelDifferential(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint64(7), false, uint8(0), uint8(0))
	f.Add(uint8(8), uint8(8), uint8(8), uint64(1), true, uint8(0), uint8(0))
	f.Add(uint8(7), uint8(9), uint8(13), uint64(3), false, uint8(2), uint8(3))
	f.Add(uint8(130), uint8(66), uint8(40), uint64(9), true, uint8(3), uint8(1))
	f.Add(uint8(4), uint8(16), uint8(0), uint64(2), true, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, m, n, k uint8, seed uint64, store bool, batch, pad uint8) {
		dc := diffCase{
			m: int(m%150) + 1, n: int(n%150) + 1, k: int(k % 200),
			batch: int(batch % 4), padB: int(pad % 8), padC: int(pad % 5),
		}
		a, b, cInit := diffBuffers(dc, seed)
		for _, simd := range simdKernelNames(t) {
			for _, v := range diffVariants {
				var want, got []float32
				withKernel(t, goKernel.name, func() {
					want = runDiffCall(dc, v, a, b, cInit, store)
				})
				withKernel(t, simd, func() {
					got = runDiffCall(dc, v, a, b, cInit, store)
				})
				if i := relDiffOK(got, want, 1e-5); i >= 0 {
					t.Fatalf("kernel %s variant %s %v store=%v diverges at C[%d]: got %v want %v",
						simd, v.name, dc, store, i, got[i], want[i])
				}
			}
		}
	})
}
