package ops

import (
	"sync"

	"orpheus/internal/faultinject"
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
)

// ctxKey scopes scratch and constant-cache entries to a (kind, node) pair.
// Keys are composite values, not concatenated strings, so hot-path lookups
// allocate nothing.
type ctxKey struct {
	kind string
	node *graph.Node
}

// ConstCache holds run-invariant derived constants — prepacked GEMM weight
// panels, Winograd weight transforms, transposed dense weights — keyed by
// (kind, node). It is safe for concurrent use. Every Session compiled from
// one Plan shares a single ConstCache, so N pooled serving sessions pack
// each weight exactly once instead of once per session. Two sessions
// racing on a miss both compute the (identical, deterministic) value and
// one store wins; that is benign.
type ConstCache struct {
	mu sync.RWMutex
	m  map[ctxKey][]float32
	q  map[ctxKey]*Int8Weights
}

// Int8Weights is a ConstCache entry for the quantized execution tier: a
// weight matrix quantized per output channel to the int8 GEMM contract
// ([-63, 63], quant.QMaxGemm), prepacked into the int8 panel layout, with
// the per-row scales and quantized-row sums the requantize epilogue needs.
// For grouped convolution, Packed holds the groups' panel buffers back to
// back and Scales/RowSums cover all cout rows.
type Int8Weights struct {
	Packed  []int8
	Scales  []float32
	RowSums []int32
}

// Bytes returns the entry's memory footprint.
func (w *Int8Weights) Bytes() int64 {
	return int64(len(w.Packed)) + int64(len(w.Scales))*4 + int64(len(w.RowSums))*4
}

// NewConstCache returns an empty cache.
func NewConstCache() *ConstCache {
	return &ConstCache{m: make(map[ctxKey][]float32), q: make(map[ctxKey]*Int8Weights)}
}

func (cc *ConstCache) get(k ctxKey) []float32 {
	cc.mu.RLock()
	buf := cc.m[k]
	cc.mu.RUnlock()
	return buf
}

// put stores buf and reports whether the key was previously absent.
func (cc *ConstCache) put(k ctxKey, buf []float32) bool {
	cc.mu.Lock()
	_, existed := cc.m[k]
	cc.m[k] = buf
	cc.mu.Unlock()
	return !existed
}

func (cc *ConstCache) getInt8(k ctxKey) *Int8Weights {
	cc.mu.RLock()
	w := cc.q[k]
	cc.mu.RUnlock()
	return w
}

// putInt8 stores w and reports whether the key was previously absent.
func (cc *ConstCache) putInt8(k ctxKey, w *Int8Weights) bool {
	cc.mu.Lock()
	if cc.q == nil {
		cc.q = make(map[ctxKey]*Int8Weights)
	}
	_, existed := cc.q[k]
	cc.q[k] = w
	cc.mu.Unlock()
	return !existed
}

// Bytes returns the total footprint of the cached constants, fp32 and
// int8 entries alike.
func (cc *ConstCache) Bytes() int64 {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	var total int64
	for _, b := range cc.m {
		total += int64(len(b)) * 4
	}
	for _, w := range cc.q {
		total += w.Bytes()
	}
	return total
}

// Ctx carries per-session execution state into kernels: the worker count,
// the GEMM packing context and worker pool, the shared constant cache and
// a keyed scratch-buffer pool.
//
// Scratch buffers let kernels such as im2col reuse their unfold buffers
// across inference runs instead of reallocating. The torch-sim backend sets
// DisableScratchReuse to model a framework that allocates per operator
// call; the memory-planner ablation (experiment A3) measures the cost of
// that choice.
type Ctx struct {
	// Workers is the number of goroutines kernels may use. 1 reproduces
	// the paper's single-core evaluation.
	Workers int

	// DisableScratchReuse forces a fresh allocation on every Scratch call
	// and disables constant-weight pack caching, reproducing the seed's
	// per-call packing in the framework simulations.
	DisableScratchReuse bool

	// Gemm is this session's packing context for GEMM-based kernels; it
	// supplies the caller's share of panel scratch on the parallel path.
	Gemm gemm.Context

	// Consts is the constant cache shared by every session of a plan.
	// When nil a private cache is created on first use.
	Consts *ConstCache

	// Fault is the optional fault-injection hook the runtime consults at
	// every plan-step boundary (inject panics, errors and latency by
	// step/model/probability). Nil — the production default — costs one
	// pointer comparison per step; no build tag gates the hook.
	Fault *faultinject.Injector

	// convSrc is the implicit-GEMM pack source conv.im2col points its
	// Calls at. Kernels within a session run sequentially and GEMM blocks
	// until the call completes, so one reusable value per session keeps
	// the hot path free of allocations (an interface over a fresh struct
	// would heap-allocate every run).
	convSrc convPackSrc

	// convSrcA is the NHWC-tier A-side pack source conv.im2col_nhwc points
	// its Calls at, reusable per session like convSrc.
	convSrcA convPackSrcA

	// convSrc8 and denseSrc8 are the quantizing pack sources of the int8
	// kernels, reusable per session for the same reason.
	convSrc8  convPackSrc8
	denseSrc8 densePackSrc8

	scratch map[ctxKey][]float32

	// ScratchBytes accumulates the bytes handed out by Scratch and newly
	// stored by PutCache, for the memory-footprint experiments.
	ScratchBytes int64
}

// NewCtx returns a context with the given worker count (minimum 1).
func NewCtx(workers int) *Ctx {
	if workers < 1 {
		workers = 1
	}
	return &Ctx{Workers: workers, scratch: make(map[ctxKey][]float32)}
}

// GEMM executes one GEMM call: single-threaded on the session's packing
// context when the worker budget is 1, otherwise tiled across the
// process-wide persistent worker pool with the caller participating.
func (c *Ctx) GEMM(call gemm.Call) {
	if c.Workers > 1 {
		gemm.Shared().Run(&c.Gemm, call, c.Workers)
		return
	}
	c.Gemm.Run(call)
}

// GEMM8 executes one quantized GEMM call with the same worker routing as
// GEMM.
func (c *Ctx) GEMM8(call gemm.CallInt8) {
	if c.Workers > 1 {
		gemm.Shared().RunInt8(&c.Gemm, call, c.Workers)
		return
	}
	c.Gemm.RunInt8(call)
}

// Sweep applies an optional per-channel bias and a fused activation over
// an NCHW tensor laid out as rows×rowLen (rows = batch×channels, bias
// indexed by row%len(bias); bias may be nil). With a multi-worker budget
// the sweep is spread across the shared GEMM worker pool instead of
// running as a single-threaded loop. Kernels whose output comes straight
// from a GEMM should fuse the epilogue into the Call instead; Sweep
// serves the ones that cannot (direct, Winograd, depthwise,
// spatial-pack) and the explicit im2col comparison path.
func (c *Ctx) Sweep(y, bias []float32, rows, rowLen int, act string, alpha float32) {
	a := gemmActivation(act)
	if bias == nil && a == gemm.ActNone {
		return
	}
	if c.Workers > 1 {
		gemm.Shared().Sweep(y, bias, rows, rowLen, a, alpha, c.Workers)
		return
	}
	gemm.SweepRows(y, bias, rows, rowLen, a, alpha)
}

func (c *Ctx) consts() *ConstCache {
	if c.Consts == nil {
		c.Consts = NewConstCache()
	}
	return c.Consts
}

// Cache returns the persistent buffer stored for (kind, n), or nil. Unlike
// Scratch buffers, cached buffers keep their contents between calls;
// kernels use them for run-invariant precomputation such as Winograd
// weight transforms and prepacked GEMM weight panels.
func (c *Ctx) Cache(kind string, n *graph.Node) []float32 {
	if c.Consts == nil {
		return nil
	}
	return c.Consts.get(ctxKey{kind, n})
}

// PutCache stores buf persistently for (kind, n). The bytes are charged to
// ScratchBytes only when the entry is new, so sessions sharing a cache do
// not double-count.
func (c *Ctx) PutCache(kind string, n *graph.Node, buf []float32) {
	if c.consts().put(ctxKey{kind, n}, buf) {
		c.ScratchBytes += int64(len(buf)) * 4
	}
}

// CacheInt8 returns the quantized-weight entry stored for (kind, n), or
// nil.
func (c *Ctx) CacheInt8(kind string, n *graph.Node) *Int8Weights {
	if c.Consts == nil {
		return nil
	}
	return c.Consts.getInt8(ctxKey{kind, n})
}

// PutCacheInt8 stores w persistently for (kind, n), charging ScratchBytes
// only for new entries like PutCache.
func (c *Ctx) PutCacheInt8(kind string, n *graph.Node, w *Int8Weights) {
	if c.consts().putInt8(ctxKey{kind, n}, w) {
		c.ScratchBytes += w.Bytes()
	}
}

// Scratch returns a zeroed float32 buffer of length size, reused across
// calls with the same (kind, n) unless DisableScratchReuse is set.
func (c *Ctx) Scratch(kind string, n *graph.Node, size int) []float32 {
	buf := c.scratchBuf(kind, n, size)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// ScratchUninit is Scratch without the zero-fill, for kernels that write
// every element before reading any (im2col unfolds, Winograd transform
// domains). The contents are whatever the previous use left behind.
func (c *Ctx) ScratchUninit(kind string, n *graph.Node, size int) []float32 {
	return c.scratchBuf(kind, n, size)
}

func (c *Ctx) scratchBuf(kind string, n *graph.Node, size int) []float32 {
	if c.DisableScratchReuse {
		c.ScratchBytes += int64(size) * 4
		return make([]float32, size)
	}
	if c.scratch == nil {
		c.scratch = make(map[ctxKey][]float32)
	}
	key := ctxKey{kind, n}
	buf := c.scratch[key]
	if cap(buf) < size {
		buf = make([]float32, size)
		c.scratch[key] = buf
		c.ScratchBytes += int64(size) * 4
	}
	return buf[:size]
}

// PeakScratchBytes returns the total bytes currently retained by the
// scratch pool.
func (c *Ctx) PeakScratchBytes() int64 {
	var total int64
	for _, b := range c.scratch {
		total += int64(cap(b)) * 4
	}
	return total
}
