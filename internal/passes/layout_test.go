package passes

import (
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// countOp returns how many nodes of the given op the graph holds.
func countOp(g *graph.Graph, op string) int {
	c := 0
	for _, n := range g.Nodes {
		if n.Op == op {
			c++
		}
	}
	return c
}

// relDiff returns the max elementwise difference between a and b relative
// to max(1, |a|, |b|).
func relDiff(a, b *tensor.Tensor) float64 {
	ad, bd := a.Data(), b.Data()
	var worst float64
	for i := range ad {
		d := float64(ad[i]) - float64(bd[i])
		if d < 0 {
			d = -d
		}
		scale := 1.0
		for _, v := range []float64{float64(ad[i]), float64(bd[i])} {
			if v < 0 {
				v = -v
			}
			if v > scale {
				scale = v
			}
		}
		if d/scale > worst {
			worst = d / scale
		}
	}
	return worst
}

// runLayout optimises a clone of g through LayoutPipeline and returns the
// converted graph plus the collected stats.
func runLayout(t testing.TB, g *graph.Graph) (*graph.Graph, *LayoutStats) {
	t.Helper()
	stats := &LayoutStats{}
	opt := g.Clone()
	if err := opt.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := LayoutPipeline(stats).Run(opt); err != nil {
		t.Fatal(err)
	}
	return opt, stats
}

func TestConvertLayoutStraightLine(t *testing.T) {
	g := convBNRelu(t, true, true)
	x := tensor.Rand(tensor.NewRNG(2), -1, 1, 1, 3, 8, 8)
	want := evaluate(t, g, x)

	opt, stats := runLayout(t, g)
	// The boundary transpose folds into the conv's gather and the output
	// side is rank-2-free... the conv output IS the graph output here, so
	// exactly one closing transpose may remain — assert the stats balance.
	if stats.NHWCNodes == 0 {
		t.Fatal("no nodes converted to NHWC")
	}
	for _, n := range opt.Nodes {
		if n.Op == "Conv" {
			if n.Attrs.Str("layout", "") != "nhwc" {
				t.Fatalf("conv %s not converted: %v", n.Name, n.Attrs)
			}
			if n.Attrs.Str("src_layout", "") != "nchw" {
				t.Fatalf("boundary transpose not folded into conv %s: %v", n.Name, n.Attrs)
			}
		}
	}
	if stats.Remaining != 1 {
		t.Fatalf("want exactly the closing output transpose, got %d remaining (stats %+v)", stats.Remaining, stats)
	}
	got := evaluate(t, opt, x)
	if d := relDiff(got, want); d > 1e-5 {
		t.Fatalf("NHWC output diverges: rel diff %g", d)
	}
}

// branchyGraph builds an inception-style block: a stem conv fanning out
// into three branches (1x1 conv, 3x3 conv, maxpool+1x1) concatenated over
// channels, then pooled to a classifier.
func branchyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(5)
	g := graph.New("branchy")
	x, err := g.Input("x", []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	conv := func(name string, in *graph.Value, cin, cout, k, pad int) *graph.Value {
		w, _ := g.Const(name+".w", tensor.HeNormal(r, cout, cin, k, k))
		b, _ := g.Const(name+".b", tensor.Rand(r, -0.1, 0.1, cout))
		v, err := g.Add("Conv", name, graph.Attrs{"pads": []int{pad, pad, pad, pad}, "activation": "relu"}, in, w, b)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	stem := conv("stem", x, 3, 8, 3, 1)
	b1 := conv("b1", stem, 8, 4, 1, 0)
	b2 := conv("b2", stem, 8, 6, 3, 1)
	mp, _ := g.Add("MaxPool", "b3.pool", graph.Attrs{"kernel": []int{3, 3}, "strides": []int{1, 1}, "pads": []int{1, 1, 1, 1}}, stem)
	b3 := conv("b3", mp, 8, 4, 1, 0)
	cat, _ := g.Add("Concat", "cat", graph.Attrs{"axis": 1}, b1, b2, b3)
	head := conv("head", cat, 14, 10, 1, 0)
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, head)
	fl, _ := g.Add("Flatten", "flatten", nil, gap)
	if err := g.MarkOutput(fl); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConvertLayoutBranchyCancelsTransposes(t *testing.T) {
	g := branchyGraph(t)
	x := tensor.Rand(tensor.NewRNG(6), -1, 1, 1, 3, 16, 16)
	want := evaluate(t, g, x)

	opt, stats := runLayout(t, g)
	if n := countOp(opt, "Transpose"); n != 0 {
		t.Fatalf("branchy graph should carry zero transposes, has %d (stats %+v)", n, stats)
	}
	for _, n := range opt.Nodes {
		if n.Op == "Concat" && n.Attrs.Int("axis", 1) != 3 {
			t.Fatalf("concat axis not rewritten for NHWC: %v", n.Attrs)
		}
	}
	if stats.Folded == 0 {
		t.Fatalf("expected the input boundary transpose to fold, stats %+v", stats)
	}
	got := evaluate(t, opt, x)
	if d := relDiff(got, want); d > 1e-5 {
		t.Fatalf("NHWC output diverges: rel diff %g", d)
	}
}

func TestConvertLayoutOutputFrontierRemains(t *testing.T) {
	// A conv whose NHWC output is the graph output: the closing
	// NHWC→NCHW transpose cannot cancel and must materialise.
	r := tensor.NewRNG(7)
	g := graph.New("convout")
	x, _ := g.Input("x", []int{1, 3, 8, 8})
	w, _ := g.Const("w", tensor.HeNormal(r, 5, 3, 3, 3))
	c, _ := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w)
	if err := g.MarkOutput(c); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	in := tensor.Rand(tensor.NewRNG(8), -1, 1, 1, 3, 8, 8)
	want := evaluate(t, g, in)

	opt, stats := runLayout(t, g)
	if n := countOp(opt, "Transpose"); n != 1 {
		t.Fatalf("want exactly 1 output transpose, got %d (stats %+v)", n, stats)
	}
	got := evaluate(t, opt, in)
	if d := relDiff(got, want); d > 1e-5 {
		t.Fatalf("NHWC output diverges: rel diff %g", d)
	}
	// And the output shape contract must still be NCHW.
	if s := opt.Outputs[0].Shape; !tensor.ShapeEq(s, []int{1, 5, 8, 8}) {
		t.Fatalf("output shape %v, want NCHW [1 5 8 8]", s)
	}
}

func TestConvertLayoutIdempotent(t *testing.T) {
	g := branchyGraph(t)
	stats := &LayoutStats{}
	opt := g.Clone()
	if err := opt.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := LayoutPipeline(stats).Run(opt); err != nil {
		t.Fatal(err)
	}
	// A second full pipeline over the converted graph must be a no-op.
	pass := ConvertLayout(stats)
	changed, err := pass.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("ConvertLayout not idempotent: second run reported changes")
	}
}

// TestConvertLayoutZoo is the acceptance sweep: every zoo model converts
// with zero materialised transposes and matches its NCHW answer to 1e-5.
func TestConvertLayoutZoo(t *testing.T) {
	for _, m := range zoo.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			if testing.Short() && (m.Name == "inception-v3" || m.Name == "resnet-50") {
				t.Skip("short mode")
			}
			g, err := m.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			ref := g.Clone()
			if _, err := Default().Run(ref); err != nil {
				t.Fatal(err)
			}
			opt, stats := runLayout(t, g)
			if stats.Remaining != 0 {
				t.Errorf("%s: %d transposes remain (stats %+v)", m.Name, stats.Remaining, stats)
			}
			if stats.NHWCNodes == 0 {
				t.Errorf("%s: nothing converted", m.Name)
			}
			x := tensor.Rand(tensor.NewRNG(tensor.SeedFromString(m.Name)), -1, 1, m.InputShape...)
			want := evaluate(t, ref, x)
			got := evaluate(t, opt, x)
			if d := relDiff(got, want); d > 1e-5 {
				t.Errorf("%s: NHWC output diverges: rel diff %g", m.Name, d)
			}
		})
	}
}
