package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/graph"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// Config parameterises one pipeline stage.
type Config struct {
	// Model is the model name exchanged in handshakes; peers refuse to
	// pair across different models.
	Model string
	// Graph is the full (unpartitioned) model graph. The server derives
	// its own stage subgraph from Index/Count, so every stage can be
	// started from the same model file with nothing but a different
	// -shard flag.
	Graph *graph.Graph
	// Index is this stage's 0-based position; Count the total number of
	// stages.
	Index, Count int
	// Backend names the execution backend ("orpheus" if empty).
	Backend string
	// Workers is the kernel goroutine budget per inference (<=0: 1).
	Workers int
	// Next is the downstream stage's address; empty marks the terminal
	// stage, which streams results to its collector instead.
	Next string
	// Int8Wire quantizes outgoing boundary activations to u8 frames —
	// 4× less transfer per cut, at quantization precision.
	Int8Wire bool
	// Depth bounds in-flight requests inside the stage: frames beyond it
	// queue in the kernel socket buffer, giving natural backpressure all
	// the way to the driver. <=0 means 4.
	Depth int
	// StageTimeout bounds one request's compute on this stage (<=0: no
	// deadline beyond the driver's).
	StageTimeout time.Duration
	// MaxFrame bounds one frame's payload (<=0: DefaultMaxFrame).
	MaxFrame int
	// DialBackoff is the initial backoff for downstream dials, doubling
	// to 32× per retry (<=0: 50ms).
	DialBackoff time.Duration
}

// Stats is a point-in-time snapshot of a stage's counters.
type Stats struct {
	// Processed counts requests executed by this stage.
	Processed int64
	// Errors counts requests that failed here (including timeouts).
	Errors int64
	// Forwarded counts error frames from upstream passed through.
	Forwarded int64
	// Dropped counts result frames lost because no collector was
	// attached when they completed.
	Dropped int64
}

// job is one unit of stage work, decoded off the feed connection.
type job struct {
	seq    uint64
	inputs map[string]*tensor.Tensor
	// err, when set, is an upstream failure to pass through in stream
	// order instead of executing anything.
	err *RemoteError
	// drain marks the end of the feed stream: forward the drain mark
	// downstream and finish.
	drain bool
}

// Server runs one stage of a sharded pipeline: it accepts a feed
// connection, executes its subgraph over each activation frame with
// bounded in-flight depth, and forwards boundary activations to the
// next stage (or results to the collector on the terminal stage).
type Server struct {
	cfg  Config
	pool *runtime.SessionPool
	in   []TensorDesc
	out  []TensorDesc

	ln   net.Listener
	work chan job
	quit chan struct{}

	mu         sync.Mutex
	feed       *frameConn
	collector  *frameConn
	collAttach chan struct{} // closed and replaced when a collector attaches
	down       *frameConn

	conns  sync.WaitGroup
	worker sync.WaitGroup
	closed atomic.Bool

	processed atomic.Int64
	errors    atomic.Int64
	forwarded atomic.Int64
	dropped   atomic.Int64
}

// New partitions cfg.Graph into cfg.Count stages, compiles stage
// cfg.Index on the configured backend and returns a server ready to
// Serve. Every stage of a pipeline derives the same partition from the
// same model, so the only cross-stage coordination is the handshake.
func New(cfg Config) (*Server, error) {
	if cfg.Count < 1 || cfg.Index < 0 || cfg.Index >= cfg.Count {
		return nil, fmt.Errorf("shard: invalid shard %d/%d", cfg.Index+1, cfg.Count)
	}
	if cfg.Graph == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	if cfg.Model == "" {
		cfg.Model = cfg.Graph.Name
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	res, err := passes.PartitionPipeline(cfg.Graph, cfg.Count)
	if err != nil {
		return nil, err
	}
	sub := res.Shards[cfg.Index]
	name := cfg.Backend
	if name == "" {
		name = "orpheus"
	}
	be, err := backend.ByName(name)
	if err != nil {
		return nil, err
	}
	plan, err := be.PrepareWith(sub, backend.PrepareOpts{Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("shard: preparing stage %d/%d: %w", cfg.Index+1, cfg.Count, err)
	}
	s := &Server{
		cfg:        cfg,
		pool:       runtime.NewSessionPool(plan),
		in:         descsOf(plan.InputDescs()),
		out:        descsOf(plan.OutputDescs()),
		work:       make(chan job, cfg.Depth),
		quit:       make(chan struct{}),
		collAttach: make(chan struct{}),
	}
	return s, nil
}

// descsOf projects runtime IO descriptors onto the wire's TensorDesc.
func descsOf(ds []runtime.IODesc) []TensorDesc {
	out := make([]TensorDesc, len(ds))
	for i, d := range ds {
		out[i] = TensorDesc{Name: d.Name, Shape: d.Shape}
	}
	return out
}

// Plan exposes the stage's compiled plan — the hook the stress battery
// uses to inject faults with runtime.Plan.SetFault.
func (s *Server) Plan() *runtime.Plan { return s.pool.Plan() }

// Inputs returns the stage's boundary input descriptors.
func (s *Server) Inputs() []TensorDesc { return s.in }

// Outputs returns the stage's boundary output descriptors.
func (s *Server) Outputs() []TensorDesc { return s.out }

// Stats snapshots the stage counters.
func (s *Server) Stats() Stats {
	return Stats{
		Processed: s.processed.Load(),
		Errors:    s.errors.Load(),
		Forwarded: s.forwarded.Load(),
		Dropped:   s.dropped.Load(),
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts stage connections on ln until Close. The worker that
// executes the subgraph starts with the first accepted feed and runs
// until the server drains.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.worker.Add(1)
	go s.runWorker()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return fmt.Errorf("shard: accept: %w", err)
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handleConn(c)
		}()
	}
}

// Addr returns the listener address once Serve has begun, for tests and
// harnesses that listen on port 0.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// handleConn performs the handshake and runs the connection's role
// loop: feeds decode activations into the work queue, collectors park
// until the terminal stage has results for them.
func (s *Server) handleConn(c net.Conn) {
	fc := newFrameConn(c, s.cfg.MaxFrame)
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, payload, err := fc.readFrame()
	if err != nil || ft != ftHello {
		_ = fc.Close()
		return
	}
	var h hello
	if err := jsonUnmarshal(payload, &h); err != nil {
		_ = fc.Close()
		return
	}
	if err := s.checkHello(&h); err != nil {
		// A handshake refusal travels back as an error frame so the
		// dialer reports the cause instead of a bare disconnect.
		_ = fc.writeFrame(ftError, appendError(nil, 0, &RemoteError{
			Shard: s.cfg.Index, Code: "handshake", Msg: err.Error(),
		}))
		_ = fc.Close()
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	w := welcome{
		Version: ProtocolVersion, Model: s.cfg.Model,
		Shard: s.cfg.Index, Count: s.cfg.Count,
		Inputs: s.in, Outputs: s.out,
	}
	if err := fc.writeJSON(ftWelcome, &w); err != nil {
		_ = fc.Close()
		return
	}
	switch h.Role {
	case "feed":
		s.feedLoop(fc)
	case "collect":
		s.collectLoop(fc)
	}
}

// checkHello validates a dialer's handshake against this stage.
func (s *Server) checkHello(h *hello) error {
	if h.Version != ProtocolVersion {
		return fmt.Errorf("protocol version %d, want %d", h.Version, ProtocolVersion)
	}
	if h.Model != s.cfg.Model {
		return fmt.Errorf("model %q, this stage serves %q", h.Model, s.cfg.Model)
	}
	if h.Count != s.cfg.Count {
		return fmt.Errorf("pipeline of %d stages, this stage is %d of %d", h.Count, s.cfg.Index+1, s.cfg.Count)
	}
	switch h.Role {
	case "feed":
		if len(h.Tensors) > 0 && !descsEqual(h.Tensors, s.in) {
			return fmt.Errorf("boundary mismatch: feed sends %v, stage expects %v", h.Tensors, s.in)
		}
	case "collect":
		if s.cfg.Next != "" {
			return fmt.Errorf("stage %d is not terminal; collect from the last stage", s.cfg.Index+1)
		}
	default:
		return fmt.Errorf("unknown role %q", h.Role)
	}
	return nil
}

// feedLoop owns one feed connection: it decodes activation frames into
// jobs and enqueues them. The queue's capacity is the stage's in-flight
// depth — when the worker falls behind, this loop blocks, TCP flow
// control pushes back, and the driver's depth limit caps the total.
func (s *Server) feedLoop(fc *frameConn) {
	s.mu.Lock()
	if s.feed != nil {
		_ = s.feed.Close() // a reconnecting feeder supersedes the old link
	}
	s.feed = fc
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.feed == fc {
			s.feed = nil
		}
		s.mu.Unlock()
		_ = fc.Close()
	}()
	for {
		ft, payload, err := fc.readFrame()
		if err != nil {
			return
		}
		switch ft {
		case ftActivations:
			j, derr := s.decodeJob(payload)
			if derr != nil {
				// A frame that fails to decode poisons the connection:
				// report and force the feeder to re-handshake.
				s.errors.Add(1)
				_ = fc.writeFrame(ftError, appendError(nil, j.seq, &RemoteError{
					Shard: s.cfg.Index, Code: "decode", Msg: derr.Error(),
				}))
				return
			}
			select {
			case s.work <- j:
			case <-s.quit:
				return
			}
		case ftError:
			seq, re, derr := decodeError(payload)
			if derr != nil {
				return
			}
			select {
			case s.work <- job{seq: seq, err: re}:
			case <-s.quit:
				return
			}
		case ftDrain:
			// Drain marks end-of-stream, not end-of-connection: a
			// stage-to-stage link outlives the driver that triggered the
			// drain, so keep reading for the next stream. Closing here
			// would leave the upstream stage holding a half-closed
			// socket whose first write silently vanishes.
			select {
			case s.work <- job{drain: true}:
			case <-s.quit:
				return
			}
		default:
			return
		}
	}
}

// decodeJob stages one activation frame into freshly allocated input
// tensors (each in-flight job owns its inputs, so depth > 1 overlaps
// decode with compute).
func (s *Server) decodeJob(payload []byte) (job, error) {
	inputs := make(map[string]*tensor.Tensor, len(s.in))
	dst := make([][]float32, len(s.in))
	for i, d := range s.in {
		t := tensor.New(d.Shape...)
		inputs[d.Name] = t
		dst[i] = t.Data()
	}
	seq, err := decodeActivations(payload, s.in, dst)
	if err != nil {
		return job{seq: seq}, err
	}
	return job{seq: seq, inputs: inputs}, nil
}

// collectLoop parks a collector connection on the terminal stage. The
// read side only watches for disconnect; results are written by the
// worker.
func (s *Server) collectLoop(fc *frameConn) {
	s.mu.Lock()
	if s.collector != nil {
		_ = s.collector.Close()
	}
	s.collector = fc
	close(s.collAttach)
	s.collAttach = make(chan struct{})
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.collector == fc {
			s.collector = nil
		}
		s.mu.Unlock()
		_ = fc.Close()
	}()
	for {
		ft, _, err := fc.readFrame()
		if err != nil || ft == ftDrain {
			return
		}
	}
}

// runWorker executes jobs in arrival (sequence) order: run the stage
// subgraph, then forward boundary activations downstream or results to
// the collector. One worker keeps per-stage ordering trivial; pipeline
// overlap comes from stages running concurrently plus the decode
// prefetch in feedLoop.
func (s *Server) runWorker() {
	defer s.worker.Done()
	var enc, qbuf []byte
	for {
		var j job
		select {
		case j = <-s.work:
		case <-s.quit:
			// Drain whatever was already queued before quitting.
			select {
			case j = <-s.work:
			default:
				return
			}
		}
		switch {
		case j.drain:
			s.forwardDrain()
			continue
		case j.err != nil:
			s.forwarded.Add(1)
			s.forwardError(j.seq, j.err)
			continue
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		if s.cfg.StageTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.StageTimeout)
		}
		outs, err := s.pool.Run(ctx, j.inputs)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			s.errors.Add(1)
			code := "run"
			if errors.Is(err, context.DeadlineExceeded) {
				code = "timeout"
			} else if errors.Is(err, runtime.ErrPlanPanic) {
				code = "panic"
			}
			s.forwardError(j.seq, &RemoteError{Shard: s.cfg.Index, Code: code, Msg: err.Error()})
			continue
		}
		s.processed.Add(1)
		tensors := make([][]float32, len(s.out))
		shapes := make([][]int, len(s.out))
		for i, d := range s.out {
			tensors[i] = outs[d.Name].Data()
			shapes[i] = d.Shape
		}
		enc, qbuf = appendActivations(enc[:0], j.seq, tensors, shapes, s.cfg.Int8Wire && s.cfg.Next != "", qbuf)
		s.forward(ftActivations, enc)
	}
}

// forward sends one request's output frame downstream (as activations
// to the next stage) or to the collector (as a result on the terminal
// stage). Downstream delivery retries with backoff — blocking here is
// what turns a dead peer into backpressure instead of data loss.
func (s *Server) forward(ft frameType, payload []byte) {
	if s.cfg.Next == "" {
		fc := s.waitCollector()
		if fc == nil {
			s.dropped.Add(1)
			return
		}
		if ft == ftActivations {
			ft = ftResult // results leave the terminal stage as result frames
		}
		if err := fc.writeFrame(ft, payload); err != nil {
			s.mu.Lock()
			if s.collector == fc {
				s.collector = nil
			}
			s.mu.Unlock()
			s.dropped.Add(1)
		}
		return
	}
	backoff := s.cfg.DialBackoff
	for {
		fc, err := s.downstream()
		if err == nil {
			if err = fc.writeFrame(ft, payload); err == nil {
				return
			}
			s.dropDownstream(fc)
		}
		select {
		case <-s.quit:
			s.dropped.Add(1)
			return
		case <-time.After(backoff):
		}
		if backoff < 32*s.cfg.DialBackoff {
			backoff *= 2
		}
	}
}

// forwardError sends an error frame for seq along the same path results
// take, so the failure reaches the driver in the request's stream slot.
func (s *Server) forwardError(seq uint64, re *RemoteError) {
	s.forward(ftError, appendError(nil, seq, re))
}

// forwardDrain propagates a graceful end-of-stream mark.
func (s *Server) forwardDrain() {
	if s.cfg.Next == "" {
		s.mu.Lock()
		fc := s.collector
		s.mu.Unlock()
		if fc != nil {
			_ = fc.writeFrame(ftDrain, nil)
		}
		return
	}
	if fc, err := s.downstream(); err == nil {
		_ = fc.writeFrame(ftDrain, nil)
	}
}

// waitCollector blocks until a collector is attached or the server
// quits, returning nil in the latter case.
func (s *Server) waitCollector() *frameConn {
	for {
		s.mu.Lock()
		fc, attach := s.collector, s.collAttach
		s.mu.Unlock()
		if fc != nil {
			return fc
		}
		select {
		case <-attach:
		case <-s.quit:
			return nil
		}
	}
}

// downstream returns the connection to the next stage, dialing and
// handshaking on first use or after a drop.
func (s *Server) downstream() (*frameConn, error) {
	s.mu.Lock()
	fc := s.down
	s.mu.Unlock()
	if fc != nil {
		return fc, nil
	}
	c, err := net.DialTimeout("tcp", s.cfg.Next, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: dialing next stage %s: %v", ErrPeerClosed, s.cfg.Next, err)
	}
	nfc := newFrameConn(c, s.cfg.MaxFrame)
	h := hello{
		Version: ProtocolVersion, Model: s.cfg.Model, Role: "feed",
		Shard: s.cfg.Index, Count: s.cfg.Count, Int8: s.cfg.Int8Wire,
		Tensors: s.out,
	}
	if err := handshake(nfc, &h, nil); err != nil {
		_ = nfc.Close()
		return nil, err
	}
	s.mu.Lock()
	s.down = nfc
	s.mu.Unlock()
	return nfc, nil
}

// dropDownstream discards a failed downstream connection so the next
// forward re-dials.
func (s *Server) dropDownstream(fc *frameConn) {
	s.mu.Lock()
	if s.down == fc {
		s.down = nil
	}
	s.mu.Unlock()
	_ = fc.Close()
}

// Close drains the stage: stop accepting, let queued work finish, then
// tear the connections down. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	ln, feed := s.ln, s.feed
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if feed != nil {
		_ = feed.Close() // unblocks feedLoop's read
	}
	close(s.quit)
	s.conns.Wait()
	s.worker.Wait()
	s.mu.Lock()
	for _, fc := range []*frameConn{s.down, s.collector} {
		if fc != nil {
			_ = fc.Close()
		}
	}
	s.down, s.collector = nil, nil
	s.mu.Unlock()
	return nil
}

// handshake sends h on fc and waits for the welcome, returning it via
// w when non-nil. An error frame in place of the welcome is decoded
// and surfaced as the remote refusal it carries.
func handshake(fc *frameConn, h *hello, w *welcome) error {
	if err := fc.writeJSON(ftHello, h); err != nil {
		return fmt.Errorf("%w: sending hello: %v", ErrHandshake, err)
	}
	ft, payload, err := fc.readFrame()
	if err != nil {
		return fmt.Errorf("%w: awaiting welcome: %v", ErrHandshake, err)
	}
	switch ft {
	case ftWelcome:
	case ftError:
		if _, re, derr := decodeError(payload); derr == nil {
			return fmt.Errorf("%w: %v", ErrHandshake, re)
		}
		return fmt.Errorf("%w: peer refused", ErrHandshake)
	default:
		return fmt.Errorf("%w: unexpected frame type %d before welcome", ErrHandshake, ft)
	}
	var got welcome
	if err := jsonUnmarshal(payload, &got); err != nil {
		return fmt.Errorf("%w: decoding welcome: %v", ErrHandshake, err)
	}
	if got.Version != ProtocolVersion {
		return fmt.Errorf("%w: peer speaks version %d, want %d", ErrHandshake, got.Version, ProtocolVersion)
	}
	if w != nil {
		*w = got
	}
	return nil
}
