// orpheus-run executes inference on an ONNX model file (or a built-in zoo
// model) and reports timing, the selected kernels and the top
// predictions. It is the command-line equivalent of the Python bindings
// the paper describes for embedding Orpheus in experimental workflows.
//
// Usage:
//
//	orpheus-run -model mobilenet.onnx
//	orpheus-run -zoo resnet-18 -backend tvm-sim -reps 5
//	orpheus-run -zoo wrn-40-2 -profile          # per-layer breakdown
//
// ORPHEUS_GEMM_KERNEL=go forces the portable GEMM micro-kernel (the
// SIMD kernel the CPU supports is the default); comparing the two runs
// is the quickest way to see the SIMD dispatch working.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"orpheus"
)

func main() {
	var (
		modelPath = flag.String("model", "", "path to an .onnx model file")
		zooName   = flag.String("zoo", "", "built-in model name (wrn-40-2, mobilenet-v1, resnet-18, inception-v3, resnet-50)")
		backendN  = flag.String("backend", "orpheus", "execution backend")
		workers   = flag.Int("workers", 1, "kernel thread budget")
		reps      = flag.Int("reps", 3, "timed repetitions")
		warmup    = flag.Int("warmup", 1, "warm-up runs")
		profile   = flag.Bool("profile", false, "print a per-layer breakdown")
		tracePath = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of one profiled run to this file")
		seed      = flag.Uint64("seed", 42, "seed for the synthetic input tensor")
		topK      = flag.Int("top", 5, "print the top-K output classes")
		int8      = flag.Bool("int8", false, "run on the int8 quantized execution tier (~4x smaller weights; outputs carry quantization noise)")
	)
	flag.Parse()

	// Ctrl-C aborts the inference at the next plan-step boundary instead
	// of killing the process mid-kernel.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var (
		model *orpheus.Model
		err   error
	)
	switch {
	case *modelPath != "":
		model, err = orpheus.LoadONNX(*modelPath)
	case *zooName != "":
		model, err = orpheus.BuildZooModel(*zooName)
	default:
		err = fmt.Errorf("one of -model or -zoo is required (zoo models: %v)", orpheus.ZooModels())
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(model.Summary())

	copts := []orpheus.CompileOption{orpheus.WithBackend(*backendN), orpheus.WithWorkers(*workers)}
	if *int8 {
		copts = append(copts, orpheus.WithInt8())
	}
	sess, err := model.Compile(copts...)
	if err != nil {
		fatal(err)
	}
	weights, arena := sess.MemoryFootprint()
	fmt.Printf("backend %s: weights %.2f MB, activation arena %.2f MB\n",
		*backendN, float64(weights)/(1<<20), float64(arena)/(1<<20))

	x := orpheus.RandomTensor(*seed, model.InputShape()...)
	if *profile || *tracePath != "" {
		out, timings, err := sess.PredictProfiled(ctx, x)
		if err != nil {
			fatal(err)
		}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			if err := orpheus.WriteTrace(f, timings); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Chrome trace to %s\n", *tracePath)
		}
		sort.Slice(timings, func(i, j int) bool { return timings[i].Duration > timings[j].Duration })
		fmt.Println("\nper-layer breakdown (slowest first):")
		for i, lt := range timings {
			if i >= 15 {
				fmt.Printf("  … %d more layers\n", len(timings)-15)
				break
			}
			fmt.Printf("  %-32s %-10s %-18s %10v\n", lt.Node.Name, lt.Node.Op, lt.Kernel, lt.Duration)
		}
		printTop(out, *topK)
		return
	}

	stats, err := sess.Benchmark(ctx, x, *warmup, *reps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("inference time: %s\n", stats)
	out, err := sess.Predict(ctx, x)
	if err != nil {
		fatal(err)
	}
	printTop(out, *topK)
}

func printTop(out *orpheus.Tensor, k int) {
	fmt.Printf("\ntop-%d classes:\n", k)
	for _, idx := range out.TopK(k) {
		fmt.Printf("  class %4d  p=%.4f\n", idx, out.Data()[idx])
	}
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "orpheus-run: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "orpheus-run:", err)
	os.Exit(1)
}
