package serve

import (
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/wire"
)

// ContentTypeTensor is the media type of the binary tensor format
// (internal/wire): requests carry one encoded sample as the body, and
// responses negotiated to it carry one encoded output. Request metadata
// that the JSON body would hold moves to query parameters (?topk=,
// ?wait_ms=); response metadata moves to X-Orpheus-* headers. Error
// responses are always JSON.
const ContentTypeTensor = "application/x-orpheus-tensor"

// contentTypeJSON is the canonical JSON media type.
const contentTypeJSON = "application/json"

// requestFormat classifies the request body from its Content-Type:
// binary wire tensor, JSON (the default for an absent header), or — for
// anything else — an error the handler maps to 415. The strictness is
// deliberate: a body the server would misparse should fail loudly at the
// content-type gate, not decode into garbage.
func requestFormat(r *http.Request) (binary bool, err error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false, nil
	}
	mt, _, perr := mime.ParseMediaType(ct)
	if perr != nil {
		return false, fmt.Errorf("unparseable Content-Type %q: %v", ct, perr)
	}
	switch {
	case mt == ContentTypeTensor:
		return true, nil
	case mt == contentTypeJSON, mt == "text/json", strings.HasSuffix(mt, "+json"):
		return false, nil
	}
	return false, fmt.Errorf("unsupported Content-Type %q (use %s or %s)", mt, contentTypeJSON, ContentTypeTensor)
}

// responseWantsBinary negotiates the response format from the Accept
// header: an explicit tensor or JSON media type wins; anything else
// (including an absent header and */*) mirrors the request format, so a
// binary client gets binary back without setting Accept.
func responseWantsBinary(r *http.Request, requestBinary bool) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, err := mime.ParseMediaType(part)
		if err != nil {
			continue
		}
		switch mt {
		case ContentTypeTensor:
			return true
		case contentTypeJSON:
			return false
		}
	}
	return requestBinary
}

// binaryParams reads the query-parameter request metadata of a binary
// predict (?topk=, ?wait_ms= — the fields the JSON body would carry).
// Malformed values are the client's fault: 400.
func binaryParams(r *http.Request) (topk int, wait time.Duration, err error) {
	q := r.URL.Query()
	if v := q.Get("topk"); v != "" {
		topk, err = strconv.Atoi(v)
		if err != nil || topk < 0 {
			return 0, 0, fmt.Errorf("invalid topk %q: want a non-negative integer", v)
		}
	}
	if v := q.Get("wait_ms"); v != "" {
		ms, perr := strconv.ParseFloat(v, 64)
		if perr != nil || ms < 0 {
			return 0, 0, fmt.Errorf("invalid wait_ms %q: want a non-negative number", v)
		}
		wait = time.Duration(ms * float64(time.Millisecond))
	}
	return topk, wait, nil
}

// fillBuffer reads r into buf until EOF, reporting the bytes read and
// whether r held more than buf can take (the caller's size bound).
func fillBuffer(r io.Reader, buf []byte) (n int, overflow bool, err error) {
	for n < len(buf) {
		m, rerr := r.Read(buf[n:])
		n += m
		if rerr == io.EOF {
			return n, false, nil
		}
		if rerr != nil {
			return n, false, rerr
		}
	}
	var probe [1]byte
	for {
		m, rerr := r.Read(probe[:])
		if m > 0 {
			return n, true, nil
		}
		if rerr == io.EOF {
			return n, false, nil
		}
		if rerr != nil {
			return n, false, rerr
		}
	}
}

// validateWireBody checks that msg is exactly one well-formed wire
// tensor whose volume matches one sample of e's input, returning the
// raw little-endian payload (aliasing msg). It allocates nothing — the
// alloc pin in wirehttp_test.go holds the serving plane to that.
func validateWireBody(e *Entry, msg []byte) (payload []byte, err error) {
	hdr, hl, err := wire.ParseHeader(msg, int64(4*e.perVol))
	if err != nil {
		return nil, err
	}
	if hdr.DType != wire.Float32 {
		// The HTTP predict path copies the payload straight into float32
		// staging; a u8 body (legal on the shard wire) would otherwise
		// pass the volume check and silently predict on garbage.
		return nil, fmt.Errorf("%w: predict bodies must be %s tensors, got %s",
			wire.ErrFormat, wire.Float32, hdr.DType)
	}
	if hdr.Volume() != e.perVol {
		return nil, fmt.Errorf("input has %d values, model %s wants %d: %w",
			hdr.Volume(), e.Name, e.perVol, runtime.ErrShapeMismatch)
	}
	if len(msg) != hl+hdr.DataLen {
		return nil, fmt.Errorf("%w: message is %d bytes, header declares %d", wire.ErrFormat, len(msg), hl+hdr.DataLen)
	}
	return msg[hl:], nil
}

// readWireBody reads a binary predict body into buf and validates it as
// one sample for e. The returned payload aliases buf; it stays valid
// until the buffer goes back to the entry's pool.
func readWireBody(body io.Reader, e *Entry, buf []byte) ([]byte, error) {
	n, overflow, err := fillBuffer(body, buf)
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", wire.ErrFormat, err)
	}
	if overflow {
		return nil, fmt.Errorf("%w: body exceeds %d bytes (one %s sample)",
			wire.ErrTooLarge, len(buf), tensor.ShapeString(e.inShape1))
	}
	return validateWireBody(e, buf[:n])
}

// writeWireResponse writes a 200 with the output encoded as one wire
// tensor, the JSON body's metadata fields promoted to headers. The
// encode reuses the entry's pooled buffer, so the steady-state response
// path allocates nothing for the tensor bytes.
func writeWireResponse(w http.ResponseWriter, e *Entry, data []float32, shape []int, batch int, latency time.Duration, topk []int) {
	h := w.Header()
	h.Set("Content-Type", ContentTypeTensor)
	h.Set("X-Orpheus-Batch-Size", strconv.Itoa(batch))
	h.Set("X-Orpheus-Latency-Ms", strconv.FormatFloat(float64(latency)/1e6, 'f', 3, 64))
	if len(topk) > 0 {
		parts := make([]string, len(topk))
		for i, k := range topk {
			parts[i] = strconv.Itoa(k)
		}
		h.Set("X-Orpheus-TopK", strings.Join(parts, ","))
	}
	buf := e.getBuf()
	defer e.putBuf(buf)
	msg := wire.AppendTensor((*buf)[:0], data, shape)
	if cap(msg) > cap(*buf) {
		// An output larger than the request-sized buffer grew it; keep the
		// growth for the next borrower.
		*buf = msg[:cap(msg)]
	}
	h.Set("Content-Length", strconv.Itoa(len(msg)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(msg)
}
