package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestNilInjectorIsNoOp pins the production contract: a nil *Injector is
// a legal, free hook — every step proceeds untouched.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Step("m", "s", "Conv"); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
}

// TestMatching pins the rule-matching semantics: empty fields are
// wildcards, populated fields must match exactly.
func TestMatching(t *testing.T) {
	cases := []struct {
		rule            *Rule
		model, step, op string
		want            bool
	}{
		{&Rule{}, "m", "s", "Conv", true},
		{&Rule{Model: "m"}, "m", "s", "Conv", true},
		{&Rule{Model: "other"}, "m", "s", "Conv", false},
		{&Rule{Step: "s"}, "m", "s", "Conv", true},
		{&Rule{Step: "t"}, "m", "s", "Conv", false},
		{&Rule{Op: "Conv"}, "m", "s", "Conv", true},
		{&Rule{Op: "Gemm"}, "m", "s", "Conv", false},
		{&Rule{Model: "m", Step: "s", Op: "Conv"}, "m", "s", "Conv", true},
		{&Rule{Model: "m", Step: "s", Op: "Gemm"}, "m", "s", "Conv", false},
	}
	for i, tc := range cases {
		if got := tc.rule.matches(tc.model, tc.step, tc.op); got != tc.want {
			t.Errorf("case %d: matches(%q,%q,%q) = %v, want %v", i, tc.model, tc.step, tc.op, got, tc.want)
		}
	}
}

// TestErrorInjection checks ActError: the returned error wraps
// ErrInjected (and the rule's custom Err when set), and the error counter
// advances.
func TestErrorInjection(t *testing.T) {
	custom := errors.New("disk on fire")
	in := New(1,
		&Rule{Step: "a", Action: ActError},
		&Rule{Step: "b", Action: ActError, Err: custom},
	)
	if err := in.Step("m", "a", "Conv"); !errors.Is(err, ErrInjected) {
		t.Fatalf("step a: got %v, want ErrInjected", err)
	}
	err := in.Step("m", "b", "Conv")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("step b: got %v, want ErrInjected wrapping custom", err)
	}
	if err := in.Step("m", "c", "Conv"); err != nil {
		t.Fatalf("unmatched step failed: %v", err)
	}
	if _, errs, _ := in.Counts(); errs != 2 {
		t.Fatalf("error count = %d, want 2", errs)
	}
}

// TestPanicInjection checks ActPanic: the panic value is a *PanicValue
// naming the killed step, and the panic counter advances.
func TestPanicInjection(t *testing.T) {
	in := New(1, &Rule{Model: "m", Step: "s", Action: ActPanic})
	func() {
		defer func() {
			r := recover()
			pv, ok := r.(*PanicValue)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicValue", r, r)
			}
			if pv.Model != "m" || pv.Step != "s" {
				t.Fatalf("panic value = %+v, want m/s", pv)
			}
		}()
		_ = in.Step("m", "s", "Conv")
		t.Fatal("step did not panic")
	}()
	if panics, _, _ := in.Counts(); panics != 1 {
		t.Fatalf("panic count = %d, want 1", panics)
	}
}

// TestDelayInjection checks ActDelay: the step blocks for at least the
// configured latency, then proceeds without error.
func TestDelayInjection(t *testing.T) {
	in := New(1, &Rule{Action: ActDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Step("m", "s", "Conv"); err != nil {
		t.Fatalf("delayed step failed: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("step returned after %v, want >= 20ms", d)
	}
	if _, _, delays := in.Counts(); delays != 1 {
		t.Fatalf("delay count = %d, want 1", delays)
	}
}

// TestTimesCap checks the firing cap: a rule with Times=N injects exactly
// N faults, then goes inert.
func TestTimesCap(t *testing.T) {
	in := New(1, &Rule{Action: ActError, Times: 3})
	failed := 0
	for i := 0; i < 10; i++ {
		if err := in.Step("m", "s", "Conv"); err != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("rule fired %d times, want 3", failed)
	}
}

// TestProbabilityIsDeterministicPerSeed checks that probabilistic rules
// fire a reproducible subset for a fixed seed, and roughly the expected
// fraction for a fair one.
func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	const trials = 1000
	run := func(seed int64) int {
		in := New(seed, &Rule{Action: ActError, Probability: 0.3})
		n := 0
		for i := 0; i < trials; i++ {
			if in.Step("m", "s", "Conv") != nil {
				n++
			}
		}
		return n
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed fired %d then %d faults", a, b)
	}
	if a < trials/5 || a > trials/2 {
		t.Fatalf("p=0.3 fired %d/%d times — far off expectation", a, trials)
	}
}
