package harness

import (
	"strings"
	"testing"
)

// simCfg returns a simulation-mode config (instant, deterministic).
func simCfg(models ...string) *Config {
	return &Config{Mode: ModeSim, Models: models}
}

func TestExperimentRegistry(t *testing.T) {
	for _, id := range []string{"fig2", "table1", "sweep", "passes", "memory", "layerwise", "autotune"} {
		if _, err := ByID(id); err != nil {
			t.Fatalf("experiment %q missing: %v", id, err)
		}
	}
	if _, err := ByID("fig9"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(All()) < 7 {
		t.Fatalf("All() returned %d experiments", len(All()))
	}
}

// TestFig2ShapeMatchesPaper is the headline check: the simulated Figure 2
// must reproduce the paper's qualitative result — "Orpheus provides the
// best results for the biggest models (ResNets and Inception), whereas
// TVM is the best for the smallest ones (WRN and MobileNet)".
func TestFig2ShapeMatchesPaper(t *testing.T) {
	winners, err := Fig2Winners(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"wrn-40-2":     "tvm-sim",
		"mobilenet-v1": "tvm-sim",
		"resnet-18":    "orpheus",
		"inception-v3": "orpheus",
		"resnet-50":    "orpheus",
	}
	for model, fw := range want {
		if winners[model] != fw {
			t.Errorf("fastest on %s = %s, paper says %s", model, winners[model], fw)
		}
	}
}

func TestFig2PyTorchNeverFastestAndMobileNetCollapse(t *testing.T) {
	results, _, err := RunFig2(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]map[string]float64{}
	for _, r := range results {
		if r.excluded != "" {
			continue
		}
		if times[r.model] == nil {
			times[r.model] = map[string]float64{}
		}
		times[r.model][r.backendName] = r.simMs
	}
	for model, ts := range times {
		if torch, orp := ts["torch-sim"], ts["orpheus"]; torch > 0 && orp > 0 && torch < orp {
			t.Errorf("%s: PyTorch (%.1f) beat Orpheus (%.1f); paper says PyTorch is always worse", model, torch, orp)
		}
	}
	// "PyTorch performs poorly for MobileNetV1 because of an inefficient
	// implementation of the depthwise convolution."
	mb := times["mobilenet-v1"]
	if mb["torch-sim"] < 1.8*mb["tvm-sim"] {
		t.Errorf("MobileNetV1: PyTorch %.1fms vs TVM %.1fms — collapse not reproduced", mb["torch-sim"], mb["tvm-sim"])
	}
}

func TestFig2DarkNetSecondsScale(t *testing.T) {
	// "inference time measured in seconds (e.g. ~3s for ResNet-18)".
	results, _, err := RunFig2(simCfg("resnet-18"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.backendName != "darknet-sim" {
			continue
		}
		if r.excluded != "" {
			t.Fatalf("darknet should run resnet-18: %s", r.excluded)
		}
		if r.simMs < 1500 || r.simMs > 10000 {
			t.Errorf("DarkNet ResNet-18 = %.0fms, paper reports ~3000ms", r.simMs)
		}
	}
}

func TestFig2Exclusions(t *testing.T) {
	results, rep, err := RunFig2(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	var darknetNA, tfliteNA int
	for _, r := range results {
		if r.backendName == "darknet-sim" && r.excluded != "" {
			darknetNA++
		}
		if r.backendName == "tflite-sim" && r.excluded != "" {
			tfliteNA++
		}
	}
	if darknetNA != 3 { // all but the two ResNets
		t.Errorf("DarkNet n/a on %d models, want 3", darknetNA)
	}
	if tfliteNA != 5 { // single-thread figure: always excluded
		t.Errorf("TF-Lite n/a on %d models, want 5", tfliteNA)
	}
	if !strings.Contains(rep.Format(), "n/a") {
		t.Error("report should mark exclusions as n/a")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	ratings, err := DerivePerformanceRatings(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	for fw, want := range PaperPerformanceRow {
		if ratings[fw] != want {
			t.Errorf("derived Performance[%s] = %d, paper says %d (%s)", fw, ratings[fw], want, FormatRatings(ratings))
		}
	}
	e, _ := ByID("table1")
	rep, err := e.Run(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, feature := range []string{"Low-level modifications", "Model interoperability", "Platform Compatibility", "Codebase accessibility", "Performance"} {
		if !strings.Contains(out, feature) {
			t.Errorf("table1 missing row %q", feature)
		}
	}
}

func TestSweepFindsCrossover(t *testing.T) {
	e, _ := ByID("sweep")
	rep, err := e.Run(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Small shapes should go to spatial pack, large ones to im2col.
	var fastest []string
	for _, row := range rep.Rows {
		fastest = append(fastest, row[len(row)-1])
	}
	if fastest[0] != "conv.spatialpack" {
		t.Errorf("smallest shape fastest = %s, want conv.spatialpack", fastest[0])
	}
	sawGemmish := false
	for _, f := range fastest {
		if f == "conv.im2col" || f == "conv.winograd" {
			sawGemmish = true
		}
	}
	if !sawGemmish {
		t.Error("no large shape won by a GEMM-family kernel; crossover missing")
	}
}

func TestMemoryAblationShowsSavings(t *testing.T) {
	e, _ := ByID("memory")
	rep, err := e.Run(simCfg("resnet-18"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	saving := rep.Rows[0][4]
	if !strings.HasSuffix(saving, "x") {
		t.Fatalf("saving cell = %q", saving)
	}
	if saving < "2" { // at least 2x reuse on a chain-heavy CNN
		t.Errorf("arena saving %s looks too small", saving)
	}
}

func TestPassesAblationSpeedup(t *testing.T) {
	e, _ := ByID("passes")
	rep, err := e.Run(simCfg("resnet-18"))
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[0]
	if row[1] <= row[2] {
		t.Errorf("optimisation did not shrink the graph: raw %s vs opt %s nodes", row[1], row[2])
	}
	if !strings.HasSuffix(row[5], "x") {
		t.Errorf("speedup cell = %q", row[5])
	}
}

func TestLayerwiseReportsTopLayers(t *testing.T) {
	e, _ := ByID("layerwise")
	rep, err := e.Run(simCfg("wrn-40-2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 || len(rep.Rows) > 12 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][1] != "Conv" {
		t.Errorf("most expensive layer is %s, expected a Conv", rep.Rows[0][1])
	}
}

func TestAutotuneAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune measures real kernels; run without -short")
	}
	e, _ := ByID("autotune")
	rep, err := e.Run(simCfg("wrn-40-2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0][4] == "" {
		t.Fatalf("autotune report malformed: %+v", rep.Rows)
	}
}

func TestReportFormatAndCSV(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", Header: []string{"a", "b"}}
	rep.AddRow("hello", 3.14159)
	rep.AddRow("with,comma", "quote\"y")
	rep.AddNote("note %d", 1)
	txt := rep.Format()
	if !strings.Contains(txt, "== x: T ==") || !strings.Contains(txt, "3.14") || !strings.Contains(txt, "note: note 1") {
		t.Fatalf("format output:\n%s", txt)
	}
	csv := rep.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"quote""y"`) {
		t.Fatalf("csv escaping wrong:\n%s", csv)
	}
}

func TestMeasuredModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measured fig2 on WRN is slow; run without -short")
	}
	cfg := &Config{Mode: ModeMeasure, Models: []string{"wrn-40-2"}, Warmup: 0, Reps: 1}
	results, rep, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.excluded == "" && r.measuredMs <= 0 {
			t.Errorf("%s/%s: measured time missing", r.model, r.backendName)
		}
	}
	if !strings.Contains(rep.Format(), "measured host ms") {
		t.Error("measured header missing")
	}
}
