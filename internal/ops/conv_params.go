package ops

import (
	"fmt"

	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// convParams collects the resolved geometry of a Conv node.
//
// Conv node convention:
//
//	inputs:  X [N, Cin, H, W], W [Cout, Cin/groups, KH, KW], optional B [Cout]
//	attrs:   "strides" []int{sh, sw}   (default {1,1})
//	         "pads" []int{t, l, b, r}  (default zeros)
//	         "dilations" []int{dh, dw} (default {1,1})
//	         "group" int               (default 1)
//	         "activation" string       ("", "relu", "relu6", "leakyrelu";
//	                                    set by the fusion pass)
//	         "alpha" float64           (LeakyRelu slope when fused)
//	         "layout" string           ("" = NCHW, "nhwc"; set by the
//	                                    layout-assignment pass)
//	         "src_layout" string       (NHWC convs only: "nchw" when a
//	                                    boundary transpose was folded into
//	                                    the input gather, so X stays NCHW)
//
// Under layout "nhwc" the data input is [N, H, W, Cin] and the output is
// [N, OH, OW, Cout]; the weight and bias conventions are unchanged.
type convParams struct {
	n, cin, h, w           int // input
	cout, kh, kw           int // weights
	sh, sw                 int // strides
	padT, padL, padB, padR int
	dh, dw                 int // dilations
	groups                 int
	oh, ow                 int // output spatial dims
	hasBias                bool
	activation             string
	alpha                  float32
	layout                 string // "" (NCHW) or "nhwc"
	srcNCHW                bool   // NHWC conv reading an NCHW input (folded transpose)
}

// Attribute defaults are package-level so the resolvers stay
// allocation-free on the per-run hot path (a literal default slice would
// escape and heap-allocate on every call).
var (
	defaultStrides = []int{1, 1}
	defaultPads    = []int{0, 0, 0, 0}
	defaultDils    = []int{1, 1}
)

// resolveConv validates a Conv node's input shapes and attributes and
// computes the output geometry.
func resolveConv(n *graph.Node) (convParams, error) {
	var p convParams
	if len(n.Inputs) < 2 || len(n.Inputs) > 3 {
		return p, fmt.Errorf("Conv wants 2 or 3 inputs, got %d", len(n.Inputs))
	}
	x, w := n.Inputs[0].Shape, n.Inputs[1].Shape
	if len(x) != 4 {
		return p, fmt.Errorf("Conv input must be 4-D, got %v", x)
	}
	if len(w) != 4 {
		return p, fmt.Errorf("Conv weight must be 4-D [Cout,Cin/g,KH,KW], got %v", w)
	}
	switch p.layout = n.Attrs.Str("layout", ""); p.layout {
	case "":
		p.n, p.cin, p.h, p.w = x[0], x[1], x[2], x[3]
	case "nhwc":
		switch src := n.Attrs.Str("src_layout", "nhwc"); src {
		case "nhwc":
			p.n, p.h, p.w, p.cin = x[0], x[1], x[2], x[3]
		case "nchw":
			// A folded boundary transpose: the input stays NCHW in memory
			// and the implicit-GEMM gather absorbs the permutation.
			p.srcNCHW = true
			p.n, p.cin, p.h, p.w = x[0], x[1], x[2], x[3]
		default:
			return p, fmt.Errorf("Conv src_layout %q invalid (want nhwc or nchw)", src)
		}
	default:
		return p, fmt.Errorf("Conv layout %q invalid (want \"\" or nhwc)", p.layout)
	}
	p.cout, p.kh, p.kw = w[0], w[2], w[3]
	p.groups = n.Attrs.Int("group", 1)
	if p.groups < 1 {
		return p, fmt.Errorf("Conv group %d < 1", p.groups)
	}
	if p.cin%p.groups != 0 || p.cout%p.groups != 0 {
		return p, fmt.Errorf("Conv channels (in %d, out %d) not divisible by groups %d", p.cin, p.cout, p.groups)
	}
	if w[1] != p.cin/p.groups {
		return p, fmt.Errorf("Conv weight expects %d input channels per group, input has %d", w[1], p.cin/p.groups)
	}
	strides := n.Attrs.Ints("strides", defaultStrides)
	if len(strides) != 2 || strides[0] < 1 || strides[1] < 1 {
		return p, fmt.Errorf("Conv strides %v invalid", strides)
	}
	p.sh, p.sw = strides[0], strides[1]
	pads := n.Attrs.Ints("pads", defaultPads)
	if len(pads) != 4 || pads[0] < 0 || pads[1] < 0 || pads[2] < 0 || pads[3] < 0 {
		return p, fmt.Errorf("Conv pads %v invalid (want [top,left,bottom,right])", pads)
	}
	p.padT, p.padL, p.padB, p.padR = pads[0], pads[1], pads[2], pads[3]
	dil := n.Attrs.Ints("dilations", defaultDils)
	if len(dil) != 2 || dil[0] < 1 || dil[1] < 1 {
		return p, fmt.Errorf("Conv dilations %v invalid", dil)
	}
	p.dh, p.dw = dil[0], dil[1]
	ekh := (p.kh-1)*p.dh + 1 // effective kernel extent
	ekw := (p.kw-1)*p.dw + 1
	// Compute numerators separately: Go's integer division truncates
	// toward zero, so a negative numerator would silently yield output 1.
	numH := p.h + p.padT + p.padB - ekh
	numW := p.w + p.padL + p.padR - ekw
	if numH < 0 || numW < 0 {
		return p, fmt.Errorf("Conv kernel %dx%d (dilated %dx%d) exceeds padded input %dx%d",
			p.kh, p.kw, ekh, ekw, p.h+p.padT+p.padB, p.w+p.padL+p.padR)
	}
	p.oh = numH/p.sh + 1
	p.ow = numW/p.sw + 1
	if p.oh < 1 || p.ow < 1 {
		return p, fmt.Errorf("Conv output %dx%d not positive (input %dx%d kernel %dx%d)", p.oh, p.ow, p.h, p.w, p.kh, p.kw)
	}
	p.hasBias = len(n.Inputs) == 3
	if p.hasBias {
		b := n.Inputs[2].Shape
		if len(b) != 1 || b[0] != p.cout {
			return p, fmt.Errorf("Conv bias shape %v, want [%d]", b, p.cout)
		}
	}
	p.activation = n.Attrs.Str("activation", "")
	p.alpha = float32(n.Attrs.Float("alpha", 0.01))
	return p, nil
}

// resolveConvRT is resolveConv plus runtime-batch adoption: the node's
// declared shapes carry the plan's maximum batch, while the tensors a run
// actually binds may be sliced to any smaller batch. Kernels therefore
// loop over the batch the input tensor declares, not the static one.
func resolveConvRT(n *graph.Node, in []*tensor.Tensor) (convParams, error) {
	p, err := resolveConv(n)
	if err != nil {
		return p, err
	}
	p.n = in[0].Dim(0)
	return p, nil
}

// resolvePoolRT mirrors resolveConvRT for pooling windows.
func resolvePoolRT(n *graph.Node, in []*tensor.Tensor) (poolParams, error) {
	p, err := resolvePool(n)
	if err != nil {
		return p, err
	}
	p.n = in[0].Dim(0)
	return p, nil
}

// isDepthwise reports whether the conv is a pure depthwise convolution
// (groups == Cin, one filter per channel).
func (p convParams) isDepthwise() bool {
	return p.groups > 1 && p.groups == p.cin && p.cout == p.cin
}

// flops returns the multiply-accumulate count of the convolution, used by
// the device cost model and the profiler.
func (p convParams) flops() int64 {
	perOut := int64(p.cin/p.groups) * int64(p.kh) * int64(p.kw)
	outs := int64(p.n) * int64(p.cout) * int64(p.oh) * int64(p.ow)
	return 2 * perOut * outs
}

// gemmActivation maps a fused-activation attribute onto the GEMM epilogue
// enum. Unknown names panic, mirroring applyActivation.
func gemmActivation(act string) gemm.Activation {
	switch act {
	case "":
		return gemm.ActNone
	case "relu":
		return gemm.ActReLU
	case "relu6":
		return gemm.ActReLU6
	case "leakyrelu":
		return gemm.ActLeakyReLU
	default:
		panic(fmt.Sprintf("ops: unknown fused activation %q", act))
	}
}

// applyActivation applies a fused activation in place.
func applyActivation(data []float32, act string, alpha float32) {
	switch act {
	case "":
	case "relu":
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			}
		}
	case "relu6":
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			} else if v > 6 {
				data[i] = 6
			}
		}
	case "leakyrelu":
		for i, v := range data {
			if v < 0 {
				data[i] = alpha * v
			}
		}
	default:
		panic(fmt.Sprintf("ops: unknown fused activation %q", act))
	}
}
