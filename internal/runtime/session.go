package runtime

import (
	"context"
	"fmt"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// Session executes a compiled Plan. It owns the buffer arena and the
// kernel context (scratch pools, GEMM packing buffers), and shares the
// plan's constant cache with every other session of the same plan.
//
// Binding resolution happens per batch size, not per run: the first Run at
// batch n resolves every step's input and output tensors to constant
// tensors or arena views sliced to n (arena slots are sized for the plan's
// MaxBatch), and the binding is kept for the session's lifetime. The
// steady-state Run loop at any batch size is therefore a straight walk
// over prebound steps with zero heap allocations; output regions are
// zero-filled per run only for kernels that do not overwrite them.
//
// A Session is not safe for concurrent use; create one per goroutine or
// use a SessionPool.
type Session struct {
	plan *Plan
	ctx  *ops.Ctx

	// slots are the arena buffers, sized for MaxBatch (nil when
	// NoBufferReuse, which selects the allocating dynamic path).
	slots [][]float32

	// inPatches is structural (step, arg) → input wiring, identical for
	// every batch size; inTensors carries the caller's tensors of the
	// current run; inputIdx maps graph-input values to their position.
	inPatches []inputPatch
	inTensors []*tensor.Tensor
	inputIdx  map[*graph.Value]int

	// binds[n] holds the prebound steps for batch n (1 ≤ n ≤ MaxBatch),
	// built lazily on the first run at that batch size.
	binds []*batchBind

	// poisoned is set when a plan step panics on this session: the arena,
	// scratch and GEMM packing state may be mid-write garbage, so the
	// session must not serve another request. SessionPool.Put quarantines
	// poisoned sessions instead of recycling them.
	poisoned bool
}

// batchBind is the prebound execution state for one batch size.
type batchBind struct {
	steps    []boundStep
	outBinds []outputBind
	// results is reused across runs at this batch size; see Run.
	results map[string]*tensor.Tensor
}

// boundStep is one prebound node execution.
type boundStep struct {
	node   *graph.Node
	kernel ops.Kernel
	in     []*tensor.Tensor
	out    []*tensor.Tensor
	// zero lists the arena regions to clear before the kernel runs; empty
	// for kernels that overwrite every output element.
	zero [][]float32
}

// inputPatch rebinds one kernel argument to a caller-provided input tensor
// at the start of every Run.
type inputPatch struct{ step, arg, input int }

// outputBind resolves one graph output: a prebound tensor, or (when
// input >= 0) a passthrough of a caller-provided input.
type outputBind struct {
	name  string
	t     *tensor.Tensor
	input int
}

// NewSession prepares an executable session from a plan, allocating the
// arena (sized for the plan's MaxBatch) and resolving the full-batch step
// bindings up front.
func NewSession(plan *Plan) *Session {
	s := &Session{plan: plan, ctx: ops.NewCtx(plan.opts.Workers)}
	s.ctx.DisableScratchReuse = plan.opts.DisableScratchReuse
	s.ctx.Consts = plan.consts
	s.ctx.Fault = plan.opts.Fault
	s.inTensors = make([]*tensor.Tensor, len(plan.g.Inputs))
	if plan.opts.NoBufferReuse {
		return s
	}
	s.slots = make([][]float32, len(plan.slotSize))
	for i, size := range plan.slotSize {
		s.slots[i] = make([]float32, size)
	}
	s.inputIdx = make(map[*graph.Value]int, len(plan.g.Inputs))
	for i, in := range plan.g.Inputs {
		s.inputIdx[in] = i
	}
	for si, st := range plan.steps {
		for ai, v := range st.node.Inputs {
			if v.IsConst() {
				continue
			}
			if idx, ok := s.inputIdx[v]; ok {
				s.inPatches = append(s.inPatches, inputPatch{step: si, arg: ai, input: idx})
			}
		}
	}
	s.binds = make([]*batchBind, plan.maxBatch+1)
	s.binds[plan.maxBatch] = s.bindFor(plan.maxBatch)
	return s
}

// bindFor precomputes the per-step tensor bindings for batch n. Arena
// views are created once per value; values sharing a slot get distinct
// views over the same storage, exactly as the liveness planner intends.
// Batch-scaled values get views over the leading n/MaxBatch fraction of
// their slot.
func (s *Session) bindFor(n int) *batchBind {
	views := make(map[*graph.Value]*tensor.Tensor)
	view := func(v *graph.Value) *tensor.Tensor {
		if t := views[v]; t != nil {
			return t
		}
		buf := s.slots[s.plan.slotOf[v]][:s.plan.batchVolume(v, n)]
		t := tensor.FromSlice(buf, s.plan.batchShape(v, n)...)
		views[v] = t
		return t
	}
	// Batch-aware policies re-decide kernels at batch sizes other than the
	// one the plan was tuned for; binding happens once per batch size, so
	// the (possibly measured) decision is off the hot path.
	bp, batchAware := s.plan.opts.Policy.(BatchPolicy)
	batchAware = batchAware && n != s.plan.maxBatch
	b := &batchBind{steps: make([]boundStep, len(s.plan.steps))}
	for si, st := range s.plan.steps {
		bs := &b.steps[si]
		bs.node, bs.kernel = st.node, st.kernel
		overwrites := st.overwrites
		if batchAware {
			if k := s.selectBatchKernel(bp, st.node, n); k != nil {
				bs.kernel = k
				overwrites = ops.KernelOverwrites(k, st.node)
			}
		}
		bs.in = make([]*tensor.Tensor, len(st.node.Inputs))
		for ai, v := range st.node.Inputs {
			switch {
			case v.IsConst():
				bs.in[ai] = v.Const
			default:
				if _, ok := s.inputIdx[v]; ok {
					// Patched per run from the caller's tensors.
					continue
				}
				bs.in[ai] = view(v)
			}
		}
		bs.out = make([]*tensor.Tensor, len(st.node.Outputs))
		for oi, v := range st.node.Outputs {
			t := view(v)
			bs.out[oi] = t
			if !overwrites {
				bs.zero = append(bs.zero, t.Data())
			}
		}
	}
	b.outBinds = make([]outputBind, 0, len(s.plan.g.Outputs))
	for _, o := range s.plan.g.Outputs {
		ob := outputBind{name: o.Name, input: -1}
		switch {
		case o.IsConst():
			ob.t = o.Const
		default:
			if idx, ok := s.inputIdx[o]; ok {
				ob.input = idx
			} else {
				ob.t = view(o)
			}
		}
		b.outBinds = append(b.outBinds, ob)
	}
	b.results = make(map[string]*tensor.Tensor, len(b.outBinds))
	return b
}

// selectBatchKernel asks a batch-aware policy which kernel to bind for
// node at the given batch, with input/output shapes recomputed for it.
// Any error, op mismatch or unsupported choice falls back to the plan's
// compile-time kernel (a nil return).
func (s *Session) selectBatchKernel(bp BatchPolicy, node *graph.Node, batch int) ops.Kernel {
	in := make([][]int, len(node.Inputs))
	for i, v := range node.Inputs {
		in[i] = s.plan.batchShape(v, batch)
	}
	out := make([][]int, len(node.Outputs))
	for i, v := range node.Outputs {
		out[i] = s.plan.batchShape(v, batch)
	}
	k, err := bp.SelectBatch(node, batch, in, out)
	if err != nil || k == nil || k.Op() != node.Op || !k.Supports(node) {
		return nil
	}
	return k
}

// resolveBatch validates the caller's inputs, fills s.inTensors and
// returns the runtime batch size n. Batched inputs must agree on n and
// stay within the plan's MaxBatch; static inputs must match their planned
// shape exactly. The checks are comparison-only so the hot path does not
// allocate.
func (s *Session) resolveBatch(inputs map[string]*tensor.Tensor) (int, error) {
	n := 0
	for i, in := range s.plan.g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return 0, fmt.Errorf("runtime: missing input %q: %w", in.Name, ErrUnknownInput)
		}
		m := s.plan.metaFor(in)
		if m.static() {
			if !tensor.ShapeEq(t.Shape(), in.Shape) {
				return 0, fmt.Errorf("runtime: input %q has shape %v, want %v: %w", in.Name, t.Shape(), in.Shape, ErrShapeMismatch)
			}
			s.inTensors[i] = t
			continue
		}
		got := t.Shape()
		if len(got) != len(m.base) || got[m.dim]%m.base[m.dim] != 0 {
			return 0, fmt.Errorf("runtime: input %q has shape %v, want %v with a batched dim %d: %w", in.Name, got, m.base, m.dim, ErrShapeMismatch)
		}
		bn := got[m.dim] / m.base[m.dim]
		for d := range got {
			want := m.base[d]
			if d == m.dim {
				want *= bn
			}
			if got[d] != want {
				return 0, fmt.Errorf("runtime: input %q has shape %v, want %v with dim %d scaled by the batch: %w", in.Name, got, m.base, m.dim, ErrShapeMismatch)
			}
		}
		if bn > s.plan.maxBatch {
			return 0, fmt.Errorf("runtime: input %q batch %d outside 1..%d (plan MaxBatch): %w", in.Name, bn, s.plan.maxBatch, ErrBatchTooLarge)
		}
		if bn < 1 {
			return 0, fmt.Errorf("runtime: input %q batch %d outside 1..%d (plan MaxBatch): %w", in.Name, bn, s.plan.maxBatch, ErrShapeMismatch)
		}
		if n != 0 && bn != n {
			return 0, fmt.Errorf("runtime: inputs disagree on batch size (%d vs %d): %w", bn, n, ErrShapeMismatch)
		}
		n = bn
		s.inTensors[i] = t
	}
	// Every declared input resolved; a larger request map must carry names
	// the graph does not declare (the error path may allocate freely).
	if len(inputs) > len(s.plan.g.Inputs) {
		for name := range inputs {
			if v := s.plan.g.Value(name); v == nil || !isGraphInput(s.plan.g, v) {
				return 0, fmt.Errorf("runtime: graph %q declares no input %q: %w", s.plan.g.Name, name, ErrUnknownInput)
			}
		}
	}
	if n == 0 {
		n = s.plan.maxBatch // no batched inputs: run at the planned shapes
	}
	return n, nil
}

// isGraphInput reports whether v is one of g's declared inputs.
func isGraphInput(g *graph.Graph, v *graph.Value) bool {
	for _, in := range g.Inputs {
		if in == v {
			return true
		}
	}
	return false
}

// LayerTiming records one node execution during a profiled run.
type LayerTiming struct {
	Node     *graph.Node
	Kernel   string
	Duration time.Duration
	Flops    int64
}

// Run executes the graph on the given named inputs and returns the graph
// outputs keyed by value name. The runtime batch size is taken from the
// inputs' leading dimension (any 1 ≤ n ≤ the plan's MaxBatch). Both the
// returned map and the output tensors (which alias arena storage) are
// reused by the next Run at the same batch size on this session; Clone
// tensors to keep results across runs.
//
// Cancellation is checked between plan steps: when ctx is cancelled (or
// its deadline passes) Run returns ctx.Err() at the next step boundary,
// leaving the arena in an undefined but reusable state. The check is a
// non-blocking channel poll, so an inert context (context.Background)
// costs one nil comparison per step and the steady-state path stays
// allocation-free.
func (s *Session) Run(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	outs, _, err := s.run(ctx, inputs, false)
	return outs, err
}

// RunProfiled is Run plus per-layer wall-clock timings.
func (s *Session) RunProfiled(ctx context.Context, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, []LayerTiming, error) {
	return s.run(ctx, inputs, true)
}

// cancelCheck returns the context's done channel, observed once per run;
// a nil channel (context.Background and friends) disables the per-step
// poll entirely.
func cancelCheck(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelled performs the non-blocking per-step poll of done.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Poisoned reports whether a plan step panicked on this session, leaving
// its arena and kernel scratch in an unknown state. A poisoned session
// must be discarded; SessionPool.Put does so automatically.
func (s *Session) Poisoned() bool { return s.poisoned }

// runStep executes one step behind the panic barrier: the fault-injection
// hook fires first (inside the barrier, so injected panics travel the
// same path as real ones), then the kernel. A recovered panic poisons the
// session and comes back as a *PlanPanicError carrying the step identity;
// the request fails, the process does not. The defer is open-coded and
// recover is reached only when panicking, so the steady-state path stays
// allocation-free.
func (s *Session) runStep(node *graph.Node, kernel ops.Kernel, in, out []*tensor.Tensor) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.poisoned = true
			err = &PlanPanicError{Model: s.plan.g.Name, Node: node.Name, Op: node.Op, Value: r}
		}
	}()
	if err := s.ctx.Fault.Step(s.plan.g.Name, node.Name, node.Op); err != nil {
		return fmt.Errorf("runtime: node %q (%s): %w", node.Name, node.Op, err)
	}
	if err := kernel.Run(s.ctx, node, in, out); err != nil {
		return fmt.Errorf("runtime: node %q (%s, kernel %s): %w", node.Name, node.Op, kernel.Name(), err)
	}
	return nil
}

func (s *Session) run(ctx context.Context, inputs map[string]*tensor.Tensor, profile bool) (map[string]*tensor.Tensor, []LayerTiming, error) {
	if s.slots == nil {
		return s.runDynamic(ctx, inputs, profile)
	}
	n, err := s.resolveBatch(inputs)
	if err != nil {
		return nil, nil, err
	}
	done := cancelCheck(ctx)
	b := s.binds[n]
	if b == nil {
		b = s.bindFor(n)
		s.binds[n] = b
	}
	for _, pt := range s.inPatches {
		b.steps[pt.step].in[pt.arg] = s.inTensors[pt.input]
	}
	var timings []LayerTiming
	if profile {
		timings = make([]LayerTiming, 0, len(b.steps))
	}
	for i := range b.steps {
		if cancelled(done) {
			return nil, timings, ctx.Err()
		}
		st := &b.steps[i]
		for _, z := range st.zero {
			for j := range z {
				z[j] = 0
			}
		}
		start := time.Time{}
		if profile {
			start = time.Now()
		}
		if err := s.runStep(st.node, st.kernel, st.in, st.out); err != nil {
			return nil, nil, err
		}
		if profile {
			timings = append(timings, LayerTiming{
				Node:     st.node,
				Kernel:   st.kernel.Name(),
				Duration: time.Since(start),
				Flops:    scaledFlops(st.node, n, s.plan.maxBatch),
			})
		}
	}
	for _, ob := range b.outBinds {
		t := ob.t
		if ob.input >= 0 {
			t = s.inTensors[ob.input]
		}
		b.results[ob.name] = t
	}
	return b.results, timings, nil
}

// runDynamic is the NoBufferReuse path: every value gets a fresh buffer on
// every run, emulating frameworks that allocate per operator call
// (torch-sim; ablation A3). It honours the runtime batch the same way the
// arena path does, allocating values at their batch-n shapes.
func (s *Session) runDynamic(ctx context.Context, inputs map[string]*tensor.Tensor, profile bool) (map[string]*tensor.Tensor, []LayerTiming, error) {
	n, err := s.resolveBatch(inputs)
	if err != nil {
		return nil, nil, err
	}
	done := cancelCheck(ctx)
	bound := make(map[*graph.Value]*tensor.Tensor, len(s.plan.slotOf)+len(inputs))
	for i, in := range s.plan.g.Inputs {
		bound[in] = s.inTensors[i]
	}

	var timings []LayerTiming
	if profile {
		timings = make([]LayerTiming, 0, len(s.plan.steps))
	}
	for _, st := range s.plan.steps {
		if cancelled(done) {
			return nil, timings, ctx.Err()
		}
		in := make([]*tensor.Tensor, len(st.node.Inputs))
		for i, v := range st.node.Inputs {
			t, err := tensorFor(bound, v)
			if err != nil {
				return nil, nil, err
			}
			in[i] = t
		}
		out := make([]*tensor.Tensor, len(st.node.Outputs))
		for i, v := range st.node.Outputs {
			t := tensor.New(s.plan.batchShape(v, n)...)
			bound[v] = t
			out[i] = t
		}
		start := time.Time{}
		if profile {
			start = time.Now()
		}
		if err := s.runStep(st.node, st.kernel, in, out); err != nil {
			return nil, nil, err
		}
		if profile {
			timings = append(timings, LayerTiming{
				Node:     st.node,
				Kernel:   st.kernel.Name(),
				Duration: time.Since(start),
				Flops:    scaledFlops(st.node, n, s.plan.maxBatch),
			})
		}
	}

	results := make(map[string]*tensor.Tensor, len(s.plan.g.Outputs))
	for _, o := range s.plan.g.Outputs {
		t, err := tensorFor(bound, o)
		if err != nil {
			return nil, nil, err
		}
		results[o.Name] = t
	}
	return results, timings, nil
}

// scaledFlops rescales a node's static flop estimate (taken at the plan's
// MaxBatch shapes) to the runtime batch n. Every op's flop count is linear
// in the batch, so the ratio is exact.
func scaledFlops(node *graph.Node, n, maxBatch int) int64 {
	fl := ops.NodeFlops(node)
	if maxBatch > 1 && n != maxBatch {
		fl = fl * int64(n) / int64(maxBatch)
	}
	return fl
}

// tensorFor resolves the tensor currently bound to v on the dynamic path.
func tensorFor(bound map[*graph.Value]*tensor.Tensor, v *graph.Value) (*tensor.Tensor, error) {
	if t := bound[v]; t != nil {
		return t, nil
	}
	if v.IsConst() {
		return v.Const, nil
	}
	return nil, fmt.Errorf("runtime: value %q read before being produced", v.Name)
}

// Plan returns the session's compiled plan.
func (s *Session) Plan() *Plan { return s.plan }

// CtxScratchBytes reports the kernel scratch footprint accumulated so far
// (im2col buffers, Winograd transforms, cached weights).
func (s *Session) CtxScratchBytes() int64 { return s.ctx.ScratchBytes }
