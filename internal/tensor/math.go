package tensor

import (
	"fmt"
	"math"
)

// AddInPlace adds u elementwise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.data {
		t.data[i] += v
	}
}

// MulInPlace multiplies t elementwise by u. Shapes must match exactly.
func (t *Tensor) MulInPlace(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: MulInPlace shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements; zero for an empty
// tensor.
func (t *Tensor) Mean() float32 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.data))
}

// Max returns the maximum element and its flat index. It panics on an
// empty tensor.
func (t *Tensor) Max() (float32, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Min returns the minimum element and its flat index. It panics on an
// empty tensor.
func (t *Tensor) Min() (float32, int) {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// AbsMax returns the maximum absolute element value; zero for an empty
// tensor.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// TopK returns the indices of the k largest elements in descending order.
// k is clamped to the tensor size.
func (t *Tensor) TopK(k int) []int {
	if k > len(t.data) {
		k = len(t.data)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, 0, k)
	taken := make([]bool, len(t.data))
	for n := 0; n < k; n++ {
		best := -1
		for i, v := range t.data {
			if taken[i] {
				continue
			}
			if best < 0 || v > t.data[best] {
				best = i
				_ = v
			}
		}
		taken[best] = true
		idx = append(idx, best)
	}
	return idx
}
