package runtime

import (
	"fmt"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// Session executes a compiled Plan. It owns the buffer arena and the
// kernel context (scratch pools, GEMM packing buffers), and shares the
// plan's constant cache with every other session of the same plan.
//
// Binding resolution happens once, at construction: every step's input and
// output tensors are resolved to constant tensors or arena views up front,
// and output regions are zero-filled per run only for kernels that do not
// overwrite them. The steady-state Run loop is therefore a straight walk
// over prebound steps with zero heap allocations.
//
// A Session is not safe for concurrent use; create one per goroutine or
// use a SessionPool.
type Session struct {
	plan *Plan
	ctx  *ops.Ctx

	// slots are the arena buffers (nil when NoBufferReuse, which selects
	// the allocating dynamic path).
	slots [][]float32

	steps     []boundStep
	inPatches []inputPatch
	inTensors []*tensor.Tensor
	outBinds  []outputBind
	// results is reused across runs; see Run.
	results map[string]*tensor.Tensor
}

// boundStep is one prebound node execution.
type boundStep struct {
	node   *graph.Node
	kernel ops.Kernel
	in     []*tensor.Tensor
	out    []*tensor.Tensor
	// zero lists the arena regions to clear before the kernel runs; empty
	// for kernels that overwrite every output element.
	zero [][]float32
}

// inputPatch rebinds one kernel argument to a caller-provided input tensor
// at the start of every Run.
type inputPatch struct{ step, arg, input int }

// outputBind resolves one graph output: a prebound tensor, or (when
// input >= 0) a passthrough of a caller-provided input.
type outputBind struct {
	name  string
	t     *tensor.Tensor
	input int
}

// NewSession prepares an executable session from a plan, allocating the
// arena and resolving every step binding up front.
func NewSession(plan *Plan) *Session {
	s := &Session{plan: plan, ctx: ops.NewCtx(plan.opts.Workers)}
	s.ctx.DisableScratchReuse = plan.opts.DisableScratchReuse
	s.ctx.Consts = plan.consts
	if plan.opts.NoBufferReuse {
		return s
	}
	s.slots = make([][]float32, len(plan.slotSize))
	for i, size := range plan.slotSize {
		s.slots[i] = make([]float32, size)
	}
	s.bind()
	return s
}

// bind precomputes the per-step tensor bindings. Arena views are created
// once per value; values sharing a slot get distinct views over the same
// storage, exactly as the liveness planner intends.
func (s *Session) bind() {
	inputIdx := make(map[*graph.Value]int, len(s.plan.g.Inputs))
	for i, in := range s.plan.g.Inputs {
		inputIdx[in] = i
	}
	views := make(map[*graph.Value]*tensor.Tensor)
	view := func(v *graph.Value) *tensor.Tensor {
		if t := views[v]; t != nil {
			return t
		}
		buf := s.slots[s.plan.slotOf[v]][:tensor.Volume(v.Shape)]
		t := tensor.FromSlice(buf, v.Shape...)
		views[v] = t
		return t
	}
	s.steps = make([]boundStep, len(s.plan.steps))
	for si, st := range s.plan.steps {
		bs := &s.steps[si]
		bs.node, bs.kernel = st.node, st.kernel
		bs.in = make([]*tensor.Tensor, len(st.node.Inputs))
		for ai, v := range st.node.Inputs {
			switch {
			case v.IsConst():
				bs.in[ai] = v.Const
			default:
				if idx, ok := inputIdx[v]; ok {
					s.inPatches = append(s.inPatches, inputPatch{step: si, arg: ai, input: idx})
				} else {
					bs.in[ai] = view(v)
				}
			}
		}
		bs.out = make([]*tensor.Tensor, len(st.node.Outputs))
		for oi, v := range st.node.Outputs {
			t := view(v)
			bs.out[oi] = t
			if !st.overwrites {
				bs.zero = append(bs.zero, t.Data())
			}
		}
	}
	s.inTensors = make([]*tensor.Tensor, len(s.plan.g.Inputs))
	s.outBinds = make([]outputBind, 0, len(s.plan.g.Outputs))
	for _, o := range s.plan.g.Outputs {
		ob := outputBind{name: o.Name, input: -1}
		switch {
		case o.IsConst():
			ob.t = o.Const
		default:
			if idx, ok := inputIdx[o]; ok {
				ob.input = idx
			} else {
				ob.t = view(o)
			}
		}
		s.outBinds = append(s.outBinds, ob)
	}
	s.results = make(map[string]*tensor.Tensor, len(s.outBinds))
}

// LayerTiming records one node execution during a profiled run.
type LayerTiming struct {
	Node     *graph.Node
	Kernel   string
	Duration time.Duration
	Flops    int64
}

// Run executes the graph on the given named inputs and returns the graph
// outputs keyed by value name. Both the returned map and the output
// tensors (which alias arena storage) are reused by the next Run on this
// session; Clone tensors to keep results across runs.
func (s *Session) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	outs, _, err := s.run(inputs, false)
	return outs, err
}

// RunProfiled is Run plus per-layer wall-clock timings.
func (s *Session) RunProfiled(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, []LayerTiming, error) {
	return s.run(inputs, true)
}

func (s *Session) run(inputs map[string]*tensor.Tensor, profile bool) (map[string]*tensor.Tensor, []LayerTiming, error) {
	if s.slots == nil {
		return s.runDynamic(inputs, profile)
	}
	for i, in := range s.plan.g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return nil, nil, fmt.Errorf("runtime: missing input %q", in.Name)
		}
		if !tensor.ShapeEq(t.Shape(), in.Shape) {
			return nil, nil, fmt.Errorf("runtime: input %q has shape %v, want %v", in.Name, t.Shape(), in.Shape)
		}
		s.inTensors[i] = t
	}
	for _, pt := range s.inPatches {
		s.steps[pt.step].in[pt.arg] = s.inTensors[pt.input]
	}
	var timings []LayerTiming
	if profile {
		timings = make([]LayerTiming, 0, len(s.steps))
	}
	for i := range s.steps {
		st := &s.steps[i]
		for _, z := range st.zero {
			for j := range z {
				z[j] = 0
			}
		}
		start := time.Time{}
		if profile {
			start = time.Now()
		}
		if err := st.kernel.Run(s.ctx, st.node, st.in, st.out); err != nil {
			return nil, nil, fmt.Errorf("runtime: node %q (%s, kernel %s): %w", st.node.Name, st.node.Op, st.kernel.Name(), err)
		}
		if profile {
			timings = append(timings, LayerTiming{
				Node:     st.node,
				Kernel:   st.kernel.Name(),
				Duration: time.Since(start),
				Flops:    ops.NodeFlops(st.node),
			})
		}
	}
	for _, ob := range s.outBinds {
		t := ob.t
		if ob.input >= 0 {
			t = s.inTensors[ob.input]
		}
		s.results[ob.name] = t
	}
	return s.results, timings, nil
}

// runDynamic is the NoBufferReuse path: every value gets a fresh buffer on
// every run, emulating frameworks that allocate per operator call
// (torch-sim; ablation A3).
func (s *Session) runDynamic(inputs map[string]*tensor.Tensor, profile bool) (map[string]*tensor.Tensor, []LayerTiming, error) {
	bound := make(map[*graph.Value]*tensor.Tensor, len(s.plan.slotOf)+len(inputs))
	for _, in := range s.plan.g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return nil, nil, fmt.Errorf("runtime: missing input %q", in.Name)
		}
		if !tensor.ShapeEq(t.Shape(), in.Shape) {
			return nil, nil, fmt.Errorf("runtime: input %q has shape %v, want %v", in.Name, t.Shape(), in.Shape)
		}
		bound[in] = t
	}

	var timings []LayerTiming
	if profile {
		timings = make([]LayerTiming, 0, len(s.plan.steps))
	}
	for _, st := range s.plan.steps {
		in := make([]*tensor.Tensor, len(st.node.Inputs))
		for i, v := range st.node.Inputs {
			t, err := tensorFor(bound, v)
			if err != nil {
				return nil, nil, err
			}
			in[i] = t
		}
		out := make([]*tensor.Tensor, len(st.node.Outputs))
		for i, v := range st.node.Outputs {
			t := tensor.New(v.Shape...)
			bound[v] = t
			out[i] = t
		}
		start := time.Time{}
		if profile {
			start = time.Now()
		}
		if err := st.kernel.Run(s.ctx, st.node, in, out); err != nil {
			return nil, nil, fmt.Errorf("runtime: node %q (%s, kernel %s): %w", st.node.Name, st.node.Op, st.kernel.Name(), err)
		}
		if profile {
			timings = append(timings, LayerTiming{
				Node:     st.node,
				Kernel:   st.kernel.Name(),
				Duration: time.Since(start),
				Flops:    ops.NodeFlops(st.node),
			})
		}
	}

	results := make(map[string]*tensor.Tensor, len(s.plan.g.Outputs))
	for _, o := range s.plan.g.Outputs {
		t, err := tensorFor(bound, o)
		if err != nil {
			return nil, nil, err
		}
		results[o.Name] = t
	}
	return results, timings, nil
}

// tensorFor resolves the tensor currently bound to v on the dynamic path.
func tensorFor(bound map[*graph.Value]*tensor.Tensor, v *graph.Value) (*tensor.Tensor, error) {
	if t := bound[v]; t != nil {
		return t, nil
	}
	if v.IsConst() {
		return v.Const, nil
	}
	return nil, fmt.Errorf("runtime: value %q read before being produced", v.Name)
}

// Plan returns the session's compiled plan.
func (s *Session) Plan() *Plan { return s.plan }

// CtxScratchBytes reports the kernel scratch footprint accumulated so far
// (im2col buffers, Winograd transforms, cached weights).
func (s *Session) CtxScratchBytes() int64 { return s.ctx.ScratchBytes }
