// Package faultinject is the runtime's fault-injection harness: a
// build-tag-free hook point the session consults at every plan-step
// boundary. An Injector holds a set of rules matching steps by model,
// node name and op; a matching rule injects a panic, a typed error or
// extra latency, optionally with a probability and a bounded number of
// firings. The zero hook (a nil *Injector on ops.Ctx) costs one pointer
// comparison per step, so production binaries carry the hook at no
// measurable cost and the overload test battery can kill steps mid-batch
// without a special build.
//
// Injected panics carry a *PanicValue, so recovery layers (and tests)
// can distinguish injected faults from genuine kernel bugs.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps; tests branch on
// it with errors.Is to separate injected faults from real failures.
var ErrInjected = errors.New("faultinject: injected error")

// Action selects what a matching rule does to the step.
type Action int

// The injectable fault classes.
const (
	// ActError makes the step return a typed error wrapping ErrInjected
	// (or the rule's Err).
	ActError Action = iota
	// ActPanic makes the step panic with a *PanicValue.
	ActPanic
	// ActDelay sleeps for the rule's Delay, then lets the step proceed —
	// latency injection for overload and deadline tests.
	ActDelay
)

// String names the action for counters and log lines.
func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// PanicValue is the value an ActPanic rule panics with. Recovery layers
// that want to treat injected panics specially (or tests asserting the
// panic reached them) type-switch on *PanicValue.
type PanicValue struct {
	// Model and Step identify the plan step that was killed.
	Model, Step string
}

// Error formats the panic value; it also lets the recovered value read
// naturally when wrapped into an error message.
func (p *PanicValue) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s/%s", p.Model, p.Step)
}

// Rule matches plan steps and describes the fault to inject. Empty
// match fields match everything, so the zero Rule with Action ActError
// fails every step of every model.
type Rule struct {
	// Model matches the graph name ("" matches any model).
	Model string
	// Step matches the node name ("" matches any step).
	Step string
	// Op matches the node op ("" matches any op).
	Op string
	// Probability is the chance a matching step fires the rule; values
	// outside (0, 1) mean always.
	Probability float64
	// Times caps how often the rule fires (0 = unlimited).
	Times int64
	// Action selects the fault class.
	Action Action
	// Delay is the injected latency for ActDelay.
	Delay time.Duration
	// Err overrides the error returned by ActError; it is wrapped so
	// errors.Is(err, ErrInjected) still holds. Nil uses ErrInjected alone.
	Err error

	fired atomic.Int64
}

// Injector evaluates rules at step boundaries. It is safe for concurrent
// use by any number of sessions; the RNG behind probabilities is seeded
// explicitly so test runs are reproducible.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Rule

	panics atomic.Int64
	errors atomic.Int64
	delays atomic.Int64
}

// New builds an injector over the given rules with a deterministic RNG.
func New(seed int64, rules ...*Rule) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: rules}
}

// Counts reports how many faults of each class the injector has fired:
// panics, errors, delays.
func (in *Injector) Counts() (panics, errs, delays int64) {
	return in.panics.Load(), in.errors.Load(), in.delays.Load()
}

// matches reports whether the rule applies to (model, step, op).
func (r *Rule) matches(model, step, op string) bool {
	return (r.Model == "" || r.Model == model) &&
		(r.Step == "" || r.Step == step) &&
		(r.Op == "" || r.Op == op)
}

// Step is the hook the runtime calls before executing a plan step. It
// returns a non-nil error to fail the step, panics with *PanicValue to
// kill it, sleeps to delay it, or returns nil to let it run untouched.
// A nil receiver is a no-op, so callers hold an always-present pointer
// and pay one comparison when injection is off.
func (in *Injector) Step(model, step, op string) error {
	if in == nil {
		return nil
	}
	for _, r := range in.rules {
		if !r.matches(model, step, op) {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 {
			in.mu.Lock()
			miss := in.rng.Float64() >= r.Probability
			in.mu.Unlock()
			if miss {
				continue
			}
		}
		if r.Times > 0 && r.fired.Add(1) > r.Times {
			continue
		}
		switch r.Action {
		case ActPanic:
			in.panics.Add(1)
			panic(&PanicValue{Model: model, Step: step})
		case ActDelay:
			in.delays.Add(1)
			time.Sleep(r.Delay)
		default:
			in.errors.Add(1)
			if r.Err != nil {
				return fmt.Errorf("faultinject: step %s/%s: %w: %w", model, step, r.Err, ErrInjected)
			}
			return fmt.Errorf("faultinject: step %s/%s: %w", model, step, ErrInjected)
		}
	}
	return nil
}
