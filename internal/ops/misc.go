package ops

import (
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Structural operators: Identity/Dropout (inference no-ops), Flatten,
// Reshape (layout is row-major, so both are copies), Concat and Pad.
// All overwrite their full output except Pad, which relies on the runtime
// zero-fill for the border when the pad value is 0.
func init() {
	Register(NewOverwritingKernel("identity.copy", "Identity", nil, runCopy))
	Register(NewOverwritingKernel("dropout.copy", "Dropout", nil, runCopy))
	Register(NewOverwritingKernel("flatten.copy", "Flatten", nil, runCopy))
	Register(NewOverwritingKernel("reshape.copy", "Reshape", nil, runCopy))
	Register(NewOverwritingKernel("concat.copy", "Concat", nil, runConcat))
	Register(NewKernel("pad.copy", "Pad", nil, runPad))
}

func runCopy(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	copy(out[0].Data(), in[0].Data())
	return nil
}

func runConcat(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	axis := n.Attrs.Int("axis", 1)
	shape := in[0].Shape()
	if axis < 0 {
		axis += len(shape)
	}
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= shape[i]
	}
	for i := axis + 1; i < len(shape); i++ {
		inner *= shape[i]
	}
	outAxis := out[0].Shape()[axis]
	outRow := outAxis * inner
	yd := out[0].Data()
	off := 0
	for _, t := range in {
		rowLen := t.Shape()[axis] * inner
		td := t.Data()
		for o := 0; o < outer; o++ {
			copy(yd[o*outRow+off:o*outRow+off+rowLen], td[o*rowLen:(o+1)*rowLen])
		}
		off += rowLen
	}
	return nil
}

func runPad(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	pads := n.Attrs.Ints("pads", nil)
	value := float32(n.Attrs.Float("value", 0))
	s := in[0].Shape()
	nb, c, h, w := s[0], s[1], s[2], s[3]
	top, left := pads[0], pads[1]
	oh := out[0].Shape()[2]
	ow := out[0].Shape()[3]
	xd, yd := in[0].Data(), out[0].Data()
	if value != 0 {
		for i := range yd {
			yd[i] = value
		}
	}
	if n.Attrs.Str("layout", "") == "nhwc" {
		// NHWC: dims decode as [N, H, W, C]; the pad touches the two middle
		// axes and every (b, y) source row is a contiguous w*c block.
		nb, h, w, c := s[0], s[1], s[2], s[3]
		oh, ow := out[0].Shape()[1], out[0].Shape()[2]
		for b := 0; b < nb; b++ {
			src := xd[b*h*w*c:]
			dst := yd[b*oh*ow*c:]
			for y := 0; y < h; y++ {
				copy(dst[((y+top)*ow+left)*c:((y+top)*ow+left+w)*c], src[y*w*c:(y+1)*w*c])
			}
		}
		return nil
	}
	for i := 0; i < nb*c; i++ {
		src := xd[i*h*w:]
		dst := yd[i*oh*ow:]
		for y := 0; y < h; y++ {
			copy(dst[(y+top)*ow+left:(y+top)*ow+left+w], src[y*w:(y+1)*w])
		}
	}
	return nil
}
