//go:build !amd64 || noasm

package gemm

// FMARow computes dst[i] += a[i]*b[i] for i in [0, len(dst)). a and b must
// be at least as long as dst. Portable form; amd64 dispatches to an
// AVX2/FMA loop when the CPU supports it.
func FMARow(dst, a, b []float32) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}
