package ops

import (
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// BatchNorm (inference mode): y = scale * (x - mean) / sqrt(var + eps) + bias
// per channel. The optimisation pipeline normally folds this into the
// preceding Conv/Dense; this kernel exists for unoptimised graphs and for
// the pass-ablation experiment.
//
//	inputs: X [N,C,...], scale [C], bias [C], mean [C], var [C]
//	attr:   "epsilon" float64 (default 1e-5)
func init() {
	Register(NewOverwritingKernel("batchnorm.direct", "BatchNorm", nil, runBatchNorm))
}

func runBatchNorm(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x := in[0]
	scale, bias, mean, variance := in[1].Data(), in[2].Data(), in[3].Data(), in[4].Data()
	eps := n.Attrs.Float("epsilon", 1e-5)
	s := x.Shape()
	nb, c := s[0], s[1]
	spatial := 1
	for _, d := range s[2:] {
		spatial *= d
	}
	xd, yd := x.Data(), out[0].Data()
	for ch := 0; ch < c; ch++ {
		// Precompute the affine form: y = a*x + b.
		a := scale[ch] / float32(math.Sqrt(float64(variance[ch])+eps))
		b := bias[ch] - a*mean[ch]
		for batch := 0; batch < nb; batch++ {
			off := (batch*c + ch) * spatial
			src := xd[off : off+spatial]
			dst := yd[off : off+spatial]
			for i, v := range src {
				dst[i] = a*v + b
			}
		}
	}
	return nil
}
