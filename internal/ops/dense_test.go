package ops

import (
	"testing"
	"testing/quick"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

func TestDenseNaiveKnownValues(t *testing.T) {
	// X = [1 2], W = [[1 0],[0 1],[1 1]] (M=3,K=2), B = [10 20 30].
	x := tensor.FromSlice([]float32{1, 2}, 1, 2)
	w := tensor.FromSlice([]float32{1, 0, 0, 1, 1, 1}, 3, 2)
	b := tensor.FromSlice([]float32{10, 20, 30}, 3)
	out := runKernel(t, "dense.naive", "Dense", graph.Attrs{}, x, w, b)
	want := []float32{11, 22, 33}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestDenseGemmMatchesNaive(t *testing.T) {
	f := func(seed uint64, nb, kb, mb uint8) bool {
		n := int(nb%4) + 1
		k := int(kb%32) + 1
		m := int(mb%32) + 1
		r := tensor.NewRNG(seed)
		x := tensor.Rand(r, -1, 1, n, k)
		w := tensor.Rand(r, -1, 1, m, k)
		b := tensor.Rand(r, -1, 1, m)
		ref := runKernel(t, "dense.naive", "Dense", graph.Attrs{}, x, w, b)
		got := runKernel(t, "dense.gemm", "Dense", graph.Attrs{}, x, w, b)
		return tensor.AllClose(got, ref, tensor.DefaultTolerance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseNoBias(t *testing.T) {
	x := tensor.FromSlice([]float32{3}, 1, 1)
	w := tensor.FromSlice([]float32{2}, 1, 1)
	for _, k := range []string{"dense.naive", "dense.gemm"} {
		out := runKernel(t, k, "Dense", graph.Attrs{}, x, w)
		if out.At(0, 0) != 6 {
			t.Fatalf("%s: %v", k, out.Data())
		}
	}
}

func TestDenseFusedRelu(t *testing.T) {
	x := tensor.FromSlice([]float32{1, -1}, 1, 2)
	w := tensor.FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	for _, k := range []string{"dense.naive", "dense.gemm"} {
		out := runKernel(t, k, "Dense", graph.Attrs{"activation": "relu"}, x, w)
		if out.At(0, 0) != 1 || out.At(0, 1) != 0 {
			t.Fatalf("%s fused relu wrong: %v", k, out.Data())
		}
	}
}

func TestDenseGemmWeightCacheSurvivesReuse(t *testing.T) {
	// The transposed-weight cache is keyed by node name; two runs with the
	// same ctx must give identical results.
	r := tensor.NewRNG(5)
	x := tensor.Rand(r, -1, 1, 2, 8)
	w := tensor.Rand(r, -1, 1, 4, 8)
	n := buildNode(t, "Dense", graph.Attrs{}, x, w)
	ctx := NewCtx(1)
	k := ByName("dense.gemm")
	out1 := tensor.New(2, 4)
	out2 := tensor.New(2, 4)
	if err := k.Run(ctx, n, []*tensor.Tensor{x, w}, []*tensor.Tensor{out1}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(ctx, n, []*tensor.Tensor{x, w}, []*tensor.Tensor{out2}); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(out1, out2, 0) {
		t.Fatal("cached-weight rerun differs")
	}
}

func TestDenseShapeErrors(t *testing.T) {
	g := graph.New("bad")
	x, _ := g.Input("x", []int{1, 4})
	w, _ := g.Const("w", tensor.New(3, 5)) // K mismatch
	y, _ := g.Add("Dense", "d", nil, x, w)
	_ = g.MarkOutput(y)
	if err := g.Finalize(); err == nil {
		t.Fatal("feature mismatch not caught")
	}
}
