package orpheus

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// stressCNN builds a small network that exercises the production hot
// path: a 3x3 conv (im2col/winograd candidates), a pointwise conv (the
// prepacked fast path), pooling, dense and softmax.
func stressCNN(t testing.TB) *Model {
	t.Helper()
	r := tensor.NewRNG(42)
	g := graph.New("stress-cnn")
	x, err := g.Input("x", []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := g.Const("w1", tensor.HeNormal(r, 8, 3, 3, 3))
	b1, _ := g.Const("b1", tensor.Rand(r, -0.1, 0.1, 8))
	c1, _ := g.Add("Conv", "conv1", graph.Attrs{"pads": []int{1, 1, 1, 1}, "activation": "relu"}, x, w1, b1)
	w2, _ := g.Const("w2", tensor.HeNormal(r, 16, 8, 1, 1))
	c2, _ := g.Add("Conv", "conv2", graph.Attrs{"activation": "relu"}, c1, w2)
	p1, _ := g.Add("MaxPool", "pool1", graph.Attrs{"kernel": []int{2, 2}}, c2)
	ga, _ := g.Add("GlobalAveragePool", "gap", nil, p1)
	fl, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, ga)
	wd, _ := g.Const("wd", tensor.HeNormal(r, 10, 16))
	bd, _ := g.Const("bd", tensor.Rand(r, -0.1, 0.1, 10))
	d1, _ := g.Add("Dense", "fc", nil, fl, wd, bd)
	sm, _ := g.Add("Softmax", "prob", nil, d1)
	if err := g.MarkOutput(sm); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return FromGraph(g)
}

// TestConcurrentPredictStress hammers one compiled session from many
// goroutines with two distinct inputs and checks every result against the
// serial reference: pooled sessions must never bleed state across
// requests. Run with -race.
func TestConcurrentPredictStress(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithBackend("orpheus"))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []*Tensor{
		RandomTensor(1, m.InputShape()...),
		RandomTensor(2, m.InputShape()...),
	}
	want := make([]*Tensor, len(inputs))
	for i, x := range inputs {
		out, err := sess.Predict(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				which := (g + i) % len(inputs)
				out, err := sess.Predict(context.Background(), inputs[which])
				if err != nil {
					errc <- err
					return
				}
				// Identical plan and kernels: results must be bit-exact.
				if !tensor.AllClose(out, want[which], 0) {
					errc <- fmt.Errorf("concurrent Predict diverged from serial reference (goroutine %d, iter %d, input %d)", g, i, which)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestMultiWorkerPredictMatchesSingle checks that the pooled parallel
// GEMM path (workers > 1) computes the same result as the single-threaded
// path, including under concurrent callers.
func TestMultiWorkerPredictMatchesSingle(t *testing.T) {
	m := stressCNN(t)
	x := RandomTensor(7, m.InputShape()...)
	s1, err := m.Compile(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := m.Compile(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, err := s4.Predict(context.Background(), x)
				if err != nil {
					t.Error(err)
					return
				}
				if !tensor.AllClose(got, want, 1e-6) {
					t.Error("multi-worker Predict diverged from single-worker result")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentServeStylePredict mirrors the serve path: concurrent Run
// calls through the same facade session with cloned outputs.
func TestConcurrentRunStress(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(3, m.InputShape()...)
	in := map[string]*Tensor{m.InputName(): x}
	ref, err := sess.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				outs, err := sess.Run(context.Background(), in)
				if err != nil {
					t.Error(err)
					return
				}
				for name, v := range outs {
					if !tensor.AllClose(v, ref[name], 0) {
						t.Errorf("concurrent Run output %q diverged", name)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
