package ops

import (
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// NodeFlops estimates the floating-point operation count of one node
// (multiply-accumulate counted as 2 flops). Structural ops (reshape,
// concat, pad) count zero arithmetic; the byte estimate captures their
// cost instead.
func NodeFlops(n *graph.Node) int64 {
	switch n.Op {
	case "Conv":
		p, err := resolveConv(n)
		if err != nil {
			return 0
		}
		return p.flops()
	case "Dense":
		x, w := n.Inputs[0].Shape, n.Inputs[1].Shape
		if len(x) != 2 || len(w) != 2 {
			return 0
		}
		return 2 * int64(x[0]) * int64(x[1]) * int64(w[0])
	case "BatchNorm", "Softmax", "Sigmoid":
		return 4 * outVolume(n) // a few ops per element
	case "Relu", "Relu6", "LeakyRelu", "Add", "Mul":
		return outVolume(n)
	case "MaxPool", "AveragePool":
		p, err := resolvePool(n)
		if err != nil {
			return 0
		}
		return int64(p.n) * int64(p.c) * int64(p.oh) * int64(p.ow) * int64(p.kh) * int64(p.kw)
	case "GlobalAveragePool":
		if len(n.Inputs) == 1 {
			return int64(tensor.Volume(n.Inputs[0].Shape))
		}
		return 0
	default:
		return 0
	}
}

// NodeBytes estimates the memory traffic of one node: every input read
// once plus every output written once, in bytes (float32).
func NodeBytes(n *graph.Node) int64 {
	var total int64
	for _, in := range n.Inputs {
		total += int64(tensor.Volume(in.Shape))
	}
	for _, out := range n.Outputs {
		total += int64(tensor.Volume(out.Shape))
	}
	return total * 4
}

func outVolume(n *graph.Node) int64 {
	var total int64
	for _, out := range n.Outputs {
		total += int64(tensor.Volume(out.Shape))
	}
	return total
}
