package gemm

// Quantized (u8×s8 → int32) packed GEMM tier.
//
// The int8 tier reuses the packed-tier architecture — panel packing, macro
// tiles, micro-kernel dispatch, pool scheduling — with three differences:
//
//   - Operands are quantized: A (weights) is signed int8, B (activations)
//     is unsigned uint8, and the micro-kernels accumulate exact int32 dot
//     products along k-quads of 4 (the VPMADDUBSW / VPDPBUSD reduction
//     unit). The fp32 output is produced only once, by the requantize
//     epilogue, while the accumulator tile is cache-resident.
//
//   - B is always virtual: a PackSrc8 quantizes fp32 activations per
//     kc×nc panel as it packs (convolution straight from the NCHW input,
//     dense from the row-major activation matrix), so no materialised
//     int8 activation tensor ever exists.
//
//   - Execution is tile-at-a-time over the full K extent: each
//     mcBlock×ncBlock tile of C accumulates all its k-panels into a
//     per-Context int32 scratch (always full micro-tiles, so there is no
//     edge staging), then the requantize+bias+activation epilogue stores
//     the fp32 result in one pass. Serial and pooled execution share this
//     structure.
//
// # Value contract
//
// Weights must lie in [-63, 63] (a 7-bit symmetric range; see
// quant.QuantizeRowsInto with QMaxGemm) and activations in [0, 255]. Under
// that contract every VPMADDUBSW pair-sum |a0·b0 + a1·b1| ≤ 2·63·255 =
// 32130 < 32767 fits int16, so the saturating AVX2 instruction can never
// saturate, and all kernels (go, avx2, vnni) produce bit-identical int32
// accumulators. The int32 accumulator itself cannot overflow for any
// K ≤ 2^31 / (255·63·4) ≈ 33 million.
//
// # Scale propagation
//
// Activations are quantized asymmetrically, q = clamp(round(x/s) + z, 0,
// 255), with one (s, z) pair per image (convolution) or per sample column
// (dense, ColQuant). Zero quantizes exactly to z, so implicit convolution
// padding contributes exactly zero after compensation. Weights are
// per-output-channel symmetric: w ≈ ScaleA[r] · A[r][k]. The epilogue
// reconstructs
//
//	C[r][j] = ScaleA[r]·BScale[·]·(acc[r][j] − BZero[·]·RowSum[r]) + bias
//
// with the zero-point compensation BZero·RowSum done exactly in int32,
// then applies the fused activation — the dequantize, bias and activation
// sweeps all collapse into the tile store.

// kQuad is the k-grouping of the int8 packed layouts: both panel formats
// interleave 4 consecutive k values per row/column so a 32-bit lane holds
// one dot-product quad.
const kQuad = 4

// PackSrc8 supplies the virtual quantized B operand of a CallInt8 panel by
// panel. Implementations must be safe for concurrent PackPanel8 calls and
// must quantize deterministically: the pool packs panels of one call from
// several goroutines, and overlapping panels must agree on shared values.
type PackSrc8 interface {
	// PackPanel8 writes the quantized kc×nc panel of image img's B matrix
	// starting at row pp, column jj into dst, in the int8 B layout: strips
	// of nr columns; within a strip, k-quads of 4 rows; within a quad, 4
	// consecutive k bytes per column. Element (p, j) of the panel lands at
	// dst[strip*nr*kcq4 + (p/4)*nr*4 + (j%nr)*4 + p%4] with strip = j/nr
	// and kcq4 = roundUp(kc, 4). Rows beyond kc and columns beyond nc must
	// be zero so edge strips are full quads. dst holds at least
	// roundUp(nc, nr) * roundUp(kc, 4) bytes.
	PackPanel8(dst []byte, img, pp, jj, kc, nc, nr int)
}

// CallInt8 describes one quantized GEMM: a fp32 C produced from an int8 A
// (M×K weights, typically prepacked once per plan) and a virtual uint8 B
// (K×N activations, quantized at the pack boundary), C always overwritten.
//
// Batch > 1 runs images over a shared A: image i's B panels come from
// B.PackPanel8(..., img=i, ...) and its output lands at C[i*StrideC:].
//
// TransC stores the transpose: C[j*M+r] instead of C[r*N+j], so a dense
// layer can run as Yᵀ = W·Xᵀ without transposing the weight matrix or the
// stored output. TransC requires ColQuant and an unbatched call.
//
// ScaleA and RowSum are per-row (per output channel) weight metadata:
// ScaleA[r] the symmetric quantization scale, RowSum[r] the int32 sum of
// row r's quantized weights (for zero-point compensation). BScale/BZero
// are the activation quantization parameters: indexed by image when
// ColQuant is false, by column when true. BiasRow, Act and Alpha describe
// the fused epilogue exactly as in Call.
type CallInt8 struct {
	A       []int8 // M×K row-major signed weights; nil when PackedA is set
	PackedA []int8 // prepacked panels from PrepackAInt8
	B       PackSrc8
	C       []float32
	M, N, K int

	Batch   int // number of images; 0 and 1 mean a single GEMM
	StrideC int // element offset between consecutive images' C windows

	TransC   bool // store C[j*M+r] (N×M layout); requires ColQuant, Batch ≤ 1
	ColQuant bool // BScale/BZero are per column (dense samples), not per image

	ScaleA []float32 // per-row weight scales, len ≥ M
	RowSum []int32   // per-row quantized-weight sums, len ≥ M
	BScale []float32 // activation scales, len ≥ N (ColQuant) or ≥ images
	BZero  []int32   // activation zero points, matching BScale's indexing

	BiasRow []float32  // optional per-row epilogue bias, len ≥ M
	Act     Activation // epilogue activation, applied after the bias add
	Alpha   float32    // LeakyReLU slope
}

// images returns the batch count, treating the zero value as 1.
func (c *CallInt8) images() int {
	if c.Batch < 2 {
		return 1
	}
	return c.Batch
}

// validate panics if the call is malformed or the buffers cannot hold the
// described matrices. PackedA is checked against the active int8 kernel's
// geometry, which must match the geometry it was packed under.
func (c *CallInt8) validate() {
	if c.M < 0 || c.N < 0 || c.K < 0 {
		panicf("gemm: negative dimension m=%d n=%d k=%d", c.M, c.N, c.K)
	}
	if c.M == 0 || c.N == 0 {
		return
	}
	if c.B == nil {
		panicf("gemm: int8 call requires a PackSrc8 B operand")
	}
	images := c.images()
	if c.TransC {
		if !c.ColQuant {
			panicf("gemm: TransC requires ColQuant")
		}
		if images > 1 {
			panicf("gemm: TransC cannot be batched")
		}
	}
	if len(c.ScaleA) < c.M || len(c.RowSum) < c.M {
		panicf("gemm: ScaleA/RowSum %d/%d too short for m=%d", len(c.ScaleA), len(c.RowSum), c.M)
	}
	bq := images
	if c.ColQuant {
		bq = c.N
	}
	if len(c.BScale) < bq || len(c.BZero) < bq {
		panicf("gemm: BScale/BZero %d/%d too short for %d quant groups", len(c.BScale), len(c.BZero), bq)
	}
	if c.BiasRow != nil && len(c.BiasRow) < c.M {
		panicf("gemm: BiasRow %d too short for m=%d", len(c.BiasRow), c.M)
	}
	if images > 1 && c.StrideC < c.M*c.N {
		panicf("gemm: batch C stride %d overlaps %dx%d images", c.StrideC, c.M, c.N)
	}
	if len(c.C) < (images-1)*c.StrideC+c.M*c.N {
		panicf("gemm: C buffer %d too small for %dx%d × %d images", len(c.C), c.M, c.N, images)
	}
	if c.K == 0 {
		return
	}
	if c.PackedA != nil {
		if len(c.PackedA) < PackedAInt8Size(c.M, c.K) {
			panicf("gemm: PackedA %d too small for int8 m=%d k=%d", len(c.PackedA), c.M, c.K)
		}
	} else if len(c.A) < c.M*c.K {
		panicf("gemm: A buffer %d too small for %dx%d", len(c.A), c.M, c.K)
	}
}

// RunInt8 executes the quantized call single-threaded. Hot paths should
// hold a long-lived Context so the int8 packing and accumulator scratch is
// reused across calls.
func (ctx *Context) RunInt8(c CallInt8) {
	c.validate()
	if c.M == 0 || c.N == 0 {
		return
	}
	kern := activeKernel8()
	for img := 0; img < c.images(); img++ {
		for ii := 0; ii < c.M; ii += mcBlock {
			for jj := 0; jj < c.N; jj += ncBlock {
				ctx.runTile8(kern, &c, img, ii, jj)
			}
		}
	}
}

// runTile8 computes one mcBlock×ncBlock tile of one image's C: every
// k-panel accumulates into the Context's int32 scratch (full micro-tiles,
// padded geometry), then the requantize epilogue stores the fp32 tile in a
// single pass. K == 0 requantizes a zero accumulator (bias + activation
// only).
func (ctx *Context) runTile8(kern *kernel8, c *CallInt8, img, ii, jj int) {
	mc := min(mcBlock, c.M-ii)
	nc := min(ncBlock, c.N-jj)
	rows := roundUp(mc, kern.mr)
	ldc := roundUp(nc, kern.nr)
	ctx.growAcc()
	acc := ctx.acc32
	if c.K == 0 {
		for i := 0; i < rows*ldc; i++ {
			acc[i] = 0
		}
		c.storeTile(acc, ldc, img, ii, jj, mc, nc)
		return
	}
	pm := roundUp(c.M, kern.mr)
	for pp := 0; pp < c.K; pp += kcBlock {
		kc := min(kcBlock, c.K-pp)
		kcq := (kc + kQuad - 1) / kQuad
		var pa []int8
		if c.PackedA != nil {
			pa = c.PackedA[pm*pp+ii*kcq*kQuad:]
		} else {
			ctx.growA8()
			packAInt8(ctx.packA8, c.A, ii, pp, mc, kc, c.K, kern.mr)
			pa = ctx.packA8
		}
		ctx.growB8()
		c.B.PackPanel8(ctx.packB8, img, pp, jj, kc, nc, kern.nr)
		pb := ctx.packB8
		store := pp == 0
		stripA := kcq * kQuad * kern.mr
		stripB := kcq * kQuad * kern.nr
		for i := 0; i < rows; i += kern.mr {
			aStrip := pa[(i/kern.mr)*stripA:]
			for j := 0; j < ldc; j += kern.nr {
				kern.micro(aStrip, pb[(j/kern.nr)*stripB:], acc[i*ldc+j:], kcq, ldc, store)
			}
		}
	}
	c.storeTile(acc, ldc, img, ii, jj, mc, nc)
}

// storeTile is the requantize epilogue: it converts the live mc×nc region
// of the int32 accumulator tile (row stride ldc) into fp32, applying
// zero-point compensation, the combined weight×activation scale, the bias
// add and the activation, and stores it to the call's C layout. This is
// the only pass that touches C.
func (c *CallInt8) storeTile(acc []int32, ldc, img, ii, jj, mc, nc int) {
	if c.TransC {
		for j := 0; j < nc; j++ {
			col := c.C[(jj+j)*c.M+ii : (jj+j)*c.M+ii+mc]
			sB := c.BScale[jj+j]
			z := c.BZero[jj+j]
			for r := 0; r < mc; r++ {
				v := float32(acc[r*ldc+j]-z*c.RowSum[ii+r]) * (c.ScaleA[ii+r] * sB)
				if c.BiasRow != nil {
					v += c.BiasRow[ii+r]
				}
				col[r] = v
			}
			applyActivationRow(col, c.Act, c.Alpha)
		}
		return
	}
	base := img*c.StrideC + jj
	for r := 0; r < mc; r++ {
		row := c.C[base+(ii+r)*c.N : base+(ii+r)*c.N+nc]
		sA := c.ScaleA[ii+r]
		rs := c.RowSum[ii+r]
		var bv float32
		if c.BiasRow != nil {
			bv = c.BiasRow[ii+r]
		}
		arow := acc[r*ldc : r*ldc+nc]
		if c.ColQuant {
			for i, a := range arow {
				row[i] = float32(a-c.BZero[jj+i]*rs)*(sA*c.BScale[jj+i]) + bv
			}
		} else {
			s := sA * c.BScale[img]
			comp := c.BZero[img] * rs
			for i, a := range arow {
				row[i] = float32(a-comp)*s + bv
			}
		}
		applyActivationRow(row, c.Act, c.Alpha)
	}
}

// packAInt8 packs an mc×kc panel of the int8 A (row ii, col pp) into
// strips of mr rows in the k-quad layout: within each strip, quad q holds
// rows' 4 consecutive k bytes back to back, so a VPBROADCASTD of
// strip[(q*mr+r)*4] yields row r's quad. Rows beyond mc and k beyond kc
// are zero-padded.
func packAInt8(dst, a []int8, ii, pp, mc, kc, lda, mr int) {
	kcq := (kc + kQuad - 1) / kQuad
	di := 0
	for i := 0; i < mc; i += mr {
		live := min(mr, mc-i)
		for q := 0; q < kcq; q++ {
			p0 := q * kQuad
			for r := 0; r < mr; r++ {
				if r >= live {
					dst[di], dst[di+1], dst[di+2], dst[di+3] = 0, 0, 0, 0
					di += 4
					continue
				}
				row := a[(ii+i+r)*lda+pp:]
				for t := 0; t < kQuad; t++ {
					if p0+t < kc {
						dst[di] = row[p0+t]
					} else {
						dst[di] = 0
					}
					di++
				}
			}
		}
	}
}

// PackedAInt8Size returns the buffer length PrepackAInt8Into requires for
// an m×k int8 matrix under the active int8 kernel: rows padded to mr, k
// padded to whole quads.
func PackedAInt8Size(m, k int) int {
	return roundUp(m, activeKernel8().mr) * roundUp(k, kQuad)
}

// PrepackAInt8Into packs the whole m×k int8 matrix a into dst, which must
// hold PackedAInt8Size(m, k) bytes. Panel (pp, ii) starts at
// roundUp(m,mr)*pp + ii*roundUp(kc,4), mirroring the fp32 layout (kcBlock
// is a multiple of 4, so only the final k-panel pads k).
func PrepackAInt8Into(dst, a []int8, m, k int) {
	mr := activeKernel8().mr
	pm := roundUp(m, mr)
	for pp := 0; pp < k; pp += kcBlock {
		kc := min(kcBlock, k-pp)
		kcq4 := roundUp(kc, kQuad)
		for ii := 0; ii < m; ii += mcBlock {
			mc := min(mcBlock, m-ii)
			packAInt8(dst[pm*pp+ii*kcq4:], a, ii, pp, mc, kc, k, mr)
		}
	}
}

// PrepackAInt8 allocates and fills the packed-panel form of the m×k int8
// matrix a.
func PrepackAInt8(a []int8, m, k int) []int8 {
	dst := make([]int8, PackedAInt8Size(m, k))
	PrepackAInt8Into(dst, a, m, k)
	return dst
}

// RowSumsInt8 writes the int32 sum of each row of the m×k int8 matrix a
// into dst (len ≥ m) — the per-output-channel zero-point compensation term
// consumed by CallInt8.RowSum.
func RowSumsInt8(dst []int32, a []int8, m, k int) {
	for r := 0; r < m; r++ {
		var s int32
		row := a[r*k : (r+1)*k]
		for _, v := range row {
			s += int32(v)
		}
		dst[r] = s
	}
}

// microKernel8Go is the portable int8 micro-kernel: a 4x8 int32
// accumulator block fed by k-quads, the bit-exactness reference for the
// SIMD kernels. pa is packed as quads of 4 rows × 4 bytes, pb as quads of
// 8 columns × 4 bytes.
func microKernel8Go(pa []int8, pb []byte, acc []int32, kq, ldc int, store bool) {
	const mr, nr = 4, 8
	var c0, c1, c2, c3 [nr]int32
	pa = pa[:kq*mr*kQuad]
	pb = pb[:kq*nr*kQuad]
	for q := 0; q < kq; q++ {
		ab := pa[q*mr*kQuad : q*mr*kQuad+mr*kQuad : q*mr*kQuad+mr*kQuad]
		bb := pb[q*nr*kQuad : q*nr*kQuad+nr*kQuad : q*nr*kQuad+nr*kQuad]
		a00, a01, a02, a03 := int32(ab[0]), int32(ab[1]), int32(ab[2]), int32(ab[3])
		a10, a11, a12, a13 := int32(ab[4]), int32(ab[5]), int32(ab[6]), int32(ab[7])
		a20, a21, a22, a23 := int32(ab[8]), int32(ab[9]), int32(ab[10]), int32(ab[11])
		a30, a31, a32, a33 := int32(ab[12]), int32(ab[13]), int32(ab[14]), int32(ab[15])
		for j := 0; j < nr; j++ {
			b0 := int32(bb[j*kQuad+0])
			b1 := int32(bb[j*kQuad+1])
			b2 := int32(bb[j*kQuad+2])
			b3 := int32(bb[j*kQuad+3])
			c0[j] += a00*b0 + a01*b1 + a02*b2 + a03*b3
			c1[j] += a10*b0 + a11*b1 + a12*b2 + a13*b3
			c2[j] += a20*b0 + a21*b1 + a22*b2 + a23*b3
			c3[j] += a30*b0 + a31*b1 + a32*b2 + a33*b3
		}
	}
	r0 := acc[0*ldc : 0*ldc+nr]
	r1 := acc[1*ldc : 1*ldc+nr]
	r2 := acc[2*ldc : 2*ldc+nr]
	r3 := acc[3*ldc : 3*ldc+nr]
	if store {
		copy(r0, c0[:])
		copy(r1, c1[:])
		copy(r2, c2[:])
		copy(r3, c3[:])
		return
	}
	for j := 0; j < nr; j++ {
		r0[j] += c0[j]
		r1[j] += c1[j]
		r2[j] += c2[j]
		r3[j] += c3[j]
	}
}

func (ctx *Context) growA8() {
	const an = (mcBlock + maxMR8) * kcBlock
	if cap(ctx.packA8) < an {
		ctx.packA8 = make([]int8, an)
	}
	ctx.packA8 = ctx.packA8[:cap(ctx.packA8)]
}

func (ctx *Context) growB8() {
	const bn = (ncBlock + maxNR8) * kcBlock
	if cap(ctx.packB8) < bn {
		ctx.packB8 = make([]byte, bn)
	}
	ctx.packB8 = ctx.packB8[:cap(ctx.packB8)]
}

func (ctx *Context) growAcc() {
	// Accumulator tiles are at most mcBlock×ncBlock: both blocks are
	// multiples of every registered kernel geometry, so the padded rows and
	// row stride never exceed them.
	const cn = mcBlock * ncBlock
	if cap(ctx.acc32) < cn {
		ctx.acc32 = make([]int32, cn)
	}
	ctx.acc32 = ctx.acc32[:cap(ctx.acc32)]
}
