package passes

import "orpheus/internal/graph"

// FuseActivation folds a Relu, Relu6 or LeakyRelu node into the producing
// Conv, Dense or Add node's "activation" attribute, so the kernel applies
// the nonlinearity in its output loop instead of re-walking the tensor.
func FuseActivation() Pass {
	return newPass("fuse-activation", func(g *graph.Graph) (bool, error) {
		changed := false
		for {
			act, prod := findFusableActivation(g)
			if act == nil {
				return changed, nil
			}
			prod.Attrs = prod.Attrs.Clone()
			prod.Attrs["activation"] = fusedName(act.Op)
			if act.Op == "LeakyRelu" {
				prod.Attrs["alpha"] = act.Attrs.Float("alpha", 0.01)
			}
			g.ReplaceUses(act.Outputs[0], prod.Outputs[0])
			if err := g.RemoveNode(act); err != nil {
				return changed, err
			}
			changed = true
		}
	})
}

func fusedName(op string) string {
	switch op {
	case "Relu":
		return "relu"
	case "Relu6":
		return "relu6"
	case "LeakyRelu":
		return "leakyrelu"
	}
	return ""
}

func findFusableActivation(g *graph.Graph) (act, producer *graph.Node) {
	consumers := g.Consumers()
	for _, n := range g.Nodes {
		if fusedName(n.Op) == "" {
			continue
		}
		prod := n.Inputs[0].Producer
		if prod == nil {
			continue
		}
		switch prod.Op {
		case "Conv", "Dense", "Add":
		default:
			continue
		}
		if prod.Attrs.Str("activation", "") != "" {
			continue
		}
		if soleConsumer(g, consumers, prod.Outputs[0]) != n {
			continue
		}
		return n, prod
	}
	return nil, nil
}
