package runtime

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// Options configures plan compilation and execution.
type Options struct {
	// Policy selects kernels; nil means ReferencePolicy.
	Policy Policy
	// Workers is the goroutine budget handed to kernels (default 1, the
	// paper's single-core setting).
	Workers int
	// NoBufferReuse disables the liveness-based memory planner: every
	// value gets a private buffer allocated at run time, emulating
	// frameworks that allocate per operator call (torch-sim; ablation A3).
	NoBufferReuse bool
	// DisableScratchReuse additionally makes kernels reallocate their
	// internal scratch (im2col buffers etc.) on every call.
	DisableScratchReuse bool
}

// step is one planned node execution.
type step struct {
	node   *graph.Node
	kernel ops.Kernel
}

// Plan is a compiled execution plan: topologically ordered steps with
// kernels chosen and buffer slots assigned.
type Plan struct {
	g     *graph.Graph
	opts  Options
	steps []step

	// slotOf maps every intermediate (non-const, non-input) value to an
	// arena slot; slotSize is each slot's element capacity.
	slotOf   map[*graph.Value]int
	slotSize []int

	// arenaBytes is the planned arena footprint; noReuseBytes is what the
	// same graph needs without reuse (for the memory experiments).
	arenaBytes   int64
	noReuseBytes int64
}

// Compile plans execution of g: validates it, selects kernels and lays out
// the buffer arena. The graph must have been Finalize()d.
func Compile(g *graph.Graph, opts Options) (*Plan, error) {
	if opts.Policy == nil {
		opts.Policy = ReferencePolicy{}
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if err := g.TopoSort(); err != nil {
		return nil, err
	}
	p := &Plan{g: g, opts: opts, slotOf: make(map[*graph.Value]int)}
	for _, n := range g.Nodes {
		k, err := opts.Policy.Select(n)
		if err != nil {
			return nil, fmt.Errorf("runtime: selecting kernel for %q (%s): %w", n.Name, n.Op, err)
		}
		if k.Op() != n.Op {
			return nil, fmt.Errorf("runtime: policy %q returned kernel %q (op %s) for op %s",
				opts.Policy.Name(), k.Name(), k.Op(), n.Op)
		}
		if !k.Supports(n) {
			return nil, fmt.Errorf("runtime: policy %q selected kernel %q which does not support node %q",
				opts.Policy.Name(), k.Name(), n.Name)
		}
		p.steps = append(p.steps, step{node: n, kernel: k})
	}
	p.planBuffers()
	return p, nil
}

// planBuffers assigns arena slots to intermediate values using a greedy
// best-fit allocator over value live ranges.
func (p *Plan) planBuffers() {
	lastUse := make(map[*graph.Value]int)
	for i, st := range p.steps {
		for _, in := range st.node.Inputs {
			lastUse[in] = i
		}
	}
	// Graph outputs live to the end.
	for _, out := range p.g.Outputs {
		lastUse[out] = len(p.steps)
	}

	type freeSlot struct{ id, size int }
	var free []freeSlot
	takeSlot := func(size int) int {
		// Best fit: smallest free slot that holds size; grow the smallest
		// slot otherwise (keeps slot count minimal).
		best := -1
		for i, f := range free {
			if f.size >= size && (best < 0 || f.size < free[best].size) {
				best = i
			}
		}
		if best >= 0 {
			id := free[best].id
			free = append(free[:best], free[best+1:]...)
			return id
		}
		p.slotSize = append(p.slotSize, size)
		return len(p.slotSize) - 1
	}

	for i, st := range p.steps {
		for _, out := range st.node.Outputs {
			size := tensor.Volume(out.Shape)
			p.noReuseBytes += int64(size) * 4
			id := takeSlot(size)
			if p.slotSize[id] < size {
				p.slotSize[id] = size
			}
			p.slotOf[out] = id
		}
		// Release slots whose values die at this step.
		for _, in := range st.node.Inputs {
			if lastUse[in] != i {
				continue
			}
			if id, ok := p.slotOf[in]; ok {
				free = append(free, freeSlot{id: id, size: p.slotSize[id]})
			}
		}
	}
	for _, size := range p.slotSize {
		p.arenaBytes += int64(size) * 4
	}
}

// ArenaBytes returns the planned intermediate-buffer footprint with reuse.
func (p *Plan) ArenaBytes() int64 { return p.arenaBytes }

// NoReuseBytes returns the footprint the graph would need if every
// intermediate value had a private buffer.
func (p *Plan) NoReuseBytes() int64 { return p.noReuseBytes }

// WeightBytes returns the total constant (weight) footprint.
func (p *Plan) WeightBytes() int64 { return p.g.NumParams() * 4 }

// Steps returns the planned (node, kernel-name) sequence for reporting.
func (p *Plan) Steps() []PlannedStep {
	out := make([]PlannedStep, len(p.steps))
	for i, st := range p.steps {
		out[i] = PlannedStep{Node: st.node, Kernel: st.kernel.Name()}
	}
	return out
}

// PlannedStep describes one entry of the execution plan.
type PlannedStep struct {
	Node   *graph.Node
	Kernel string
}
