package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"orpheus/internal/tensor"
)

// testTensors is the shape battery shared by the round-trip tests and the
// golden-fixture generator: scalars, vectors, matrices, NCHW samples,
// zero-volume shapes and a max-rank case.
func testTensors() map[string]*tensor.Tensor {
	mk := func(shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		d := t.Data()
		for i := range d {
			d[i] = float32(i)*0.5 - 3.25
		}
		return t
	}
	return map[string]*tensor.Tensor{
		"scalar":    tensor.Scalar(3.5),
		"vec4":      tensor.FromSlice([]float32{0, 1.5, -2.25, float32(math.Pi)}, 4),
		"mat3x2":    mk(3, 2),
		"nchw":      mk(1, 2, 3, 3),
		"empty":     tensor.New(0),
		"zero-dim":  tensor.New(2, 0, 3),
		"max-rank8": mk(1, 2, 1, 3, 1, 2, 1, 2),
	}
}

func TestRoundTrip(t *testing.T) {
	for name, want := range testTensors() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Encode(&buf, want); err != nil {
				t.Fatal(err)
			}
			if buf.Len() != EncodedSize(want.Shape()) {
				t.Fatalf("encoded %d bytes, EncodedSize says %d", buf.Len(), EncodedSize(want.Shape()))
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !got.SameShape(want) {
				t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
			}
			gd, wd := got.Data(), want.Data()
			for i := range wd {
				if gd[i] != wd[i] {
					t.Fatalf("data[%d] = %v, want %v", i, gd[i], wd[i])
				}
			}
			// DecodeBytes agrees and enforces exact framing.
			if _, err := DecodeBytes(buf.Bytes(), 0); err != nil {
				t.Fatalf("DecodeBytes: %v", err)
			}
			if _, err := DecodeBytes(append(buf.Bytes(), 0), 0); err == nil {
				t.Fatal("DecodeBytes accepted a trailing byte")
			}
		})
	}
}

// TestStreamedBackToBack pins the exact-read property: two tensors
// encoded back to back on one reader decode cleanly in sequence.
func TestStreamedBackToBack(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3}, 3)
	b := tensor.FromSlice([]float32{4, 5}, 1, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&buf, b); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	ga, err := Decode(r)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Decode(r)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Size() != 3 || gb.Size() != 2 || gb.Dim(1) != 2 {
		t.Fatalf("streamed decode got %v / %v", ga, gb)
	}
	if r.Len() != 0 {
		t.Fatalf("%d unread bytes after two decodes", r.Len())
	}
}

// corrupt returns the encoding of a small valid tensor with f applied.
func corrupt(t *testing.T, f func(b []byte) []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)); err != nil {
		t.Fatal(err)
	}
	return f(buf.Bytes())
}

// TestDecodeValidation drives the validation contract: every malformed
// input is rejected with a typed error, never a panic, never a bogus
// tensor.
func TestDecodeValidation(t *testing.T) {
	cases := []struct {
		name    string
		input   func(t *testing.T) []byte
		wantErr error
	}{
		{"empty", func(t *testing.T) []byte { return nil }, ErrFormat},
		{"short-header", func(t *testing.T) []byte { return []byte("ORPT") }, ErrFormat},
		{"bad-magic", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte { b[0] = 'X'; return b })
		}, ErrFormat},
		{"bad-version", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte { b[4] = 99; return b })
		}, ErrFormat},
		{"bad-dtype", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte { b[5] = 0; return b })
		}, ErrFormat},
		{"rank-over-max", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte {
				binary.LittleEndian.PutUint16(b[6:8], MaxRank+1)
				return b
			})
		}, ErrFormat},
		{"truncated-dims", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte { return b[:FixedHeaderLen+2] })
		}, ErrFormat},
		{"datalen-shape-mismatch", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[8:16], 999)
				return b
			})
		}, ErrFormat},
		{"truncated-payload", func(t *testing.T) []byte {
			return corrupt(t, func(b []byte) []byte { return b[:len(b)-5] })
		}, ErrFormat},
		{"shape-product-overflow", func(t *testing.T) []byte {
			// 2^32-1 × 2^32-1 × … wraps 64-bit arithmetic if unguarded.
			b := make([]byte, 0, FixedHeaderLen+4*8)
			b = append(b, Magic[0], Magic[1], Magic[2], Magic[3], Version, byte(Float32))
			b = binary.LittleEndian.AppendUint16(b, 8)
			b = binary.LittleEndian.AppendUint64(b, 16)
			for i := 0; i < 8; i++ {
				b = binary.LittleEndian.AppendUint32(b, math.MaxUint32)
			}
			return b
		}, ErrTooLarge},
		{"over-limit", func(t *testing.T) []byte {
			// A well-formed 2 GiB declaration must be rejected by the
			// default limit before any allocation.
			b := make([]byte, 0, FixedHeaderLen+4)
			b = append(b, Magic[0], Magic[1], Magic[2], Magic[3], Version, byte(Float32))
			b = binary.LittleEndian.AppendUint16(b, 1)
			b = binary.LittleEndian.AppendUint64(b, 2<<30)
			b = binary.LittleEndian.AppendUint32(b, (2<<30)/4)
			return b
		}, ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.input(t)
			if _, err := Decode(bytes.NewReader(in)); !errors.Is(err, ErrFormat) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("Decode error = %v, want a typed wire error", err)
			}
			if _, err := DecodeBytes(in, 0); !errors.Is(err, tc.wantErr) {
				t.Fatalf("DecodeBytes error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeLimitRespected pins the caller-supplied bound: a tensor fine
// under the default limit is rejected under a tighter one.
func TestDecodeLimitRespected(t *testing.T) {
	big := tensor.New(1024) // 4 KiB payload
	var buf bytes.Buffer
	if err := Encode(&buf, big); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLimit(bytes.NewReader(buf.Bytes()), 1024); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("tight limit error = %v, want ErrTooLarge", err)
	}
	if _, err := DecodeLimit(bytes.NewReader(buf.Bytes()), 4096); err != nil {
		t.Fatalf("sufficient limit: %v", err)
	}
}

// TestParseHeaderAllocFree and TestAppendTensorAllocFree pin the hot-path
// primitives the serving plane composes: header parse, payload decode
// into staging, and response encode into a reused buffer must all be
// zero-allocation at steady state.
func TestParseHeaderAllocFree(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, tensor.New(1, 3, 32, 32)); err != nil {
		t.Fatal(err)
	}
	msg := buf.Bytes()
	dst := make([]float32, 3*32*32)
	allocs := testing.AllocsPerRun(200, func() {
		hdr, n, err := ParseHeader(msg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := Float32Into(dst, msg[n:n+hdr.DataLen]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode-to-staging allocs/op = %v, want 0", allocs)
	}
}

// TestAppendTensorAllocFree pins the encode side at 0 allocs/op given a
// buffer with capacity.
func TestAppendTensorAllocFree(t *testing.T) {
	data := make([]float32, 10)
	shape := []int{1, 10}
	out := make([]byte, 0, EncodedSize(shape))
	allocs := testing.AllocsPerRun(200, func() {
		out = AppendTensor(out[:0], data, shape)
	})
	if allocs != 0 {
		t.Fatalf("AppendTensor allocs/op = %v, want 0", allocs)
	}
	if _, err := DecodeBytes(out, 0); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeErrorsPropagate pins that a failing writer surfaces its error.
func TestEncodeErrorsPropagate(t *testing.T) {
	if err := Encode(failWriter{}, tensor.New(2)); err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("Encode on failing writer = %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink full") }

// TestDecodeShortReader pins truncation at every byte boundary of a small
// message: each prefix must produce a typed error, not a panic or a
// tensor.
func TestDecodeShortReader(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, tensor.FromSlice([]float32{1, 2}, 2)); err != nil {
		t.Fatal(err)
	}
	msg := buf.Bytes()
	for n := 0; n < len(msg); n++ {
		if _, err := Decode(io.LimitReader(bytes.NewReader(msg), int64(n))); !errors.Is(err, ErrFormat) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrFormat", n, err)
		}
	}
}

// TestQuantizeU8RoundTrip pins the affine quantizer: every value must
// reconstruct within one quantization step, the extremes must map to
// the extremes of the u8 range, and degenerate (all-equal) data must
// reconstruct exactly.
func TestQuantizeU8RoundTrip(t *testing.T) {
	cases := map[string][]float32{
		"mixed-sign": {-2, -1, -0.5, 0, 0.25, 1, 3, 6},
		"positive":   {0.5, 1, 2, 4},
		"negative":   {-8, -4, -2, -1},
		"all-equal":  {3.25, 3.25, 3.25},
		"all-zero":   {0, 0, 0, 0},
		"single":     {-1.75},
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			q := make([]byte, len(vals))
			scale, zero := QuantizeU8(q, vals)
			lo, hi := vals[0], vals[0]
			for _, v := range vals {
				lo, hi = min(lo, v), max(hi, v)
			}
			step := scale
			if step < 0 {
				step = -step // all-equal negative data encodes scale = value
			}
			dec := make([]float32, len(vals))
			if err := DequantizeU8Into(dec, q, scale, zero); err != nil {
				t.Fatal(err)
			}
			for i, v := range vals {
				if diff := dec[i] - v; diff > step || diff < -step {
					t.Fatalf("value[%d]: %v dequantized to %v (scale %v)", i, v, dec[i], scale)
				}
			}
			if lo == hi {
				// Degenerate range must reconstruct exactly, including 0.
				for i := range dec {
					if dec[i] != lo {
						t.Fatalf("all-equal data %v dequantized to %v", lo, dec[i])
					}
				}
			}
		})
	}
}

// TestU8ExtensionValidation pins the canonical-extension rule: the three
// reserved bytes after the zero point must be zero, and a u8 header
// shorter than its declared extension is rejected.
func TestU8ExtensionValidation(t *testing.T) {
	q := []byte{10, 20, 30}
	msg := AppendTensorU8(nil, q, []int{3}, 0.5, 7)
	if _, _, err := ParseMessage(msg, 0); err != nil {
		t.Fatalf("canonical u8 message rejected: %v", err)
	}
	extStart := len(msg) - len(q) - U8ExtLen
	for i := 5; i < U8ExtLen; i++ { // bytes after scale(4)+zero(1)
		bad := append([]byte(nil), msg...)
		bad[extStart+i] = 1
		if _, _, err := ParseMessage(bad, 0); !errors.Is(err, ErrFormat) {
			t.Fatalf("reserved ext byte %d nonzero: got %v, want ErrFormat", i, err)
		}
	}
	// Truncating the message inside the extension must be a format error.
	if _, _, err := ParseMessage(msg[:extStart+3], 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated extension: got %v, want ErrFormat", err)
	}
	// DecodeLimit must agree with the one-shot parse on u8.
	dec, err := DecodeLimit(bytes.NewReader(msg), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, qv := range q {
		want := 0.5 * (float32(qv) - 7)
		if dec.Data()[i] != want {
			t.Fatalf("streamed u8 decode[%d] = %v, want %v", i, dec.Data()[i], want)
		}
	}
}

// TestU8DecodeLimitCountsDecodedBytes pins the limit semantics for u8:
// the bound applies to the materialised float32 tensor, so a u8 payload
// cannot smuggle a 4x-limit allocation through dequantization.
func TestU8DecodeLimitCountsDecodedBytes(t *testing.T) {
	const limit = 256 // bytes of decoded float32 => 64 elements
	ok := make([]byte, 64)
	msg := AppendTensorU8(nil, ok, []int{64}, 1, 0)
	if _, err := DecodeBytes(msg, limit); err != nil {
		t.Fatalf("64-element u8 under a 256-byte limit rejected: %v", err)
	}
	big := make([]byte, 65)
	msg = AppendTensorU8(nil, big, []int{65}, 1, 0)
	if _, err := DecodeBytes(msg, limit); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("65-element u8 under a 256-byte limit: got %v, want ErrTooLarge", err)
	}
}
