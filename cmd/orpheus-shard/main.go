// orpheus-shard runs one stage of a pipeline-parallel sharded model —
// the process-level building block behind distributed inference on a
// chain of small machines (SEIFER/DEFER-style). Every stage is started
// from the same model with nothing but a different -shard index; each
// derives its own subgraph from the deterministic min-transfer
// partition, so the processes agree on shard boundaries without any
// coordinator.
//
// Usage:
//
//	# 2-stage pipeline on one host
//	orpheus-shard -model resnet-18 -shard 2/2 -listen :9102 &
//	orpheus-shard -model resnet-18 -shard 1/2 -listen :9101 -next localhost:9102 &
//	orpheus-bench -experiment shard -shards localhost:9101,localhost:9102
//
//	# quantized boundary activations (4x less transfer per cut)
//	orpheus-shard -model model.onnx -shard 1/3 -listen :9101 \
//	              -next host2:9102 -int8-wire
//
// -model takes a built-in zoo name or an .onnx path. Stages stream
// activations over the framed TCP protocol documented in docs/SHARD.md;
// the terminal stage (the one without -next) serves results back to the
// driver's collect connection. SIGINT/SIGTERM drains in-flight requests
// before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"orpheus/internal/graph"
	"orpheus/internal/onnx"
	"orpheus/internal/shard"
	"orpheus/internal/zoo"
)

func main() {
	var (
		model    = flag.String("model", "", "zoo model name or .onnx path (required)")
		shardPos = flag.String("shard", "", "this stage's position as K/N, 1-based (required; e.g. 1/2)")
		listen   = flag.String("listen", ":9101", "address to accept feed (and, on the terminal stage, collect) connections on")
		next     = flag.String("next", "", "downstream stage address; omit on the terminal stage")
		int8Wire = flag.Bool("int8-wire", false, "quantize outgoing boundary activations to u8 frames (4x less transfer, quantization noise)")
		backendN = flag.String("backend", "orpheus", "execution backend")
		workers  = flag.Int("workers", 1, "kernel thread budget for this stage")
		depth    = flag.Int("depth", 4, "in-flight requests this stage decodes ahead (backpressure bound)")
		stageTO  = flag.Duration("stage-timeout", 0, "per-request compute deadline on this stage (0 = none)")
		maxFrame = flag.Int("max-frame", 0, "max accepted frame payload in bytes (0 = 64 MiB)")
	)
	flag.Parse()
	if *model == "" || *shardPos == "" {
		fmt.Fprintln(os.Stderr, "usage: orpheus-shard -model <zoo-name|model.onnx> -shard K/N -listen ADDR [-next ADDR] [-int8-wire]")
		os.Exit(2)
	}
	index, count, err := parseShard(*shardPos)
	if err != nil {
		log.Fatalf("orpheus-shard: %v", err)
	}
	if *next == "" && index != count-1 {
		log.Fatalf("orpheus-shard: stage %d of %d is not terminal and needs -next", index+1, count)
	}
	if *next != "" && index == count-1 {
		log.Fatalf("orpheus-shard: the terminal stage %d/%d must not set -next", count, count)
	}

	name, g, err := loadModel(*model)
	if err != nil {
		log.Fatalf("orpheus-shard: %v", err)
	}
	srv, err := shard.New(shard.Config{
		Model:        name,
		Graph:        g,
		Index:        index,
		Count:        count,
		Backend:      *backendN,
		Workers:      *workers,
		Next:         *next,
		Int8Wire:     *int8Wire,
		Depth:        *depth,
		StageTimeout: *stageTO,
		MaxFrame:     *maxFrame,
	})
	if err != nil {
		log.Fatalf("orpheus-shard: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("orpheus-shard: %v", err)
	}
	role := "terminal stage (serves collect)"
	if *next != "" {
		role = "forwards to " + *next
	}
	log.Printf("orpheus-shard: %s stage %d/%d listening on %s, %s", name, index+1, count, ln.Addr(), role)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("orpheus-shard: draining stage %d/%d", index+1, count)
		_ = srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatalf("orpheus-shard: %v", err)
	}
	st := srv.Stats()
	log.Printf("orpheus-shard: stage %d/%d done: %d processed, %d errors, %d passed through, %d dropped",
		index+1, count, st.Processed, st.Errors, st.Forwarded, st.Dropped)
}

// parseShard parses the 1-based "K/N" stage position into a 0-based
// index and the stage count.
func parseShard(s string) (index, count int, err error) {
	k, n, ok := strings.Cut(s, "/")
	if ok {
		_, err = fmt.Sscanf(k+" "+n, "%d %d", &index, &count)
		ok = err == nil
	}
	if !ok || index < 1 || count < 1 || index > count {
		return 0, 0, fmt.Errorf("-shard wants K/N with 1 <= K <= N, got %q", s)
	}
	return index - 1, count, nil
}

// loadModel resolves -model: a built-in zoo name first, else an ONNX
// file (named by its basename, matching what a driver would request).
func loadModel(spec string) (string, *graph.Graph, error) {
	for _, n := range zoo.Names() {
		if n == spec {
			g, err := zoo.Build(n, 1)
			return n, g, err
		}
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return "", nil, fmt.Errorf("model %q is neither a zoo name (%s) nor a readable file: %w",
			spec, strings.Join(zoo.Names(), ", "), err)
	}
	m, err := onnx.Unmarshal(data)
	if err != nil {
		return "", nil, err
	}
	g, err := onnx.Import(m)
	if err != nil {
		return "", nil, err
	}
	name := strings.TrimSuffix(filepath.Base(spec), ".onnx")
	return name, g, nil
}
