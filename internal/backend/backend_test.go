package backend

import (
	"context"
	"strings"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// convNet builds conv->bn->relu->dwconv->relu->gap->flatten->dense->softmax,
// touching every op class the policies dispatch on.
func convNet(t testing.TB) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(21)
	g := graph.New("convnet")
	x, _ := g.Input("input", []int{1, 4, 16, 16})
	w1, _ := g.Const("w1", tensor.HeNormal(r, 8, 4, 3, 3))
	c1, _ := g.Add("Conv", "conv1", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w1)
	s, _ := g.Const("bn.s", tensor.Rand(r, 0.8, 1.2, 8))
	bb, _ := g.Const("bn.b", tensor.Rand(r, -0.1, 0.1, 8))
	m, _ := g.Const("bn.m", tensor.Rand(r, -0.1, 0.1, 8))
	v, _ := g.Const("bn.v", tensor.Rand(r, 0.5, 1.5, 8))
	bn, _ := g.Add("BatchNorm", "bn1", nil, c1, s, bb, m, v)
	r1, _ := g.Add("Relu", "relu1", nil, bn)
	wd, _ := g.Const("wdw", tensor.HeNormal(r, 8, 1, 3, 3))
	dw, _ := g.Add("Conv", "dw1", graph.Attrs{"pads": []int{1, 1, 1, 1}, "group": 8}, r1, wd)
	r2, _ := g.Add("Relu", "relu2", nil, dw)
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, r2)
	fl, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, gap)
	wf, _ := g.Const("wf", tensor.HeNormal(r, 10, 8))
	fc, _ := g.Add("Dense", "fc", nil, fl, wf)
	sm, _ := g.Add("Softmax", "prob", nil, fc)
	_ = g.MarkOutput(sm)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func runBackend(t testing.TB, b *Backend, g *graph.Graph, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	plan, err := b.Prepare(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(plan)
	out, err := sess.Run(context.Background(), map[string]*tensor.Tensor{"input": x})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		return v.Clone()
	}
	t.Fatal("no output")
	return nil
}

func TestAllBackendsAgreeNumerically(t *testing.T) {
	g := convNet(t)
	x := tensor.Rand(tensor.NewRNG(5), -1, 1, 1, 4, 16, 16)
	var ref *tensor.Tensor
	for _, name := range []string{"orpheus", "orpheus-heuristic", "orpheus-tuned", "tvm-sim", "torch-sim", "darknet-sim"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.SupportsModel != nil {
			b = cloneWithoutModelGate(b)
		}
		out := runBackend(t, b, g, x)
		if ref == nil {
			ref = out
			continue
		}
		if !tensor.AllClose(out, ref, 1e-3) {
			t.Errorf("backend %s diverges from orpheus: max diff %g", name, tensor.MaxAbsDiff(out, ref))
		}
	}
}

// cloneWithoutModelGate drops the model allowlist so numerical tests can
// run every backend on the same synthetic net.
func cloneWithoutModelGate(b *Backend) *Backend {
	c := *b
	c.SupportsModel = nil
	return &c
}

func TestBackendRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"orpheus", "orpheus-heuristic", "orpheus-tuned", "tvm-sim", "torch-sim", "darknet-sim", "tflite-sim"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q missing from registry %v", want, names)
		}
	}
	if _, err := ByName("mxnet"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	f2 := Figure2Backends()
	if len(f2) != 3 || f2[0].Name != "orpheus" || f2[1].Name != "tvm-sim" || f2[2].Name != "torch-sim" {
		t.Fatalf("Figure2Backends order wrong: %v", f2)
	}
}

func TestTFLiteRefusesSingleThread(t *testing.T) {
	b, _ := ByName("tflite-sim")
	g := convNet(t)
	if _, err := b.Prepare(g, 1); err == nil {
		t.Fatal("tflite-sim accepted a single-thread request (paper says it cannot)")
	}
	if _, err := b.Prepare(g, 4); err != nil {
		t.Fatalf("tflite-sim with 4 threads should work: %v", err)
	}
}

func TestModelAvailabilityGates(t *testing.T) {
	dn, _ := ByName("darknet-sim")
	if err := dn.SupportsModel("mobilenet-v1"); err == nil {
		t.Fatal("darknet-sim should only support ResNets")
	}
	if err := dn.SupportsModel("resnet-18"); err != nil {
		t.Fatalf("darknet-sim should support resnet-18: %v", err)
	}
	tfl, _ := ByName("tflite-sim")
	if err := tfl.SupportsModel("resnet-50"); err == nil {
		t.Fatal("tflite-sim should not support ResNets")
	}
	if err := tfl.SupportsModel("wrn-40-2"); err != nil {
		t.Fatalf("tflite-sim should support wrn: %v", err)
	}
}

func TestTorchSimSkipsOptimisation(t *testing.T) {
	g := convNet(t)
	torch, _ := ByName("torch-sim")
	plan, err := torch.Prepare(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	foundBN := false
	for _, st := range plan.Steps() {
		if st.Node.Op == "BatchNorm" {
			foundBN = true
		}
		if st.Node.Op == "Conv" && st.Node.Attrs.Int("group", 1) > 1 && st.Kernel != "conv.group_im2col" {
			t.Fatalf("torch-sim depthwise uses %s, want conv.group_im2col", st.Kernel)
		}
	}
	if !foundBN {
		t.Fatal("torch-sim should run the unoptimised graph (BatchNorm present)")
	}

	orp, _ := ByName("orpheus")
	plan, err = orp.Prepare(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Steps() {
		if st.Node.Op == "BatchNorm" {
			t.Fatal("orpheus backend should fold BatchNorm")
		}
		if st.Node.Op == "Conv" && st.Node.Attrs.Int("group", 1) > 1 && st.Kernel != "conv.depthwise" {
			t.Fatalf("orpheus depthwise uses %s, want conv.depthwise", st.Kernel)
		}
	}
}

func TestPreparedoesNotMutateOriginal(t *testing.T) {
	g := convNet(t)
	nodesBefore := len(g.Nodes)
	orp, _ := ByName("orpheus")
	if _, err := orp.Prepare(g, 1); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != nodesBefore {
		t.Fatal("Prepare mutated the caller's graph")
	}
}

func TestHeuristicPolicyCrossover(t *testing.T) {
	mk := func(c, h int) *graph.Node {
		r := tensor.NewRNG(1)
		g := graph.New("h")
		x, _ := g.Input("x", []int{1, c, h, h})
		w, _ := g.Const("w", tensor.HeNormal(r, c, c, 3, 3))
		_, _ = g.Add("Conv", "c", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w)
		if err := g.InferShapes(); err != nil {
			t.Fatal(err)
		}
		return g.Nodes[0]
	}
	p := &HeuristicPolicy{}
	small, err := p.Select(mk(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if small.Name() != "conv.spatialpack" {
		t.Fatalf("small conv selected %s, want conv.spatialpack", small.Name())
	}
	big, err := p.Select(mk(128, 56))
	if err != nil {
		t.Fatal(err)
	}
	if big.Name() != "conv.im2col" {
		t.Fatalf("big conv selected %s, want conv.im2col", big.Name())
	}
}

func TestAutoTuneCachesDecisions(t *testing.T) {
	g := convNet(t)
	p := NewAutoTunePolicy()
	p.Repeats = 1
	for _, n := range g.Nodes {
		if n.Op != "Conv" {
			continue
		}
		k1, err := p.Select(n)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := p.Select(n)
		if err != nil {
			t.Fatal(err)
		}
		if k1.Name() != k2.Name() {
			t.Fatal("autotune not deterministic across cache hits")
		}
	}
	if p.CacheSize() != 2 { // two distinct conv signatures
		t.Fatalf("cache size = %d, want 2", p.CacheSize())
	}
}

// TestAutoTuneInt8Eligibility pins the candidate-pool rules of the int8
// tier: quantized kernels are invisible to fp32 tuning (a plan that never
// opted in must stay bit-accurate fp32) and join the pool only under
// AllowInt8, which also flips the policy into an Int8Arbiter so Compile
// leaves the per-layer fp32-vs-int8 decision to measurement.
func TestAutoTuneInt8Eligibility(t *testing.T) {
	g := convNet(t)
	var conv *graph.Node
	for _, n := range g.Nodes {
		if n.Op == "Conv" && n.Attrs.Int("group", 1) == 1 {
			conv = n
			break
		}
	}
	if conv == nil {
		t.Fatal("no dense conv in fixture")
	}
	hasQuantized := func(ks []ops.Kernel) bool {
		for _, k := range ks {
			if ops.IsQuantized(k) {
				return true
			}
		}
		return false
	}
	if hasQuantized(supportingKernels(conv, false)) {
		t.Error("fp32 candidate pool contains a quantized kernel")
	}
	if !hasQuantized(supportingKernels(conv, true)) {
		t.Error("AllowInt8 candidate pool is missing the quantized kernel")
	}
	p := NewAutoTunePolicy()
	if p.ArbitratesInt8() {
		t.Error("policy arbitrates int8 without AllowInt8")
	}
	p.AllowInt8 = true
	if !p.ArbitratesInt8() {
		t.Error("AllowInt8 policy must arbitrate int8 itself")
	}
}

// TestAutoTuneSelectBatchRetunes pins batch-aware tuning: SelectBatch at
// a smaller batch produces its own cache entry (the batch-n shapes sign
// differently), so a kernel that wins at MaxBatch is not blindly reused.
func TestAutoTuneSelectBatchRetunes(t *testing.T) {
	g := convNet(t)
	var conv *graph.Node
	for _, n := range g.Nodes {
		if n.Op == "Conv" {
			conv = n
			break
		}
	}
	p := NewAutoTunePolicy()
	p.Repeats = 1
	if _, err := p.Select(conv); err != nil {
		t.Fatal(err)
	}
	size1 := p.CacheSize()
	in := make([][]int, len(conv.Inputs))
	for i, v := range conv.Inputs {
		in[i] = append([]int(nil), v.Shape...)
	}
	out := [][]int{append([]int(nil), conv.Outputs[0].Shape...)}
	in[0] = append([]int(nil), in[0]...)
	in[0][0] = 3 // tune at batch 3 instead of the planned batch
	out[0][0] = 3
	k, err := p.SelectBatch(conv, 3, in, out)
	if err != nil {
		t.Fatal(err)
	}
	if k == nil {
		t.Fatal("SelectBatch returned no kernel")
	}
	if p.CacheSize() != size1+1 {
		t.Errorf("batch-3 tuning reused the planned-batch cache entry (size %d, want %d)", p.CacheSize(), size1+1)
	}
}

func TestKernelSummary(t *testing.T) {
	g := convNet(t)
	orp, _ := ByName("orpheus")
	plan, err := orp.Prepare(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := KernelSummary(plan.Steps())
	if !strings.Contains(s, "conv.im2col") || !strings.Contains(s, "conv.depthwise") {
		t.Fatalf("summary missing kernels: %q", s)
	}
}
