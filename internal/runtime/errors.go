package runtime

import "errors"

// Typed sentinel errors of the inference request lifecycle. Every error the
// runtime (and the facade above it) returns for these conditions wraps one
// of the sentinels with %w, so callers branch with errors.Is instead of
// matching message strings:
//
//	if errors.Is(err, runtime.ErrShapeMismatch) { /* 400, not 500 */ }
//
// The sentinels deliberately carry no request detail themselves — the
// wrapping error holds the shapes, names and limits — so they stay stable
// comparison anchors across releases.
var (
	// ErrShapeMismatch marks an input (or destination) tensor whose shape
	// or volume does not match what the compiled plan expects.
	ErrShapeMismatch = errors.New("shape mismatch")

	// ErrUnknownInput marks a named input that the graph does not declare,
	// or a declared graph input missing from the request.
	ErrUnknownInput = errors.New("unknown input")

	// ErrUnknownOutput marks a request for an output name the graph does
	// not produce.
	ErrUnknownOutput = errors.New("unknown output")

	// ErrBatchTooLarge marks a request whose batch exceeds the MaxBatch the
	// plan was compiled for.
	ErrBatchTooLarge = errors.New("batch exceeds plan MaxBatch")

	// ErrClosed marks a request submitted after Close: the session,
	// batcher or server has drained and no longer accepts work.
	ErrClosed = errors.New("closed")

	// ErrNoOutput marks a graph that produced no output tensor (a model
	// hosting error, not a request error).
	ErrNoOutput = errors.New("model has no outputs")
)
