// ONNX round trip: export a model to ONNX bytes, re-import it, and verify
// the two graphs are numerically identical — the paper's model-
// interoperability path exercised end to end with real ONNX files.
//
//	go run ./examples/onnx_roundtrip
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"orpheus"
)

func main() {
	model, err := orpheus.BuildZooModel("wrn-40-2")
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "orpheus-roundtrip")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "wrn-40-2.onnx")

	if err := model.SaveONNX(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("exported %s (%.2f MB)\n", path, float64(info.Size())/(1<<20))

	imported, err := orpheus.LoadONNX(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported: %s\n", imported.Summary())

	// Same input through both graphs.
	ctx := context.Background()
	input := orpheus.RandomTensor(5, model.InputShape()...)
	s1, err := model.Compile()
	if err != nil {
		log.Fatal(err)
	}
	s2, err := imported.Compile()
	if err != nil {
		log.Fatal(err)
	}
	out1, err := s1.Predict(ctx, input)
	if err != nil {
		log.Fatal(err)
	}
	out2, err := s2.Predict(ctx, input)
	if err != nil {
		log.Fatal(err)
	}

	var maxDiff float64
	for i := range out1.Data() {
		d := math.Abs(float64(out1.Data()[i] - out2.Data()[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |original - reimported| over %d outputs: %g\n", out1.Size(), maxDiff)
	if maxDiff > 1e-5 {
		log.Fatal("round trip is NOT numerically faithful")
	}
	fmt.Println("round trip is numerically faithful ✓")
}
