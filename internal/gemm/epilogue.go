package gemm

// Virtual B operands and fused epilogues for the packed tier.
//
// A PackSrc lets a Call describe its B operand *implicitly*: instead of
// reading a materialised row-major matrix, the packed tier asks the source
// to write each kc×nc panel directly into pack strips. Convolution uses
// this to pack straight from the NCHW input image ("implicit GEMM"),
// skipping the kdim×cols im2col scratch matrix and the extra read/write
// sweep over it.
//
// The epilogue fields of Call (BiasRow, BiasCol, Act, Alpha) fuse the
// bias-add and elementwise activation into the tile store: they are
// applied to each macro-tile right after its final k-panel is written to
// C, while the tile is still cache-resident, instead of as separate
// full-tensor sweeps after the GEMM returns. (Micro-tile granularity was
// measured slower: a call per 8×8 tile costs more in call/branch overhead
// than the cache win returns; one pass per mc×nc macro-tile amortises it.)

// PackSrc supplies a virtual B operand panel by panel. Implementations
// must be safe for concurrent PackPanel calls: the worker pool packs
// panels of one Call from several goroutines at once, and the source is
// treated as read-only for the duration of the Call.
type PackSrc interface {
	// PackPanel writes the packed form of the kc×nc panel of image img's
	// B matrix starting at row pp, column jj into dst, using the layout
	// packB produces: strips of nr columns, row-major within each strip,
	// strip s spanning columns [s*nr, s*nr+nr). Columns beyond nc must be
	// zero-padded so edge strips are full. dst holds at least
	// roundUp(nc, nr)*kc values.
	PackPanel(dst []float32, img, pp, jj, kc, nc, nr int)
}

// PackSrcA supplies a virtual A operand panel by panel — the A-side mirror
// of PackSrc. NHWC implicit-GEMM convolution gathers per-image receptive
// fields this way while the constant weights ride as a prepacked, shared B
// operand. Implementations must be safe for concurrent PackPanelA calls.
type PackSrcA interface {
	// PackPanelA writes the packed form of the mc×kc panel of image img's
	// A matrix starting at row ii, column pp into dst, using the layout
	// packA produces: strips of mr rows, column-major within each strip,
	// strip s spanning rows [s*mr, s*mr+mr). Rows beyond mc must be
	// zero-padded so edge strips are full. dst holds at least
	// roundUp(mc, mr)*kc values.
	PackPanelA(dst []float32, img, ii, pp, mc, kc, mr int)
}

// Activation selects the elementwise activation a Call's epilogue applies
// after the bias add.
type Activation uint8

// Epilogue activations. ActLeakyReLU multiplies negative values by
// Call.Alpha.
const (
	ActNone Activation = iota
	ActReLU
	ActReLU6
	ActLeakyReLU
)

// hasEpilogue reports whether the call carries any fused epilogue work.
func (c *Call) hasEpilogue() bool {
	return c.BiasRow != nil || c.BiasCol != nil || c.Act != ActNone
}

// applyEpilogueTile applies the call's bias and activation to the
// rows×cols region of dst whose top-left element is C[r0][c0] (absolute
// matrix coordinates, so the bias vectors index correctly). ldc is the row
// stride of dst. Called once per macro-tile, immediately after the tile's
// final k-panel is stored, so the operands are still cache-resident. Each
// row is finished in a single fused pass — bias add and activation
// together — with the mode branches hoisted out of the element loop.
func (c *Call) applyEpilogueTile(dst []float32, r0, c0, rows, cols, ldc int) {
	var bcol []float32
	if c.BiasCol != nil {
		bcol = c.BiasCol[c0 : c0+cols]
	}
	alpha := c.Alpha
	for r := 0; r < rows; r++ {
		row := dst[(r0+r)*ldc+c0 : (r0+r)*ldc+c0+cols]
		var bv float32
		if c.BiasRow != nil {
			bv = c.BiasRow[r0+r]
		}
		if bcol != nil {
			for i := range row {
				row[i] += bv + bcol[i]
			}
			applyActivationRow(row, c.Act, alpha)
			continue
		}
		switch c.Act {
		case ActNone:
			if bv != 0 {
				for i := range row {
					row[i] += bv
				}
			}
		case ActReLU:
			for i, v := range row {
				v += bv
				if v < 0 {
					v = 0
				}
				row[i] = v
			}
		case ActReLU6:
			for i, v := range row {
				v += bv
				if v < 0 {
					v = 0
				} else if v > 6 {
					v = 6
				}
				row[i] = v
			}
		case ActLeakyReLU:
			for i, v := range row {
				v += bv
				if v < 0 {
					v = alpha * v
				}
				row[i] = v
			}
		}
	}
}

// applyEpilogueAll applies the epilogue over an entire M×N image of C —
// the K == 0 store case, where no macro-kernel runs.
func (c *Call) applyEpilogueAll(dst []float32) {
	c.applyEpilogueTile(dst, 0, 0, c.M, c.N, c.ldc())
}

// applyActivationRow applies act in place. The switch sits outside the
// hot tile loop's inner body so each row pays one branch, not one per
// element.
func applyActivationRow(row []float32, act Activation, alpha float32) {
	switch act {
	case ActNone:
	case ActReLU:
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			}
		}
	case ActReLU6:
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			} else if v > 6 {
				row[i] = 6
			}
		}
	case ActLeakyReLU:
		for i, v := range row {
			if v < 0 {
				row[i] = alpha * v
			}
		}
	}
}
