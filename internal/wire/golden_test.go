package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden fixtures instead of checking against
// them: go test ./internal/wire -run TestGolden -update. Only a
// deliberate, reviewed format change may ever run it.
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// TestGoldenFixtures is the conformance battery: each checked-in .bin
// fixture must byte-exactly equal a fresh encode of its reference tensor,
// and must decode back to it. The fixtures pin the format itself — any
// silent drift (field order, endianness, header width, dataLen
// derivation) fails here before it can ship, because the comparison is
// against bytes produced by a previous version of the encoder, not by
// the current one.
func TestGoldenFixtures(t *testing.T) {
	refs := testTensors()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, ref := range refs {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".bin")
			var buf bytes.Buffer
			if err := Encode(&buf, ref); err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update after a deliberate format change): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("encoding of %q drifted from its golden fixture:\n got: %x\nwant: %x", name, buf.Bytes(), want)
			}
			// And the fixture decodes back to the reference tensor.
			dec, err := DecodeBytes(want, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.SameShape(ref) {
				t.Fatalf("decoded shape %v, want %v", dec.Shape(), ref.Shape())
			}
			dd, rd := dec.Data(), ref.Data()
			for i := range rd {
				if dd[i] != rd[i] {
					t.Fatalf("decoded data[%d] = %v, want %v", i, dd[i], rd[i])
				}
			}
		})
	}
	// Every fixture on disk must have a reference — a stray file means
	// the battery no longer covers the whole corpus.
	files, err := filepath.Glob(filepath.Join("testdata", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	u8refs := testU8Fixtures()
	for _, f := range files {
		name := filepath.Base(f)
		name = name[:len(name)-len(".bin")]
		_, f32 := refs[name]
		_, u8 := u8refs[name]
		if !f32 && !u8 {
			t.Errorf("fixture %s has no reference in testTensors() or testU8Fixtures()", f)
		}
	}
}

// u8Fixture is a reference quantized tensor for the u8 golden battery:
// the raw quantized payload plus the affine parameters the header
// extension must carry.
type u8Fixture struct {
	data  []byte
	shape []int
	scale float32
	zero  uint8
}

// testU8Fixtures returns the reference set for the u8 wire fixtures.
// Fixture names are prefixed u8- so the stray-file check can attribute
// every testdata/*.bin to exactly one battery.
func testU8Fixtures() map[string]u8Fixture {
	quant := func(shape []int, vals []float32) u8Fixture {
		q := make([]byte, len(vals))
		scale, zero := QuantizeU8(q, vals)
		return u8Fixture{data: q, shape: shape, scale: scale, zero: zero}
	}
	return map[string]u8Fixture{
		// A mixed-sign activation block: nonzero scale and zero point.
		"u8-act2x4": quant([]int{2, 4}, []float32{-1.5, -0.25, 0, 0.75, 1.25, 2, 3.5, 6}),
		// All-equal data: the degenerate encoding (q=1, scale=value).
		"u8-const3": quant([]int{3}, []float32{2.5, 2.5, 2.5}),
		// Empty tensor: header extension present, no payload.
		"u8-empty": {data: nil, shape: []int{0}, scale: 1, zero: 0},
		// Raw passthrough bytes with explicit parameters.
		"u8-raw4": {data: []byte{0, 1, 128, 255}, shape: []int{4}, scale: 0.5, zero: 128},
	}
}

// TestGoldenFixturesU8 pins the u8 encoding — header extension layout
// (scale f32 LE, zero point, three reserved-zero bytes) and payload —
// against checked-in bytes, exactly as TestGoldenFixtures does for
// float32. Decodes additionally verify the dequantized values.
func TestGoldenFixturesU8(t *testing.T) {
	for name, ref := range testU8Fixtures() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".bin")
			enc := AppendTensorU8(nil, ref.data, ref.shape, ref.scale, ref.zero)
			if len(enc) != EncodedSizeU8(ref.shape) {
				t.Fatalf("encoded %d bytes, EncodedSizeU8 says %d", len(enc), EncodedSizeU8(ref.shape))
			}
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update after a deliberate format change): %v", err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("u8 encoding of %q drifted from its golden fixture:\n got: %x\nwant: %x", name, enc, want)
			}
			// The fixture parses back to the same parameters and payload…
			hdr, payload, err := ParseMessage(want, 0)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.DType != U8 || hdr.Scale != ref.scale || hdr.Zero != ref.zero {
				t.Fatalf("parsed dtype=%v scale=%v zero=%d, want u8 scale=%v zero=%d",
					hdr.DType, hdr.Scale, hdr.Zero, ref.scale, ref.zero)
			}
			if !bytes.Equal(payload, ref.data) {
				t.Fatalf("payload %x, want %x", payload, ref.data)
			}
			// …and decodes to the dequantized values.
			dec, err := DecodeBytes(want, 0)
			if err != nil {
				t.Fatal(err)
			}
			dd := dec.Data()
			for i, q := range ref.data {
				want := ref.scale * (float32(q) - float32(ref.zero))
				if dd[i] != want {
					t.Fatalf("decoded data[%d] = %v, want %v", i, dd[i], want)
				}
			}
		})
	}
}
