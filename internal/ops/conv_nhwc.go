package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// NHWC execution tier for convolution. The layout-assignment pass
// (internal/passes/layout.go) rewrites eligible subgraphs to
// channel-innermost tensors; these kernels are the production paths for
// the rewritten Conv nodes:
//
//   - conv.im2col_nhwc: implicit GEMM with the receptive fields gathered
//     as the A operand (conv_implicit_nhwc.go) and the constant weights
//     prepacked once as a batch-shared B. Grouped convolution writes each
//     group's output-channel slice in place through the GEMM's Ldc window.
//   - conv.depthwise_nhwc: NHWC makes depthwise convolution vectorisable —
//     one output pixel accumulates kh*kw fused multiply-adds over
//     contiguous C-length rows (gemm.FMARow), where the NCHW form walks
//     scalars. This is the layout MobileNet-class models want.
//
// conv.direct remains the layout-aware correctness reference for both.
func init() {
	Register(NewOverwritingKernel("conv.im2col_nhwc", "Conv", supportsConvNHWC, runConvIm2colNHWC))
	Register(NewOverwritingKernel("conv.depthwise_nhwc", "Conv", supportsDepthwiseNHWC, runConvDepthwiseNHWC))
}

func supportsConvNHWC(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == "nhwc" && !p.isDepthwise()
}

func supportsDepthwiseNHWC(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == "nhwc" && !p.srcNCHW && p.isDepthwise()
}

// nhwcWeightMatrix writes group g's [kdim × coutG] NHWC weight matrix into
// wt: row kd = (ky*kw + kx)*cinG + c, column co — the transpose-and-
// permute of the NCHW [Cout, Cin/g, KH, KW] weight blob that pairs with
// convPackSrcA's row decode.
func nhwcWeightMatrix(wt, w []float32, g, cinG, coutG, kh, kw int) {
	khw := kh * kw
	for co := 0; co < coutG; co++ {
		wr := w[(g*coutG+co)*cinG*khw:]
		for c := 0; c < cinG; c++ {
			for k := 0; k < khw; k++ {
				wt[(k*cinG+c)*coutG+co] = wr[c*khw+k]
			}
		}
	}
}

// nhwcPackedWeights returns the node's cached prepacked per-group NHWC
// weight panels, building them on first use: groups consecutive buffers of
// PackedBSize(kdim, coutG) values each. Returns nil (rebuild per call)
// when scratch reuse is disabled.
func nhwcPackedWeights(ctx *Ctx, n *graph.Node, w []float32, groups, cinG, coutG, kh, kw int) []float32 {
	if ctx.DisableScratchReuse {
		return nil
	}
	if buf := ctx.Cache("conv.im2col_nhwc/pw", n); buf != nil {
		return buf
	}
	kdim := cinG * kh * kw
	per := gemm.PackedBSize(kdim, coutG)
	buf := make([]float32, groups*per)
	wt := make([]float32, kdim*coutG)
	for g := 0; g < groups; g++ {
		nhwcWeightMatrix(wt, w, g, cinG, coutG, kh, kw)
		gemm.PrepackBInto(buf[g*per:], wt, kdim, coutG)
	}
	ctx.PutCache("conv.im2col_nhwc/pw", n, buf)
	return buf
}

func runConvIm2colNHWC(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	kdim := cinG * p.kh * p.kw
	cols := p.oh * p.ow
	act := gemmActivation(p.activation)

	packedW := nhwcPackedWeights(ctx, n, w, p.groups, cinG, coutG, p.kh, p.kw)
	var rawW []float32
	if packedW == nil {
		// Per-call-allocation simulation: rebuild the weight matrices each
		// run instead of caching packed panels.
		rawW = ctx.ScratchUninit("conv.im2col_nhwc/wt", n, p.groups*kdim*coutG)
		for g := 0; g < p.groups; g++ {
			nhwcWeightMatrix(rawW[g*kdim*coutG:], w, g, cinG, coutG, p.kh, p.kw)
		}
	}

	// Pointwise fast path: for a 1x1 stride-1 unpadded ungrouped NHWC conv
	// the input already *is* the [n*oh*ow × cin] unfold, so the whole batch
	// collapses into one dense GEMM with no gather at all.
	if p.kh == 1 && p.kw == 1 && p.sh == 1 && p.sw == 1 && p.dh == 1 && p.dw == 1 &&
		p.padT == 0 && p.padL == 0 && p.padB == 0 && p.padR == 0 &&
		p.groups == 1 && !p.srcNCHW {
		ctx.GEMM(gemm.Call{A: x, B: rawW, PackedB: packedW, C: y,
			M: p.n * cols, N: p.cout, K: p.cin, Store: true,
			BiasCol: bias, Act: act, Alpha: p.alpha})
		return nil
	}

	per := gemm.PackedBSize(kdim, coutG)
	for g := 0; g < p.groups; g++ {
		// One strided call folds the whole batch: the A source resolves the
		// image index, C images start cols*cout apart, and the group's
		// columns sit g*coutG into each output row (Ldc = cout).
		ctx.convSrcA.init(x, &p, g)
		call := gemm.Call{APack: &ctx.convSrcA, C: y[g*coutG:],
			M: cols, N: coutG, K: kdim, Ldc: p.cout, Store: true,
			Batch: p.n, StrideC: cols * p.cout,
			Act: act, Alpha: p.alpha}
		if packedW != nil {
			call.PackedB = packedW[g*per : (g+1)*per]
		} else {
			call.B = rawW[g*kdim*coutG : (g+1)*kdim*coutG]
		}
		if bias != nil {
			call.BiasCol = bias[g*coutG : (g+1)*coutG]
		}
		ctx.GEMM(call)
	}
	return nil
}

// depthwiseNHWCWeights returns the node's cached channel-innermost
// depthwise weights, wn[(ky*kw + kx)*C + c] = w[c*khw + ky*kw + kx], so
// each kernel tap is one contiguous C-length multiplier row.
func depthwiseNHWCWeights(ctx *Ctx, n *graph.Node, w []float32, ch, khw int) []float32 {
	var buf []float32
	if ctx.DisableScratchReuse {
		buf = ctx.ScratchUninit("conv.depthwise_nhwc/w", n, ch*khw)
	} else {
		if b := ctx.Cache("conv.depthwise_nhwc/w", n); b != nil {
			return b
		}
		buf = make([]float32, ch*khw)
	}
	for c := 0; c < ch; c++ {
		for k := 0; k < khw; k++ {
			buf[k*ch+c] = w[c*khw+k]
		}
	}
	if !ctx.DisableScratchReuse {
		ctx.PutCache("conv.depthwise_nhwc/w", n, buf)
	}
	return buf
}

func runConvDepthwiseNHWC(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	ch := p.cin
	wn := depthwiseNHWCWeights(ctx, n, in[1].Data(), ch, p.kh*p.kw)
	for b := 0; b < p.n; b++ {
		for oy := 0; oy < p.oh; oy++ {
			iy0 := oy*p.sh - p.padT
			for ox := 0; ox < p.ow; ox++ {
				ix0 := ox*p.sw - p.padL
				base := ((b*p.oh+oy)*p.ow + ox) * ch
				dst := y[base : base+ch]
				if bias != nil {
					copy(dst, bias)
				} else {
					for i := range dst {
						dst[i] = 0
					}
				}
				for ky := 0; ky < p.kh; ky++ {
					iy := iy0 + ky*p.dh
					if iy < 0 || iy >= p.h {
						continue
					}
					for kx := 0; kx < p.kw; kx++ {
						ix := ix0 + kx*p.dw
						if ix < 0 || ix >= p.w {
							continue
						}
						gemm.FMARow(dst, x[((b*p.h+iy)*p.w+ix)*ch:], wn[(ky*p.kw+kx)*ch:])
					}
				}
			}
		}
	}
	ctx.Sweep(y, nil, p.n*p.oh, p.ow*ch, p.activation, p.alpha)
	return nil
}
