// Package serve embeds Orpheus behind an HTTP API — the deployment role
// the paper assigns to its Python bindings ("embedding in other
// experimental workflows"), done the Go way with net/http. A Server
// hosts one or more compiled sessions in a Registry and exposes:
//
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness: drain state and queue saturation
//	GET  /models                   loaded models with shapes, priorities and footprints
//	POST /predict/{model}          one sample in → prediction out
//	POST /models/{model}/predict   the same endpoint, REST-style path
//	POST /profile/{model}          same input → per-layer timing breakdown (JSON only)
//
// Predict speaks two body formats, negotiated per request:
//
//   - application/json (the default): {"input": [...], "topk": n,
//     "wait_ms": f} → {"output": [...], "shape": ..., "topk": ...}.
//   - application/x-orpheus-tensor: the binary wire format of
//     internal/wire — one encoded float32 sample as the raw body, with
//     ?topk= and ?wait_ms= as query parameters. Decoding a binary body
//     costs microseconds and no steady-state allocations, against
//     hundreds of microseconds of JSON parsing for a CIFAR-sized sample.
//
// The response format follows the Accept header when it names one of the
// two types, and mirrors the request format otherwise. Binary responses
// carry the metadata in X-Orpheus-Batch-Size, X-Orpheus-Latency-Ms and
// X-Orpheus-TopK headers. Error responses are always JSON. Any other
// Content-Type is rejected with 415 before the body is read.
//
// Inputs are one sample of the model's input shape — a flat row-major
// float32 array in JSON, an encoded tensor of matching volume in binary;
// the handler validates before execution so malformed clients get a 400,
// not a panic. Error statuses are uniform across endpoints and derived
// from the runtime's typed error set with errors.Is (see statusFor):
// unknown model → 404, malformed body or input → 400, shed by admission
// control → 429 with a Retry-After estimate, graceful shutdown → 503
// with Retry-After, execution failure (including a recovered plan-step
// panic) → 500.
//
// The server degrades instead of falling over: WithQueueDepth bounds each
// model's batching queue, WithMaxInflight caps concurrent executions
// server-wide — tiered by WithModelPriority so low-priority models shed
// first (see Registry) — WithRequestTimeout bounds execution time (not
// just queue wait), and a plan step that panics fails only its own
// request — the poisoned session is quarantined, never pooled, and the
// process stays up. See docs/SERVE.md ("Overload behaviour").
//
// Servers created with WithMaxBatch(n > 1) batch dynamically: concurrent
// /predict requests to one model are coalesced into a single batched
// Session.Run by a runtime.Batcher (flushing when the batch is full or
// after a small deadline, default 2ms), so under load every packed weight
// panel is read once per batch instead of once per request. Binary bodies
// are staged straight into the batch tensor (Batcher.SubmitStaged) —
// they are never copied through an intermediate slice. Requests can cap
// their own wait with wait_ms; each request's queue slot is tied to its
// http.Request context, so a disconnected client is dropped before its
// sample is ever staged. /profile always runs solo, since its per-layer
// timings describe a single inference.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
	"orpheus/internal/wire"
)

// DefaultFlushDeadline is how long a lone request waits for batch peers
// before the batcher flushes it through on its own.
const DefaultFlushDeadline = runtime.DefaultFlushDeadline

// Entry is one hosted model. Requests are served concurrently: each
// in-flight request (or batch of requests) borrows a session from the
// entry's pool, so N clients hitting one model get private arenas over one
// shared plan (and one shared set of packed weights) instead of queueing
// on a mutex. An Entry is immutable once its Registry.Add returns;
// handlers that hold one keep serving it even while it is being removed
// from the registry.
type Entry struct {
	// Name is the model's registry key and URL path segment.
	Name string
	// Backend names the backend the model was compiled under.
	Backend  string
	graph    *graph.Graph
	sessions *runtime.SessionPool

	inName   string
	outName  string
	inShape1 []int // input shape of a single sample
	perVol   int   // values per sample
	batcher  *runtime.Batcher

	priority int           // shedding priority class (higher = shed later)
	queueCap int           // batching queue bound (0 = unbounded)
	timeout  time.Duration // per-request execution bound (0 = none)

	// admitLimit is the in-flight level at which this model starts
	// shedding, derived from the priority tiering (math.MaxInt64 when no
	// cap is set). It is recomputed whenever the model set changes.
	admitLimit atomic.Int64

	// maxWireLen bounds an encoded request body for this model: the
	// max-rank header plus one sample's payload.
	maxWireLen int
	// bufs pools request/response wire buffers (*[]byte of maxWireLen,
	// possibly grown by a large response) so the binary path reads,
	// decodes and encodes without per-request allocations.
	bufs sync.Pool
	// inputs pools sample-shaped input tensors for the unbatched binary
	// path (the batched path stages into the batch tensor directly).
	inputs sync.Pool
}

// Priority reports the model's shedding priority class.
func (e *Entry) Priority() int { return e.priority }

// getBuf borrows a wire buffer sized for one encoded sample.
func (e *Entry) getBuf() *[]byte {
	if p, ok := e.bufs.Get().(*[]byte); ok {
		return p
	}
	b := make([]byte, e.maxWireLen)
	return &b
}

// putBuf returns a borrowed wire buffer to the pool.
func (e *Entry) putBuf(p *[]byte) { e.bufs.Put(p) }

// getInput borrows a sample-shaped input tensor.
func (e *Entry) getInput() *tensor.Tensor {
	if t, ok := e.inputs.Get().(*tensor.Tensor); ok {
		return t
	}
	return tensor.New(e.inShape1...)
}

// putInput returns a borrowed input tensor to the pool.
func (e *Entry) putInput(t *tensor.Tensor) { e.inputs.Put(t) }

// Server hosts compiled models behind an http.Handler.
type Server struct {
	reg *Registry

	// inflightN gauges concurrent executions against the priority-tiered
	// admission limits (see Registry); it replaces a flat semaphore so
	// each model can have its own threshold over one shared count.
	inflightN atomic.Int64

	// draining flips once Close begins; admission then rejects new
	// requests with ErrClosed (→ 503 + Retry-After) so load balancers
	// stop routing to a node that is shutting down.
	draining atomic.Bool

	shed   atomic.Int64 // requests rejected with 429 (queue or in-flight cap)
	panics atomic.Int64 // requests failed by a recovered plan-step panic
}

// New returns an empty server.
func New(opts ...Option) *Server {
	return &Server{reg: NewRegistry(opts...)}
}

// Registry exposes the server's model registry for dynamic add/remove.
func (s *Server) Registry() *Registry { return s.reg }

// AddModel compiles g under the named backend and hosts it as name; see
// Registry.Add. Per-model options override the server-wide policy.
func (s *Server) AddModel(name string, g *graph.Graph, backendName string, workers int, opts ...ModelOption) error {
	return s.reg.Add(name, g, backendName, workers, opts...)
}

// RemoveModel unhosts the named model and drains its batcher; see
// Registry.Remove.
func (s *Server) RemoveModel(name string) error {
	return s.reg.Remove(name)
}

// Close drains the server gracefully: the draining flag flips first, so
// new requests are rejected with ErrClosed (→ 503 + Retry-After, which
// tells load balancers to take the node out of rotation), then the
// batchers drain — requests already handed to a collector execute to
// completion and Close returns once in-flight batches have delivered.
func (s *Server) Close() {
	s.draining.Store(true)
	s.reg.close()
}

// Draining reports whether Close has begun; /readyz exposes it.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports how many requests are executing right now — the gauge
// the priority-tiered admission limits compare against.
func (s *Server) Inflight() int64 { return s.inflightN.Load() }

// ShedCount reports how many requests the server rejected with 429
// (queue-depth or in-flight cap). cmd/orpheus-serve logs it on shutdown.
func (s *Server) ShedCount() int64 { return s.shed.Load() }

// PanicCount reports how many requests failed on a recovered plan-step
// panic (each also quarantined its session).
func (s *Server) PanicCount() int64 { return s.panics.Load() }

// admit performs server-level admission for a request to e (nil counts
// against the full cap): a draining server rejects with ErrClosed, and a
// request past its model's priority-tiered admission limit is shed with
// ErrOverloaded. On success the caller must invoke the returned release
// when its execution finishes.
func (s *Server) admit(e *Entry) (release func(), err error) {
	if s.draining.Load() {
		return nil, fmt.Errorf("serve: draining: %w", runtime.ErrClosed)
	}
	capN := s.reg.cfg.inflightCap
	if capN <= 0 {
		return func() {}, nil
	}
	limit := int64(capN)
	if e != nil {
		limit = e.admitLimit.Load()
	}
	if n := s.inflightN.Add(1); n > limit {
		s.inflightN.Add(-1)
		if limit < int64(capN) {
			return nil, fmt.Errorf("serve: %d requests in flight over priority-%d admission limit %d (server cap %d): %w",
				n-1, e.priority, limit, capN, runtime.ErrOverloaded)
		}
		return nil, fmt.Errorf("serve: %d requests in flight (cap %d): %w", n-1, capN, runtime.ErrOverloaded)
	}
	return func() { s.inflightN.Add(-1) }, nil
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("POST /predict/{model}", s.handlePredict)
	mux.HandleFunc("POST /models/{model}/predict", s.handlePredict)
	mux.HandleFunc("POST /profile/{model}", s.handleProfile)
	return mux
}

// modelInfo is the /models response element. Batcher is present only on
// batching servers and snapshots the model's runtime.BatcherStats — the
// counters an operator watches to tune MaxBatch and the flush deadline.
// AdmitLimit is the in-flight level at which the model starts shedding
// (0 = no cap).
type modelInfo struct {
	Name       string            `json:"name"`
	Backend    string            `json:"backend"`
	InputShape []int             `json:"input_shape"`
	MaxBatch   int               `json:"max_batch"`
	Priority   int               `json:"priority"`
	AdmitLimit int64             `json:"admit_limit"`
	Nodes      int               `json:"nodes"`
	ParamBytes int64             `json:"param_bytes"`
	ArenaBytes int64             `json:"arena_bytes"`
	Batcher    *batcherStatsJSON `json:"batcher,omitempty"`
}

// batcherStatsJSON mirrors runtime.BatcherStats on the wire; the
// cumulative queued wait is reported in milliseconds.
type batcherStatsJSON struct {
	QueueDepth     int64   `json:"queue_depth"`
	Runs           int64   `json:"runs"`
	Requests       int64   `json:"requests"`
	FlushFull      int64   `json:"flush_full"`
	FlushDeadline  int64   `json:"flush_deadline"`
	FlushImmediate int64   `json:"flush_immediate"`
	FlushExplicit  int64   `json:"flush_explicit"`
	FlushClose     int64   `json:"flush_close"`
	QueuedWaitMs   float64 `json:"queued_wait_ms"`
	Rejected       int64   `json:"rejected"`
	Cancelled      int64   `json:"cancelled"`
	// WaitHistogramMs pairs each bucket's upper bound in milliseconds
	// (the final bucket, bound 0, is the unbounded overflow) with its
	// count — the latency shape behind the queued_wait_ms mean.
	WaitHistogramMs []waitBucketJSON `json:"wait_histogram_ms"`
}

// waitBucketJSON is one queued-wait histogram bucket on the wire.
type waitBucketJSON struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// waitHistogramJSON renders the fixed-bucket histogram with its bounds.
func waitHistogramJSON(hist [runtime.WaitBuckets]int64) []waitBucketJSON {
	out := make([]waitBucketJSON, runtime.WaitBuckets)
	for i, n := range hist {
		le := 0.0 // overflow bucket: no upper bound
		if i < len(runtime.WaitBucketBounds) {
			le = float64(runtime.WaitBucketBounds[i]) / 1e6
		}
		out[i] = waitBucketJSON{LeMs: le, Count: n}
	}
	return out
}

func batcherStats(b *runtime.Batcher) *batcherStatsJSON {
	if b == nil {
		return nil
	}
	st := b.Stats()
	return &batcherStatsJSON{
		QueueDepth:      st.QueueDepth,
		Runs:            st.Runs,
		Requests:        st.Requests,
		FlushFull:       st.FlushFull,
		FlushDeadline:   st.FlushDeadline,
		FlushImmediate:  st.FlushImmediate,
		FlushExplicit:   st.FlushExplicit,
		FlushClose:      st.FlushClose,
		QueuedWaitMs:    float64(st.QueuedWait) / 1e6,
		Rejected:        st.Rejected,
		Cancelled:       st.Cancelled,
		WaitHistogramMs: waitHistogramJSON(st.WaitHistogram),
	}
}

// readyModel is one model's readiness row: queue depth against its cap
// (0 = unbounded) and whether the queue is saturated right now.
type readyModel struct {
	Name       string `json:"name"`
	QueueDepth int64  `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Saturated  bool   `json:"saturated"`
}

// handleReadyz is the readiness probe: 200 while the server is accepting
// and no model's queue is saturated, 503 once Close has begun (drain) or
// any bounded queue is full. Liveness (/healthz) stays 200 through both —
// a draining or saturated process is still alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.snapshot()
	models := make([]readyModel, 0, len(entries))
	saturated := false
	for _, e := range entries {
		rm := readyModel{Name: e.Name, QueueCap: e.queueCap}
		if e.batcher != nil {
			rm.QueueDepth = e.batcher.Stats().QueueDepth
			rm.Saturated = e.queueCap > 0 && rm.QueueDepth >= int64(e.queueCap)
		}
		saturated = saturated || rm.Saturated
		models = append(models, rm)
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case saturated:
		status, code = "overloaded", http.StatusServiceUnavailable
	}
	if code != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"draining": s.draining.Load(),
		"models":   models,
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.snapshot()
	infos := make([]modelInfo, 0, len(entries))
	for _, e := range entries {
		limit := e.admitLimit.Load()
		if limit == math.MaxInt64 {
			limit = 0
		}
		infos = append(infos, modelInfo{
			Name:       e.Name,
			Backend:    e.Backend,
			InputShape: e.inShape1,
			MaxBatch:   e.sessions.Plan().MaxBatch(),
			Priority:   e.priority,
			AdmitLimit: limit,
			Nodes:      len(e.graph.Nodes),
			ParamBytes: e.sessions.Plan().WeightBytes(),
			ArenaBytes: e.sessions.Plan().ArenaBytes(),
			Batcher:    batcherStats(e.batcher),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// BatcherStats returns the named model's batcher counters, or false when
// the model is not hosted or the server does not batch. cmd/orpheus-serve
// logs these on shutdown.
func (s *Server) BatcherStats(model string) (runtime.BatcherStats, bool) {
	e, ok := s.entry(model)
	if !ok || e.batcher == nil {
		return runtime.BatcherStats{}, false
	}
	return e.batcher.Stats(), true
}

// Quarantined returns how many poisoned sessions the named model's pool
// has dropped after plan-step panics, or false when the model is not
// hosted. cmd/orpheus-serve logs this on shutdown.
func (s *Server) Quarantined(model string) (int64, bool) {
	e, ok := s.entry(model)
	if !ok {
		return 0, false
	}
	return e.sessions.Quarantined(), true
}

// ModelNames lists the hosted models, sorted.
func (s *Server) ModelNames() []string { return s.reg.Names() }

// predictRequest is the JSON /predict and /profile request body. WaitMs
// caps how long the request waits to be batched with peers (0 means the
// server default flush deadline); it is ignored on unbatched servers and
// by /profile.
type predictRequest struct {
	Input  []float32 `json:"input"`
	TopK   int       `json:"topk,omitempty"`
	WaitMs float64   `json:"wait_ms,omitempty"`
}

// predictResponse is the JSON /predict response body. BatchSize reports
// how many requests shared the run that produced this output (1 when
// unbatched).
type predictResponse struct {
	Output    []float32 `json:"output"`
	Shape     []int     `json:"shape"`
	TopK      []int     `json:"topk,omitempty"`
	BatchSize int       `json:"batch_size,omitempty"`
	LatencyMs float64   `json:"latency_ms"`
}

// layerTimingJSON is one /profile breakdown row.
type layerTimingJSON struct {
	Layer    string  `json:"layer"`
	Op       string  `json:"op"`
	Kernel   string  `json:"kernel"`
	Ms       float64 `json:"ms"`
	GFlopsPS float64 `json:"gflops_per_s"`
}

func (s *Server) entry(name string) (*Entry, bool) {
	return s.reg.lookup(name)
}

// statusFor maps an execution error onto the wire contract with
// errors.Is over the typed error set: request-shaped failures — including
// malformed binary tensors — are the client's fault (400), shedding by
// admission control is 429 (retry the same node later), graceful shutdown
// is 503 (retry another node — the load-balancer signal that this one is
// draining), and everything else — a recovered plan-step panic, a
// cancelled request context, kernel failures — is a 500 the same way any
// aborted execution is. Unknown models are mapped to 404 before
// execution.
func statusFor(err error) int {
	switch {
	case errors.Is(err, runtime.ErrShapeMismatch),
		errors.Is(err, runtime.ErrBatchTooLarge),
		errors.Is(err, runtime.ErrUnknownInput),
		errors.Is(err, runtime.ErrUnknownOutput),
		errors.Is(err, wire.ErrFormat),
		errors.Is(err, wire.ErrTooLarge):
		return http.StatusBadRequest
	case errors.Is(err, runtime.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, runtime.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotHosted):
		return http.StatusNotFound
	default:
		// runtime.ErrPlanPanic, runtime.ErrNoOutput, context.Canceled (the
		// client is gone and never reads the status) and kernel failures.
		return http.StatusInternalServerError
	}
}

// writeFailure maps err through statusFor and writes it, with the
// overload niceties: 429 and 503 carry a Retry-After (derived from the
// model's live batcher wait statistics when available), sheds and panics
// bump the server counters.
func (s *Server) writeFailure(w http.ResponseWriter, e *Entry, err error) {
	code := statusFor(err)
	switch code {
	case http.StatusTooManyRequests:
		s.shed.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(e))
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	if errors.Is(err, runtime.ErrPlanPanic) {
		s.panics.Add(1)
	}
	writeError(w, code, err)
}

// retryAfterSeconds turns the model's live queue-wait estimate into the
// integer seconds the Retry-After header wants, with a floor of 1 — the
// smallest honest hint the header can express.
func retryAfterSeconds(e *Entry) string {
	if e == nil || e.batcher == nil {
		return "1"
	}
	secs := int64((e.batcher.EstimateWait() + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// decodeJSONRequest decodes and validates a JSON predict body for e with
// the uniform status mapping: malformed body or wrong-length input → 400.
// It writes the error response itself and returns ok=false when the
// request is done.
func (s *Server) decodeJSONRequest(w http.ResponseWriter, r *http.Request, e *Entry) (predictRequest, bool) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return predictRequest{}, false
	}
	if len(req.Input) != e.perVol {
		writeError(w, http.StatusBadRequest, fmt.Errorf("input has %d values, model %s wants %d (%s): %w",
			len(req.Input), e.Name, e.perVol, tensor.ShapeString(e.inShape1), runtime.ErrShapeMismatch))
		return predictRequest{}, false
	}
	return req, true
}

// lookupModel resolves the request's model with the uniform status
// mapping (unknown → 404), writing the error itself.
func (s *Server) lookupModel(w http.ResponseWriter, r *http.Request) (*Entry, bool) {
	e, ok := s.entry(r.PathValue("model"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not hosted", r.PathValue("model")))
		return nil, false
	}
	return e, true
}

// requestCtx derives a request's execution context: the client's context,
// additionally bounded by the model's request timeout when set — so a
// wedged or slow run is cancelled at the next plan-step boundary instead
// of holding its session (and admission slot) forever.
func requestCtx(r *http.Request, e *Entry) (context.Context, context.CancelFunc) {
	if e.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), e.timeout)
}

// runSolo executes one unbatched inference for e, copying the output out
// of the session arena before the session goes back to the pool.
func runSolo(ctx context.Context, e *Entry, in *tensor.Tensor) (data []float32, shape []int, err error) {
	sess := e.sessions.Get()
	outs, err := sess.Run(ctx, map[string]*tensor.Tensor{e.inName: in})
	if err == nil {
		if out := outs[e.outName]; out != nil {
			data = append([]float32(nil), out.Data()...)
			shape = out.Shape()
		} else {
			err = fmt.Errorf("model %q produced no output: %w", e.Name, runtime.ErrNoOutput)
		}
	}
	e.sessions.Put(sess)
	return data, shape, err
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	binReq, ferr := requestFormat(r)
	if ferr != nil {
		writeError(w, http.StatusUnsupportedMediaType, ferr)
		return
	}
	binResp := responseWantsBinary(r, binReq)
	release, err := s.admit(e)
	if err != nil {
		// Shed before decoding: a saturated server must not spend CPU
		// parsing bodies it will reject anyway.
		s.writeFailure(w, e, err)
		return
	}
	defer release()
	ctx, cancel := requestCtx(r, e)
	defer cancel()
	start := time.Now()
	var (
		data  []float32
		shape []int
		batch = 1
		topk  int
		wait  time.Duration
	)
	if binReq {
		topk, wait, err = binaryParams(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		buf := e.getBuf()
		defer e.putBuf(buf)
		payload, err := readWireBody(r.Body, e, *buf)
		if err != nil {
			s.writeFailure(w, e, err)
			return
		}
		if e.batcher != nil {
			// Zero-copy staging: the wire payload is decoded straight into
			// the batch tensor's row at claim time. The pooled buffer stays
			// alive until SubmitStaged returns, which is after delivery.
			res, err := e.batcher.SubmitStaged(ctx, func(dst []float32) {
				_ = wire.Float32Into(dst, payload)
			}, wait)
			if err != nil {
				s.writeFailure(w, e, err)
				return
			}
			data, shape, batch = res.Output, res.Shape, res.BatchSize
		} else {
			in := e.getInput()
			_ = wire.Float32Into(in.Data(), payload)
			data, shape, err = runSolo(ctx, e, in)
			e.putInput(in)
			if err != nil {
				s.writeFailure(w, e, err)
				return
			}
		}
	} else {
		req, ok := s.decodeJSONRequest(w, r, e)
		if !ok {
			return
		}
		topk = req.TopK
		wait = time.Duration(req.WaitMs * float64(time.Millisecond))
		if e.batcher != nil {
			res, err := e.batcher.Submit(ctx, req.Input, wait)
			if err != nil {
				s.writeFailure(w, e, err)
				return
			}
			data, shape, batch = res.Output, res.Shape, res.BatchSize
		} else {
			data, shape, err = runSolo(ctx, e, tensor.FromSlice(req.Input, e.inShape1...))
			if err != nil {
				s.writeFailure(w, e, err)
				return
			}
		}
	}
	var topkIdx []int
	if topk > 0 {
		topkIdx = tensor.FromSlice(data, shape...).TopK(topk)
	}
	if binResp {
		writeWireResponse(w, e, data, shape, batch, time.Since(start), topkIdx)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Output:    data,
		Shape:     shape,
		TopK:      topkIdx,
		BatchSize: batch,
		LatencyMs: float64(time.Since(start)) / 1e6,
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	if binReq, ferr := requestFormat(r); ferr != nil {
		writeError(w, http.StatusUnsupportedMediaType, ferr)
		return
	} else if binReq {
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("profile speaks JSON only; POST %s bodies to /predict", ContentTypeTensor))
		return
	}
	release, err := s.admit(e)
	if err != nil {
		s.writeFailure(w, e, err)
		return
	}
	defer release()
	req, ok := s.decodeJSONRequest(w, r, e)
	if !ok {
		return
	}
	ctx, cancel := requestCtx(r, e)
	defer cancel()
	sess := e.sessions.Get()
	_, timings, err := sess.RunProfiled(ctx, map[string]*tensor.Tensor{e.inName: tensor.FromSlice(req.Input, e.inShape1...)})
	e.sessions.Put(sess)
	if err != nil {
		s.writeFailure(w, e, err)
		return
	}
	rows := make([]layerTimingJSON, len(timings))
	for i, lt := range timings {
		var gf float64
		if lt.Duration > 0 {
			gf = float64(lt.Flops) / float64(lt.Duration.Nanoseconds())
		}
		rows[i] = layerTimingJSON{
			Layer:    lt.Node.Name,
			Op:       lt.Node.Op,
			Kernel:   lt.Kernel,
			Ms:       float64(lt.Duration) / 1e6,
			GFlopsPS: gf,
		}
	}
	writeJSON(w, http.StatusOK, rows)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := err.Error()
	// Keep internal prefixes out of client-facing messages.
	msg = strings.TrimPrefix(msg, "serve: ")
	writeJSON(w, code, map[string]string{"error": msg})
}
