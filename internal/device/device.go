// Package device provides an analytical cost model standing in for the
// paper's evaluation hardware, the HiKey 970 board (single Arm Cortex-A73
// core). The repository cannot run on that board, so alongside real
// host-CPU timing the harness reports a simulated time computed from a
// roofline model:
//
//	t(node) = max(flops / (peak · eff), bytes / bandwidth) + dispatch
//
// where eff is a per-kernel efficiency that shrinks for small workloads
// (packing and loop overheads amortise over the work), and bytes charges
// each kernel's real memory traffic — including, crucially, the im2col
// materialisation that GEMM convolution pays and spatial-pack convolution
// avoids. Those two terms are what give Figure 2 its shape: GEMM wins the
// compute-bound big models, spatial pack wins the traffic-bound small
// ones, and per-call dispatch overhead sinks eager frameworks on
// many-layer networks.
//
// Constants were calibrated once against the qualitative results in the
// paper (who wins where, and by roughly what factor) and are documented
// inline; EXPERIMENTS.md records the resulting numbers next to the
// paper's.
package device

import (
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// Device describes one simulated CPU core.
type Device struct {
	// Name identifies the device in reports.
	Name string
	// PeakGFlops is the single-core peak (NEON FMA) throughput.
	PeakGFlops float64
	// MemBWGBs is the sustained single-core DRAM bandwidth in GB/s.
	MemBWGBs float64
}

// HiKey970 returns the cost model for the paper's board: Cortex-A73 at
// 2.36 GHz, 128-bit NEON (8 f32 flops/cycle → ~18.9 GF peak), LPDDR4X
// giving roughly 6 GB/s to a single core.
func HiKey970() *Device {
	return &Device{Name: "hikey970-a73", PeakGFlops: 18.9, MemBWGBs: 6.0}
}

// kernelModel captures how efficiently a kernel turns peak flops into
// useful work and what memory traffic it generates beyond inputs+outputs.
//
// For convolution kernels the efficiency depends on the reduction depth
// K = (Cin/groups)·KH·KW of the equivalent GEMM — the paper's observation
// that "GEMM convolution pays off for big matrices". Packed GEMM amortises
// its panel-packing over K, so efficiency *grows* with K
// (eff = base·K/(K+growHalf)); spatial packing re-streams the weight panel
// per output tile, so its efficiency *decays* as K grows
// (eff = base·decayHalf/(decayHalf+K)). The two curves cross near
// K ≈ 700–900, which is what separates the small models (WRN, MobileNet;
// K ≤ 512) from the large ones (ResNets, Inception hot layers; K ≥ 1100)
// in Figure 2.
type kernelModel struct {
	// baseEff is the asymptotic efficiency vs peak.
	baseEff float64
	// growHalf: efficiency halves below this K (GEMM-style amortisation).
	growHalf float64
	// decayHalf: efficiency halves above this K (tile re-streaming).
	decayHalf float64
	// halfWork is a flop count at which efficiency halves, for
	// non-convolution kernels; 0 means size-independent.
	halfWork float64
	// extraBytes returns additional traffic in bytes (e.g. the im2col
	// buffer being written and re-read).
	extraBytes func(n *graph.Node) int64
	// perGroupNs charges a fixed cost per convolution group (the grouped
	// im2col path dispatches one unfold+GEMM per group).
	perGroupNs float64
}

// gemmDepth returns K of the conv-as-GEMM formulation, or 0 for non-conv.
func gemmDepth(n *graph.Node) float64 {
	if n.Op != "Conv" || len(n.Inputs) < 2 {
		return 0
	}
	w := n.Inputs[1].Shape
	if len(w) != 4 {
		return 0
	}
	return float64(w[1] * w[2] * w[3])
}

// isPointwise reports a 1x1 convolution, which both GEMM and spatial-pack
// kernels execute as a plain channel-contraction GEMM: GEMM skips the
// unfold entirely (the fast path in conv.im2col) and spatial packing
// degenerates to the same loop, so the two run with near-identical,
// NCHWc-style efficiency curves.
func isPointwise(n *graph.Node) bool {
	if n.Op != "Conv" || len(n.Inputs) < 2 {
		return false
	}
	w := n.Inputs[1].Shape
	return len(w) == 4 && w[2] == 1 && w[3] == 1
}

// im2colBufferBytes is the unfold-matrix traffic: written once, read once.
func im2colBufferBytes(n *graph.Node) int64 {
	if n.Op != "Conv" || len(n.Inputs) < 2 || len(n.Outputs) != 1 {
		return 0
	}
	w := n.Inputs[1].Shape
	out := n.Outputs[0].Shape
	if len(w) != 4 || len(out) != 4 {
		return 0
	}
	kdim := w[1] * w[2] * w[3]
	cols := out[0] * out[2] * out[3]
	return 2 * 4 * int64(kdim) * int64(cols)
}

// directRereadBytes models direct convolution's poor input locality: the
// input is effectively streamed once per kernel element.
func directRereadBytes(n *graph.Node) int64 {
	if n.Op != "Conv" || len(n.Inputs) < 2 {
		return 0
	}
	w := n.Inputs[1].Shape
	in := n.Inputs[0].Shape
	if len(w) != 4 || len(in) != 4 {
		return 0
	}
	rereads := int64(w[2]*w[3]) - 1
	if rereads < 0 {
		rereads = 0
	}
	return 4 * rereads * int64(tensor.Volume(in))
}

// kernelModels: calibrated per-kernel constants (see package comment).
var kernelModels = map[string]kernelModel{
	"conv.im2col":      {baseEff: 0.55, growHalf: 600, extraBytes: im2colBufferBytes},
	"conv.spatialpack": {baseEff: 0.45, decayHalf: 1800},
	// Winograd's efficiency is expressed against *direct* flops (the cost
	// model sees NodeFlops): 2.25x fewer multiplies at GEMM-like
	// utilisation once the transforms amortise over channels.
	"conv.winograd":  {baseEff: 0.95, growHalf: 900, extraBytes: im2colBufferBytes},
	"conv.direct":    {baseEff: 0.06, extraBytes: directRereadBytes},
	"conv.depthwise": {baseEff: 0.30},
	// One unfold + tiny naive GEMM dispatched per group: crippling for
	// depthwise layers with hundreds of groups (the paper's PyTorch
	// MobileNetV1 observation).
	"conv.group_im2col": {baseEff: 0.08, extraBytes: im2colBufferBytes, perGroupNs: 20000},
	"dense.gemm":        {baseEff: 0.50, halfWork: 1e6},
	"dense.naive":       {baseEff: 0.08, halfWork: 1e4},
}

// defaultModel covers memory-bound structural and elementwise kernels.
var defaultModel = kernelModel{baseEff: 0.25, halfWork: 0}

// EstimateNode returns the simulated single-core execution time of one
// node under the given kernel.
func (d *Device) EstimateNode(n *graph.Node, kernelName string) time.Duration {
	m, ok := kernelModels[kernelName]
	if !ok {
		m = defaultModel
	}
	flops := float64(ops.NodeFlops(n))
	bytes := float64(ops.NodeBytes(n))
	if m.extraBytes != nil {
		bytes += float64(m.extraBytes(n))
	}
	eff := m.baseEff
	if k := gemmDepth(n); k > 0 {
		switch {
		case isPointwise(n) && kernelName == "conv.im2col":
			// No-unfold GEMM fast path.
			eff = 0.50 * k / (k + 250)
			bytes -= float64(im2colBufferBytes(n)) // fast path skips the buffer
		case isPointwise(n) && kernelName == "conv.spatialpack":
			// Degenerates to the same contraction, slightly better
			// small-K utilisation (NCHWc-style schedule).
			eff = 0.48 * k / (k + 150)
		default:
			if m.growHalf > 0 {
				eff *= k / (k + m.growHalf)
			}
			if m.decayHalf > 0 {
				eff *= m.decayHalf / (m.decayHalf + k)
			}
		}
	} else if m.halfWork > 0 && flops > 0 {
		eff = m.baseEff * flops / (flops + m.halfWork)
	}
	var seconds float64
	if flops > 0 && eff > 0 {
		seconds = flops / (d.PeakGFlops * 1e9 * eff)
	}
	if memSec := bytes / (d.MemBWGBs * 1e9); memSec > seconds {
		seconds = memSec
	}
	if m.perGroupNs > 0 {
		seconds += m.perGroupNs * 1e-9 * float64(groupCount(n))
	}
	return time.Duration(seconds * 1e9)
}

func groupCount(n *graph.Node) int {
	if n.Op != "Conv" {
		return 1
	}
	return n.Attrs.Int("group", 1)
}

// EstimatePlan sums the node estimates over a compiled plan, adding a
// fixed per-node dispatch overhead (framework-dependent: eager frameworks
// pay far more per operator call than compiled runtimes).
func (d *Device) EstimatePlan(plan *runtime.Plan, dispatch time.Duration) time.Duration {
	var total time.Duration
	for _, st := range plan.Steps() {
		total += d.EstimateNode(st.Node, st.Kernel) + dispatch
	}
	return total
}
