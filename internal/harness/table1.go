package harness

import (
	"fmt"
	"sort"
)

// Table I: comparison of deep learning frameworks on five features rated
// 1–3. The first four rows are qualitative design properties transcribed
// from the paper; the Performance row is *derived* from this repository's
// own Figure 2 results (rank per model → average rank → rating), so the
// table is regenerated rather than copied.
func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Comparison of Deep Learning frameworks",
		Run:   runTable1,
	})
}

// frameworkOrder matches the paper's column order.
var frameworkOrder = []string{"TF-Lite", "PyTorch", "DarkNet", "TVM", "Orpheus"}

// backendFor maps column name → simulated backend name.
var backendFor = map[string]string{
	"TF-Lite": "tflite-sim",
	"PyTorch": "torch-sim",
	"DarkNet": "darknet-sim",
	"TVM":     "tvm-sim",
	"Orpheus": "orpheus",
}

// qualitative holds the paper's design-property ratings (rows 1–4 of
// Table I).
var qualitative = []struct {
	feature string
	scores  map[string]int
}{
	{"Low-level modifications", map[string]int{"TF-Lite": 1, "PyTorch": 1, "DarkNet": 2, "TVM": 2, "Orpheus": 3}},
	{"Model interoperability", map[string]int{"TF-Lite": 2, "PyTorch": 3, "DarkNet": 1, "TVM": 3, "Orpheus": 3}},
	{"Platform Compatibility", map[string]int{"TF-Lite": 3, "PyTorch": 2, "DarkNet": 3, "TVM": 3, "Orpheus": 3}},
	{"Codebase accessibility", map[string]int{"TF-Lite": 1, "PyTorch": 2, "DarkNet": 3, "TVM": 1, "Orpheus": 3}},
}

// PaperPerformanceRow is Table I's published Performance rating, kept for
// comparison against the derived row.
var PaperPerformanceRow = map[string]int{"TF-Lite": 2, "PyTorch": 2, "DarkNet": 1, "TVM": 2, "Orpheus": 3}

func runTable1(cfg *Config) (*Report, error) {
	cfg.fill()
	perf, err := DerivePerformanceRatings(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table1", Title: "Comparison of Deep Learning frameworks (1=worst, 3=best)"}
	rep.Header = append([]string{"feature"}, frameworkOrder...)
	for _, row := range qualitative {
		cells := []any{row.feature}
		for _, fw := range frameworkOrder {
			cells = append(cells, row.scores[fw])
		}
		rep.AddRow(cells...)
	}
	cells := []any{"Performance (inference time)"}
	for _, fw := range frameworkOrder {
		cells = append(cells, perf[fw])
	}
	rep.AddRow(cells...)
	rep.AddNote("rows 1-4: design properties as rated in the paper")
	rep.AddNote("Performance row derived from this repository's Figure 2 results (average rank over the five models)")
	for _, fw := range frameworkOrder {
		if perf[fw] != PaperPerformanceRow[fw] {
			rep.AddNote("derived Performance for %s = %d differs from paper's %d", fw, perf[fw], PaperPerformanceRow[fw])
		}
	}
	return rep, nil
}

// DerivePerformanceRatings turns Figure 2 timings into 1–3 ratings: for
// each model the participating frameworks are ranked by time; a
// framework's rating follows its average rank. Frameworks with no
// single-thread data (TF-Lite) inherit a middle rating with a note — the
// paper likewise rated them from multi-thread experience.
func DerivePerformanceRatings(cfg *Config) (map[string]int, error) {
	cfg.fill()
	results, _, err := RunFig2(cfg)
	if err != nil {
		return nil, err
	}
	byModel := map[string][]modelResult{}
	for _, r := range results {
		if r.excluded == "" && r.ms(cfg.Mode) > 0 {
			byModel[r.model] = append(byModel[r.model], r)
		}
	}
	rankSum := map[string]float64{}
	rankCnt := map[string]int{}
	for _, rs := range byModel {
		sort.Slice(rs, func(i, j int) bool { return rs[i].ms(cfg.Mode) < rs[j].ms(cfg.Mode) })
		for rank, r := range rs {
			// A >=5x gap to the winner counts as bottom-rank regardless of
			// position (DarkNet's seconds-scale times).
			effective := float64(rank + 1)
			if r.ms(cfg.Mode) > 5*rs[0].ms(cfg.Mode) {
				effective = 4
			}
			rankSum[r.backendName] += effective
			rankCnt[r.backendName]++
		}
	}
	ratings := map[string]int{}
	for fw, bname := range backendFor {
		if rankCnt[bname] == 0 {
			ratings[fw] = 2 // no single-thread data; paper's multi-thread judgement
			continue
		}
		avg := rankSum[bname] / float64(rankCnt[bname])
		switch {
		case avg <= 1.9:
			ratings[fw] = 3
		case avg <= 3.0:
			ratings[fw] = 2
		default:
			ratings[fw] = 1
		}
	}
	return ratings, nil
}

// FormatRatings renders ratings in paper column order (for logs).
func FormatRatings(r map[string]int) string {
	s := ""
	for _, fw := range frameworkOrder {
		s += fmt.Sprintf("%s=%d ", fw, r[fw])
	}
	return s
}
