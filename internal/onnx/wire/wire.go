// Package wire implements the subset of the protocol-buffers wire format
// needed to read and write ONNX models: varints, length-delimited fields
// and 32/64-bit fixed fields. Orpheus is dependency-free, so this codec is
// written from scratch against the official encoding specification.
//
// Wire types: 0 = varint, 1 = 64-bit, 2 = length-delimited, 5 = 32-bit.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire types per the protobuf encoding spec.
const (
	TypeVarint = 0
	TypeI64    = 1
	TypeBytes  = 2
	TypeI32    = 5
)

// Encoder appends protobuf-encoded fields to a buffer. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// Encoded returns the encoded buffer.
func (e *Encoder) Encoded() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) tag(field, wtype int) {
	e.varint(uint64(field)<<3 | uint64(wtype))
}

func (e *Encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Varint emits a varint field. Negative int64 values must go through
// Int64, which encodes them as 10-byte two's-complement varints.
func (e *Encoder) Varint(field int, v uint64) {
	e.tag(field, TypeVarint)
	e.varint(v)
}

// Int64 emits an int64 varint field (two's complement, as protobuf int64).
func (e *Encoder) Int64(field int, v int64) {
	e.Varint(field, uint64(v))
}

// Float32 emits a 32-bit float field.
func (e *Encoder) Float32(field int, v float32) {
	e.tag(field, TypeI32)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	e.buf = append(e.buf, b[:]...)
}

// Bytes emits a length-delimited field.
func (e *Encoder) Bytes(field int, b []byte) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String emits a string field.
func (e *Encoder) String(field int, s string) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Message emits an embedded message field built by fn.
func (e *Encoder) Message(field int, fn func(*Encoder)) {
	var sub Encoder
	fn(&sub)
	e.Bytes(field, sub.buf)
}

// PackedFloat32 emits a packed repeated float field.
func (e *Encoder) PackedFloat32(field int, vs []float32) {
	e.tag(field, TypeBytes)
	e.varint(uint64(4 * len(vs)))
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		e.buf = append(e.buf, b[:]...)
	}
}

// PackedInt64 emits a packed repeated int64 field.
func (e *Encoder) PackedInt64(field int, vs []int64) {
	var sub Encoder
	for _, v := range vs {
		sub.varint(uint64(v))
	}
	e.Bytes(field, sub.buf)
}

// Decoder reads protobuf fields sequentially from a buffer.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// More reports whether any bytes remain.
func (d *Decoder) More() bool { return d.pos < len(d.buf) }

// Next reads the next field tag, returning field number and wire type.
func (d *Decoder) Next() (field, wtype int, err error) {
	tag, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	field = int(tag >> 3)
	wtype = int(tag & 7)
	if field == 0 {
		return 0, 0, fmt.Errorf("wire: invalid field number 0 at offset %d", d.pos)
	}
	return field, wtype, nil
}

func (d *Decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("wire: truncated varint at offset %d", d.pos)
		}
		b := d.buf[d.pos]
		d.pos++
		if shift == 63 && b > 1 {
			return 0, fmt.Errorf("wire: varint overflows 64 bits at offset %d", d.pos)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("wire: varint too long at offset %d", d.pos)
		}
	}
}

// Varint reads a varint payload.
func (d *Decoder) Varint() (uint64, error) { return d.varint() }

// Int64 reads a varint as int64.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.varint()
	return int64(v), err
}

// Float32 reads a 32-bit float payload.
func (d *Decoder) Float32() (float32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("wire: truncated fixed32 at offset %d", d.pos)
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.pos:]))
	d.pos += 4
	return v, nil
}

// Bytes reads a length-delimited payload. The returned slice aliases the
// input buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.buf)-d.pos) < n {
		return nil, fmt.Errorf("wire: length-delimited field of %d bytes exceeds remaining %d", n, len(d.buf)-d.pos)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// String reads a length-delimited payload as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Skip discards a payload of the given wire type.
func (d *Decoder) Skip(wtype int) error {
	switch wtype {
	case TypeVarint:
		_, err := d.varint()
		return err
	case TypeI64:
		if d.pos+8 > len(d.buf) {
			return fmt.Errorf("wire: truncated fixed64 at offset %d", d.pos)
		}
		d.pos += 8
		return nil
	case TypeBytes:
		_, err := d.Bytes()
		return err
	case TypeI32:
		if d.pos+4 > len(d.buf) {
			return fmt.Errorf("wire: truncated fixed32 at offset %d", d.pos)
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("wire: unsupported wire type %d", wtype)
	}
}

// PackedFloat32 decodes a packed float payload.
func (d *Decoder) PackedFloat32() ([]float32, error) {
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("wire: packed float payload of %d bytes not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// PackedInt64 decodes a packed int64 payload.
func (d *Decoder) PackedInt64() ([]int64, error) {
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	sub := NewDecoder(b)
	var out []int64
	for sub.More() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, int64(v))
	}
	return out, nil
}
