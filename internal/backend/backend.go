package backend

import (
	"fmt"
	"sort"
	"strings"

	"orpheus/internal/graph"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
)

// Backend bundles a kernel policy with runtime behaviour, emulating one
// framework from the paper's evaluation (or a native Orpheus
// configuration).
type Backend struct {
	// Name is the identifier used by the harness and CLI ("orpheus",
	// "tvm-sim", ...).
	Name string
	// Paper is the framework this backend stands in for, as labelled in
	// Figure 2 ("Orpheus", "TVM", "PyTorch", ...).
	Paper string
	// Description explains the emulation in one line.
	Description string

	// NewPolicy creates a fresh kernel-selection policy (fresh so that
	// stateful policies like the auto-tuner do not leak between models).
	NewPolicy func() runtime.Policy

	// Optimize applies the graph-simplification pipeline before running
	// (graph frameworks do; eager frameworks such as PyTorch and DarkNet
	// do not).
	Optimize bool
	// NoBufferReuse / DisableScratchReuse model per-call allocation.
	NoBufferReuse       bool
	DisableScratchReuse bool
	// ForceAllCores pins the worker count to every available core and
	// refuses single-threaded operation (the paper's TF-Lite complaint).
	ForceAllCores bool
	// SupportsModel returns nil if the backend can run the named model
	// (DarkNet only ships the ResNets, per the paper).
	SupportsModel func(model string) error
	// SimDispatchNs is the per-operator dispatch overhead, in nanoseconds,
	// charged by the device cost model: compiled runtimes dispatch in a
	// couple of microseconds, eager frameworks pay an order of magnitude
	// more per call.
	SimDispatchNs float64
}

// Prepare optimises (a clone of) g according to the backend's rules and
// compiles it. workers <= 0 means 1. Returns an error if the backend
// cannot honour the requested thread count.
func (b *Backend) Prepare(g *graph.Graph, workers int) (*runtime.Plan, error) {
	return b.PrepareBatched(g, workers, 1)
}

// PrepareBatched is Prepare with the plan parameterised by a maximum
// runtime batch size: arena slots are sized for maxBatch and sessions
// accept any batch 1 ≤ n ≤ maxBatch per Run. maxBatch <= 0 means 1.
func (b *Backend) PrepareBatched(g *graph.Graph, workers, maxBatch int) (*runtime.Plan, error) {
	return b.PrepareWith(g, PrepareOpts{Workers: workers, MaxBatch: maxBatch})
}

// PrepareOpts parameterises PrepareWith.
type PrepareOpts struct {
	// Workers is the kernel goroutine budget; <= 0 means 1.
	Workers int
	// MaxBatch sizes the plan's arena for runtime batching; <= 0 means 1.
	MaxBatch int
	// Int8 enables the quantized execution tier. For the auto-tuning
	// backend the tuner arbitrates fp32 vs int8 per layer on measured
	// time; for fixed-policy backends the quantized kernel is used
	// wherever one supports the layer.
	Int8 bool
	// Layout selects the tensor layout the plan executes in: "" or
	// "nchw" keeps the importer's NCHW convention, "nhwc" runs the
	// layout-assignment pass (channel-innermost kernels, transposes only
	// at unavoidable frontiers), and "auto" compiles both and keeps the
	// measured winner. "nhwc" and "auto" require an optimising backend —
	// the conversion is a pipeline pass.
	Layout string
	// LayoutStats, when non-nil, receives the ConvertLayout counters for
	// Layout "nhwc"/"auto" plans (the inspect tool and the layout
	// experiment read them).
	LayoutStats *passes.LayoutStats
}

// PrepareWith optimises (a clone of) g according to the backend's rules
// and compiles it with the given options.
func (b *Backend) PrepareWith(g *graph.Graph, o PrepareOpts) (*runtime.Plan, error) {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if b.ForceAllCores && o.Workers == 1 {
		return nil, fmt.Errorf("backend %s: cannot select a single thread (the API always uses the maximum)", b.Name)
	}
	switch o.Layout {
	case "", "nchw", "nhwc":
	case "auto":
		plan, _, err := b.AutoLayout(g, o)
		return plan, err
	default:
		return nil, fmt.Errorf("backend %s: unknown layout %q (want nchw, nhwc or auto)", b.Name, o.Layout)
	}
	if o.Layout == "nhwc" && !b.Optimize {
		return nil, fmt.Errorf("backend %s: layout nhwc needs the optimisation pipeline, which this backend disables", b.Name)
	}
	work := g.Clone()
	if err := work.Finalize(); err != nil {
		return nil, err
	}
	if b.Optimize {
		pipeline := passes.Default()
		if o.Layout == "nhwc" {
			pipeline = passes.LayoutPipeline(o.LayoutStats)
		}
		if _, err := pipeline.Run(work); err != nil {
			return nil, err
		}
	}
	policy := b.NewPolicy()
	if o.Int8 {
		if at, ok := policy.(*AutoTunePolicy); ok {
			at.AllowInt8 = true
		}
	}
	return runtime.Compile(work, runtime.Options{
		Policy:              policy,
		Workers:             o.Workers,
		MaxBatch:            o.MaxBatch,
		NoBufferReuse:       b.NoBufferReuse,
		DisableScratchReuse: b.DisableScratchReuse,
		Int8:                o.Int8,
	})
}

var registry = map[string]*Backend{}

// Register adds a backend; duplicate names panic.
func Register(b *Backend) {
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("backend: duplicate backend %q", b.Name))
	}
	registry[b.Name] = b
}

// ByName returns the named backend.
func ByName(name string) (*Backend, error) {
	b, ok := registry[name]
	if !ok {
		names := Names()
		return nil, fmt.Errorf("backend: unknown backend %q (known: %s)", name, strings.Join(names, ", "))
	}
	return b, nil
}

// Names lists registered backends sorted by name.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Figure2Backends returns the backends in the order the paper's Figure 2
// groups them: Orpheus, TVM, PyTorch (DarkNet and TF-Lite are handled as
// exclusions in the harness).
func Figure2Backends() []*Backend {
	out := make([]*Backend, 0, 3)
	for _, n := range []string{"orpheus", "tvm-sim", "torch-sim"} {
		out = append(out, registry[n])
	}
	return out
}

func init() {
	Register(&Backend{
		Name:        "orpheus",
		Paper:       "Orpheus",
		Description: "native: GEMM (im2col+packed) convolution, dedicated depthwise kernel, fused graph, arena memory",
		NewPolicy: func() runtime.Policy {
			// The NHWC kernels only support nodes the layout pass marked,
			// so listing them first is a no-op for NCHW plans.
			return &PreferencePolicy{PolicyName: "orpheus", Prefs: map[string][]string{
				"Conv":  {"conv.depthwise_nhwc", "conv.im2col_nhwc", "conv.depthwise", "conv.im2col"},
				"Dense": {"dense.gemm"},
			}}
		},
		Optimize:      true,
		SimDispatchNs: 2000,
	})
	Register(&Backend{
		Name:          "orpheus-heuristic",
		Paper:         "Orpheus (heuristic)",
		Description:   "native with size-based conv algorithm choice (spatial pack below the GEMM crossover)",
		NewPolicy:     func() runtime.Policy { return &HeuristicPolicy{} },
		Optimize:      true,
		SimDispatchNs: 2000,
	})
	Register(&Backend{
		Name:          "orpheus-tuned",
		Paper:         "Orpheus (tuned)",
		Description:   "native with per-layer empirical auto-tuning over all registered kernels",
		NewPolicy:     func() runtime.Policy { return NewAutoTunePolicy() },
		Optimize:      true,
		SimDispatchNs: 2000,
	})
	Register(&Backend{
		Name:        "tvm-sim",
		Paper:       "TVM",
		Description: "TVM emulation: spatial-pack convolution schedule, optimised graph",
		NewPolicy: func() runtime.Policy {
			return &PreferencePolicy{PolicyName: "tvm-sim", Prefs: map[string][]string{
				"Conv":  {"conv.depthwise", "conv.spatialpack", "conv.im2col"},
				"Dense": {"dense.gemm"},
			}}
		},
		Optimize:      true,
		SimDispatchNs: 1500,
	})
	Register(&Backend{
		Name:        "torch-sim",
		Paper:       "PyTorch",
		Description: "PyTorch-eager emulation: GEMM convolution, per-group im2col depthwise, per-call allocation, no graph fusion",
		NewPolicy: func() runtime.Policy {
			return &PreferencePolicy{PolicyName: "torch-sim", Prefs: map[string][]string{
				"Conv":  {"conv.group_im2col", "conv.im2col"},
				"Dense": {"dense.gemm"},
			}}
		},
		Optimize:            false,
		NoBufferReuse:       true,
		DisableScratchReuse: true,
		SimDispatchNs:       30000,
	})
	Register(&Backend{
		Name:        "darknet-sim",
		Paper:       "DarkNet",
		Description: "DarkNet emulation: direct convolution, naive dense, no graph optimisation; ResNets only",
		NewPolicy: func() runtime.Policy {
			return &PreferencePolicy{PolicyName: "darknet-sim", Prefs: map[string][]string{
				"Conv":  {"conv.direct"},
				"Dense": {"dense.naive"},
			}}
		},
		Optimize:      false,
		SimDispatchNs: 4000,
		SupportsModel: func(model string) error {
			if !strings.HasPrefix(model, "resnet") {
				return fmt.Errorf("darknet-sim: model %s not available (paper: only the ResNet models were available)", model)
			}
			return nil
		},
	})
	Register(&Backend{
		Name:        "tflite-sim",
		Paper:       "TF-Lite",
		Description: "TF-Lite emulation: GEMM convolution but the API always selects the maximum thread count",
		NewPolicy: func() runtime.Policy {
			return &PreferencePolicy{PolicyName: "tflite-sim", Prefs: map[string][]string{"Conv": {"conv.depthwise", "conv.im2col"}, "Dense": {"dense.gemm"}}}
		},
		Optimize:      true,
		ForceAllCores: true,
		SimDispatchNs: 3000,
		SupportsModel: func(model string) error {
			if strings.HasPrefix(model, "resnet") {
				return fmt.Errorf("tflite-sim: model %s not available (paper: all models excepting ResNets were available)", model)
			}
			return nil
		},
	})
}
