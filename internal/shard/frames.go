// Package shard implements pipeline-parallel inference across
// processes: a model is split into stage subgraphs by graph.Partition,
// each stage runs in a shard.Server that receives activation frames
// over TCP, executes its subgraph and forwards the boundary activations
// downstream, and a shard.Pipeline driver keeps enough requests in
// flight that every stage computes concurrently — steady-state
// throughput is bounded by the slowest stage, not the sum of all of
// them. The byte-level protocol is documented in docs/SHARD.md.
package shard

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"orpheus/internal/wire"
)

// Frame layout, little-endian:
//
//	offset  size  field
//	0       4     magic "ORPF"
//	4       1     frame type
//	5       1     flags (must be 0 in v1)
//	6       2     reserved (must be 0 in v1)
//	8       4     payload length
//	12      …     payload
//
// The reserved bytes must be zero so that every well-formed frame has
// exactly one encoding — the same canonical-bytes rule the ORPT tensor
// format enforces.
const (
	frameHeaderLen = 12

	// ProtocolVersion is the shard wire protocol version carried in the
	// handshake; peers with different versions refuse to pair.
	ProtocolVersion = 1

	// DefaultMaxFrame bounds a single frame's payload (64 MiB): large
	// enough for any zoo boundary at small batch, small enough that a
	// hostile length field cannot stall a stage on allocation.
	DefaultMaxFrame = 64 << 20
)

var frameMagic = [4]byte{'O', 'R', 'P', 'F'}

// frameType discriminates the payloads of the stage protocol.
type frameType uint8

const (
	// ftHello opens a connection: a JSON handshake from the dialer.
	ftHello frameType = 1
	// ftWelcome acknowledges a hello: a JSON handshake from the
	// listener, carrying the stage's boundary descriptors.
	ftWelcome frameType = 2
	// ftActivations carries one request's boundary tensors into a stage:
	// seq u64 | count u16 | count ORPT tensor messages back to back, in
	// boundary descriptor order.
	ftActivations frameType = 3
	// ftResult carries the terminal stage's outputs to the collector,
	// with the same payload layout as ftActivations.
	ftResult frameType = 4
	// ftError propagates a stage failure downstream in a request's
	// stream position: seq u64 | JSON RemoteError.
	ftError frameType = 5
	// ftDrain announces a graceful close: the sender emits nothing after
	// it, and the receiver finishes in-flight work then closes.
	ftDrain frameType = 6
)

// TensorDesc names one boundary tensor and its per-request shape; the
// handshake exchanges these so both ends of a connection agree on frame
// layout (tensor order and volume) before any activation flows.
type TensorDesc struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
}

// hello is the dialer's handshake. Role "feed" means the dialer will
// send ftActivations (the upstream stage or the driver); role "collect"
// means the dialer wants the stage's ftResult stream (the driver, on
// the terminal stage only).
type hello struct {
	Version int    `json:"version"`
	Model   string `json:"model"`
	Role    string `json:"role"`
	// Shard is the dialer's 0-based stage index, or -1 for the driver.
	Shard int  `json:"shard"`
	Count int  `json:"count"`
	Int8  bool `json:"int8"`
	// Tensors are the boundary tensors a feed dialer will send, in frame
	// order. Empty means "unknown" (the driver learns them from the
	// welcome); a stage dialing its successor always fills them in, and
	// the receiver refuses the pairing if they don't match its inputs.
	Tensors []TensorDesc `json:"tensors,omitempty"`
}

// welcome is the listener's handshake reply: its identity plus both
// boundary descriptor lists, so a driver can validate user inputs and
// decode results without any other source of model metadata.
type welcome struct {
	Version int          `json:"version"`
	Model   string       `json:"model"`
	Shard   int          `json:"shard"`
	Count   int          `json:"count"`
	Inputs  []TensorDesc `json:"inputs"`
	Outputs []TensorDesc `json:"outputs"`
}

// frameConn frames a net.Conn: buffered reads and writes of
// length-prefixed frames with a reused payload buffer on the read side.
// Reads are owned by one goroutine; writes are serialised by a mutex so
// the worker and the drain path can share the downstream connection.
type frameConn struct {
	c        net.Conn
	br       *bufio.Reader
	maxFrame int

	wmu sync.Mutex
	bw  *bufio.Writer

	rhdr [frameHeaderLen]byte
	rbuf []byte
}

func newFrameConn(c net.Conn, maxFrame int) *frameConn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &frameConn{
		c:        c,
		br:       bufio.NewReaderSize(c, 64<<10),
		bw:       bufio.NewWriterSize(c, 64<<10),
		maxFrame: maxFrame,
	}
}

// readFrame reads one frame, returning its type and payload. The
// payload aliases the connection's reused buffer and is valid only
// until the next readFrame.
func (fc *frameConn) readFrame() (frameType, []byte, error) {
	if _, err := io.ReadFull(fc.br, fc.rhdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: reading frame header: %v", ErrPeerClosed, err)
		}
		return 0, nil, fmt.Errorf("%w: reading frame header: %v", ErrPeerClosed, err)
	}
	if [4]byte(fc.rhdr[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad frame magic %q", ErrProtocol, fc.rhdr[:4])
	}
	ft := frameType(fc.rhdr[4])
	if fc.rhdr[5] != 0 || fc.rhdr[6] != 0 || fc.rhdr[7] != 0 {
		return 0, nil, fmt.Errorf("%w: nonzero reserved frame bytes", ErrProtocol)
	}
	n := binary.LittleEndian.Uint32(fc.rhdr[8:12])
	if int64(n) > int64(fc.maxFrame) {
		return 0, nil, fmt.Errorf("%w: frame declares %d bytes, limit %d", ErrProtocol, n, fc.maxFrame)
	}
	if cap(fc.rbuf) < int(n) {
		fc.rbuf = make([]byte, n)
	}
	fc.rbuf = fc.rbuf[:n]
	if _, err := io.ReadFull(fc.br, fc.rbuf); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte frame payload: %v", ErrPeerClosed, n, err)
	}
	return ft, fc.rbuf, nil
}

// writeFrame writes one frame and flushes. Safe for concurrent callers.
func (fc *frameConn) writeFrame(ft frameType, payload []byte) error {
	if len(payload) > fc.maxFrame {
		return fmt.Errorf("%w: frame payload %d bytes over the %d limit", ErrProtocol, len(payload), fc.maxFrame)
	}
	var hdr [frameHeaderLen]byte
	copy(hdr[:4], frameMagic[:])
	hdr[4] = byte(ft)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if _, err := fc.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("%w: writing frame header: %v", ErrPeerClosed, err)
	}
	if _, err := fc.bw.Write(payload); err != nil {
		return fmt.Errorf("%w: writing frame payload: %v", ErrPeerClosed, err)
	}
	if err := fc.bw.Flush(); err != nil {
		return fmt.Errorf("%w: flushing frame: %v", ErrPeerClosed, err)
	}
	return nil
}

// writeJSON marshals v into a frame of type ft.
func (fc *frameConn) writeJSON(ft frameType, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("shard: encoding %T: %w", v, err)
	}
	return fc.writeFrame(ft, b)
}

func (fc *frameConn) Close() error { return fc.c.Close() }

// activation payload layout: seq u64 | count u16 | count ORPT messages.
const actHeaderLen = 10

// appendActivations encodes one request's tensors into dst (reused
// across requests): fp32 ORPT messages, or u8 with per-tensor affine
// parameters when int8 is set. Tensor order must match the boundary
// descriptors exchanged at handshake.
func appendActivations(dst []byte, seq uint64, tensors [][]float32, shapes [][]int, int8wire bool, qbuf []byte) ([]byte, []byte) {
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tensors)))
	for i, data := range tensors {
		if int8wire {
			if cap(qbuf) < len(data) {
				qbuf = make([]byte, len(data))
			}
			q := qbuf[:len(data)]
			scale, zero := wire.QuantizeU8(q, data)
			dst = wire.AppendTensorU8(dst, q, shapes[i], scale, zero)
		} else {
			dst = wire.AppendTensor(dst, data, shapes[i])
		}
	}
	return dst, qbuf
}

// decodeActivations parses an activation payload against the expected
// descriptors, dequantizing u8 tensors transparently. dst[i] receives
// tensor i's values and must already have the descriptor's volume.
func decodeActivations(payload []byte, descs []TensorDesc, dst [][]float32) (seq uint64, err error) {
	if len(payload) < actHeaderLen {
		return 0, fmt.Errorf("%w: activation payload is %d bytes", ErrProtocol, len(payload))
	}
	seq = binary.LittleEndian.Uint64(payload)
	count := int(binary.LittleEndian.Uint16(payload[8:]))
	if count != len(descs) {
		return seq, fmt.Errorf("%w: frame carries %d tensors, stage expects %d", ErrProtocol, count, len(descs))
	}
	rest := payload[actHeaderLen:]
	for i, d := range descs {
		hdr, hl, herr := wire.ParseHeader(rest, 0)
		if herr != nil {
			return seq, fmt.Errorf("%w: tensor %d (%s): %v", ErrProtocol, i, d.Name, herr)
		}
		if hdr.Volume() != len(dst[i]) {
			return seq, fmt.Errorf("%w: tensor %d (%s) has %d values, want %d",
				ErrProtocol, i, d.Name, hdr.Volume(), len(dst[i]))
		}
		if len(rest) < hl+hdr.DataLen {
			return seq, fmt.Errorf("%w: tensor %d (%s) truncated", ErrProtocol, i, d.Name)
		}
		body := rest[hl : hl+hdr.DataLen]
		switch hdr.DType {
		case wire.U8:
			err = wire.DequantizeU8Into(dst[i], body, hdr.Scale, hdr.Zero)
		default:
			err = wire.Float32Into(dst[i], body)
		}
		if err != nil {
			return seq, fmt.Errorf("%w: tensor %d (%s): %v", ErrProtocol, i, d.Name, err)
		}
		rest = rest[hl+hdr.DataLen:]
	}
	if len(rest) != 0 {
		return seq, fmt.Errorf("%w: %d trailing bytes after %d tensors", ErrProtocol, len(rest), count)
	}
	return seq, nil
}

// appendError encodes an error frame payload: the failing request's
// seq followed by the JSON RemoteError.
func appendError(dst []byte, seq uint64, re *RemoteError) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	b, _ := json.Marshal(re)
	return append(dst, b...)
}

// decodeError parses an error frame payload back into its sequence id
// and remote error.
func decodeError(payload []byte) (uint64, *RemoteError, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: error payload is %d bytes", ErrProtocol, len(payload))
	}
	seq := binary.LittleEndian.Uint64(payload)
	var re RemoteError
	if err := json.Unmarshal(payload[8:], &re); err != nil {
		return seq, nil, fmt.Errorf("%w: decoding error frame: %v", ErrProtocol, err)
	}
	return seq, &re, nil
}

// descsEqual reports whether two boundary descriptor lists agree in
// order, name and shape — the pairing precondition for a stage link.
func descsEqual(a, b []TensorDesc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Shape) != len(b[i].Shape) {
			return false
		}
		for j := range a[i].Shape {
			if a[i].Shape[j] != b[i].Shape[j] {
				return false
			}
		}
	}
	return true
}

// jsonUnmarshal decodes a JSON handshake payload, typing failures as
// protocol errors.
func jsonUnmarshal(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("%w: decoding %T: %v", ErrProtocol, v, err)
	}
	return nil
}
